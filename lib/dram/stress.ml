type pattern = All_0 | All_1 | Checkerboard

let pattern_name = function
  | All_0 -> "all0"
  | All_1 -> "all1"
  | Checkerboard -> "checkerboard"

let pattern_of_name s =
  match String.lowercase_ascii s with
  | "all0" | "all-0" | "0" -> Some All_0
  | "all1" | "all-1" | "1" -> Some All_1
  | "checkerboard" | "checker" | "cb" -> Some Checkerboard
  | _ -> None

(* the pattern's position on its (nominally discrete) stress axis: the
   sweep machinery treats every axis as a float, so the three patterns
   sit at 0, 1/2 and 1 and [pattern_of_float] snaps to the nearest *)
let float_of_pattern = function
  | All_0 -> 0.0
  | Checkerboard -> 0.5
  | All_1 -> 1.0

let pattern_of_float v =
  if v < 0.25 then All_0 else if v < 0.75 then Checkerboard else All_1

let pp_pattern ppf p = Format.pp_print_string ppf (pattern_name p)

type t = {
  tcyc : float;
  duty : float;
  vdd : float;
  temp_c : float;
  wait : float;
  pattern : pattern;
  hammer : int;
  leak : float;
  couple : float;
  twr_trim : float;
  tras_trim : float;
}

let nominal =
  {
    tcyc = 60e-9;
    duty = 0.5;
    vdd = 2.4;
    temp_c = 27.0;
    wait = 0.0;
    pattern = All_1;
    hammer = 0;
    leak = 0.0;
    couple = 0.0;
    twr_trim = 0.0;
    tras_trim = 0.0;
  }

let temp_kelvin sc = Dramstress_util.Units.celsius_to_kelvin sc.temp_c
let temp_k = temp_kelvin

let with_tcyc sc tcyc = { sc with tcyc }
let with_duty sc duty = { sc with duty }
let with_vdd sc vdd = { sc with vdd }
let with_temp_c sc temp_c = { sc with temp_c }
let with_wait sc wait = { sc with wait }
let with_pattern sc pattern = { sc with pattern }
let with_hammer sc hammer = { sc with hammer }
let with_leak sc leak = { sc with leak }
let with_couple sc couple = { sc with couple }
let with_twr_trim sc twr_trim = { sc with twr_trim }
let with_tras_trim sc tras_trim = { sc with tras_trim }

(* a stress setting is an extension of the paper's four-axis vector
   exactly when any of the newer axes moved off its neutral default;
   fingerprints and labels only mention them in that case, which is what
   keeps pre-extension store records addressable *)
let is_extended sc =
  sc.wait <> 0.0 || sc.pattern <> All_1 || sc.hammer <> 0 || sc.leak <> 0.0
  || sc.couple <> 0.0 || sc.twr_trim <> 0.0 || sc.tras_trim <> 0.0

let validate sc =
  if sc.tcyc <= 0.0 then invalid_arg "Stress: tcyc <= 0";
  if sc.duty <= 0.0 || sc.duty >= 1.0 then invalid_arg "Stress: duty not in (0,1)";
  if sc.vdd <= 0.0 then invalid_arg "Stress: vdd <= 0";
  if sc.temp_c < -273.15 then invalid_arg "Stress: temperature below 0 K";
  if sc.wait < 0.0 then invalid_arg "Stress: wait < 0";
  if sc.hammer < 0 then invalid_arg "Stress: hammer < 0";
  if sc.leak < 0.0 then invalid_arg "Stress: leak < 0";
  if sc.couple < 0.0 then invalid_arg "Stress: couple < 0";
  if Float.abs sc.twr_trim >= sc.tcyc then
    invalid_arg "Stress: |twr_trim| >= tcyc";
  if Float.abs sc.tras_trim >= sc.tcyc then
    invalid_arg "Stress: |tras_trim| >= tcyc"

let pp ppf sc =
  let u = Dramstress_util.Units.pp_si in
  Format.fprintf ppf "tcyc=%aS duty=%.2f Vdd=%.2f V T=%+.0f C" u sc.tcyc
    sc.duty sc.vdd sc.temp_c;
  if sc.wait <> 0.0 then Format.fprintf ppf " wait=%aS" u sc.wait;
  if sc.pattern <> All_1 then
    Format.fprintf ppf " pattern=%a" pp_pattern sc.pattern;
  if sc.hammer <> 0 then Format.fprintf ppf " hammer=%d" sc.hammer;
  if sc.leak <> 0.0 then Format.fprintf ppf " leak=%aS" u sc.leak;
  if sc.couple <> 0.0 then Format.fprintf ppf " couple=%.3f" sc.couple;
  if sc.twr_trim <> 0.0 then Format.fprintf ppf " twr_trim=%aS" u sc.twr_trim;
  if sc.tras_trim <> 0.0 then
    Format.fprintf ppf " tras_trim=%aS" u sc.tras_trim

type axis =
  | Cycle_time
  | Duty_cycle
  | Supply_voltage
  | Temperature
  | Wait_time
  | Pattern
  | Hammer
  | Leak
  | Couple
  | Twr_trim
  | Tras_trim

let all_axes =
  [ Cycle_time; Duty_cycle; Supply_voltage; Temperature; Wait_time; Pattern;
    Hammer; Leak; Couple; Twr_trim; Tras_trim ]

let pp_axis ppf = function
  | Cycle_time -> Format.pp_print_string ppf "t_cyc"
  | Duty_cycle -> Format.pp_print_string ppf "duty"
  | Supply_voltage -> Format.pp_print_string ppf "V_dd"
  | Temperature -> Format.pp_print_string ppf "T"
  | Wait_time -> Format.pp_print_string ppf "t_wait"
  | Pattern -> Format.pp_print_string ppf "pattern"
  | Hammer -> Format.pp_print_string ppf "hammer"
  | Leak -> Format.pp_print_string ppf "g_leak"
  | Couple -> Format.pp_print_string ppf "c_couple"
  | Twr_trim -> Format.pp_print_string ppf "tWR_trim"
  | Tras_trim -> Format.pp_print_string ppf "tRAS_trim"

let set sc axis v =
  match axis with
  | Cycle_time -> with_tcyc sc v
  | Duty_cycle -> with_duty sc v
  | Supply_voltage -> with_vdd sc v
  | Temperature -> with_temp_c sc v
  | Wait_time -> with_wait sc v
  | Pattern -> with_pattern sc (pattern_of_float v)
  | Hammer -> with_hammer sc (int_of_float (Float.round v))
  | Leak -> with_leak sc v
  | Couple -> with_couple sc v
  | Twr_trim -> with_twr_trim sc v
  | Tras_trim -> with_tras_trim sc v

let get sc = function
  | Cycle_time -> sc.tcyc
  | Duty_cycle -> sc.duty
  | Supply_voltage -> sc.vdd
  | Temperature -> sc.temp_c
  | Wait_time -> sc.wait
  | Pattern -> float_of_pattern sc.pattern
  | Hammer -> float_of_int sc.hammer
  | Leak -> sc.leak
  | Couple -> sc.couple
  | Twr_trim -> sc.twr_trim
  | Tras_trim -> sc.tras_trim
