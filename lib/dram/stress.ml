type t = { tcyc : float; duty : float; vdd : float; temp_c : float }

let nominal = { tcyc = 60e-9; duty = 0.5; vdd = 2.4; temp_c = 27.0 }

let temp_kelvin sc = Dramstress_util.Units.celsius_to_kelvin sc.temp_c
let temp_k = temp_kelvin

let with_tcyc sc tcyc = { sc with tcyc }
let with_duty sc duty = { sc with duty }
let with_vdd sc vdd = { sc with vdd }
let with_temp_c sc temp_c = { sc with temp_c }

let validate sc =
  if sc.tcyc <= 0.0 then invalid_arg "Stress: tcyc <= 0";
  if sc.duty <= 0.0 || sc.duty >= 1.0 then invalid_arg "Stress: duty not in (0,1)";
  if sc.vdd <= 0.0 then invalid_arg "Stress: vdd <= 0";
  if sc.temp_c < -273.15 then invalid_arg "Stress: temperature below 0 K"

let pp ppf sc =
  Format.fprintf ppf "tcyc=%aS duty=%.2f Vdd=%.2f V T=%+.0f C"
    Dramstress_util.Units.pp_si sc.tcyc sc.duty sc.vdd sc.temp_c

type axis = Cycle_time | Duty_cycle | Supply_voltage | Temperature

let pp_axis ppf = function
  | Cycle_time -> Format.pp_print_string ppf "t_cyc"
  | Duty_cycle -> Format.pp_print_string ppf "duty"
  | Supply_voltage -> Format.pp_print_string ppf "V_dd"
  | Temperature -> Format.pp_print_string ppf "T"

let set sc axis v =
  match axis with
  | Cycle_time -> with_tcyc sc v
  | Duty_cycle -> with_duty sc v
  | Supply_voltage -> with_vdd sc v
  | Temperature -> with_temp_c sc v

let get sc = function
  | Cycle_time -> sc.tcyc
  | Duty_cycle -> sc.duty
  | Supply_voltage -> sc.vdd
  | Temperature -> sc.temp_c
