(** Memory-operation sequencing and electrical execution.

    An operation sequence ([w0 w1 r ...], the paper's notation) is turned
    into control waveforms for the {!Column} model, simulated in one
    transient run, and interpreted: cell voltage after every cycle and
    the sensed logical bit for every read.

    Logical values are mapped to physical storage voltages according to
    the defect's placement: on the complementary bit line a logical 1 is
    stored as a low voltage, so detection conditions translate with 0s
    and 1s interchanged while the physical behaviour is identical — the
    paper's Table 1 observation. *)

(** [run_count ()] is the number of simulation requests made through
    {!run} since start-up (or the last {!reset_run_count}) — the cost
    metric the paper's method optimizes against the exhaustive
    per-SC fault analysis. Requests served from the memo cache are
    counted too; {!cache_stats} separates actual electrical simulations
    (misses) from cached replays (hits). *)
val run_count : unit -> int

val reset_run_count : unit -> unit

type op =
  | W0            (** write logical 0 *)
  | W1            (** write logical 1 *)
  | R             (** read (destructive, with sense-amp restore) *)
  | Pause of float  (** idle retention time, s *)

val pp_op : Format.formatter -> op -> unit

(** [parse_seq s] parses a compact sequence such as ["w1 w1 w0 r"] or
    ["w1,w1,w0,r"]; pauses are written ["p1e-3"]. Raises
    [Invalid_argument] on junk. *)
val parse_seq : string -> op list

(** [seq_to_string ops] is the inverse of {!parse_seq}. *)
val seq_to_string : op list -> string

type op_result = {
  op : op;
  t_start : float;
  t_end : float;
  vc_end : float;     (** storage-capacitor voltage at the cycle end *)
  sensed : int option;  (** logical bit for [R]; [None] otherwise *)
  separation : float option;
    (** |V_bl - V_blb| at the decision instant for [R]: small values mean
        the latch failed to regenerate (a metastable output a tester's
        VOH/VOL strobes would reject) *)
}

type outcome = {
  results : op_result list;
  trace : Dramstress_engine.Transient.result;
  built : Column.built;
  phases : Timing.t;  (** instants of one standard cycle *)
}

(** [vc_curve outcome] is the full V_c(t) waveform. *)
val vc_curve : outcome -> Dramstress_util.Interp.t

(** [sensed_bits outcome] lists the logical read results in order. *)
val sensed_bits : outcome -> int list

(** {2 Transient memo cache}

    [run] memoizes outcomes in a bounded LRU keyed by the full simulation
    fingerprint — technology, stress, solver options, step resolution,
    defect, initial voltages and the operation sequence. The sweep layers
    (planes, shmoo, Table 1) repeat identical sequences constantly, so
    the cache removes most transient runs. It is shared across domains
    and guarded by a mutex; cached outcomes are immutable.

    Caching is on by default; set the environment variable
    [DRAMSTRESS_CACHE] to [off]/[0]/[false]/[no] or call
    [set_caching false] to disable it. *)

type cache_stats = {
  hits : int;      (** requests served from the cache *)
  misses : int;    (** requests that ran an electrical simulation *)
  entries : int;   (** outcomes currently held *)
  capacity : int;  (** maximum entries before LRU eviction *)
}

(** [set_caching on] enables or disables memoization globally. *)
val set_caching : bool -> unit

val caching_enabled : unit -> bool

(** [set_cache_capacity n] replaces the cache with an empty one holding
    at most [n] outcomes (statistics reset too). *)
val set_cache_capacity : int -> unit

(** [clear_cache ()] drops all cached outcomes (statistics kept). *)
val clear_cache : unit -> unit

val cache_stats : unit -> cache_stats

(** [run ?tech ?sim ?steps_per_cycle ?defect ?vc_init ?v_neighbour ~stress
    ops] executes the sequence.

    - [vc_init] (default [0.0]): initial storage voltage, V — the paper's
      floating-cell initialisation.
    - [v_neighbour] (default: the supply): initial neighbour-cell voltage
      (bridge aggressor value).
    - [steps_per_cycle] (default 400) sets the transient resolution.
    - [sim] overrides solver options; its temperature field is replaced
      from [stress]. *)
val run :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?defect:Dramstress_defect.Defect.t ->
  ?vc_init:float ->
  ?v_neighbour:float ->
  stress:Stress.t ->
  op list ->
  outcome
