(** Memory-operation sequencing and electrical execution.

    An operation sequence ([w0 w1 r ...], the paper's notation) is turned
    into control waveforms for the {!Column} model, simulated in one
    transient run, and interpreted: cell voltage after every cycle and
    the sensed logical bit for every read.

    Logical values are mapped to physical storage voltages according to
    the defect's placement: on the complementary bit line a logical 1 is
    stored as a low voltage, so detection conditions translate with 0s
    and 1s interchanged while the physical behaviour is identical — the
    paper's Table 1 observation. *)

(** Raised by {!run} when a transient solver failure survived every
    stage of the configured retry/degradation policy
    ({!Sim_config.retry_policy}): [error] is the last solver exception,
    [attempts] how many degraded retries ran, [stages] their labels in
    order. Sweep layers convert this into a
    {!Dramstress_util.Outcome.Failed} slot rather than letting it abort
    the campaign. With {!Sim_config.no_retry}, the original solver
    exception propagates unchanged instead. *)
exception
  Exhausted_retries of { error : exn; attempts : int; stages : string list }

(** [retries_of e] is the retry count to attach to a [Failed] outcome
    for exception [e]: the [attempts] of {!Exhausted_retries}, [0] for
    anything else. Designed to be passed as [?retries_of] to
    {!Dramstress_util.Par.parallel_map_outcomes}. *)
val retries_of : exn -> int

type op =
  | W0            (** write logical 0 *)
  | W1            (** write logical 1 *)
  | R             (** read (destructive, with sense-amp restore) *)
  | Pause of float  (** idle retention time, s *)
  | Ham of int
    (** [n] aggressor activations: full precharge/sense cycles whose
        word-line pulse lands on the neighbour row ([wl_nb]) instead of
        the accessed one — the read-disturb hammer *)

val pp_op : Format.formatter -> op -> unit

(** [parse_seq s] parses a compact sequence such as ["w1 w1 w0 r"] or
    ["w1,w1,w0,r"]; pauses are written ["p1e-3"], hammer bursts ["ham"]
    or ["ham5"]. Raises [Invalid_argument] on junk. *)
val parse_seq : string -> op list

(** [effective_ops ~stress ops] is the sequence actually simulated: when
    the stress carries a retention wait and/or a hammer count, a
    [Pause]/[Ham] pair is inserted immediately before the first [R], so
    every detection condition crosses with those stress axes without
    being rewritten. Neutral stresses return [ops] unchanged; so do
    read-free sequences. [run]/[run_batch] apply this internally — it is
    exposed for layers that need to display or account the effective
    sequence. *)
val effective_ops : stress:Stress.t -> op list -> op list

(** [seq_to_string ops] is the inverse of {!parse_seq}. *)
val seq_to_string : op list -> string

type op_result = {
  op : op;
  t_start : float;
  t_end : float;
  vc_end : float;     (** storage-capacitor voltage at the cycle end *)
  sensed : int option;  (** logical bit for [R]; [None] otherwise *)
  separation : float option;
    (** |V_bl - V_blb| at the decision instant for [R]: small values mean
        the latch failed to regenerate (a metastable output a tester's
        VOH/VOL strobes would reject) *)
}

type outcome = {
  results : op_result list;
  trace : Dramstress_engine.Transient.result;
  built : Column.built;
  phases : Timing.t;  (** instants of one standard cycle *)
}

(** [vc_curve outcome] is the full V_c(t) waveform. *)
val vc_curve : outcome -> Dramstress_util.Interp.t

(** [sensed_bits outcome] lists the logical read results in order. *)
val sensed_bits : outcome -> int list

(** {2 Transient memo cache}

    [run] memoizes outcomes in a bounded LRU keyed by the full simulation
    fingerprint — technology, stress, solver options, step resolution,
    defect, initial voltages and the operation sequence. The sweep layers
    (planes, shmoo, Table 1) repeat identical sequences constantly, so
    the cache removes most transient runs.

    Caches are explicit handles ({!Cache.t}); {!run} uses
    {!Cache.default} unless told otherwise, so independent experiments
    can isolate their statistics (and memory) by passing their own
    handle. A handle is shared across domains and guarded internally by
    a mutex; cached outcomes are immutable.

    Caching is on by default; set the environment variable
    [DRAMSTRESS_CACHE] to [off]/[0]/[false]/[no] (read when a handle is
    created) or call {!Cache.set_enabled} to disable it.

    When {!Dramstress_util.Telemetry} is enabled, requests, hits, misses
    and evictions also feed the [dram.ops.requests] /
    [dram.ops.cache_hits] / [dram.ops.cache_misses] /
    [dram.ops.cache_evictions] counters, and every cache miss runs its
    electrical simulation inside an [ops.run] span. *)

module Cache : sig
  type t
  (** A memo-cache handle: bounded LRU storage plus its own request
      counter and enable flag. *)

  (** Point-in-time statistics ({!stats}). [requests] counts every
      {!Ops.run} call routed through this handle — the paper's
      simulation-cost metric; [hits]/[misses]/[evictions] describe the
      LRU since creation, the last {!resize} or {!reset_stats}. *)
  type stats = {
    requests : int;   (** run requests, cached or not *)
    hits : int;       (** requests served from the cache *)
    misses : int;     (** requests that ran an electrical simulation *)
    evictions : int;  (** entries dropped by capacity pressure *)
    entries : int;    (** outcomes currently held *)
    capacity : int;   (** maximum entries before LRU eviction *)
  }

  (** [create ?capacity ?enabled ()] makes an independent cache (default
      capacity 512). [enabled] defaults to the [DRAMSTRESS_CACHE]
      environment setting. *)
  val create : ?capacity:int -> ?enabled:bool -> unit -> t

  (** The process-wide cache used by {!Ops.run} when no handle is
      passed. *)
  val default : t

  val set_enabled : t -> bool -> unit
  val is_enabled : t -> bool

  (** [resize t n] replaces the storage with an empty LRU holding at
      most [n] outcomes. Hit/miss/eviction statistics reset; the request
      counter is kept. *)
  val resize : t -> int -> unit

  (** [clear t] drops every cached outcome (statistics kept). *)
  val clear : t -> unit

  val stats : t -> stats

  (** [reset_stats t] zeroes hit/miss/eviction statistics without
      touching the stored outcomes or the request counter. *)
  val reset_stats : t -> unit

  (** [requests t] / [reset_requests t] — the request counter alone. *)
  val requests : t -> int

  val reset_requests : t -> unit
end

type cache_stats = Cache.stats = {
  requests : int;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

(** {3 Deprecated global wrappers}

    These operate on {!Cache.default} and exist for source compatibility
    with the original global-state API; new code should hold a
    {!Cache.t} and call its functions directly. *)

(** [run_count ()] is [Cache.requests Cache.default] — the number of
    simulation requests made through {!run} since start-up (or the last
    {!reset_run_count}), the cost metric the paper's method optimizes
    against exhaustive per-SC fault analysis. Requests served from the
    memo cache are counted too; {!cache_stats} separates actual
    electrical simulations (misses) from cached replays (hits). *)
val run_count : unit -> int

val reset_run_count : unit -> unit

(** [set_caching on] is [Cache.set_enabled Cache.default on]. *)
val set_caching : bool -> unit

val caching_enabled : unit -> bool

(** [set_cache_capacity n] is [Cache.resize Cache.default n]. *)
val set_cache_capacity : int -> unit

(** [clear_cache ()] is [Cache.clear Cache.default]. *)
val clear_cache : unit -> unit

val cache_stats : unit -> cache_stats

(** [simulations ()] is [(cache_stats ()).misses] — the number of
    requests that actually reached the electrical solver (scalar
    transient runs plus ensemble lanes; cached replays excluded) since
    start-up or the last {!clear_cache}. This is the cost metric the
    adaptive campaign planner minimises and the bench tripwires
    compare, named so call sites read as what they measure. *)
val simulations : unit -> int

(** [run ?tech ?sim ?steps_per_cycle ?defect ?vc_init ?v_neighbour
    ?config ?cache ~stress ops] executes the sequence.

    - [vc_init] (default [0.0]): initial storage voltage, V — the paper's
      floating-cell initialisation.
    - [v_neighbour] (default: derived from [stress.pattern] — all-1
      pins it to the supply, the historical behaviour): initial
      neighbour-cell voltage (bridge aggressor / data background).
    - [config] bundles technology / solver options / step resolution
      ({!Sim_config.t}); the loose [?tech ?sim ?steps_per_cycle]
      optionals are the original spelling, kept for compatibility, and
      override the matching [config] fields when both are given
      ({!Sim_config.resolve}).
    - [cache] (default {!Cache.default}) selects the memo cache.
    - The solver temperature is always taken from [stress]
      ({!Stress.temp_kelvin}), overriding any [sim] temperature.

    On [Transient.Step_failed] / [Newton.No_convergence] /
    [Newton.Numerical_health] the resolved config's retry policy is
    walked: each stage piles a further concession onto the previous
    ones (halved dt scale, multiplied steps-per-cycle, damped Newton)
    and the simulation is retried. A stage that converges returns its
    outcome — cached under the original request key, so repeats skip
    the failure ladder; a ladder that runs dry raises
    {!Exhausted_retries}. Retry activity feeds the
    [dram.ops.retry_attempts] / [dram.ops.degraded_runs] /
    [dram.ops.failed_runs] counters and the
    [dram.ops.retry_success_stage] histogram.

    A [config.deadline] wall-clock budget is pinned to an absolute
    instant when the request starts and covers the base attempt plus
    every retry stage. Past it the run raises [Newton.Timeout] — which
    is deliberately NOT retried (every ladder stage only costs more
    wall time) and is counted in [dram.ops.deadline_exceeded]; sweep
    layers surface it as a [Failed] outcome slot while the rest of the
    campaign proceeds. *)
val run :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?defect:Dramstress_defect.Defect.t ->
  ?vc_init:float ->
  ?v_neighbour:float ->
  ?config:Sim_config.t ->
  ?cache:Cache.t ->
  stress:Stress.t ->
  op list ->
  outcome

(** {2 Batched execution}

    Sweep layers evaluating one operation sequence at many operating
    points (a resistance decade sweep, a batched bisection round) hand
    the whole set to {!run_batch} as {e lanes}: one circuit topology,
    one shared time grid, N simultaneous integrations
    ({!Dramstress_engine.Ensemble}). *)

(** One batched operating point: the defect instance this lane simulates
    (kind and placement must match across the batch — only [r] may
    differ; [None] for a defect-free lane, all-[None] batches allowed)
    and its initial storage voltage. *)
type lane = {
  defect : Dramstress_defect.Defect.t option;
  vc_init : float;
}

(** [run_batch ?tech ?sim ?steps_per_cycle ?v_neighbour ?config ?cache
    ~stress ~lanes ops] is the batched [run]: one result slot per lane,
    in lane order.

    Each lane is accounted exactly like a scalar {!run} call — its own
    cache key (interchangeable with scalar keys), its own request /
    hit / miss tick — so cache statistics reconcile identically on
    either path. Lanes that miss are integrated together in one
    ensemble; a lane that fails inside the ensemble falls back to the
    full scalar treatment (base attempt plus retry ladder, counted on
    [dram.ops.lane_fallbacks]) and surfaces as [Error] (typically
    {!Exhausted_retries}) only if that fails too, without disturbing
    its batch mates. With a wall-clock [deadline] configured, or for a
    single-lane miss, every miss takes the scalar path (a per-point
    budget has no meaning inside a shared ensemble; an ensemble of one
    is overhead).

    Raises [Invalid_argument] for an empty [lanes] or [ops] list, or
    for lanes mixing defect kinds/placements. *)
val run_batch :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?v_neighbour:float ->
  ?config:Sim_config.t ->
  ?cache:Cache.t ->
  stress:Stress.t ->
  lanes:lane list ->
  op list ->
  (outcome, exn) result list

(** [lane_fallbacks ()] — always-on count of lanes that fell out of an
    ensemble into the scalar retry ladder (mirror of the
    [dram.ops.lane_fallbacks] counter, readable with telemetry off). *)
val lane_fallbacks : unit -> int

val reset_lane_fallbacks : unit -> unit
