(** Memory-operation sequencing and electrical execution.

    An operation sequence ([w0 w1 r ...], the paper's notation) is turned
    into control waveforms for the {!Column} model, simulated in one
    transient run, and interpreted: cell voltage after every cycle and
    the sensed logical bit for every read.

    Logical values are mapped to physical storage voltages according to
    the defect's placement: on the complementary bit line a logical 1 is
    stored as a low voltage, so detection conditions translate with 0s
    and 1s interchanged while the physical behaviour is identical — the
    paper's Table 1 observation. *)

(** [run_count ()] is the number of electrical simulations executed by
    {!run} since start-up (or the last {!reset_run_count}) — the cost
    metric the paper's method optimizes against the exhaustive
    per-SC fault analysis. *)
val run_count : unit -> int

val reset_run_count : unit -> unit

type op =
  | W0            (** write logical 0 *)
  | W1            (** write logical 1 *)
  | R             (** read (destructive, with sense-amp restore) *)
  | Pause of float  (** idle retention time, s *)

val pp_op : Format.formatter -> op -> unit

(** [parse_seq s] parses a compact sequence such as ["w1 w1 w0 r"] or
    ["w1,w1,w0,r"]; pauses are written ["p1e-3"]. Raises
    [Invalid_argument] on junk. *)
val parse_seq : string -> op list

(** [seq_to_string ops] is the inverse of {!parse_seq}. *)
val seq_to_string : op list -> string

type op_result = {
  op : op;
  t_start : float;
  t_end : float;
  vc_end : float;     (** storage-capacitor voltage at the cycle end *)
  sensed : int option;  (** logical bit for [R]; [None] otherwise *)
  separation : float option;
    (** |V_bl - V_blb| at the decision instant for [R]: small values mean
        the latch failed to regenerate (a metastable output a tester's
        VOH/VOL strobes would reject) *)
}

type outcome = {
  results : op_result list;
  trace : Dramstress_engine.Transient.result;
  built : Column.built;
  phases : Timing.t;  (** instants of one standard cycle *)
}

(** [vc_curve outcome] is the full V_c(t) waveform. *)
val vc_curve : outcome -> Dramstress_util.Interp.t

(** [sensed_bits outcome] lists the logical read results in order. *)
val sensed_bits : outcome -> int list

(** [run ?tech ?sim ?steps_per_cycle ?defect ?vc_init ?v_neighbour ~stress
    ops] executes the sequence.

    - [vc_init] (default [0.0]): initial storage voltage, V — the paper's
      floating-cell initialisation.
    - [v_neighbour] (default: the supply): initial neighbour-cell voltage
      (bridge aggressor value).
    - [steps_per_cycle] (default 400) sets the transient resolution.
    - [sim] overrides solver options; its temperature field is replaced
      from [stress]. *)
val run :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?defect:Dramstress_defect.Defect.t ->
  ?vc_init:float ->
  ?v_neighbour:float ->
  stress:Stress.t ->
  op list ->
  outcome
