(** Folded-bit-line column netlist builder.

    One observable column: two bit lines (BL, BLB) sharing a
    cross-coupled sense amplifier, precharge/equalize devices, a write
    driver, a reference (dummy) cell on the side opposite the accessed
    cell, a neighbour cell (bridge target) and a data output buffer.

    The accessed cell sits on BL for {!Defect.True_bl} placement and on
    BLB for {!Defect.Comp_bl}; the reference fires on the other side.
    Control signals arrive as waveforms prepared by {!Ops}. *)

(** Control waveforms for one simulation run. Logic-level signals use
    0/1 with threshold 0.5; word lines carry volts. *)
type controls = {
  wl : Dramstress_circuit.Waveform.t;       (** accessed word line *)
  wl_ref : Dramstress_circuit.Waveform.t;   (** reference word line *)
  wl_nb : Dramstress_circuit.Waveform.t;
    (** neighbour (aggressor) word line — fired by hammer cycles,
        otherwise held low *)
  pre : Dramstress_circuit.Waveform.t;      (** precharge + equalize *)
  sae : Dramstress_circuit.Waveform.t;      (** sense-amplifier enable *)
  wr_acc_hi : Dramstress_circuit.Waveform.t; (** accessed line to V_dd *)
  wr_acc_lo : Dramstress_circuit.Waveform.t; (** accessed line to GND *)
  wr_ref_hi : Dramstress_circuit.Waveform.t; (** paired line to V_dd *)
  wr_ref_lo : Dramstress_circuit.Waveform.t; (** paired line to GND *)
  colsel : Dramstress_circuit.Waveform.t;   (** output-buffer connect *)
}

(** [idle_controls] holds every signal at its resting value (precharge
    on, word lines low). *)
val idle_controls : controls

type built = {
  compiled : Dramstress_circuit.Netlist.compiled;
  acc_bl : string;   (** node name of the accessed bit line *)
  ref_bl : string;   (** node name of the paired (reference) bit line *)
  vc_node : string;  (** node name of the storage-capacitor plate being
                         observed (tracks defect-injection rewiring) *)
  cell_node : string;  (** storage node at the access transistor *)
  probes : string list;  (** standard probe set, includes the above *)
}

(** [build ~tech ~vdd ~controls ?leak_g ?couple ?defect ()] constructs
    and compiles the column. The defect, if any, is injected per its
    kind and placement.

    [leak_g] (S, default 0) adds a leakage conductance from each storage
    node to substrate — the retention-stress knob. [couple] (F, default
    0) adds a coupling capacitor (plus a fixed weak parallel bridge,
    the Ccouple/Rcouple pair) between the accessed and the neighbour
    storage node — the disturb-stress knob. At 0 neither adds a device,
    so the default netlist is unchanged. *)
val build :
  tech:Tech.t ->
  vdd:float ->
  controls:controls ->
  ?leak_g:float ->
  ?couple:float ->
  ?defect:Dramstress_defect.Defect.t ->
  unit ->
  built

(** [initial_conditions built ~tech ~vdd ~vc_init ~v_neighbour] is the IC
    list for a run: bit lines and DQ precharged to [vdd], reference cell
    empty, storage node at [vc_init], neighbour at [v_neighbour], sense
    rails parked. *)
val initial_conditions :
  built -> vdd:float -> vc_init:float -> v_neighbour:float ->
  (string * float) list
