type t = {
  tech : Tech.t;
  sim : Dramstress_engine.Options.t option;
  steps_per_cycle : int;
  jobs : int option;
}

let default =
  { tech = Tech.default; sim = None; steps_per_cycle = 400; jobs = None }

let v ?(tech = Tech.default) ?sim ?(steps_per_cycle = 400) ?jobs () =
  if steps_per_cycle < 1 then
    invalid_arg "Sim_config.v: steps_per_cycle < 1";
  { tech; sim; steps_per_cycle; jobs }

(* explicit legacy optionals always beat the bundled config, so existing
   call sites keep their meaning when a config is introduced around them *)
let resolve ?tech ?sim ?steps_per_cycle ?jobs ?config () =
  let base = Option.value config ~default in
  let t =
    {
      tech = Option.value tech ~default:base.tech;
      sim = (match sim with Some _ -> sim | None -> base.sim);
      steps_per_cycle =
        Option.value steps_per_cycle ~default:base.steps_per_cycle;
      jobs = (match jobs with Some _ -> jobs | None -> base.jobs);
    }
  in
  if t.steps_per_cycle < 1 then
    invalid_arg "Sim_config.resolve: steps_per_cycle < 1";
  t

let resolve_jobs t = Dramstress_util.Par.resolve_jobs ?jobs:t.jobs ()
