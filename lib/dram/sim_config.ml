type retry_stage =
  | Halve_dt
  | Raise_steps of int
  | Damped_newton of { max_step_v : float; max_newton_scale : int }

type retry_policy = { stages : retry_stage list }

let no_retry = { stages = [] }

(* escalation order mirrors how a SPICE operator rescues a diverging
   transient by hand: first a finer first step, then a finer step
   everywhere, finally a heavily damped Newton that trades iterations
   for robustness *)
let default_retry =
  {
    stages =
      [ Halve_dt; Raise_steps 4;
        Damped_newton { max_step_v = 0.25; max_newton_scale = 4 } ];
  }

let pp_stage ppf = function
  | Halve_dt -> Format.pp_print_string ppf "halve-dt"
  | Raise_steps n -> Format.fprintf ppf "steps-x%d" n
  | Damped_newton { max_step_v; max_newton_scale } ->
    Format.fprintf ppf "damped-newton(%.3gV,x%d)" max_step_v max_newton_scale

let stage_name s = Format.asprintf "%a" pp_stage s

let validate_policy p =
  List.iter
    (fun stage ->
      match stage with
      | Halve_dt -> ()
      | Raise_steps n ->
        if n < 2 then invalid_arg "Sim_config: Raise_steps factor < 2"
      | Damped_newton { max_step_v; max_newton_scale } ->
        if max_step_v <= 0.0 then
          invalid_arg "Sim_config: Damped_newton max_step_v <= 0";
        if max_newton_scale < 1 then
          invalid_arg "Sim_config: Damped_newton max_newton_scale < 1")
    p.stages

type t = {
  tech : Tech.t;
  sim : Dramstress_engine.Options.t option;
  steps_per_cycle : int;
  jobs : int option;
  lanes : int option;
  retry : retry_policy;
  deadline : float option;
}

let default =
  {
    tech = Tech.default;
    sim = None;
    steps_per_cycle = 400;
    jobs = None;
    lanes = None;
    retry = default_retry;
    deadline = None;
  }

let validate_deadline = function
  | None -> ()
  | Some d ->
    if not (d > 0.0) then invalid_arg "Sim_config: deadline must be > 0"

let v ?(tech = Tech.default) ?sim ?(steps_per_cycle = 400) ?jobs ?lanes
    ?(retry = default_retry) ?deadline () =
  if steps_per_cycle < 1 then
    invalid_arg "Sim_config.v: steps_per_cycle < 1";
  validate_policy retry;
  validate_deadline deadline;
  { tech; sim; steps_per_cycle; jobs; lanes; retry; deadline }

(* explicit legacy optionals always beat the bundled config, so existing
   call sites keep their meaning when a config is introduced around them *)
let resolve ?tech ?sim ?steps_per_cycle ?jobs ?lanes ?retry ?deadline ?config
    () =
  let base = Option.value config ~default in
  let t =
    {
      tech = Option.value tech ~default:base.tech;
      sim = (match sim with Some _ -> sim | None -> base.sim);
      steps_per_cycle =
        Option.value steps_per_cycle ~default:base.steps_per_cycle;
      jobs = (match jobs with Some _ -> jobs | None -> base.jobs);
      lanes = (match lanes with Some _ -> lanes | None -> base.lanes);
      retry = Option.value retry ~default:base.retry;
      deadline = (match deadline with Some _ -> deadline | None -> base.deadline);
    }
  in
  if t.steps_per_cycle < 1 then
    invalid_arg "Sim_config.resolve: steps_per_cycle < 1";
  validate_policy t.retry;
  validate_deadline t.deadline;
  t

let resolve_jobs t = Dramstress_util.Par.resolve_jobs ?jobs:t.jobs ()
let resolve_lanes t = Dramstress_util.Par.resolve_lanes ?lanes:t.lanes ()
