(** Technology and architecture parameters of the simplified
    design-validation DRAM column model.

    The values are calibrated (see DESIGN.md) so that the nominal border
    resistance of a cell open lands in the paper's few-hundred-kilo-ohm
    regime at t_cyc = 60 ns. Capacitances are lumped: the storage value
    includes contact and junction parasitics of the validation model. *)

type t = {
  c_bl : float;        (** bit-line capacitance, F *)
  c_cell : float;      (** storage (lumped) capacitance, F *)
  c_ref : float;       (** reference (dummy) cell capacitance, F *)
  c_sa : float;        (** parasitic on the sense-amp rail nodes, F *)
  c_out : float;       (** output (DQ) node capacitance, F *)
  access : Dramstress_circuit.Mosfet.model;  (** cell access transistor *)
  sa_n : Dramstress_circuit.Mosfet.model;    (** latch NMOS *)
  sa_p : Dramstress_circuit.Mosfet.model;    (** latch PMOS *)
  wl_boost : float;    (** word-line high = V_dd + wl_boost, V *)
  g_switch : float;    (** on-conductance of control switches, S *)
  g_write : float;     (** write-driver drive conductance, S *)
  g_off : float;       (** off-conductance of all switches, S *)
  t_wl_on : float;     (** word-line rise instant within the cycle, s *)
  t_share : float;     (** charge-share window before sensing, s *)
  t_wr_cmd : float;    (** fixed write-data latency from cycle start, s *)
  t_margin0 : float;   (** word-line fall margin at duty = 1, s *)
  t_margin_duty : float; (** extra fall margin per unit (1 - duty), s *)
  t_decide : float;    (** read-decision delay after sense enable, s *)
  t_edge : float;      (** control edge duration, s *)
}

(** Calibrated defaults (see DESIGN.md section 3). *)
val default : t

(** [scaled_models tech] — convenience accessors used in reports. *)
val pp : Format.formatter -> t -> unit
