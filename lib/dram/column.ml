module C = Dramstress_circuit
module W = Dramstress_circuit.Waveform
module D = Dramstress_defect.Defect

type controls = {
  wl : W.t;
  wl_ref : W.t;
  wl_nb : W.t;
  pre : W.t;
  sae : W.t;
  wr_acc_hi : W.t;
  wr_acc_lo : W.t;
  wr_ref_hi : W.t;
  wr_ref_lo : W.t;
  colsel : W.t;
}

let idle_controls =
  {
    wl = W.dc 0.0;
    wl_ref = W.dc 0.0;
    wl_nb = W.dc 0.0;
    pre = W.dc 1.0;
    sae = W.dc 0.0;
    wr_acc_hi = W.dc 0.0;
    wr_acc_lo = W.dc 0.0;
    wr_ref_hi = W.dc 0.0;
    wr_ref_lo = W.dc 0.0;
    colsel = W.dc 0.0;
  }

(* parasitic bridge in parallel with the inter-cell coupling capacitor
   (the Rcouple_cells element): fixed and weak — the sweepable knob is
   the capacitance, which dominates the disturb *)
let r_couple_ohm = 1e9

type built = {
  compiled : C.Netlist.compiled;
  acc_bl : string;
  ref_bl : string;
  vc_node : string;
  cell_node : string;
  probes : string list;
}

let inject nl (tech : Tech.t) ~acc_bl ~ref_bl (defect : D.t) =
  ignore tech;
  ignore acc_bl;
  match defect.D.kind with
  | D.Open_cell D.At_bitline_contact ->
    C.Netlist.insert_series nl ~name:"r_defect" ~device:"m_acc"
      ~terminal:C.Device.Term_a ~r:defect.D.r
  | D.Open_cell D.At_capacitor_contact ->
    C.Netlist.insert_series nl ~name:"r_defect" ~device:"cs"
      ~terminal:C.Device.Term_a ~r:defect.D.r
  | D.Open_cell D.At_plate_contact ->
    C.Netlist.insert_series nl ~name:"r_defect" ~device:"cs"
      ~terminal:C.Device.Term_b ~r:defect.D.r
  | D.Short_to_gnd -> C.Netlist.resistor nl ~name:"r_defect" "cell" "0" defect.D.r
  | D.Short_to_vdd ->
    C.Netlist.resistor nl ~name:"r_defect" "cell" "vddr" defect.D.r
  | D.Bridge_to_paired_bl ->
    C.Netlist.resistor nl ~name:"r_defect" "cell" ref_bl defect.D.r
  | D.Bridge_to_neighbour ->
    C.Netlist.resistor nl ~name:"r_defect" "cell" "cell_nb" defect.D.r

let build ~(tech : Tech.t) ~vdd ~controls ?(leak_g = 0.0) ?(couple = 0.0)
    ?defect () =
  let nl = C.Netlist.create () in
  let acc_bl, ref_bl =
    match defect with
    | Some { D.placement = D.Comp_bl; _ } -> ("blb", "bl")
    | Some { D.placement = D.True_bl; _ } | None -> ("bl", "blb")
  in
  (* rails and control-voltage nodes *)
  C.Netlist.vsource nl ~name:"v_vdd" "vddr" "0" (W.dc vdd);
  C.Netlist.vsource nl ~name:"v_wl" "wl" "0" controls.wl;
  C.Netlist.vsource nl ~name:"v_wlr" "wlr" "0" controls.wl_ref;
  C.Netlist.vsource nl ~name:"v_wlnb" "wl_nb" "0" controls.wl_nb;
  (* bit lines *)
  C.Netlist.capacitor nl ~name:"c_bl" "bl" "0" tech.Tech.c_bl;
  C.Netlist.capacitor nl ~name:"c_blb" "blb" "0" tech.Tech.c_bl;
  (* accessed storage cell *)
  C.Netlist.mosfet nl ~name:"m_acc" ~d:acc_bl ~g:"wl" ~s:"cell"
    ~model:tech.Tech.access ();
  C.Netlist.capacitor nl ~name:"cs" "cell" "0" tech.Tech.c_cell;
  (* neighbour cell on the same bit line, word line never fired *)
  C.Netlist.mosfet nl ~name:"m_nb" ~d:acc_bl ~g:"wl_nb" ~s:"cell_nb"
    ~model:tech.Tech.access ();
  C.Netlist.capacitor nl ~name:"cs_nb" "cell_nb" "0" tech.Tech.c_cell;
  (* reference (dummy) cell on the paired line; reset during precharge *)
  C.Netlist.mosfet nl ~name:"m_ref" ~d:ref_bl ~g:"wlr" ~s:"dcell"
    ~model:tech.Tech.access ();
  C.Netlist.capacitor nl ~name:"cs_ref" "dcell" "0" tech.Tech.c_ref;
  C.Netlist.switch nl ~name:"sw_refrst" "dcell" "0" ~ctrl:controls.pre
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  (* precharge and equalize *)
  C.Netlist.switch nl ~name:"sw_pre_bl" "bl" "vddr" ~ctrl:controls.pre
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  C.Netlist.switch nl ~name:"sw_pre_blb" "blb" "vddr" ~ctrl:controls.pre
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  C.Netlist.switch nl ~name:"sw_eq" "bl" "blb" ~ctrl:controls.pre
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  (* cross-coupled sense amplifier *)
  C.Netlist.mosfet nl ~name:"m_sap1" ~d:"bl" ~g:"blb" ~s:"sap"
    ~model:tech.Tech.sa_p ();
  C.Netlist.mosfet nl ~name:"m_sap2" ~d:"blb" ~g:"bl" ~s:"sap"
    ~model:tech.Tech.sa_p ();
  C.Netlist.mosfet nl ~name:"m_san1" ~d:"bl" ~g:"blb" ~s:"san"
    ~model:tech.Tech.sa_n ();
  C.Netlist.mosfet nl ~name:"m_san2" ~d:"blb" ~g:"bl" ~s:"san"
    ~model:tech.Tech.sa_n ();
  C.Netlist.capacitor nl ~name:"c_sap" "sap" "0" tech.Tech.c_sa;
  C.Netlist.capacitor nl ~name:"c_san" "san" "0" tech.Tech.c_sa;
  C.Netlist.switch nl ~name:"sw_sap" "sap" "vddr" ~ctrl:controls.sae
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  C.Netlist.switch nl ~name:"sw_san" "san" "0" ~ctrl:controls.sae
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  (* write driver on both lines *)
  C.Netlist.switch nl ~name:"sw_wacc_hi" acc_bl "vddr"
    ~ctrl:controls.wr_acc_hi ~g_on:tech.Tech.g_write ~g_off:tech.Tech.g_off ();
  C.Netlist.switch nl ~name:"sw_wacc_lo" acc_bl "0" ~ctrl:controls.wr_acc_lo
    ~g_on:tech.Tech.g_write ~g_off:tech.Tech.g_off ();
  C.Netlist.switch nl ~name:"sw_wref_hi" ref_bl "vddr"
    ~ctrl:controls.wr_ref_hi ~g_on:tech.Tech.g_write ~g_off:tech.Tech.g_off ();
  C.Netlist.switch nl ~name:"sw_wref_lo" ref_bl "0" ~ctrl:controls.wr_ref_lo
    ~g_on:tech.Tech.g_write ~g_off:tech.Tech.g_off ();
  (* loading compensation: a cell-sized capacitor joins the reference
     line while the latch regenerates, balancing the accessed cell's
     capacitance (the dummy itself is cut off at sense). Reset to the
     precharge level between cycles. *)
  C.Netlist.switch nl ~name:"sw_comp" ref_bl "comp" ~ctrl:controls.sae
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  C.Netlist.capacitor nl ~name:"c_comp" "comp" "0" tech.Tech.c_cell;
  (* the compensation cap parks at the expected post-share reference
     level so that joining the line injects no net charge *)
  let v_refmid =
    vdd *. (1.0 -. (tech.Tech.c_ref /. (tech.Tech.c_ref +. tech.Tech.c_bl)))
  in
  C.Netlist.vsource nl ~name:"v_refmid" "vrefmid" "0" (W.dc v_refmid);
  C.Netlist.switch nl ~name:"sw_comprst" "comp" "vrefmid" ~ctrl:controls.pre
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  (* output buffer; the DQ line is precharged like the bit lines *)
  C.Netlist.switch nl ~name:"sw_col" acc_bl "dq" ~ctrl:controls.colsel
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  C.Netlist.capacitor nl ~name:"c_dq" "dq" "0" tech.Tech.c_out;
  C.Netlist.switch nl ~name:"sw_dqrst" "dq" "vddr" ~ctrl:controls.pre
    ~g_on:tech.Tech.g_switch ~g_off:tech.Tech.g_off ();
  (* retention: junction/gate-induced leakage off both storage nodes.
     Modeled as a conductance to substrate; zero means an ideal cell and
     adds no device, so the untouched netlist stays byte-identical. *)
  if leak_g > 0.0 then begin
    C.Netlist.resistor nl ~name:"r_leak" "cell" "0" (1.0 /. leak_g);
    C.Netlist.resistor nl ~name:"r_leak_nb" "cell_nb" "0" (1.0 /. leak_g)
  end;
  (* coupling disturb: Ccouple/Rcouple between the accessed and the
     neighbour storage node (the Transistor_Pilates
     Ccouple_cells/Rcouple_cells pair) *)
  if couple > 0.0 then begin
    C.Netlist.capacitor nl ~name:"c_couple" "cell" "cell_nb" couple;
    C.Netlist.resistor nl ~name:"r_couple" "cell" "cell_nb" r_couple_ohm
  end;
  (match defect with
  | Some d -> inject nl tech ~acc_bl ~ref_bl d
  | None -> ());
  let compiled = C.Netlist.compile nl in
  (* the storage capacitor's observable terminal may have been rewired by
     an open injection; resolve it from the compiled device list *)
  let vc_node =
    let cs =
      Array.to_list compiled.C.Netlist.devices
      |> List.find (fun d -> C.Device.name d = "cs")
    in
    let node = C.Device.terminal_node cs C.Device.Term_a in
    compiled.C.Netlist.names.(node)
  in
  let probes =
    List.sort_uniq String.compare
      [ "bl"; "blb"; "cell"; vc_node; "dq"; "dcell"; "sap"; "san"; "cell_nb" ]
  in
  { compiled; acc_bl; ref_bl; vc_node; cell_node = "cell"; probes }

let initial_conditions built ~vdd ~vc_init ~v_neighbour =
  let base =
    [
      ("bl", vdd); ("blb", vdd); ("dq", vdd); ("dcell", 0.0);
      ("sap", vdd); ("san", vdd -. 0.5); ("comp", vdd *. 0.9); ("cell_nb", v_neighbour);
      (built.vc_node, vc_init);
    ]
  in
  (* when an open separates "cell" from the capacitor plate, start the
     stranded node at the same potential to avoid an artificial kick *)
  if built.vc_node <> built.cell_node then (built.cell_node, vc_init) :: base
  else base
