(** A stress combination (SC): the operational parameters a test engineer
    can modify at test time (Section 2 of the paper). *)

type t = {
  tcyc : float;   (** clock cycle time, s *)
  duty : float;   (** clock duty cycle in (0, 1) *)
  vdd : float;    (** supply voltage, V *)
  temp_c : float; (** junction temperature, degrees Celsius *)
}

(** The paper's nominal SC: t_cyc = 60 ns, duty = 0.5, V_dd = 2.4 V,
    T = +27 C. *)
val nominal : t

(** [temp_kelvin sc] converts {!field-temp_c} to kelvin — the unit the
    solver's [Options.temp] field expects. The record stores Celsius
    (what a datasheet or tester setting quotes); every consumer that
    needs an absolute temperature must convert through this function so
    the unit boundary lives in exactly one place. The paper's nominal
    +27 °C maps to 300.15 K. *)
val temp_kelvin : t -> float

(** [temp_k] is {!temp_kelvin} — the original (ambiguously named)
    spelling, kept for existing callers. *)
val temp_k : t -> float

val with_tcyc : t -> float -> t
val with_duty : t -> float -> t
val with_vdd : t -> float -> t
val with_temp_c : t -> float -> t

(** [validate sc] raises [Invalid_argument] for nonphysical values
    (non-positive cycle time or supply, duty outside (0,1), temperature
    below absolute zero). *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit

(** The individual stress axes, for direction reports. *)
type axis = Cycle_time | Duty_cycle | Supply_voltage | Temperature

val pp_axis : Format.formatter -> axis -> unit

(** [set sc axis v] returns [sc] with one axis replaced. *)
val set : t -> axis -> float -> t

(** [get sc axis] reads one axis. *)
val get : t -> axis -> float
