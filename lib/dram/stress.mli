(** A stress combination (SC): the operational parameters a test engineer
    can modify at test time (Section 2 of the paper), extended beyond the
    paper's four axes with retention, coupling-disturb and timing-trim
    knobs. Every extension field defaults to a neutral value under which
    the model behaves exactly as the four-axis original — and store
    fingerprints only mention extension axes that moved off neutral, so
    pre-extension records stay addressable. *)

(** Data background held by the neighbour cell during the victim's
    sequence (the retention-test patterns: all-0, all-1, checkerboard).
    [All_1] is neutral — the historical model pinned the neighbour at
    [V_dd]. *)
type pattern = All_0 | All_1 | Checkerboard

val pattern_name : pattern -> string
val pattern_of_name : string -> pattern option

(** Patterns live on a float axis for the sweep machinery: 0, 1/2, 1 for
    all-0, checkerboard, all-1; [pattern_of_float] snaps to nearest. *)
val float_of_pattern : pattern -> float

val pattern_of_float : float -> pattern
val pp_pattern : Format.formatter -> pattern -> unit

type t = {
  tcyc : float;   (** clock cycle time, s *)
  duty : float;   (** clock duty cycle in (0, 1) *)
  vdd : float;    (** supply voltage, V *)
  temp_c : float; (** junction temperature, degrees Celsius *)
  wait : float;
    (** retention decay delay inserted before the first read, s;
        0 = none (neutral) *)
  pattern : pattern;  (** neighbour-cell data background *)
  hammer : int;
    (** aggressor (neighbour word line) activations inserted before the
        first read; 0 = none (neutral) *)
  leak : float;
    (** per-cell storage-node leakage conductance, S; 0 = ideal cell
        (neutral) *)
  couple : float;
    (** inter-cell coupling capacitance as a fraction of the storage
        capacitance; 0 = uncoupled (neutral) *)
  twr_trim : float;
    (** write-recovery trim: shifts the write-driver turn-on instant, s;
        positive trims shrink the write window (stress), 0 = nominal *)
  tras_trim : float;
    (** row-active trim: shifts word-line turn-off, s; negative trims
        shrink the active window (stress), 0 = nominal *)
}

(** The paper's nominal SC: t_cyc = 60 ns, duty = 0.5, V_dd = 2.4 V,
    T = +27 C — every extension axis at its neutral default. *)
val nominal : t

(** [temp_kelvin sc] converts {!field-temp_c} to kelvin — the unit the
    solver's [Options.temp] field expects. The record stores Celsius
    (what a datasheet or tester setting quotes); every consumer that
    needs an absolute temperature must convert through this function so
    the unit boundary lives in exactly one place. The paper's nominal
    +27 °C maps to 300.15 K. *)
val temp_kelvin : t -> float

(** [temp_k] is {!temp_kelvin} — the original (ambiguously named)
    spelling, kept for existing callers. *)
val temp_k : t -> float

val with_tcyc : t -> float -> t
val with_duty : t -> float -> t
val with_vdd : t -> float -> t
val with_temp_c : t -> float -> t
val with_wait : t -> float -> t
val with_pattern : t -> pattern -> t
val with_hammer : t -> int -> t
val with_leak : t -> float -> t
val with_couple : t -> float -> t
val with_twr_trim : t -> float -> t
val with_tras_trim : t -> float -> t

(** [is_extended sc] is true when any post-paper axis moved off its
    neutral default — the condition under which fingerprints grow an
    extension suffix. *)
val is_extended : t -> bool

(** [validate sc] raises [Invalid_argument] for nonphysical values
    (non-positive cycle time or supply, duty outside (0,1), temperature
    below absolute zero, negative wait/hammer/leak/couple, trims at
    least a full cycle long). *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit

(** The individual stress axes, for direction reports and sweeps. The
    first four are the paper's; the rest are the extension families
    (retention: wait/pattern/leak, disturb: hammer/couple, timing trim:
    tWR/tRAS). *)
type axis =
  | Cycle_time
  | Duty_cycle
  | Supply_voltage
  | Temperature
  | Wait_time
  | Pattern
  | Hammer
  | Leak
  | Couple
  | Twr_trim
  | Tras_trim

(** Every axis, paper order first, extensions after. *)
val all_axes : axis list

val pp_axis : Format.formatter -> axis -> unit

(** [set sc axis v] returns [sc] with one axis replaced. Discrete axes
    decode from the float: {!Pattern} via {!pattern_of_float},
    {!Hammer} by rounding. *)
val set : t -> axis -> float -> t

(** [get sc axis] reads one axis as a float ({!Pattern} via
    {!float_of_pattern}). *)
val get : t -> axis -> float
