module W = Dramstress_circuit.Waveform
module D = Dramstress_defect.Defect
module E = Dramstress_engine
module I = Dramstress_util.Interp
module Tel = Dramstress_util.Telemetry

let c_requests = Tel.Counter.make "dram.ops.requests"
let c_hits = Tel.Counter.make "dram.ops.cache_hits"
let c_misses = Tel.Counter.make "dram.ops.cache_misses"
let c_evictions = Tel.Counter.make "dram.ops.cache_evictions"
let c_retry_attempts = Tel.Counter.make "dram.ops.retry_attempts"
let c_degraded = Tel.Counter.make "dram.ops.degraded_runs"
let c_failed = Tel.Counter.make "dram.ops.failed_runs"
let c_deadline = Tel.Counter.make "dram.ops.deadline_exceeded"

(* which escalation stage finally rescued a degraded run: 1 = first
   retry stage, 2 = second, ... — the policy's effectiveness profile *)
let h_retry_stage =
  Tel.Histogram.make ~unit_:"stage" ~lo:1.0 ~hi:16.0 ~buckets:8
    "dram.ops.retry_success_stage"

exception
  Exhausted_retries of { error : exn; attempts : int; stages : string list }

let () =
  Printexc.register_printer (function
    | Exhausted_retries { error; attempts; stages } ->
      Some
        (Printf.sprintf
           "Ops.Exhausted_retries { %d retry attempts (%s) all failed; last \
            error: %s }"
           attempts
           (String.concat ", " stages)
           (Printexc.to_string error))
    | _ -> None)

(* the retry count a sweep layer should attach to a Failed outcome for
   this error ({!Dramstress_util.Par.parallel_map_outcomes}) *)
let retries_of = function Exhausted_retries { attempts; _ } -> attempts | _ -> 0

type op = W0 | W1 | R | Pause of float | Ham of int

let pp_op ppf = function
  | W0 -> Format.pp_print_string ppf "w0"
  | W1 -> Format.pp_print_string ppf "w1"
  | R -> Format.pp_print_string ppf "r"
  | Pause d ->
    Format.fprintf ppf "p%a" Dramstress_util.Units.pp_si d
  | Ham 1 -> Format.pp_print_string ppf "ham"
  | Ham n -> Format.fprintf ppf "ham%d" n

let parse_seq s =
  let tokens =
    String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) s)
    |> List.filter (fun t -> t <> "")
  in
  let parse_tok t =
    match String.lowercase_ascii t with
    | "w0" -> W0
    | "w1" -> W1
    | "r" | "r0" | "r1" -> R
    | "ham" -> Ham 1
    | tok when String.length tok > 3 && String.sub tok 0 3 = "ham" -> begin
      match int_of_string_opt (String.sub tok 3 (String.length tok - 3)) with
      | Some n when n > 0 -> Ham n
      | Some _ | None -> invalid_arg ("Ops.parse_seq: bad hammer count " ^ t)
    end
    | tok when String.length tok > 1 && tok.[0] = 'p' -> begin
      match float_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
      | Some d when d > 0.0 -> Pause d
      | Some _ | None -> invalid_arg ("Ops.parse_seq: bad pause " ^ t)
    end
    | _ -> invalid_arg ("Ops.parse_seq: unknown op " ^ t)
  in
  List.map parse_tok tokens

let seq_to_string ops =
  String.concat " " (List.map (Format.asprintf "%a" pp_op) ops)

type op_result = {
  op : op;
  t_start : float;
  t_end : float;
  vc_end : float;
  sensed : int option;
  separation : float option;
}

type outcome = {
  results : op_result list;
  trace : E.Transient.result;
  built : Column.built;
  phases : Timing.t;
}

let vc_curve outcome = E.Transient.probe outcome.trace outcome.built.Column.vc_node

let sensed_bits outcome =
  List.filter_map (fun r -> r.sensed) outcome.results

(* The stress vector's own sequence contributions: a retention wait
   and/or a burst of aggressor activations slipped in just before the
   first read, so ANY detection condition crosses with the wait/hammer
   stress axes without being rewritten. Sequences with no read have
   nothing to detect and are left alone. Neutral stresses (wait = 0,
   hammer = 0) return the list physically unchanged. *)
let effective_ops ~(stress : Stress.t) ops =
  let extra =
    (if stress.Stress.wait > 0.0 then [ Pause stress.Stress.wait ] else [])
    @ (if stress.Stress.hammer > 0 then [ Ham stress.Stress.hammer ] else [])
  in
  if extra = [] || not (List.mem R ops) then ops
  else
    let rec insert = function
      | [] -> []
      | R :: rest -> extra @ R :: rest
      | op :: rest -> op :: insert rest
    in
    insert ops

(* Expand the op list into control-signal step events and time segments.
   Returns (controls, segments, schedule) where schedule carries the
   per-op absolute instants needed to interpret the trace. *)
let plan ~(tech : Tech.t) ~(stress : Stress.t) ~inverted ~steps_per_cycle ops =
  let ops = effective_ops ~stress ops in
  let ph = Timing.phases tech stress in
  let wl_high = stress.Stress.vdd +. tech.Tech.wl_boost in
  let dt_active = stress.Stress.tcyc /. float_of_int steps_per_cycle in
  (* step-event accumulators, in reverse time order *)
  let wl = ref [] and wlr = ref [] and pre = ref [] and sae = ref [] in
  let wlnb = ref [] in
  let colsel = ref [] in
  let wacc_hi = ref [] and wacc_lo = ref [] in
  let wref_hi = ref [] and wref_lo = ref [] in
  let segments = ref [] and schedule = ref [] in
  let push r ev = r := ev :: !r in
  let active_cycle off op =
    (* a hammer cycle activates the neighbour (aggressor) row: same
       precharge/sense choreography, but the pulse lands on wl_nb *)
    let row = match op with Ham _ -> wlnb | W0 | W1 | R | Pause _ -> wl in
    push pre (off +. ph.Timing.t_pre_off, 0.0);
    push pre (off +. ph.Timing.t_wl_off +. 1e-9, 1.0);
    push row (off +. ph.Timing.t_wl_on, wl_high);
    push row (off +. ph.Timing.t_wl_off, 0.0);
    (* the reference word line is cut off at sense enable so the dummy
       does not load the paired line during latch regeneration *)
    push wlr (off +. ph.Timing.t_wl_on, wl_high);
    push wlr (off +. ph.Timing.t_sense -. 0.5e-9, 0.0);
    push sae (off +. ph.Timing.t_sense, 1.0);
    push sae (off +. ph.Timing.t_wl_off, 0.0);
    (match op with
    | W0 | W1 ->
      if ph.Timing.t_wr < ph.Timing.t_wl_off -. 1e-9 then begin
        (* physical bit: logical bit, inverted on the complementary line *)
        let logical = match op with W0 -> 0 | W1 | R | Pause _ | Ham _ -> 1 in
        let physical = if inverted then 1 - logical else logical in
        let acc_drive = if physical = 1 then wacc_hi else wacc_lo in
        let ref_drive = if physical = 1 then wref_lo else wref_hi in
        push acc_drive (off +. ph.Timing.t_wr, 1.0);
        push acc_drive (off +. ph.Timing.t_wl_off, 0.0);
        push ref_drive (off +. ph.Timing.t_wr, 1.0);
        push ref_drive (off +. ph.Timing.t_wl_off, 0.0)
      end
    | R ->
      (* connect the output buffer once the latch has regenerated *)
      push colsel (off +. ph.Timing.t_decide, 1.0);
      push colsel (off +. ph.Timing.t_wl_off, 0.0)
    | Pause _ | Ham _ -> ());
    push segments (off +. ph.Timing.t_cyc, dt_active)
  in
  let off = ref 0.0 in
  List.iter
    (fun op ->
      let t_start = !off in
      (match op with
      | Pause d ->
        let dt_pause = Float.max dt_active (d /. 1000.0) in
        push segments (t_start +. d, dt_pause);
        off := t_start +. d
      | Ham n ->
        for i = 0 to n - 1 do
          active_cycle (t_start +. (float_of_int i *. ph.Timing.t_cyc)) op
        done;
        off := t_start +. (float_of_int (Int.max 0 n) *. ph.Timing.t_cyc)
      | W0 | W1 | R ->
        active_cycle t_start op;
        off := t_start +. ph.Timing.t_cyc);
      push schedule (op, t_start, !off))
    ops;
  let mk v0 events = W.pwl_steps ~t_edge:tech.Tech.t_edge v0 (List.rev events) in
  let controls =
    {
      Column.wl = mk 0.0 !wl;
      wl_ref = mk 0.0 !wlr;
      wl_nb = mk 0.0 !wlnb;
      pre = mk 1.0 !pre;
      sae = mk 0.0 !sae;
      wr_acc_hi = mk 0.0 !wacc_hi;
      wr_acc_lo = mk 0.0 !wacc_lo;
      wr_ref_hi = mk 0.0 !wref_hi;
      wr_ref_lo = mk 0.0 !wref_lo;
      colsel = mk 0.0 !colsel;
    }
  in
  (controls, List.rev !segments, List.rev !schedule, ph)

(* ------------------------------------------------------------------ *)
(* Transient memo cache                                                *)
(* ------------------------------------------------------------------ *)

(* The sweep layers above (Plane, Sc_eval, Report, Table1, Shmoo) keep
   re-running identical operation sequences: every plane recomputes the
   same defect-free Vmp bisection, and Vsa bisections share their probe
   reads across planes and stress axes. A bounded LRU keyed by the full
   simulation fingerprint — everything [run] depends on — makes those
   repeats free.

   Domain-safety choice: ONE shared cache guarded by a mutex, rather
   than per-domain caches merged after the fact. The critical section is
   a hash lookup (microseconds) while a miss costs an entire transient
   simulation (milliseconds to seconds), so contention is negligible and
   a shared cache lets parallel sweep workers reuse each other's results
   mid-sweep — per-domain caches would only merge after the sweep ends,
   too late to save anything. Outcomes are immutable once constructed
   (the trace's interp table is built eagerly in Transient.run), so
   handing the same outcome to several domains is safe. *)

type cache_key = {
  k_tech : Tech.t;
  k_stress : Stress.t;
  k_sim : E.Options.t option;
  k_steps : int;
  k_defect : D.t option;
  k_vc_init : float;
  k_v_neighbour : float option;
  k_ops : op list;
}

module Lru = Dramstress_util.Lru

module Cache = struct
  type stats = {
    requests : int;
    hits : int;
    misses : int;
    evictions : int;
    entries : int;
    capacity : int;
  }

  type t = {
    lock : Mutex.t;
    mutable lru : (cache_key, outcome) Lru.t;
    enabled : bool Atomic.t;
    request_count : int Atomic.t;
  }

  let env_enabled () =
    match Sys.getenv_opt "DRAMSTRESS_CACHE" with
    | Some ("off" | "0" | "false" | "no") -> false
    | Some _ | None -> true

  let create ?(capacity = 512) ?enabled () =
    {
      lock = Mutex.create ();
      lru = Lru.create ~capacity ();
      enabled =
        Atomic.make
          (match enabled with Some b -> b | None -> env_enabled ());
      request_count = Atomic.make 0;
    }

  let default = create ()

  let set_enabled t on = Atomic.set t.enabled on
  let is_enabled t = Atomic.get t.enabled
  let with_lru t f = Mutex.protect t.lock (fun () -> f t.lru)

  (* a fresh LRU means fresh hit/miss/eviction statistics (the original
     [set_cache_capacity] semantics); the request counter is independent
     of the storage and survives *)
  let resize t capacity =
    Mutex.protect t.lock (fun () -> t.lru <- Lru.create ~capacity ())

  let clear t = with_lru t Lru.clear

  let stats t =
    with_lru t (fun c ->
        {
          requests = Atomic.get t.request_count;
          hits = Lru.hits c;
          misses = Lru.misses c;
          evictions = Lru.evictions c;
          entries = Lru.length c;
          capacity = Lru.capacity c;
        })

  let reset_stats t = with_lru t Lru.reset_stats
  let requests t = Atomic.get t.request_count
  let reset_requests t = Atomic.set t.request_count 0
end

type cache_stats = Cache.stats = {
  requests : int;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

(* -- backward-compatible wrappers over [Cache.default] -------------- *)

let run_count () = Cache.requests Cache.default
let reset_run_count () = Cache.reset_requests Cache.default
let set_caching on = Cache.set_enabled Cache.default on
let caching_enabled () = Cache.is_enabled Cache.default
let set_cache_capacity n = Cache.resize Cache.default n
let clear_cache () = Cache.clear Cache.default
let cache_stats () = Cache.stats Cache.default

(* the planner's cost metric: requests that actually reached the solver
   (scalar transient runs plus ensemble lanes), i.e. what the paper
   counts as "simulations". Cached replays are free and excluded. *)
let simulations () = (Cache.stats Cache.default).misses

(* ------------------------------------------------------------------ *)
(* Retry / degradation ladder                                          *)
(* ------------------------------------------------------------------ *)

(* A solver failure at one awkward resistance must not kill a 10k-point
   campaign: walk the configured escalation stages, each applied on top
   of the previous concessions, until one converges or the ladder runs
   dry (-> Exhausted_retries, which sweep layers convert into a Failed
   outcome slot). Only genuine convergence failures are retried —
   programming errors propagate immediately. *)
let degrade_config (cfg : Sim_config.t) stage =
  let base_sim = Option.value cfg.Sim_config.sim ~default:E.Options.default in
  match stage with
  | Sim_config.Halve_dt ->
    { cfg with
      Sim_config.sim =
        Some
          { base_sim with
            E.Options.dt_scale = base_sim.E.Options.dt_scale /. 2.0 } }
  | Sim_config.Raise_steps factor ->
    { cfg with
      Sim_config.steps_per_cycle = cfg.Sim_config.steps_per_cycle * factor }
  | Sim_config.Damped_newton { max_step_v; max_newton_scale } ->
    { cfg with
      Sim_config.sim =
        Some
          { base_sim with
            E.Options.max_step_v;
            max_newton = base_sim.E.Options.max_newton * max_newton_scale } }

(* interpret one simulated trace against the op schedule: per-op sensed
   bit, sense separation and end-of-op cell voltage. Shared verbatim by
   the scalar and the batched execution paths — an outcome must not
   depend on which path produced the trace. *)
let interpret ~inverted ~schedule ~(ph : Timing.t) ~(built : Column.built)
    trace =
  let vc = E.Transient.probe trace built.Column.vc_node in
  let v_acc = E.Transient.probe trace built.Column.acc_bl in
  let v_ref = E.Transient.probe trace built.Column.ref_bl in
  let results =
    List.map
      (fun (op, t_start, t_end) ->
        let sensed, separation =
          match op with
          | R ->
            (* strobe late in the cycle, once regeneration has had the
               whole sense window: metastable outputs are still collapsed
               while slow clean reads have reached the rails *)
            let t_dec = t_start +. ph.Timing.t_wl_off -. 1e-9 in
            let va = I.eval v_acc t_dec and vr = I.eval v_ref t_dec in
            let physical = if va > vr then 1 else 0 in
            ( Some (if inverted then 1 - physical else physical),
              Some (Float.abs (va -. vr)) )
          | W0 | W1 | Pause _ | Ham _ -> (None, None)
        in
        { op; t_start; t_end; vc_end = I.eval vc (t_end -. 1e-12); sensed;
          separation })
      schedule
  in
  { results; trace; built; phases = ph }

(* the neighbour's initial level under a data-background pattern:
   all-1/all-0 pin it to a rail; checkerboard holds the complement of
   the victim's written value, i.e. the rail the victim STARTS from
   (the first write flips the victim to the other one) *)
let neighbour_of_pattern ~(stress : Stress.t) ~vc_init v_neighbour =
  match v_neighbour with
  | Some v -> v
  | None -> begin
    match stress.Stress.pattern with
    | Stress.All_1 -> stress.Stress.vdd
    | Stress.All_0 -> 0.0
    | Stress.Checkerboard ->
      if vc_init > 0.5 *. stress.Stress.vdd then stress.Stress.vdd else 0.0
  end

(* the netlist knobs the stress vector carries: leakage conductance
   directly, coupling as a fraction of the storage capacitance *)
let netlist_knobs ~(tech : Tech.t) ~(stress : Stress.t) =
  (stress.Stress.leak, stress.Stress.couple *. tech.Tech.c_cell)

let execute ~tech ?sim ~steps_per_cycle ?deadline_at ?defect ~vc_init
    ?v_neighbour ~stress ops =
  let vdd = stress.Stress.vdd in
  let v_neighbour = neighbour_of_pattern ~stress ~vc_init v_neighbour in
  let inverted =
    match defect with
    | Some { D.placement = D.Comp_bl; _ } -> true
    | Some { D.placement = D.True_bl; _ } | None -> false
  in
  let controls, segments, schedule, ph =
    plan ~tech ~stress ~inverted ~steps_per_cycle ops
  in
  let leak_g, couple = netlist_knobs ~tech ~stress in
  let built = Column.build ~tech ~vdd ~controls ~leak_g ~couple ?defect () in
  let opts =
    let base = Option.value sim ~default:E.Options.default in
    { base with E.Options.temp = Stress.temp_kelvin stress }
  in
  let ics = Column.initial_conditions built ~vdd ~vc_init ~v_neighbour in
  let trace =
    E.Transient.run built.Column.compiled ~opts ?deadline_at ~segments ~ics
      ~probes:built.Column.probes ()
  in
  interpret ~inverted ~schedule ~ph ~built trace

let execute_resilient ~(cfg : Sim_config.t) ?deadline_at ?defect ~vc_init
    ?v_neighbour ~stress ops =
  let exec (c : Sim_config.t) =
    execute ~tech:c.Sim_config.tech ?sim:c.Sim_config.sim
      ~steps_per_cycle:c.Sim_config.steps_per_cycle ?deadline_at ?defect
      ~vc_init ?v_neighbour ~stress ops
  in
  (* Newton.Timeout is deliberately absent: a point that exhausted its
     wall-clock budget must not walk the ladder (each stage only costs
     more wall time), so it propagates straight to the sweep layer as a
     Failed outcome *)
  let recoverable = function
    | E.Transient.Step_failed _ | E.Newton.No_convergence _
    | E.Newton.Numerical_health _ ->
      true
    | _ -> false
  in
  try exec cfg
  with e when recoverable e ->
    let bt = Printexc.get_raw_backtrace () in
    let stages = cfg.Sim_config.retry.Sim_config.stages in
    if stages = [] then Printexc.raise_with_backtrace e bt
    else begin
      let rec attempt c stage_idx tried last_err = function
        | [] ->
          Tel.Counter.incr c_failed;
          raise
            (Exhausted_retries
               { error = last_err; attempts = List.length tried;
                 stages = List.rev tried })
        | stage :: rest -> begin
          Tel.Counter.incr c_retry_attempts;
          let c = degrade_config c stage in
          let tried = Sim_config.stage_name stage :: tried in
          match
            Tel.with_span "ops.retry"
              ~attrs:(fun () ->
                [ ("stage", Tel.Str (Sim_config.stage_name stage));
                  ("attempt", Tel.Int stage_idx) ])
              (fun () -> exec c)
          with
          | outcome ->
            Tel.Counter.incr c_degraded;
            Tel.Histogram.observe h_retry_stage (float_of_int stage_idx);
            outcome
          | exception e when recoverable e ->
            attempt c (stage_idx + 1) tried e rest
        end
      in
      attempt cfg 1 [] e stages
    end

(* the full scalar miss path of [run] minus the cache: deadline
   pinning, tracing span, deadline counting and the retry ladder.
   Shared by [run] and the per-lane fallback of [run_batch], so a lane
   that falls out of an ensemble gets exactly the scalar treatment. *)
let execute_with_ladder ~(cfg : Sim_config.t) ?defect ~vc_init ?v_neighbour
    ~stress ops =
  (* the wall-clock budget covers the whole request — base attempt
     plus every retry stage — so it is pinned to an absolute instant
     here, once, rather than restarting per attempt *)
  let deadline_at =
    Option.map
      (fun budget_s -> (Unix.gettimeofday () +. budget_s, budget_s))
      cfg.Sim_config.deadline
  in
  Tel.with_span "ops.run"
    ~attrs:(fun () -> [ ("seq", Tel.Str (seq_to_string ops)) ])
    (fun () ->
      match
        execute_resilient ~cfg ?deadline_at ?defect ~vc_init ?v_neighbour
          ~stress ops
      with
      | outcome -> outcome
      | exception (E.Newton.Timeout _ as e) ->
        let bt = Printexc.get_raw_backtrace () in
        Tel.Counter.incr c_deadline;
        Printexc.raise_with_backtrace e bt)

let store_outcome cache key outcome =
  if Cache.is_enabled cache then
    Cache.with_lru cache (fun c ->
        let ev0 = Lru.evictions c in
        Lru.add c key outcome;
        let d = Lru.evictions c - ev0 in
        if d > 0 then Tel.Counter.add c_evictions d)

let run ?tech ?sim ?steps_per_cycle ?defect ?(vc_init = 0.0) ?v_neighbour
    ?config ?(cache = Cache.default) ~stress ops =
  if ops = [] then invalid_arg "Ops.run: empty sequence";
  Stress.validate stress;
  let cfg = Sim_config.resolve ?tech ?sim ?steps_per_cycle ?config () in
  Atomic.incr cache.Cache.request_count;
  Tel.Counter.incr c_requests;
  let key =
    { k_tech = cfg.Sim_config.tech; k_stress = stress;
      k_sim = cfg.Sim_config.sim; k_steps = cfg.Sim_config.steps_per_cycle;
      k_defect = defect; k_vc_init = vc_init; k_v_neighbour = v_neighbour;
      k_ops = ops }
  in
  let cached =
    if Cache.is_enabled cache then
      Cache.with_lru cache (fun c -> Lru.find c key)
    else None
  in
  match cached with
  | Some outcome ->
    Tel.Counter.incr c_hits;
    outcome
  | None ->
    Tel.Counter.incr c_misses;
    let outcome =
      execute_with_ladder ~cfg ?defect ~vc_init ?v_neighbour ~stress ops
    in
    (* a run rescued by a degraded stage is cached under the BASE config
       key on purpose: the base configuration cannot produce an outcome
       at all (it fails), and repeat requests should get the degraded
       result instantly instead of re-walking the failure ladder *)
    store_outcome cache key outcome;
    outcome

(* ------------------------------------------------------------------ *)
(* Batched execution                                                   *)
(* ------------------------------------------------------------------ *)

let c_lane_fallbacks = Tel.Counter.make "dram.ops.lane_fallbacks"

(* always-on mirror for [--metrics] reconciliation *)
let g_lane_fallbacks = Atomic.make 0

let lane_fallbacks () = Atomic.get g_lane_fallbacks
let reset_lane_fallbacks () = Atomic.set g_lane_fallbacks 0

type lane = { defect : D.t option; vc_init : float }

(* every miss lane of one batch through a single ensemble run: shared
   topology (defect kind + placement fixed across lanes), per-lane
   resistance as an {!Mna} resistor override and per-lane initial cell
   voltage as lane ICs *)
let execute_batch ~(cfg : Sim_config.t) ?v_neighbour ~stress ~lanes ops =
  let tech = cfg.Sim_config.tech in
  let vdd = stress.Stress.vdd in
  let defect0 = (List.hd lanes).defect in
  let inverted =
    match defect0 with
    | Some { D.placement = D.Comp_bl; _ } -> true
    | Some { D.placement = D.True_bl; _ } | None -> false
  in
  let controls, segments, schedule, ph =
    plan ~tech ~stress ~inverted
      ~steps_per_cycle:cfg.Sim_config.steps_per_cycle ops
  in
  (* the column is built once, with the first lane's defect; every lane
     (including the first) then overrides [r_defect] with its own
     resistance, so the netlist value never leaks into any lane *)
  let leak_g, couple = netlist_knobs ~tech ~stress in
  let built =
    Column.build ~tech ~vdd ~controls ~leak_g ~couple ?defect:defect0 ()
  in
  let opts =
    let base = Option.value cfg.Sim_config.sim ~default:E.Options.default in
    { base with E.Options.temp = Stress.temp_kelvin stress }
  in
  let elanes =
    Array.of_list
      (List.map
         (fun l ->
           (* per-lane pattern resolution keeps lane/scalar parity exact:
              a checkerboard neighbour depends on the lane's own vc_init *)
           let v_nb =
             neighbour_of_pattern ~stress ~vc_init:l.vc_init v_neighbour
           in
           {
             E.Ensemble.ics =
               Column.initial_conditions built ~vdd ~vc_init:l.vc_init
                 ~v_neighbour:v_nb;
             override = Option.map (fun d -> ("r_defect", d.D.r)) l.defect;
           })
         lanes)
  in
  let traces =
    Tel.with_span "ops.run_batch"
      ~attrs:(fun () ->
        [ ("seq", Tel.Str (seq_to_string ops));
          ("lanes", Tel.Int (Array.length elanes)) ])
      (fun () ->
        E.Ensemble.run built.Column.compiled ~opts ~segments ~lanes:elanes
          ~probes:built.Column.probes ())
  in
  Array.map
    (Result.map (fun trace -> interpret ~inverted ~schedule ~ph ~built trace))
    traces

let run_batch ?tech ?sim ?steps_per_cycle ?v_neighbour ?config
    ?(cache = Cache.default) ~stress ~lanes ops =
  if ops = [] then invalid_arg "Ops.run_batch: empty sequence";
  if lanes = [] then invalid_arg "Ops.run_batch: no lanes";
  Stress.validate stress;
  let shape = function
    | None -> None
    | Some { D.kind; placement; r = _ } -> Some (kind, placement)
  in
  let shape0 = shape (List.hd lanes).defect in
  List.iter
    (fun l ->
      if shape l.defect <> shape0 then
        invalid_arg
          "Ops.run_batch: lanes must share one defect kind and placement")
    lanes;
  let cfg = Sim_config.resolve ?tech ?sim ?steps_per_cycle ?config () in
  let lanes_arr = Array.of_list lanes in
  let n = Array.length lanes_arr in
  (* per-lane keys and request/hit/miss accounting identical to scalar
     [run]: a batched lane and a scalar call are interchangeable in the
     cache, and [requests = hits + misses] keeps holding *)
  let keys =
    Array.map
      (fun l ->
        { k_tech = cfg.Sim_config.tech; k_stress = stress;
          k_sim = cfg.Sim_config.sim;
          k_steps = cfg.Sim_config.steps_per_cycle; k_defect = l.defect;
          k_vc_init = l.vc_init; k_v_neighbour = v_neighbour; k_ops = ops })
      lanes_arr
  in
  let slots : (outcome, exn) result option array = Array.make n None in
  Array.iteri
    (fun i key ->
      Atomic.incr cache.Cache.request_count;
      Tel.Counter.incr c_requests;
      let cached =
        if Cache.is_enabled cache then
          Cache.with_lru cache (fun c -> Lru.find c key)
        else None
      in
      match cached with
      | Some o ->
        Tel.Counter.incr c_hits;
        slots.(i) <- Some (Ok o)
      | None -> Tel.Counter.incr c_misses)
    keys;
  let missing = ref [] in
  for i = n - 1 downto 0 do
    if Option.is_none slots.(i) then missing := i :: !missing
  done;
  let finish i outcome =
    store_outcome cache keys.(i) outcome;
    slots.(i) <- Some (Ok outcome)
  in
  let scalar i =
    let l = lanes_arr.(i) in
    match
      execute_with_ladder ~cfg ?defect:l.defect ~vc_init:l.vc_init
        ?v_neighbour ~stress ops
    with
    | outcome -> finish i outcome
    | exception e -> slots.(i) <- Some (Error e)
  in
  (match !missing with
  | [] -> ()
  | [ i ] -> scalar i (* a single miss: an ensemble of one is overhead *)
  | missing when cfg.Sim_config.deadline <> None ->
    (* the wall-clock budget is a per-point contract; inside a shared
       ensemble one slow lane would burn every lane's budget, so
       deadline-bound requests take the scalar path per lane *)
    List.iter scalar missing
  | missing ->
    let results =
      execute_batch ~cfg ?v_neighbour ~stress
        ~lanes:(List.map (fun i -> lanes_arr.(i)) missing)
        ops
    in
    List.iteri
      (fun j i ->
        match results.(j) with
        | Ok outcome -> finish i outcome
        | Error _ ->
          (* the lane died inside the ensemble (after its in-batch
             dt-halving retries); give it the full scalar treatment —
             base attempt plus retry ladder — exactly what a scalar miss
             would get. Non-convergent lanes end up as [Error
             Exhausted_retries] slots without disturbing batch mates. *)
          Tel.Counter.incr c_lane_fallbacks;
          Atomic.incr g_lane_fallbacks;
          scalar i)
      missing);
  Array.to_list (Array.map Option.get slots)
