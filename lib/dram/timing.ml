type t = {
  t_pre_off : float;
  t_wl_on : float;
  t_sense : float;
  t_decide : float;
  t_wr : float;
  t_wl_off : float;
  t_cyc : float;
}

let phases (tech : Tech.t) (stress : Stress.t) =
  Stress.validate stress;
  let t_cyc = stress.Stress.tcyc in
  let t_wl_on = tech.Tech.t_wl_on in
  let margin =
    tech.Tech.t_margin0 +. (tech.Tech.t_margin_duty *. (1.0 -. stress.Stress.duty))
  in
  (* tRAS-style trim: shift word-line turn-off. Adding 0.0 is a float
     identity, so an untrimmed stress produces byte-identical phases. *)
  let t_wl_off = t_cyc -. margin +. stress.Stress.tras_trim in
  if t_wl_off <= t_wl_on +. 1e-9 then
    invalid_arg "Timing.phases: cycle too short to open the word line";
  if t_wl_off >= t_cyc -. 0.5e-9 then
    invalid_arg "Timing.phases: tras_trim pushes word line past cycle end";
  let t_sense = Float.min (t_wl_on +. tech.Tech.t_share) (t_wl_off -. 1e-9) in
  let t_decide = Float.min (t_sense +. tech.Tech.t_decide) (t_wl_off -. 0.5e-9) in
  (* tWR-style trim: shift the write-driver turn-on; a positive trim
     starts the write later, shrinking the recovery window before the
     word line closes. Clamped so the driver never fires before the
     word line is up. *)
  let t_wr =
    Float.max (t_wl_on +. 1e-9)
      (Float.max tech.Tech.t_wr_cmd (t_sense +. 2e-9) +. stress.Stress.twr_trim)
  in
  { t_pre_off = t_wl_on -. 1e-9; t_wl_on; t_sense; t_decide; t_wr; t_wl_off;
    t_cyc }

let write_window ph = Float.max 0.0 (ph.t_wl_off -. ph.t_wr)

let pp ppf ph =
  let u = Dramstress_util.Units.pp_si in
  Format.fprintf ppf
    "pre_off=%aS wl_on=%aS sense=%aS decide=%aS wr=%aS wl_off=%aS cyc=%aS"
    u ph.t_pre_off u ph.t_wl_on u ph.t_sense u ph.t_decide u ph.t_wr
    u ph.t_wl_off u ph.t_cyc
