(** Bundled simulation configuration.

    Every sweep layer historically took the same loose optional
    arguments — [?tech ?sim ?steps_per_cycle ?jobs] — and threaded them
    down to {!Ops.run} by hand. [Sim_config.t] bundles them into one
    value that can be built once and passed through any depth of sweep
    calls as [?config].

    The loose optionals remain accepted everywhere for compatibility;
    when both are given, an explicit optional overrides the
    corresponding [config] field ({!resolve}). *)

(** {1 Retry / degradation policy}

    What {!Ops.run} does when the transient solver fails on a point
    ([Transient.Step_failed] / [Newton.No_convergence]): each stage
    derives a degraded configuration and the run is retried, in order,
    until one succeeds or the list is exhausted. *)

type retry_stage =
  | Halve_dt
      (** retry with the initial time step halved
          ([Options.dt_scale] x0.5) *)
  | Raise_steps of int
      (** retry with [steps_per_cycle] multiplied by the factor
          (at least 2) *)
  | Damped_newton of { max_step_v : float; max_newton_scale : int }
      (** retry with a damped Newton: the per-iteration voltage clamp
          tightened to [max_step_v] and the iteration cap multiplied by
          [max_newton_scale] — slow but robust *)

type retry_policy = { stages : retry_stage list }

(** [no_retry] fails immediately, pre-resilience behaviour: the first
    solver error propagates unchanged. *)
val no_retry : retry_policy

(** [default_retry] is [Halve_dt], then [Raise_steps 4], then
    [Damped_newton { max_step_v = 0.25; max_newton_scale = 4 }]. *)
val default_retry : retry_policy

val pp_stage : Format.formatter -> retry_stage -> unit

(** [stage_name s] — short label used in telemetry and error reports,
    e.g. ["halve-dt"], ["steps-x4"], ["damped-newton(0.25V,x4)"]. *)
val stage_name : retry_stage -> string

type t = {
  tech : Tech.t;             (** technology / cell parameters *)
  sim : Dramstress_engine.Options.t option;
      (** solver option overrides; [None] means engine defaults.
          [Ops.run] replaces the temperature field from the stress. *)
  steps_per_cycle : int;     (** transient resolution per clock cycle *)
  jobs : int option;
      (** domain count for parallel sweeps; [None] defers to
          [DRAMSTRESS_JOBS] then the recommended domain count
          ({!Dramstress_util.Par.resolve_jobs}) *)
  lanes : int option;
      (** ensemble width for batched sweeps — how many operating points
          one {!Ops.run_batch} integrates simultaneously; [None] defers
          to [DRAMSTRESS_LANES] then
          {!Dramstress_util.Par.default_lanes}
          ({!Dramstress_util.Par.resolve_lanes}). [Some 1] disables
          batching (every point takes the scalar path). *)
  retry : retry_policy;
      (** what {!Ops.run} tries when the solver fails on a point *)
  deadline : float option;
      (** wall-clock budget per point, in seconds: each {!Ops.run}
          request (covering its whole retry ladder) must finish within
          this budget or fail with {!Dramstress_engine.Newton.Timeout}.
          [None] (the default) never times out. The budget is converted
          to an absolute instant when the request starts, so ladder
          retries spend from the same allowance instead of resetting
          it. *)
}

(** [default]: {!Tech.default}, engine-default solver options,
    400 steps per cycle, automatic job count, {!default_retry}, no
    deadline. *)
val default : t

(** [v ?tech ?sim ?steps_per_cycle ?jobs ?retry ?deadline ()] builds a
    config; omitted fields take their {!default} values. Raises
    [Invalid_argument] if [steps_per_cycle < 1], the retry policy has
    an invalid stage, or [deadline <= 0]. *)
val v :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?jobs:int ->
  ?lanes:int ->
  ?retry:retry_policy ->
  ?deadline:float ->
  unit ->
  t

(** [resolve ?tech ?sim ?steps_per_cycle ?jobs ?retry ?config ()] merges
    the legacy loose optionals with a bundled [config]: an explicit
    optional wins over the matching [config] field, which wins over
    {!default}. This is the single merge point used by every API that
    accepts both styles. *)
val resolve :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?jobs:int ->
  ?lanes:int ->
  ?retry:retry_policy ->
  ?deadline:float ->
  ?config:t ->
  unit ->
  t

(** [resolve_jobs t] is the effective domain count:
    [Par.resolve_jobs ?jobs:t.jobs ()]. *)
val resolve_jobs : t -> int

(** [resolve_lanes t] is the effective ensemble width:
    [Par.resolve_lanes ?lanes:t.lanes ()] — the explicit field, else
    [DRAMSTRESS_LANES], else {!Dramstress_util.Par.default_lanes};
    junk or non-positive env values fall back to the default, explicit
    values are clamped to at least 1. *)
val resolve_lanes : t -> int
