(** Bundled simulation configuration.

    Every sweep layer historically took the same loose optional
    arguments — [?tech ?sim ?steps_per_cycle ?jobs] — and threaded them
    down to {!Ops.run} by hand. [Sim_config.t] bundles them into one
    value that can be built once and passed through any depth of sweep
    calls as [?config].

    The loose optionals remain accepted everywhere for compatibility;
    when both are given, an explicit optional overrides the
    corresponding [config] field ({!resolve}). *)

type t = {
  tech : Tech.t;             (** technology / cell parameters *)
  sim : Dramstress_engine.Options.t option;
      (** solver option overrides; [None] means engine defaults.
          [Ops.run] replaces the temperature field from the stress. *)
  steps_per_cycle : int;     (** transient resolution per clock cycle *)
  jobs : int option;
      (** domain count for parallel sweeps; [None] defers to
          [DRAMSTRESS_JOBS] then the recommended domain count
          ({!Dramstress_util.Par.resolve_jobs}) *)
}

(** [default]: {!Tech.default}, engine-default solver options,
    400 steps per cycle, automatic job count. *)
val default : t

(** [v ?tech ?sim ?steps_per_cycle ?jobs ()] builds a config; omitted
    fields take their {!default} values. Raises [Invalid_argument] if
    [steps_per_cycle < 1]. *)
val v :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?jobs:int ->
  unit ->
  t

(** [resolve ?tech ?sim ?steps_per_cycle ?jobs ?config ()] merges the
    legacy loose optionals with a bundled [config]: an explicit optional
    wins over the matching [config] field, which wins over {!default}.
    This is the single merge point used by every API that accepts both
    styles. *)
val resolve :
  ?tech:Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?steps_per_cycle:int ->
  ?jobs:int ->
  ?config:t ->
  unit ->
  t

(** [resolve_jobs t] is the effective domain count:
    [Par.resolve_jobs ?jobs:t.jobs ()]. *)
val resolve_jobs : t -> int
