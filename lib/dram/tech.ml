module M = Dramstress_circuit.Mosfet

type t = {
  c_bl : float;
  c_cell : float;
  c_ref : float;
  c_sa : float;
  c_out : float;
  access : M.model;
  sa_n : M.model;
  sa_p : M.model;
  wl_boost : float;
  g_switch : float;
  g_write : float;
  g_off : float;
  t_wl_on : float;
  t_share : float;
  t_wr_cmd : float;
  t_margin0 : float;
  t_margin_duty : float;
  t_decide : float;
  t_edge : float;
}

let default =
  {
    c_bl = 300e-15;
    c_cell = 80e-15;
    c_ref = 34e-15;
    c_sa = 20e-15;
    c_out = 30e-15;
    access = M.nmos ~name:"acc" ~vt0:0.7 ~kp:1e-4 ~vt_tc:1.0e-3 ~mu_exp:2.0 ();
    (* The latch NMOS pair decides (both lines sit near V_dd at sense, so
       the PMOS pair is off initially): it is sized weak with a strongly
       temperature-sensitive mobility, making a hot or starved latch lose
       ground to the still-connected cell — the paper's read-stress
       directions. The PMOS pair only restores; it is kept strong and
       temperature-rigid so write-back priming stays firm. *)
    sa_n = M.nmos ~name:"sa_n" ~vt0:0.5 ~kp:5e-5 ~vt_tc:0.3e-3 ~mu_exp:3.0 ();
    sa_p = M.pmos ~name:"sa_p" ~vt0:0.5 ~kp:3e-4 ~vt_tc:0.3e-3 ~mu_exp:1.0 ();
    wl_boost = 0.8;
    g_switch = 1e-3;
    g_write = 5e-3;
    g_off = 1e-12;
    t_wl_on = 6e-9;
    t_share = 8e-9;
    t_wr_cmd = 44e-9;
    t_margin0 = 2e-9;
    t_margin_duty = 4e-9;
    t_decide = 6e-9;
    t_edge = 0.5e-9;
  }

let pp ppf t =
  let u = Dramstress_util.Units.pp_si in
  Format.fprintf ppf
    "@[<v>c_bl=%aF c_cell=%aF c_ref=%aF@ wl_boost=%.2f V t_wl_on=%aS \
     t_share=%aS t_wr=%aS@]"
    u t.c_bl u t.c_cell u t.c_ref t.wl_boost u t.t_wl_on u t.t_share u
    t.t_wr_cmd
