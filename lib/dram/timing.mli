(** Per-cycle control instants derived from the stress combination.

    Cycle structure (times relative to the cycle start):

    {v
      0 ........ t_pre_off : precharge/equalize to V_dd
      t_wl_on .............. word line rises (V_dd + boost)
      t_sense .............. sense amplifier enabled (fixed share window)
      t_decide ............. read decision sampled (BL vs BLB)
      t_wr ................. write drivers engage (fixed command latency)
      t_wl_off ............. word line falls; sense amp disabled
      t_wl_off + eps .. t_cyc : precharge again
    v}

    The sense instant is a {e fixed} delay after word-line rise, so cycle
    time does not move the sense threshold (Section 4.1's observation).
    The write window [t_wr, t_wl_off] shrinks super-linearly as t_cyc
    shrinks because t_wr is a fixed latency — the paper's timing-stress
    mechanism. *)

type t = {
  t_pre_off : float;
  t_wl_on : float;
  t_sense : float;
  t_decide : float;
  t_wr : float;      (** may exceed [t_wl_off]: then no write drive at all *)
  t_wl_off : float;
  t_cyc : float;
}

(** [phases tech stress] computes the instants; raises [Invalid_argument]
    via {!Stress.validate} on a nonphysical SC, or when the cycle is too
    short to open the word line at all. *)
val phases : Tech.t -> Stress.t -> t

(** [write_window ph] is [max 0 (t_wl_off - t_wr)]. *)
val write_window : t -> float

val pp : Format.formatter -> t -> unit
