type t = {
  mutable next_node : int;
  node_ids : (string, int) Hashtbl.t;
  mutable node_names : (int * string) list;  (* reverse mapping *)
  device_tbl : (string, unit) Hashtbl.t;
  mutable devs : Device.t list;  (* reverse insertion order *)
  mutable fresh : int;
}

let ground = 0

let create () =
  let node_ids = Hashtbl.create 64 in
  Hashtbl.add node_ids "0" 0;
  {
    next_node = 1;
    node_ids;
    node_names = [ (0, "0") ];
    device_tbl = Hashtbl.create 64;
    devs = [];
    fresh = 0;
  }

let node nl name =
  match Hashtbl.find_opt nl.node_ids name with
  | Some id -> id
  | None ->
    let id = nl.next_node in
    nl.next_node <- id + 1;
    Hashtbl.add nl.node_ids name id;
    nl.node_names <- (id, name) :: nl.node_names;
    id

let find_node nl name = Hashtbl.find_opt nl.node_ids name

let node_name nl n =
  match List.assoc_opt n nl.node_names with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Netlist.node_name: unknown node %d" n)

let fresh_node nl prefix =
  nl.fresh <- nl.fresh + 1;
  node nl (Printf.sprintf "%s#%d" prefix nl.fresh)

(* ------------------------------------------------------------------ *)
(* Pre-flight diagnostics                                              *)
(* ------------------------------------------------------------------ *)

type diagnostic =
  | Floating_node of { node : string }
  | Non_finite_param of { device : string; param : string; value : float }
  | Zero_capacitance of { device : string }
  | Unknown_device of { context : string; device : string }

let pp_diagnostic ppf = function
  | Floating_node { node } ->
    Format.fprintf ppf "floating node %S (no device touches it)" node
  | Non_finite_param { device; param; value } ->
    Format.fprintf ppf "device %S: parameter %s is not finite (%h)" device
      param value
  | Zero_capacitance { device } ->
    Format.fprintf ppf
      "capacitor %S: non-positive capacitance (dynamic node has no state)"
      device
  | Unknown_device { context; device } ->
    Format.fprintf ppf "%s: no device named %S" context device

exception Invalid of diagnostic list

let () =
  Printexc.register_printer (function
    | Invalid diags ->
      Some
        (Format.asprintf "Netlist.Invalid [@[<hov>%a@]]"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
              pp_diagnostic)
           diags)
    | _ -> None)

let add nl d =
  let n = Device.name d in
  if Hashtbl.mem nl.device_tbl n then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate device %S" n);
  Hashtbl.add nl.device_tbl n ();
  nl.devs <- d :: nl.devs

let resistor nl ~name a b r =
  if r <= 0.0 then invalid_arg "Netlist.resistor: r <= 0";
  add nl (Device.Resistor { name; a = node nl a; b = node nl b; r })

let capacitor nl ~name a b c =
  if c <= 0.0 then invalid_arg "Netlist.capacitor: c <= 0";
  add nl (Device.Capacitor { name; a = node nl a; b = node nl b; c })

let vsource nl ~name pos neg wave =
  add nl (Device.Vsource { name; pos = node nl pos; neg = node nl neg; wave })

let isource nl ~name pos neg wave =
  add nl (Device.Isource { name; pos = node nl pos; neg = node nl neg; wave })

let switch nl ~name a b ~ctrl ?(g_on = 1e-2) ?(g_off = 1e-12)
    ?(threshold = 0.5) () =
  add nl
    (Device.Switch
       { name; a = node nl a; b = node nl b; ctrl; g_on; g_off; threshold })

let mosfet nl ~name ~d ~g ~s ~model ?(m = 1.0) () =
  add nl
    (Device.Mosfet
       { name; d = node nl d; g = node nl g; s = node nl s; model; m })

let find_device nl name =
  List.find_opt (fun d -> Device.name d = name) nl.devs

let replace_device nl name d' =
  let found = ref false in
  nl.devs <-
    List.map
      (fun d ->
        if Device.name d = name then begin
          found := true;
          d'
        end
        else d)
      nl.devs;
  if not !found then raise Not_found;
  if Device.name d' <> name then begin
    Hashtbl.remove nl.device_tbl name;
    Hashtbl.replace nl.device_tbl (Device.name d') ()
  end

let remove_device nl name =
  if not (Hashtbl.mem nl.device_tbl name) then raise Not_found;
  Hashtbl.remove nl.device_tbl name;
  nl.devs <- List.filter (fun d -> Device.name d <> name) nl.devs

let insert_series nl ~name ~device ~terminal ~r =
  match find_device nl device with
  | None ->
    raise
      (Invalid [ Unknown_device { context = "Netlist.insert_series"; device } ])
  | Some d ->
    let old_node = Device.terminal_node d terminal in
    let mid = fresh_node nl (device ^ ".open") in
    replace_device nl device (Device.with_terminal d terminal mid);
    add nl (Device.Resistor { name; a = old_node; b = mid; r })

let devices nl = List.rev nl.devs

type compiled = {
  devices : Device.t array;
  n_nodes : int;
  names : string array;
  n_vsources : int;
}

(* numeric device parameters that must be finite for any stamp built
   from them to be finite. Waveform shapes are validated at their own
   construction sites; DC levels are covered here. *)
let param_diagnostics d =
  let name = Device.name d in
  let finite param value acc =
    if Float.is_finite value then acc
    else Non_finite_param { device = name; param; value } :: acc
  in
  let wave_levels param w acc =
    match w with
    | Waveform.Dc v -> finite (param ^ ".dc") v acc
    | Waveform.Pulse _ | Waveform.Pwl _ -> acc
  in
  match d with
  | Device.Resistor { r; _ } -> finite "r" r []
  | Device.Capacitor { c; _ } ->
    let acc = finite "c" c [] in
    if Float.is_finite c && c <= 0.0 then Zero_capacitance { device = name } :: acc
    else acc
  | Device.Vsource { wave; _ } -> wave_levels "v" wave []
  | Device.Isource { wave; _ } -> wave_levels "i" wave []
  | Device.Switch { g_on; g_off; threshold; _ } ->
    finite "g_on" g_on [] |> finite "g_off" g_off |> finite "threshold" threshold
  | Device.Mosfet { m; _ } -> finite "m" m []

let compile nl =
  let devs = Array.of_list (devices nl) in
  let n_nodes = nl.next_node in
  let names = Array.make n_nodes "?" in
  List.iter (fun (id, name) -> names.(id) <- name) nl.node_names;
  (* collect every structural problem before raising, so one compile
     reports the whole sick set instead of the first symptom *)
  let diags = ref [] in
  (* every non-ground node must be touched by at least one device *)
  let touched = Array.make n_nodes false in
  touched.(0) <- true;
  Array.iter
    (fun d -> List.iter (fun n -> touched.(n) <- true) (Device.nodes d))
    devs;
  Array.iteri
    (fun i t ->
      if not t then
        diags := Floating_node { node = names.(i) } :: !diags)
    touched;
  Array.iter (fun d -> diags := param_diagnostics d @ !diags) devs;
  if !diags <> [] then raise (Invalid (List.rev !diags));
  let n_vsources =
    Array.fold_left
      (fun acc d -> match d with Device.Vsource _ -> acc + 1 | _ -> acc)
      0 devs
  in
  { devices = devs; n_nodes; names; n_vsources }

let with_dc_source c name value =
  let found = ref false in
  let devices =
    Array.map
      (fun d ->
        match d with
        | Device.Vsource ({ name = n; wave; _ } as r) when n = name -> begin
          match wave with
          | Waveform.Dc _ ->
            found := true;
            Device.Vsource { r with wave = Waveform.Dc value }
          | Waveform.Pulse _ | Waveform.Pwl _ ->
            invalid_arg ("Netlist.with_dc_source: " ^ name ^ " is not DC")
        end
        | Device.Vsource _ | Device.Resistor _ | Device.Capacitor _
        | Device.Isource _ | Device.Switch _ | Device.Mosfet _ ->
          d)
      c.devices
  in
  if not !found then
    invalid_arg ("Netlist.with_dc_source: no DC source named " ^ name);
  { c with devices }

let compiled_node c name =
  let rec find i =
    if i >= Array.length c.names then raise Not_found
    else if c.names.(i) = name then i
    else find (i + 1)
  in
  find 0

let pp ppf nl =
  List.iter (fun d -> Format.fprintf ppf "%a@." Device.pp d) (devices nl)
