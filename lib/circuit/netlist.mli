(** Mutable netlist builder with the editing operations needed for defect
    injection, and a validated compiled form consumed by the engine. *)

type t

(** [create ()] is an empty netlist containing only ground. *)
val create : unit -> t

(** [ground] is node 0. *)
val ground : Device.node

(** [node nl name] interns a named node, creating it on first use. *)
val node : t -> string -> Device.node

(** [find_node nl name] is the node id if [name] exists. *)
val find_node : t -> string -> Device.node option

(** [node_name nl n] is the name of node [n] ("0" for ground). *)
val node_name : t -> Device.node -> string

(** [fresh_node nl prefix] creates an anonymous node named
    [prefix ^ "#" ^ id]. *)
val fresh_node : t -> string -> Device.node

(** [add nl device] registers a device; raises [Invalid_argument] on a
    duplicate name. *)
val add : t -> Device.t -> unit

(** Convenience constructors; all intern their node names. *)

val resistor : t -> name:string -> string -> string -> float -> unit
val capacitor : t -> name:string -> string -> string -> float -> unit
val vsource : t -> name:string -> string -> string -> Waveform.t -> unit
val isource : t -> name:string -> string -> string -> Waveform.t -> unit

val switch :
  t -> name:string -> string -> string -> ctrl:Waveform.t ->
  ?g_on:float -> ?g_off:float -> ?threshold:float -> unit -> unit

val mosfet :
  t -> name:string -> d:string -> g:string -> s:string ->
  model:Mosfet.model -> ?m:float -> unit -> unit

(** [find_device nl name] looks a device up by name. *)
val find_device : t -> string -> Device.t option

(** [replace_device nl name device] swaps the registered device, keeping
    its position. Raises [Not_found] if absent. *)
val replace_device : t -> string -> Device.t -> unit

(** [remove_device nl name] deletes a device. Raises [Not_found]. *)
val remove_device : t -> string -> unit

(** [insert_series nl ~name ~device ~terminal ~r] splits the named
    device's terminal with a series resistor of value [r] (models a
    resistive open). A fresh internal node is created. Raises
    [Not_found] if the device is absent. *)
val insert_series :
  t -> name:string -> device:string -> terminal:Device.terminal ->
  r:float -> unit

(** [devices nl] lists devices in insertion order. *)
val devices : t -> Device.t list

(** Compiled, validated form: dense node ids, device array. *)
type compiled = private {
  devices : Device.t array;
  n_nodes : int;  (** including ground; node ids are [0 .. n_nodes-1] *)
  names : string array;  (** node id -> name *)
  n_vsources : int;
}

(** [compile nl] validates (every non-ground node reachable from at least
    one device, no dangling voltage sources) and freezes the netlist.
    Raises [Invalid_argument] with a diagnostic on failure. *)
val compile : t -> compiled

(** [compiled_node c name] resolves a node name after compilation; raises
    [Not_found]. *)
val compiled_node : compiled -> string -> Device.node

(** [with_dc_source c name value] is a compiled copy with the named DC
    voltage source set to [value] — the primitive behind DC sweeps.
    Raises [Invalid_argument] if the source is absent or not DC. *)
val with_dc_source : compiled -> string -> float -> compiled

(** [pp ppf nl] dumps the netlist, one device per line. *)
val pp : Format.formatter -> t -> unit
