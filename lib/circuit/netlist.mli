(** Mutable netlist builder with the editing operations needed for defect
    injection, and a validated compiled form consumed by the engine. *)

type t

(** [create ()] is an empty netlist containing only ground. *)
val create : unit -> t

(** [ground] is node 0. *)
val ground : Device.node

(** [node nl name] interns a named node, creating it on first use. *)
val node : t -> string -> Device.node

(** [find_node nl name] is the node id if [name] exists. *)
val find_node : t -> string -> Device.node option

(** [node_name nl n] is the name of node [n] ("0" for ground). *)
val node_name : t -> Device.node -> string

(** [fresh_node nl prefix] creates an anonymous node named
    [prefix ^ "#" ^ id]. *)
val fresh_node : t -> string -> Device.node

(** [add nl device] registers a device; raises [Invalid_argument] on a
    duplicate name. *)
val add : t -> Device.t -> unit

(** Convenience constructors; all intern their node names. *)

val resistor : t -> name:string -> string -> string -> float -> unit
val capacitor : t -> name:string -> string -> string -> float -> unit
val vsource : t -> name:string -> string -> string -> Waveform.t -> unit
val isource : t -> name:string -> string -> string -> Waveform.t -> unit

val switch :
  t -> name:string -> string -> string -> ctrl:Waveform.t ->
  ?g_on:float -> ?g_off:float -> ?threshold:float -> unit -> unit

val mosfet :
  t -> name:string -> d:string -> g:string -> s:string ->
  model:Mosfet.model -> ?m:float -> unit -> unit

(** [find_device nl name] looks a device up by name. *)
val find_device : t -> string -> Device.t option

(** [replace_device nl name device] swaps the registered device, keeping
    its position. Raises [Not_found] if absent. *)
val replace_device : t -> string -> Device.t -> unit

(** [remove_device nl name] deletes a device. Raises [Not_found]. *)
val remove_device : t -> string -> unit

(** [insert_series nl ~name ~device ~terminal ~r] splits the named
    device's terminal with a series resistor of value [r] (models a
    resistive open). A fresh internal node is created. Raises
    {!Invalid} with an [Unknown_device] diagnostic if the device is
    absent — the defect-injection-onto-nothing failure mode. *)
val insert_series :
  t -> name:string -> device:string -> terminal:Device.terminal ->
  r:float -> unit

(** [devices nl] lists devices in insertion order. *)
val devices : t -> Device.t list

(** Compiled, validated form: dense node ids, device array. *)
type compiled = private {
  devices : Device.t array;
  n_nodes : int;  (** including ground; node ids are [0 .. n_nodes-1] *)
  names : string array;  (** node id -> name *)
  n_vsources : int;
}

(** Pre-flight structural problems found by {!compile} (and by editing
    operations such as {!insert_series}). Each diagnostic names the
    offending netlist element so the error is actionable without a
    solver trace. *)
type diagnostic =
  | Floating_node of { node : string }
    (** a non-ground node no device stamp touches: its matrix row would
        be all-zero and the LU factorisation structurally singular *)
  | Non_finite_param of { device : string; param : string; value : float }
    (** a NaN/infinite device parameter that would poison every stamp
        built from it (raw {!add} bypasses the smart-constructor
        checks) *)
  | Zero_capacitance of { device : string }
    (** a capacitor with [c <= 0]: its node claims dynamic state but
        carries none, so the companion-model conductance is 0/undefined *)
  | Unknown_device of { context : string; device : string }
    (** an editing operation (defect injection) addressed a device that
        does not exist in the netlist *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit

(** Raised by {!compile} with {e every} diagnostic found — the whole
    sick set in one report, not just the first symptom — and by editing
    operations with a singleton list. A printer is registered, so
    uncaught escapes render readably. *)
exception Invalid of diagnostic list

(** [compile nl] validates the netlist — every non-ground node touched
    by at least one device stamp, all numeric device parameters finite,
    no non-positive capacitances — and freezes it. Raises {!Invalid}
    with the full diagnostic list on failure, before any solve is
    attempted. *)
val compile : t -> compiled

(** [compiled_node c name] resolves a node name after compilation; raises
    [Not_found]. *)
val compiled_node : compiled -> string -> Device.node

(** [with_dc_source c name value] is a compiled copy with the named DC
    voltage source set to [value] — the primitive behind DC sweeps.
    Raises [Invalid_argument] if the source is absent or not DC. *)
val with_dc_source : compiled -> string -> float -> compiled

(** [pp ppf nl] dumps the netlist, one device per line. *)
val pp : Format.formatter -> t -> unit
