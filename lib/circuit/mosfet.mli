(** Level-1/EKV-style MOSFET model with temperature dependence.

    The drain current uses the EKV interpolation between sub-threshold
    (exponential) and strong-inversion (square-law) conduction:

    {v
      v_p  = (v_gs - v_th(T)) / n
      i_f  = ln^2(1 + exp(v_p / (2 v_T)))           (forward)
      i_r  = ln^2(1 + exp((v_p - v_ds) / (2 v_T)))  (reverse)
      I_d  = 2 n k_p(T) v_T^2 (i_f - i_r) (1 + lambda v_ds)
    v}

    with v_T = kT/q. This single-piece expression is smooth (good for
    Newton) and carries exactly the three temperature mechanisms the
    paper's Section 4.2 identifies: threshold voltage (v_th rises as T
    falls), carrier mobility (k_p ~ T^-mu_exp, current rises as T falls)
    and sub-threshold leakage (falls steeply as T falls). *)

type polarity = Nmos | Pmos

type model = {
  name : string;
  polarity : polarity;
  vt0 : float;     (** threshold voltage magnitude at [t_ref], V *)
  kp : float;      (** transconductance k_p = mu Cox W/L at [t_ref], A/V^2 *)
  lambda : float;  (** channel-length modulation, 1/V *)
  vt_tc : float;   (** threshold tempco, V/K: v_th(T) = vt0 - vt_tc (T - t_ref) *)
  mu_exp : float;  (** mobility exponent: k_p(T) = kp (T/t_ref)^-mu_exp *)
  n_sub : float;   (** sub-threshold slope factor (>= 1) *)
  t_ref : float;   (** reference temperature, K *)
}

(** [nmos ~name ~vt0 ~kp ()] builds an NMOS model with typical defaults:
    [lambda = 0.05], [vt_tc = 2e-3], [mu_exp = 1.5], [n_sub = 1.4],
    [t_ref = 300.15] (27 C). Optional arguments override each. *)
val nmos :
  ?lambda:float -> ?vt_tc:float -> ?mu_exp:float -> ?n_sub:float ->
  ?t_ref:float -> name:string -> vt0:float -> kp:float -> unit -> model

(** [pmos ~name ~vt0 ~kp ()] like {!nmos}; [vt0] and [kp] are magnitudes. *)
val pmos :
  ?lambda:float -> ?vt_tc:float -> ?mu_exp:float -> ?n_sub:float ->
  ?t_ref:float -> name:string -> vt0:float -> kp:float -> unit -> model

(** [vth model ~temp] is the signed threshold at temperature [temp] (K):
    positive for NMOS, negative for PMOS. *)
val vth : model -> temp:float -> float

(** [kp_t model ~temp] is the temperature-scaled transconductance. *)
val kp_t : model -> temp:float -> float

(** Evaluation result: drain current and its partial derivatives with
    respect to the terminal voltages actually supplied (not the swapped
    internal ones). Currents flow into the drain terminal. *)
type eval = { id : float; gm : float; gds : float }

(** [ids model ~temp ~vgs ~vds] evaluates the device. Source/drain are
    exchanged internally for reverse bias; PMOS is handled by sign
    reflection. [gm = dId/dVgs], [gds = dId/dVds]. *)
val ids : model -> temp:float -> vgs:float -> vds:float -> eval
