type polarity = Nmos | Pmos

type model = {
  name : string;
  polarity : polarity;
  vt0 : float;
  kp : float;
  lambda : float;
  vt_tc : float;
  mu_exp : float;
  n_sub : float;
  t_ref : float;
}

let make polarity ?(lambda = 0.05) ?(vt_tc = 2e-3) ?(mu_exp = 1.5)
    ?(n_sub = 1.4) ?(t_ref = 300.15) ~name ~vt0 ~kp () =
  if vt0 < 0.0 || kp <= 0.0 then
    invalid_arg "Mosfet: vt0 and kp must be positive magnitudes";
  { name; polarity; vt0; kp; lambda; vt_tc; mu_exp; n_sub; t_ref }

let nmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp () =
  make Nmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp ()

let pmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp () =
  make Pmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp ()

let vth_mag m ~temp = m.vt0 -. (m.vt_tc *. (temp -. m.t_ref))

let vth m ~temp =
  let v = vth_mag m ~temp in
  match m.polarity with Nmos -> v | Pmos -> -.v

let kp_t m ~temp = m.kp *. ((temp /. m.t_ref) ** -.m.mu_exp)

type eval = { id : float; gm : float; gds : float }

(* numerically stable softplus and its derivative (logistic sigmoid) *)
let softplus u = if u > 30.0 then u else if u < -30.0 then exp u else log1p (exp u)

let sigmoid u =
  if u > 30.0 then 1.0
  else if u < -30.0 then exp u
  else 1.0 /. (1.0 +. exp (-.u))

(* Polarity reflection and source/drain exchange are folded into sign
   fixups around one forward-frame EKV evaluation, so each call allocates
   exactly one [eval] record — this sits inside the Newton stamp loop.

   Forward frame: NMOS with vds >= 0. PMOS is the NMOS dual at
   (-vgs, -vds) with Id = -Id_n, dId/dVgs = gm_n, dId/dVds = gds_n.
   Reverse bias (vds_n < 0) evaluates the mirrored device at
   vgs' = vgd = vgs - vds, vds' = -vds; Id = -Id'. Chain rule:
   dId/dvgs = -dId'/dvgs' * dvgs'/dvgs = -gm'.
   dId/dvds = -(gm' * dvgs'/dvds + gds' * dvds'/dvds) = gm' + gds'. *)
let ids m ~temp ~vgs ~vds =
  let sgn = match m.polarity with Nmos -> 1.0 | Pmos -> -1.0 in
  let vgs_n = sgn *. vgs and vds_n = sgn *. vds in
  let reversed = vds_n < 0.0 in
  let vgs_f = if reversed then vgs_n -. vds_n else vgs_n in
  let vds_f = if reversed then -.vds_n else vds_n in
  let vt_th = Dramstress_util.Units.thermal_voltage temp in
  let n = m.n_sub in
  let kp = kp_t m ~temp in
  let vth = vth_mag m ~temp in
  let vp = (vgs_f -. vth) /. n in
  let scale = 2.0 *. n *. kp *. vt_th *. vt_th in
  let uf = vp /. (2.0 *. vt_th) in
  let ur = (vp -. vds_f) /. (2.0 *. vt_th) in
  let ff = softplus uf and fr = softplus ur in
  let i_f = ff *. ff and i_r = fr *. fr in
  let clm = 1.0 +. (m.lambda *. vds_f) in
  let id_f = scale *. (i_f -. i_r) *. clm in
  (* d i_f / d vp = ff * sigmoid(uf) / vt_th ; same pattern for i_r *)
  let dif_dvp = ff *. sigmoid uf /. vt_th in
  let dir_dvp = fr *. sigmoid ur /. vt_th in
  let gm_f = scale *. clm *. (dif_dvp -. dir_dvp) /. n in
  let gds_f =
    (scale *. clm *. (fr *. sigmoid ur /. vt_th))
    +. (scale *. (i_f -. i_r) *. m.lambda)
  in
  let id_n = if reversed then -.id_f else id_f in
  let gm_n = if reversed then -.gm_f else gm_f in
  let gds_n = if reversed then gm_f +. gds_f else gds_f in
  { id = sgn *. id_n; gm = gm_n; gds = gds_n }
