type polarity = Nmos | Pmos

type model = {
  name : string;
  polarity : polarity;
  vt0 : float;
  kp : float;
  lambda : float;
  vt_tc : float;
  mu_exp : float;
  n_sub : float;
  t_ref : float;
}

let make polarity ?(lambda = 0.05) ?(vt_tc = 2e-3) ?(mu_exp = 1.5)
    ?(n_sub = 1.4) ?(t_ref = 300.15) ~name ~vt0 ~kp () =
  if vt0 < 0.0 || kp <= 0.0 then
    invalid_arg "Mosfet: vt0 and kp must be positive magnitudes";
  { name; polarity; vt0; kp; lambda; vt_tc; mu_exp; n_sub; t_ref }

let nmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp () =
  make Nmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp ()

let pmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp () =
  make Pmos ?lambda ?vt_tc ?mu_exp ?n_sub ?t_ref ~name ~vt0 ~kp ()

let vth_mag m ~temp = m.vt0 -. (m.vt_tc *. (temp -. m.t_ref))

let vth m ~temp =
  let v = vth_mag m ~temp in
  match m.polarity with Nmos -> v | Pmos -> -.v

let kp_t m ~temp = m.kp *. ((temp /. m.t_ref) ** -.m.mu_exp)

type eval = { id : float; gm : float; gds : float }

(* numerically stable softplus and its derivative (logistic sigmoid) *)
let softplus u = if u > 30.0 then u else if u < -30.0 then exp u else log1p (exp u)

let sigmoid u =
  if u > 30.0 then 1.0
  else if u < -30.0 then exp u
  else 1.0 /. (1.0 +. exp (-.u))

(* EKV drain current for an NMOS-normalized device with vds >= 0 *)
let ids_forward m ~temp ~vgs ~vds =
  let vt_th = Dramstress_util.Units.thermal_voltage temp in
  let n = m.n_sub in
  let kp = kp_t m ~temp in
  let vth = vth_mag m ~temp in
  let vp = (vgs -. vth) /. n in
  let scale = 2.0 *. n *. kp *. vt_th *. vt_th in
  let uf = vp /. (2.0 *. vt_th) in
  let ur = (vp -. vds) /. (2.0 *. vt_th) in
  let ff = softplus uf and fr = softplus ur in
  let i_f = ff *. ff and i_r = fr *. fr in
  let clm = 1.0 +. (m.lambda *. vds) in
  let id = scale *. (i_f -. i_r) *. clm in
  (* d i_f / d vp = ff * sigmoid(uf) / vt_th ; same pattern for i_r *)
  let dif_dvp = ff *. sigmoid uf /. vt_th in
  let dir_dvp = fr *. sigmoid ur /. vt_th in
  let gm = scale *. clm *. (dif_dvp -. dir_dvp) /. n in
  let gds =
    (scale *. clm *. (fr *. sigmoid ur /. vt_th))
    +. (scale *. (i_f -. i_r) *. m.lambda)
  in
  { id; gm; gds }

(* handle source/drain exchange: for vds < 0 evaluate the mirrored device
   and reflect current and derivatives. The mirrored device sees
   vgs' = vgd = vgs - vds and vds' = -vds; Id = -Id'.
   Chain rule: dId/dvgs = -dId'/dvgs' * dvgs'/dvgs = -gm'.
   dId/dvds = -(gm' * dvgs'/dvds + gds' * dvds'/dvds) = -( -gm' - gds')
            = gm' + gds'. *)
let ids_nmos m ~temp ~vgs ~vds =
  if vds >= 0.0 then ids_forward m ~temp ~vgs ~vds
  else begin
    let e = ids_forward m ~temp ~vgs:(vgs -. vds) ~vds:(-.vds) in
    { id = -.e.id; gm = -.e.gm; gds = e.gm +. e.gds }
  end

(* PMOS by sign reflection: evaluate the NMOS dual at (-vgs, -vds);
   Id = -Id_n, dId/dvgs = -gm_n * (-1) = gm_n, dId/dvds likewise. *)
let ids m ~temp ~vgs ~vds =
  match m.polarity with
  | Nmos -> ids_nmos m ~temp ~vgs ~vds
  | Pmos ->
    let e = ids_nmos m ~temp ~vgs:(-.vgs) ~vds:(-.vds) in
    { id = -.e.id; gm = e.gm; gds = e.gds }
