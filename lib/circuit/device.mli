(** Circuit elements. Nodes are integers; node 0 is ground. *)

type node = int

(** Terminal selector, used when rewiring a device (defect injection). *)
type terminal =
  | Term_a  (** first terminal of a two-terminal device / MOSFET drain *)
  | Term_b  (** second terminal of a two-terminal device / MOSFET source *)
  | Term_gate  (** MOSFET gate *)

type t =
  | Resistor of { name : string; a : node; b : node; r : float }
  | Capacitor of { name : string; a : node; b : node; c : float }
  | Vsource of { name : string; pos : node; neg : node; wave : Waveform.t }
  | Isource of { name : string; pos : node; neg : node; wave : Waveform.t }
      (** current flows from [pos] through the source to [neg] (i.e. a
          positive value pushes current into [neg]'s node externally,
          following Spice convention: positive current flows pos->neg
          inside the source). *)
  | Switch of {
      name : string;
      a : node;
      b : node;
      ctrl : Waveform.t;  (** time-controlled, not node-controlled *)
      g_on : float;
      g_off : float;
      threshold : float;  (** on when [ctrl t > threshold] *)
    }
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      model : Mosfet.model;
      m : float;  (** parallel multiplicity *)
    }

(** [name d] is the device's unique name. *)
val name : t -> string

(** [nodes d] lists the nodes the device touches. *)
val nodes : t -> node list

(** [terminal_node d term] reads a terminal; raises [Invalid_argument] for
    [Term_gate] on a two-terminal device. *)
val terminal_node : t -> terminal -> node

(** [with_terminal d term n] rewires one terminal. *)
val with_terminal : t -> terminal -> node -> t

(** [pp ppf d] prints a one-line summary. *)
val pp : Format.formatter -> t -> unit
