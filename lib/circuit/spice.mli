(** A small SPICE-deck reader producing a {!Netlist.t}.

    Supported dialect (one card per line, case-insensitive, [*] and [;]
    comments, values with SI suffixes [f p n u m k meg g t] and an
    optional unit tail such as [2.4V] or [100fF]):

    {v
      * rails and sources
      Vdd vdd 0 DC 2.4
      Vwl wl 0 PULSE(0 3.2 6n 0.5n 48n 0.5n 60n)
      Vpwl x 0 PWL(0 0 1n 1 2n 0)
      Iload out 0 DC 1m

      * passives
      R1 a b 200k
      C1 cell 0 100f

      * transistor models and instances (level-1/EKV parameters)
      .MODEL nch NMOS (VT0=0.7 KP=1e-4 LAMBDA=0.05 TC=1m MU=2 N=1.4)
      .MODEL pch PMOS (VT0=0.5 KP=3e-4)
      M1 drain gate source nch
      M2 d g s pch M=2

      * time-controlled switch: control waveform, on/off conductance
      S1 a b PULSE(0 1 10n 1n 20n 1n) GON=1e-3 GOFF=1e-12 VT=0.5
    v}

    MOSFET cards take three nodes (drain gate source; the model supplies
    the bulk behaviour). The PULSE period argument is optional. *)

exception Parse_error of { line : int; message : string }

(** [parse_value s] reads a number with SI suffix: ["200k"] is 2e5,
    ["100f"] is 1e-13, ["3meg"] is 3e6. Raises [Failure] on junk. *)
val parse_value : string -> float

(** [parse source] builds a netlist from a deck. Line numbers in errors
    are 1-based. *)
val parse : string -> Netlist.t

(** [parse_file path] reads and parses a deck file. *)
val parse_file : string -> Netlist.t
