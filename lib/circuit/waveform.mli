(** Time-dependent source values for independent sources and switch
    controls. Waveforms are pure functions of time; they carry no state. *)

type t =
  | Dc of float
      (** constant value *)
  | Pulse of pulse
      (** trapezoidal pulse train *)
  | Pwl of (float * float) array
      (** piecewise linear; holds the first/last value outside the range.
          Breakpoints must be strictly increasing. *)

and pulse = {
  v0 : float;      (** initial/resting value *)
  v1 : float;      (** pulsed value *)
  delay : float;   (** time of first rising edge start *)
  rise : float;    (** rise duration (>= 0) *)
  width : float;   (** time spent at [v1] *)
  fall : float;    (** fall duration (>= 0) *)
  period : float option;  (** [None] for a single pulse *)
}

(** [eval w t] is the waveform value at time [t]. *)
val eval : t -> float -> float

(** [dc v] is [Dc v]. *)
val dc : float -> t

(** [pulse ?period ~v0 ~v1 ~delay ~rise ~width ~fall ()] builds a pulse;
    raises [Invalid_argument] on negative durations. *)
val pulse :
  ?period:float ->
  v0:float -> v1:float -> delay:float -> rise:float -> width:float ->
  fall:float -> unit -> t

(** [pwl pts] builds a piecewise-linear waveform; raises
    [Invalid_argument] unless breakpoints strictly increase. *)
val pwl : (float * float) list -> t

(** [pwl_steps ~t_edge v0 steps] builds a PWL from step commands: value
    [v0] until the first step, then each [(time, value)] reached with an
    edge of duration [t_edge]. Convenient for control signals. *)
val pwl_steps : t_edge:float -> float -> (float * float) list -> t

(** [shift dt w] delays the waveform by [dt] (PWL and pulse only; DC is
    unchanged). *)
val shift : float -> t -> t

(** [breakpoints ~until w] returns the time points in [[0, until]] where
    the waveform changes slope — used by the transient engine to align
    steps with edges. *)
val breakpoints : until:float -> t -> float list
