type node = int

type terminal = Term_a | Term_b | Term_gate

type t =
  | Resistor of { name : string; a : node; b : node; r : float }
  | Capacitor of { name : string; a : node; b : node; c : float }
  | Vsource of { name : string; pos : node; neg : node; wave : Waveform.t }
  | Isource of { name : string; pos : node; neg : node; wave : Waveform.t }
  | Switch of {
      name : string;
      a : node;
      b : node;
      ctrl : Waveform.t;
      g_on : float;
      g_off : float;
      threshold : float;
    }
  | Mosfet of {
      name : string;
      d : node;
      g : node;
      s : node;
      model : Mosfet.model;
      m : float;
    }

let name = function
  | Resistor { name; _ } | Capacitor { name; _ } | Vsource { name; _ }
  | Isource { name; _ } | Switch { name; _ } | Mosfet { name; _ } ->
    name

let nodes = function
  | Resistor { a; b; _ } | Capacitor { a; b; _ } | Switch { a; b; _ } ->
    [ a; b ]
  | Vsource { pos; neg; _ } | Isource { pos; neg; _ } -> [ pos; neg ]
  | Mosfet { d; g; s; _ } -> [ d; g; s ]

let terminal_node d term =
  match (d, term) with
  | (Resistor { a; _ } | Capacitor { a; _ } | Switch { a; _ }), Term_a -> a
  | (Resistor { b; _ } | Capacitor { b; _ } | Switch { b; _ }), Term_b -> b
  | (Vsource { pos; _ } | Isource { pos; _ }), Term_a -> pos
  | (Vsource { neg; _ } | Isource { neg; _ }), Term_b -> neg
  | Mosfet { d; _ }, Term_a -> d
  | Mosfet { s; _ }, Term_b -> s
  | Mosfet { g; _ }, Term_gate -> g
  | ( Resistor _ | Capacitor _ | Switch _ | Vsource _ | Isource _ ), Term_gate
    ->
    invalid_arg "Device.terminal_node: Term_gate on a two-terminal device"

let with_terminal d term n =
  match (d, term) with
  | Resistor r, Term_a -> Resistor { r with a = n }
  | Resistor r, Term_b -> Resistor { r with b = n }
  | Capacitor c, Term_a -> Capacitor { c with a = n }
  | Capacitor c, Term_b -> Capacitor { c with b = n }
  | Switch s, Term_a -> Switch { s with a = n }
  | Switch s, Term_b -> Switch { s with b = n }
  | Vsource v, Term_a -> Vsource { v with pos = n }
  | Vsource v, Term_b -> Vsource { v with neg = n }
  | Isource i, Term_a -> Isource { i with pos = n }
  | Isource i, Term_b -> Isource { i with neg = n }
  | Mosfet m, Term_a -> Mosfet { m with d = n }
  | Mosfet m, Term_b -> Mosfet { m with s = n }
  | Mosfet m, Term_gate -> Mosfet { m with g = n }
  | ( Resistor _ | Capacitor _ | Switch _ | Vsource _ | Isource _ ), Term_gate
    ->
    invalid_arg "Device.with_terminal: Term_gate on a two-terminal device"

let pp ppf d =
  match d with
  | Resistor { name; a; b; r } ->
    Format.fprintf ppf "R %s %d-%d %a" name a b Dramstress_util.Units.pp_si r
  | Capacitor { name; a; b; c } ->
    Format.fprintf ppf "C %s %d-%d %a" name a b Dramstress_util.Units.pp_si c
  | Vsource { name; pos; neg; _ } ->
    Format.fprintf ppf "V %s %d-%d" name pos neg
  | Isource { name; pos; neg; _ } ->
    Format.fprintf ppf "I %s %d-%d" name pos neg
  | Switch { name; a; b; _ } -> Format.fprintf ppf "S %s %d-%d" name a b
  | Mosfet { name; d; g; s; model; _ } ->
    let pol =
      match model.Mosfet.polarity with Mosfet.Nmos -> "N" | Mosfet.Pmos -> "P"
    in
    Format.fprintf ppf "M%s %s d=%d g=%d s=%d" pol name d g s
