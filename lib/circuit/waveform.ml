type pulse = {
  v0 : float;
  v1 : float;
  delay : float;
  rise : float;
  width : float;
  fall : float;
  period : float option;
}

type t = Dc of float | Pulse of pulse | Pwl of (float * float) array

let dc v = Dc v

let pulse ?period ~v0 ~v1 ~delay ~rise ~width ~fall () =
  if rise < 0.0 || width < 0.0 || fall < 0.0 || delay < 0.0 then
    invalid_arg "Waveform.pulse: negative duration";
  (match period with
  | Some p when p < rise +. width +. fall ->
    invalid_arg "Waveform.pulse: period shorter than pulse"
  | _ -> ());
  Pulse { v0; v1; delay; rise; width; fall; period }

let pwl pts =
  let arr = Array.of_list pts in
  for i = 0 to Array.length arr - 2 do
    if fst arr.(i) >= fst arr.(i + 1) then
      invalid_arg "Waveform.pwl: breakpoints must strictly increase"
  done;
  if Array.length arr = 0 then invalid_arg "Waveform.pwl: empty";
  Pwl arr

let pwl_steps ~t_edge v0 steps =
  if t_edge <= 0.0 then invalid_arg "Waveform.pwl_steps: t_edge <= 0";
  let rec build prev_v acc = function
    | [] -> List.rev acc
    | (t, v) :: rest ->
      (* hold prev value until t, then ramp to v over t_edge *)
      build v ((t +. t_edge, v) :: (t, prev_v) :: acc) rest
  in
  match steps with
  | [] -> Dc v0
  | (t0, _) :: _ ->
    let start = if t0 > 0.0 then [ (0.0, v0) ] else [] in
    pwl (start @ build v0 [] steps)

let eval_pulse p t =
  if t < p.delay then p.v0
  else begin
    let t' =
      match p.period with
      | None -> t -. p.delay
      | Some per -> Float.rem (t -. p.delay) per
    in
    if t' < p.rise then
      if p.rise = 0.0 then p.v1
      else p.v0 +. ((p.v1 -. p.v0) *. t' /. p.rise)
    else if t' < p.rise +. p.width then p.v1
    else if t' < p.rise +. p.width +. p.fall then begin
      let f = (t' -. p.rise -. p.width) /. p.fall in
      p.v1 +. ((p.v0 -. p.v1) *. f)
    end
    else p.v0
  end

let eval_pwl arr t =
  let n = Array.length arr in
  if t <= fst arr.(0) then snd arr.(0)
  else if t >= fst arr.(n - 1) then snd arr.(n - 1)
  else begin
    let rec find lo hi =
      if hi - lo <= 1 then lo
      else begin
        let m = (lo + hi) / 2 in
        if fst arr.(m) <= t then find m hi else find lo m
      end
    in
    let i = find 0 (n - 1) in
    let t0, v0 = arr.(i) and t1, v1 = arr.(i + 1) in
    v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
  end

let eval w t =
  match w with
  | Dc v -> v
  | Pulse p -> eval_pulse p t
  | Pwl arr -> eval_pwl arr t

let shift dt = function
  | Dc v -> Dc v
  | Pulse p -> Pulse { p with delay = p.delay +. dt }
  | Pwl arr -> Pwl (Array.map (fun (t, v) -> (t +. dt, v)) arr)

let breakpoints ~until w =
  let keep ts = List.filter (fun t -> t >= 0.0 && t <= until) ts in
  match w with
  | Dc _ -> []
  | Pwl arr -> keep (Array.to_list (Array.map fst arr))
  | Pulse p ->
    let one_period t0 =
      [ t0; t0 +. p.rise; t0 +. p.rise +. p.width;
        t0 +. p.rise +. p.width +. p.fall ]
    in
    let starts =
      match p.period with
      | None -> [ p.delay ]
      | Some per ->
        let rec loop t acc =
          if t > until then List.rev acc else loop (t +. per) (t :: acc)
        in
        loop p.delay []
    in
    keep (List.concat_map one_period starts)
