exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* values with SI suffixes                                             *)
(* ------------------------------------------------------------------ *)

let suffixes =
  [ ("meg", 1e6); ("t", 1e12); ("g", 1e9); ("k", 1e3); ("m", 1e-3);
    ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15) ]

let units = [ "v"; "a"; "s"; "hz"; "ohm"; "f" ]

(* number, possibly with a multiplier suffix; multiplier suffixes take
   precedence over unit tails ("100f" is 100 femto-something) *)
let parse_raw s =
  let with_suffix =
    List.find_map
      (fun (suf, mult) ->
        let n = String.length s and m = String.length suf in
        if n > m && String.sub s (n - m) m = suf then
          match float_of_string_opt (String.sub s 0 (n - m)) with
          | Some v -> Some (v *. mult)
          | None -> None
        else None)
      suffixes
  in
  match with_suffix with
  | Some v -> Some v
  | None -> float_of_string_opt s

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then failwith "Spice.parse_value: empty";
  match parse_raw s with
  | Some v -> v
  | None -> begin
    (* retry with one unit tail stripped: "2.4v", "60ns", "100ff" *)
    let stripped =
      List.find_map
        (fun u ->
          let n = String.length s and m = String.length u in
          if n > m && String.sub s (n - m) m = u then
            parse_raw (String.sub s 0 (n - m))
          else None)
        units
    in
    match stripped with
    | Some v -> v
    | None -> failwith ("Spice.parse_value: bad value " ^ s)
  end

(* ------------------------------------------------------------------ *)
(* tokenization: split a card into words, keeping (...) groups whole    *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize lineno s =
  let n = String.length s in
  let toks = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    match c with
    | '(' ->
      incr depth;
      Buffer.add_char buf c
    | ')' ->
      decr depth;
      if !depth < 0 then fail lineno "unbalanced ')'";
      Buffer.add_char buf c
    | ' ' | '\t' -> if !depth > 0 then Buffer.add_char buf ' ' else flush ()
    | '=' ->
      (* keep key=value together; also tolerate spaces handled above *)
      Buffer.add_char buf '='
    | _ -> Buffer.add_char buf c
  done;
  if !depth <> 0 then fail lineno "unbalanced '('";
  flush ();
  List.rev !toks

(* split "PULSE(0 1 2n ...)" into ("pulse", [args]) *)
let call_args lineno tok =
  match String.index_opt tok '(' with
  | None -> None
  | Some i ->
    let name = String.lowercase_ascii (String.sub tok 0 i) in
    let inner = String.sub tok (i + 1) (String.length tok - i - 2) in
    let args =
      String.split_on_char ' ' inner
      |> List.concat_map (String.split_on_char ',')
      |> List.filter (( <> ) "")
    in
    ignore lineno;
    Some (name, args)

let parse_wave lineno toks =
  match toks with
  | [] -> fail lineno "missing source value"
  | first :: rest -> begin
    match String.lowercase_ascii first with
    | "dc" -> begin
      match rest with
      | [ v ] -> Waveform.dc (parse_value v)
      | _ -> fail lineno "DC takes one value"
    end
    | _ -> begin
      match call_args lineno first with
      | Some ("pulse", args) -> begin
        match List.map parse_value args with
        | [ v0; v1; delay; rise; width; fall ] ->
          Waveform.pulse ~v0 ~v1 ~delay ~rise ~width ~fall ()
        | [ v0; v1; delay; rise; width; fall; period ] ->
          Waveform.pulse ~period ~v0 ~v1 ~delay ~rise ~width ~fall ()
        | _ -> fail lineno "PULSE takes 6 or 7 values"
      end
      | Some ("pwl", args) -> begin
        let values = List.map parse_value args in
        let rec pair = function
          | [] -> []
          | t :: v :: rest -> (t, v) :: pair rest
          | [ _ ] -> fail lineno "PWL needs an even number of values"
        in
        match pair values with
        | [] -> fail lineno "PWL needs at least one point"
        | pts -> Waveform.pwl pts
      end
      | Some (fn, _) -> fail lineno "unknown source function %s" fn
      | None -> begin
        (* bare value = DC *)
        match rest with
        | [] -> Waveform.dc (parse_value first)
        | _ -> fail lineno "unexpected tokens after source value"
      end
    end
  end

(* key=value parameter list *)
let params lineno toks =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        ( String.lowercase_ascii (String.sub tok 0 i),
          String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> fail lineno "expected key=value, got %s" tok)
    toks

(* ------------------------------------------------------------------ *)
(* deck parsing                                                        *)
(* ------------------------------------------------------------------ *)

type model_entry = Mosfet.model

let parse_model lineno toks : string * model_entry =
  (* .MODEL name NMOS|PMOS (key=value ...)  -- parens optional *)
  let cleaned =
    List.map
      (fun t ->
        let t = String.trim t in
        let t =
          if String.length t > 0 && t.[0] = '(' then
            String.sub t 1 (String.length t - 1)
          else t
        in
        if String.length t > 0 && t.[String.length t - 1] = ')' then
          String.sub t 0 (String.length t - 1)
        else t)
      toks
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (( <> ) "")
  in
  match cleaned with
  | name :: polarity :: rest ->
    let ps = params lineno rest in
    let get key default =
      match List.assoc_opt key ps with
      | Some v -> parse_value v
      | None -> default
    in
    let vt0 = get "vt0" 0.5 and kp = get "kp" 1e-4 in
    let lambda = get "lambda" 0.05 in
    let vt_tc = get "tc" 2e-3 and mu_exp = get "mu" 1.5 in
    let n_sub = get "n" 1.4 in
    let mk =
      match String.lowercase_ascii polarity with
      | "nmos" -> Mosfet.nmos
      | "pmos" -> Mosfet.pmos
      | p -> fail lineno "unknown model polarity %s" p
    in
    ( String.lowercase_ascii name,
      mk ~lambda ~vt_tc ~mu_exp ~n_sub ~name ~vt0 ~kp () )
  | _ -> fail lineno ".MODEL needs a name and a polarity"

let parse source =
  let nl = Netlist.create () in
  let models = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line = "" || line.[0] = '*' then ()
      else begin
        let toks = tokenize lineno line in
        match toks with
        | [] -> ()
        | card :: rest -> begin
          let kind = Char.lowercase_ascii card.[0] in
          match kind with
          | '.' -> begin
            match String.lowercase_ascii card with
            | ".model" ->
              let name, model = parse_model lineno rest in
              Hashtbl.replace models name model
            | ".end" | ".ends" -> ()
            | directive -> fail lineno "unsupported directive %s" directive
          end
          | 'r' -> begin
            match rest with
            | [ a; b; v ] -> begin
              match parse_value v with
              | value -> Netlist.resistor nl ~name:card a b value
              | exception Failure m -> fail lineno "%s" m
            end
            | _ -> fail lineno "R card: R<name> a b value"
          end
          | 'c' -> begin
            match rest with
            | [ a; b; v ] -> begin
              match parse_value v with
              | value -> Netlist.capacitor nl ~name:card a b value
              | exception Failure m -> fail lineno "%s" m
            end
            | _ -> fail lineno "C card: C<name> a b value"
          end
          | 'v' -> begin
            match rest with
            | a :: b :: wave_toks ->
              Netlist.vsource nl ~name:card a b (parse_wave lineno wave_toks)
            | _ -> fail lineno "V card: V<name> pos neg <source>"
          end
          | 'i' -> begin
            match rest with
            | a :: b :: wave_toks ->
              Netlist.isource nl ~name:card a b (parse_wave lineno wave_toks)
            | _ -> fail lineno "I card: I<name> pos neg <source>"
          end
          | 'm' -> begin
            match rest with
            | d :: g :: s :: model_name :: extra ->
              let model =
                match
                  Hashtbl.find_opt models (String.lowercase_ascii model_name)
                with
                | Some m -> m
                | None -> fail lineno "unknown model %s" model_name
              in
              let m =
                match params lineno extra with
                | [] -> 1.0
                | ps -> begin
                  match List.assoc_opt "m" ps with
                  | Some v -> parse_value v
                  | None -> fail lineno "unknown MOSFET parameters"
                end
              in
              Netlist.mosfet nl ~name:card ~d ~g ~s ~model ~m ()
            | _ -> fail lineno "M card: M<name> d g s model [M=n]"
          end
          | 's' -> begin
            match rest with
            | a :: b :: wave_tok :: extra ->
              let ctrl = parse_wave lineno [ wave_tok ] in
              let ps = params lineno extra in
              let get key default =
                match List.assoc_opt key ps with
                | Some v -> parse_value v
                | None -> default
              in
              Netlist.switch nl ~name:card a b ~ctrl ~g_on:(get "gon" 1e-2)
                ~g_off:(get "goff" 1e-12) ~threshold:(get "vt" 0.5) ()
            | _ -> fail lineno "S card: S<name> a b <ctrl> [GON= GOFF= VT=]"
          end
          | c -> fail lineno "unsupported card '%c'" c
        end
      end)
    lines;
  nl

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (In_channel.input_all ic))
