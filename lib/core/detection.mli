(** Detection conditions: operation sequences with expected read values.

    The paper writes these as [{... w1 w1 w0 r0 ...}] — prime the cell
    with the complement, write the victim value, read it back. A defect
    is {e detected} when any read returns something other than its
    expected value. *)

type step =
  | Write of int      (** write the logical bit (0 or 1) *)
  | Read of int       (** read, expecting the logical bit *)
  | Wait of float     (** retention pause, s *)
  | Hammer of int
      (** activate the neighbour (aggressor) word line for n full cycles
          without touching the victim's column — the coupling-disturb
          element. [n >= 1]. *)

type t = { steps : step list }

(** [v steps] validates bits are 0/1, pauses positive, hammer counts
    >= 1. *)
val v : step list -> t

(** [standard ~victim ~primes] is the paper's shape:
    [primes] writes of the complement, one write of [victim], one read of
    [victim]. [primes >= 1]. *)
val standard : victim:int -> primes:int -> t

(** [retention ~victim ~pause] writes [victim], waits, reads [victim] —
    the classic data-retention element used against high-resistance
    shorts. *)
val retention : victim:int -> pause:float -> t

(** [hammer ~victim ~count] writes [victim], pulses the aggressor word
    line [count] times, reads [victim] — the coupling-disturb element
    ("hammer the aggressor N times, then read the victim"). Cross it
    with the [c_couple] stress axis to expose inter-cell coupling
    defects. *)
val hammer : victim:int -> count:int -> t

(** [ops cond] lowers the condition to raw memory operations. *)
val ops : t -> Dramstress_dram.Ops.op list

(** [expected_reads cond] lists expected read values in order. *)
val expected_reads : t -> int list

(** [initial_vc cond ~stress ~defect] is the physical storage voltage the
    analysis starts from: the physical image of the first written bit's
    complement, so the first write does real work. *)
val initial_vc :
  t -> stress:Dramstress_dram.Stress.t -> defect:Dramstress_defect.Defect.t ->
  float

(** [judge ?min_separation cond outcome] is the pure detection verdict
    for an already-simulated run of [ops cond]: true when any read fails
    — a wrong bit, or a bit-line separation at strobe time below
    [min_separation] (default 0.5 V). Split out from {!detects} so
    batched sweeps ({!Border.search}) can simulate many resistances in
    one ensemble ({!Dramstress_dram.Ops.run_batch}) and judge each lane
    outcome separately. *)
val judge :
  ?min_separation:float -> t -> Dramstress_dram.Ops.outcome -> bool

(** [detects ?tech ?sim ?min_separation ~stress ~defect cond] runs the
    condition electrically and reports whether any read fails: a wrong
    bit, or a bit-line separation at strobe time below [min_separation]
    (default 0.5 V) — a metastable output that a tester's VOH/VOL levels
    reject. [sim] overrides the solver options of the underlying run.
    Equivalent to simulating [ops cond] from [initial_vc] and applying
    {!judge}. *)
val detects :
  ?tech:Dramstress_dram.Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?min_separation:float ->
  stress:Dramstress_dram.Stress.t ->
  defect:Dramstress_defect.Defect.t ->
  t ->
  bool

(** [pp ppf cond] prints the paper's notation, e.g.
    [{... w1, w1, w0, r0 ...}]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
