module O = Dramstress_dram.Ops
module S = Dramstress_dram.Stress
module D = Dramstress_defect.Defect
module A = Dramstress_util.Ascii_plot

let glyphs = [| '1'; '2'; '3'; '4'; '5'; '6'; '7'; '8' |]

let plane_chart ~title (plane : Plane.t) =
  let series_of_curve i (c : Plane.curve) =
    A.series ~glyph:glyphs.(i mod Array.length glyphs) c.Plane.label
      (List.map (fun { Plane.r; vc } -> (r, vc)) c.Plane.points)
  in
  let vsa_series =
    A.series ~glyph:'S' "Vsa"
      (List.map
         (fun { Plane.r_sa; vsa } ->
           ( r_sa,
             match vsa with
             | Plane.Vsa v -> v
             | Plane.Reads_all_1 -> 0.0
             | Plane.Reads_all_0 -> plane.Plane.stress.S.vdd ))
         plane.Plane.vsa_curve)
  in
  A.render ~x_axis:A.Log10 ~x_label:"defect resistance (Ohm)"
    ~y_label:"Vc (V)"
    ~hlines:[ ("Vmp", plane.Plane.vmp) ]
    ~title
    (List.mapi series_of_curve plane.Plane.curves @ [ vsa_series ])

let figure2_with_failures ?tech ?config ?checkpoint ?rops ~stress ~kind
    ~placement () =
  let w0 =
    Plane.write_plane ?tech ?config ?checkpoint ?rops ~stress ~kind
      ~placement ~op:O.W0 ()
  in
  let w1 =
    Plane.write_plane ?tech ?config ?checkpoint ?rops ~stress ~kind
      ~placement ~op:O.W1 ()
  in
  let r =
    Plane.read_plane ?tech ?config ?checkpoint ?rops ~stress ~kind
      ~placement ()
  in
  let br_line =
    match Plane.br_geometric w0 with
    | Some br ->
      Format.asprintf
        "geometric BR (intersection of (2) w0 with Vsa): %aOhm\n"
        Dramstress_util.Units.pp_si br
    | None -> "geometric BR: no crossing in the sampled range\n"
  in
  let failures =
    w0.Plane.failures @ w1.Plane.failures @ r.Plane.failures
  in
  let failure_lines =
    if failures = [] then []
    else
      [
        Printf.sprintf "%d point(s) failed and are omitted above:"
          (List.length failures)
        :: List.map
             (fun f ->
               Format.asprintf "  R = %aOhm: %s"
                 Dramstress_util.Units.pp_si f.Dramstress_util.Outcome.point
                 (Dramstress_util.Outcome.error_message f))
             failures
        |> String.concat "\n";
      ]
  in
  ( String.concat "\n"
      ([
         Format.asprintf "Result planes for defect %a (%a) at %a" D.pp_kind
           kind D.pp_placement placement S.pp stress;
         plane_chart ~title:"(a) Plane of w0" w0;
         plane_chart ~title:"(b) Plane of w1" w1;
         plane_chart ~title:"(c) Plane of r" r;
         br_line;
       ]
      @ failure_lines),
    failures )

let figure2 ?tech ?config ?checkpoint ?rops ~stress ~kind ~placement () =
  fst
    (figure2_with_failures ?tech ?config ?checkpoint ?rops ~stress ~kind
       ~placement ())

let figure_st_panels ?tech ~stress ~axis ~values ~kind ~placement
    ?(analysis_r = 200e3) () =
  let defect = D.v kind placement analysis_r in
  let victim = D.logical_victim kind placement in
  let victim_op = if victim = 0 then O.W0 else O.W1 in
  let physical_target = D.victim_bit kind in
  let label v = Format.asprintf "%a=%g" S.pp_axis axis v in
  let write_series =
    List.mapi
      (fun i v ->
        let st = S.set stress axis v in
        let vc_init = if physical_target = 0 then st.S.vdd else 0.0 in
        A.series ~glyph:glyphs.(i mod Array.length glyphs) (label v)
          (Stressor.trace_vc ?tech ~stress:st ~defect ~vc_init victim_op))
      values
  in
  let read_series =
    List.mapi
      (fun i v ->
        let st = S.set stress axis v in
        let vsa =
          match Plane.vsa ?tech ~stress:st ~defect () with
          | Plane.Vsa x -> x
          | Plane.Reads_all_1 -> 0.0
          | Plane.Reads_all_0 -> st.S.vdd
        in
        (* seed marginally on the faulty side of the threshold, the
           paper's +-0.1..0.2 V *)
        let seed =
          if physical_target = 0 then Float.min st.S.vdd (vsa +. 0.1)
          else Float.max 0.0 (vsa -. 0.1)
        in
        A.series ~glyph:glyphs.(i mod Array.length glyphs) (label v)
          (Stressor.trace_vc ?tech ~stress:st ~defect ~vc_init:seed O.R))
      values
  in
  String.concat "\n"
    [
      Format.asprintf
        "Stress panels for %a on defect %a (%a), R = %aOhm" S.pp_axis axis
        D.pp_kind kind D.pp_placement placement Dramstress_util.Units.pp_si
        analysis_r;
      A.render ~x_label:"time (s)" ~y_label:"Vc (V)"
        ~title:
          (Format.asprintf "Vc during a w%d operation" victim)
        write_series;
      A.render ~x_label:"time (s)" ~y_label:"Vc (V)"
        ~title:"Vc during a read of a marginal cell" read_series;
    ]

let plane_csv (plane : Plane.t) =
  let header =
    "r_ohm"
    :: List.map (fun (c : Plane.curve) -> c.Plane.label) plane.Plane.curves
    @ [ "vsa" ]
  in
  let rows =
    List.map
      (fun r ->
        let curve_value (c : Plane.curve) =
          match
            List.find_opt (fun p -> p.Plane.r = r) c.Plane.points
          with
          | Some p -> Printf.sprintf "%.6g" p.Plane.vc
          | None -> ""
        in
        let vsa_value =
          match
            List.find_opt (fun p -> p.Plane.r_sa = r) plane.Plane.vsa_curve
          with
          | Some { Plane.vsa = Plane.Vsa v; _ } -> Printf.sprintf "%.6g" v
          | Some { Plane.vsa = Plane.Reads_all_1; _ } -> "all1"
          | Some { Plane.vsa = Plane.Reads_all_0; _ } -> "all0"
          | None -> ""
        in
        (Printf.sprintf "%.6g" r
        :: List.map curve_value plane.Plane.curves)
        @ [ vsa_value ])
      plane.Plane.rops
  in
  Dramstress_util.Csvout.to_string ~header rows
