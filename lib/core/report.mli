(** Text rendering of the paper's figures. *)

(** [figure2 ?tech ?config ?rops ~stress ~kind ~placement ()] renders
    the three result planes (w0, w1, r) with the V_sa curve and V_mp
    marker — Figure 2 at the nominal SC, Figure 6 at a stressed SC.
    Also reports the geometric BR when the curves cross. [config]
    bundles solver options, retry policy and per-point deadline as in
    {!Plane.write_plane}. *)
val figure2 :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?rops:float list ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  unit ->
  string

(** Like {!figure2} but also returns the per-point sweep failures of
    all three planes (in plane order w0, w1, r), so front ends can
    turn failed points into an exit status. Failed points are listed
    at the end of the rendering, never interpolated over. *)
val figure2_with_failures :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?rops:float list ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  unit ->
  string * float Dramstress_util.Outcome.failure list

(** [figure_st_panels ?tech ~stress ~axis ~values ~kind ~placement
    ~analysis_r ()] renders the two time-domain panels of Figures 3–5:
    V_c(t) during a victim write and during a read of a marginal cell,
    one series per stress value. *)
val figure_st_panels :
  ?tech:Dramstress_dram.Tech.t ->
  stress:Dramstress_dram.Stress.t ->
  axis:Dramstress_dram.Stress.axis ->
  values:float list ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  ?analysis_r:float ->
  unit ->
  string

(** [plane_csv plane] dumps a plane's curves for external plotting. *)
val plane_csv : Plane.t -> string
