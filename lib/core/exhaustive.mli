(** Exhaustive stress optimization — the labour-intensive baseline the
    paper's Section 4 opens with: "performing a full fault analysis
    (generating the three result planes) for each ST value of interest".

    Here the full factorial grid of stress combinations is searched and
    the most covering BR reported, together with the number of
    electrical simulations spent — the cost the paper's two-point probe
    method avoids. *)

type t = {
  best : Dramstress_dram.Stress.t;
  best_br : Border.result;
  grid_size : int;          (** number of SCs evaluated *)
  simulations : int;        (** electrical runs consumed *)
  ranking : (Dramstress_dram.Stress.t * Border.result) list;
      (** every SC with its BR, most covering first *)
  failures : Dramstress_dram.Stress.t Dramstress_util.Outcome.failure list;
      (** grid points whose border search failed outright; the ranking is
          built from the surviving points *)
}

(** [optimize ?tech ?tcyc_values ?temp_values ?vdd_values ~nominal ~kind
    ~placement detection] evaluates the BR of [detection] at every
    combination. Default grids: t_cyc {55, 60, 65 ns} x T {-33, 27,
    87 C} x V_dd {2.1, 2.4, 2.7 V}.

    [jobs] caps the domains used to evaluate grid points in parallel
    (default [Dramstress_util.Par.resolve_jobs]; [~jobs:1] is
    sequential). [config] bundles the simulation parameters
    ({!Dramstress_dram.Sim_config.t}); explicit [?tech ?jobs] override
    matching [config] fields. Each grid point observes the shared
    [core.sweep.point_ms] telemetry histogram and emits an
    [exhaustive.point] span.

    [checkpoint] memoizes each grid point's whole border search, so an
    interrupted optimization resumes where it stopped. A grid point that
    still fails lands in [t.failures]; [Invalid_argument] is raised only
    when the grid is empty or {e no} point survived. *)
val optimize :
  ?tech:Dramstress_dram.Tech.t ->
  ?jobs:int ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  ?tcyc_values:float list ->
  ?temp_values:float list ->
  ?vdd_values:float list ->
  nominal:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  Detection.t ->
  t

(** Cost/result comparison of the two methods on the same defect. *)
type comparison = {
  exhaustive : t;
  probe_sc : Dramstress_dram.Stress.t;
  probe_br : Border.result;
  probe_simulations : int;
  agreement : bool;
      (** the probe method found an SC within one grid notch of the
          exhaustive optimum on every axis *)
}

(** [compare_methods ?tech ~nominal ~kind ~placement ()] runs both the
    exhaustive baseline and the paper's probe method ({!Sc_eval}) and
    reports the simulation budgets. *)
val compare_methods :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  nominal:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  unit ->
  comparison

val pp : Format.formatter -> t -> unit
val pp_comparison : Format.formatter -> comparison -> unit
