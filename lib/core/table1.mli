(** Table 1 of the paper: ST optimization results over the whole defect
    catalog, each on the true and the complementary bit line. *)

type row = {
  defect_id : string;
  placement : Dramstress_defect.Defect.placement;
  evaluation : Sc_eval.t;
}

type t = {
  rows : row list;
  failures :
    (string * Dramstress_defect.Defect.placement)
    Dramstress_util.Outcome.failure list;
      (** (defect id, placement) rows whose evaluation failed even after
          the retry policy; the table is built from the surviving rows *)
  nominal : Dramstress_dram.Stress.t;
}

(** [generate ?tech ?jobs ?nominal ?entries ?placements ()] runs the full
    optimization for every catalog entry and placement. The three opens
    are electrically equivalent; pass [entries] to restrict (e.g. one
    open representative) when compute time matters. Rows are evaluated
    in parallel over at most [jobs] domains (default
    [Dramstress_util.Par.resolve_jobs]; [~jobs:1] is sequential).
    [config] bundles the simulation parameters
    ({!Dramstress_dram.Sim_config.t}); explicit [?tech ?jobs] override
    matching [config] fields. Each row observes the shared
    [core.sweep.point_ms] telemetry histogram and emits a [table1.row]
    span.

    [checkpoint] threads a {!Dramstress_util.Checkpoint} store through
    every border search of every row: an interrupted table regeneration
    resumes from the finished searches instead of starting over.

    [axes] selects which stress axes each row probes and optimizes
    (default {!Sc_eval.evaluate}'s paper trio: cycle time, temperature,
    supply voltage). Any {!Dramstress_dram.Stress.axis} registered in
    {!Dramstress_stressaxis.Stressaxis} works; the rendered/CSV
    direction columns follow the probed axes. *)
val generate :
  ?tech:Dramstress_dram.Tech.t ->
  ?jobs:int ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  ?nominal:Dramstress_dram.Stress.t ->
  ?entries:Dramstress_defect.Defect.entry list ->
  ?placements:Dramstress_defect.Defect.placement list ->
  ?axes:Dramstress_dram.Stress.axis list ->
  ?pause:float ->
  unit ->
  t

(** [br_string result] is the compact border-resistance cell rendering
    used by {!render} ("200k", "1M..10G", "all R", ...) — exposed so
    other Table-1-style reports (campaign BR-shift diffs) render borders
    identically to the canonical table. *)
val br_string : Border.result -> string

(** [render table] formats the paper-style table as text. Direction
    columns are derived from the axes actually probed (registry names),
    so extended-axis tables render without a layout change here. *)
val render : t -> string

(** [to_csv table] machine-readable form. Direction column headers are
    ["<axis>_dir"] per probed axis — ["tcyc_dir"; "temp_dir";
    "vdd_dir"] for the default trio, unchanged from earlier versions. *)
val to_csv : t -> string
