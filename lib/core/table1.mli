(** Table 1 of the paper: ST optimization results over the whole defect
    catalog, each on the true and the complementary bit line. *)

type row = {
  defect_id : string;
  placement : Dramstress_defect.Defect.placement;
  evaluation : Sc_eval.t;
}

type t = { rows : row list; nominal : Dramstress_dram.Stress.t }

(** [generate ?tech ?jobs ?nominal ?entries ?placements ()] runs the full
    optimization for every catalog entry and placement. The three opens
    are electrically equivalent; pass [entries] to restrict (e.g. one
    open representative) when compute time matters. Rows are evaluated
    in parallel over at most [jobs] domains (default
    [Dramstress_util.Par.default_jobs ()]; [~jobs:1] is sequential). *)
val generate :
  ?tech:Dramstress_dram.Tech.t ->
  ?jobs:int ->
  ?nominal:Dramstress_dram.Stress.t ->
  ?entries:Dramstress_defect.Defect.entry list ->
  ?placements:Dramstress_defect.Defect.placement list ->
  ?pause:float ->
  unit ->
  t

(** [render table] formats the paper-style table as text. *)
val render : t -> string

(** [to_csv table] machine-readable form. *)
val to_csv : t -> string
