module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module O = Dramstress_dram.Ops
module D = Dramstress_defect.Defect
module Tel = Dramstress_util.Telemetry

let h_point =
  Tel.Histogram.make ~unit_:"ms" ~lo:1e-2 ~hi:1e6 ~buckets:40
    "core.sweep.point_ms"

type t = {
  best : S.t;
  best_br : Border.result;
  grid_size : int;
  simulations : int;
  ranking : (S.t * Border.result) list;
  failures : S.t Dramstress_util.Outcome.failure list;
}

let optimize ?tech ?jobs ?config ?checkpoint ?window
    ?(tcyc_values = [ 55e-9; 60e-9; 65e-9 ])
    ?(temp_values = [ -33.0; 27.0; 87.0 ])
    ?(vdd_values = [ 2.1; 2.4; 2.7 ]) ~nominal ~kind ~placement detection =
  let config = Sc.resolve ?tech ?jobs ?config () in
  let polarity = D.polarity kind in
  let before = O.run_count () in
  let combos =
    List.concat_map
      (fun tcyc ->
        List.concat_map
          (fun temp_c ->
            List.map
              (fun vdd -> { nominal with S.tcyc; temp_c; vdd })
              vdd_values)
          temp_values)
      tcyc_values
  in
  (* every SC evaluation is independent, so the factorial grid fans out
     over domains; border searches within each SC stay sequential. A
     grid point whose search fails outright becomes a [Failed] slot and
     the remaining SCs are still ranked. *)
  let scored, failures =
    Dramstress_util.Outcome.partition
      (Dramstress_util.Par.parallel_map_outcomes
         ~jobs:(Sc.resolve_jobs config) ~retries_of:O.retries_of
         (fun sc ->
           Tel.Histogram.time_ms h_point (fun () ->
               Tel.with_span "exhaustive.point"
                 ~attrs:(fun () ->
                   [ ("tcyc", Tel.Float sc.S.tcyc);
                     ("temp_c", Tel.Float sc.S.temp_c);
                     ("vdd", Tel.Float sc.S.vdd) ])
                 (fun () ->
                   ( sc,
                     Border.search ?checkpoint ?window ~config ~stress:sc
                       ~kind ~placement detection ))))
         combos)
  in
  let ranking =
    List.sort
      (fun (_, a) (_, b) ->
        Float.compare
          (Border.coverage_width polarity b)
          (Border.coverage_width polarity a))
      scored
  in
  match ranking with
  | [] -> invalid_arg "Exhaustive.optimize: empty grid or every point failed"
  | (best, best_br) :: _ ->
    {
      best;
      best_br;
      grid_size = List.length combos;
      simulations = O.run_count () - before;
      ranking;
      failures;
    }

type comparison = {
  exhaustive : t;
  probe_sc : S.t;
  probe_br : Border.result;
  probe_simulations : int;
  agreement : bool;
}

let compare_methods ?tech ?config ?checkpoint ?window ~nominal ~kind
    ~placement () =
  let detection =
    Detection.standard ~victim:(D.logical_victim kind placement) ~primes:2
  in
  let exhaustive =
    optimize ?tech ?config ?checkpoint ?window ~nominal ~kind ~placement
      detection
  in
  let before = O.run_count () in
  let e =
    Sc_eval.evaluate ?tech ?config ?checkpoint ?window ~nominal ~kind
      ~placement ()
  in
  let probe_simulations = O.run_count () - before in
  let close a b rel = Float.abs (a -. b) <= rel *. Float.abs b +. 1e-12 in
  let agreement =
    let p = e.Sc_eval.stressed and x = exhaustive.best in
    (* within one grid notch on each axis *)
    close p.S.tcyc x.S.tcyc 0.10
    && Float.abs (p.S.temp_c -. x.S.temp_c) <= 61.0
    && close p.S.vdd x.S.vdd 0.15
  in
  {
    exhaustive;
    probe_sc = e.Sc_eval.stressed;
    probe_br = e.Sc_eval.stressed_br;
    probe_simulations;
    agreement;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v2>exhaustive search over %d SCs (%d simulations%s):@ best: %a -> %a@]"
    t.grid_size t.simulations
    (match List.length t.failures with
    | 0 -> ""
    | n -> Printf.sprintf ", %d points failed" n)
    S.pp t.best Border.pp_result t.best_br

let pp_comparison ppf c =
  Format.fprintf ppf
    "@[<v2>method comparison:@ %a@ probe method: %a -> %a (%d simulations)@ \
     agreement within one grid notch: %b@ speedup: %.1fx fewer simulations@]"
    pp c.exhaustive S.pp c.probe_sc Border.pp_result c.probe_br
    c.probe_simulations c.agreement
    (float_of_int c.exhaustive.simulations
    /. float_of_int (Int.max 1 c.probe_simulations))
