(** Border resistance (BR) search — the paper's central quantity.

    BR is the defect resistance at which the memory first shows
    detectable faulty behaviour under a given detection condition and
    stress combination. For opens faults appear {e above} BR; for shorts
    {e below} it. Some defects (cell-to-cell bridges) are detectable only
    on an interior {e band} of resistances: a hard bridge welds victim
    and aggressor into one node (the victim write rewrites both, hiding
    the fault), a weak one cannot couple within the test time. *)

type result =
  | Br of float          (** single boundary resistance, ohm *)
  | Faulty_band of { lo : float; hi : float }
      (** detected only inside [[lo, hi]] *)
  | Always_faulty        (** detected across the whole searched range *)
  | Never_faulty         (** not detected anywhere in the range *)

val pp_result : Format.formatter -> result -> unit

(** [search ?tech ?r_min ?r_max ?grid_points ?rel_tol ~stress ~kind
    ~placement cond] scans a log grid (default 13 points over
    [1 kOhm, 100 GOhm]) for detection-outcome changes and refines each
    edge by bisection to [rel_tol] (default 1%). One edge yields {!Br};
    an interior detected region yields {!Faulty_band} (its outermost
    edges, if the outcome flips more than twice). *)
val search :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?r_min:float ->
  ?r_max:float ->
  ?grid_points:int ->
  ?rel_tol:float ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  Detection.t ->
  result

(** [covered_range polarity result ~r_min ~r_max] is the resistance
    interval the test detects, per the defect's polarity. *)
val covered_range :
  Dramstress_defect.Defect.polarity -> result -> r_min:float -> r_max:float ->
  (float * float) option

(** [coverage_width polarity result] is the covered range's width in
    decades, over the notional [1 kOhm, 100 GOhm] axis. *)
val coverage_width : Dramstress_defect.Defect.polarity -> result -> float

(** [improvement polarity ~nominal ~stressed] — the growth factor of the
    covered failing-resistance range: for single boundaries, the BR ratio
    oriented by polarity; for bands, the linear width ratio. [None] when
    either side detects nothing. *)
val improvement :
  Dramstress_defect.Defect.polarity -> nominal:result -> stressed:result ->
  float option

(** [better polarity a b] — true when [a] covers strictly more of the
    resistance axis (in decades) than [b]. *)
val better : Dramstress_defect.Defect.polarity -> result -> result -> bool
