(** Border resistance (BR) search — the paper's central quantity.

    BR is the defect resistance at which the memory first shows
    detectable faulty behaviour under a given detection condition and
    stress combination. For opens faults appear {e above} BR; for shorts
    {e below} it. Some defects (cell-to-cell bridges) are detectable only
    on an interior {e band} of resistances: a hard bridge welds victim
    and aggressor into one node (the victim write rewrites both, hiding
    the fault), a weak one cannot couple within the test time.

    The search is fault tolerant: a grid sample whose transient
    simulation fails (even after {!Dramstress_dram.Ops.run}'s retry
    ladder) is skipped rather than aborting the search, and an edge whose
    bisection fails is reported as {!Unknown} — bounded by the two known
    samples that bracket it — instead of being silently guessed. *)

(** A detected-band boundary: either bisected to tolerance, or known only
    to lie between two grid samples because the refinement could not be
    simulated. *)
type edge =
  | Exact of float  (** bisected boundary resistance, ohm *)
  | Unknown of { lo : float; hi : float }
      (** boundary somewhere in [[lo, hi]]; refinement failed *)

type band = { b_lo : edge; b_hi : edge }
(** One contiguous detected-resistance interval. *)

type result =
  | Br of float          (** single boundary resistance, ohm *)
  | Faulty_band of { lo : float; hi : float }
      (** detected only inside [[lo, hi]], both edges bisected *)
  | Bands of band list
      (** two or more detected intervals, or a single interval with an
          {!Unknown} edge — e.g. a detected/undetected/detected pattern
          that older revisions collapsed into one bogus boundary *)
  | Always_faulty        (** detected across the whole searched range *)
  | Never_faulty         (** not detected anywhere in the range *)
  | Unsampled            (** every grid sample failed to simulate *)

val pp_edge : Format.formatter -> edge -> unit
val pp_result : Format.formatter -> result -> unit

(** [edge_mid e] is a point estimate of the boundary: the value of an
    {!Exact} edge, the geometric midpoint of an {!Unknown} bracket (the
    resistance axis is logarithmic). *)
val edge_mid : edge -> float

(** [of_samples ~refine ~r_min ~r_max samples] is the pure
    classification core behind {!search}: [samples] is the scanned grid
    in ascending resistance order, [None] marking points that could not
    be simulated; [refine r0 r1] locates the detection edge between two
    known samples with opposite outcomes. Failed samples are skipped —
    transitions are taken between consecutive {e known} samples. Exposed
    for tests. *)
val of_samples :
  refine:(float -> float -> edge) ->
  r_min:float ->
  r_max:float ->
  (float * bool option) list ->
  result

(** Search windows — the first-class description of {e where} and {e how
    finely} {!search} looks for the border.

    [Window.t] collapses the former [?r_min ?r_max ?grid_points ?rel_tol]
    optional-argument sprawl into one value that can be stored in
    manifests, fingerprinted into campaign store keys, and threaded
    unchanged through {!Plane}, {!Exhaustive}, {!Table1},
    {!Sc_eval.best_detection} and the CLI.

    {2 Migration from the deprecated optionals}

    Old spelling (still accepted for one release):
    {[ Border.search ~r_min:1e4 ~r_max:1e8 ~grid_points:25 ~rel_tol:0.05 ... ]}
    New spelling:
    {[ Border.search ~window:(Border.Window.v ~r_min:1e4 ~r_max:1e8
         ~grid_points:25 ~rel_tol:0.05 ()) ... ]}
    When both are given, the explicit optionals override the matching
    fields of [window] ({!Window.over} semantics), so partial migrations
    behave predictably. The deprecated optionals will be removed in the
    release after next. *)
module Window : sig
  (** How the window is scanned.

      [Grid] — the golden oracle: simulate every grid point, then bisect
      each detection flip. [Adaptive] — probe a 5-point coarse skeleton
      of the {e same} grid (one batched ensemble solve), bisect each
      detected flip down to a single grid interval {e by index}, then
      run the identical edge refinement on the identical bracketing
      pair. On curves with at most one detection transition per skeleton
      interval the two strategies provably return bit-identical results;
      bands narrower than the skeleton spacing can be missed by
      [Adaptive], which is why [Grid] remains the oracle and the
      default. A solver failure during an adaptive probe escalates the
      scan to the full grid so failure-path classification matches the
      oracle exactly. *)
  type strategy = Grid | Adaptive

  type t = private {
    r_min : float;        (** low end of the searched range, ohm *)
    r_max : float;        (** high end of the searched range, ohm *)
    grid_points : int;    (** log-grid resolution, >= 2 *)
    rel_tol : float;      (** relative tolerance of edge bisection *)
    strategy : strategy;
  }

  (** Number of skeleton probes the adaptive coarse pass takes. *)
  val coarse_points : int

  (** [v ()] builds a window; defaults reproduce the historical
      behaviour: 13 points over [1 kOhm, 100 GOhm], 1% tolerance,
      [Grid]. Raises [Invalid_argument] unless
      [0 < r_min < r_max], [grid_points >= 2] and [rel_tol > 0]. *)
  val v :
    ?r_min:float -> ?r_max:float -> ?grid_points:int -> ?rel_tol:float ->
    ?strategy:strategy -> unit -> t

  val default : t

  (** [adaptive ()] is [v ~strategy:Adaptive ()]. *)
  val adaptive :
    ?r_min:float -> ?r_max:float -> ?grid_points:int -> ?rel_tol:float ->
    unit -> t

  val with_strategy : strategy -> t -> t

  (** [over ?base ...] rebuilds [base] (default {!default}) with any
      explicitly given fields replaced — the merge rule behind the
      deprecated optional arguments. *)
  val over :
    ?base:t -> ?r_min:float -> ?r_max:float -> ?grid_points:int ->
    ?rel_tol:float -> ?strategy:strategy -> unit -> t

  val strategy_name : strategy -> string
  val strategy_of_name : string -> strategy option

  (** [provably_grid w] — true when a search under [w] provably
      simulates and classifies exactly as the grid oracle would: either
      [w.strategy = Grid], or the grid is no finer than the adaptive
      skeleton (so every index is probed anyway). Campaign store
      records are shared between two windows iff their {!fingerprint}s
      agree, and the fingerprint folds this predicate in — so [Grid]
      and [Adaptive] share records only when identical results are
      guaranteed, not merely expected. *)
  val provably_grid : t -> bool

  (** Canonical fingerprint for store/checkpoint keys: hex-float exact.
      Windows with [provably_grid] true fingerprint identically to the
      plain grid window on the same bounds. *)
  val fingerprint : t -> string

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** [adaptive_scan ~n ~coarse ~seeds probe_many] — the pure index-space
    driver behind [Window.Adaptive], exposed for property tests. Probes
    a [coarse]-point skeleton of indices [0..n-1] plus any [seeds]
    (out-of-range or duplicate seeds are ignored; seeding only {e adds}
    probes, never narrows the scan), then repeatedly probes the midpoint
    of every gap between non-adjacent known samples with differing
    outcomes until each flip is confined to one index step. If any probe
    returns [None] the whole index range is probed, matching the grid
    oracle's failure-path behaviour. [probe_many] receives a sorted list
    of not-yet-probed indices and must return an outcome for each.
    Returns all probed [(index, outcome)] pairs in ascending index
    order. *)
val adaptive_scan :
  n:int ->
  coarse:int ->
  seeds:int list ->
  (int list -> (int * bool option) list) ->
  (int * bool option) list

(** [search ?tech ?config ?checkpoint ?window ?hint ~stress ~kind
    ~placement cond] scans [window]'s log grid (default {!Window.default}:
    13 points over [1 kOhm, 100 GOhm]) for detection-outcome changes and
    refines each edge by bisection to the window's [rel_tol]. One edge
    yields {!Br}; an interior detected region yields {!Faulty_band};
    multiple regions or unrefinable edges yield {!Bands}.

    With [window.strategy = Adaptive] only a sparse subset of the grid
    is simulated (see {!Window.strategy} for the oracle relationship and
    its caveats). [hint] (used by the campaign planner's warm-start
    chains) is a list of border-resistance estimates from adjacent
    stress points; each seeds the grid interval containing it into the
    coarse pass. Hints only add probes — a warm-started search never
    sees fewer samples than a cold adaptive one. [hint] is ignored under
    [Grid].

    The deprecated [?r_min ?r_max ?grid_points ?rel_tol] optionals
    override the matching [window] fields ({!Window.over}) and will be
    removed in the release after next.

    Grid samples and edge refinements that fail with a solver error
    ([Transient.Step_failed], [Newton.No_convergence],
    [Ops.Exhausted_retries]) are skipped / degraded to {!Unknown} and
    counted on [core.border.skipped_samples] /
    [core.border.unknown_edges]; other exceptions propagate. Every
    simulated sample (scan or bisection) counts on
    [core.border.probes].

    [checkpoint] memoizes the whole result keyed by every input that can
    change it (including {!Window.fingerprint}), so interrupted
    campaigns resume without re-simulating finished searches. Adaptive
    searches additionally record each probe and each refined edge, so a
    run killed mid-refinement resumes by re-simulating only the probes
    and brackets it had not finished. *)
val search :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Window.t ->
  ?r_min:float ->
  ?r_max:float ->
  ?grid_points:int ->
  ?rel_tol:float ->
  ?hint:float list ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  Detection.t ->
  result

(** [equal_result a b] — structural equality on results, NaN-safe (it
    compares the canonical {!encode_result} forms, under which every
    float round-trips bit-exactly). Two stores that replay the same
    simulation compare equal under it — the emptiness criterion of a
    campaign self-diff. *)
val equal_result : result -> result -> bool

(** [encode_result] / [decode_result] — the compact stable string form
    used by the checkpoint store ([%h] floats, so round-trips are exact).
    [decode_result] is total: it returns [None] on any foreign string. *)
val encode_result : result -> string

val decode_result : string -> result option

(** [covered_ranges polarity result ~r_min ~r_max] is the list of
    resistance intervals the test detects, per the defect's polarity, in
    ascending order. {!Unknown} edges contribute their {!edge_mid}. *)
val covered_ranges :
  Dramstress_defect.Defect.polarity -> result -> r_min:float -> r_max:float ->
  (float * float) list

(** [covered_range polarity result ~r_min ~r_max] is the hull of
    {!covered_ranges} — kept for compatibility; for {!Bands} results it
    overstates the covered area. *)
val covered_range :
  Dramstress_defect.Defect.polarity -> result -> r_min:float -> r_max:float ->
  (float * float) option

(** [coverage_width polarity result] is the total covered width in log
    decades — summed across bands — over the notional
    [1 kOhm, 100 GOhm] axis. *)
val coverage_width : Dramstress_defect.Defect.polarity -> result -> float

(** [improvement ?window polarity ~nominal ~stressed] — the growth
    factor of the covered failing-resistance range: for two single
    boundaries, the BR ratio oriented by polarity; for any other
    combination, the ratio of {!coverage_width} values (log decades —
    the same axis as the BR case, unlike the linear widths older
    revisions compared). [None] when either side detects nothing, or
    when the nominal coverage is narrower than one edge-location
    tolerance step ([window.rel_tol], default {!Window.default}'s 1% —
    formerly a hard-coded 1% regardless of the search's actual
    tolerance): below that the ratio is refinement noise, not signal. *)
val improvement :
  ?window:Window.t ->
  Dramstress_defect.Defect.polarity -> nominal:result -> stressed:result ->
  float option

(** [better polarity a b] — true when [a] covers strictly more of the
    resistance axis (in decades) than [b]. *)
val better : Dramstress_defect.Defect.polarity -> result -> result -> bool
