(** Border resistance (BR) search — the paper's central quantity.

    BR is the defect resistance at which the memory first shows
    detectable faulty behaviour under a given detection condition and
    stress combination. For opens faults appear {e above} BR; for shorts
    {e below} it. Some defects (cell-to-cell bridges) are detectable only
    on an interior {e band} of resistances: a hard bridge welds victim
    and aggressor into one node (the victim write rewrites both, hiding
    the fault), a weak one cannot couple within the test time.

    The search is fault tolerant: a grid sample whose transient
    simulation fails (even after {!Dramstress_dram.Ops.run}'s retry
    ladder) is skipped rather than aborting the search, and an edge whose
    bisection fails is reported as {!Unknown} — bounded by the two known
    samples that bracket it — instead of being silently guessed. *)

(** A detected-band boundary: either bisected to tolerance, or known only
    to lie between two grid samples because the refinement could not be
    simulated. *)
type edge =
  | Exact of float  (** bisected boundary resistance, ohm *)
  | Unknown of { lo : float; hi : float }
      (** boundary somewhere in [[lo, hi]]; refinement failed *)

type band = { b_lo : edge; b_hi : edge }
(** One contiguous detected-resistance interval. *)

type result =
  | Br of float          (** single boundary resistance, ohm *)
  | Faulty_band of { lo : float; hi : float }
      (** detected only inside [[lo, hi]], both edges bisected *)
  | Bands of band list
      (** two or more detected intervals, or a single interval with an
          {!Unknown} edge — e.g. a detected/undetected/detected pattern
          that older revisions collapsed into one bogus boundary *)
  | Always_faulty        (** detected across the whole searched range *)
  | Never_faulty         (** not detected anywhere in the range *)
  | Unsampled            (** every grid sample failed to simulate *)

val pp_edge : Format.formatter -> edge -> unit
val pp_result : Format.formatter -> result -> unit

(** [edge_mid e] is a point estimate of the boundary: the value of an
    {!Exact} edge, the geometric midpoint of an {!Unknown} bracket (the
    resistance axis is logarithmic). *)
val edge_mid : edge -> float

(** [of_samples ~refine ~r_min ~r_max samples] is the pure
    classification core behind {!search}: [samples] is the scanned grid
    in ascending resistance order, [None] marking points that could not
    be simulated; [refine r0 r1] locates the detection edge between two
    known samples with opposite outcomes. Failed samples are skipped —
    transitions are taken between consecutive {e known} samples. Exposed
    for tests. *)
val of_samples :
  refine:(float -> float -> edge) ->
  r_min:float ->
  r_max:float ->
  (float * bool option) list ->
  result

(** [search ?tech ?config ?checkpoint ?r_min ?r_max ?grid_points
    ?rel_tol ~stress ~kind ~placement cond] scans a log grid (default 13
    points over [1 kOhm, 100 GOhm]) for detection-outcome changes and
    refines each edge by bisection to [rel_tol] (default 1%). One edge
    yields {!Br}; an interior detected region yields {!Faulty_band};
    multiple regions or unrefinable edges yield {!Bands}.

    Grid samples and edge refinements that fail with a solver error
    ([Transient.Step_failed], [Newton.No_convergence],
    [Ops.Exhausted_retries]) are skipped / degraded to {!Unknown} and
    counted on [core.border.skipped_samples] /
    [core.border.unknown_edges]; other exceptions propagate.

    [checkpoint] memoizes the whole result in a
    {!Dramstress_util.Checkpoint} store keyed by every input that can
    change it, so interrupted campaigns (Table 1, stress optimisation)
    resume without re-simulating finished searches. *)
val search :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?r_min:float ->
  ?r_max:float ->
  ?grid_points:int ->
  ?rel_tol:float ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  Detection.t ->
  result

(** [equal_result a b] — structural equality on results, NaN-safe (it
    compares the canonical {!encode_result} forms, under which every
    float round-trips bit-exactly). Two stores that replay the same
    simulation compare equal under it — the emptiness criterion of a
    campaign self-diff. *)
val equal_result : result -> result -> bool

(** [encode_result] / [decode_result] — the compact stable string form
    used by the checkpoint store ([%h] floats, so round-trips are exact).
    [decode_result] is total: it returns [None] on any foreign string. *)
val encode_result : result -> string

val decode_result : string -> result option

(** [covered_ranges polarity result ~r_min ~r_max] is the list of
    resistance intervals the test detects, per the defect's polarity, in
    ascending order. {!Unknown} edges contribute their {!edge_mid}. *)
val covered_ranges :
  Dramstress_defect.Defect.polarity -> result -> r_min:float -> r_max:float ->
  (float * float) list

(** [covered_range polarity result ~r_min ~r_max] is the hull of
    {!covered_ranges} — kept for compatibility; for {!Bands} results it
    overstates the covered area. *)
val covered_range :
  Dramstress_defect.Defect.polarity -> result -> r_min:float -> r_max:float ->
  (float * float) option

(** [coverage_width polarity result] is the total covered width in log
    decades — summed across bands — over the notional
    [1 kOhm, 100 GOhm] axis. *)
val coverage_width : Dramstress_defect.Defect.polarity -> result -> float

(** [improvement polarity ~nominal ~stressed] — the growth factor of the
    covered failing-resistance range: for two single boundaries, the BR
    ratio oriented by polarity; for any other combination, the ratio of
    {!coverage_width} values (log decades — the same axis as the BR
    case, unlike the linear widths older revisions compared). [None]
    when either side detects nothing. *)
val improvement :
  Dramstress_defect.Defect.polarity -> nominal:result -> stressed:result ->
  float option

(** [better polarity a b] — true when [a] covers strictly more of the
    resistance axis (in decades) than [b]. *)
val better : Dramstress_defect.Defect.polarity -> result -> result -> bool
