module O = Dramstress_dram.Ops
module S = Dramstress_dram.Stress
module D = Dramstress_defect.Defect

type step = Write of int | Read of int | Wait of float | Hammer of int

type t = { steps : step list }

let v steps =
  if steps = [] then invalid_arg "Detection.v: empty";
  List.iter
    (fun s ->
      match s with
      | Write b | Read b ->
        if b <> 0 && b <> 1 then invalid_arg "Detection.v: bit not 0/1"
      | Wait d -> if d <= 0.0 then invalid_arg "Detection.v: non-positive wait"
      | Hammer n ->
        if n < 1 then invalid_arg "Detection.v: non-positive hammer count")
    steps;
  { steps }

let standard ~victim ~primes =
  if primes < 1 then invalid_arg "Detection.standard: primes < 1";
  if victim <> 0 && victim <> 1 then invalid_arg "Detection.standard: victim";
  v
    (List.init primes (fun _ -> Write (1 - victim))
    @ [ Write victim; Read victim ])

let retention ~victim ~pause =
  v [ Write victim; Wait pause; Read victim ]

let hammer ~victim ~count =
  v [ Write victim; Hammer count; Read victim ]

let ops cond =
  List.map
    (fun s ->
      match s with
      | Write 0 -> O.W0
      | Write _ -> O.W1
      | Read _ -> O.R
      | Wait d -> O.Pause d
      | Hammer n -> O.Ham n)
    cond.steps

let expected_reads cond =
  List.filter_map
    (function Read b -> Some b | Write _ | Wait _ | Hammer _ -> None)
    cond.steps

let first_write cond =
  List.find_map
    (function Write b -> Some b | Read _ | Wait _ | Hammer _ -> None)
    cond.steps

let initial_vc cond ~stress ~defect =
  let bit = match first_write cond with Some b -> 1 - b | None -> 1 in
  let physical =
    match defect.D.placement with D.True_bl -> bit | D.Comp_bl -> 1 - bit
  in
  if physical = 1 then stress.S.vdd else 0.0

let judge ?(min_separation = 0.5) cond outcome =
  let reads =
    List.filter_map
      (fun r ->
        match (r.O.sensed, r.O.separation) with
        | Some b, Some s -> Some (b, s)
        | _, _ -> None)
      outcome.O.results
  in
  let expected = expected_reads cond in
  (* lengths always agree: one sensed bit per Read step *)
  List.exists2
    (fun (actual, separation) e -> actual <> e || separation < min_separation)
    reads expected

let detects ?tech ?sim ?config ?min_separation ~stress ~defect cond =
  let vc_init = initial_vc cond ~stress ~defect in
  let outcome = O.run ?tech ?sim ?config ~stress ~defect ~vc_init (ops cond) in
  judge ?min_separation cond outcome

let pp ppf cond =
  let pp_step ppf = function
    | Write b -> Format.fprintf ppf "w%d" b
    | Read b -> Format.fprintf ppf "r%d" b
    | Wait d -> Format.fprintf ppf "del(%a)" Dramstress_util.Units.pp_si d
    | Hammer n -> Format.fprintf ppf "ham(%d)" n
  in
  Format.fprintf ppf "{... %a ...}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_step)
    cond.steps

let to_string cond = Format.asprintf "%a" pp cond
