module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module D = Dramstress_defect.Defect
module U = Dramstress_util.Units
module Tel = Dramstress_util.Telemetry

let h_point =
  Tel.Histogram.make ~unit_:"ms" ~lo:1e-2 ~hi:1e6 ~buckets:40
    "core.sweep.point_ms"

type row = {
  defect_id : string;
  placement : D.placement;
  evaluation : Sc_eval.t;
}

type t = { rows : row list; nominal : S.t }

let generate ?tech ?jobs ?config ?(nominal = S.nominal)
    ?(entries = D.catalog) ?(placements = [ D.True_bl; D.Comp_bl ]) ?pause ()
    =
  let config = Sc.resolve ?tech ?jobs ?config () in
  (* one work item per (defect, placement) row; rows are independent *)
  let work =
    List.concat_map
      (fun (entry : D.entry) ->
        List.map (fun placement -> (entry, placement)) placements)
      entries
  in
  let rows =
    Dramstress_util.Par.parallel_map ~jobs:(Sc.resolve_jobs config)
      (fun ((entry : D.entry), placement) ->
        Tel.Histogram.time_ms h_point (fun () ->
            Tel.with_span "table1.row"
              ~attrs:(fun () ->
                [ ("defect", Tel.Str entry.D.id);
                  ("placement",
                   Tel.Str (Format.asprintf "%a" D.pp_placement placement)) ])
              (fun () ->
                {
                  defect_id = entry.D.id;
                  placement;
                  evaluation =
                    Sc_eval.evaluate ~config ?pause ~nominal
                      ~kind:entry.D.kind ~placement ();
                })))
      work
  in
  { rows; nominal }

let dir_arrow probe =
  match probe.Stressor.verdict with
  | Stressor.Increase -> "+"
  | Stressor.Decrease -> "-"
  | Stressor.Neutral -> "="

let br_string = function
  | Border.Br r -> U.si_string r
  | Border.Faulty_band { lo; hi } ->
    Printf.sprintf "%s..%s" (U.si_string lo) (U.si_string hi)
  | Border.Always_faulty -> "all R"
  | Border.Never_faulty -> "none"

let render table =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Format.asprintf
       "Table 1 -- ST optimization results (nominal SC: %a)\n" S.pp
       table.nominal);
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-6s %-12s %-6s %-4s %-6s %-12s %-8s %s\n"
       "Defect" "Place" "Nom. border" "t_cyc" "T" "V_dd" "Str. border"
       "Coverage" "Str. detection condition");
  Buffer.add_string buf (String.make 100 '-' ^ "\n");
  List.iter
    (fun row ->
      let e = row.evaluation in
      let probe axis =
        List.find_opt (fun p -> p.Stressor.axis = axis) e.Sc_eval.probes
      in
      let arrow axis =
        match probe axis with Some p -> dir_arrow p | None -> "?"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-6s %-12s %-6s %-4s %-6s %-12s %-8s %s\n"
           row.defect_id
           (Format.asprintf "%a" D.pp_placement row.placement)
           (br_string e.Sc_eval.nominal_br)
           (arrow S.Cycle_time) (arrow S.Temperature)
           (arrow S.Supply_voltage)
           (br_string e.Sc_eval.stressed_br)
           (match e.Sc_eval.improvement with
           | Some f -> Printf.sprintf "%.2fx" f
           | None -> "n/a")
           (Detection.to_string e.Sc_eval.stressed_detection)))
    table.rows;
  Buffer.add_string buf
    "\nDirections: + drive the stress up, - drive it down, = no effect.\n";
  Buffer.contents buf

let to_csv table =
  let header =
    [ "defect"; "placement"; "nominal_br_ohm"; "tcyc_dir"; "temp_dir";
      "vdd_dir"; "stressed_br_ohm"; "improvement"; "stressed_detection" ]
  in
  let br_csv = function
    | Border.Br r -> Printf.sprintf "%.6g" r
    | Border.Faulty_band { lo; hi } -> Printf.sprintf "%.6g..%.6g" lo hi
    | Border.Always_faulty -> "always"
    | Border.Never_faulty -> "never"
  in
  let rows =
    List.map
      (fun row ->
        let e = row.evaluation in
        let arrow axis =
          match
            List.find_opt (fun p -> p.Stressor.axis = axis) e.Sc_eval.probes
          with
          | Some p -> dir_arrow p
          | None -> "?"
        in
        [
          row.defect_id;
          Format.asprintf "%a" D.pp_placement row.placement;
          br_csv e.Sc_eval.nominal_br;
          arrow S.Cycle_time;
          arrow S.Temperature;
          arrow S.Supply_voltage;
          br_csv e.Sc_eval.stressed_br;
          (match e.Sc_eval.improvement with
          | Some f -> Printf.sprintf "%.4g" f
          | None -> "n/a");
          Detection.to_string e.Sc_eval.stressed_detection;
        ])
      table.rows
  in
  Dramstress_util.Csvout.to_string ~header rows
