module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module Ax = Dramstress_stressaxis.Stressaxis
module D = Dramstress_defect.Defect
module U = Dramstress_util.Units
module Tel = Dramstress_util.Telemetry

let h_point =
  Tel.Histogram.make ~unit_:"ms" ~lo:1e-2 ~hi:1e6 ~buckets:40
    "core.sweep.point_ms"

type row = {
  defect_id : string;
  placement : D.placement;
  evaluation : Sc_eval.t;
}

type t = {
  rows : row list;
  failures : (string * D.placement) Dramstress_util.Outcome.failure list;
  nominal : S.t;
}

let generate ?tech ?jobs ?config ?checkpoint ?window ?(nominal = S.nominal)
    ?(entries = D.catalog) ?(placements = [ D.True_bl; D.Comp_bl ]) ?axes
    ?pause () =
  let config = Sc.resolve ?tech ?jobs ?config () in
  (* one work item per (defect, placement) row; rows are independent.
     A row whose evaluation fails outright becomes a [Failed] slot so
     one pathological defect cannot sink the whole table. *)
  let work =
    List.concat_map
      (fun (entry : D.entry) ->
        List.map (fun placement -> (entry, placement)) placements)
      entries
  in
  let outcomes =
    Dramstress_util.Par.parallel_map_outcomes
      ~jobs:(Sc.resolve_jobs config)
      ~retries_of:Dramstress_dram.Ops.retries_of
      (fun ((entry : D.entry), placement) ->
        Tel.Histogram.time_ms h_point (fun () ->
            Tel.with_span "table1.row"
              ~attrs:(fun () ->
                [ ("defect", Tel.Str entry.D.id);
                  ("placement",
                   Tel.Str (Format.asprintf "%a" D.pp_placement placement)) ])
              (fun () ->
                {
                  defect_id = entry.D.id;
                  placement;
                  evaluation =
                    Sc_eval.evaluate ~config ?checkpoint ?window ?axes ?pause
                      ~nominal ~kind:entry.D.kind ~placement ();
                })))
      work
  in
  let rows, failures =
    Dramstress_util.Outcome.partition
      (List.map
         (Dramstress_util.Outcome.map_point
            (fun ((entry : D.entry), placement) -> (entry.D.id, placement)))
         outcomes)
  in
  { rows; failures; nominal }

let dir_arrow probe =
  match probe.Stressor.verdict with
  | Stressor.Increase -> "+"
  | Stressor.Decrease -> "-"
  | Stressor.Neutral -> "="

(* direction columns come from whatever axes were actually probed; an
   empty table falls back to the paper's three directed axes so the
   header stays stable *)
let probed_axes table =
  match table.rows with
  | row :: _ ->
    List.map (fun p -> p.Stressor.axis) row.evaluation.Sc_eval.probes
  | [] -> [ S.Cycle_time; S.Temperature; S.Supply_voltage ]

let axis_arrow e axis =
  match
    List.find_opt (fun p -> p.Stressor.axis = axis) e.Sc_eval.probes
  with
  | Some p -> dir_arrow p
  | None -> "?"

let edge_string = function
  | Border.Exact v -> U.si_string v
  | Border.Unknown { lo; hi } ->
    Printf.sprintf "?(%s..%s)" (U.si_string lo) (U.si_string hi)

let br_string = function
  | Border.Br r -> U.si_string r
  | Border.Faulty_band { lo; hi } ->
    Printf.sprintf "%s..%s" (U.si_string lo) (U.si_string hi)
  | Border.Bands bands ->
    String.concat "+"
      (List.map
         (fun { Border.b_lo; b_hi } ->
           Printf.sprintf "%s..%s" (edge_string b_lo) (edge_string b_hi))
         bands)
  | Border.Always_faulty -> "all R"
  | Border.Never_faulty -> "none"
  | Border.Unsampled -> "unsampled"

let render table =
  let buf = Buffer.create 2048 in
  let axes = probed_axes table in
  let cols =
    List.map
      (fun a ->
        let name = Ax.name_of_axis a in
        (a, name, Int.max 4 (String.length name)))
      axes
  in
  let pad w s =
    if String.length s >= w then s ^ " "
    else s ^ String.make (w - String.length s + 1) ' '
  in
  let dir_cells cell =
    String.concat "" (List.map (fun (a, name, w) -> pad w (cell a name)) cols)
  in
  Buffer.add_string buf
    (Format.asprintf
       "Table 1 -- ST optimization results (nominal SC: %a)\n" S.pp
       table.nominal);
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-6s %-12s %s%-12s %-8s %s\n"
       "Defect" "Place" "Nom. border"
       (dir_cells (fun _ name -> name))
       "Str. border" "Coverage" "Str. detection condition");
  Buffer.add_string buf (String.make 100 '-' ^ "\n");
  List.iter
    (fun row ->
      let e = row.evaluation in
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-6s %-12s %s%-12s %-8s %s\n"
           row.defect_id
           (Format.asprintf "%a" D.pp_placement row.placement)
           (br_string e.Sc_eval.nominal_br)
           (dir_cells (fun a _ -> axis_arrow e a))
           (br_string e.Sc_eval.stressed_br)
           (match e.Sc_eval.improvement with
           | Some f -> Printf.sprintf "%.2fx" f
           | None -> "n/a")
           (Detection.to_string e.Sc_eval.stressed_detection)))
    table.rows;
  Buffer.add_string buf
    "\nDirections: + drive the stress up, - drive it down, = no effect.\n";
  if table.failures <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "\n%d row(s) failed to evaluate:\n"
         (List.length table.failures));
    List.iter
      (fun f ->
        let id, placement = f.Dramstress_util.Outcome.point in
        Buffer.add_string buf
          (Printf.sprintf "  %s %s: %s (after %d retries)\n" id
             (Format.asprintf "%a" D.pp_placement placement)
             (Dramstress_util.Outcome.error_message f)
             f.Dramstress_util.Outcome.retries))
      table.failures
  end;
  Buffer.contents buf

let to_csv table =
  let axes = probed_axes table in
  let header =
    [ "defect"; "placement"; "nominal_br_ohm" ]
    @ List.map (fun a -> Ax.name_of_axis a ^ "_dir") axes
    @ [ "stressed_br_ohm"; "improvement"; "stressed_detection" ]
  in
  let edge_csv = function
    | Border.Exact v -> Printf.sprintf "%.6g" v
    | Border.Unknown { lo; hi } -> Printf.sprintf "?%.6g..%.6g" lo hi
  in
  let br_csv = function
    | Border.Br r -> Printf.sprintf "%.6g" r
    | Border.Faulty_band { lo; hi } -> Printf.sprintf "%.6g..%.6g" lo hi
    | Border.Bands bands ->
      String.concat "+"
        (List.map
           (fun { Border.b_lo; b_hi } ->
             Printf.sprintf "%s..%s" (edge_csv b_lo) (edge_csv b_hi))
           bands)
    | Border.Always_faulty -> "always"
    | Border.Never_faulty -> "never"
    | Border.Unsampled -> "unsampled"
  in
  let rows =
    List.map
      (fun row ->
        let e = row.evaluation in
        [ row.defect_id;
          Format.asprintf "%a" D.pp_placement row.placement;
          br_csv e.Sc_eval.nominal_br ]
        @ List.map (axis_arrow e) axes
        @ [ br_csv e.Sc_eval.stressed_br;
            (match e.Sc_eval.improvement with
            | Some f -> Printf.sprintf "%.4g" f
            | None -> "n/a");
            Detection.to_string e.Sc_eval.stressed_detection ])
      table.rows
  in
  Dramstress_util.Csvout.to_string ~header rows
