module S = Dramstress_dram.Stress
module D = Dramstress_defect.Defect

type t = {
  kind : D.kind;
  placement : D.placement;
  nominal : S.t;
  nominal_detection : Detection.t;
  nominal_br : Border.result;
  probes : Stressor.probe list;
  stressed : S.t;
  stressed_detection : Detection.t;
  stressed_br : Border.result;
  improvement : float option;
}

let candidate_detections ?(allow_pause = true) ?(pause = 1e-3) ~placement
    kind =
  let victim = D.logical_victim kind placement in
  let standards =
    List.map (fun primes -> Detection.standard ~victim ~primes) [ 1; 2; 3; 4 ]
  in
  (* shorts leak stored charge; bridges couple cells over time: both are
     attacked by data-retention elements when pauses are allowed *)
  match kind with
  | ( D.Short_to_gnd | D.Short_to_vdd | D.Bridge_to_paired_bl
    | D.Bridge_to_neighbour )
    when allow_pause ->
    standards @ [ Detection.retention ~victim ~pause ]
  | D.Short_to_gnd | D.Short_to_vdd | D.Open_cell _ | D.Bridge_to_paired_bl
  | D.Bridge_to_neighbour ->
    standards

let best_detection ?tech ?config ?checkpoint ?window ?r_min ?r_max
    ?grid_points ?rel_tol ?hint ?allow_pause ?pause ~stress ~kind ~placement
    () =
  let polarity = D.polarity kind in
  let scored =
    List.map
      (fun cond ->
        ( cond,
          Border.search ?tech ?config ?checkpoint ?window ?r_min ?r_max
            ?grid_points ?rel_tol ?hint ~stress ~kind ~placement cond ))
      (candidate_detections ?allow_pause ?pause ~placement kind)
  in
  match scored with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun (best_c, best_b) (c, b) ->
        if Border.better polarity b best_b then (c, b) else (best_c, best_b))
      first rest

let evaluate ?tech ?config ?checkpoint ?window
    ?(axes = [ S.Cycle_time; S.Temperature; S.Supply_voltage ])
    ?(analysis_r = 200e3) ?pause ~nominal ~kind ~placement () =
  (* retention pauses are part of the stress repertoire, not the nominal
     test: the nominal detection is pause-free *)
  let nominal_detection, nominal_br =
    best_detection ?tech ?config ?checkpoint ?window ~allow_pause:false
      ?pause ~stress:nominal ~kind ~placement ()
  in
  (* probe each axis at the nominal point, resolving by BR against the
     nominal best detection *)
  let probes =
    List.map
      (fun axis ->
        Stressor.probe_axis ?tech ?checkpoint ?window ~analysis_r
          ~stress:nominal ~kind ~placement ~detection:nominal_detection axis
          (Stressor.default_values axis ~stress:nominal))
      axes
  in
  let stressed =
    List.fold_left
      (fun stress probe -> Stressor.apply_verdict probe ~stress)
      nominal probes
  in
  (* Section 4.4: re-derive the detection condition under the applied SC *)
  let stressed_detection, stressed_br =
    best_detection ?tech ?config ?checkpoint ?window ?pause ~stress:stressed
      ~kind ~placement ()
  in
  let improvement =
    Border.improvement ?window (D.polarity kind) ~nominal:nominal_br
      ~stressed:stressed_br
  in
  {
    kind;
    placement;
    nominal;
    nominal_detection;
    nominal_br;
    probes;
    stressed;
    stressed_detection;
    stressed_br;
    improvement;
  }

let pp ppf e =
  Format.fprintf ppf
    "@[<v2>%a (%a):@ nominal SC: %a@ nominal detection: %a -> %a@ %a@ \
     stressed SC: %a@ stressed detection: %a -> %a@ coverage growth: %s@]"
    D.pp_kind e.kind D.pp_placement e.placement S.pp e.nominal Detection.pp
    e.nominal_detection Border.pp_result e.nominal_br
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Stressor.pp_probe)
    e.probes S.pp e.stressed Detection.pp e.stressed_detection
    Border.pp_result e.stressed_br
    (match e.improvement with
    | Some f -> Printf.sprintf "%.2fx" f
    | None -> "n/a")
