(** Result planes — the paper's Section 3 analysis objects (Figures 2
    and 6).

    For a defect kind, a plane sweeps the defect resistance and records
    the storage voltage reached after each of a number of identical
    operations, together with the sense-amplifier threshold curve
    [V_sa(R)] and the defect-free mid-point voltage [V_mp]. The border
    resistance falls out geometrically as the intersection of the second
    write-victim curve with [V_sa]. *)

type point = { r : float; vc : float }

type curve = {
  label : string;     (** e.g. ["(2) w0"] *)
  points : point list;
}

(** Sense threshold at one resistance: the storage voltage above which
    the read returns (physical) 1, or a saturated verdict. *)
type vsa_point = { r_sa : float; vsa : vsa_value }

and vsa_value =
  | Vsa of float
  | Reads_all_1   (** every storage voltage reads 1 at this resistance *)
  | Reads_all_0

type t = {
  op : Dramstress_dram.Ops.op;    (** the repeated operation *)
  curves : curve list;            (** one per successive operation *)
  vsa_curve : vsa_point list;
  vmp : float;                    (** defect-free read threshold *)
  rops : float list;
      (** the resistances that simulated successfully, ascending; curves
          and [vsa_curve] are aligned with this list *)
  failures : float Dramstress_util.Outcome.failure list;
      (** sweep points whose simulation failed even after the retry
          policy ({!Dramstress_dram.Sim_config.retry_policy}) ran dry;
          the plane is built from the surviving points *)
  stress : Dramstress_dram.Stress.t;
}

(** [vmp ?tech ?sim ?config ~stress ()] is the read threshold of the
    defect-free column — the voltage border between a stored 0 and 1.

    Everywhere in this module, [config] bundles the simulation
    parameters ({!Dramstress_dram.Sim_config.t}); the loose
    [?tech ?sim ?jobs] optionals are the original spelling, kept for
    compatibility, and override matching [config] fields when both are
    given. *)
val vmp :
  ?tech:Dramstress_dram.Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  stress:Dramstress_dram.Stress.t ->
  unit -> float

(** [vsa ?tech ?sim ?config ~stress ~defect ()] is the sense threshold
    for the given defect instance (bisection on the initial storage
    voltage, 10 mV resolution). *)
val vsa :
  ?tech:Dramstress_dram.Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  stress:Dramstress_dram.Stress.t ->
  defect:Dramstress_defect.Defect.t ->
  unit ->
  vsa_value

(** [write_plane ?tech ?window ?n_ops ?rops ~stress ~kind ~placement ~op
    ()] generates the plane for a repeated write ([W0] planes start from
    a floating full-1 cell, [W1] planes from a full-0 cell, following
    the paper). [n_ops] defaults to 4. The resistance axis is [rops]
    when given; otherwise it derives from [window] ({!Border.Window.t}
    bounds and grid resolution, so planes and border searches of one
    campaign share an axis); otherwise 12 points over [1 kOhm, 1 MOhm].
    Raises [Invalid_argument] if [op] is a read or pause.

    [jobs] caps the number of domains used for the resistance sweep
    (each point is an independent simulation); it defaults to
    [Dramstress_util.Par.resolve_jobs] (which honours the
    [DRAMSTRESS_JOBS] environment variable), and [~jobs:1] forces a
    sequential sweep. [sim] overrides the solver options of every
    underlying run.

    When {!Dramstress_util.Telemetry} is enabled, each resistance point
    observes the shared [core.sweep.point_ms] histogram and emits a
    [plane.point] span.

    A point that raises — even after {!Dramstress_dram.Ops.run}'s retry
    ladder — lands in [t.failures] instead of aborting the sweep.
    [checkpoint] records each finished point ([%h] floats, so resumed
    planes are byte-identical) in a {!Dramstress_util.Checkpoint} store
    and replays it on resume. *)
val write_plane :
  ?tech:Dramstress_dram.Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?jobs:int ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  ?n_ops:int ->
  ?rops:float list ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  op:Dramstress_dram.Ops.op ->
  unit ->
  t

(** [read_plane ?tech ?n_ops ?rops ?offset ~stress ~kind ~placement ()]
    generates the repeated-read plane: two trajectories per resistance,
    seeded just below and just above [V_sa] (offset defaults to 0.2 V,
    the paper's choice). [sim], [jobs], [config], [checkpoint] and
    failure handling as in {!write_plane}. *)
val read_plane :
  ?tech:Dramstress_dram.Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?jobs:int ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  ?n_ops:int ->
  ?rops:float list ->
  ?offset:float ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  unit ->
  t

(** [br_geometric w0_plane] intersects the plane's second curve with its
    [V_sa] curve — the paper's graphical BR definition. [None] when they
    do not cross in the sampled range. *)
val br_geometric : t -> float option

(** [curve_interp c] is the curve as an interpolation over resistance. *)
val curve_interp : curve -> Dramstress_util.Interp.t

(** [vsa_interp plane] is the finite part of the V_sa curve, substituting
    0 V for [Reads_all_1] points (the threshold has collapsed to ground)
    and the supply for [Reads_all_0]. *)
val vsa_interp : t -> Dramstress_util.Interp.t
