module O = Dramstress_dram.Ops
module S = Dramstress_dram.Stress
module D = Dramstress_defect.Defect
module Ax = Dramstress_stressaxis.Stressaxis

type direction = Increase | Decrease | Neutral

let pp_direction ppf = function
  | Increase -> Format.pp_print_string ppf "increase"
  | Decrease -> Format.pp_print_string ppf "decrease"
  | Neutral -> Format.pp_print_string ppf "neutral"

type sample = { value : float; write_residual : float; vsa_shift : float }

type probe = {
  axis : S.axis;
  samples : sample list;
  write_direction : direction;
  read_direction : direction;
  verdict : direction;
  br_at_extremes : (float * Border.result) list;
  rationale : string;
}

let default_values axis ~stress = (Ax.of_axis axis).Ax.probe_values stress

(* direction of the stress metric: does the metric grow with the axis? *)
let metric_direction ~epsilon samples metric =
  match samples with
  | [] | [ _ ] -> Neutral
  | first :: _ ->
    let last = List.nth samples (List.length samples - 1) in
    let d = metric last -. metric first in
    if Float.abs d <= epsilon then Neutral
    else if d > 0.0 then Increase
    else Decrease

let victim_write kind placement =
  let logical = D.logical_victim kind placement in
  let logical_op = if logical = 0 then O.W0 else O.W1 in
  (* the physical level under attack is placement-independent *)
  (logical_op, D.victim_bit kind)

let probe_axis ?tech ?checkpoint ?window ?(analysis_r = 200e3)
    ?(epsilon = 0.01)
    ?(force_br = false) ~stress ~kind ~placement ~detection axis values =
  if List.length values < 2 then
    invalid_arg "Stressor.probe_axis: need at least two values";
  let victim_op, physical_target = victim_write kind placement in
  let defect = D.v kind placement analysis_r in
  let sample value =
    let st = S.set stress axis value in
    (* write probe: one victim write from the complementary full level *)
    let vc_init = if physical_target = 0 then st.S.vdd else 0.0 in
    let outcome = O.run ?tech ~stress:st ~defect ~vc_init [ victim_op ] in
    let vc_end = (List.hd outcome.O.results).O.vc_end in
    let target_v = if physical_target = 0 then 0.0 else st.S.vdd in
    let write_residual = Float.abs (vc_end -. target_v) in
    (* read probe: V_sa, oriented so that larger = easier detection.
       For a physical-0 victim the failed write leaves a high voltage
       that must read as (physical) 1, which happens above V_sa: lower
       V_sa helps, so orientation flips. *)
    let vsa_raw =
      match Plane.vsa ?tech ~stress:st ~defect () with
      | Plane.Vsa v -> v
      | Plane.Reads_all_1 -> 0.0
      | Plane.Reads_all_0 -> st.S.vdd
    in
    let vsa_shift =
      if physical_target = 0 then -.vsa_raw else vsa_raw
    in
    { value; write_residual; vsa_shift }
  in
  let samples = List.map sample values in
  let write_direction =
    metric_direction ~epsilon samples (fun s -> s.write_residual)
  in
  let read_direction =
    metric_direction ~epsilon samples (fun s -> s.vsa_shift)
  in
  let lo = List.hd values and hi = List.nth values (List.length values - 1) in
  let polarity = D.polarity kind in
  let br_compare () =
    let br_of v =
      ( v,
        Border.search ?tech ?checkpoint ?window
          ~stress:(S.set stress axis v) ~kind ~placement detection )
    in
    let b_lo = br_of lo and b_hi = br_of hi in
    let verdict =
      if Border.better polarity (snd b_hi) (snd b_lo) then Increase
      else if Border.better polarity (snd b_lo) (snd b_hi) then Decrease
      else Neutral
    in
    (verdict, [ b_lo; b_hi ])
  in
  let verdict, br_at_extremes, rationale =
    if force_br then begin
      let v, brs = br_compare () in
      (v, brs, "resolved by border-resistance comparison (forced)")
    end
    else
      match (write_direction, read_direction) with
      | Increase, (Increase | Neutral) | Neutral, Increase ->
        (Increase, [], "write and read probes agree: drive the axis up")
      | Decrease, (Decrease | Neutral) | Neutral, Decrease ->
        (Decrease, [], "write and read probes agree: drive the axis down")
      | Neutral, Neutral ->
        (Neutral, [], "no measurable effect on either operation")
      | Increase, Decrease | Decrease, Increase ->
        let v, brs = br_compare () in
        ( v,
          brs,
          "write and read probes conflict: resolved by border-resistance \
           comparison (the paper's V_dd situation)" )
  in
  {
    axis;
    samples;
    write_direction;
    read_direction;
    verdict;
    br_at_extremes;
    rationale;
  }

let apply_verdict probe ~stress =
  let nudge axis sign = (Ax.of_axis axis).Ax.nudge stress sign in
  match probe.verdict with
  | Neutral -> stress
  | Increase -> nudge probe.axis 1.0
  | Decrease -> nudge probe.axis (-1.0)

let trace_vc ?tech ~stress ~defect ~vc_init op =
  let outcome = O.run ?tech ~stress ~defect ~vc_init [ op ] in
  Dramstress_util.Interp.points (O.vc_curve outcome)

let pp_probe ppf p =
  Format.fprintf ppf "@[<v2>%a:@ write: %a, read: %a -> verdict: %a@ %s@]"
    S.pp_axis p.axis pp_direction p.write_direction pp_direction
    p.read_direction pp_direction p.verdict p.rationale
