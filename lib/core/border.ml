module B = Dramstress_util.Bisect
module G = Dramstress_util.Grid
module D = Dramstress_defect.Defect
module U = Dramstress_util.Units
module O = Dramstress_dram.Ops
module Sc = Dramstress_dram.Sim_config
module E = Dramstress_engine
module Ck = Dramstress_util.Checkpoint
module Par = Dramstress_util.Par
module Chaos = Dramstress_util.Chaos
module Tel = Dramstress_util.Telemetry

let c_skipped = Tel.Counter.make "core.border.skipped_samples"
let c_unknown_edges = Tel.Counter.make "core.border.unknown_edges"
let c_probes = Tel.Counter.make "core.border.probes"

type edge = Exact of float | Unknown of { lo : float; hi : float }

type band = { b_lo : edge; b_hi : edge }

type result =
  | Br of float
  | Faulty_band of { lo : float; hi : float }
  | Bands of band list
  | Always_faulty
  | Never_faulty
  | Unsampled

let pp_edge ppf = function
  | Exact v -> Format.fprintf ppf "%aOhm" U.pp_si v
  | Unknown { lo; hi } ->
    Format.fprintf ppf "?(%aOhm..%aOhm)" U.pp_si lo U.pp_si hi

let pp_result ppf = function
  | Br r -> Format.fprintf ppf "BR ~ %aOhm" U.pp_si r
  | Faulty_band { lo; hi } ->
    Format.fprintf ppf "faulty band %aOhm .. %aOhm" U.pp_si lo U.pp_si hi
  | Bands bands ->
    Format.fprintf ppf "faulty bands %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf { b_lo; b_hi } ->
           Format.fprintf ppf "%a .. %a" pp_edge b_lo pp_edge b_hi))
      bands
  | Always_faulty -> Format.pp_print_string ppf "faulty over whole range"
  | Never_faulty -> Format.pp_print_string ppf "not detected"
  | Unsampled -> Format.pp_print_string ppf "no point could be simulated"

(* geometric midpoint: the resistance axis is logarithmic throughout *)
let edge_mid = function Exact v -> v | Unknown { lo; hi } -> sqrt (lo *. hi)

(* ------------------------------------------------------------------ *)
(* Pure classification core                                            *)
(* ------------------------------------------------------------------ *)

(* [of_samples] turns a scanned grid into the honest band structure.
   Failed samples ([None]) are skippable: transitions are located
   between consecutive KNOWN samples only, so one pathological
   resistance narrows the evidence instead of killing the search. Every
   detected interval is reported — a detected/undetected/detected
   pattern yields two bands, not a collapsed single edge. *)
let of_samples ~refine ~r_min ~r_max samples =
  let known =
    List.filter_map (fun (r, o) -> Option.map (fun b -> (r, b)) o) samples
  in
  match known with
  | [] -> Unsampled
  | (_, first_detected) :: _ ->
    if List.for_all snd known then Always_faulty
    else if not (List.exists snd known) then Never_faulty
    else begin
      (* transitions between consecutive known samples, tagged with the
         detection state that holds after the transition *)
      let rec transitions acc = function
        | (r0, b0) :: ((r1, b1) :: _ as rest) ->
          let acc = if b0 <> b1 then (refine r0 r1, b1) :: acc else acc in
          transitions acc rest
        | [ _ ] | [] -> List.rev acc
      in
      let close bands lo hi = { b_lo = lo; b_hi = hi } :: bands in
      let bands, open_band =
        List.fold_left
          (fun (bands, open_band) (e, detected_after) ->
            if detected_after then (bands, Some e)
            else
              match open_band with
              | Some lo -> (close bands lo e, None)
              | None -> (bands, None))
          ([], if first_detected then Some (Exact r_min) else None)
          (transitions [] known)
      in
      let bands =
        match open_band with
        | Some lo -> close bands lo (Exact r_max)
        | None -> bands
      in
      match List.rev bands with
      | [] -> assert false (* some sample is detected, some is not *)
      | [ { b_lo = Exact lo; b_hi = Exact hi } ] when lo = r_min ->
        (* detected from the range start up to a single interior edge *)
        Br hi
      | [ { b_lo = Exact lo; b_hi = Exact hi } ] when hi = r_max ->
        Br lo
      | [ { b_lo = Exact lo; b_hi = Exact hi } ] -> Faulty_band { lo; hi }
      | bands -> Bands bands
    end

(* ------------------------------------------------------------------ *)
(* Search windows                                                      *)
(* ------------------------------------------------------------------ *)

module Window = struct
  type strategy = Grid | Adaptive

  type t = {
    r_min : float;
    r_max : float;
    grid_points : int;
    rel_tol : float;
    strategy : strategy;
  }

  (* the adaptive coarse pass probes this many skeleton indices, ends
     included; a window no finer than the skeleton probes every grid
     index, at which point the two strategies are the same algorithm *)
  let coarse_points = 5

  let v ?(r_min = 1e3) ?(r_max = 1e11) ?(grid_points = 13) ?(rel_tol = 0.01)
      ?(strategy = Grid) () =
    if not (r_min > 0.0 && r_max > r_min) then
      invalid_arg "Border.Window.v: need 0 < r_min < r_max";
    if grid_points < 2 then invalid_arg "Border.Window.v: grid_points < 2";
    if not (rel_tol > 0.0) then invalid_arg "Border.Window.v: rel_tol <= 0";
    { r_min; r_max; grid_points; rel_tol; strategy }

  let default = v ()

  let adaptive ?r_min ?r_max ?grid_points ?rel_tol () =
    v ?r_min ?r_max ?grid_points ?rel_tol ~strategy:Adaptive ()

  let with_strategy strategy w = { w with strategy }

  (* legacy-optional merge: the deprecated [?r_min ?r_max ?grid_points
     ?rel_tol] spellings override the matching fields of [base] *)
  let over ?(base = default) ?r_min ?r_max ?grid_points ?rel_tol ?strategy ()
      =
    v
      ~r_min:(Option.value r_min ~default:base.r_min)
      ~r_max:(Option.value r_max ~default:base.r_max)
      ~grid_points:(Option.value grid_points ~default:base.grid_points)
      ~rel_tol:(Option.value rel_tol ~default:base.rel_tol)
      ~strategy:(Option.value strategy ~default:base.strategy)
      ()

  let strategy_name = function Grid -> "grid" | Adaptive -> "adaptive"

  let strategy_of_name = function
    | "grid" -> Some Grid
    | "adaptive" -> Some Adaptive
    | _ -> None

  let provably_grid w = w.strategy = Grid || w.grid_points <= coarse_points

  let fingerprint w =
    Printf.sprintf "%h,%h,%d,%h%s" w.r_min w.r_max w.grid_points w.rel_tol
      (if provably_grid w then "" else ",adaptive")

  let equal (a : t) (b : t) = a = b

  let pp ppf w =
    Format.fprintf ppf "%g..%g Ohm, %d grid points, %.2g rel tol [%s]"
      w.r_min w.r_max w.grid_points w.rel_tol (strategy_name w.strategy)
end

(* ------------------------------------------------------------------ *)
(* Adaptive index scan                                                 *)
(* ------------------------------------------------------------------ *)

(* [adaptive_scan] drives the sparse scan over grid INDICES, so its
   known samples land on exactly the points the grid strategy would
   simulate: probe a coarse skeleton (plus any seeded indices), then
   bisect every outcome flip between non-adjacent known samples down to
   one grid interval. Gaps whose ends agree are deliberately not
   subdivided — that is the entire saving, and the reason the grid
   strategy stays the golden oracle for bands narrower than the
   skeleton spacing. Any probe the solver loses escalates the scan to
   the full grid, so the skip pattern (and therefore the
   classification) matches the oracle exactly on failure paths. *)
let adaptive_scan ~n ~coarse ~seeds probe_many =
  if n < 1 then invalid_arg "Border.adaptive_scan: n < 1";
  let tbl = Hashtbl.create (4 * n) in
  let ask idxs =
    let idxs =
      List.sort_uniq Int.compare
        (List.filter
           (fun i -> i >= 0 && i < n && not (Hashtbl.mem tbl i))
           idxs)
    in
    if idxs = [] then 0
    else begin
      List.iter (fun (i, v) -> Hashtbl.replace tbl i v) (probe_many idxs);
      List.length idxs
    end
  in
  let coarse = Int.max 2 (Int.min coarse n) in
  let skeleton =
    if n = 1 then [ 0 ]
    else List.init coarse (fun k -> k * (n - 1) / (coarse - 1))
  in
  ignore (ask (skeleton @ seeds));
  let known () =
    List.sort
      (fun (i, _) (j, _) -> Int.compare i j)
      (Hashtbl.fold
         (fun i v acc -> match v with Some b -> (i, b) :: acc | None -> acc)
         tbl [])
  in
  let rec bisect_flips () =
    let rec mids acc = function
      | (i, bi) :: ((j, bj) :: _ as rest) ->
        let acc =
          if bi <> bj && j > i + 1 then ((i + j) / 2) :: acc else acc
        in
        mids acc rest
      | [ _ ] | [] -> acc
    in
    if ask (mids [] (known ())) > 0 then bisect_flips ()
  in
  bisect_flips ();
  if Hashtbl.fold (fun _ v acc -> acc || v = None) tbl false then
    ignore (ask (List.init n Fun.id));
  List.sort
    (fun (i, _) (j, _) -> Int.compare i j)
    (Hashtbl.fold (fun i v acc -> (i, v) :: acc) tbl [])

(* ------------------------------------------------------------------ *)
(* Electrical search                                                   *)
(* ------------------------------------------------------------------ *)

(* only genuine solver failures are skippable; anything else is a bug
   and must propagate. Health-guard and deadline errors are solver
   failures too: the point is untrustworthy, not the program. *)
let is_solver_failure = function
  | E.Transient.Step_failed _ | E.Newton.No_convergence _
  | E.Newton.Numerical_health _ | E.Newton.Timeout _
  | O.Exhausted_retries _ ->
    true
  | _ -> false

let encode_edge = function
  | Exact v -> Printf.sprintf "e%h" v
  | Unknown { lo; hi } -> Printf.sprintf "u%h,%h" lo hi

let decode_edge s =
  let fl x = float_of_string_opt x in
  if s = "" then None
  else
    match s.[0] with
    | 'e' -> Option.map (fun v -> Exact v) (fl (String.sub s 1 (String.length s - 1)))
    | 'u' -> begin
      match String.split_on_char ',' (String.sub s 1 (String.length s - 1)) with
      | [ lo; hi ] -> begin
        match (fl lo, fl hi) with
        | Some lo, Some hi -> Some (Unknown { lo; hi })
        | _, _ -> None
      end
      | _ -> None
    end
    | _ -> None

let encode_result = function
  | Br v -> Printf.sprintf "br %h" v
  | Faulty_band { lo; hi } -> Printf.sprintf "band %h %h" lo hi
  | Bands bands ->
    "bands "
    ^ String.concat ";"
        (List.map
           (fun { b_lo; b_hi } ->
             encode_edge b_lo ^ ":" ^ encode_edge b_hi)
           bands)
  | Always_faulty -> "always"
  | Never_faulty -> "never"
  | Unsampled -> "unsampled"

let decode_result s =
  match String.split_on_char ' ' s with
  | [ "always" ] -> Some Always_faulty
  | [ "never" ] -> Some Never_faulty
  | [ "unsampled" ] -> Some Unsampled
  | [ "br"; v ] -> Option.map (fun v -> Br v) (float_of_string_opt v)
  | [ "band"; lo; hi ] -> begin
    match (float_of_string_opt lo, float_of_string_opt hi) with
    | Some lo, Some hi -> Some (Faulty_band { lo; hi })
    | _, _ -> None
  end
  | [ "bands"; bands ] -> begin
    let decode_band b =
      match String.split_on_char ':' b with
      | [ lo; hi ] -> begin
        match (decode_edge lo, decode_edge hi) with
        | Some b_lo, Some b_hi -> Some { b_lo; b_hi }
        | _, _ -> None
      end
      | _ -> None
    in
    let decoded = List.map decode_band (String.split_on_char ';' bands) in
    if List.for_all Option.is_some decoded then
      Some (Bands (List.filter_map Fun.id decoded))
    else None
  end
  | _ -> None

let equal_result a b = String.equal (encode_result a) (encode_result b)

let encode_probe = function Some true -> "1" | Some false -> "0" | None -> "x"

let decode_probe = function
  | "1" -> Some (Some true)
  | "0" -> Some (Some false)
  | "x" -> Some None
  | _ -> None

let search ?tech ?config ?checkpoint ?window ?r_min ?r_max ?grid_points
    ?rel_tol ?(hint = []) ~stress ~kind ~placement cond =
  let w = Window.over ?base:window ?r_min ?r_max ?grid_points ?rel_tol () in
  (* the physics fingerprint: everything a single probe's boolean
     outcome depends on, excluding the window (a probe at resistance r
     is the same simulation whatever window asked for it) *)
  let fp =
    lazy (Ck.fingerprint (tech, config, stress, kind, placement, cond))
  in
  let compute () =
    let cfg = Sc.resolve ?tech ?config () in
    let detect r =
      Tel.Counter.incr c_probes;
      Detection.detects ~config:cfg ~stress ~defect:(D.v kind placement r)
        cond
    in
    let try_detect r =
      match detect r with
      | b -> Some b
      | exception e when is_solver_failure e ->
        Tel.Counter.incr c_skipped;
        None
    in
    let grid =
      Array.of_list (G.logspace w.Window.r_min w.Window.r_max w.Window.grid_points)
    in
    let n = Array.length grid in
    let lanes_max = Sc.resolve_lanes cfg in
    let use_batch =
      lanes_max > 1 && cfg.Sc.deadline = None && not (Chaos.armed ())
    in
    (* [scan rs] simulates each resistance of [rs] in order. Batched by
       default: the resistances become lanes of shared ensembles
       ([O.run_batch]) judged per lane; scalar for [lanes = 1],
       per-point deadlines, or an armed chaos harness — same values,
       same cache keys, either way. The refinement bisections below stay
       scalar: each walks its own resistance trajectory, and caching
       makes revisits free. *)
    let scan rs =
      if use_batch && List.length rs > 1 then begin
        let defects = List.map (fun r -> D.v kind placement r) rs in
        let vc_init =
          Detection.initial_vc cond ~stress ~defect:(List.hd defects)
        in
        let results =
          List.concat
            (Par.parallel_map ~jobs:(Sc.resolve_jobs cfg)
               (fun chunk ->
                 let lanes =
                   List.map (fun d -> { O.defect = Some d; O.vc_init }) chunk
                 in
                 Tel.Counter.add c_probes (List.length lanes);
                 match
                   O.run_batch ~config:cfg ~stress ~lanes
                     (Detection.ops cond)
                 with
                 | res -> res
                 | exception e -> List.map (fun _ -> Error e) lanes)
               (Par.chunks ~size:lanes_max defects))
        in
        List.map2
          (fun r res ->
            match res with
            | Ok outcome -> (r, Some (Detection.judge cond outcome))
            | Error e when is_solver_failure e ->
              Tel.Counter.incr c_skipped;
              (r, None)
            | Error e -> raise e)
          rs results
      end
      else List.map (fun r -> (r, try_detect r)) rs
    in
    let samples =
      match w.Window.strategy with
      | Window.Grid -> scan (Array.to_list grid)
      | Window.Adaptive ->
        (* the adaptive scan probes a sparse subset of the SAME grid the
           oracle would, so any sample it does take is bit-identical to
           the grid strategy's. Per-probe checkpoint records let an
           interrupted refinement resume re-simulating only the probes
           it had not finished. *)
        let probe_key i =
          Ck.digest_key
            (Printf.sprintf "border.probe|%s|%h" (Lazy.force fp) grid.(i))
        in
        let probe_many idxs =
          let cached, missing =
            match checkpoint with
            | None -> ([], idxs)
            | Some ck ->
              List.partition_map
                (fun i ->
                  match Option.bind (Ck.find ck (probe_key i)) decode_probe with
                  | Some v -> Either.Left (i, v)
                  | None -> Either.Right i)
                idxs
          in
          let fresh =
            List.map2
              (fun i (_, v) -> (i, v))
              missing
              (scan (List.map (fun i -> grid.(i)) missing))
          in
          (match checkpoint with
          | Some ck ->
            List.iter
              (fun (i, v) ->
                Ck.record ck ~key:(probe_key i)
                  ~descr:(Printf.sprintf "border probe @ %h Ohm" grid.(i))
                  (encode_probe v))
              fresh
          | None -> ());
          cached @ fresh
        in
        let bracket_index r =
          (* grid interval containing r: seeds the adjacent index pair *)
          let t =
            float_of_int (n - 1)
            *. log (r /. w.Window.r_min)
            /. log (w.Window.r_max /. w.Window.r_min)
          in
          let i = int_of_float (Float.floor t) in
          Int.max 0 (Int.min (n - 2) i)
        in
        let seeds =
          List.concat_map
            (fun r ->
              if r > 0.0 then
                let i = bracket_index r in
                [ i; i + 1 ]
              else [])
            hint
        in
        let indexed =
          adaptive_scan ~n ~coarse:Window.coarse_points ~seeds probe_many
        in
        List.map (fun (i, v) -> (grid.(i), v)) indexed
    in
    let refine_raw r0 r1 =
      (* the bisection revisits resistances near the transition; if one
         of them is itself unsimulatable the edge position degrades to
         the bracketing known samples instead of aborting the search.
         Note the bisection is over a boolean detect predicate, so
         Illinois/regula-falsi acceleration does not apply: there is no
         continuous residual to interpolate, only a sign. *)
      match B.threshold_log ~rel_tol:w.Window.rel_tol detect r0 r1 with
      | v -> Exact v
      | exception e when is_solver_failure e ->
        Tel.Counter.incr c_unknown_edges;
        Unknown { lo = r0; hi = r1 }
    in
    let refine =
      match (w.Window.strategy, checkpoint) with
      | Window.Adaptive, Some _ ->
        fun r0 r1 ->
          (* per-edge memo: a resumed adaptive search replays finished
             edge refinements from the checkpoint and re-simulates only
             the unfinished ones *)
          let key =
            Printf.sprintf "border.edge|%s|%h|%h|%h" (Lazy.force fp) r0 r1
              w.Window.rel_tol
          in
          Ck.memo checkpoint ~key
            ~descr:(Printf.sprintf "border edge %h..%h Ohm" r0 r1)
            ~encode:encode_edge ~decode:decode_edge
            (fun () -> refine_raw r0 r1)
      | _ -> refine_raw
    in
    of_samples ~refine ~r_min:w.Window.r_min ~r_max:w.Window.r_max samples
  in
  match checkpoint with
  | None -> compute ()
  | Some _ ->
    let key =
      Printf.sprintf "border.search|%s|%s" (Lazy.force fp)
        (Window.fingerprint w)
    in
    let descr =
      Format.asprintf "border %a/%a under %a" D.pp_kind kind D.pp_placement
        placement Dramstress_dram.Stress.pp stress
    in
    Ck.memo checkpoint ~key ~descr ~encode:encode_result ~decode:decode_result
      compute

(* ------------------------------------------------------------------ *)
(* Coverage arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let covered_ranges polarity result ~r_min ~r_max =
  match (result, polarity) with
  | (Never_faulty | Unsampled), (D.High_r_fails | D.Low_r_fails) -> []
  | Always_faulty, (D.High_r_fails | D.Low_r_fails) -> [ (r_min, r_max) ]
  | Faulty_band { lo; hi }, (D.High_r_fails | D.Low_r_fails) -> [ (lo, hi) ]
  | Bands bands, (D.High_r_fails | D.Low_r_fails) ->
    List.map (fun b -> (edge_mid b.b_lo, edge_mid b.b_hi)) bands
  | Br r, D.High_r_fails -> [ (r, r_max) ]
  | Br r, D.Low_r_fails -> [ (r_min, r) ]

let covered_range polarity result ~r_min ~r_max =
  match covered_ranges polarity result ~r_min ~r_max with
  | [] -> None
  | (lo0, hi0) :: rest ->
    (* the hull: for multi-band results this overstates the covered area;
       [covered_ranges] has the honest list *)
    Some
      (List.fold_left
         (fun (lo, hi) (l, h) -> (Float.min lo l, Float.max hi h))
         (lo0, hi0) rest)

let notional_min = 1e3
let notional_max = 1e11

let coverage_width polarity result =
  List.fold_left
    (fun acc (lo, hi) ->
      if hi > lo && lo > 0.0 then acc +. log10 (hi /. lo) else acc)
    0.0
    (covered_ranges polarity result ~r_min:notional_min ~r_max:notional_max)

let improvement ?window polarity ~nominal ~stressed =
  match (nominal, stressed) with
  | Br a, Br b -> begin
    match polarity with
    | D.High_r_fails -> Some (a /. b)
    | D.Low_r_fails -> Some (b /. a)
  end
  | (Never_faulty | Unsampled), _ | _, (Never_faulty | Unsampled) -> None
  | (Br _ | Faulty_band _ | Bands _ | Always_faulty), _ ->
    (* mixed result shapes: compare covered widths in log decades, the
       same axis [coverage_width] scores on — a linear hi-lo ratio here
       would contradict the paper's log-resistance axis and make the
       mixed-shape improvement incommensurable with the BR-ratio case.
       The nominal width must clear the window's edge-location
       tolerance before a ratio is meaningful: edges are only located
       to [rel_tol] relative error, so a nominal coverage narrower than
       one tolerance step in log space is pure refinement noise. *)
    let tol = (Option.value window ~default:Window.default).Window.rel_tol in
    let floor_ = log10 (1.0 +. tol) in
    let a = coverage_width polarity nominal in
    let b = coverage_width polarity stressed in
    if a > floor_ then Some (b /. a) else None

let better polarity a b =
  coverage_width polarity a > coverage_width polarity b +. 1e-9
