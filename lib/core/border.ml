module B = Dramstress_util.Bisect
module G = Dramstress_util.Grid
module D = Dramstress_defect.Defect
module U = Dramstress_util.Units
module O = Dramstress_dram.Ops
module Sc = Dramstress_dram.Sim_config
module E = Dramstress_engine
module Ck = Dramstress_util.Checkpoint
module Par = Dramstress_util.Par
module Chaos = Dramstress_util.Chaos
module Tel = Dramstress_util.Telemetry

let c_skipped = Tel.Counter.make "core.border.skipped_samples"
let c_unknown_edges = Tel.Counter.make "core.border.unknown_edges"

type edge = Exact of float | Unknown of { lo : float; hi : float }

type band = { b_lo : edge; b_hi : edge }

type result =
  | Br of float
  | Faulty_band of { lo : float; hi : float }
  | Bands of band list
  | Always_faulty
  | Never_faulty
  | Unsampled

let pp_edge ppf = function
  | Exact v -> Format.fprintf ppf "%aOhm" U.pp_si v
  | Unknown { lo; hi } ->
    Format.fprintf ppf "?(%aOhm..%aOhm)" U.pp_si lo U.pp_si hi

let pp_result ppf = function
  | Br r -> Format.fprintf ppf "BR ~ %aOhm" U.pp_si r
  | Faulty_band { lo; hi } ->
    Format.fprintf ppf "faulty band %aOhm .. %aOhm" U.pp_si lo U.pp_si hi
  | Bands bands ->
    Format.fprintf ppf "faulty bands %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf { b_lo; b_hi } ->
           Format.fprintf ppf "%a .. %a" pp_edge b_lo pp_edge b_hi))
      bands
  | Always_faulty -> Format.pp_print_string ppf "faulty over whole range"
  | Never_faulty -> Format.pp_print_string ppf "not detected"
  | Unsampled -> Format.pp_print_string ppf "no point could be simulated"

(* geometric midpoint: the resistance axis is logarithmic throughout *)
let edge_mid = function Exact v -> v | Unknown { lo; hi } -> sqrt (lo *. hi)

(* ------------------------------------------------------------------ *)
(* Pure classification core                                            *)
(* ------------------------------------------------------------------ *)

(* [of_samples] turns a scanned grid into the honest band structure.
   Failed samples ([None]) are skippable: transitions are located
   between consecutive KNOWN samples only, so one pathological
   resistance narrows the evidence instead of killing the search. Every
   detected interval is reported — a detected/undetected/detected
   pattern yields two bands, not a collapsed single edge. *)
let of_samples ~refine ~r_min ~r_max samples =
  let known =
    List.filter_map (fun (r, o) -> Option.map (fun b -> (r, b)) o) samples
  in
  match known with
  | [] -> Unsampled
  | (_, first_detected) :: _ ->
    if List.for_all snd known then Always_faulty
    else if not (List.exists snd known) then Never_faulty
    else begin
      (* transitions between consecutive known samples, tagged with the
         detection state that holds after the transition *)
      let rec transitions acc = function
        | (r0, b0) :: ((r1, b1) :: _ as rest) ->
          let acc = if b0 <> b1 then (refine r0 r1, b1) :: acc else acc in
          transitions acc rest
        | [ _ ] | [] -> List.rev acc
      in
      let close bands lo hi = { b_lo = lo; b_hi = hi } :: bands in
      let bands, open_band =
        List.fold_left
          (fun (bands, open_band) (e, detected_after) ->
            if detected_after then (bands, Some e)
            else
              match open_band with
              | Some lo -> (close bands lo e, None)
              | None -> (bands, None))
          ([], if first_detected then Some (Exact r_min) else None)
          (transitions [] known)
      in
      let bands =
        match open_band with
        | Some lo -> close bands lo (Exact r_max)
        | None -> bands
      in
      match List.rev bands with
      | [] -> assert false (* some sample is detected, some is not *)
      | [ { b_lo = Exact lo; b_hi = Exact hi } ] when lo = r_min ->
        (* detected from the range start up to a single interior edge *)
        Br hi
      | [ { b_lo = Exact lo; b_hi = Exact hi } ] when hi = r_max ->
        Br lo
      | [ { b_lo = Exact lo; b_hi = Exact hi } ] -> Faulty_band { lo; hi }
      | bands -> Bands bands
    end

(* ------------------------------------------------------------------ *)
(* Electrical search                                                   *)
(* ------------------------------------------------------------------ *)

(* only genuine solver failures are skippable; anything else is a bug
   and must propagate. Health-guard and deadline errors are solver
   failures too: the point is untrustworthy, not the program. *)
let is_solver_failure = function
  | E.Transient.Step_failed _ | E.Newton.No_convergence _
  | E.Newton.Numerical_health _ | E.Newton.Timeout _
  | O.Exhausted_retries _ ->
    true
  | _ -> false

let encode_edge = function
  | Exact v -> Printf.sprintf "e%h" v
  | Unknown { lo; hi } -> Printf.sprintf "u%h,%h" lo hi

let decode_edge s =
  let fl x = float_of_string_opt x in
  if s = "" then None
  else
    match s.[0] with
    | 'e' -> Option.map (fun v -> Exact v) (fl (String.sub s 1 (String.length s - 1)))
    | 'u' -> begin
      match String.split_on_char ',' (String.sub s 1 (String.length s - 1)) with
      | [ lo; hi ] -> begin
        match (fl lo, fl hi) with
        | Some lo, Some hi -> Some (Unknown { lo; hi })
        | _, _ -> None
      end
      | _ -> None
    end
    | _ -> None

let encode_result = function
  | Br v -> Printf.sprintf "br %h" v
  | Faulty_band { lo; hi } -> Printf.sprintf "band %h %h" lo hi
  | Bands bands ->
    "bands "
    ^ String.concat ";"
        (List.map
           (fun { b_lo; b_hi } ->
             encode_edge b_lo ^ ":" ^ encode_edge b_hi)
           bands)
  | Always_faulty -> "always"
  | Never_faulty -> "never"
  | Unsampled -> "unsampled"

let decode_result s =
  match String.split_on_char ' ' s with
  | [ "always" ] -> Some Always_faulty
  | [ "never" ] -> Some Never_faulty
  | [ "unsampled" ] -> Some Unsampled
  | [ "br"; v ] -> Option.map (fun v -> Br v) (float_of_string_opt v)
  | [ "band"; lo; hi ] -> begin
    match (float_of_string_opt lo, float_of_string_opt hi) with
    | Some lo, Some hi -> Some (Faulty_band { lo; hi })
    | _, _ -> None
  end
  | [ "bands"; bands ] -> begin
    let decode_band b =
      match String.split_on_char ':' b with
      | [ lo; hi ] -> begin
        match (decode_edge lo, decode_edge hi) with
        | Some b_lo, Some b_hi -> Some { b_lo; b_hi }
        | _, _ -> None
      end
      | _ -> None
    in
    let decoded = List.map decode_band (String.split_on_char ';' bands) in
    if List.for_all Option.is_some decoded then
      Some (Bands (List.filter_map Fun.id decoded))
    else None
  end
  | _ -> None

let equal_result a b = String.equal (encode_result a) (encode_result b)

let search ?tech ?config ?checkpoint ?(r_min = 1e3) ?(r_max = 1e11)
    ?(grid_points = 13) ?(rel_tol = 0.01) ~stress ~kind ~placement cond =
  let compute () =
    let cfg = Sc.resolve ?tech ?config () in
    let detect r =
      Detection.detects ~config:cfg ~stress ~defect:(D.v kind placement r)
        cond
    in
    let try_detect r =
      match detect r with
      | b -> Some b
      | exception e when is_solver_failure e ->
        Tel.Counter.incr c_skipped;
        None
    in
    let grid = G.logspace r_min r_max grid_points in
    let lanes_max = Sc.resolve_lanes cfg in
    let samples =
      (* the grid scan batches by default: all resistances of the scan
         become lanes of shared ensembles ([O.run_batch]) judged per
         lane; scalar for [lanes = 1], per-point deadlines, or an armed
         chaos harness — same values, same cache keys, either way. The
         refinement bisections below stay scalar: each walks its own
         resistance trajectory, and caching makes revisits free. *)
      if
        lanes_max > 1
        && cfg.Sc.deadline = None
        && (not (Chaos.armed ()))
        && List.length grid > 1
      then begin
        let defects = List.map (fun r -> D.v kind placement r) grid in
        let vc_init =
          Detection.initial_vc cond ~stress ~defect:(List.hd defects)
        in
        let results =
          List.concat
            (Par.parallel_map ~jobs:(Sc.resolve_jobs cfg)
               (fun chunk ->
                 let lanes =
                   List.map (fun d -> { O.defect = Some d; O.vc_init }) chunk
                 in
                 match
                   O.run_batch ~config:cfg ~stress ~lanes
                     (Detection.ops cond)
                 with
                 | res -> res
                 | exception e -> List.map (fun _ -> Error e) lanes)
               (Par.chunks ~size:lanes_max defects))
        in
        List.map2
          (fun r res ->
            match res with
            | Ok outcome -> (r, Some (Detection.judge cond outcome))
            | Error e when is_solver_failure e ->
              Tel.Counter.incr c_skipped;
              (r, None)
            | Error e -> raise e)
          grid results
      end
      else List.map (fun r -> (r, try_detect r)) grid
    in
    let refine r0 r1 =
      (* the bisection revisits resistances near the transition; if one
         of them is itself unsimulatable the edge position degrades to
         the bracketing known samples instead of aborting the search *)
      match B.threshold_log ~rel_tol detect r0 r1 with
      | v -> Exact v
      | exception e when is_solver_failure e ->
        Tel.Counter.incr c_unknown_edges;
        Unknown { lo = r0; hi = r1 }
    in
    of_samples ~refine ~r_min ~r_max samples
  in
  match checkpoint with
  | None -> compute ()
  | Some _ ->
    let key =
      Printf.sprintf "border.search|%s|%h|%h|%d|%h"
        (Ck.fingerprint (tech, config, stress, kind, placement, cond))
        r_min r_max grid_points rel_tol
    in
    let descr =
      Format.asprintf "border %a/%a under %a" D.pp_kind kind D.pp_placement
        placement Dramstress_dram.Stress.pp stress
    in
    Ck.memo checkpoint ~key ~descr ~encode:encode_result ~decode:decode_result
      compute

(* ------------------------------------------------------------------ *)
(* Coverage arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let covered_ranges polarity result ~r_min ~r_max =
  match (result, polarity) with
  | (Never_faulty | Unsampled), (D.High_r_fails | D.Low_r_fails) -> []
  | Always_faulty, (D.High_r_fails | D.Low_r_fails) -> [ (r_min, r_max) ]
  | Faulty_band { lo; hi }, (D.High_r_fails | D.Low_r_fails) -> [ (lo, hi) ]
  | Bands bands, (D.High_r_fails | D.Low_r_fails) ->
    List.map (fun b -> (edge_mid b.b_lo, edge_mid b.b_hi)) bands
  | Br r, D.High_r_fails -> [ (r, r_max) ]
  | Br r, D.Low_r_fails -> [ (r_min, r) ]

let covered_range polarity result ~r_min ~r_max =
  match covered_ranges polarity result ~r_min ~r_max with
  | [] -> None
  | (lo0, hi0) :: rest ->
    (* the hull: for multi-band results this overstates the covered area;
       [covered_ranges] has the honest list *)
    Some
      (List.fold_left
         (fun (lo, hi) (l, h) -> (Float.min lo l, Float.max hi h))
         (lo0, hi0) rest)

let notional_min = 1e3
let notional_max = 1e11

let coverage_width polarity result =
  List.fold_left
    (fun acc (lo, hi) ->
      if hi > lo && lo > 0.0 then acc +. log10 (hi /. lo) else acc)
    0.0
    (covered_ranges polarity result ~r_min:notional_min ~r_max:notional_max)

let improvement polarity ~nominal ~stressed =
  match (nominal, stressed) with
  | Br a, Br b -> begin
    match polarity with
    | D.High_r_fails -> Some (a /. b)
    | D.Low_r_fails -> Some (b /. a)
  end
  | (Never_faulty | Unsampled), _ | _, (Never_faulty | Unsampled) -> None
  | (Br _ | Faulty_band _ | Bands _ | Always_faulty), _ ->
    (* mixed result shapes: compare covered widths in log decades, the
       same axis [coverage_width] scores on — a linear hi-lo ratio here
       would contradict the paper's log-resistance axis and make the
       mixed-shape improvement incommensurable with the BR-ratio case *)
    let a = coverage_width polarity nominal in
    let b = coverage_width polarity stressed in
    if a > 0.0 then Some (b /. a) else None

let better polarity a b =
  coverage_width polarity a > coverage_width polarity b +. 1e-9
