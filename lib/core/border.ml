module B = Dramstress_util.Bisect
module G = Dramstress_util.Grid
module D = Dramstress_defect.Defect
module U = Dramstress_util.Units

type result =
  | Br of float
  | Faulty_band of { lo : float; hi : float }
  | Always_faulty
  | Never_faulty

let pp_result ppf = function
  | Br r -> Format.fprintf ppf "BR ~ %aOhm" U.pp_si r
  | Faulty_band { lo; hi } ->
    Format.fprintf ppf "faulty band %aOhm .. %aOhm" U.pp_si lo U.pp_si hi
  | Always_faulty -> Format.pp_print_string ppf "faulty over whole range"
  | Never_faulty -> Format.pp_print_string ppf "not detected"

let search ?tech ?config ?(r_min = 1e3) ?(r_max = 1e11) ?(grid_points = 13)
    ?(rel_tol = 0.01) ~stress ~kind ~placement cond =
  let detect r =
    Detection.detects ?tech ?config ~stress ~defect:(D.v kind placement r) cond
  in
  let grid = G.logspace r_min r_max grid_points in
  let outcomes = List.map (fun r -> (r, detect r)) grid in
  let any_true = List.exists snd outcomes in
  let all_true = List.for_all snd outcomes in
  if all_true then Always_faulty
  else if not any_true then Never_faulty
  else begin
    (* refine every adjacent pair whose outcome differs *)
    let rec edges acc = function
      | (r0, o0) :: ((r1, o1) :: _ as rest) ->
        let acc =
          if o0 <> o1 then
            B.threshold_log ~rel_tol detect r0 r1 :: acc
          else acc
        in
        edges acc rest
      | [ _ ] | [] -> List.rev acc
    in
    let first_true =
      match List.find_opt snd outcomes with
      | Some (r, _) -> r
      | None -> assert false
    in
    ignore first_true;
    match (edges [] outcomes, snd (List.hd outcomes)) with
    | [ e ], _ -> Br e
    | e :: (_ :: _ as more), lo_detected ->
      let last = List.nth more (List.length more - 1) in
      if lo_detected then
        (* detected at r_min, gap in the middle, detected again: report
           the enclosing coverage conservatively as a single low edge *)
        Br last
      else Faulty_band { lo = e; hi = last }
    | [], _ -> assert false
  end

let covered_range polarity result ~r_min ~r_max =
  match (result, polarity) with
  | Never_faulty, (D.High_r_fails | D.Low_r_fails) -> None
  | Always_faulty, (D.High_r_fails | D.Low_r_fails) -> Some (r_min, r_max)
  | Faulty_band { lo; hi }, (D.High_r_fails | D.Low_r_fails) -> Some (lo, hi)
  | Br r, D.High_r_fails -> Some (r, r_max)
  | Br r, D.Low_r_fails -> Some (r_min, r)

let notional_min = 1e3
let notional_max = 1e11

let coverage_width polarity result =
  match covered_range polarity result ~r_min:notional_min ~r_max:notional_max with
  | None -> 0.0
  | Some (lo, hi) -> log10 (hi /. lo)

let improvement polarity ~nominal ~stressed =
  match (nominal, stressed) with
  | Br a, Br b -> begin
    match polarity with
    | D.High_r_fails -> Some (a /. b)
    | D.Low_r_fails -> Some (b /. a)
  end
  | Never_faulty, _ | _, Never_faulty -> None
  | (Br _ | Faulty_band _ | Always_faulty), _ -> begin
    let width r =
      match covered_range polarity r ~r_min:notional_min ~r_max:notional_max with
      | None -> None
      | Some (lo, hi) -> Some (hi -. lo)
    in
    match (width nominal, width stressed) with
    | Some a, Some b when a > 0.0 -> Some (b /. a)
    | _, _ -> None
  end

let better polarity a b =
  coverage_width polarity a > coverage_width polarity b +. 1e-9
