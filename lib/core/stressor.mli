(** Per-stress direction analysis — Section 4 of the paper.

    For each stress axis, two cheap probes mirror the paper's Figures
    3–5: the effect on the victim write (residual storage voltage after
    one victim write at the analysis resistance) and on the read (shift
    of the sense threshold [V_sa]). When the two disagree — the paper's
    V_dd case — the verdict falls back to comparing border resistances at
    the candidate extremes. *)

type direction =
  | Increase   (** driving the axis up stresses the test *)
  | Decrease
  | Neutral    (** no measurable effect *)

val pp_direction : Format.formatter -> direction -> unit

(** One probed stress value and its measurements. *)
type sample = {
  value : float;
  write_residual : float;
    (** |physical target - V_c| after one victim write: larger means the
        write was disturbed more, i.e. the value is more stressful for
        the write *)
  vsa_shift : float;
    (** V_sa at the analysis resistance, oriented so that larger means
        easier fault detection on the read *)
}

type probe = {
  axis : Dramstress_dram.Stress.axis;
  samples : sample list;
  write_direction : direction;
  read_direction : direction;
  verdict : direction;
  br_at_extremes : (float * Border.result) list;
    (** filled when the verdict needed a BR comparison, or always when
        [force_br] was set *)
  rationale : string;
}

(** [probe_axis ?tech ?analysis_r ?epsilon ?force_br ~stress ~kind
    ~placement ~detection axis values] measures the axis at the given
    candidate [values] (ordered; at least two). [analysis_r] is the
    defect resistance the probes run at (default 200 kOhm, the paper's
    choice). [epsilon] is the significance floor for calling a direction
    (default 10 mV). [force_br] always resolves by BR comparison.
    [checkpoint] memoizes the BR searches a conflicting verdict falls
    back to; [window] is the {!Border.Window} those searches run
    under (default {!Border.Window.default}). *)
val probe_axis :
  ?tech:Dramstress_dram.Tech.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  ?analysis_r:float ->
  ?epsilon:float ->
  ?force_br:bool ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  detection:Detection.t ->
  Dramstress_dram.Stress.axis ->
  float list ->
  probe

(** [default_values axis ~stress] — the registry's candidate values per
    axis ({!Dramstress_stressaxis.Stressaxis.probe_values}). For the
    paper's four: t_cyc 55/60 ns, T −33/+27/+87 C, V_dd 2.1/2.4/2.7 V,
    duty 0.35/0.5/0.65 (scaled around the given nominal). *)
val default_values :
  Dramstress_dram.Stress.axis -> stress:Dramstress_dram.Stress.t -> float list

(** [apply_verdict probe ~stress] moves the axis one registry notch
    ({!Dramstress_stressaxis.Stressaxis.nudge}) in the stressful
    direction (for the paper's four: t_cyc −5 ns, T ±60 C, V_dd ∓0.3 V,
    duty ∓0.15), clamped to physical ranges; identity for [Neutral]. *)
val apply_verdict :
  probe -> stress:Dramstress_dram.Stress.t -> Dramstress_dram.Stress.t

(** [trace_vc ?tech ~stress ~defect ~vc_init op] is the V_c(t) waveform
    over a single operation — the raw material of Figures 3–5. *)
val trace_vc :
  ?tech:Dramstress_dram.Tech.t ->
  stress:Dramstress_dram.Stress.t ->
  defect:Dramstress_defect.Defect.t ->
  vc_init:float ->
  Dramstress_dram.Ops.op ->
  (float * float) list

val pp_probe : Format.formatter -> probe -> unit
