module O = Dramstress_dram.Ops
module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module D = Dramstress_defect.Defect
module B = Dramstress_util.Bisect
module I = Dramstress_util.Interp
module G = Dramstress_util.Grid
module Par = Dramstress_util.Par
module Out = Dramstress_util.Outcome
module Ck = Dramstress_util.Checkpoint
module Tel = Dramstress_util.Telemetry

(* shared by every sweep layer: wall time of one independent sweep point
   (one resistance: its bisections and transients) *)
let h_point =
  Tel.Histogram.make ~unit_:"ms" ~lo:1e-2 ~hi:1e6 ~buckets:40
    "core.sweep.point_ms"

(* per-point probe used by all resistance sweeps in this module: the
   histogram feeds metrics, the span feeds the trace sink *)
let sweep_point ~r f =
  Tel.Histogram.time_ms h_point (fun () ->
      Tel.with_span "plane.point" ~attrs:(fun () -> [ ("r", Tel.Float r) ]) f)

type point = { r : float; vc : float }

type curve = { label : string; points : point list }

type vsa_point = { r_sa : float; vsa : vsa_value }
and vsa_value = Vsa of float | Reads_all_1 | Reads_all_0

type t = {
  op : O.op;
  curves : curve list;
  vsa_curve : vsa_point list;
  vmp : float;
  rops : float list;
  failures : float Out.failure list;
  stress : S.t;
}

let default_rops = G.logspace 1e3 1e6 12

(* the resistance axis of a plane sweep, resolved from the explicit
   [rops] list when given, else from a [Border.Window]'s bounds and
   resolution, else the historical 12-point default *)
let resolve_rops ?window ?rops () =
  match (rops, window) with
  | Some rops, _ -> rops
  | None, Some w ->
    G.logspace w.Border.Window.r_min w.Border.Window.r_max
      w.Border.Window.grid_points
  | None, None -> default_rops

(* physical read result for an initial storage voltage: a single read op,
   unwrapping the logical inversion of complementary placement *)
let read_physical ~config ~stress ?defect vc =
  let outcome = O.run ~config ~stress ?defect ~vc_init:vc [ O.R ] in
  let logical =
    match O.sensed_bits outcome with [ b ] -> b | _ -> assert false
  in
  match defect with
  | Some { D.placement = D.Comp_bl; _ } -> 1 - logical
  | Some { D.placement = D.True_bl; _ } | None -> logical

let vmp ?tech ?sim ?config ~stress () =
  let config = Sc.resolve ?tech ?sim ?config () in
  match
    B.guarded_threshold ~tol:5e-3
      (fun vc -> read_physical ~config ~stress vc = 0)
      0.0 stress.S.vdd
  with
  | B.Crossing v -> v
  | B.All_true -> 0.0
  | B.All_false -> stress.S.vdd

let vsa ?tech ?sim ?config ~stress ~defect () =
  let config = Sc.resolve ?tech ?sim ?config () in
  match
    B.guarded_threshold ~tol:5e-3
      (fun vc -> read_physical ~config ~stress ~defect vc = 0)
      0.0 stress.S.vdd
  with
  | B.Crossing v -> Vsa v
  | B.All_false -> Reads_all_1
  | B.All_true -> Reads_all_0

let vsa_substitute stress = function
  | Vsa v -> v
  | Reads_all_1 -> 0.0
  | Reads_all_0 -> stress.S.vdd

(* the physical storage level a logical write targets *)
let physical_target placement op =
  let logical =
    match op with O.W0 -> 0 | O.W1 -> 1 | O.R | O.Pause _ | O.Ham _ -> 1
  in
  match placement with D.True_bl -> logical | D.Comp_bl -> 1 - logical

(* ------------------------------------------------------------------ *)
(* Checkpoint payload codecs: [%h] floats so a resumed sweep rebuilds   *)
(* byte-identical planes                                                *)
(* ------------------------------------------------------------------ *)

let encode_vsa = function
  | Vsa v -> Printf.sprintf "v%h" v
  | Reads_all_1 -> "1"
  | Reads_all_0 -> "0"

let decode_vsa = function
  | "1" -> Some Reads_all_1
  | "0" -> Some Reads_all_0
  | s when String.length s > 1 && s.[0] = 'v' ->
    Option.map
      (fun v -> Vsa v)
      (float_of_string_opt (String.sub s 1 (String.length s - 1)))
  | _ -> None

let encode_floats vs = String.concat "," (List.map (Printf.sprintf "%h") vs)

let decode_floats s =
  let parts = if s = "" then [] else String.split_on_char ',' s in
  let decoded = List.map float_of_string_opt parts in
  if List.for_all Option.is_some decoded then
    Some (List.filter_map Fun.id decoded)
  else None

let encode_write_point (vcs, v) = encode_floats vcs ^ "|" ^ encode_vsa v

let decode_write_point s =
  match String.split_on_char '|' s with
  | [ vcs; v ] -> begin
    match (decode_floats vcs, decode_vsa v) with
    | Some vcs, Some v -> Some (vcs, v)
    | _, _ -> None
  end
  | _ -> None

let encode_read_point (v, below, above) =
  encode_vsa v ^ "|" ^ encode_floats below ^ "|" ^ encode_floats above

let decode_read_point s =
  match String.split_on_char '|' s with
  | [ v; below; above ] -> begin
    match (decode_vsa v, decode_floats below, decode_floats above) with
    | Some v, Some below, Some above -> Some (v, below, above)
    | _, _, _ -> None
  end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Batched evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* Planes batch by default: every resistance of a sweep becomes one lane
   of a shared ensemble integration ([O.run_batch]) instead of an
   independent transient, so topology planning, symbolic sparse-LU
   analysis and waveform evaluation are paid once per batch. The scalar
   path remains for [lanes = 1] ([DRAMSTRESS_LANES=1] or
   [Sim_config.lanes = Some 1]), for per-point wall-clock deadlines (a
   budget has no meaning inside a shared solve) and under an armed chaos
   harness (whose fault plans reason about scalar per-point runs). Both
   paths produce identical values and share cache and checkpoint keys,
   so sweeps can switch paths mid-campaign. *)

let batching config =
  Sc.resolve_lanes config > 1
  && config.Sc.deadline = None
  && not (Dramstress_util.Chaos.armed ())

(* one batched evaluation round: [pts] are [(key, lane)] pairs; lanes
   are cut into ensemble-width chunks that fan out over domains. A raise
   from [O.run_batch] itself (e.g. a topology build failure, which would
   fail each lane of the batch identically on the scalar path) degrades
   to per-lane [Error]s instead of aborting the sweep. *)
let run_rounds ~config ~jobs ~lanes_max ~stress ~ops pts =
  List.concat
    (Par.parallel_map ~jobs
       (fun chunk ->
         Tel.with_span "plane.batch"
           ~attrs:(fun () -> [ ("lanes", Tel.Int (List.length chunk)) ])
           (fun () ->
             let lanes = List.map snd chunk in
             let res =
               match O.run_batch ~config ~stress ~lanes ops with
               | res -> res
               | exception e -> List.map (fun _ -> Error e) lanes
             in
             List.map2 (fun (k, _) r -> (k, r)) chunk res))
       (Par.chunks ~size:lanes_max pts))

(* batched [vsa]: every lane follows the exact guarded-bisection
   trajectory of the scalar version — same brackets, same midpoints,
   same [tol] and iteration cap as {!B.guarded_threshold} — but each
   predicate round evaluates all still-active lanes in one ensemble.
   All Crossing lanes share the bracket [0, vdd], so they stay in
   lockstep and the whole bisection costs [log2 (vdd / tol)] rounds for
   the entire batch. A lane whose simulation fails carries its
   exception out as [Error] without disturbing its batch mates. *)
let vsa_many ~config ~jobs ~lanes_max ~stress defects =
  let n = Array.length defects in
  let vdd = stress.S.vdd in
  let tol = 5e-3 and max_iter = 200 in
  let out = Array.make n None in
  let pred_round pts =
    List.map
      (fun (i, r) ->
        ( i,
          Result.map
            (fun outcome ->
              let logical =
                match O.sensed_bits outcome with
                | [ b ] -> b
                | _ -> assert false
              in
              let physical =
                match defects.(i).D.placement with
                | D.Comp_bl -> 1 - logical
                | D.True_bl -> logical
              in
              physical = 0)
            r ))
      (run_rounds ~config ~jobs ~lanes_max ~stress ~ops:[ O.R ]
         (List.map
            (fun ((i : int), vc) ->
              (i, { O.defect = Some defects.(i); O.vc_init = vc }))
            pts))
  in
  let plo = Array.make n false in
  List.iter
    (fun (i, r) ->
      match r with
      | Ok b -> plo.(i) <- b
      | Error e -> out.(i) <- Some (Error e))
    (pred_round (List.init n (fun i -> (i, 0.0))));
  let live =
    List.filter (fun i -> Option.is_none out.(i)) (List.init n Fun.id)
  in
  let crossing = ref [] in
  List.iter
    (fun (i, r) ->
      match r with
      | Error e -> out.(i) <- Some (Error e)
      | Ok phi ->
        if Bool.equal plo.(i) phi then
          out.(i) <- Some (Ok (if phi then Reads_all_0 else Reads_all_1))
        else crossing := i :: !crossing)
    (pred_round (List.map (fun i -> (i, vdd)) live));
  let lo = Array.make n 0.0 and hi = Array.make n vdd in
  let iter = Array.make n 0 in
  let active = ref (List.rev !crossing) in
  while !active <> [] do
    let finished, continuing =
      List.partition
        (fun i -> Float.abs (hi.(i) -. lo.(i)) <= tol || iter.(i) >= max_iter)
        !active
    in
    List.iter
      (fun i -> out.(i) <- Some (Ok (Vsa (0.5 *. (lo.(i) +. hi.(i))))))
      finished;
    let next = ref [] in
    List.iter
      (fun (i, r) ->
        match r with
        | Error e -> out.(i) <- Some (Error e)
        | Ok pm ->
          let m = 0.5 *. (lo.(i) +. hi.(i)) in
          if Bool.equal pm plo.(i) then lo.(i) <- m else hi.(i) <- m;
          iter.(i) <- iter.(i) + 1;
          next := i :: !next)
      (if continuing = [] then []
       else
         pred_round
           (List.map (fun i -> (i, 0.5 *. (lo.(i) +. hi.(i)))) continuing));
    active := List.rev !next
  done;
  Array.map Option.get out

(* shared scaffolding of the batched planes: checkpoint replay into
   [slots], per-point defect construction with [D.v] failures captured
   as point failures, and the final assembly into [Outcome.t] slots in
   input order — all under the exact keys and payload codecs of the
   scalar [Ck.memo] path, so a checkpointed sweep can resume on either
   path bit-identically. *)
let batched_slots ~checkpoint ~decode ~kind ~placement ~keys rops_arr =
  let n = Array.length rops_arr in
  let slots = Array.make n None in
  (match checkpoint with
  | None -> ()
  | Some store ->
    Array.iteri
      (fun i key ->
        match Option.bind (Ck.find store (Ck.digest_key key)) decode with
        | Some v -> slots.(i) <- Some (Ok v)
        | None -> ())
      keys);
  let defects = Array.make n None in
  Array.iteri
    (fun i r ->
      if Option.is_none slots.(i) then
        match D.v kind placement r with
        | d -> defects.(i) <- Some d
        | exception e -> slots.(i) <- Some (Error e))
    rops_arr;
  (slots, defects)

let live_indices slots =
  List.filter
    (fun i -> Option.is_none slots.(i))
    (List.init (Array.length slots) Fun.id)

let commit_point ~checkpoint ~encode ~descr ~keys ~slots i payload =
  (match checkpoint with
  | None -> ()
  | Some store ->
    Ck.record store ~key:(Ck.digest_key keys.(i)) ~descr:(descr i)
      (encode payload));
  slots.(i) <- Some (Ok payload)

let assemble_outcomes ~slots rops_arr =
  Array.to_list
    (Array.mapi
       (fun i r ->
         match slots.(i) with
         | Some (Ok payload) -> Out.Ok (r, payload)
         | Some (Error e) ->
           Out.Failed { Out.point = r; error = e; retries = O.retries_of e }
         | None -> assert false)
       rops_arr)

(* ------------------------------------------------------------------ *)
(* Plane sweeps                                                        *)
(* ------------------------------------------------------------------ *)

(* the resistance axis is embarrassingly parallel: each point is an
   independent bisection / transient, so sweeps fan out over domains.
   Each point runs through [parallel_map_outcomes]: a point whose
   simulation still fails after the retry policy becomes a [Failed]
   slot in [t.failures] instead of aborting the whole plane. *)

let curves_of ~n_ops ~label points =
  List.init n_ops (fun k ->
      {
        label = label k;
        points = List.map (fun (r, vcs) -> { r; vc = List.nth vcs k }) points;
      })

(* batched write plane: checkpoint-missing resistances become lanes of
   shared ensembles — one round of [n_ops] writes, then the lockstep
   Vsa bisection — instead of independent per-point transients *)
let write_plane_batched ~config ~jobs ~lanes_max ~checkpoint ~n_ops ~stress
    ~kind ~placement ~op ~vc_init ~base_key rops =
  let rops_arr = Array.of_list rops in
  let keys = Array.map (fun r -> Printf.sprintf "%s|%h" base_key r) rops_arr in
  let descr i = Printf.sprintf "write plane r=%g" rops_arr.(i) in
  let slots, defects =
    batched_slots ~checkpoint ~decode:decode_write_point ~kind ~placement
      ~keys rops_arr
  in
  (* write trajectories: one ensemble run of [n_ops] writes per chunk *)
  let vcs_arr = Array.make (Array.length rops_arr) [] in
  List.iter
    (fun (i, r) ->
      match r with
      | Ok outcome ->
        vcs_arr.(i) <- List.map (fun res -> res.O.vc_end) outcome.O.results
      | Error e -> slots.(i) <- Some (Error e))
    (run_rounds ~config ~jobs ~lanes_max ~stress
       ~ops:(List.init n_ops (fun _ -> op))
       (List.map
          (fun i -> (i, { O.defect = defects.(i); O.vc_init }))
          (live_indices slots)));
  (* sense-amp thresholds of the surviving points, batched bisection *)
  let live = live_indices slots in
  let vsas =
    vsa_many ~config ~jobs ~lanes_max ~stress
      (Array.of_list (List.map (fun i -> Option.get defects.(i)) live))
  in
  List.iteri
    (fun k i ->
      match vsas.(k) with
      | Ok v ->
        commit_point ~checkpoint ~encode:encode_write_point ~descr ~keys
          ~slots i (vcs_arr.(i), v)
      | Error e -> slots.(i) <- Some (Error e))
    live;
  List.map
    (fun o -> Out.map (fun (r, (vcs, v)) -> (r, vcs, v)) o)
    (assemble_outcomes ~slots rops_arr)

let write_plane ?tech ?sim ?jobs ?config ?checkpoint ?window ?(n_ops = 4)
    ?rops ~stress ~kind ~placement ~op () =
  let rops = resolve_rops ?window ?rops () in
  (match op with
  | O.W0 | O.W1 -> ()
  | O.R | O.Pause _ | O.Ham _ ->
    invalid_arg "Plane.write_plane: op must be a write");
  if n_ops < 1 then invalid_arg "Plane.write_plane: n_ops < 1";
  let config = Sc.resolve ?tech ?sim ?jobs ?config () in
  let jobs = Sc.resolve_jobs config in
  let vc_init =
    if physical_target placement op = 0 then stress.S.vdd else 0.0
  in
  let base_key =
    Ck.fingerprint ("plane.write", config, stress, kind, placement, op, n_ops)
  in
  let outcomes =
    if batching config then
      write_plane_batched ~config ~jobs ~lanes_max:(Sc.resolve_lanes config)
        ~checkpoint ~n_ops ~stress ~kind ~placement ~op ~vc_init ~base_key
        rops
    else
      Par.parallel_map_outcomes ~jobs ~retries_of:O.retries_of
      (fun r ->
        sweep_point ~r (fun () ->
            let vcs, v =
              Ck.memo checkpoint
                ~key:(Printf.sprintf "%s|%h" base_key r)
                ~descr:(Printf.sprintf "write plane r=%g" r)
                ~encode:encode_write_point ~decode:decode_write_point
                (fun () ->
                  let defect = D.v kind placement r in
                  let outcome =
                    O.run ~config ~stress ~defect ~vc_init
                      (List.init n_ops (fun _ -> op))
                  in
                  ( List.map (fun res -> res.O.vc_end) outcome.O.results,
                    vsa ~config ~stress ~defect () ))
            in
            (r, vcs, v)))
      rops
  in
  let points, failures = Out.partition outcomes in
  {
    op;
    curves =
      curves_of ~n_ops
        ~label:(fun k -> Format.asprintf "(%d) %a" (k + 1) O.pp_op op)
        (List.map (fun (r, vcs, _) -> (r, vcs)) points);
    vsa_curve = List.map (fun (r, _, v) -> { r_sa = r; vsa = v }) points;
    (* the shared defect-free midpoint is a plane prerequisite, not a
       sweep point: the per-point deadline does not apply to it *)
    vmp = vmp ~config:{ config with Sc.deadline = None } ~stress ();
    rops = List.map (fun (r, _, _) -> r) points;
    failures;
    stress;
  }

(* batched read plane: the lockstep Vsa bisection first, then two
   ensemble rounds of [n_ops] reads seeded just below / above each
   lane's own threshold *)
let read_plane_batched ~config ~jobs ~lanes_max ~checkpoint ~n_ops ~offset
    ~stress ~kind ~placement ~base_key rops =
  let rops_arr = Array.of_list rops in
  let n = Array.length rops_arr in
  let keys = Array.map (fun r -> Printf.sprintf "%s|%h" base_key r) rops_arr in
  let descr i = Printf.sprintf "read plane r=%g" rops_arr.(i) in
  let slots, defects =
    batched_slots ~checkpoint ~decode:decode_read_point ~kind ~placement ~keys
      rops_arr
  in
  let vsas = Array.make n Reads_all_1 in
  let live = live_indices slots in
  let res =
    vsa_many ~config ~jobs ~lanes_max ~stress
      (Array.of_list (List.map (fun i -> Option.get defects.(i)) live))
  in
  List.iteri
    (fun k i ->
      match res.(k) with
      | Ok v -> vsas.(i) <- v
      | Error e -> slots.(i) <- Some (Error e))
    live;
  let trajectory_round seed_of =
    let vcs = Array.make n [] in
    List.iter
      (fun (i, r) ->
        match r with
        | Ok outcome ->
          vcs.(i) <- List.map (fun res -> res.O.vc_end) outcome.O.results
        | Error e -> slots.(i) <- Some (Error e))
      (run_rounds ~config ~jobs ~lanes_max ~stress
         ~ops:(List.init n_ops (fun _ -> O.R))
         (List.map
            (fun i ->
              let seed =
                Float.max 0.0
                  (Float.min stress.S.vdd
                     (seed_of (vsa_substitute stress vsas.(i))))
              in
              (i, { O.defect = defects.(i); O.vc_init = seed }))
            (live_indices slots)));
    vcs
  in
  let below = trajectory_round (fun vsa -> vsa -. offset) in
  let above = trajectory_round (fun vsa -> vsa +. offset) in
  List.iter
    (fun i ->
      commit_point ~checkpoint ~encode:encode_read_point ~descr ~keys ~slots i
        (vsas.(i), below.(i), above.(i)))
    (live_indices slots);
  List.map
    (fun o -> Out.map (fun (r, (v, b, a)) -> (r, v, b, a)) o)
    (assemble_outcomes ~slots rops_arr)

let read_plane ?tech ?sim ?jobs ?config ?checkpoint ?window ?(n_ops = 3)
    ?rops ?(offset = 0.2) ~stress ~kind ~placement () =
  let rops = resolve_rops ?window ?rops () in
  if n_ops < 1 then invalid_arg "Plane.read_plane: n_ops < 1";
  let config = Sc.resolve ?tech ?sim ?jobs ?config () in
  let jobs = Sc.resolve_jobs config in
  let base_key =
    Ck.fingerprint
      ("plane.read", config, stress, kind, placement, n_ops, offset)
  in
  let outcomes =
    if batching config then
      read_plane_batched ~config ~jobs ~lanes_max:(Sc.resolve_lanes config)
        ~checkpoint ~n_ops ~offset ~stress ~kind ~placement ~base_key rops
    else
      Par.parallel_map_outcomes ~jobs ~retries_of:O.retries_of
      (fun r ->
        sweep_point ~r (fun () ->
            let v, below, above =
              Ck.memo checkpoint
                ~key:(Printf.sprintf "%s|%h" base_key r)
                ~descr:(Printf.sprintf "read plane r=%g" r)
                ~encode:encode_read_point ~decode:decode_read_point
                (fun () ->
                  let defect = D.v kind placement r in
                  let v = vsa ~config ~stress ~defect () in
                  let trajectory seed_of =
                    let seed =
                      Float.max 0.0
                        (Float.min stress.S.vdd
                           (seed_of (vsa_substitute stress v)))
                    in
                    let outcome =
                      O.run ~config ~stress ~defect ~vc_init:seed
                        (List.init n_ops (fun _ -> O.R))
                    in
                    List.map (fun res -> res.O.vc_end) outcome.O.results
                  in
                  ( v,
                    trajectory (fun vsa -> vsa -. offset),
                    trajectory (fun vsa -> vsa +. offset) ))
            in
            (r, v, below, above)))
      rops
  in
  let points, failures = Out.partition outcomes in
  let below = List.map (fun (r, _, b, _) -> (r, b)) points in
  let above = List.map (fun (r, _, _, a) -> (r, a)) points in
  let label tag k = Printf.sprintf "(%d) r %s" (k + 1) tag in
  {
    op = O.R;
    curves =
      curves_of ~n_ops ~label:(label "from below Vsa") below
      @ curves_of ~n_ops ~label:(label "from above Vsa") above;
    vsa_curve = List.map (fun (r, v, _, _) -> { r_sa = r; vsa = v }) points;
    vmp = vmp ~config:{ config with Sc.deadline = None } ~stress ();
    rops = List.map (fun (r, _, _, _) -> r) points;
    failures;
    stress;
  }

let curve_interp c =
  I.of_points (List.map (fun { r; vc } -> (r, vc)) c.points)

let vsa_interp plane =
  I.of_points
    (List.map
       (fun { r_sa; vsa = v } -> (r_sa, vsa_substitute plane.stress v))
       plane.vsa_curve)

let br_geometric plane =
  match plane.curves with
  (* a plane whose every point failed has empty curves: no crossing *)
  | _ :: second :: _ when second.points <> [] && plane.vsa_curve <> [] ->
    begin
    let w = curve_interp second in
    let s = vsa_interp plane in
    (* intersect on a log axis to respect the resistance sweep *)
    let to_log c =
      I.of_points (List.map (fun (x, y) -> (log10 x, y)) (I.points c))
    in
    match I.intersections (to_log w) (to_log s) with
    | x :: _ -> Some (10.0 ** x)
    | [] -> None
  end
  | _ -> None
