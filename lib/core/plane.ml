module O = Dramstress_dram.Ops
module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module D = Dramstress_defect.Defect
module B = Dramstress_util.Bisect
module I = Dramstress_util.Interp
module G = Dramstress_util.Grid
module Par = Dramstress_util.Par
module Tel = Dramstress_util.Telemetry

(* shared by every sweep layer: wall time of one independent sweep point
   (one resistance: its bisections and transients) *)
let h_point =
  Tel.Histogram.make ~unit_:"ms" ~lo:1e-2 ~hi:1e6 ~buckets:40
    "core.sweep.point_ms"

(* per-point probe used by all resistance sweeps in this module: the
   histogram feeds metrics, the span feeds the trace sink *)
let sweep_point ~r f =
  Tel.Histogram.time_ms h_point (fun () ->
      Tel.with_span "plane.point" ~attrs:(fun () -> [ ("r", Tel.Float r) ]) f)

type point = { r : float; vc : float }

type curve = { label : string; points : point list }

type vsa_point = { r_sa : float; vsa : vsa_value }
and vsa_value = Vsa of float | Reads_all_1 | Reads_all_0

type t = {
  op : O.op;
  curves : curve list;
  vsa_curve : vsa_point list;
  vmp : float;
  rops : float list;
  stress : S.t;
}

let default_rops = G.logspace 1e3 1e6 12

(* physical read result for an initial storage voltage: a single read op,
   unwrapping the logical inversion of complementary placement *)
let read_physical ~config ~stress ?defect vc =
  let outcome = O.run ~config ~stress ?defect ~vc_init:vc [ O.R ] in
  let logical =
    match O.sensed_bits outcome with [ b ] -> b | _ -> assert false
  in
  match defect with
  | Some { D.placement = D.Comp_bl; _ } -> 1 - logical
  | Some { D.placement = D.True_bl; _ } | None -> logical

let vmp ?tech ?sim ?config ~stress () =
  let config = Sc.resolve ?tech ?sim ?config () in
  match
    B.guarded_threshold ~tol:5e-3
      (fun vc -> read_physical ~config ~stress vc = 0)
      0.0 stress.S.vdd
  with
  | B.Crossing v -> v
  | B.All_true -> 0.0
  | B.All_false -> stress.S.vdd

let vsa ?tech ?sim ?config ~stress ~defect () =
  let config = Sc.resolve ?tech ?sim ?config () in
  match
    B.guarded_threshold ~tol:5e-3
      (fun vc -> read_physical ~config ~stress ~defect vc = 0)
      0.0 stress.S.vdd
  with
  | B.Crossing v -> Vsa v
  | B.All_false -> Reads_all_1
  | B.All_true -> Reads_all_0

let vsa_substitute stress = function
  | Vsa v -> v
  | Reads_all_1 -> 0.0
  | Reads_all_0 -> stress.S.vdd

(* the physical storage level a logical write targets *)
let physical_target placement op =
  let logical = match op with O.W0 -> 0 | O.W1 -> 1 | O.R | O.Pause _ -> 1 in
  match placement with D.True_bl -> logical | D.Comp_bl -> 1 - logical

(* the resistance axis is embarrassingly parallel: each point is an
   independent bisection / transient, so sweeps fan out over domains *)
let vsa_curve_of ?tech ?sim ?jobs ?config ~stress ~kind ~placement rops =
  let config = Sc.resolve ?tech ?sim ?jobs ?config () in
  Par.parallel_map ~jobs:(Sc.resolve_jobs config)
    (fun r ->
      sweep_point ~r (fun () ->
          let defect = D.v kind placement r in
          { r_sa = r; vsa = vsa ~config ~stress ~defect () }))
    rops

let write_plane ?tech ?sim ?jobs ?config ?(n_ops = 4) ?(rops = default_rops)
    ~stress ~kind ~placement ~op () =
  (match op with
  | O.W0 | O.W1 -> ()
  | O.R | O.Pause _ -> invalid_arg "Plane.write_plane: op must be a write");
  if n_ops < 1 then invalid_arg "Plane.write_plane: n_ops < 1";
  let config = Sc.resolve ?tech ?sim ?jobs ?config () in
  let jobs = Sc.resolve_jobs config in
  let vc_init =
    if physical_target placement op = 0 then stress.S.vdd else 0.0
  in
  let trajectories =
    Par.parallel_map ~jobs
      (fun r ->
        sweep_point ~r (fun () ->
            let defect = D.v kind placement r in
            let outcome =
              O.run ~config ~stress ~defect ~vc_init
                (List.init n_ops (fun _ -> op))
            in
            (r, List.map (fun res -> res.O.vc_end) outcome.O.results)))
      rops
  in
  let curves =
    List.init n_ops (fun k ->
        {
          label =
            Format.asprintf "(%d) %a" (k + 1) O.pp_op op;
          points =
            List.map
              (fun (r, vcs) -> { r; vc = List.nth vcs k })
              trajectories;
        })
  in
  {
    op;
    curves;
    vsa_curve = vsa_curve_of ~config ~stress ~kind ~placement rops;
    vmp = vmp ~config ~stress ();
    rops;
    stress;
  }

let read_plane ?tech ?sim ?jobs ?config ?(n_ops = 3) ?(rops = default_rops)
    ?(offset = 0.2) ~stress ~kind ~placement () =
  if n_ops < 1 then invalid_arg "Plane.read_plane: n_ops < 1";
  let config = Sc.resolve ?tech ?sim ?jobs ?config () in
  let jobs = Sc.resolve_jobs config in
  let vsa_curve = vsa_curve_of ~config ~stress ~kind ~placement rops in
  let trajectory seed_of =
    Par.parallel_map ~jobs
      (fun (r, { vsa = v; _ }) ->
        sweep_point ~r (fun () ->
            let defect = D.v kind placement r in
            let seed =
              Float.max 0.0
                (Float.min stress.S.vdd (seed_of (vsa_substitute stress v)))
            in
            let outcome =
              O.run ~config ~stress ~defect ~vc_init:seed
                (List.init n_ops (fun _ -> O.R))
            in
            (r, List.map (fun res -> res.O.vc_end) outcome.O.results)))
      (List.combine rops vsa_curve)
  in
  let below = trajectory (fun vsa -> vsa -. offset) in
  let above = trajectory (fun vsa -> vsa +. offset) in
  let curves_of tag trajectories =
    List.init n_ops (fun k ->
        {
          label = Printf.sprintf "(%d) r %s" (k + 1) tag;
          points =
            List.map (fun (r, vcs) -> { r; vc = List.nth vcs k }) trajectories;
        })
  in
  {
    op = O.R;
    curves = curves_of "from below Vsa" below @ curves_of "from above Vsa" above;
    vsa_curve;
    vmp = vmp ~config ~stress ();
    rops;
    stress;
  }

let curve_interp c =
  I.of_points (List.map (fun { r; vc } -> (r, vc)) c.points)

let vsa_interp plane =
  I.of_points
    (List.map
       (fun { r_sa; vsa = v } -> (r_sa, vsa_substitute plane.stress v))
       plane.vsa_curve)

let br_geometric plane =
  match plane.curves with
  | _ :: second :: _ -> begin
    let w = curve_interp second in
    let s = vsa_interp plane in
    (* intersect on a log axis to respect the resistance sweep *)
    let to_log c =
      I.of_points (List.map (fun (x, y) -> (log10 x, y)) (I.points c))
    in
    match I.intersections (to_log w) (to_log s) with
    | x :: _ -> Some (10.0 ** x)
    | [] -> None
  end
  | _ -> None
