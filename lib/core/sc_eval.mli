(** Stress-combination evaluation — Sections 4.4 and 5 of the paper.

    Runs the full optimization flow for one defect: probe each stress
    axis, compose the stressful SC, re-derive the detection condition
    under the new SC (more priming writes may be needed, retention
    pauses help against shorts), and report nominal vs stressed border
    resistance. *)

type t = {
  kind : Dramstress_defect.Defect.kind;
  placement : Dramstress_defect.Defect.placement;
  nominal : Dramstress_dram.Stress.t;
  nominal_detection : Detection.t;
  nominal_br : Border.result;
  probes : Stressor.probe list;
  stressed : Dramstress_dram.Stress.t;
  stressed_detection : Detection.t;
  stressed_br : Border.result;
  improvement : float option;
    (** covered-range growth factor, per the defect polarity *)
}

(** [candidate_detections kind ~pause] — the detection conditions the
    synthesis chooses among: the paper's standard shape with 1–4 priming
    writes, plus — when [allow_pause] (default true) — a retention
    element for shorts ([pause] defaults to 1 ms). Retention pauses
    count as a stress, so the nominal evaluation excludes them. *)
val candidate_detections :
  ?allow_pause:bool -> ?pause:float ->
  placement:Dramstress_defect.Defect.placement ->
  Dramstress_defect.Defect.kind -> Detection.t list

(** [best_detection ?tech ?window ~stress ~kind ~placement ()] picks the
    candidate with the most covering BR at the given SC, returning the
    winning condition with its BR. [window] passes through to every
    underlying {!Border.search} (campaign manifests narrow it to bound
    cost), as does [hint] (warm-start border estimates from adjacent
    campaign points). The [?r_min ?r_max ?grid_points ?rel_tol]
    optionals are deprecated spellings of [window]'s fields and override
    them when given ({!Border.Window.over}). *)
val best_detection :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  ?r_min:float ->
  ?r_max:float ->
  ?grid_points:int ->
  ?rel_tol:float ->
  ?hint:float list ->
  ?allow_pause:bool ->
  ?pause:float ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  unit ->
  Detection.t * Border.result

(** [evaluate ?tech ?axes ?analysis_r ~nominal ~kind ~placement ()] runs
    the complete flow. [axes] defaults to cycle time, temperature and
    supply voltage (the paper's three STs). [checkpoint] memoizes every
    border search of the flow, so interrupted campaigns (e.g. Table 1)
    resume without repeating finished searches. *)
val evaluate :
  ?tech:Dramstress_dram.Tech.t ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?window:Border.Window.t ->
  ?axes:Dramstress_dram.Stress.axis list ->
  ?analysis_r:float ->
  ?pause:float ->
  nominal:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
