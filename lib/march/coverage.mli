(** Fault-coverage evaluation of march tests. *)

(** A named fault instance for reporting. *)
type case = { label : string; fault : Memsim.fault }

(** The classic digital fault list: SA0, SA1, TF0, TF1, CFin, CFid. *)
val standard_faults : case list

(** [electrical_faults ?tech ?rs ~stress ~kind ~placement ()] builds weak
    -cell cases fitted from the electrical model at each resistance in
    [rs] (default 50 k, 200 k, 500 k, 1 MOhm). *)
val electrical_faults :
  ?tech:Dramstress_dram.Tech.t ->
  ?rs:float list ->
  stress:Dramstress_dram.Stress.t ->
  kind:Dramstress_defect.Defect.kind ->
  placement:Dramstress_defect.Defect.placement ->
  unit ->
  case list

type result = {
  test : March.t;
  detected : (case * bool) list;
  coverage : float;  (** fraction detected *)
}

(** [evaluate ?size test cases] runs the test against each fault in its
    own memory (default 16 cells). *)
val evaluate : ?size:int -> March.t -> case list -> result

(** [compare_tests ?size tests cases] evaluates several tests on the same
    fault list. *)
val compare_tests : ?size:int -> March.t list -> case list -> result list

(** [render results] tabulates tests x faults as text. *)
val render : result list -> string
