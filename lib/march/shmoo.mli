(** Shmoo plots — the traditional black-box stress-optimization method
    the paper's Section 2 describes (and argues against).

    Two stress axes are swept; at each grid point the detection
    condition is executed electrically against the defective column and
    the pass/fail outcome recorded. *)

type outcome =
  | Pass        (** test passes: the defect is NOT caught here *)
  | Fail        (** test fails: the defect is caught *)
  | Invalid     (** the SC is not operable (e.g. cycle too short) *)
  | Errored
      (** the solver could not simulate the cell even after the retry
          policy; counted on [march.shmoo.errored_points] *)

type t = {
  x_axis : Dramstress_dram.Stress.axis;
  x_values : float list;
  y_axis : Dramstress_dram.Stress.axis;
  y_values : float list;
  grid : outcome array array;  (** [grid.(yi).(xi)] *)
  defect : Dramstress_defect.Defect.t;
}

(** [generate ?tech ?sim ?jobs ~stress ~defect ~detection ~x ~y ()]
    sweeps the two axes around the base [stress]; [x] and [y] pair an
    axis with its values. Grid points are evaluated in parallel over at
    most [jobs] domains (default [Dramstress_util.Par.resolve_jobs];
    [~jobs:1] is sequential). [sim] overrides the solver options of the
    underlying runs. [config] bundles the simulation parameters
    ({!Dramstress_dram.Sim_config.t}); explicit [?tech ?sim ?jobs]
    override matching [config] fields. Each grid point observes the
    shared [core.sweep.point_ms] telemetry histogram and emits a
    [shmoo.point] span.

    A grid cell whose simulation fails with a solver error (even after
    the retry policy) renders as {!Errored} instead of aborting the
    plot. [checkpoint] records each finished cell in a
    {!Dramstress_util.Checkpoint} store so interrupted plots resume. *)
val generate :
  ?tech:Dramstress_dram.Tech.t ->
  ?sim:Dramstress_engine.Options.t ->
  ?jobs:int ->
  ?config:Dramstress_dram.Sim_config.t ->
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  stress:Dramstress_dram.Stress.t ->
  defect:Dramstress_defect.Defect.t ->
  detection:Dramstress_core.Detection.t ->
  x:Dramstress_dram.Stress.axis * float list ->
  y:Dramstress_dram.Stress.axis * float list ->
  unit ->
  t

(** [fail_fraction shmoo] is the share of operable points that fail;
    {!Invalid} and {!Errored} cells are excluded from the base. *)
val fail_fraction : t -> float

(** [render shmoo] draws the classic character plot: ['.'] pass,
    ['X'] fail, ['?'] invalid, ['!'] errored. *)
val render : t -> string
