(** March tests: the industry-standard memory test notation.

    A march test is a sequence of march elements; each element visits
    every address in a given order and applies its operations to each
    cell before moving on. *)

type order =
  | Up      (** ascending addresses *)
  | Down    (** descending addresses *)
  | Either  (** order irrelevant (both satisfy the test) *)

type mop =
  | Mw of int      (** write the bit *)
  | Mr of int      (** read, expecting the bit *)
  | Mdel of float  (** pause (retention element), s *)
  | Mham of int
      (** pulse the aggressor (neighbour-row) word line n times — the
          coupling-disturb/hammer element. n >= 1. *)

type element = { order : order; ops : mop list }

type t = { name : string; elements : element list }

(** [v name elements] checks the test is well formed: every element
    non-empty, bits 0/1, pauses positive. *)
val v : string -> element list -> t

(** [up ops], [down ops], [either ops] build elements. *)
val up : mop list -> element
val down : mop list -> element
val either : mop list -> element

(** Standard tests from the literature. *)

(** MATS+ (5n). *)
val mats_plus : t

(** March X (6n). *)
val march_x : t

(** March Y (8n). *)
val march_y : t

(** March C- (10n). *)
val march_c_minus : t

(** [of_detection ~name cond] lifts one of the paper's detection
    conditions into a single-element march test (applied per cell). *)
val of_detection : name:string -> Dramstress_core.Detection.t -> t

(** [to_detection test] is the inverse of {!of_detection}: the per-cell
    operation stream of the march test as a single detection condition —
    the lowering used when a campaign manifest names a march test as one
    of its operation sequences. Address order is irrelevant for a single
    victim cell, so the elements' operation lists concatenate in test
    order. *)
val to_detection : t -> Dramstress_core.Detection.t

(** [op_count test] is the number of operations per cell (the [n]
    multiplier in the test's complexity). *)
val op_count : t -> int

(** [pp ppf test] prints the standard arrow notation, e.g.
    [{up(w0); up(r0,w1); down(r1,w0)}]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [parse ~name s] reads the notation {!pp} emits:
    [{any(w0); up(r0,w1); down(r1,w0)}] — braces optional, separators
    [;], orders [up]/[down]/[any], ops [w0 w1 r0 r1 del(<seconds>)].
    Raises [Invalid_argument] with a message on malformed input. *)
val parse : name:string -> string -> t
