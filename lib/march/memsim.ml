module O = Dramstress_dram.Ops
module S = Dramstress_dram.Stress
module C = Dramstress_core

module Weak = struct
  type t = {
    vdd : float;
    vsa : float;
    alpha_w0 : float;
    alpha_w1 : float;
    alpha_restore : float;
    leak_target : float;
    leak_tau : float;
  }

  let ideal ~vdd =
    {
      vdd;
      vsa = vdd /. 2.0;
      alpha_w0 = 20.0;
      alpha_w1 = 20.0;
      alpha_restore = 20.0;
      leak_target = vdd /. 2.0;
      leak_tau = 1.0;
    }

  (* fit an exponential-approach rate from start, end and target values *)
  let rate ~from ~reached ~target =
    let num = Float.abs (from -. target) in
    let den = Float.abs (reached -. target) in
    if den <= 1e-6 then 20.0
    else if num <= den then 0.0
    else Float.min 20.0 (log (num /. den))

  let of_electrical ?tech ~stress ~defect () =
    let vdd = stress.S.vdd in
    let run ~vc_init ops =
      let outcome = O.run ?tech ~stress ~defect ~vc_init ops in
      outcome.O.results
    in
    let end_vc results = (List.nth results (List.length results - 1)).O.vc_end in
    (* physical writes: on the complementary line logical ops invert, so
       drive with the op that targets the wanted physical level *)
    let comp =
      defect.Dramstress_defect.Defect.placement = Dramstress_defect.Defect.Comp_bl
    in
    let w_low = if comp then O.W1 else O.W0 in
    let w_high = if comp then O.W0 else O.W1 in
    let vc_after_w0 = end_vc (run ~vc_init:vdd [ w_low ]) in
    let vc_after_w1 = end_vc (run ~vc_init:0.0 [ w_high ]) in
    let vsa =
      match C.Plane.vsa ?tech ~stress ~defect () with
      | C.Plane.Vsa v -> v
      | C.Plane.Reads_all_1 -> 0.0
      | C.Plane.Reads_all_0 -> vdd
    in
    (* retention drift over 1 ms from mid-level *)
    let mid = vdd /. 2.0 in
    let drift = end_vc (run ~vc_init:mid [ O.Pause 1e-3 ]) in
    let leak_target, leak_tau =
      let d = drift -. mid in
      if Float.abs d < 1e-3 then (mid, 1e6)
      else begin
        (* assume drift towards a rail; estimate tau from one sample *)
        let target = if d > 0.0 then vdd else 0.0 in
        let frac = Float.abs d /. Float.abs (target -. mid) in
        let frac = Float.min 0.999 frac in
        (target, -1.0e-3 /. log1p (-.frac))
      end
    in
    {
      vdd;
      vsa;
      alpha_w0 = rate ~from:vdd ~reached:vc_after_w0 ~target:0.0;
      alpha_w1 = rate ~from:0.0 ~reached:vc_after_w1 ~target:vdd;
      alpha_restore = 6.0;
      leak_target;
      leak_tau;
    }
end

type fault =
  | Good
  | Stuck_at of int
  | Transition of int
  | Coupling_inv of int
  | Coupling_idem of int * int
  | Weak_cell of Weak.t

type cell = { mutable bit : int; mutable analog : float; fault : fault }

type t = { cells : cell array }

let create ~size ?(faults = []) () =
  if size <= 0 then invalid_arg "Memsim.create: size <= 0";
  let cells =
    Array.init size (fun _ -> { bit = 0; analog = 0.0; fault = Good })
  in
  List.iter
    (fun (addr, fault) ->
      if addr < 0 || addr >= size then
        invalid_arg "Memsim.create: fault address out of range";
      (match fault with
      | Coupling_inv a | Coupling_idem (a, _) ->
        if a < 0 || a >= size then
          invalid_arg "Memsim.create: aggressor address out of range"
      | Good | Stuck_at _ | Transition _ | Weak_cell _ -> ());
      cells.(addr) <-
        {
          bit = (match fault with Stuck_at b -> b | _ -> 0);
          analog = (match fault with Weak_cell w -> ignore w; 0.0 | _ -> 0.0);
          fault;
        })
    faults;
  { cells }

let size mem = Array.length mem.cells

let check_addr mem addr =
  if addr < 0 || addr >= size mem then invalid_arg "Memsim: address out of range"

(* apply coupling effects triggered by a write on [aggr] *)
let trigger_couplings mem aggr written =
  Array.iter
    (fun cell ->
      match cell.fault with
      | Coupling_inv a when a = aggr -> cell.bit <- 1 - cell.bit
      | Coupling_idem (a, v) when a = aggr && written = v -> cell.bit <- v
      | Good | Stuck_at _ | Transition _ | Coupling_inv _
      | Coupling_idem _ | Weak_cell _ ->
        ())
    mem.cells

let write mem addr bit =
  check_addr mem addr;
  if bit <> 0 && bit <> 1 then invalid_arg "Memsim.write: bit not 0/1";
  let cell = mem.cells.(addr) in
  (match cell.fault with
  | Good | Coupling_inv _ | Coupling_idem _ -> cell.bit <- bit
  | Stuck_at _ -> ()
  | Transition b -> if bit <> b || cell.bit = bit then cell.bit <- bit
  | Weak_cell w ->
    let target, alpha =
      if bit = 0 then (0.0, w.Weak.alpha_w0) else (w.Weak.vdd, w.Weak.alpha_w1)
    in
    cell.analog <- target +. ((cell.analog -. target) *. exp (-.alpha));
    cell.bit <- bit);
  trigger_couplings mem addr bit

let read mem addr =
  check_addr mem addr;
  let cell = mem.cells.(addr) in
  match cell.fault with
  | Good | Coupling_inv _ | Coupling_idem _ | Transition _ -> cell.bit
  | Stuck_at b -> b
  | Weak_cell w ->
    let sensed = if cell.analog > w.Weak.vsa then 1 else 0 in
    let rail = if sensed = 1 then w.Weak.vdd else 0.0 in
    cell.analog <-
      rail +. ((cell.analog -. rail) *. exp (-.w.Weak.alpha_restore));
    cell.bit <- sensed;
    sensed

let wait mem dt =
  if dt < 0.0 then invalid_arg "Memsim.wait: negative time";
  Array.iter
    (fun cell ->
      match cell.fault with
      | Weak_cell w ->
        let f = exp (-.dt /. w.Weak.leak_tau) in
        cell.analog <-
          w.Weak.leak_target +. ((cell.analog -. w.Weak.leak_target) *. f)
      | Good | Stuck_at _ | Transition _ | Coupling_inv _ | Coupling_idem _
        ->
        ())
    mem.cells

type failure = {
  addr : int;
  element : int;
  op : int;
  expected : int;
  got : int;
}

let run_march mem test =
  let failures = ref [] in
  let n = size mem in
  List.iteri
    (fun ei (element : March.element) ->
      let addrs =
        match element.March.order with
        | March.Up | March.Either -> List.init n Fun.id
        | March.Down -> List.init n (fun i -> n - 1 - i)
      in
      List.iter
        (fun addr ->
          List.iteri
            (fun oi op ->
              match op with
              | March.Mw b -> write mem addr b
              | March.Mdel d -> wait mem d
              | March.Mham _ ->
                (* aggressor word-line pulses don't touch the victim's
                   column in the behavioural model; the electrical layer
                   (Ops.Ham) carries the coupling disturb *)
                ()
              | March.Mr expected ->
                let got = read mem addr in
                if got <> expected then
                  failures :=
                    { addr; element = ei; op = oi; expected; got }
                    :: !failures)
            element.March.ops)
        addrs)
    test.March.elements;
  List.rev !failures

let detects ~size:n ~fault test =
  let victim = n / 2 in
  let mem = create ~size:n ~faults:[ (victim, fault) ] () in
  run_march mem test <> []
