module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module O = Dramstress_dram.Ops
module E = Dramstress_engine
module C = Dramstress_core
module Ck = Dramstress_util.Checkpoint
module Tel = Dramstress_util.Telemetry

let h_point =
  Tel.Histogram.make ~unit_:"ms" ~lo:1e-2 ~hi:1e6 ~buckets:40
    "core.sweep.point_ms"

let c_errored = Tel.Counter.make "march.shmoo.errored_points"

type outcome = Pass | Fail | Invalid | Errored

let encode_outcome = function
  | Pass -> "p"
  | Fail -> "f"
  | Invalid -> "i"
  | Errored -> "e"

let decode_outcome = function
  | "p" -> Some Pass
  | "f" -> Some Fail
  | "i" -> Some Invalid
  | "e" -> Some Errored
  | _ -> None

type t = {
  x_axis : S.axis;
  x_values : float list;
  y_axis : S.axis;
  y_values : float list;
  grid : outcome array array;
  defect : Dramstress_defect.Defect.t;
}

let is_solver_failure = function
  | E.Transient.Step_failed _ | E.Newton.No_convergence _
  | O.Exhausted_retries _ ->
    true
  | _ -> false

let generate ?tech ?sim ?jobs ?config ?checkpoint ~stress ~defect ~detection
    ~x:(x_axis, x_values) ~y:(y_axis, y_values) () =
  if x_values = [] || y_values = [] then
    invalid_arg "Shmoo.generate: empty axis";
  let config = Sc.resolve ?tech ?sim ?jobs ?config () in
  let base_key =
    Ck.fingerprint
      ("shmoo", config, stress, defect, detection, x_axis, y_axis)
  in
  let point (yv, xv) =
    Tel.Histogram.time_ms h_point (fun () ->
        Tel.with_span "shmoo.point"
          ~attrs:(fun () -> [ ("x", Tel.Float xv); ("y", Tel.Float yv) ])
          (fun () ->
            Ck.memo checkpoint
              ~key:(Printf.sprintf "%s|%h|%h" base_key yv xv)
              ~descr:(Printf.sprintf "shmoo cell x=%g y=%g" xv yv)
              ~encode:encode_outcome ~decode:decode_outcome
              (fun () ->
                let sc = S.set (S.set stress x_axis xv) y_axis yv in
                match
                  C.Detection.detects ~config ~stress:sc ~defect detection
                with
                | true -> Fail
                | false -> Pass
                | exception Invalid_argument _ -> Invalid
                | exception e when is_solver_failure e ->
                  (* the SC is nominally operable but the solver cannot
                     follow it even degraded: an honest separate verdict,
                     not a silent Pass or Invalid *)
                  Tel.Counter.incr c_errored;
                  Errored)))
  in
  (* flatten the grid so all y*x points share one domain pool instead of
     parallelizing row by row *)
  let coords =
    List.concat_map (fun yv -> List.map (fun xv -> (yv, xv)) x_values) y_values
  in
  let outcomes =
    Array.of_list
      (Dramstress_util.Par.parallel_map ~jobs:(Sc.resolve_jobs config) point
         coords)
  in
  let n_x = List.length x_values in
  let grid =
    Array.init (List.length y_values) (fun yi ->
        Array.init n_x (fun xi -> outcomes.((yi * n_x) + xi)))
  in
  { x_axis; x_values; y_axis; y_values; grid; defect }

let fail_fraction shmoo =
  let fails = ref 0 and valid = ref 0 in
  Array.iter
    (Array.iter (fun o ->
         match o with
         | Fail ->
           incr fails;
           incr valid
         | Pass -> incr valid
         | Invalid | Errored -> ()))
    shmoo.grid;
  if !valid = 0 then 0.0 else float_of_int !fails /. float_of_int !valid

let render shmoo =
  let xs = Array.of_list shmoo.x_values in
  let ys = Array.of_list shmoo.y_values in
  let title =
    Format.asprintf
      "Shmoo plot: %a (x) vs %a (y), defect %a ['.' pass, 'X' fail]"
      S.pp_axis shmoo.x_axis S.pp_axis shmoo.y_axis
      Dramstress_defect.Defect.pp shmoo.defect
  in
  Dramstress_util.Ascii_plot.render_grid ~title
    ~rows:(Format.asprintf "%a" S.pp_axis shmoo.y_axis, Array.length ys)
    ~cols:(Format.asprintf "%a" S.pp_axis shmoo.x_axis, Array.length xs)
    ~row_label:(fun r -> Printf.sprintf "%.3g" ys.(r))
    ~col_label:(fun c -> Printf.sprintf "%.3g " xs.(c))
    (fun r c ->
      match shmoo.grid.(r).(c) with
      | Pass -> '.'
      | Fail -> 'X'
      | Invalid -> '?'
      | Errored -> '!')
