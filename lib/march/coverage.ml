module D = Dramstress_defect.Defect

type case = { label : string; fault : Memsim.fault }

let standard_faults =
  [
    { label = "SA0"; fault = Memsim.Stuck_at 0 };
    { label = "SA1"; fault = Memsim.Stuck_at 1 };
    { label = "TF0"; fault = Memsim.Transition 0 };
    { label = "TF1"; fault = Memsim.Transition 1 };
    { label = "CFin"; fault = Memsim.Coupling_inv 0 };
    { label = "CFid<w1;1>"; fault = Memsim.Coupling_idem (0, 1) };
  ]

let electrical_faults ?tech ?(rs = [ 50e3; 200e3; 500e3; 1e6 ]) ~stress ~kind
    ~placement () =
  List.map
    (fun r ->
      let defect = D.v kind placement r in
      let weak = Memsim.Weak.of_electrical ?tech ~stress ~defect () in
      {
        label =
          Format.asprintf "%a@%a" D.pp_kind kind Dramstress_util.Units.pp_si r;
        fault = Memsim.Weak_cell weak;
      })
    rs

type result = {
  test : March.t;
  detected : (case * bool) list;
  coverage : float;
}

let evaluate ?(size = 16) test cases =
  let detected =
    List.map
      (fun case -> (case, Memsim.detects ~size ~fault:case.fault test))
      cases
  in
  let hits = List.length (List.filter snd detected) in
  {
    test;
    detected;
    coverage = float_of_int hits /. float_of_int (List.length cases);
  }

let compare_tests ?size tests cases =
  List.map (fun t -> evaluate ?size t cases) tests

let render results =
  match results with
  | [] -> "(no results)\n"
  | first :: _ ->
    let buf = Buffer.create 1024 in
    let labels = List.map (fun (c, _) -> c.label) first.detected in
    Buffer.add_string buf (Printf.sprintf "%-28s" "test \\ fault");
    List.iter (fun l -> Buffer.add_string buf (Printf.sprintf " %-12s" l)) labels;
    Buffer.add_string buf " coverage\n";
    List.iter
      (fun r ->
        Buffer.add_string buf (Printf.sprintf "%-28s" r.test.March.name);
        List.iter
          (fun (_, hit) ->
            Buffer.add_string buf
              (Printf.sprintf " %-12s" (if hit then "detect" else "-")))
          r.detected;
        Buffer.add_string buf (Printf.sprintf " %5.1f%%\n" (100.0 *. r.coverage)))
      results;
    Buffer.contents buf
