type order = Up | Down | Either

type mop = Mw of int | Mr of int | Mdel of float | Mham of int

type element = { order : order; ops : mop list }

type t = { name : string; elements : element list }

let v name elements =
  if elements = [] then invalid_arg "March.v: no elements";
  List.iter
    (fun e ->
      if e.ops = [] then invalid_arg "March.v: empty element";
      List.iter
        (fun op ->
          match op with
          | Mw b | Mr b ->
            if b <> 0 && b <> 1 then invalid_arg "March.v: bit not 0/1"
          | Mdel d -> if d <= 0.0 then invalid_arg "March.v: bad pause"
          | Mham n -> if n < 1 then invalid_arg "March.v: bad hammer count")
        e.ops)
    elements;
  { name; elements }

let up ops = { order = Up; ops }
let down ops = { order = Down; ops }
let either ops = { order = Either; ops }

let mats_plus =
  v "MATS+" [ either [ Mw 0 ]; up [ Mr 0; Mw 1 ]; down [ Mr 1; Mw 0 ] ]

let march_x =
  v "March X"
    [ either [ Mw 0 ]; up [ Mr 0; Mw 1 ]; down [ Mr 1; Mw 0 ];
      either [ Mr 0 ] ]

let march_y =
  v "March Y"
    [ either [ Mw 0 ]; up [ Mr 0; Mw 1; Mr 1 ]; down [ Mr 1; Mw 0; Mr 0 ];
      either [ Mr 0 ] ]

let march_c_minus =
  v "March C-"
    [ either [ Mw 0 ]; up [ Mr 0; Mw 1 ]; up [ Mr 1; Mw 0 ];
      down [ Mr 0; Mw 1 ]; down [ Mr 1; Mw 0 ]; either [ Mr 0 ] ]

let of_detection ~name cond =
  let ops =
    List.map
      (fun step ->
        match step with
        | Dramstress_core.Detection.Write b -> Mw b
        | Dramstress_core.Detection.Read b -> Mr b
        | Dramstress_core.Detection.Wait d -> Mdel d
        | Dramstress_core.Detection.Hammer n -> Mham n)
      cond.Dramstress_core.Detection.steps
  in
  v name [ either ops ]

let to_detection test =
  (* the per-cell operation stream: address order is irrelevant for a
     single victim cell, so the elements' op lists simply concatenate *)
  let steps =
    List.concat_map
      (fun e ->
        List.map
          (function
            | Mw b -> Dramstress_core.Detection.Write b
            | Mr b -> Dramstress_core.Detection.Read b
            | Mdel d -> Dramstress_core.Detection.Wait d
            | Mham n -> Dramstress_core.Detection.Hammer n)
          e.ops)
      test.elements
  in
  Dramstress_core.Detection.v steps

let op_count test =
  List.fold_left
    (fun acc e ->
      acc
      + List.length
          (List.filter
             (function Mw _ | Mr _ -> true | Mdel _ | Mham _ -> false)
             e.ops))
    0 test.elements

let pp_mop ppf = function
  | Mw b -> Format.fprintf ppf "w%d" b
  | Mr b -> Format.fprintf ppf "r%d" b
  | Mdel d -> Format.fprintf ppf "del(%a)" Dramstress_util.Units.pp_si d
  | Mham n -> Format.fprintf ppf "ham(%d)" n

let pp_element ppf e =
  let arrow =
    match e.order with Up -> "up" | Down -> "down" | Either -> "any"
  in
  Format.fprintf ppf "%s(%a)" arrow
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp_mop)
    e.ops

let pp ppf t =
  Format.fprintf ppf "%s: {%a}" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_element)
    t.elements

let to_string t = Format.asprintf "%a" pp t

let parse ~name s =
  let s = String.trim s in
  let s =
    (* strip the test-name prefix "Name: {...}" and outer braces *)
    match String.index_opt s '{' with
    | Some i when String.length s > 0 && s.[String.length s - 1] = '}' ->
      String.sub s (i + 1) (String.length s - i - 2)
    | Some _ | None -> s
  in
  let parse_op tok =
    let tok = String.trim (String.lowercase_ascii tok) in
    match tok with
    | "w0" -> Mw 0
    | "w1" -> Mw 1
    | "r0" -> Mr 0
    | "r1" -> Mr 1
    | _ ->
      if String.length tok > 5 && String.sub tok 0 4 = "del(" &&
         tok.[String.length tok - 1] = ')'
      then begin
        let inner = String.sub tok 4 (String.length tok - 5) in
        match float_of_string_opt (String.trim inner) with
        | Some d when d > 0.0 -> Mdel d
        | Some _ | None -> invalid_arg ("March.parse: bad delay " ^ tok)
      end
      else if String.length tok > 5 && String.sub tok 0 4 = "ham(" &&
              tok.[String.length tok - 1] = ')'
      then begin
        let inner = String.sub tok 4 (String.length tok - 5) in
        match int_of_string_opt (String.trim inner) with
        | Some n when n >= 1 -> Mham n
        | Some _ | None -> invalid_arg ("March.parse: bad hammer count " ^ tok)
      end
      else invalid_arg ("March.parse: unknown op " ^ tok)
  in
  let parse_element chunk =
    let chunk = String.trim chunk in
    match String.index_opt chunk '(' with
    | Some i when chunk.[String.length chunk - 1] = ')' ->
      let order =
        match String.lowercase_ascii (String.trim (String.sub chunk 0 i)) with
        | "up" -> Up
        | "down" -> Down
        | "any" | "either" | "" -> Either
        | o -> invalid_arg ("March.parse: unknown order " ^ o)
      in
      let inner = String.sub chunk (i + 1) (String.length chunk - i - 2) in
      (* split on commas outside the del(...) parentheses *)
      let ops = ref [] and buf = Buffer.create 8 and depth = ref 0 in
      String.iter
        (fun c ->
          match c with
          | '(' ->
            incr depth;
            Buffer.add_char buf c
          | ')' ->
            decr depth;
            Buffer.add_char buf c
          | ',' when !depth = 0 ->
            ops := Buffer.contents buf :: !ops;
            Buffer.clear buf
          | _ -> Buffer.add_char buf c)
        inner;
      ops := Buffer.contents buf :: !ops;
      { order; ops = List.rev_map parse_op !ops }
    | Some _ | None -> invalid_arg ("March.parse: malformed element " ^ chunk)
  in
  let chunks =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (( <> ) "")
  in
  v name (List.map parse_element chunks)
