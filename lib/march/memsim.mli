(** Behavioural memory-array simulator with injectable fault models.

    Classic functional faults (stuck-at, transition, coupling) are
    simulated digitally; {e weak cells} carry an analog storage state
    whose per-operation behaviour can be fitted from the electrical
    model ({!Weak.of_electrical}), bridging the paper's defect level and
    the march-test level. *)

module Weak : sig
  (** Analog behavioural cell. Writes approach their target
      exponentially; reads threshold against a sense level and restore;
      pauses drift towards a leak target. *)
  type t = {
    vdd : float;
    vsa : float;           (** read threshold, V *)
    alpha_w0 : float;      (** per-op approach rate towards 0 (>= 0) *)
    alpha_w1 : float;      (** per-op approach rate towards vdd *)
    alpha_restore : float; (** post-read restore rate towards the rail *)
    leak_target : float;   (** voltage the cell drifts to when idle *)
    leak_tau : float;      (** drift time constant, s *)
  }

  val ideal : vdd:float -> t

  (** [of_electrical ?tech ~stress ~defect ()] fits the behavioural
      parameters by running single-operation electrical simulations of
      the defective column: one w0 from full charge, one w1 from empty,
      the sense threshold, and a 1 ms retention drift. *)
  val of_electrical :
    ?tech:Dramstress_dram.Tech.t ->
    stress:Dramstress_dram.Stress.t ->
    defect:Dramstress_defect.Defect.t ->
    unit ->
    t
end

type fault =
  | Good
  | Stuck_at of int
  | Transition of int
      (** cannot transition {e to} the bit (TF0 / TF1) *)
  | Coupling_inv of int
      (** CFin: a write on the aggressor address inverts this cell *)
  | Coupling_idem of int * int
      (** CFid [(aggressor, value)]: a write of [value] on the aggressor
          forces this cell to [value] *)
  | Weak_cell of Weak.t

type t

(** [create ~size ~faults ()] builds a memory of [size] cells, all
    initialised to 0, with the given faults attached by address. Raises
    [Invalid_argument] on out-of-range addresses. *)
val create : size:int -> ?faults:(int * fault) list -> unit -> t

val size : t -> int

(** [write mem addr bit] applies a write, including coupling side
    effects on other cells. *)
val write : t -> int -> int -> unit

(** [read mem addr] returns the sensed bit (destructive-read-plus-restore
    semantics for weak cells). *)
val read : t -> int -> int

(** [wait mem dt] lets every weak cell drift for [dt] seconds. *)
val wait : t -> float -> unit

(** One march-test failure: where and what. *)
type failure = {
  addr : int;
  element : int;   (** index of the march element *)
  op : int;        (** index of the operation within the element *)
  expected : int;
  got : int;
}

(** [run_march mem test] executes the test (top-down addressing for
    [Down], ascending otherwise) and returns the failures in encounter
    order. The memory is left in its post-test state. *)
val run_march : t -> March.t -> failure list

(** [detects ~size ~fault test] — convenience: fresh memory, one fault at
    the middle address (aggressors at address 0), run, check. *)
val detects : size:int -> fault:fault -> March.t -> bool
