(** Zero-dependency observability: counters, histograms and spans.

    The whole subsystem is built around one invariant: when telemetry is
    disabled (the default), every probe costs a single atomic load and a
    branch — a few nanoseconds — so instrumentation can live permanently
    on the engine hot path. Enabling it turns the same probes into
    atomic counter updates, mutex-guarded histogram observations and
    span events pushed to a pluggable sink.

    Metric handles are created once, at module-initialization time, via
    {!Counter.make} / {!Histogram.make}; creation registers the handle
    in a process-global registry so {!snapshot} sees every metric in the
    program regardless of which library declared it. [make] is
    idempotent per name: a second call returns the existing handle, so
    several libraries can share a metric (e.g. the sweep layers all
    observe ["core.sweep.point_ms"]).

    Everything is domain-safe: counters are atomics, histograms take a
    short per-histogram lock, sink emission is serialized by a global
    lock. Probes may fire concurrently from {!Par.parallel_map}
    workers. *)

(** {1 Global switch} *)

(** [enabled ()] gates every probe. Default [false]. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** [configure_from_env ()] applies the [DRAMSTRESS_TRACE] environment
    variable: unset / [off] / [0] / [false] / [no] leaves telemetry
    untouched; [stderr] (or [pretty]) installs the human sink; any other
    value is taken as a JSON-lines file path. A recognised setting also
    calls [set_enabled true]. Never called implicitly — front ends (the
    CLI, the bench harness) invoke it at startup so that merely linking
    the library has no side effects. *)
val configure_from_env : unit -> unit

(** {1 Counters} *)

module Counter : sig
  type t

  (** [make name] creates (or retrieves) the monotone counter [name].
      Names are dot-separated, e.g. ["engine.newton.iterations"]. *)
  val make : string -> t

  (** [incr c] adds one; a no-op costing a few ns while disabled. *)
  val incr : t -> unit

  (** [add c n] adds [n]; a no-op while disabled. *)
  val add : t -> int -> unit

  (** [value c] reads the counter (readable even while disabled). *)
  val value : t -> int

  val name : t -> string
end

(** {1 Histograms} *)

module Histogram : sig
  type t

  (** [make ~lo ~hi ~buckets name] creates (or retrieves) a histogram
      with [buckets] log-spaced bins spanning [lo, hi]; observations
      outside the range clamp to the first/last bin (exact [min]/[max]
      are tracked separately). [unit_] is a display hint ("ms", "s",
      "iters"). On retrieval of an existing name the shape arguments are
      ignored. *)
  val make : ?unit_:string -> lo:float -> hi:float -> buckets:int -> string -> t

  (** [observe h v] records one sample; a no-op while disabled. *)
  val observe : t -> float -> unit

  val count : t -> int
  val name : t -> string

  (** [time_ms h f] runs [f] and observes its wall duration in
      milliseconds. While disabled [f] runs untimed — the cost is the
      usual load-and-branch. *)
  val time_ms : t -> (unit -> 'a) -> 'a
end

(** {1 Spans and sinks} *)

(** A span attribute value. *)
type attr = Int of int | Float of float | Str of string | Bool of bool

(** A finished span, as delivered to sinks. [ts] is the start instant
    (seconds since the epoch); [dur_s] the wall duration; [domain] the
    integer id of the domain that ran the span. *)
type event = {
  name : string;
  ts : float;
  dur_s : float;
  domain : int;
  attrs : (string * attr) list;
}

module Sink : sig
  type t

  (** Drops every event. The default. *)
  val null : t

  (** Pretty one-line-per-span output on stderr. *)
  val stderr_pretty : t

  (** One JSON object per line on the given channel (not closed when
      the sink is replaced — the caller owns the channel). *)
  val jsonl : out_channel -> t

  (** Opens [path] for writing; the channel is flushed and closed when
      the sink is replaced or {!close_sink} is called. *)
  val jsonl_file : string -> t

  (** [custom ?close emit] builds a sink from any event consumer —
      the extension point for tests and embedders. *)
  val custom : ?close:(unit -> unit) -> (event -> unit) -> t
end

(** [set_sink s] installs [s], closing the previously installed sink. *)
val set_sink : Sink.t -> unit

(** [close_sink ()] flushes/closes the current sink and reverts to
    {!Sink.null}. *)
val close_sink : unit -> unit

(** [with_span name ?attrs f] times [f] and emits one event to the
    current sink. When telemetry is disabled or the sink is null the
    cost is one load and a branch, and [attrs] is never evaluated.
    Exceptions propagate after an event with [("error", Str _)] has
    been emitted. *)
val with_span : ?attrs:(unit -> (string * attr) list) -> string -> (unit -> 'a) -> 'a

(** {1 Snapshots and export} *)

type hist_summary = {
  h_unit : string;
  h_count : int;
  h_sum : float;
  h_min : float;   (** 0 when empty *)
  h_max : float;
  h_mean : float;
  h_p50 : float;   (** bucket-resolution estimates *)
  h_p90 : float;
  h_p99 : float;
}

type snapshot = {
  counters : (string * int) list;          (** sorted by name *)
  histograms : (string * hist_summary) list;
}

(** [snapshot ()] reads every registered metric. Counters are included
    even at zero, so consumers see a stable schema. *)
val snapshot : unit -> snapshot

(** [reset ()] zeroes every registered counter and histogram. *)
val reset : unit -> unit

(** [render_table snap] is an aligned human-readable table. *)
val render_table : snapshot -> string

(** [to_json ?extra snap] is one JSON object with ["counters"] and
    ["histograms"] fields; [extra] appends raw pre-rendered
    [(key, json)] fields at the top level. *)
val to_json : ?extra:(string * string) list -> snapshot -> string

(** [json_escape s] is [s] as the contents of a JSON string literal —
    exposed for front ends assembling [extra] fields. *)
val json_escape : string -> string
