let check xs name =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let mean xs =
  check xs "mean";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check xs "variance";
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_max xs =
  check xs "min_max";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let quantile q xs =
  check xs "quantile";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  let frac = pos -. float_of_int i in
  if i >= n - 1 then sorted.(n - 1)
  else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))

let median xs = quantile 0.5 xs
