exception No_bracket

let root ?tol ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then raise No_bracket
  else begin
    let tol =
      match tol with
      | Some t -> t
      | None -> Float.max 1e-15 (1e-9 *. Float.abs (b -. a))
    in
    let rec loop a fa b iter =
      let m = 0.5 *. (a +. b) in
      if Float.abs (b -. a) <= tol || iter >= max_iter then m
      else begin
        let fm = f m in
        if fm = 0.0 then m
        else if fa *. fm < 0.0 then loop a fa m (iter + 1)
        else loop m fm b (iter + 1)
      end
    in
    loop a fa b 0
  end

let threshold ?tol ?(max_iter = 200) pred lo hi =
  let plo = pred lo and phi = pred hi in
  if plo = phi then raise No_bracket;
  let tol =
    match tol with
    | Some t -> t
    | None -> Float.max 1e-15 (1e-9 *. Float.abs (hi -. lo))
  in
  let rec loop lo hi iter =
    if Float.abs (hi -. lo) <= tol || iter >= max_iter then 0.5 *. (lo +. hi)
    else begin
      let m = 0.5 *. (lo +. hi) in
      if pred m = plo then loop m hi (iter + 1) else loop lo m (iter + 1)
    end
  in
  loop lo hi 0

let threshold_log ?(rel_tol = 1e-3) ?(max_iter = 200) pred lo hi =
  assert (lo > 0.0 && hi > 0.0);
  let pred_log x = pred (exp x) in
  exp (threshold ~tol:(log1p rel_tol) ~max_iter pred_log (log lo) (log hi))

type 'a guarded = All_true | All_false | Crossing of 'a

let guarded generic pred lo hi =
  let plo = pred lo and phi = pred hi in
  if plo && phi then All_true
  else if (not plo) && not phi then All_false
  else Crossing (generic pred lo hi)

let guarded_threshold ?tol ?max_iter pred lo hi =
  guarded (fun p a b -> threshold ?tol ?max_iter p a b) pred lo hi

let guarded_threshold_log ?rel_tol ?max_iter pred lo hi =
  guarded (fun p a b -> threshold_log ?rel_tol ?max_iter p a b) pred lo hi
