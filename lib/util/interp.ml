type t = { xs : float array; ys : float array }

let of_points pts =
  if pts = [] then invalid_arg "Interp.of_points: empty";
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) pts in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then invalid_arg "Interp.of_points: duplicate abscissa";
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  let xs = Array.of_list (List.map fst sorted) in
  let ys = Array.of_list (List.map snd sorted) in
  { xs; ys }

let of_arrays xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.of_arrays: length mismatch";
  of_points (Array.to_list (Array.map2 (fun x y -> (x, y)) xs ys))

let of_sorted_arrays xs ys =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Interp.of_sorted_arrays: empty";
  if n <> Array.length ys then
    invalid_arg "Interp.of_sorted_arrays: length mismatch";
  for i = 0 to n - 2 do
    if xs.(i) >= xs.(i + 1) then
      invalid_arg "Interp.of_sorted_arrays: abscissae must strictly increase"
  done;
  { xs; ys }

let eval { xs; ys } x =
  let n = Array.length xs in
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    (* binary search for the segment containing x *)
    let rec find lo hi =
      if hi - lo <= 1 then lo
      else begin
        let m = (lo + hi) / 2 in
        if xs.(m) <= x then find m hi else find lo m
      end
    in
    let i = find 0 (n - 1) in
    let x0 = xs.(i) and x1 = xs.(i + 1) in
    let y0 = ys.(i) and y1 = ys.(i + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let points { xs; ys } =
  Array.to_list (Array.map2 (fun x y -> (x, y)) xs ys)

let crossings { xs; ys } level =
  let n = Array.length xs in
  let acc = ref [] in
  for i = 0 to n - 2 do
    let d0 = ys.(i) -. level and d1 = ys.(i + 1) -. level in
    if d0 = 0.0 then begin
      (* count an exact sample hit once, when it is a genuine crossing or
         the first sample *)
      let prev = if i = 0 then 0.0 else ys.(i - 1) -. level in
      if i = 0 || prev *. d1 < 0.0 || (prev = 0.0 && d1 <> 0.0) then
        acc := xs.(i) :: !acc
    end
    else if d0 *. d1 < 0.0 then begin
      let frac = d0 /. (d0 -. d1) in
      acc := (xs.(i) +. (frac *. (xs.(i + 1) -. xs.(i)))) :: !acc
    end
  done;
  if n > 1 && ys.(n - 1) = level && ys.(n - 2) <> level then
    acc := xs.(n - 1) :: !acc;
  List.rev !acc

let first_crossing c level =
  match crossings c level with [] -> None | x :: _ -> Some x

let intersections a b =
  let grid =
    List.sort_uniq Float.compare
      (Array.to_list a.xs @ Array.to_list b.xs)
  in
  let diff = List.map (fun x -> (x, eval a x -. eval b x)) grid in
  crossings (of_points diff) 0.0

let map_y f { xs; ys } = { xs; ys = Array.map f ys }
