(** Sampling grids for parameter sweeps. *)

(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. [linspace a b 1] is [[a]]. *)
val linspace : float -> float -> int -> float list

(** [logspace a b n] is [n] log-evenly spaced points from [a] to [b]
    inclusive; both must be positive. *)
val logspace : float -> float -> int -> float list

(** [arange a b step] is [a, a+step, ...] strictly below [b] (for positive
    step). *)
val arange : float -> float -> float -> float list

(** [decades lo hi per_decade] is a log grid covering [[lo, hi]] with
    [per_decade] points per decade, always including both endpoints. *)
val decades : float -> float -> int -> float list
