(** Incremental JSONL checkpoint store for resumable sweeps.

    Long sweep campaigns (planes, Table 1, Shmoo grids) write one JSONL
    record per completed point, flushed immediately, so an interrupted
    run can restart from where it left off: opening the same file with
    [resume = true] replays the completed points into memory and
    {!memo} serves them without recomputation.

    Records are [{"descr": ..., "key": ..., "value": ...}] where [key]
    is a stable digest of a canonical point descriptor ({!digest_key})
    and [value] is the layer's own compact payload encoding (hex floats,
    so decoded results are bit-identical to computed ones). A truncated
    final line — the signature of a kill mid-write — is skipped on load.

    Handles are domain-safe: {!find}/{!record} take an internal lock, so
    parallel sweep workers ({!Par.parallel_map}) may share one store.

    When {!Telemetry} is enabled, activity feeds the
    [util.checkpoint.hits] / [misses] / [records] / [loaded] /
    [malformed_lines] / [skipped_records] counters. [malformed_lines]
    counts lines that are not records at all (the truncated-final-line
    signature); [skipped_records] counts lines that {e looked} like
    records but were unusable — a mid-file line whose field extraction
    raised on load, or a stored payload the caller's {!memo} decoder
    refused. Both are skipped, never fatal: the records behind a sick
    line still replay. *)

type t

(** [open_ ?resume ?extra path] opens a store. With [resume = false]
    (the default) any existing file at [path] is truncated — a fresh
    campaign. With [resume = true] existing records are loaded first and
    new records appended behind them. [extra] is a list of constant
    [(field, value)] string pairs stamped onto every record line written
    through this handle — e.g. the engine identity of the producing
    binary ({!Build_info.identity}), so stale results are detectable
    after an engine upgrade. Loading tolerates (and ignores) unknown
    fields, so stores written with different [extra] sets interoperate. *)
val open_ : ?resume:bool -> ?extra:(string * string) list -> string -> t

val path : t -> string

(** [entries t] is the number of distinct completed points held. *)
val entries : t -> int

(** [find t key] looks up a digest key ({!digest_key}). *)
val find : t -> string -> string option

(** [record t ~key ?descr ?overwrite ?extra value] appends one completed
    point and flushes. Duplicate keys are ignored (first record wins,
    matching what {!find} would have returned) unless [overwrite] is
    set, in which case the new value replaces the table entry and a
    fresh line is appended — on reload the {e last} record for a key
    wins, so the append-only file stays consistent with the in-memory
    view. [extra] overrides the handle's constant stamped fields for
    this one record — how {!Store.merge} preserves the {e original}
    engine identity of a record it copies between stores. *)
val record :
  t ->
  key:string ->
  ?descr:string ->
  ?overwrite:bool ->
  ?extra:(string * string) list ->
  string ->
  unit

(** [close t] closes the underlying channel; further {!record}s update
    only the in-memory table. *)
val close : t -> unit

(** [digest_key descriptor] is the stable hex digest under which a
    point is stored. [descriptor] should canonically encode everything
    the point's result depends on. *)
val digest_key : string -> string

(** [field line name] extracts the value of the top-level string field
    [name] from one JSONL record line, tolerating (and skipping) any
    other fields — the same parser {!open_} uses on load. [None] when
    the field is absent or the line is truncated mid-record. Exposed so
    higher-level stores ({!Store}) and tests can read the stamped
    [extra] fields back. *)
val field : string -> string -> string option

(** [scan path f] reads the records file at [path] without opening a
    handle, calling [f] once per parseable record in file order — the
    raw view, including the stamped [engine] field that the replay
    table drops. Later records for a key follow earlier ones, so a
    last-wins replay can be reproduced by [Hashtbl.replace]-ing in
    order. Missing files are an empty scan; unusable lines are skipped
    (and counted) exactly as {!open_} would. *)
val scan :
  string ->
  (descr:string option ->
  engine:string option ->
  key:string ->
  value:string ->
  unit) ->
  unit

(** [fingerprint v] digests an arbitrary (closure-free) value via its
    marshalled bytes — a convenient way to fold structured context
    (technology records, solver options, detection conditions) into a
    point descriptor. Stable across runs of the same binary. *)
val fingerprint : 'a -> string

(** [memo t ~key ?descr ~encode ~decode f] is the per-point resume hook:
    with [t = None] it is just [f ()]; otherwise a decoded stored value
    if present, else [f ()] recorded under [digest_key key]. [decode]
    returning [None] (corrupt/foreign payload) falls back to
    recomputation. *)
val memo :
  t option ->
  key:string ->
  ?descr:string ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  (unit -> 'a) ->
  'a
