(** Dense linear algebra for circuit-sized systems (tens of unknowns).

    Matrices are row-major [float array array]; all operations are
    destructive only where documented. The LU factorization uses partial
    pivoting, which is sufficient for MNA matrices stamped with gmin
    regularization. *)

type matrix = float array array

(** [create n m] is an [n] x [m] zero matrix. *)
val create : int -> int -> matrix

(** [copy a] is a deep copy of [a]. *)
val copy : matrix -> matrix

(** [dims a] is [(rows, cols)]. *)
val dims : matrix -> int * int

(** [identity n] is the [n] x [n] identity. *)
val identity : int -> matrix

(** [mat_vec a x] is the product [a * x]. *)
val mat_vec : matrix -> float array -> float array

(** [mat_mul a b] is the product [a * b]. *)
val mat_mul : matrix -> matrix -> matrix

(** LU factorization with partial pivoting, kept with its permutation. *)
type lu

(** [lu_factor a] factors a copy of [a]. Raises [Singular] if the best
    available pivot is numerically zero. *)
val lu_factor : matrix -> lu

exception Singular of { row : int; pivot : float }
(** Raised when factorization meets a pivot column whose largest entry
    [pivot] falls below the rank threshold (the matrix's largest entry
    times 1e-14, floored at 1e-300) at elimination step [row] — the
    matrix is structurally singular or rank-deficient to working
    precision. NaN pivots are reported the same way rather than being
    divided through. *)

(** [lu_solve lu b] solves [a * x = b] for the [a] given to [lu_factor].
    [b] is not modified. *)
val lu_solve : lu -> float array -> float array

(** [lu_factor_in_place a ~perm] factors [a] destructively (no matrix
    allocation): [a]'s rows are permuted and overwritten with the L and U
    factors. [perm] must have the same length as [a]; it is reset to the
    identity and filled with the pivoting permutation. The returned [lu]
    aliases [a] and [perm]. Raises [Singular] like {!lu_factor}. *)
val lu_factor_in_place : matrix -> perm:int array -> lu

(** [lu_perm f] is the row permutation chosen by partial pivoting:
    factored row [i] holds original row [lu_perm f].(i). {!Sparse_lu}
    seeds its fixed pivot order from this. The array aliases the
    factorization's own state — do not mutate. *)
val lu_perm : lu -> int array

(** [lu_solve_in_place lu ~scratch b] overwrites [b] with the solution of
    [a * x = b], allocation-free. [scratch] is caller-owned workspace of
    at least the system size; its contents are clobbered. *)
val lu_solve_in_place : lu -> scratch:float array -> float array -> unit

(** [solve a b] is [lu_solve (lu_factor a) b]. *)
val solve : matrix -> float array -> float array

(** [norm_inf x] is the max absolute entry of [x], 0 for empty. *)
val norm_inf : float array -> float

(** [norm_2 x] is the Euclidean norm of [x]. *)
val norm_2 : float array -> float

(** [axpy alpha x y] computes [y.(i) <- alpha *. x.(i) +. y.(i)] in place. *)
val axpy : float -> float array -> float array -> unit

(** [sub x y] is the fresh vector [x - y]. *)
val sub : float array -> float array -> float array

(** [residual a x b] is the fresh vector [a*x - b]. *)
val residual : matrix -> float array -> float array -> float array
