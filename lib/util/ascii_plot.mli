(** ASCII chart rendering used to emit the paper's figures as text.

    Supports multiple named series, linear or logarithmic x axis, and
    horizontal marker lines (e.g. [V_mp], [V_sa]). Output is a plain
    string suitable for terminal display and for diffing in tests. *)

type axis = Linear | Log10

type series = {
  label : string;
  glyph : char;
  pts : (float * float) list;
}

(** [series ?glyph label pts] builds a series; the default glyph is the
    first character of [label], or ['*'] if empty. *)
val series : ?glyph:char -> string -> (float * float) list -> series

(** [render ?width ?height ?x_axis ?x_label ?y_label ?hlines ~title ss]
    draws all series on a shared canvas. [hlines] are [(label, y)] dashed
    horizontal markers. Ranges come from the data (and marker lines).
    Default canvas is 72 x 22 characters of plotting area. *)
val render :
  ?width:int ->
  ?height:int ->
  ?x_axis:axis ->
  ?x_label:string ->
  ?y_label:string ->
  ?hlines:(string * float) list ->
  title:string ->
  series list ->
  string

(** [render_grid ~title ~rows ~cols cell] draws a character grid (used for
    Shmoo plots): [cell r c] supplies the glyph, [rows]/[cols] carry axis
    tick labels. *)
val render_grid :
  title:string ->
  rows:(string * int) ->
  cols:(string * int) ->
  row_label:(int -> string) ->
  col_label:(int -> string) ->
  (int -> int -> char) ->
  string
