(* Bounded LRU cache: a hash table over an intrusive doubly-linked
   recency list. All operations are O(1) amortized. Not thread-safe on
   its own; callers that share a cache across domains must serialize
   access (see Dramstress_dram.Ops for the mutex-guarded pattern). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { capacity; tbl = Hashtbl.create (2 * capacity); head = None; tail = None;
    hits = 0; misses = 0; evictions = 0 }

let capacity c = c.capacity
let length c = Hashtbl.length c.tbl
let hits c = c.hits
let misses c = c.misses
let evictions c = c.evictions

let unlink c node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> c.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> c.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front c node =
  node.next <- c.head;
  node.prev <- None;
  (match c.head with Some h -> h.prev <- Some node | None -> ());
  c.head <- Some node;
  if c.tail = None then c.tail <- Some node

let find c key =
  match Hashtbl.find_opt c.tbl key with
  | None ->
    c.misses <- c.misses + 1;
    None
  | Some node ->
    c.hits <- c.hits + 1;
    unlink c node;
    push_front c node;
    Some node.value

(* membership probe that does not touch recency or hit statistics *)
let mem c key = Hashtbl.mem c.tbl key

let evict_lru c =
  match c.tail with
  | None -> ()
  | Some node ->
    unlink c node;
    Hashtbl.remove c.tbl node.key;
    c.evictions <- c.evictions + 1

let add c key value =
  match Hashtbl.find_opt c.tbl key with
  | Some node ->
    node.value <- value;
    unlink c node;
    push_front c node
  | None ->
    if Hashtbl.length c.tbl >= c.capacity then evict_lru c;
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace c.tbl key node;
    push_front c node

let clear c =
  Hashtbl.reset c.tbl;
  c.head <- None;
  c.tail <- None

let reset_stats c =
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

(* keys from most to least recently used, for tests and debugging *)
let keys c =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] c.head
