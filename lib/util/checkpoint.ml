(* Incremental JSONL checkpoint store for resumable sweeps.

   One record per completed sweep point, appended and flushed as soon as
   the point finishes, so a killed process loses at most the points that
   were still in flight. Records are keyed by a stable digest of a
   canonical point descriptor; on resume the file is replayed into a
   hash table and already-completed points are served from it instead of
   being recomputed.

   A truncated final line — the signature of a kill mid-write — is
   skipped on load rather than failing the resume. *)

module Tel = Telemetry

let c_hits = Tel.Counter.make "util.checkpoint.hits"
let c_misses = Tel.Counter.make "util.checkpoint.misses"
let c_records = Tel.Counter.make "util.checkpoint.records"
let c_loaded = Tel.Counter.make "util.checkpoint.loaded"
let c_skipped = Tel.Counter.make "util.checkpoint.malformed_lines"

(* records that were syntactically fine but semantically unusable: a
   line that raised during field extraction on load, or a stored payload
   the caller's decoder refused.  Distinct from [malformed_lines]
   (truncated/non-record lines): these looked like records and were
   dropped anyway, so resumable layers must recompute them. *)
let c_skipped_records = Tel.Counter.make "util.checkpoint.skipped_records"

type t = {
  path : string;
  lock : Mutex.t;
  table : (string, string) Hashtbl.t;
  extra : (string * string) list;
      (* constant fields stamped onto every record line, e.g. the engine
         identity of the binary that produced the results *)
  mutable oc : out_channel option;
}

let digest_key s = Digest.to_hex (Digest.string s)

let fingerprint v = Digest.to_hex (Digest.string (Marshal.to_string v []))

(* minimal JSON-string unescape, inverse of Telemetry.json_escape *)
let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with
      | '\\' when i + 1 < n -> begin
        match s.[i + 1] with
        | '"' -> Buffer.add_char buf '"'; go (i + 2)
        | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
        | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
        | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
        | 't' -> Buffer.add_char buf '\t'; go (i + 2)
        | 'u' when i + 5 < n ->
          (match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
          | Some code when code < 0x100 -> Buffer.add_char buf (Char.chr code)
          | Some _ | None -> ());
          go (i + 6)
        | c -> Buffer.add_char buf c; go (i + 2)
      end
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go 0;
  Buffer.contents buf

(* extract the value of a top-level string field from one record line;
   tolerant of anything else on the line *)
let field line name =
  let marker = Printf.sprintf "\"%s\":\"" name in
  let ln = String.length line and lm = String.length marker in
  let rec find i =
    if i + lm > ln then None
    else if String.sub line i lm = marker then begin
      (* scan to the closing unescaped quote *)
      let rec close j =
        if j >= ln then None
        else if line.[j] = '\\' then close (j + 2)
        else if line.[j] = '"' then Some j
        else close (j + 1)
      in
      match close (i + lm) with
      | Some j -> Some (unescape (String.sub line (i + lm) (j - i - lm)))
      | None -> None
    end
    else find (i + 1)
  in
  find 0

let load_into table path =
  match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            (* one sick line must never strand the records behind it: a
               mid-file record whose extraction raises is skipped and
               counted, and the load carries on to the tail *)
            match (field line "key", field line "value") with
            | Some k, Some v ->
              Hashtbl.replace table k v;
              Tel.Counter.incr c_loaded
            | _, _ -> if String.trim line <> "" then Tel.Counter.incr c_skipped
            | exception _ -> Tel.Counter.incr c_skipped_records
          done
        with End_of_file -> ())

(* tolerant scan of a records file on disk, without opening a handle:
   the raw view ([Store.merge] and the engine tally need the stamped
   [extra] fields, which the replay table drops). Later records for a
   key follow earlier ones, so replaying [f] in order reproduces the
   last-wins semantics of {!load_into}. *)
let scan path f =
  match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            match (field line "key", field line "value") with
            | Some key, Some value ->
              f ~descr:(field line "descr") ~engine:(field line "engine") ~key
                ~value
            | _, _ -> ()
            | exception _ -> Tel.Counter.incr c_skipped_records
          done
        with End_of_file -> ())

let open_ ?(resume = false) ?(extra = []) path =
  let table = Hashtbl.create 256 in
  if resume then load_into table path;
  (* resume appends behind the loaded entries; a fresh run truncates any
     stale file so old points cannot leak into the new campaign *)
  let flags =
    if resume then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  let oc = open_out_gen flags 0o644 path in
  { path; lock = Mutex.create (); table; extra; oc = Some oc }

let path t = t.path
let entries t = Hashtbl.length t.table

let find t key =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key)

let record t ~key ?(descr = "") ?(overwrite = false) ?extra value =
  Mutex.protect t.lock (fun () ->
      if overwrite || not (Hashtbl.mem t.table key) then begin
        Hashtbl.replace t.table key value;
        match t.oc with
        | None -> ()
        | Some oc ->
          let descr_field =
            if descr = "" then ""
            else Printf.sprintf "\"descr\":\"%s\"," (Tel.json_escape descr)
          in
          let extra_fields =
            String.concat ""
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf "\"%s\":\"%s\"," (Tel.json_escape k)
                     (Tel.json_escape v))
                 (Option.value ~default:t.extra extra))
          in
          let line =
            Printf.sprintf "{%s%s\"key\":\"%s\",\"value\":\"%s\"}\n"
              descr_field extra_fields (Tel.json_escape key)
              (Tel.json_escape value)
          in
          if Chaos.armed () && Chaos.fire Chaos.Truncate_checkpoint then
            (* a kill mid-append: half a record, no trailing newline.
               The store stays correct — the in-memory table already
               holds the value, and on resume the malformed bytes are
               skipped and the point recomputed *)
            output_string oc (String.sub line 0 (String.length line / 2))
          else output_string oc line;
          (* flush per record: an interrupt loses at most in-flight points *)
          flush oc;
          Tel.Counter.incr c_records
      end)

let close t =
  Mutex.protect t.lock (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        close_out_noerr oc)

(* the one helper sweep layers actually call *)
let memo t ~key ?descr ~encode ~decode f =
  match t with
  | None -> f ()
  | Some t ->
    let k = digest_key key in
    let payload = find t k in
    let cached = Option.bind payload decode in
    (match cached with
    | Some v ->
      Tel.Counter.incr c_hits;
      v
    | None ->
      (* a stored payload the decoder refused is a corrupt/foreign
         record: count it and REPAIR it — without [overwrite] the
         recompute would never reach the file (the key is already in
         the table) and every future resume would recompute it again *)
      let corrupt = payload <> None in
      if corrupt then Tel.Counter.incr c_skipped_records;
      Tel.Counter.incr c_misses;
      let v = f () in
      record t ~key:k ?descr ~overwrite:corrupt (encode v);
      v)
