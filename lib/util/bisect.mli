(** Bracketed one-dimensional root and threshold search.

    Used throughout the fault analysis to locate sense-amplifier
    thresholds ([V_sa]) and border resistances (BR). Searches work on
    arbitrary monotone-ish predicates, not only continuous functions,
    because the quantity of interest is often a pass/fail bit. *)

exception No_bracket
(** Raised when the two bracket endpoints evaluate identically. *)

(** [root ?tol ?max_iter f a b] finds [x] in [[a, b]] with [f x = 0] by
    bisection, given [f a] and [f b] of opposite sign. [tol] bounds the
    bracket width (default [1e-9] of the initial width, absolute floor
    [1e-15]). Raises [No_bracket] if the signs agree. *)
val root : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float

(** [threshold ?tol ?max_iter pred lo hi] assumes [pred] flips exactly once
    between [lo] and [hi] and returns the boundary point: the returned
    value [x] satisfies: predicates at [lo] and [x +- tol] differ on the
    correct sides. Works whether [pred lo] is [true] or [false]; raises
    [No_bracket] when [pred lo = pred hi]. The result is the midpoint of
    the final bracket. *)
val threshold :
  ?tol:float -> ?max_iter:int -> (float -> bool) -> float -> float -> float

(** [threshold_log ?rel_tol ?max_iter pred lo hi] is [threshold] performed
    on a logarithmic axis (both endpoints must be positive); the bracket
    is narrowed until [hi/lo <= 1 + rel_tol] (default [1e-3]). Suited to
    resistance searches spanning decades. *)
val threshold_log :
  ?rel_tol:float -> ?max_iter:int -> (float -> bool) -> float -> float -> float

(** Result of a guarded threshold search over an interval. *)
type 'a guarded =
  | All_true      (** predicate holds on the whole interval *)
  | All_false     (** predicate holds nowhere on the interval *)
  | Crossing of 'a  (** predicate flips; payload is the boundary *)

(** [guarded_threshold ?tol pred lo hi] like {!threshold} but returns
    [All_true]/[All_false] instead of raising when there is no bracket. *)
val guarded_threshold :
  ?tol:float -> ?max_iter:int -> (float -> bool) -> float -> float ->
  float guarded

(** [guarded_threshold_log ?rel_tol pred lo hi] log-axis variant. *)
val guarded_threshold_log :
  ?rel_tol:float -> ?max_iter:int -> (float -> bool) -> float -> float ->
  float guarded
