(** Structured per-point sweep outcomes.

    The resilient-sweep contract: a sweep over many independent points
    never aborts because one point's simulation fails. Each point
    produces either [Ok payload] or [Failed f] where [f] records the
    point itself, the final exception, and how many retries the
    degradation policy spent before giving up
    ({!Dramstress_dram.Sim_config.retry_policy}). *)

type 'p failure = {
  point : 'p;    (** the sweep point that could not be evaluated *)
  error : exn;   (** the final error after the retry policy ran dry *)
  retries : int; (** retry attempts consumed (0 = failed immediately) *)
}

type ('p, 'a) t = Ok of 'a | Failed of 'p failure

val ok : ('p, 'a) t -> 'a option
val is_ok : ('p, 'a) t -> bool
val value : default:'a -> ('p, 'a) t -> 'a
val map : ('a -> 'b) -> ('p, 'a) t -> ('p, 'b) t
val map_point : ('p -> 'q) -> ('p, 'a) t -> ('q, 'a) t
val to_result : ('p, 'a) t -> ('a, 'p failure) result

(** [partition outcomes] splits into payloads and failures, both in
    input order. *)
val partition : ('p, 'a) t list -> 'a list * 'p failure list

val oks : ('p, 'a) t list -> 'a list
val failures : ('p, 'a) t list -> 'p failure list

(** [error_message f] is [Printexc.to_string f.error]. *)
val error_message : 'p failure -> string

val pp_failure :
  (Format.formatter -> 'p -> unit) -> Format.formatter -> 'p failure -> unit
