(* Counters, histograms, spans. The design centre is the DISABLED path:
   every probe starts with [Atomic.get enabled_flag] and a branch, so an
   instrumented hot loop (a Newton iteration, an accepted transient
   step) pays a few nanoseconds when nobody is watching. The bench
   harness measures this and guards it (`bench … perf`).

   Handles are registered globally at [make] time so a snapshot can walk
   every metric in the process without the instrumented modules knowing
   about each other. Registration takes a mutex, but it happens once per
   metric per process (module initialization), never on the hot path. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { c_name : string; cell : int Atomic.t }

  let registry : t list ref = ref []
  let registry_lock = Mutex.create ()

  let make name =
    Mutex.protect registry_lock (fun () ->
        match List.find_opt (fun c -> c.c_name = name) !registry with
        | Some c -> c
        | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          registry := c :: !registry;
          c)

  let incr c = if Atomic.get enabled_flag then Atomic.incr c.cell

  let add c n =
    if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

  let value c = Atomic.get c.cell
  let name c = c.c_name
  let reset c = Atomic.set c.cell 0
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* log-spaced bins; one short lock per observation keeps sum/min/max
     coherent without per-field atomics. An observation is orders of
     magnitude cheaper than the simulation work it measures. *)
  type t = {
    h_name : string;
    unit_ : string;
    lo : float;
    log_ratio : float;  (* bin width in log space *)
    bins : int array;
    lock : Mutex.t;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let registry : t list ref = ref []
  let registry_lock = Mutex.create ()

  let make ?(unit_ = "") ~lo ~hi ~buckets name =
    if not (lo > 0.0 && hi > lo && buckets >= 1) then
      invalid_arg "Telemetry.Histogram.make: need 0 < lo < hi, buckets >= 1";
    Mutex.protect registry_lock (fun () ->
        match List.find_opt (fun h -> h.h_name = name) !registry with
        | Some h -> h
        | None ->
          let h =
            { h_name = name; unit_; lo;
              log_ratio = log (hi /. lo) /. float_of_int buckets;
              bins = Array.make buckets 0; lock = Mutex.create ();
              count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }
          in
          registry := h :: !registry;
          h)

  let bin_index h v =
    if v <= h.lo then 0
    else
      Int.min
        (Array.length h.bins - 1)
        (int_of_float (log (v /. h.lo) /. h.log_ratio))

  let observe h v =
    if Atomic.get enabled_flag then
      Mutex.protect h.lock (fun () ->
          let i = bin_index h v in
          h.bins.(i) <- h.bins.(i) + 1;
          h.count <- h.count + 1;
          h.sum <- h.sum +. v;
          if v < h.min_v then h.min_v <- v;
          if v > h.max_v then h.max_v <- v)

  let count h = h.count
  let name h = h.h_name

  (* upper edge of bin [i], the value reported for quantiles landing
     there *)
  let bin_hi h i = h.lo *. exp (h.log_ratio *. float_of_int (i + 1))

  let quantile h q =
    if h.count = 0 then 0.0
    else begin
      let rank =
        Int.max 1 (int_of_float (ceil (q *. float_of_int h.count)))
      in
      let rec walk i cum =
        if i >= Array.length h.bins then h.max_v
        else
          let cum = cum + h.bins.(i) in
          if cum >= rank then Float.min (bin_hi h i) h.max_v else walk (i + 1) cum
      in
      walk 0 0
    end

  let reset h =
    Mutex.protect h.lock (fun () ->
        Array.fill h.bins 0 (Array.length h.bins) 0;
        h.count <- 0;
        h.sum <- 0.0;
        h.min_v <- infinity;
        h.max_v <- neg_infinity)

  let time_ms h f =
    if Atomic.get enabled_flag then begin
      let t0 = now () in
      let y = f () in
      observe h (1e3 *. (now () -. t0));
      y
    end
    else f ()
end

(* ------------------------------------------------------------------ *)
(* Spans and sinks                                                     *)
(* ------------------------------------------------------------------ *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ts : float;
  dur_s : float;
  domain : int;
  attrs : (string * attr) list;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> string_of_bool b

let attr_pretty = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.4g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let event_jsonl ev =
  let attrs =
    match ev.attrs with
    | [] -> ""
    | kvs ->
      Printf.sprintf ",\"attrs\":{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":%s" (json_escape k) (attr_json v))
              kvs))
  in
  Printf.sprintf "{\"ts\":%.6f,\"name\":\"%s\",\"dur_ms\":%.6g,\"domain\":%d%s}"
    ev.ts (json_escape ev.name) (1e3 *. ev.dur_s) ev.domain attrs

module Sink = struct
  (* [emit = None] marks the null sink so [with_span] can skip the whole
     timing path with one physical comparison *)
  type t = { emit : (event -> unit) option; close : unit -> unit }

  let null = { emit = None; close = (fun () -> ()) }

  let stderr_pretty =
    {
      emit =
        Some
          (fun ev ->
            Printf.eprintf "[trace] %-28s %10.3f ms  d%d%s\n%!" ev.name
              (1e3 *. ev.dur_s) ev.domain
              (match ev.attrs with
              | [] -> ""
              | kvs ->
                "  "
                ^ String.concat " "
                    (List.map
                       (fun (k, v) -> k ^ "=" ^ attr_pretty v)
                       kvs)));
      close = (fun () -> ());
    }

  let jsonl oc =
    {
      emit = Some (fun ev -> output_string oc (event_jsonl ev ^ "\n"));
      close = (fun () -> flush oc);
    }

  let jsonl_file path =
    let oc = open_out path in
    {
      emit = Some (fun ev -> output_string oc (event_jsonl ev ^ "\n"));
      close = (fun () -> close_out oc);
    }

  let custom ?(close = fun () -> ()) emit = { emit = Some emit; close }
end

let current_sink = Atomic.make Sink.null
let emit_lock = Mutex.create ()

let set_sink s =
  let old = Atomic.exchange current_sink s in
  old.Sink.close ()

let close_sink () = set_sink Sink.null

let emit ev =
  match (Atomic.get current_sink).Sink.emit with
  | None -> ()
  | Some f -> Mutex.protect emit_lock (fun () -> f ev)

let no_attrs () = []

let with_span ?(attrs = no_attrs) name f =
  if
    (not (Atomic.get enabled_flag))
    || (Atomic.get current_sink).Sink.emit == None
  then f ()
  else begin
    let t0 = now () in
    let finish extra =
      emit
        {
          name;
          ts = t0;
          dur_s = now () -. t0;
          domain = (Domain.self () :> int);
          attrs = attrs () @ extra;
        }
    in
    match f () with
    | r ->
      finish [];
      r
    | exception e ->
      finish [ ("error", Str (Printexc.to_string e)) ];
      raise e
  end

let configure_from_env () =
  match Sys.getenv_opt "DRAMSTRESS_TRACE" with
  | None | Some ("" | "off" | "0" | "false" | "no") -> ()
  | Some ("stderr" | "pretty") ->
    set_enabled true;
    set_sink Sink.stderr_pretty
  | Some path ->
    set_enabled true;
    set_sink (Sink.jsonl_file path)

(* ------------------------------------------------------------------ *)
(* Snapshot and export                                                 *)
(* ------------------------------------------------------------------ *)

type hist_summary = {
  h_unit : string;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
}

let snapshot () =
  let counters =
    Mutex.protect Counter.registry_lock (fun () ->
        List.map (fun c -> (Counter.name c, Counter.value c)) !Counter.registry)
  in
  let histograms =
    Mutex.protect Histogram.registry_lock (fun () -> !Histogram.registry)
    |> List.map (fun h ->
           Mutex.protect h.Histogram.lock (fun () ->
               let empty = h.Histogram.count = 0 in
               ( Histogram.name h,
                 {
                   h_unit = h.Histogram.unit_;
                   h_count = h.Histogram.count;
                   h_sum = h.Histogram.sum;
                   h_min = (if empty then 0.0 else h.Histogram.min_v);
                   h_max = (if empty then 0.0 else h.Histogram.max_v);
                   h_mean =
                     (if empty then 0.0
                      else h.Histogram.sum /. float_of_int h.Histogram.count);
                   h_p50 = Histogram.quantile h 0.50;
                   h_p90 = Histogram.quantile h 0.90;
                   h_p99 = Histogram.quantile h 0.99;
                 } )))
  in
  let by_name (a, _) (b, _) = String.compare a b in
  { counters = List.sort by_name counters;
    histograms = List.sort by_name histograms }

let reset () =
  Mutex.protect Counter.registry_lock (fun () ->
      List.iter Counter.reset !Counter.registry);
  Mutex.protect Histogram.registry_lock (fun () -> !Histogram.registry)
  |> List.iter Histogram.reset

let render_table snap =
  let buf = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters\n";
    List.iter
      (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" name v))
      snap.counters
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf
      "histograms                                        count       mean \
       p50        p90        p99        max\n";
    List.iter
      (fun (name, s) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-42s %10d %10.4g %10.4g %10.4g %10.4g %10.4g %s\n"
             name s.h_count s.h_mean s.h_p50 s.h_p90 s.h_p99 s.h_max s.h_unit))
      snap.histograms
  end;
  Buffer.contents buf

let to_json ?(extra = []) snap =
  let counters =
    String.concat ",\n"
      (List.map
         (fun (name, v) -> Printf.sprintf "    \"%s\": %d" (json_escape name) v)
         snap.counters)
  in
  let histograms =
    String.concat ",\n"
      (List.map
         (fun (name, s) ->
           Printf.sprintf
             "    \"%s\": { \"unit\": \"%s\", \"count\": %d, \"sum\": %.6g, \
              \"min\": %.6g, \"max\": %.6g, \"mean\": %.6g, \"p50\": %.6g, \
              \"p90\": %.6g, \"p99\": %.6g }"
             (json_escape name) (json_escape s.h_unit) s.h_count s.h_sum s.h_min
             s.h_max s.h_mean s.h_p50 s.h_p90 s.h_p99)
         snap.histograms)
  in
  let extra =
    String.concat ""
      (List.map (fun (k, json) -> Printf.sprintf ",\n  \"%s\": %s" (json_escape k) json) extra)
  in
  Printf.sprintf "{\n  \"counters\": {\n%s\n  },\n  \"histograms\": {\n%s\n  }%s\n}\n"
    counters histograms extra
