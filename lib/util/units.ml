let kilo x = x *. 1e3
let mega x = x *. 1e6
let giga x = x *. 1e9
let milli x = x *. 1e-3
let micro x = x *. 1e-6
let nano x = x *. 1e-9
let pico x = x *. 1e-12
let femto x = x *. 1e-15

let celsius_to_kelvin t = t +. 273.15
let kelvin_to_celsius t = t -. 273.15

let k_over_q = 8.617333262e-5

let thermal_voltage t_kelvin = k_over_q *. t_kelvin

let prefixes =
  [ (1e9, "G"); (1e6, "M"); (1e3, "k"); (1.0, ""); (1e-3, "m"); (1e-6, "u");
    (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]

let pp_si ppf v =
  if v = 0.0 then Format.fprintf ppf "0"
  else begin
    let mag = Float.abs v in
    let scale, prefix =
      let rec pick = function
        | [ (s, p) ] -> (s, p)
        | (s, p) :: rest -> if mag >= s then (s, p) else pick rest
        | [] -> (1.0, "")
      in
      pick prefixes
    in
    Format.fprintf ppf "%.4g %s" (v /. scale) prefix
  end

let si_string v = Format.asprintf "%a" pp_si v
