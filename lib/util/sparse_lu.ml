module L = Linalg
module Tel = Telemetry

let c_analyses = Tel.Counter.make "util.sparse_lu.symbolic_analyses"
let c_reuse = Tel.Counter.make "util.sparse_lu.symbolic_reuse"
let c_refactor = Tel.Counter.make "util.sparse_lu.numeric_refactor"
let c_reanalyses = Tel.Counter.make "util.sparse_lu.reanalyses"

(* always-on mirrors of the counters above, so [--metrics] can reconcile
   the telemetry block against an independent tally (the same contract
   [Ops.cache_stats] provides for the memo cache) *)
let g_analyses = Atomic.make 0
let g_reuse = Atomic.make 0
let g_refactor = Atomic.make 0
let g_reanalyses = Atomic.make 0

type stats = {
  analyses : int;
  reanalyses : int;
  numeric_refactor : int;
  symbolic_reuse : int;
}

let stats () =
  {
    analyses = Atomic.get g_analyses;
    reanalyses = Atomic.get g_reanalyses;
    numeric_refactor = Atomic.get g_refactor;
    symbolic_reuse = Atomic.get g_reuse;
  }

let reset_stats () =
  Atomic.set g_analyses 0;
  Atomic.set g_reuse 0;
  Atomic.set g_refactor 0;
  Atomic.set g_reanalyses 0

type analysis = {
  perm : int array;            (* factored row i holds A's row perm.(i) *)
  lower : int array array;     (* per pivot k: rows i > k with fill (i,k) *)
  upper : int array array;     (* per pivot k: cols j > k with fill (k,j) *)
  row_lower : int array array; (* per row i: cols j < i with fill (i,j) *)
  row_upper : int array array; (* per row i: cols j > i with fill (i,j) *)
  src_cols : int array array;
      (* per factored row i: structural cols of source row perm.(i) —
         the only entries of [a] a refactor needs to read (everything
         off-pattern is exactly 0.0 by construction) *)
  fill_cols : int array array;
      (* per factored row i: fill-in positions (pattern closure minus
         structural) that elimination writes and must start at 0.0 *)
}

type t = {
  n : int;
  base : bool array array;  (* structural pattern, natural row order *)
  f : float array array;    (* permuted working copy; holds the factors *)
  mutable analysis : analysis option;
}

let make ~n ~pattern =
  if Array.length pattern <> n then invalid_arg "Sparse_lu.make: pattern rows";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Sparse_lu.make: pattern cols")
    pattern;
  {
    n;
    base = Array.map Array.copy pattern;
    f = Array.make_matrix n n 0.0;
    analysis = None;
  }

(* internal: a guarded pivot fell below the staleness threshold *)
exception Stale

let check_finite_matrix a n =
  for i = 0 to n - 1 do
    let row = a.(i) in
    for j = 0 to n - 1 do
      let v = row.(j) in
      if not (v -. v = 0.0) then
        (* a non-finite system is as unusable as a singular one, and —
           critically — must NOT reach the dense analysis below: an
           all-Inf matrix can factor "successfully" into a garbage pivot
           order that would then poison every later solve sharing this
           handle *)
        raise (L.Singular { row = i; pivot = v })
    done
  done

let analyse t a =
  check_finite_matrix a t.n;
  let n = t.n in
  (* pivot order from one dense partially-pivoted factorization at the
     current values; raises L.Singular for rank-deficient systems *)
  let dense = L.lu_factor a in
  let perm = Array.copy (L.lu_perm dense) in
  (* permuted structural pattern, closed under elimination fill-in *)
  let pat = Array.init n (fun i -> Array.copy t.base.(perm.(i))) in
  for k = 0 to n - 1 do
    let pk = pat.(k) in
    for i = k + 1 to n - 1 do
      if pat.(i).(k) then begin
        let pi = pat.(i) in
        for j = k + 1 to n - 1 do
          if pk.(j) then pi.(j) <- true
        done
      end
    done
  done;
  let cols_of pred =
    Array.init n (fun i ->
        let acc = ref [] in
        for j = n - 1 downto 0 do
          if pred i j && pat.(i).(j) then acc := j :: !acc
        done;
        Array.of_list !acc)
  in
  let rows_of k =
    let acc = ref [] in
    for i = n - 1 downto k + 1 do
      if pat.(i).(k) then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  t.analysis <-
    Some
      {
        perm;
        lower = Array.init n rows_of;
        upper = cols_of (fun i j -> j > i);
        row_lower = cols_of (fun i j -> j < i);
        row_upper = cols_of (fun i j -> j > i);
        src_cols =
          Array.init n (fun i ->
              let base = t.base.(perm.(i)) in
              let acc = ref [] in
              for j = n - 1 downto 0 do
                if base.(j) then acc := j :: !acc
              done;
              Array.of_list !acc);
        fill_cols =
          Array.init n (fun i ->
              let base = t.base.(perm.(i)) in
              let acc = ref [] in
              for j = n - 1 downto 0 do
                if pat.(i).(j) && not base.(j) then acc := j :: !acc
              done;
              Array.of_list !acc);
      }

(* Numeric refactorization under a fixed analysis: copy rows in pivot
   order, then eliminate walking only the structural index lists. With
   [strict = false] a pivot below [scale * 1e-10] raises [Stale] —
   values have drifted too far from the analysis point for its pivot
   order to be trusted. With [strict = true] (used right after a fresh
   analysis, whose dense factorization accepted these exact pivots at
   its own [scale * 1e-14] threshold) the dense threshold applies, so
   the pass cannot loop: what dense accepted, strict accepts. *)
let refactor t an a ~strict =
  let n = t.n and f = t.f in
  let scale = ref 0.0 in
  (* load only the structural entries of each source row (off-pattern
     entries are exactly 0.0 by construction, so they contribute nothing
     to the factors or the pivot scale) and zero the fill-in slots the
     elimination below writes into. O(nnz) instead of O(n^2), which is
     most of a refactor's cost on circuit-sized systems. *)
  for i = 0 to n - 1 do
    let src = a.(an.perm.(i)) in
    let fi = f.(i) in
    let cols = an.src_cols.(i) in
    for jj = 0 to Array.length cols - 1 do
      let j = Array.unsafe_get cols jj in
      let v = Array.unsafe_get src j in
      Array.unsafe_set fi j v;
      let av = Float.abs v in
      if av > !scale then scale := av
    done;
    let fills = an.fill_cols.(i) in
    for jj = 0 to Array.length fills - 1 do
      Array.unsafe_set fi (Array.unsafe_get fills jj) 0.0
    done
  done;
  let threshold =
    Float.max 1e-300 (!scale *. if strict then 1e-14 else 1e-10)
  in
  for k = 0 to n - 1 do
    let fk = f.(k) in
    let pkk = fk.(k) in
    (* [not >=] rather than [<] so a NaN pivot is also caught *)
    if not (Float.abs pkk >= threshold) then
      if strict then raise (L.Singular { row = k; pivot = pkk })
      else raise_notrace Stale;
    let low = an.lower.(k) and up = an.upper.(k) in
    for ii = 0 to Array.length low - 1 do
      let fi = f.(Array.unsafe_get low ii) in
      let m = fi.(k) /. pkk in
      fi.(k) <- m;
      if m <> 0.0 then
        for jj = 0 to Array.length up - 1 do
          let j = Array.unsafe_get up jj in
          Array.unsafe_set fi j
            (Array.unsafe_get fi j -. (m *. Array.unsafe_get fk j))
        done
    done
  done

let record_refactor ~reused =
  Tel.Counter.incr c_refactor;
  Atomic.incr g_refactor;
  if reused then begin
    Tel.Counter.incr c_reuse;
    Atomic.incr g_reuse
  end

let factor t a =
  match t.analysis with
  | None ->
    Tel.Counter.incr c_analyses;
    Atomic.incr g_analyses;
    analyse t a;
    let an = Option.get t.analysis in
    refactor t an a ~strict:true;
    record_refactor ~reused:false
  | Some an -> begin
    match refactor t an a ~strict:false with
    | () -> record_refactor ~reused:true
    | exception Stale ->
      Tel.Counter.incr c_reanalyses;
      Atomic.incr g_reanalyses;
      (* [analyse] validates finiteness and raises L.Singular before
         mutating [t.analysis], so a poisoned matrix leaves the stored
         pivot order untouched for the next healthy solve *)
      analyse t a;
      let an = Option.get t.analysis in
      refactor t an a ~strict:true;
      record_refactor ~reused:false
  end

let solve t ~scratch b =
  let an =
    match t.analysis with
    | Some an -> an
    | None -> invalid_arg "Sparse_lu.solve: no factorization"
  in
  let n = t.n and f = t.f in
  assert (Array.length b = n);
  assert (Array.length scratch >= n);
  for i = 0 to n - 1 do
    scratch.(i) <- b.(an.perm.(i))
  done;
  (* forward substitution: L has unit diagonal *)
  for i = 1 to n - 1 do
    let cols = an.row_lower.(i) in
    let nc = Array.length cols in
    if nc > 0 then begin
      let fi = f.(i) in
      let s = ref scratch.(i) in
      for jj = 0 to nc - 1 do
        let j = Array.unsafe_get cols jj in
        s := !s -. (Array.unsafe_get fi j *. Array.unsafe_get scratch j)
      done;
      scratch.(i) <- !s
    end
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let cols = an.row_upper.(i) in
    let fi = f.(i) in
    let s = ref scratch.(i) in
    for jj = 0 to Array.length cols - 1 do
      let j = Array.unsafe_get cols jj in
      s := !s -. (Array.unsafe_get fi j *. Array.unsafe_get scratch j)
    done;
    scratch.(i) <- !s /. fi.(i)
  done;
  Array.blit scratch 0 b 0 n
