(** Bounded least-recently-used cache.

    A hash table paired with an intrusive recency list; {!find} and
    {!add} are O(1) amortized. When the cache is full, adding a new key
    silently evicts the least recently used entry.

    Keys are compared with structural equality and hashed with
    [Hashtbl.hash]; avoid keys containing functions or cyclic values.
    The cache is not synchronized — guard shared instances with a mutex
    when used from several domains. *)

type ('k, 'v) t

(** [create ?capacity ()] makes an empty cache (default capacity 256).
    Raises [Invalid_argument] if [capacity < 1]. *)
val create : ?capacity:int -> unit -> ('k, 'v) t

(** [find c k] returns the cached value and marks it most recently used.
    Updates the hit/miss statistics. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [mem c k] probes membership without touching recency or stats. *)
val mem : ('k, 'v) t -> 'k -> bool

(** [add c k v] inserts or overwrites the binding and marks it most
    recently used, evicting the LRU entry when at capacity. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** Cumulative {!find} statistics since creation or {!reset_stats}. *)
val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

(** [evictions c] counts entries silently dropped by capacity pressure
    since creation or {!reset_stats}. *)
val evictions : ('k, 'v) t -> int

val reset_stats : ('k, 'v) t -> unit

(** [clear c] drops every entry (statistics are kept). *)
val clear : ('k, 'v) t -> unit

(** [keys c] lists keys from most to least recently used. *)
val keys : ('k, 'v) t -> 'k list
