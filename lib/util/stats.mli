(** Summary statistics for sweep results and benchmark reporting. *)

(** [mean xs] — raises [Invalid_argument] on an empty array. *)
val mean : float array -> float

(** [variance xs] is the population variance. *)
val variance : float array -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float array -> float

(** [min_max xs] — raises [Invalid_argument] on an empty array. *)
val min_max : float array -> float * float

(** [median xs] does not modify its argument. *)
val median : float array -> float

(** [quantile q xs] for [q] in [[0, 1]] with linear interpolation. *)
val quantile : float -> float array -> float
