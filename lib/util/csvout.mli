(** Minimal CSV emission for waveform and sweep data. *)

(** [to_string ~header rows] renders a CSV document. Fields containing
    commas, quotes or newlines are quoted. *)
val to_string : header:string list -> string list list -> string

(** [of_floats ~header rows] formats float rows with [%.9g]. *)
val of_floats : header:string list -> float list list -> string

(** [write_file path contents] writes (and truncates) [path]. *)
val write_file : string -> string -> unit
