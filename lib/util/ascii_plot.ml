type axis = Linear | Log10

type series = { label : string; glyph : char; pts : (float * float) list }

let series ?glyph label pts =
  let glyph =
    match glyph with
    | Some g -> g
    | None -> if String.length label > 0 then label.[0] else '*'
  in
  { label; glyph; pts }

let finite v = Float.is_finite v

let render ?(width = 72) ?(height = 22) ?(x_axis = Linear) ?(x_label = "")
    ?(y_label = "") ?(hlines = []) ~title ss =
  let tx x = match x_axis with Linear -> x | Log10 -> log10 x in
  let all_pts =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (x, y) ->
            let x' = tx x in
            if finite x' && finite y then Some (x', y) else None)
          s.pts)
      ss
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  if all_pts = [] then begin
    Buffer.add_string buf "  (no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map fst all_pts and ys0 = List.map snd all_pts in
    let ys = ys0 @ List.map snd hlines in
    let xmin = List.fold_left Float.min (List.hd xs) xs in
    let xmax = List.fold_left Float.max (List.hd xs) xs in
    let ymin = List.fold_left Float.min (List.hd ys) ys in
    let ymax = List.fold_left Float.max (List.hd ys) ys in
    let widen lo hi = if lo = hi then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
    let xmin, xmax = widen xmin xmax in
    let ymin, ymax =
      let lo, hi = widen ymin ymax in
      let m = 0.05 *. (hi -. lo) in
      (lo -. m, hi +. m)
    in
    let canvas = Array.make_matrix height width ' ' in
    let col_of x =
      let c =
        int_of_float
          (Float.round ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1)))
      in
      Int.min (width - 1) (Int.max 0 c)
    in
    let row_of y =
      let r =
        int_of_float
          (Float.round ((ymax -. y) /. (ymax -. ymin) *. float_of_int (height - 1)))
      in
      Int.min (height - 1) (Int.max 0 r)
    in
    (* dashed marker lines first so data overwrites them *)
    let draw_hline y =
      if y >= ymin && y <= ymax then begin
        let r = row_of y in
        for c = 0 to width - 1 do
          if c mod 2 = 0 then canvas.(r).(c) <- '-'
        done
      end
    in
    List.iter (fun (_, y) -> draw_hline y) hlines;
    (* draw each series with simple segment rasterization *)
    let draw_series s =
      let pts =
        List.filter_map
          (fun (x, y) ->
            let x' = tx x in
            if finite x' && finite y then Some (x', y) else None)
          s.pts
      in
      let draw_segment (x0, y0) (x1, y1) =
        let c0 = col_of x0 and c1 = col_of x1 in
        let steps = Int.max 1 (abs (c1 - c0)) in
        for i = 0 to steps do
          let t = float_of_int i /. float_of_int steps in
          let x = x0 +. (t *. (x1 -. x0)) in
          let y = y0 +. (t *. (y1 -. y0)) in
          canvas.(row_of y).(col_of x) <- s.glyph
        done
      in
      let rec walk = function
        | p0 :: (p1 :: _ as rest) ->
          draw_segment p0 p1;
          walk rest
        | [ (x, y) ] -> canvas.(row_of y).(col_of x) <- s.glyph
        | [] -> ()
      in
      walk pts
    in
    List.iter draw_series ss;
    (* y-axis labels on 5 ticks *)
    let label_rows = [ 0; height / 4; height / 2; 3 * height / 4; height - 1 ] in
    let y_of_row r =
      ymax -. (float_of_int r /. float_of_int (height - 1) *. (ymax -. ymin))
    in
    for r = 0 to height - 1 do
      let lbl =
        if List.mem r label_rows then Printf.sprintf "%8.3g |" (y_of_row r)
        else "         |"
      in
      Buffer.add_string buf lbl;
      Buffer.add_string buf (String.init width (fun c -> canvas.(r).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
    let x_of_col c =
      let v = xmin +. (float_of_int c /. float_of_int (width - 1) *. (xmax -. xmin)) in
      match x_axis with Linear -> v | Log10 -> 10.0 ** v
    in
    let tick_cols = [ 0; width / 4; width / 2; 3 * width / 4; width - 1 ] in
    let tick_line = Bytes.make (width + 10) ' ' in
    List.iter
      (fun c ->
        let s = Printf.sprintf "%.3g" (x_of_col c) in
        let start = Int.min (width + 10 - String.length s) (c + 10) in
        Bytes.blit_string s 0 tick_line (Int.max 0 start) (String.length s))
      tick_cols;
    Buffer.add_string buf (Bytes.to_string tick_line);
    Buffer.add_char buf '\n';
    if x_label <> "" || y_label <> "" then
      Buffer.add_string buf
        (Printf.sprintf "          x: %s    y: %s\n" x_label y_label);
    let legend =
      List.map (fun s -> Printf.sprintf "[%c] %s" s.glyph s.label) ss
      @ List.map (fun (l, y) -> Printf.sprintf "[-] %s=%.3g" l y) hlines
    in
    if legend <> [] then begin
      Buffer.add_string buf ("          " ^ String.concat "  " legend);
      Buffer.add_char buf '\n'
    end;
    Buffer.contents buf
  end

let render_grid ~title ~rows:(row_axis, n_rows) ~cols:(col_axis, n_cols)
    ~row_label ~col_label cell =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "  rows: %s (top to bottom), cols: %s\n" row_axis col_axis);
  for r = 0 to n_rows - 1 do
    Buffer.add_string buf (Printf.sprintf "%10s |" (row_label r));
    for c = 0 to n_cols - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_char buf (cell r c)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make (2 * n_cols) '-'));
  (* column labels, vertical footer rows: print a few *)
  let every = Int.max 1 (n_cols / 6) in
  Buffer.add_string buf (Printf.sprintf "%10s  " "");
  for c = 0 to n_cols - 1 do
    if c mod every = 0 then begin
      let s = col_label c in
      Buffer.add_string buf s;
      (* skip columns covered by the label *)
      ()
    end
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf
