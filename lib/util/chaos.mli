(** Deterministic, seed-driven fault injection for resilience testing.

    Injection sites are compiled into the engine, sweep and checkpoint
    layers but stay dormant (one atomic load per site) until the module
    is armed — either programmatically with {!configure} or through the
    [DRAMSTRESS_CHAOS] environment variable. Firing decisions depend
    only on the configured seed and a per-fault query counter, never on
    wall time or [Random], so a campaign run with [jobs = 1], the same
    seed and the same spec injects byte-identically reproducible
    faults. *)

(** The five injectable fault classes and where they strike:
    - [Perturb_jacobian]: zeroes a matrix row before factorization in
      {!Dramstress_engine.Mna.solve_in_place}, forcing a singular LU;
    - [Force_newton_diverge]: makes one Newton solve ignore its
      convergence test, so it iterates until [max_newton] (or a
      deadline) stops it;
    - [Inject_nan_state]: poisons one entry of the Newton state vector
      with NaN, exercising the finiteness guards;
    - [Fail_worker_task]: raises {!Injected_fault} inside a
      {!Par.parallel_map_outcomes} worker, producing a [Failed] slot;
    - [Truncate_checkpoint]: truncates one checkpoint record mid-write,
      simulating a kill during the append. *)
type fault =
  | Perturb_jacobian
  | Force_newton_diverge
  | Inject_nan_state
  | Fail_worker_task
  | Truncate_checkpoint

val all_faults : fault list

(** Stable spec / telemetry name: ["perturb_jacobian"], ... *)
val fault_name : fault -> string

val fault_of_name : string -> fault option

exception Injected_fault of { fault : fault }
(** Raised by the [Fail_worker_task] site (and available to custom
    sites in tests). *)

(** [configure ~seed spec] arms the harness. [spec] is a comma-separated
    list of entries: [name] (fire on every query), [name@N] (fire once
    per window of [N] queries; the seed rotates which query in the
    window) or [name@+N] (fire exactly once, on the [N]-th query).
    Resets all query and injection counters. Raises [Invalid_argument]
    on an unknown fault name or a bad period. *)
val configure : seed:int -> string -> unit

(** [configure_from_env ()] arms from [DRAMSTRESS_CHAOS=seed:spec]
    (e.g. [42:inject_nan_state@50,fail_worker_task@7]); unset, empty or
    [off|0|false|no] disarms. Never called implicitly — front ends opt
    in at startup. *)
val configure_from_env : unit -> unit

(** [disarm ()] returns every site to its dormant state. Injection
    counters survive so tests can read them after the campaign. *)
val disarm : unit -> unit

(** [armed ()] is the cheap site guard: a single atomic load. *)
val armed : unit -> bool

val seed : unit -> int

(** [fire f] advances fault [f]'s query counter and reports whether the
    site should inject now. Counts every injection in the module's own
    atomics (always) and in the [util.chaos.injected] /
    [util.chaos.injected.<class>] telemetry counters (when telemetry is
    enabled). Always [false] while dormant. *)
val fire : fault -> bool

(** [injected f] — injections of class [f] since the last
    {!configure} / {!reset_counts}. *)
val injected : fault -> int

(** [total_injected ()] — sum over all classes; always equals the sum
    of {!injected} per class, which the chaos CLI asserts against the
    telemetry counters. *)
val total_injected : unit -> int

val reset_counts : unit -> unit
