(* Structured per-point sweep outcomes.

   A long resistance sweep must not die because one pathological point
   cannot be simulated: each point either yields its payload or a
   [failure] that records which point died, with what error, after how
   many retries. Sweep layers collect failures alongside results and
   keep going. *)

type 'p failure = { point : 'p; error : exn; retries : int }

type ('p, 'a) t = Ok of 'a | Failed of 'p failure

let ok = function Ok v -> Some v | Failed _ -> None
let is_ok = function Ok _ -> true | Failed _ -> false

let value ~default = function Ok v -> v | Failed _ -> default

let map f = function
  | Ok v -> Ok (f v)
  | Failed _ as outcome -> outcome

let map_point f = function
  | Ok _ as outcome -> outcome
  | Failed { point; error; retries } ->
    Failed { point = f point; error; retries }

let to_result = function
  | Ok v -> Stdlib.Ok v
  | Failed f -> Stdlib.Error f

(* one pass, both orders preserved *)
let partition outcomes =
  let oks, failures =
    List.fold_left
      (fun (oks, failures) -> function
        | Ok v -> (v :: oks, failures)
        | Failed f -> (oks, f :: failures))
      ([], []) outcomes
  in
  (List.rev oks, List.rev failures)

let oks outcomes = fst (partition outcomes)
let failures outcomes = snd (partition outcomes)

let error_message f = Printexc.to_string f.error

let pp_failure pp_point ppf f =
  Format.fprintf ppf "point %a failed after %d retries: %s" pp_point f.point
    f.retries (error_message f)
