(* Dependency-free parallel map over OCaml 5 domains.

   Work items are handed out one at a time through an atomic cursor
   (self-scheduling), which balances the very uneven per-item cost of
   sweep workloads (a bisection at one resistance can take many times
   longer than at another). Results are written to per-index slots, so
   output order always matches input order regardless of scheduling. *)

let default_jobs () =
  match Sys.getenv_opt "DRAMSTRESS_JOBS" with
  | Some s -> begin
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ()
  end
  | None -> Domain.recommended_domain_count ()

let parallel_map ?jobs f xs =
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> default_jobs ()
  in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let jobs = Int.min jobs n in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f input.(i) with
          | y -> out.(i) <- Some y
          | exception e ->
            (* keep the first failure; remaining items are abandoned *)
            ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) out)

let parallel_iter ?jobs f xs =
  ignore (parallel_map ?jobs (fun x -> f x) xs)
