(* Dependency-free parallel map over OCaml 5 domains.

   Work items are handed out one at a time through an atomic cursor
   (self-scheduling), which balances the very uneven per-item cost of
   sweep workloads (a bisection at one resistance can take many times
   longer than at another). Results are written to per-index slots, so
   output order always matches input order regardless of scheduling. *)

module Tel = Telemetry

let c_sweeps = Tel.Counter.make "util.par.sweeps"
let c_tasks = Tel.Counter.make "util.par.tasks"
let c_domains = Tel.Counter.make "util.par.domains_spawned"
let c_task_failures = Tel.Counter.make "util.par.task_failures"

let h_idle =
  Tel.Histogram.make ~unit_:"ms" ~lo:1e-3 ~hi:1e5 ~buckets:32
    "util.par.worker_idle_ms"

let h_tasks_per_worker =
  Tel.Histogram.make ~unit_:"tasks" ~lo:1.0 ~hi:1e6 ~buckets:24
    "util.par.tasks_per_worker"

(* Environment junk must not pass silently: a user who exported
   DRAMSTRESS_JOBS=0 (or =-4, or =banana) deserves to hear, once, that
   the value was ignored — a sweep quietly running on the default count
   looks exactly like the knob working. One warning per variable per
   process, mirrored into [env_warnings] so tests can assert on it
   without capturing stderr. *)
let warned_lock = Mutex.create ()
let warned : (string, unit) Hashtbl.t = Hashtbl.create 4
let warning_log : (string * string) list ref = ref []

let warn_env ~env ~raw ~used =
  Mutex.protect warned_lock (fun () ->
      if not (Hashtbl.mem warned env) then begin
        Hashtbl.add warned env ();
        warning_log := (env, raw) :: !warning_log;
        Printf.eprintf
          "dramstress: ignoring %s=%S (worker counts must be integers >= \
           1); using %d\n\
           %!"
          env raw used
      end)

let env_warnings () = List.rev !warning_log

let reset_env_warnings () =
  Mutex.protect warned_lock (fun () ->
      Hashtbl.reset warned;
      warning_log := [])

(* One clamping/validation point shared by every worker-count knob
   (jobs, ensemble lanes): explicit argument > environment variable >
   default. An explicit value clamps to at least 1; environment junk —
   unparsable text, zero, negatives — degrades to the default (itself
   always >= 1) with a once-per-variable stderr warning rather than
   diverging per knob. *)
let clamp_count ?explicit ~env ~default () =
  match explicit with
  | Some j -> Int.max 1 j
  | None -> begin
    match Sys.getenv_opt env with
    | Some "" -> default ()
    | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
        let used = Int.max 1 (default ()) in
        warn_env ~env ~raw:s ~used;
        used
    end
    | None -> default ()
  end

(* the single resolution point for every ?jobs in the code base:
   explicit argument > DRAMSTRESS_JOBS environment > recommended count *)
let resolve_jobs ?jobs () =
  clamp_count ?explicit:jobs ~env:"DRAMSTRESS_JOBS"
    ~default:Domain.recommended_domain_count ()

let default_lanes = 16

(* same precedence and degradation for the ensemble lane count:
   explicit argument > DRAMSTRESS_LANES environment > 16 *)
let resolve_lanes ?lanes () =
  clamp_count ?explicit:lanes ~env:"DRAMSTRESS_LANES"
    ~default:(fun () -> default_lanes) ()

let default_jobs () = resolve_jobs ()

(* order-preserving split into consecutive runs of at most [size]; used
   by batched sweeps to cut a lane list into ensemble-width chunks that
   then fan out over domains *)
let chunks ~size xs =
  if size < 1 then invalid_arg "Par.chunks: size < 1";
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let parallel_map ?jobs f xs =
  let jobs = resolve_jobs ?jobs () in
  Tel.Counter.incr c_sweeps;
  Tel.Counter.add c_tasks (List.length xs);
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let jobs = Int.min jobs n in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* per-worker completion instants, for the idle-time histogram: a
       worker is idle from its last item until the slowest worker ends *)
    let watching = Tel.enabled () in
    let done_at = Array.make jobs 0.0 in
    let task_count = Array.make jobs 0 in
    let worker w () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f input.(i) with
          | y ->
            out.(i) <- Some y;
            task_count.(w) <- task_count.(w) + 1
          | exception e ->
            (* keep the first failure; remaining items are abandoned.
               The backtrace must be captured here, in the worker domain
               that observed the raise — re-raising in the caller with a
               bare [raise] would rebind the trace to the join site and
               lose the actual origin *)
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ();
      if watching then done_at.(w) <- Unix.gettimeofday ()
    in
    Tel.Counter.add c_domains (jobs - 1);
    let helpers = List.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    List.iter Domain.join helpers;
    if watching then begin
      let t_end = Unix.gettimeofday () in
      Array.iter
        (fun t -> Tel.Histogram.observe h_idle (1e3 *. Float.max 0.0 (t_end -. t)))
        done_at;
      Array.iter
        (fun c -> Tel.Histogram.observe h_tasks_per_worker (float_of_int c))
        task_count
    end;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) out)

let parallel_iter ?jobs f xs =
  ignore (parallel_map ?jobs (fun x -> f x) xs)

(* Thread-based sibling of [parallel_map], for callers that block
   outside the OCaml runtime (pipe/socket waits) AND must never spawn a
   domain — once any domain has run, the runtime refuses Unix.fork, and
   the sandboxed service daemon lives or dies by staying fork-capable. *)
let concurrent_map ?jobs f xs =
  let jobs = resolve_jobs ?jobs () in
  Tel.Counter.incr c_sweeps;
  Tel.Counter.add c_tasks (List.length xs);
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let jobs = Int.min jobs n in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f input.(i) with
          | y -> out.(i) <- Some y
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Thread.create worker ()) in
    worker ();
    List.iter Thread.join helpers;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) out)

(* Per-point fault tolerance: every item completes with a structured
   outcome instead of the first raise killing the sweep. The inner
   closure never raises, so [parallel_map]'s abandon path is never
   taken and all items run. *)
let parallel_map_outcomes ?jobs ?(retries_of = fun _ -> 0) f xs =
  parallel_map ?jobs
    (fun x ->
      match
        if Chaos.armed () && Chaos.fire Chaos.Fail_worker_task then
          raise (Chaos.Injected_fault { fault = Chaos.Fail_worker_task });
        f x
      with
      | y -> Outcome.Ok y
      | exception e ->
        Tel.Counter.incr c_task_failures;
        Outcome.Failed { Outcome.point = x; error = e; retries = retries_of e })
    xs
