type matrix = float array array

exception Singular of { row : int; pivot : float }

let () =
  Printexc.register_printer (function
    | Singular { row; pivot } ->
      Some
        (Printf.sprintf "Linalg.Singular { row = %d; pivot = %.6g }" row pivot)
    | _ -> None)

let create n m = Array.make_matrix n m 0.0

let copy a = Array.map Array.copy a

let dims a =
  let n = Array.length a in
  if n = 0 then (0, 0) else (n, Array.length a.(0))

let identity n =
  let a = create n n in
  for i = 0 to n - 1 do
    a.(i).(i) <- 1.0
  done;
  a

let mat_vec a x =
  let n, m = dims a in
  assert (Array.length x = m);
  Array.init n (fun i ->
      let row = a.(i) in
      let s = ref 0.0 in
      for j = 0 to m - 1 do
        s := !s +. (row.(j) *. x.(j))
      done;
      !s)

let mat_mul a b =
  let n, k = dims a in
  let k', m = dims b in
  assert (k = k');
  let c = create n m in
  for i = 0 to n - 1 do
    for p = 0 to k - 1 do
      let aip = a.(i).(p) in
      if aip <> 0.0 then
        for j = 0 to m - 1 do
          c.(i).(j) <- c.(i).(j) +. (aip *. b.(p).(j))
        done
    done
  done;
  c

type lu = { lu : matrix; perm : int array }

(* Doolittle LU with partial pivoting, factoring [lu] destructively.
   [perm] must come in as the identity permutation.

   The pivot threshold is relative to the matrix's largest entry at
   factor time: a pivot below [scale * 1e-14] is cancellation residue,
   not signal, and dividing through it would fill the factors with
   garbage that only surfaces as a wrong answer much later. The
   relative scale matters — MNA matrices carry gmin entries (~1e-12 S)
   that are legitimate pivots against an O(1) scale, while a 1e-16
   residue of an O(1) cancellation is not. An absolute 1e-300 floor
   still covers the all-tiny-matrix corner. *)
let pivot_threshold lu n =
  let scale = ref 0.0 in
  for i = 0 to n - 1 do
    let row = lu.(i) in
    for j = 0 to n - 1 do
      let v = Float.abs row.(j) in
      if v > !scale then scale := v
    done
  done;
  Float.max 1e-300 (!scale *. 1e-14)

let factor_loop lu perm n =
  let threshold = pivot_threshold lu n in
  for k = 0 to n - 1 do
    let pivot = ref k in
    let best = ref (Float.abs lu.(k).(k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs lu.(i).(k) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if not (!best >= threshold) then
      (* [not >=] rather than [<] so a NaN pivot column is also caught *)
      raise (Singular { row = k; pivot = !best });
    if !pivot <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tp
    end;
    let pkk = lu.(k).(k) in
    for i = k + 1 to n - 1 do
      let f = lu.(i).(k) /. pkk in
      lu.(i).(k) <- f;
      if f <> 0.0 then begin
        let ri = lu.(i) and rk = lu.(k) in
        for j = k + 1 to n - 1 do
          ri.(j) <- ri.(j) -. (f *. rk.(j))
        done
      end
    done
  done

let lu_perm { perm; _ } = perm

let lu_factor a =
  let n, m = dims a in
  assert (n = m);
  let lu = copy a in
  let perm = Array.init n (fun i -> i) in
  factor_loop lu perm n;
  { lu; perm }

let lu_factor_in_place a ~perm =
  let n, m = dims a in
  assert (n = m);
  assert (Array.length perm = n);
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  factor_loop a perm n;
  { lu = a; perm }

(* forward/back substitution over a dense LU, solving destructively
   into [x] (which must already hold the permuted RHS) *)
let substitute lu x n =
  (* forward substitution: L has unit diagonal *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    let row = lu.(i) in
    for j = 0 to i - 1 do
      s := !s -. (row.(j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    let row = lu.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (row.(j) *. x.(j))
    done;
    x.(i) <- !s /. row.(i)
  done

let lu_solve_in_place { lu; perm } ~scratch b =
  let n = Array.length perm in
  assert (Array.length b = n);
  assert (Array.length scratch >= n);
  for i = 0 to n - 1 do
    scratch.(i) <- b.(perm.(i))
  done;
  substitute lu scratch n;
  Array.blit scratch 0 b 0 n

let lu_solve { lu; perm } b =
  let n = Array.length perm in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(perm.(i))) in
  substitute lu x n;
  x

let solve a b = lu_solve (lu_factor a) b

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let norm_2 x = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x)

let axpy alpha x y =
  for i = 0 to Array.length y - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let sub x y = Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let residual a x b = sub (mat_vec a x) b
