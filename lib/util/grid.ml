let linspace a b n =
  if n <= 0 then invalid_arg "Grid.linspace: n <= 0";
  if n = 1 then [ a ]
  else
    List.init n (fun i ->
        a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1)))

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Grid.logspace: non-positive bound";
  List.map exp (linspace (log a) (log b) n)

let arange a b step =
  if step = 0.0 then invalid_arg "Grid.arange: zero step";
  let rec loop x acc =
    if (step > 0.0 && x >= b) || (step < 0.0 && x <= b) then List.rev acc
    else loop (x +. step) (x :: acc)
  in
  loop a []

let decades lo hi per_decade =
  if per_decade <= 0 then invalid_arg "Grid.decades: per_decade <= 0";
  let span = log10 (hi /. lo) in
  let n = Int.max 2 (1 + int_of_float (ceil (span *. float_of_int per_decade))) in
  logspace lo hi n
