(* Deterministic, seed-driven fault injection.

   The injection sites live permanently on the hot paths (Newton, MNA
   factorization, parallel sweep workers, checkpoint writes) but are
   dormant unless armed: the site guard is one atomic load of [armed],
   so a production run pays a branch per site and nothing else.

   Determinism contract: every site consults [fire], which advances a
   per-fault query counter and fires on a schedule derived only from
   the configured seed and the counter value — never from time or
   Random. Two runs with the same seed, spec and [jobs = 1] therefore
   inject exactly the same faults at exactly the same points, which is
   what lets the chaos tests assert exact failure accounting. *)

module Tel = Telemetry

type fault =
  | Perturb_jacobian
  | Force_newton_diverge
  | Inject_nan_state
  | Fail_worker_task
  | Truncate_checkpoint

let all_faults =
  [ Perturb_jacobian; Force_newton_diverge; Inject_nan_state;
    Fail_worker_task; Truncate_checkpoint ]

let fault_name = function
  | Perturb_jacobian -> "perturb_jacobian"
  | Force_newton_diverge -> "force_newton_diverge"
  | Inject_nan_state -> "inject_nan_state"
  | Fail_worker_task -> "fail_worker_task"
  | Truncate_checkpoint -> "truncate_checkpoint"

let fault_of_name s =
  List.find_opt (fun f -> fault_name f = s) all_faults

let index = function
  | Perturb_jacobian -> 0
  | Force_newton_diverge -> 1
  | Inject_nan_state -> 2
  | Fail_worker_task -> 3
  | Truncate_checkpoint -> 4

let n_faults = 5

exception Injected_fault of { fault : fault }

let () =
  Printexc.register_printer (function
    | Injected_fault { fault } ->
      Some (Printf.sprintf "Chaos.Injected_fault(%s)" (fault_name fault))
    | _ -> None)

(* firing schedule for one fault class *)
type mode =
  | Every of int  (* fires once per window of [n] queries *)
  | Once of int   (* fires on exactly the [n]-th query, then never again *)

let c_injected = Tel.Counter.make "util.chaos.injected"

let c_per_class =
  Array.of_list
    (List.map
       (fun f -> Tel.Counter.make ("util.chaos.injected." ^ fault_name f))
       all_faults)

let armed_flag = Atomic.make false
let seed_v = Atomic.make 0
let modes = Array.init n_faults (fun _ -> Atomic.make (None : mode option))
let queries = Array.init n_faults (fun _ -> Atomic.make 0)
let injections = Array.init n_faults (fun _ -> Atomic.make 0)

let armed () = Atomic.get armed_flag
let seed () = Atomic.get seed_v
let injected f = Atomic.get injections.(index f)
let total_injected () = Array.fold_left (fun a c -> a + Atomic.get c) 0 injections

let reset_counts () =
  Array.iter (fun c -> Atomic.set c 0) queries;
  Array.iter (fun c -> Atomic.set c 0) injections

let disarm () =
  Atomic.set armed_flag false;
  Array.iter (fun m -> Atomic.set m None) modes

(* spec grammar: comma-separated [name], [name@N] (periodic, once per
   window of N queries) or [name@+N] (exactly once, on the N-th query) *)
let parse_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if entries = [] then invalid_arg "Chaos: empty fault spec";
  List.map
    (fun entry ->
      let name, mode =
        match String.index_opt entry '@' with
        | None -> (entry, Every 1)
        | Some i ->
          let name = String.sub entry 0 i in
          let arg = String.sub entry (i + 1) (String.length entry - i - 1) in
          let once, num =
            if String.length arg > 0 && arg.[0] = '+' then
              (true, String.sub arg 1 (String.length arg - 1))
            else (false, arg)
          in
          (match int_of_string_opt num with
          | Some n when n >= 1 -> (name, if once then Once n else Every n)
          | Some _ | None ->
            invalid_arg
              (Printf.sprintf "Chaos: bad fault period %S in %S" arg entry))
      in
      match fault_of_name name with
      | Some f -> (f, mode)
      | None -> invalid_arg (Printf.sprintf "Chaos: unknown fault class %S" name))
    entries

let configure ~seed spec =
  let parsed = parse_spec spec in
  Atomic.set armed_flag false;
  Array.iter (fun m -> Atomic.set m None) modes;
  reset_counts ();
  Atomic.set seed_v seed;
  List.iter (fun (f, m) -> Atomic.set modes.(index f) (Some m)) parsed;
  Atomic.set armed_flag true

(* DRAMSTRESS_CHAOS=seed:spec, e.g. "42:inject_nan_state@50,fail_worker_task@7" *)
let configure_from_env () =
  match Sys.getenv_opt "DRAMSTRESS_CHAOS" with
  | None | Some "" | Some ("off" | "0" | "false" | "no") -> disarm ()
  | Some v -> begin
    match String.index_opt v ':' with
    | None -> invalid_arg ("Chaos: DRAMSTRESS_CHAOS must be seed:spec, got " ^ v)
    | Some i ->
      let seed_s = String.sub v 0 i in
      let spec = String.sub v (i + 1) (String.length v - i - 1) in
      (match int_of_string_opt (String.trim seed_s) with
      | Some seed -> configure ~seed spec
      | None ->
        invalid_arg ("Chaos: bad DRAMSTRESS_CHAOS seed in " ^ v))
  end

let record_injection f =
  Atomic.incr injections.(index f);
  Tel.Counter.incr c_injected;
  Tel.Counter.incr c_per_class.(index f)

let fire f =
  if not (Atomic.get armed_flag) then false
  else begin
    let i = index f in
    match Atomic.get modes.(i) with
    | None -> false
    | Some mode ->
      (* queries are numbered from 1 *)
      let q = 1 + Atomic.fetch_and_add queries.(i) 1 in
      let hit =
        match mode with
        (* the seed rotates which query inside each window fires, so
           different seeds stress different points of the campaign *)
        | Every n -> (q - 1) mod n = Atomic.get seed_v mod n
        | Once n -> q = n
      in
      if hit then record_injection f;
      hit
  end
