(** Unit helpers and physical constants (SI throughout the library). *)

val kilo : float -> float
val mega : float -> float
val giga : float -> float
val milli : float -> float
val micro : float -> float
val nano : float -> float
val pico : float -> float
val femto : float -> float

(** [celsius_to_kelvin t] converts a temperature. *)
val celsius_to_kelvin : float -> float

(** [kelvin_to_celsius t] converts a temperature. *)
val kelvin_to_celsius : float -> float

(** Boltzmann constant over electron charge, [V/K]. *)
val k_over_q : float

(** [thermal_voltage t_kelvin] is kT/q in volts. *)
val thermal_voltage : float -> float

(** [pp_si ppf v] prints [v] with an SI prefix and 4 significant digits,
    e.g. [181.2 k] — used for resistances and times in reports. *)
val pp_si : Format.formatter -> float -> unit

(** [si_string v] is {!pp_si} to a string. *)
val si_string : float -> string
