let escape field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if needs_quote then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let to_string ~header rows =
  let line fields = String.concat "," (List.map escape fields) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let of_floats ~header rows =
  to_string ~header
    (List.map (List.map (fun v -> Printf.sprintf "%.9g" v)) rows)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
