(** Content-addressed persistent result store — a campaign directory.

    Where {!Checkpoint} is a single resumable file owned by one run, a
    [Store] is a durable directory meant to outlive any number of runs:
    results accumulate append-only across processes and are shared by
    fingerprint, so two campaigns (or a campaign and a direct sweep)
    that need the same simulated point compute it once.

    Layout under the store directory:

    - [records.jsonl] — the {!Checkpoint} machinery opened in
      append-only mode: one record per completed point, hex-float
      payloads, flushed per record, truncated-final-line tolerance,
      domain-safe. Every record is stamped with the engine identity of
      the binary that produced it ({!Build_info.identity} unless
      overridden), so stale-engine results are detectable.
    - [index.json] — a small summary (store name, engine, record count)
      rewritten atomically on {!close}; a convenience for humans and
      status commands, never the source of truth. A missing or stale
      index is rebuilt from [records.jsonl].

    Records are keyed by {!Checkpoint.digest_key} of a canonical point
    descriptor — the content address. Unlike a checkpoint, {!put} may
    overwrite (last record wins on reload), which lets failure markers
    be superseded by later successes while successes themselves are
    never recomputed.

    Activity feeds the same [util.checkpoint.*] telemetry counters as
    the checkpoint layer. *)

type t

(** [open_ ?engine ~name dir] opens (creating if needed) the store
    directory [dir]. Existing records are loaded; new records append.
    [name] labels the store in [index.json]; [engine] (default
    {!Build_info.identity}) is stamped onto every record written through
    this handle. *)
val open_ : ?engine:string -> name:string -> string -> t

val dir : t -> string
val name : t -> string

(** [engine t] is the identity stamped on records this handle writes. *)
val engine : t -> string

(** [entries t] is the number of distinct keys held (all engines). *)
val entries : t -> int

(** [checkpoint t] is the underlying {!Checkpoint} handle — the reuse
    hook: pass it as [?checkpoint] to {!Dramstress_core.Border.search},
    Table 1 generation or any other sweep layer and their per-point
    memoization lands in this store, content-addressed alongside the
    campaign's own records. *)
val checkpoint : t -> Checkpoint.t

(** [find t ~key] looks up the raw (undigested) descriptor [key]. *)
val find : t -> key:string -> string option

(** [put t ~key ?descr ?overwrite value] records a completed point
    under descriptor [key] and flushes. Default first-wins; with
    [overwrite] the last record wins (used for failure markers). *)
val put : t -> key:string -> ?descr:string -> ?overwrite:bool -> string -> unit

(** [memo t ~key ?descr ~encode ~decode f] — serve the decoded stored
    value if present, else compute, record and return it. *)
val memo :
  t ->
  key:string ->
  ?descr:string ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  (unit -> 'a) ->
  'a

(** [engines t] scans [records.jsonl] and returns the distinct engine
    identity strings found with their record counts, most frequent
    first — the staleness report: more than one entry means the store
    mixes results from different builds. Records written before engine
    stamping existed count under ["unknown"]. *)
val engines : t -> (string * int) list

(** [close t] flushes, closes the record channel and rewrites
    [index.json] (atomically, via a temp file + rename). *)
val close : t -> unit

(** What {!index} reads back from [index.json]. *)
type index = { ix_name : string; ix_engine : string; ix_records : int }

(** [index dirpath] reads the summary of a store directory without
    opening (or locking) the store; [None] if no readable index exists. *)
val index : string -> index option
