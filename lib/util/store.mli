(** Content-addressed persistent result store — a campaign directory.

    Where {!Checkpoint} is a single resumable file owned by one run, a
    [Store] is a durable directory meant to outlive any number of runs:
    results accumulate append-only across processes and are shared by
    fingerprint, so two campaigns (or a campaign and a direct sweep)
    that need the same simulated point compute it once.

    Layout under the store directory, single-file mode (the default):

    - [records.jsonl] — the {!Checkpoint} machinery opened in
      append-only mode: one record per completed point, hex-float
      payloads, flushed per record, truncated-final-line tolerance,
      domain-safe. Every record is stamped with the engine identity of
      the binary that produced it ({!Build_info.identity} unless
      overridden), so stale-engine results are detectable.
    - [index.json] — a small summary (store name, engine, record count,
      shard count) rewritten atomically on {!close}; a convenience for
      humans and status commands, never the source of truth. A missing
      or stale index is rebuilt from [records.jsonl] (counted on
      [util.store.index_recovered]).
    - [store.lock] — advisory inter-process lockfile: record appends
      through {!put}/{!merge} and index rewrites hold a [lockf] region
      on it, so concurrent processes sharing the directory cannot
      interleave an index rewrite with each other's appends.

    Sharded mode ([open_ ~shards:n] with [n >= 2], or autodetected on
    reopen) replaces the single [records.jsonl]/[index.json] pair with
    [shards/<xx>/records.jsonl] + [shards/<xx>/index.json], where a
    record's shard is the first two hex digits of its content digest
    modulo the shard count — a pure function of the key, so every
    process routes identically and a point's result lands next to its
    probe memos. Shards open lazily on first touch; the shard count is
    pinned at creation ([shards/.count]) and reopening with a different
    count is refused. The top-level [index.json] keeps the store-wide
    summary with its [shards] field set.

    Atomic index rewrites stage through a unique
    [index.json.tmp.<pid>.<seq>] file created with [O_EXCL]; orphaned
    temp files from killed writers are swept on open (counted on
    [util.store.orphan_tmp_removed]). A staging file whose embedded pid
    still names a live process is left alone — it belongs to another
    process mid-rewrite, not to a dead one.

    Records are keyed by {!Checkpoint.digest_key} of a canonical point
    descriptor — the content address. Unlike a checkpoint, {!put} may
    overwrite (last record wins on reload), which lets failure markers
    be superseded by later successes while successes themselves are
    never recomputed.

    Activity feeds the same [util.checkpoint.*] telemetry counters as
    the checkpoint layer, plus the [util.store.*] counters above. *)

type t

(** [open_ ?engine ?shards ~name dir] opens (creating if needed) the
    store directory [dir]. Existing records are loaded (single mode) or
    mapped lazily (sharded mode); new records append. [name] labels the
    store in [index.json]; [engine] (default {!Build_info.identity}) is
    stamped onto every record written through this handle.

    [shards >= 2] creates a fresh store sharded that many ways; [shards]
    absent (or [<= 1]) creates single-file. An existing store's layout
    always wins on reopen: a sharded directory reopens sharded at its
    pinned count regardless of [shards] (a {e different} explicit count
    raises [Invalid_argument]), and asking for shards on an existing
    single-file store raises [Invalid_argument]. *)
val open_ : ?engine:string -> ?shards:int -> name:string -> string -> t

val dir : t -> string
val name : t -> string

(** [engine t] is the identity stamped on records this handle writes. *)
val engine : t -> string

(** [shards t] is the pinned shard count, or [0] for a single-file
    store. *)
val shards : t -> int

(** [entries t] is the number of distinct keys held (all engines). For
    a sharded store this opens every shard that has records on disk. *)
val entries : t -> int

(** [checkpoint t] is the underlying {!Checkpoint} handle of a
    single-file store — the reuse hook: pass it as [?checkpoint] to
    {!Dramstress_core.Border.search}, Table 1 generation or any other
    sweep layer and their per-point memoization lands in this store,
    content-addressed alongside the campaign's own records. Raises
    [Invalid_argument] on a sharded store — use {!checkpoint_for}. *)
val checkpoint : t -> Checkpoint.t

(** [checkpoint_for t ~key] is the {!Checkpoint} handle that holds (or
    would hold) descriptor [key] — on a sharded store, the key's shard,
    opened lazily; on a single-file store, the one handle. Sweep layers
    working on one point should pass this as their [?checkpoint], so
    the point's probe memos shard together with its result. *)
val checkpoint_for : t -> key:string -> Checkpoint.t

(** [find t ~key] looks up the raw (undigested) descriptor [key]. *)
val find : t -> key:string -> string option

(** [put t ~key ?descr ?overwrite value] records a completed point
    under descriptor [key] and flushes, holding the inter-process store
    lock across the append. Default first-wins; with [overwrite] the
    last record wins (used for failure markers). *)
val put : t -> key:string -> ?descr:string -> ?overwrite:bool -> string -> unit

(** [memo t ~key ?descr ~encode ~decode f] — serve the decoded stored
    value if present, else compute, record and return it. *)
val memo :
  t ->
  key:string ->
  ?descr:string ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  (unit -> 'a) ->
  'a

(** [engines t] scans the record files and returns the distinct engine
    identity strings found with their record counts, most frequent
    first — the staleness report: more than one entry means the store
    mixes results from different builds. Records written before engine
    stamping existed count under ["unknown"]. *)
val engines : t -> (string * int) list

(** What {!merge} did, per source key. *)
type merge_stats = { added : int; replaced : int; kept : int }

(** [merge ~src ~dst] unions [src] into [dst] by content address,
    appending through [dst]'s handle (so an open destination sees the
    merged records immediately, and the inter-process lock is held per
    appended record). Winner rules per key present in both:

    - identical payloads — [dst] kept (counted [kept]);
    - differing payloads — the [src] copy wins {e only} when it was
      produced by the engine identity [dst]'s handle stamps (the
      current build) and the [dst] copy was not (counted [replaced]);
      every other conflict keeps [dst] (counted [kept]).

    Keys absent from [dst] are appended (counted [added]). A copied
    record keeps its {e original} engine stamp, so staleness remains
    detectable after any number of merges. [src] is read via raw file
    scans and is never written. *)
val merge : src:t -> dst:t -> merge_stats

(** [close t] flushes, closes the record channel(s) and rewrites the
    index summaries (atomically, via unique temp files + rename) under
    the inter-process lock. *)
val close : t -> unit

(** What {!index} reads back from [index.json]. [ix_shards] is [0] for
    a single-file store. *)
type index = {
  ix_name : string;
  ix_engine : string;
  ix_records : int;
  ix_shards : int;
}

(** [index dirpath] reads the summary of a store directory without
    opening (or locking) the store; [None] if no readable index exists. *)
val index : string -> index option
