(** Sparsity-aware LU with a reusable symbolic analysis.

    MNA matrices for one circuit topology keep the same nonzero pattern
    across every time step, Newton iteration and sweep lane; only the
    numeric values change. A {!t} therefore separates the two costs:

    - {e symbolic analysis} — run once per topology: a pivot order is
      taken from one dense partially-pivoted factorization of a
      representative matrix ({!Linalg.lu_factor}), the structural
      pattern is permuted accordingly and closed under elimination
      fill-in, and flat per-pivot / per-row index lists are built;
    - {e numeric refactorization} — run every {!factor}: the matrix rows
      are copied in pivot order and eliminated walking only the
      structural index lists, with no pivot search.

    A fixed pivot order can go stale when the matrix values drift far
    from the analysis point (a switch toggling between its on and off
    conductance, say). Every refactorization therefore guards its
    pivots: a pivot below [scale * 1e-10] aborts the elimination and
    triggers one fresh analysis at the current values — so accuracy
    degrades to at most one extra dense factorization, never to a wrong
    answer. A matrix that the dense factorization itself rejects raises
    {!Linalg.Singular} exactly like the dense path, and a matrix
    containing non-finite entries raises {!Linalg.Singular} without
    touching the stored analysis (so one poisoned solve cannot perturb
    the pivot order used by healthy ones — per-lane isolation in the
    ensemble engine depends on this).

    Activity feeds the [util.sparse_lu.symbolic_analyses] /
    [symbolic_reuse] / [numeric_refactor] / [reanalyses] telemetry
    counters and the always-on process-wide {!stats} block (the
    [--metrics] reconciliation mirror of [Ops.cache_stats]).

    A handle must not be shared between domains; each workspace owns
    its own. *)

type t

(** [make ~n ~pattern] prepares a handle for [n]x[n] systems whose
    structural nonzeros are [pattern] (which is copied). [pattern] must
    be the {e structural} pattern — every position any assembly could
    ever write, independent of current values (a MOSFET's [gm] may be
    numerically zero at one iterate and not the next). *)
val make : n:int -> pattern:bool array array -> t

(** [factor t a] (re)factors [a] under the stored analysis, creating or
    refreshing the analysis as needed. [a] is left intact. Raises
    [Linalg.Singular] when the system is genuinely rank-deficient or
    contains non-finite entries. *)
val factor : t -> Linalg.matrix -> unit

(** [solve t ~scratch b] overwrites [b] with the solution using the last
    {!factor}. [scratch] must hold at least [n] floats. *)
val solve : t -> scratch:float array -> float array -> unit

(** Process-wide activity totals, readable regardless of whether
    telemetry is enabled (like [Ops.cache_stats]): [analyses] counts
    first-time symbolic analyses, [reanalyses] the stale-pivot reruns,
    [numeric_refactor] every successful numeric factorization and
    [symbolic_reuse] the subset that reused an existing analysis. *)
type stats = {
  analyses : int;
  reanalyses : int;
  numeric_refactor : int;
  symbolic_reuse : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit
