(** Piecewise-linear interpolation over sampled curves. *)

(** A sampled curve: strictly increasing abscissae with their ordinates. *)
type t

(** [of_points pts] builds a curve from [(x, y)] samples; the list is
    sorted by [x]. Raises [Invalid_argument] on duplicate abscissae or an
    empty list. *)
val of_points : (float * float) list -> t

(** [of_arrays xs ys] like {!of_points} from parallel arrays. *)
val of_arrays : float array -> float array -> t

(** [of_sorted_arrays xs ys] builds a curve directly over the given
    arrays, which must already be strictly increasing in [xs] — no sort,
    no copy (the arrays are aliased, so callers must not mutate them).
    O(n) validation only; raises [Invalid_argument] when out of order.
    This is the hot-path constructor for simulation traces, whose time
    axis is increasing by construction. *)
val of_sorted_arrays : float array -> float array -> t

(** [eval c x] linearly interpolates; clamps outside the sampled range. *)
val eval : t -> float -> float

(** [points c] returns the samples in increasing [x] order. *)
val points : t -> (float * float) list

(** [crossings c level] returns the abscissae where the curve crosses
    [level], linearly interpolated, in increasing order. Touch points that
    do not cross are excluded; exact hits at a sample are included once. *)
val crossings : t -> float -> float list

(** [first_crossing c level] is the smallest crossing or [None]. *)
val first_crossing : t -> float -> float option

(** [intersections a b] returns the abscissae where curves [a] and [b]
    intersect, by finding sign changes of their difference on the union of
    their sample grids. *)
val intersections : t -> t -> float list

(** [map_y f c] transforms ordinates. *)
val map_y : (float -> float) -> t -> t
