(** Supervised pool of forked worker {e processes}.

    Where {!Par} fans work out over domains {e inside} the current
    process, a [Procpool] puts each unit of work behind a process
    boundary: a worker that segfaults, gets OOM-killed, or wedges takes
    down nothing but itself. The parent supervises the pool — it
    restarts crashed workers with jittered exponential backoff,
    re-dispatches the orphaned task to a fresh worker, and after
    [max_task_deaths] consecutive worker deaths on the {e same} task
    gives up on that task alone ([`Worker_lost]), never on the pool.

    Tasks and results are opaque strings exchanged over pipes in
    length-prefixed frames; the [worker] callback runs in the forked
    child and must be self-contained (it sees a copy-on-write snapshot
    of the parent at {!create} / restart time, plus the task bytes).

    Fork discipline: OCaml refuses [Unix.fork] once any domain has ever
    been spawned, so a pool must be created — and will only ever
    restart workers — in a process that does all its parallelism
    through the pool itself (or through threads). The campaign service
    daemon is exactly that shape.

    Counters: [util.procpool.tasks], [util.procpool.worker_deaths],
    [util.procpool.worker_restarts], [util.procpool.tasks_lost]. *)

type t

(** The typed quarantine error: a task killed [n] consecutive workers
    and was given up on. {!exec} reports it as [`Worker_lost n]; this
    exception is provided (with a registered printer) for callers that
    surface the loss through an exception-shaped failure path. *)
exception Worker_lost of int

(** [create ~workers ~worker ()] forks [workers] child processes, each
    running a serve loop around [worker], and starts the supervisor
    thread. [SIGPIPE] is set to ignore (a dead worker must surface as
    [EPIPE]/EOF, not a fatal signal).

    - [worker ~attempt payload] runs {e in the child}; [attempt] is the
      number of workers this task has already killed (0 on first
      dispatch), so deterministic fault injection can target a retry.
      An exception escaping [worker] is caught in the child and
      reported as [`Worker_error] — only process death trips the
      supervision machinery.
    - [max_task_deaths] is K: a task whose worker dies K times is
      quarantined as [`Worker_lost K] (default 3).
    - [backoff] is [(base, cap)] seconds for worker restarts: after [d]
      consecutive deaths a slot restarts in
      [min cap (base * 2^(d-1))] scaled by a uniform jitter in
      [0.5, 1.5) (default [(0.1, 5.0)]).
    - [task_timeout] — the heartbeat: a worker busy on one task longer
      than this is SIGKILLed by the supervisor and the death counts
      like any crash (default: no limit; per-point wall-clock budgets
      inside the worker are the first line of defence).
    - [on_worker_restart] is called (from the supervisor thread) each
      time a replacement worker is forked. *)
val create :
  ?max_task_deaths:int ->
  ?backoff:float * float ->
  ?task_timeout:float ->
  ?on_worker_restart:(unit -> unit) ->
  workers:int ->
  worker:(attempt:int -> string -> string) ->
  unit ->
  t

(** [size t] is the number of worker slots. *)
val size : t -> int

(** [exec t task] dispatches [task] to an idle worker (blocking while
    all are busy) and returns its result. Thread-safe: any number of
    threads may [exec] concurrently; each bounded by the pool width.

    - [`Worker_error msg] — the worker ran the task and it raised;
      [msg] is the printed exception. The worker survives.
    - [`Worker_lost k] — [k] consecutive workers died executing this
      task; the task is quarantined, the pool lives on. *)
val exec :
  t -> string -> (string, [ `Worker_lost of int | `Worker_error of string ]) result

(** [shutdown t] closes every worker's task pipe (an idle worker exits
    on EOF; a busy worker finishes its task first), reaps them all and
    stops the supervisor. Further {!exec} calls return [`Worker_error]. *)
val shutdown : t -> unit
