(* Content-addressed persistent result store: a directory holding an
   append-only Checkpoint file plus a small rewritable index summary.
   See store.mli for the layout contract. *)

let records_file = "records.jsonl"
let index_file = "index.json"

type t = {
  dir : string;
  name : string;
  engine : string;
  ck : Checkpoint.t;
}

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

type index = { ix_name : string; ix_engine : string; ix_records : int }

(* index.json is one flat object; reuse the tolerant checkpoint field
   parser for the string fields and scan by hand for the one int *)
let index dirpath =
  let path = Filename.concat dirpath index_file in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents ->
    let line = String.concat " " (String.split_on_char '\n' contents) in
    let int_field name =
      let marker = Printf.sprintf "\"%s\":" name in
      let ln = String.length line and lm = String.length marker in
      let rec find i =
        if i + lm > ln then None
        else if String.sub line i lm = marker then begin
          let j = ref (i + lm) in
          while !j < ln && line.[!j] = ' ' do incr j done;
          let k = ref !j in
          while !k < ln && (match line.[!k] with '0' .. '9' -> true | _ -> false) do
            incr k
          done;
          int_of_string_opt (String.sub line !j (!k - !j))
        end
        else find (i + 1)
      in
      find 0
    in
    (match (Checkpoint.field line "name", int_field "records") with
    | Some ix_name, Some ix_records ->
      let ix_engine =
        Option.value ~default:"unknown" (Checkpoint.field line "engine")
      in
      Some { ix_name; ix_engine; ix_records }
    | _, _ -> None)

let write_index t =
  let path = Filename.concat t.dir index_file in
  let tmp = path ^ ".tmp" in
  (* no space after the colons: {!Checkpoint.field} reads these back *)
  let json =
    Printf.sprintf
      "{\n  \"name\":\"%s\",\n  \"engine\":\"%s\",\n  \"records\":%d\n}\n"
      (Telemetry.json_escape t.name)
      (Telemetry.json_escape t.engine)
      (Checkpoint.entries t.ck)
  in
  Out_channel.with_open_text tmp (fun oc -> output_string oc json);
  (* atomic publish: readers see the old or the new index, never half *)
  Sys.rename tmp path

let open_ ?engine ~name dirpath =
  let engine =
    match engine with Some e -> e | None -> Build_info.identity
  in
  mkdir_p dirpath;
  let ck =
    Checkpoint.open_ ~resume:true
      ~extra:[ ("engine", engine) ]
      (Filename.concat dirpath records_file)
  in
  let t = { dir = dirpath; name; engine; ck } in
  write_index t;
  t

let dir t = t.dir
let name t = t.name
let engine t = t.engine
let entries t = Checkpoint.entries t.ck
let checkpoint t = t.ck

let find t ~key = Checkpoint.find t.ck (Checkpoint.digest_key key)

let put t ~key ?descr ?overwrite value =
  Checkpoint.record t.ck ~key:(Checkpoint.digest_key key) ?descr ?overwrite
    value

let memo t ~key ?descr ~encode ~decode f =
  Checkpoint.memo (Some t.ck) ~key ?descr ~encode ~decode f

let engines t =
  let tally = Hashtbl.create 4 in
  let path = Filename.concat t.dir records_file in
  (match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if Checkpoint.field line "key" <> None then begin
              let e =
                Option.value ~default:"unknown"
                  (Checkpoint.field line "engine")
              in
              Hashtbl.replace tally e
                (1 + Option.value ~default:0 (Hashtbl.find_opt tally e))
            end
          done
        with End_of_file -> ()));
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let close t =
  write_index t;
  Checkpoint.close t.ck
