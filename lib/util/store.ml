(* Content-addressed persistent result store: a directory holding one
   (or, sharded, many) append-only Checkpoint files plus small
   rewritable index summaries. See store.mli for the layout contract.

   Concurrency model, from inner to outer:

   - each Checkpoint handle is domain-safe on its own (internal mutex);
   - [shard_lock] serializes lazy shard opening within this process;
   - [io_lock] + an advisory [Unix.lockf] region on [store.lock]
     serialize record appends and index rewrites across *processes*
     sharing the directory (lockf record locks are per-process, so the
     process-local mutex must wrap the lockf section — two domains of
     one process both "hold" the same process lock otherwise). *)

module Tel = Telemetry

let records_file = "records.jsonl"
let index_file = "index.json"
let lock_file = "store.lock"
let shards_dirname = "shards"
let shard_count_file = ".count"

(* index rewritten from the append-only log because the two disagreed —
   the signature of a kill between the last append and close *)
let c_recovered = Tel.Counter.make "util.store.index_recovered"

(* staged index temp files left behind by a killed writer, removed on
   the next open of the directory *)
let c_orphans = Tel.Counter.make "util.store.orphan_tmp_removed"

let c_merge_added = Tel.Counter.make "util.store.merge_added"
let c_merge_replaced = Tel.Counter.make "util.store.merge_replaced"
let c_merge_kept = Tel.Counter.make "util.store.merge_kept"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

type index = {
  ix_name : string;
  ix_engine : string;
  ix_records : int;
  ix_shards : int;
}

(* index.json is one flat object; reuse the tolerant checkpoint field
   parser for the string fields and scan by hand for the int fields *)
let index dirpath =
  let path = Filename.concat dirpath index_file in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents ->
    let line = String.concat " " (String.split_on_char '\n' contents) in
    let int_field name =
      let marker = Printf.sprintf "\"%s\":" name in
      let ln = String.length line and lm = String.length marker in
      let rec find i =
        if i + lm > ln then None
        else if String.sub line i lm = marker then begin
          let j = ref (i + lm) in
          while !j < ln && line.[!j] = ' ' do incr j done;
          let k = ref !j in
          while !k < ln && (match line.[!k] with '0' .. '9' -> true | _ -> false) do
            incr k
          done;
          int_of_string_opt (String.sub line !j (!k - !j))
        end
        else find (i + 1)
      in
      find 0
    in
    (match (Checkpoint.field line "name", int_field "records") with
    | Some ix_name, Some ix_records ->
      let ix_engine =
        Option.value ~default:"unknown" (Checkpoint.field line "engine")
      in
      let ix_shards = Option.value ~default:0 (int_field "shards") in
      Some { ix_name; ix_engine; ix_records; ix_shards }
    | _, _ -> None)

(* Unique staging file for the atomic index rewrite. A fixed "tmp" name
   next to the target lets two concurrent writers clobber each other's
   staged bytes before the rename; PID + per-process counter + O_EXCL
   guarantees each writer stages privately. Orphans from killed writers
   match the "index.json.tmp" prefix and are swept on open. *)
let tmp_seq = Atomic.make 0

let with_unique_tmp path write =
  let rec attempt () =
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_seq 1)
    in
    match Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> attempt ()
    | fd ->
      let oc = Unix.out_channel_of_descr fd in
      (try
         write oc;
         flush oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      close_out oc;
      (* atomic publish: readers see the old or the new file, never half *)
      Sys.rename tmp path
  in
  attempt ()

(* a staging file is an orphan only if its writer is gone: the name
   embeds the writer's pid, and a pid that still answers [kill 0] (or
   refuses with EPERM) marks a live process mid-rewrite in another
   process sharing the store — deleting its staging file would make its
   rename fail. Unparseable names are legacy junk and removed. *)
let tmp_writer_alive n =
  match String.split_on_char '.' n with
  (* index.json.tmp.<pid>.<seq> *)
  | [ _; _; _; pid; _ ] -> (
    match int_of_string_opt pid with
    | None -> false
    | Some pid -> (
      match Unix.kill pid 0 with
      | () -> true
      | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
      | exception Unix.Unix_error (_, _, _) -> false))
  | _ -> false

let clean_orphan_tmps dirpath =
  match Sys.readdir dirpath with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun n ->
        if
          String.starts_with ~prefix:(index_file ^ ".tmp") n
          && not (tmp_writer_alive n)
        then begin
          (try Sys.remove (Filename.concat dirpath n) with Sys_error _ -> ());
          Tel.Counter.incr c_orphans
        end)
      names

let write_index_at ~dirpath ~name ~engine ~records ~shards =
  let path = Filename.concat dirpath index_file in
  (* no space after the colons: {!Checkpoint.field} reads these back *)
  let json =
    Printf.sprintf
      "{\n\
      \  \"name\":\"%s\",\n\
      \  \"engine\":\"%s\",\n\
      \  \"records\":%d,\n\
      \  \"shards\":%d\n\
       }\n"
      (Tel.json_escape name) (Tel.json_escape engine) records shards
  in
  with_unique_tmp path (fun oc -> output_string oc json)

type backend =
  | Single of Checkpoint.t
  | Sharded of { count : int; slots : Checkpoint.t option array }

type t = {
  dir : string;
  name : string;
  engine : string;
  backend : backend;
  shard_lock : Mutex.t;
  io_lock : Mutex.t;
  lock_fd : Unix.file_descr;
  mutable closed : bool;
}

let shard_dir dir ix =
  Filename.concat (Filename.concat dir shards_dirname) (Printf.sprintf "%02x" ix)

(* route by the first two hex characters of the content digest, so a
   record's shard is a pure function of its key — every process agrees,
   and a point's border result and its probe memos land together *)
let shard_of_digest count digest =
  let prefix =
    if String.length digest >= 2 then
      int_of_string_opt ("0x" ^ String.sub digest 0 2)
    else None
  in
  (match prefix with Some p -> p | None -> Hashtbl.hash digest) mod count

(* open one checkpoint directory (the store root in single mode, or a
   shard), recovering its index from the log when the two disagree *)
let open_checkpoint ~engine ~name ~shards dirpath =
  mkdir_p dirpath;
  clean_orphan_tmps dirpath;
  let prior = index dirpath in
  let ck =
    Checkpoint.open_ ~resume:true
      ~extra:[ ("engine", engine) ]
      (Filename.concat dirpath records_file)
  in
  (match prior with
  | Some ix when ix.ix_records <> Checkpoint.entries ck ->
    (* the log is the source of truth; the index only summarizes it *)
    Tel.Counter.incr c_recovered;
    write_index_at ~dirpath ~name ~engine ~records:(Checkpoint.entries ck)
      ~shards
  | Some _ | None -> ());
  ck

(* the shard count is pinned at creation in shards/.count (and echoed in
   index.json): routing is digest mod count, so reopening with a
   different count would silently split every key's history in two *)
let create_shard_count sh_dir n =
  let cf = Filename.concat sh_dir shard_count_file in
  match Unix.openfile cf [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
    let oc = Unix.out_channel_of_descr fd in
    output_string oc (string_of_int n ^ "\n");
    close_out oc;
    n
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> (
    (* lost the creation race: defer to whoever won *)
    match In_channel.with_open_text cf In_channel.input_all with
    | s -> Option.value ~default:n (int_of_string_opt (String.trim s))
    | exception Sys_error _ -> n)

let read_shard_count dirpath =
  let cf = Filename.concat (Filename.concat dirpath shards_dirname) shard_count_file in
  match In_channel.with_open_text cf In_channel.input_all with
  | s -> int_of_string_opt (String.trim s)
  | exception Sys_error _ -> (
    match index dirpath with
    | Some ix when ix.ix_shards > 0 -> Some ix.ix_shards
    | Some _ | None -> None)

let open_ ?engine ?shards ~name dirpath =
  let engine =
    match engine with Some e -> e | None -> Build_info.identity
  in
  mkdir_p dirpath;
  clean_orphan_tmps dirpath;
  let sh_dir = Filename.concat dirpath shards_dirname in
  let existing_sharded =
    if Sys.file_exists sh_dir && Sys.is_directory sh_dir then
      read_shard_count dirpath
    else None
  in
  let existing_single =
    Sys.file_exists (Filename.concat dirpath records_file)
  in
  let backend_kind =
    match (existing_sharded, shards) with
    | Some n, None -> `Sharded n
    | Some n, Some m when m = n || m <= 1 && n >= 1 -> `Sharded n
    | Some n, Some m ->
      invalid_arg
        (Printf.sprintf
           "Store.open_: %s is sharded %d ways; cannot reopen with shards=%d"
           dirpath n m)
    | None, (None | Some 1) -> `Single
    | None, Some m when m <= 0 -> `Single
    | None, Some m ->
      if existing_single then
        invalid_arg
          (Printf.sprintf
             "Store.open_: %s is a single-file store; cannot reopen sharded"
             dirpath)
      else `Fresh_sharded m
  in
  let lock_fd =
    Unix.openfile
      (Filename.concat dirpath lock_file)
      [ Unix.O_RDWR; Unix.O_CREAT ]
      0o644
  in
  let backend =
    match backend_kind with
    | `Single ->
      Single (open_checkpoint ~engine ~name ~shards:0 dirpath)
    | `Sharded n -> Sharded { count = n; slots = Array.make n None }
    | `Fresh_sharded n ->
      mkdir_p sh_dir;
      let n = create_shard_count sh_dir n in
      Sharded { count = n; slots = Array.make n None }
  in
  let t =
    {
      dir = dirpath;
      name;
      engine;
      backend;
      shard_lock = Mutex.create ();
      io_lock = Mutex.create ();
      lock_fd;
      closed = false;
    }
  in
  (match backend with
  | Single ck ->
    write_index_at ~dirpath ~name ~engine ~records:(Checkpoint.entries ck)
      ~shards:0
  | Sharded { count; _ } -> (
    (* top-level summary only; shard indexes are written lazily *)
    match index dirpath with
    | Some ix when ix.ix_shards = count -> ()
    | Some _ | None ->
      write_index_at ~dirpath ~name ~engine ~records:0 ~shards:count));
  t

let dir t = t.dir
let name t = t.name
let engine t = t.engine

let shards t =
  match t.backend with Single _ -> 0 | Sharded { count; _ } -> count

(* advisory inter-process exclusion around appends and index rewrites.
   lockf locks are owned by the process, not the thread, so the
   process-local [io_lock] must serialize domains around the region —
   otherwise a second domain would "acquire" a lock its process already
   holds and the two would interleave freely. *)
let with_flock t f =
  Mutex.protect t.io_lock (fun () ->
      Unix.lockf t.lock_fd Unix.F_LOCK 0;
      Fun.protect
        ~finally:(fun () ->
          try Unix.lockf t.lock_fd Unix.F_ULOCK 0
          with Unix.Unix_error _ -> ())
        f)

let shard_checkpoint t ix =
  match t.backend with
  | Single ck -> ck
  | Sharded { slots; _ } ->
    Mutex.protect t.shard_lock (fun () ->
        match slots.(ix) with
        | Some ck -> ck
        | None ->
          let ck =
            open_checkpoint ~engine:t.engine ~name:t.name ~shards:0
              (shard_dir t.dir ix)
          in
          slots.(ix) <- Some ck;
          ck)

let route_digest t digest =
  match t.backend with
  | Single ck -> ck
  | Sharded { count; _ } -> shard_checkpoint t (shard_of_digest count digest)

let checkpoint t =
  match t.backend with
  | Single ck -> ck
  | Sharded _ ->
    invalid_arg "Store.checkpoint: store is sharded; use checkpoint_for"

let checkpoint_for t ~key = route_digest t (Checkpoint.digest_key key)

let entries t =
  match t.backend with
  | Single ck -> Checkpoint.entries ck
  | Sharded { count; slots } ->
    let sum = ref 0 in
    for ix = 0 to count - 1 do
      match slots.(ix) with
      | Some ck -> sum := !sum + Checkpoint.entries ck
      | None ->
        (* only open shards that actually hold records *)
        if Sys.file_exists (Filename.concat (shard_dir t.dir ix) records_file)
        then sum := !sum + Checkpoint.entries (shard_checkpoint t ix)
    done;
    !sum

let find t ~key =
  let d = Checkpoint.digest_key key in
  Checkpoint.find (route_digest t d) d

let put t ~key ?descr ?overwrite value =
  let d = Checkpoint.digest_key key in
  let ck = route_digest t d in
  with_flock t (fun () -> Checkpoint.record ck ~key:d ?descr ?overwrite value)

let memo t ~key ?descr ~encode ~decode f =
  let d = Checkpoint.digest_key key in
  Checkpoint.memo (Some (route_digest t d)) ~key ?descr ~encode ~decode f

let record_files t =
  match t.backend with
  | Single _ -> [ Filename.concat t.dir records_file ]
  | Sharded { count; _ } ->
    List.init count (fun ix -> Filename.concat (shard_dir t.dir ix) records_file)
    |> List.filter Sys.file_exists

let engines t =
  let tally = Hashtbl.create 4 in
  List.iter
    (fun file ->
      Checkpoint.scan file (fun ~descr:_ ~engine ~key:_ ~value:_ ->
          let e = Option.value ~default:"unknown" engine in
          Hashtbl.replace tally e
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally e))))
    (record_files t);
  Hashtbl.fold (fun e n acc -> (e, n) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

type merge_stats = { added : int; replaced : int; kept : int }

(* union by content address, engine-identity staleness deciding
   conflicts: a key present in both stores keeps the destination's
   record unless the source copy was produced by the engine the
   destination handle itself stamps (i.e. the current build) and the
   destination copy was not — then the current-engine result wins. The
   copied record keeps its original engine stamp (the ?extra override),
   so staleness stays detectable after any number of merges. *)
let merge ~src ~dst =
  let scan_map t =
    let m = Hashtbl.create 256 in
    List.iter
      (fun file ->
        Checkpoint.scan file (fun ~descr ~engine ~key ~value ->
            (* replay in file order: last record for a key wins, same as
               the load path *)
            Hashtbl.replace m key (value, engine, descr)))
      (record_files t);
    m
  in
  let smap = scan_map src and dmap = scan_map dst in
  let added = ref 0 and replaced = ref 0 and kept = ref 0 in
  Hashtbl.iter
    (fun key (v, eng, descr) ->
      let stamp = [ ("engine", Option.value ~default:"unknown" eng) ] in
      match Hashtbl.find_opt dmap key with
      | None ->
        let ck = route_digest dst key in
        with_flock dst (fun () ->
            Checkpoint.record ck ~key ?descr ~extra:stamp v);
        incr added
      | Some (dv, _, _) when dv = v -> incr kept
      | Some (_, deng, _) ->
        let src_is_current = eng = Some dst.engine in
        let dst_is_current = deng = Some dst.engine in
        if src_is_current && not dst_is_current then begin
          let ck = route_digest dst key in
          with_flock dst (fun () ->
              Checkpoint.record ck ~key ?descr ~overwrite:true ~extra:stamp v);
          incr replaced
        end
        else incr kept)
    smap;
  Tel.Counter.add c_merge_added !added;
  Tel.Counter.add c_merge_replaced !replaced;
  Tel.Counter.add c_merge_kept !kept;
  { added = !added; replaced = !replaced; kept = !kept }

(* total for the top-level index of a sharded store: live counts for
   open shards, on-disk summaries (or a scan when even those are
   missing) for the rest *)
let total_records t =
  match t.backend with
  | Single ck -> Checkpoint.entries ck
  | Sharded { count; slots } ->
    let sum = ref 0 in
    for ix = 0 to count - 1 do
      match slots.(ix) with
      | Some ck -> sum := !sum + Checkpoint.entries ck
      | None -> (
        let sd = shard_dir t.dir ix in
        match index sd with
        | Some i -> sum := !sum + i.ix_records
        | None ->
          let keys = Hashtbl.create 64 in
          Checkpoint.scan (Filename.concat sd records_file)
            (fun ~descr:_ ~engine:_ ~key ~value:_ ->
              Hashtbl.replace keys key ());
          sum := !sum + Hashtbl.length keys)
    done;
    !sum

let close t =
  if not t.closed then begin
    t.closed <- true;
    with_flock t (fun () ->
        match t.backend with
        | Single ck ->
          write_index_at ~dirpath:t.dir ~name:t.name ~engine:t.engine
            ~records:(Checkpoint.entries ck) ~shards:0;
          Checkpoint.close ck
        | Sharded { count; slots } ->
          for ix = 0 to count - 1 do
            match slots.(ix) with
            | Some ck ->
              write_index_at ~dirpath:(shard_dir t.dir ix) ~name:t.name
                ~engine:t.engine ~records:(Checkpoint.entries ck) ~shards:0;
              Checkpoint.close ck
            | None -> ()
          done;
          write_index_at ~dirpath:t.dir ~name:t.name ~engine:t.engine
            ~records:(total_records t) ~shards:count);
    Unix.close t.lock_fd
  end
