(** Parallel sweeps over OCaml 5 domains — no external dependencies.

    [f] runs concurrently in up to [jobs] domains, so it must be
    domain-safe: pure computations, or computations whose shared state
    is synchronized (the {!Dramstress_dram.Ops} memo cache is
    mutex-guarded for exactly this reason).

    When {!Telemetry} is enabled, every sweep contributes to the
    [util.par.sweeps] / [util.par.tasks] / [util.par.domains_spawned]
    counters and the [util.par.worker_idle_ms] /
    [util.par.tasks_per_worker] histograms. *)

(** [resolve_jobs ?jobs ()] is the single domain-count resolution point
    used by every sweep layer. Precedence:

    + the explicit [jobs] argument (clamped to at least 1),
    + the [DRAMSTRESS_JOBS] environment variable when it parses as a
      positive integer,
    + [Domain.recommended_domain_count ()].

    A resolved value of [1] disables parallelism everywhere it is used. *)
val resolve_jobs : ?jobs:int -> unit -> int

(** [clamp_count ?explicit ~env ~default ()] is the clamping/validation
    helper behind {!resolve_jobs} and {!resolve_lanes}: an [explicit]
    value is clamped to at least 1; otherwise the [env] environment
    variable is consulted and anything that does not parse as a positive
    integer (junk text, [0], negatives) degrades to [default ()] —
    itself always at least 1 — with a once-per-variable warning on
    stderr. An unset or empty variable is not junk: it takes the
    default silently. *)
val clamp_count :
  ?explicit:int -> env:string -> default:(unit -> int) -> unit -> int

(** [env_warnings ()] lists the [(variable, rejected value)] pairs that
    have been warned about so far, oldest first — the test hook for the
    once-per-variable stderr warning. *)
val env_warnings : unit -> (string * string) list

(** [reset_env_warnings ()] clears the warned-set and the log, so tests
    can observe the warning again. *)
val reset_env_warnings : unit -> unit

(** [resolve_lanes ?lanes ()] resolves the ensemble batch width with the
    same precedence and degradation rules as {!resolve_jobs}:

    + the explicit [lanes] argument (clamped to at least 1),
    + the [DRAMSTRESS_LANES] environment variable when it parses as a
      positive integer,
    + {!default_lanes}.

    A resolved value of [1] disables the batched ensemble path. *)
val resolve_lanes : ?lanes:int -> unit -> int

(** The default ensemble batch width ([16]) when neither an explicit
    lane count nor [DRAMSTRESS_LANES] is given. *)
val default_lanes : int

(** [default_jobs ()] is [resolve_jobs ()] — kept for callers of the
    original API; new code should use {!resolve_jobs}. *)
val default_jobs : unit -> int

(** [chunks ~size xs] splits [xs] into consecutive runs of at most
    [size] elements, preserving order ([List.concat (chunks ~size xs) =
    xs]). Batched sweeps use it to cut a lane list into ensemble-width
    chunks before fanning the chunks out over domains. Raises
    [Invalid_argument] when [size < 1]. *)
val chunks : size:int -> 'a list -> 'a list list

(** [parallel_map ?jobs f xs] maps [f] over [xs] using up to [jobs]
    domains (default {!resolve_jobs}); items are self-scheduled one at a
    time so uneven per-item costs balance. The result order matches the
    input order exactly, as with [List.map]. With [jobs = 1] (or on a
    single-core machine, or lists shorter than 2) this degrades to
    sequential [List.map] with no domain spawned.

    If [f] raises, the first exception is re-raised in the caller after
    all domains have drained; remaining unstarted items are skipped. The
    original backtrace is captured in the worker domain and restored on
    re-raise ([Printexc.raise_with_backtrace]), so [OCAMLRUNPARAM=b]
    shows where the failure actually originated. *)
val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_iter ?jobs f xs] is {!parallel_map} ignoring results. *)
val parallel_iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

(** [concurrent_map ?jobs f xs] is {!parallel_map} fanned out over
    {e systhreads} instead of domains: same self-scheduling cursor, same
    order guarantee, same first-failure semantics (backtrace preserved).

    Threads share one runtime lock, so this buys nothing for CPU-bound
    OCaml code — it exists for work that {e blocks outside the runtime}
    (waiting on a {!Procpool} worker over a pipe, socket I/O). Crucially
    it spawns no domain, so a process that must stay fork-capable (the
    sandboxed service daemon) can still fan out. *)
val concurrent_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_map_outcomes ?jobs ?retries_of f xs] is the fault-tolerant
    variant: a raise from [f x] becomes [Outcome.Failed] for that slot —
    counted on [util.par.task_failures] — and every other item still
    runs. Result order matches input order. [retries_of] extracts the
    retry count recorded in the failure from the exception (e.g.
    {!Dramstress_dram.Ops.retries_of} for simulator errors that already
    went through the degradation policy); it defaults to [fun _ -> 0]. *)
val parallel_map_outcomes :
  ?jobs:int ->
  ?retries_of:(exn -> int) ->
  ('a -> 'b) ->
  'a list ->
  ('a, 'b) Outcome.t list
