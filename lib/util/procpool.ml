(* Supervised pool of forked worker processes.

   One slot per worker. An [exec] thread owns a slot for the duration
   of one task: it writes the task down the slot's pipe and blocks
   reading the reply, so worker death is observed as EOF (or EPIPE) by
   exactly the thread that cares. The supervisor thread only does
   housekeeping — reaping corpses, detecting idle deaths via waitpid,
   killing wedged workers past the task timeout, and reforking dead
   slots once their backoff expires. *)

module Tel = Telemetry

let c_tasks = Tel.Counter.make "util.procpool.tasks"
let c_deaths = Tel.Counter.make "util.procpool.worker_deaths"
let c_restarts = Tel.Counter.make "util.procpool.worker_restarts"
let c_lost = Tel.Counter.make "util.procpool.tasks_lost"

exception Worker_lost of int

let () =
  Printexc.register_printer (function
    | Worker_lost n ->
      Some (Printf.sprintf "Worker_lost (%d worker death(s) on this point)" n)
    | _ -> None)

(* ---- framing: 8-hex-digit length prefix, same shape as the campaign
   service protocol but self-contained (util must not depend on it) *)

let max_frame = 64 * 1024 * 1024

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd s =
  let payload = Bytes.of_string s in
  let header = Bytes.of_string (Printf.sprintf "%08x" (Bytes.length payload)) in
  write_all fd header 0 8;
  write_all fd payload 0 (Bytes.length payload)

(* [None] on EOF, short read or garbage — all of which mean the peer
   process is gone or broken, and for a pipe peer that is death *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Some buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> None
  in
  go 0

let read_frame fd =
  match read_exact fd 8 with
  | None -> None
  | Some h -> (
    match int_of_string_opt ("0x" ^ Bytes.to_string h) with
    | None -> None
    | Some len when len < 0 || len > max_frame -> None
    | Some len -> Option.map Bytes.to_string (read_exact fd len))

(* ---- pool structure ---- *)

type wstatus =
  | Idle
  | Busy of float  (* task start, for the wedge heartbeat *)
  | Dead of float  (* restart due time *)

type slot = {
  id : int;
  mutable pid : int;
  mutable to_worker : Unix.file_descr;
  mutable from_worker : Unix.file_descr;
  mutable status : wstatus;
  mutable consec_deaths : int;  (* resets on a completed task *)
}

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  slots : slot array;
  worker_fn : attempt:int -> string -> string;
  max_task_deaths : int;
  backoff_base : float;
  backoff_cap : float;
  task_timeout : float option;
  on_worker_restart : unit -> unit;
  rng : Random.State.t;  (* guarded by [lock] *)
  mutable shutting_down : bool;
  mutable supervisor : Thread.t option;
}

let size t = Array.length t.slots

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Child-side hygiene: a worker forked from a live daemon inherits
   copies of every open descriptor — client connections, the listener,
   store files. A long-lived worker holding a dup of a client socket
   would keep that peer from ever seeing EOF, so drop everything except
   our own two pipe ends (and stdio). [Unix.file_descr] is the raw fd
   int on Unix, which is the only platform forking makes sense on. *)
let close_inherited_fds ~keep =
  for i = 3 to 1023 do
    let fd : Unix.file_descr = Obj.magic (i : int) in
    if not (List.mem fd keep) then close_quietly fd
  done

(* fork one worker into [slot]; caller holds the pool lock (or is
   creating the pool single-threadedly) *)
let fork_worker pool slot =
  let task_r, task_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    close_quietly task_w;
    close_quietly res_r;
    close_inherited_fds ~keep:[ task_r; res_w ];
    (* the parent's handlers (drain-on-SIGTERM, ...) make no sense
       here, and may reference descriptors we just closed *)
    Sys.set_signal Sys.sigterm Sys.Signal_default;
    Sys.set_signal Sys.sigint Sys.Signal_ignore;
    let rec serve () =
      match read_frame task_r with
      | None -> ()  (* parent closed the pipe: clean retirement *)
      | Some attempt_s -> (
        match read_frame task_r with
        | None -> ()
        | Some payload ->
          let attempt =
            match int_of_string_opt attempt_s with Some a -> a | None -> 0
          in
          let reply =
            match pool.worker_fn ~attempt payload with
            | v -> "K" ^ v
            | exception e -> "E" ^ Printexc.to_string e
          in
          write_frame res_w reply;
          serve ())
    in
    (try serve () with _ -> ());
    Unix._exit 0
  | pid ->
    close_quietly task_r;
    close_quietly res_w;
    slot.pid <- pid;
    slot.to_worker <- task_w;
    slot.from_worker <- res_r

(* caller holds the lock. Schedules the slot's restart with jittered
   exponential backoff keyed to its consecutive-death count. *)
let mark_dead pool slot =
  Tel.Counter.incr c_deaths;
  slot.consec_deaths <- slot.consec_deaths + 1;
  let d = slot.consec_deaths - 1 in
  let backoff =
    Float.min pool.backoff_cap (pool.backoff_base *. (2.0 ** float_of_int d))
  in
  let jitter = 0.5 +. Random.State.float pool.rng 1.0 in
  slot.status <- Dead (Unix.gettimeofday () +. (backoff *. jitter));
  close_quietly slot.to_worker;
  close_quietly slot.from_worker

let reaped pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> false
  | _ -> true
  | exception Unix.Unix_error (ECHILD, _, _) -> true

let supervise pool =
  let rec loop () =
    Thread.delay 0.05;
    let continue =
      Mutex.protect pool.lock (fun () ->
          if pool.shutting_down then false
          else begin
            let now = Unix.gettimeofday () in
            Array.iter
              (fun s ->
                match s.status with
                | Busy started -> (
                  (* the heartbeat: a worker stuck on one task past the
                     deadline is killed; its exec thread then observes
                     EOF and runs the ordinary death path *)
                  match pool.task_timeout with
                  | Some limit when now -. started > limit -> (
                    try Unix.kill s.pid Sys.sigkill
                    with Unix.Unix_error _ -> ())
                  | _ -> ())
                | Idle ->
                  (* a worker that died between tasks has no exec
                     thread watching its pipe — waitpid is the only
                     detector *)
                  if reaped s.pid then mark_dead pool s
                | Dead due when due <= now ->
                  (* refork only once the corpse is collectable, so a
                     restarted slot never aliases a zombie's pid *)
                  if reaped s.pid then begin
                    fork_worker pool s;
                    s.status <- Idle;
                    Tel.Counter.incr c_restarts;
                    pool.on_worker_restart ();
                    Condition.broadcast pool.cond
                  end
                | Dead _ -> ())
              pool.slots;
            true
          end)
    in
    if continue then loop ()
  in
  loop ()

let create ?(max_task_deaths = 3) ?(backoff = (0.1, 5.0)) ?task_timeout
    ?(on_worker_restart = fun () -> ()) ~workers ~worker () =
  if workers < 1 then invalid_arg "Procpool.create: workers < 1";
  if max_task_deaths < 1 then invalid_arg "Procpool.create: max_task_deaths < 1";
  (* a worker dying mid-write must be an EPIPE for its exec thread, not
     a fatal signal delivered to whoever was writing *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let base, cap = backoff in
  let pool =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      slots =
        Array.init workers (fun id ->
            {
              id;
              pid = -1;
              to_worker = Unix.stdin;
              from_worker = Unix.stdin;
              status = Idle;
              consec_deaths = 0;
            });
      worker_fn = worker;
      max_task_deaths;
      backoff_base = base;
      backoff_cap = cap;
      task_timeout;
      on_worker_restart;
      rng =
        Random.State.make
          [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |];
      shutting_down = false;
      supervisor = None;
    }
  in
  Array.iter (fun s -> fork_worker pool s) pool.slots;
  pool.supervisor <- Some (Thread.create supervise pool);
  pool

(* block until a slot is idle (or the pool is shutting down) and claim
   it. Waiters are woken by task completions and supervisor restarts. *)
let acquire pool =
  Mutex.protect pool.lock (fun () ->
      let rec go () =
        if pool.shutting_down then None
        else
          match Array.find_opt (fun s -> s.status = Idle) pool.slots with
          | Some s ->
            s.status <- Busy (Unix.gettimeofday ());
            Some s
          | None ->
            Condition.wait pool.cond pool.lock;
            go ()
      in
      go ())

let release pool slot ~completed =
  Mutex.protect pool.lock (fun () ->
      (match slot.status with
      | Busy _ ->
        slot.status <- Idle;
        if completed then slot.consec_deaths <- 0
      | Idle | Dead _ -> ());
      Condition.broadcast pool.cond)

let died pool slot =
  Mutex.protect pool.lock (fun () ->
      (match slot.status with
      | Busy _ -> mark_dead pool slot
      | Idle | Dead _ -> ());
      Condition.broadcast pool.cond)

let exec pool task =
  Tel.Counter.incr c_tasks;
  (* [deaths] counts workers this task has consumed; each retry goes to
     a fresh worker with the count in the frame, so deterministic chaos
     can target "the Nth attempt" *)
  let rec dispatch deaths =
    if deaths >= pool.max_task_deaths then begin
      Tel.Counter.incr c_lost;
      Error (`Worker_lost deaths)
    end
    else
      match acquire pool with
      | None -> Error (`Worker_error "pool is shut down")
      | Some slot -> (
        let sent =
          try
            write_frame slot.to_worker (string_of_int deaths);
            write_frame slot.to_worker task;
            true
          with Unix.Unix_error _ | Sys_error _ -> false
        in
        if not sent then begin
          (* worker died before (or while) we handed it the task *)
          died pool slot;
          dispatch (deaths + 1)
        end
        else
          match read_frame slot.from_worker with
          | Some reply when String.length reply >= 1 ->
            release pool slot ~completed:true;
            let body = String.sub reply 1 (String.length reply - 1) in
            if reply.[0] = 'K' then Ok body else Error (`Worker_error body)
          | Some _ | None ->
            (* EOF or torn reply: the worker died mid-task *)
            died pool slot;
            dispatch (deaths + 1))
  in
  dispatch 0

let shutdown pool =
  Mutex.protect pool.lock (fun () ->
      pool.shutting_down <- true;
      Condition.broadcast pool.cond);
  Option.iter Thread.join pool.supervisor;
  pool.supervisor <- None;
  Array.iter
    (fun s ->
      (* closing the task pipe retires an idle worker; a busy one
         finishes its task, finds EOF, and exits *)
      close_quietly s.to_worker;
      close_quietly s.from_worker;
      if s.pid > 0 then
        try ignore (Unix.waitpid [] s.pid)
        with Unix.Unix_error _ -> ())
    pool.slots
