(** The stress-axis registry: one descriptor per {!Dramstress_dram.Stress.axis}.

    The paper optimizes four stresses; the model can express more
    (retention wait/pattern/leak, coupling-disturb hammer/couple,
    tWR/tRAS timing trims). This registry is the single place that
    knows, per axis: its manifest/CSV name, unit, sane sweep range and
    scale, the candidate values a direction probe samples, the
    one-notch nudge the optimizer applies, and whether the axis is a
    post-paper {e extension} (which governs the store-fingerprint
    suffix). Every layer above — {!Dramstress_core.Stressor},
    [Table1], campaign manifests — consults the registry instead of
    matching on axes, so a new axis registers here once and crosses
    with the rest everywhere. *)

type scale = Linear | Log

val scale_name : scale -> string
val scale_of_name : string -> scale option

type t = {
  axis : Dramstress_dram.Stress.axis;
  name : string;           (** canonical manifest/CSV token *)
  aliases : string list;   (** accepted alternative spellings *)
  unit_ : string;          (** display unit; [""] for dimensionless *)
  scale : scale;           (** natural sweep spacing *)
  lo : float;              (** sane sweep range, low end *)
  hi : float;              (** sane sweep range, high end *)
  extension : bool;
    (** post-paper axis: participates in the fingerprint extension
        suffix, never in the four-field v1 prefix *)
  probe_values : Dramstress_dram.Stress.t -> float list;
    (** candidate values for a direction probe around the given SC *)
  nudge : Dramstress_dram.Stress.t -> float -> Dramstress_dram.Stress.t;
    (** one optimization notch: [nudge st sign] moves the axis one step
        up ([sign > 0]) or down, clamped to physical limits *)
}

(** Every axis, paper order first, extension families after. *)
val all : t list

(** [of_axis axis] — total: the registry covers every constructor. *)
val of_axis : Dramstress_dram.Stress.axis -> t

(** [find name] resolves a manifest/CLI token (canonical name or alias,
    case-insensitive). *)
val find : string -> t option

(** Canonical names, registry order — for diagnostics. *)
val names : unit -> string list

val name_of_axis : Dramstress_dram.Stress.axis -> string

(** [default_of e] is the axis's neutral value ([S.get S.nominal]). *)
val default_of : t -> float

(** [fingerprint_ext sc] is the content-address suffix contributed by
    extension axes: [""] when every extension axis sits at its neutral
    default — which is what keeps pre-extension store records
    addressable — and a deterministic ["|ext:name=%h,..."] listing of
    all extension axes otherwise. *)
val fingerprint_ext : Dramstress_dram.Stress.t -> string

(** Errors a sweep-range request can produce. *)
type range_error = Empty_range | Log_crosses_zero

val pp_range_error : Format.formatter -> range_error -> unit

(** [range ~scale ~lo ~hi n] is [n] values spanning [lo..hi] inclusive,
    spaced per [scale]. [Error Empty_range] when [lo >= hi] or [n < 1];
    [Error Log_crosses_zero] when a log range includes or touches 0. *)
val range :
  scale:scale -> lo:float -> hi:float -> int ->
  (float list, range_error) result

(** [value_string e v] renders one axis value for labels/CSV: patterns
    by name, hammer counts as integers, everything else as [%g]. *)
val value_string : t -> float -> string

val pp : Format.formatter -> t -> unit
