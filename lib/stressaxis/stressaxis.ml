module S = Dramstress_dram.Stress

type scale = Linear | Log

let scale_name = function Linear -> "lin" | Log -> "log"

let scale_of_name s =
  match String.lowercase_ascii s with
  | "lin" | "linear" -> Some Linear
  | "log" -> Some Log
  | _ -> None

type t = {
  axis : S.axis;
  name : string;
  aliases : string list;
  unit_ : string;
  scale : scale;
  lo : float;
  hi : float;
  extension : bool;
  probe_values : S.t -> float list;
  nudge : S.t -> float -> S.t;
}

(* one notch on a log-scaled knob whose neutral value is 0: up enters
   the range at [lo] and multiplies by decades toward [hi]; down divides
   by decades and snaps back to 0 below [lo] *)
let log_notch ~lo ~hi current sign =
  if sign > 0.0 then
    if current <= 0.0 then lo else Float.min hi (current *. 10.0)
  else if current <= lo then 0.0
  else current /. 10.0

let all =
  [
    (* -- the paper's four ------------------------------------------- *)
    {
      axis = S.Cycle_time;
      name = "tcyc";
      aliases = [ "t_cyc"; "cycle-time" ];
      unit_ = "s";
      scale = Linear;
      lo = 20e-9;
      hi = 200e-9;
      extension = false;
      probe_values =
        (fun st -> [ st.S.tcyc -. 5e-9; st.S.tcyc ]);
      nudge =
        (fun st sign ->
          S.with_tcyc st (Float.max 20e-9 (st.S.tcyc +. (sign *. 5e-9))));
    };
    {
      axis = S.Duty_cycle;
      name = "duty";
      aliases = [ "duty-cycle" ];
      unit_ = "";
      scale = Linear;
      lo = 0.2;
      hi = 0.8;
      extension = false;
      probe_values =
        (fun st -> [ st.S.duty -. 0.15; st.S.duty; st.S.duty +. 0.15 ]);
      nudge =
        (fun st sign ->
          S.with_duty st
            (Float.max 0.2 (Float.min 0.8 (st.S.duty +. (sign *. 0.15)))));
    };
    {
      axis = S.Supply_voltage;
      name = "vdd";
      aliases = [ "v_dd"; "supply" ];
      unit_ = "V";
      scale = Linear;
      lo = 1.8;
      hi = 3.0;
      extension = false;
      probe_values =
        (fun st -> [ st.S.vdd -. 0.3; st.S.vdd; st.S.vdd +. 0.3 ]);
      nudge = (fun st sign -> S.with_vdd st (st.S.vdd +. (sign *. 0.3)));
    };
    {
      axis = S.Temperature;
      name = "temp";
      aliases = [ "t"; "temperature" ];
      unit_ = "C";
      scale = Linear;
      lo = -33.0;
      hi = 87.0;
      extension = false;
      probe_values = (fun st -> [ -33.0; st.S.temp_c; 87.0 ]);
      nudge =
        (fun st sign -> S.with_temp_c st (if sign > 0.0 then 87.0 else -33.0));
    };
    (* -- retention family ------------------------------------------- *)
    {
      axis = S.Wait_time;
      name = "wait";
      aliases = [ "t_wait"; "decay" ];
      unit_ = "s";
      scale = Log;
      lo = 0.01;
      hi = 120.0;
      extension = true;
      probe_values = (fun st -> [ 0.0; Float.max 0.01 st.S.wait ]);
      nudge =
        (fun st sign ->
          S.with_wait st (log_notch ~lo:0.01 ~hi:120.0 st.S.wait sign));
    };
    {
      axis = S.Pattern;
      name = "pattern";
      aliases = [ "background" ];
      unit_ = "";
      scale = Linear;
      lo = 0.0;
      hi = 1.0;
      extension = true;
      probe_values = (fun _ -> [ 0.0; 0.5; 1.0 ]);
      nudge =
        (fun st sign ->
          S.set st S.Pattern
            (Float.max 0.0
               (Float.min 1.0 (S.get st S.Pattern +. (sign *. 0.5)))));
    };
    {
      axis = S.Leak;
      name = "leak";
      aliases = [ "g_leak" ];
      unit_ = "S";
      scale = Log;
      lo = 1e-16;
      hi = 1e-10;
      extension = true;
      probe_values = (fun st -> [ 0.0; Float.max 1e-13 st.S.leak ]);
      nudge =
        (fun st sign ->
          S.with_leak st (log_notch ~lo:1e-16 ~hi:1e-10 st.S.leak sign));
    };
    (* -- disturb family --------------------------------------------- *)
    {
      axis = S.Hammer;
      name = "hammer";
      aliases = [ "ham" ];
      unit_ = "";
      scale = Log;
      lo = 1.0;
      hi = 1000.0;
      extension = true;
      probe_values =
        (fun st -> [ 0.0; Float.max 10.0 (float_of_int st.S.hammer) ]);
      nudge =
        (fun st sign ->
          S.with_hammer st
            (int_of_float
               (log_notch ~lo:10.0 ~hi:1000.0 (float_of_int st.S.hammer) sign)));
    };
    {
      axis = S.Couple;
      name = "couple";
      aliases = [ "c_couple"; "ccouple" ];
      unit_ = "C_s";
      scale = Linear;
      lo = 0.0;
      hi = 1.0;
      extension = true;
      probe_values = (fun st -> [ 0.0; Float.max 0.2 st.S.couple ]);
      nudge =
        (fun st sign ->
          S.with_couple st
            (Float.max 0.0 (Float.min 1.0 (st.S.couple +. (sign *. 0.1)))));
    };
    (* -- timing-trim family ----------------------------------------- *)
    {
      axis = S.Twr_trim;
      name = "twr-trim";
      aliases = [ "twr_trim"; "twr" ];
      unit_ = "s";
      scale = Linear;
      lo = -20e-9;
      hi = 20e-9;
      extension = true;
      probe_values = (fun st -> [ st.S.twr_trim; st.S.twr_trim +. 10e-9 ]);
      nudge =
        (fun st sign ->
          S.with_twr_trim st
            (Float.max (-20e-9)
               (Float.min 20e-9 (st.S.twr_trim +. (sign *. 5e-9)))));
    };
    {
      axis = S.Tras_trim;
      name = "tras-trim";
      aliases = [ "tras_trim"; "tras" ];
      unit_ = "s";
      scale = Linear;
      lo = -20e-9;
      hi = 20e-9;
      extension = true;
      probe_values = (fun st -> [ st.S.tras_trim -. 10e-9; st.S.tras_trim ]);
      nudge =
        (fun st sign ->
          S.with_tras_trim st
            (Float.max (-20e-9)
               (Float.min 20e-9 (st.S.tras_trim +. (sign *. 5e-9)))));
    };
  ]

let of_axis axis =
  (* total by construction: the registry carries one entry per [S.axis]
     constructor, which [axes_covered] below lets tests pin *)
  List.find (fun e -> e.axis = axis) all

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> e.name = name || List.mem name e.aliases) all

let names () = List.map (fun e -> e.name) all

let name_of_axis axis = (of_axis axis).name

let default_of e = S.get S.nominal e.axis

(* ------------------------------------------------------------------ *)
(* fingerprint extension                                               *)
(* ------------------------------------------------------------------ *)

let fingerprint_ext sc =
  if not (S.is_extended sc) then ""
  else
    "|ext:"
    ^ String.concat ","
        (List.filter_map
           (fun e ->
             if e.extension then
               Some (Printf.sprintf "%s=%h" e.name (S.get sc e.axis))
             else None)
           all)

(* ------------------------------------------------------------------ *)
(* sweep expansion                                                     *)
(* ------------------------------------------------------------------ *)

type range_error = Empty_range | Log_crosses_zero

let pp_range_error ppf = function
  | Empty_range -> Format.pp_print_string ppf "range min >= max"
  | Log_crosses_zero ->
    Format.pp_print_string ppf "log sweep crosses (or touches) zero"

let range ~scale ~lo ~hi n =
  if n < 1 then Error Empty_range
  else if lo >= hi then Error Empty_range
  else
    match scale with
    | Log when lo *. hi <= 0.0 -> Error Log_crosses_zero
    | Log ->
      let la = Float.log lo and lb = Float.log hi in
      Ok
        (List.init n (fun i ->
             if n = 1 then lo
             else
               Float.exp
                 (la +. ((lb -. la) *. float_of_int i /. float_of_int (n - 1)))))
    | Linear ->
      Ok
        (List.init n (fun i ->
             if n = 1 then lo
             else lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1))))

(* ------------------------------------------------------------------ *)
(* value rendering                                                     *)
(* ------------------------------------------------------------------ *)

let value_string e v =
  match e.axis with
  | S.Pattern -> S.pattern_name (S.pattern_of_float v)
  | S.Hammer -> string_of_int (int_of_float (Float.round v))
  | _ -> Printf.sprintf "%g" v

let pp ppf e =
  Format.fprintf ppf "%s [%s, %s, %g..%g]%s" e.name
    (if e.unit_ = "" then "-" else e.unit_)
    (scale_name e.scale) e.lo e.hi
    (if e.extension then " (ext)" else "")
