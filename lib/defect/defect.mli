(** Resistive defects inside a DRAM cell — the paper's Figure 7 catalog.

    A defect is a {e kind} (where it sits), a {e placement} (true or
    complementary bit line) and a resistance. The resistance is the swept
    parameter of the whole fault analysis: the border resistance (BR) is
    the value at which faulty behaviour first appears at the outputs. *)

(** Position of a resistive open along the cell's single series path
    (bit line -> access transistor -> storage capacitor -> plate). All
    three are electrically equivalent for the cell current; they are kept
    distinct because the paper draws them distinctly (O1, O2, O3). *)
type open_site =
  | At_bitline_contact   (** O1: between bit line and access drain *)
  | At_capacitor_contact (** O2: between access source and storage cap *)
  | At_plate_contact     (** O3: between storage cap and cell plate *)

type kind =
  | Open_cell of open_site
  | Short_to_gnd          (** Sg: storage node to ground *)
  | Short_to_vdd          (** Sv: storage node to V_dd *)
  | Bridge_to_paired_bl   (** B1: storage node to the paired bit line *)
  | Bridge_to_neighbour   (** B2: storage node to the neighbour cell's node *)

type placement =
  | True_bl  (** the defective cell sits on the true bit line *)
  | Comp_bl  (** ... on the complementary bit line; logic values invert *)

type t = { kind : kind; placement : placement; r : float }

(** [v kind placement r] builds a defect; [r] must be positive. *)
val v : kind -> placement -> float -> t

(** [with_r d r] changes the resistance. *)
val with_r : t -> float -> t

(** Fault polarity with respect to the resistance axis: opens and the
    paper's bridge behave faultily for resistances {e above} BR
    ([High_r_fails]); shorts fail for resistances {e below} BR
    ([Low_r_fails]). Determines bisection orientation and what "a more
    stressful BR" means (lower for opens, higher for shorts). *)
type polarity = High_r_fails | Low_r_fails

val polarity : kind -> polarity

(** [victim_bit kind] is the {e physical} storage level the defect
    attacks first: opens and Sv resist writing/holding a low level; Sg
    leaks a high level away; bridges to precharged-high neighbours
    disturb a low level. On a true-bit-line cell the logical victim is
    the same; on the complementary line it is inverted
    ({!logical_victim}). *)
val victim_bit : kind -> int

(** [logical_victim kind placement] is {!victim_bit} translated through
    the placement's data inversion — the value a test must write and
    read to attack the defect. *)
val logical_victim : kind -> placement -> int

(** Catalog entry: identifier, descriptive label, kind. *)
type entry = { id : string; label : string; kind : kind }

(** The paper's seven defects: O1, O2, O3, Sg, Sv, B1, B2. *)
val catalog : entry list

(** [find_entry id] looks up by identifier (["O1"] ... ["B2"]),
    case-insensitively. *)
val find_entry : string -> entry option

(** [pp_kind], [pp_placement], [pp]: human-readable forms. *)
val pp_kind : Format.formatter -> kind -> unit
val pp_placement : Format.formatter -> placement -> unit
val pp : Format.formatter -> t -> unit

(** [describe_figure7 ()] renders the catalog as text (Figure 7 stand-in). *)
val describe_figure7 : unit -> string
