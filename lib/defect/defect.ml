type open_site = At_bitline_contact | At_capacitor_contact | At_plate_contact

type kind =
  | Open_cell of open_site
  | Short_to_gnd
  | Short_to_vdd
  | Bridge_to_paired_bl
  | Bridge_to_neighbour

type placement = True_bl | Comp_bl

type t = { kind : kind; placement : placement; r : float }

let v kind placement r =
  if r <= 0.0 then invalid_arg "Defect.v: non-positive resistance";
  { kind; placement; r }

let with_r d r =
  if r <= 0.0 then invalid_arg "Defect.with_r: non-positive resistance";
  { d with r }

type polarity = High_r_fails | Low_r_fails

let polarity = function
  | Open_cell _ -> High_r_fails
  | Short_to_gnd | Short_to_vdd | Bridge_to_paired_bl | Bridge_to_neighbour ->
    Low_r_fails

let victim_bit = function
  | Open_cell _ -> 0  (* the hard-to-write value behind a big open is 0 *)
  | Short_to_gnd -> 1 (* a stored 1 leaks to ground *)
  | Short_to_vdd -> 0 (* a stored 0 is pulled up *)
  | Bridge_to_paired_bl -> 0 (* paired line precharges high, lifts a 0 *)
  | Bridge_to_neighbour -> 0 (* neighbour commonly holds the opposite value *)

let logical_victim kind placement =
  match placement with
  | True_bl -> victim_bit kind
  | Comp_bl -> 1 - victim_bit kind

type entry = { id : string; label : string; kind : kind }

let catalog =
  [
    { id = "O1"; label = "open at bit-line contact";
      kind = Open_cell At_bitline_contact };
    { id = "O2"; label = "open at storage-capacitor contact";
      kind = Open_cell At_capacitor_contact };
    { id = "O3"; label = "open at capacitor plate";
      kind = Open_cell At_plate_contact };
    { id = "Sg"; label = "short, storage node to GND"; kind = Short_to_gnd };
    { id = "Sv"; label = "short, storage node to Vdd"; kind = Short_to_vdd };
    { id = "B1"; label = "bridge, storage node to paired bit line";
      kind = Bridge_to_paired_bl };
    { id = "B2"; label = "bridge, storage node to neighbour cell";
      kind = Bridge_to_neighbour };
  ]

let find_entry id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = id) catalog

let pp_kind ppf = function
  | Open_cell At_bitline_contact -> Format.pp_print_string ppf "O1"
  | Open_cell At_capacitor_contact -> Format.pp_print_string ppf "O2"
  | Open_cell At_plate_contact -> Format.pp_print_string ppf "O3"
  | Short_to_gnd -> Format.pp_print_string ppf "Sg"
  | Short_to_vdd -> Format.pp_print_string ppf "Sv"
  | Bridge_to_paired_bl -> Format.pp_print_string ppf "B1"
  | Bridge_to_neighbour -> Format.pp_print_string ppf "B2"

let pp_placement ppf = function
  | True_bl -> Format.pp_print_string ppf "true"
  | Comp_bl -> Format.pp_print_string ppf "comp."

let pp ppf (d : t) =
  Format.fprintf ppf "%a (%a) R=%a" pp_kind d.kind pp_placement d.placement
    Dramstress_util.Units.pp_si d.r

let describe_figure7 () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 7 -- simulated cell defects (opens, shorts, bridges)\n\n";
  Buffer.add_string buf
    "    BL ---o--[O1]--| access |--[O2]--o--[O3]--||--- plate\n";
  Buffer.add_string buf
    "          |          (WL gate)       |storage cap Cs\n";
  Buffer.add_string buf
    "          |                          +--[Sg]--- GND\n";
  Buffer.add_string buf
    "          |                          +--[Sv]--- Vdd\n";
  Buffer.add_string buf
    "          |                          +--[B1]--- BLB (paired line)\n";
  Buffer.add_string buf
    "          |                          +--[B2]--- neighbour cell node\n\n";
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "  %-3s %s\n" e.id e.label))
    catalog;
  Buffer.contents buf
