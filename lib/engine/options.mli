(** Numerical options for the solver. *)

type integrator = Backward_euler | Trapezoidal

type t = {
  abstol : float;       (** absolute voltage tolerance, V *)
  reltol : float;       (** relative tolerance *)
  max_newton : int;     (** Newton iteration cap per time point *)
  gmin : float;         (** node-to-ground regularization conductance, S *)
  max_step_v : float;   (** Newton per-iteration voltage step clamp, V *)
  temp : float;         (** simulation temperature, K *)
  integrator : integrator;
  naive_assembly : bool;
      (** use the reference from-scratch MNA assembly and allocating LU
          path instead of the incremental workspace engine. Slower;
          kept alive as the golden baseline for regression tests and
          A/B benchmarks. *)
  dense_lu : bool;
      (** force the dense in-place LU on the workspace hot path instead
          of the sparsity-aware factorization ({!Dramstress_util.Sparse_lu})
          that reuses one symbolic analysis per circuit topology. Kept
          alive as the golden oracle for the sparse path, exactly like
          [naive_assembly] for assembly; default [false]. *)
  dt_scale : float;
      (** multiplier applied to every transient segment's nominal time
          step (must be positive; default 1.0). Values below 1 refine
          the integration uniformly without touching the segment plan —
          the knob the retry/degradation policy
          ({!Dramstress_dram.Sim_config.retry_policy}) uses to halve the
          initial dt after a Newton failure. *)
  health_guards : bool;
      (** per-iteration numerical health checks in {!Newton}: the state
          vector is scanned for NaN/Inf after every update and a
          singular LU is converted into a typed
          {!Newton.Numerical_health} error instead of propagating
          garbage. Default [true]; the [false] setting exists for the
          guard-overhead A/B benchmark, not for production use. *)
}

(** Defaults: abstol 1e-6 V, reltol 1e-4, 80 Newton iterations, gmin 1e-12 S,
    1.0 V step clamp, 300.15 K, backward Euler, incremental assembly,
    sparse LU, dt_scale 1.0, health guards on. *)
val default : t
