(** Damped Newton–Raphson solve of one (possibly nonlinear) MNA system. *)

exception No_convergence of { t : float; iterations : int; worst : float }
(** Raised when the iteration cap is hit; [worst] is the largest remaining
    voltage update. *)

(** [solve sys ~opts ~t_now ~reactive ~x0] iterates assemble/solve from
    initial guess [x0] until every node-voltage update is below
    [abstol + reltol * |v|]. Node-voltage updates are clamped to
    [opts.max_step_v] per iteration. Returns the converged unknown
    vector. *)
val solve :
  Mna.t ->
  opts:Options.t ->
  t_now:float ->
  reactive:Mna.reactive ->
  x0:float array ->
  float array
