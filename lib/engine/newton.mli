(** Damped Newton–Raphson solve of one (possibly nonlinear) MNA system. *)

exception No_convergence of { t : float; iterations : int; worst : float }
(** Raised when the iteration cap is hit; [worst] is the largest remaining
    voltage update. *)

exception Numerical_health of { t : float; iterations : int; what : string }
(** Raised by the runtime health monitor when the iteration produces a
    numerically sick state: a NaN/Inf in the unknown vector (counted in
    [engine.health.nan_detected]) or a singular/rank-deficient system
    matrix (counted in [engine.health.singular_lu]). [what] is a short
    human-readable description. Treated as recoverable by the
    {!Dramstress_dram.Ops} retry ladder, exactly like
    {!No_convergence}. *)

exception Timeout of { t : float; budget_s : float }
(** Raised by the cooperative deadline check when the wall-clock budget
    ([Sim_config.deadline]) passed down as [deadline_at] is exceeded.
    Deliberately NOT recoverable: retrying a point that already burned
    its budget only burns more, so it surfaces directly as a [Failed]
    sweep outcome. *)

(** [solve sys ?ws ?deadline_at ~opts ~t_now ~reactive ~x0 ()] iterates
    assemble/solve from initial guess [x0] until every node-voltage
    update is below [abstol + reltol * |v|]. Node-voltage updates are
    clamped to [opts.max_step_v] per iteration. Returns the converged
    unknown vector (freshly allocated; independent of [x0] and [ws]).

    With [opts.health_guards] (the default) the state vector is checked
    for NaN/Inf after every update and a singular LU factorization is
    converted into {!Numerical_health} — a few flat array scans per
    iteration, negligible against the O(n^3) factorization.

    [deadline_at], when given as [(at, budget_s)], is an absolute
    [Unix.gettimeofday]-clock instant polled once per iteration; past
    it the solve raises [Timeout { t; budget_s }]. The poll costs one
    [gettimeofday] per iteration and nothing when [None].

    [ws] supplies reusable assembly/factorization buffers
    ({!Mna.make_workspace}); when omitted a workspace is allocated for
    this call. Callers solving many systems of the same layout (time
    stepping, sweeps, homotopy) should create one workspace and pass it
    to every call — the steady-state iteration then performs no matrix
    allocation at all. With [opts.naive_assembly] set, the reference
    from-scratch assembly and allocating LU are used instead and [ws]
    is ignored. *)
val solve :
  Mna.t ->
  ?ws:Mna.workspace ->
  ?deadline_at:float * float ->
  opts:Options.t ->
  t_now:float ->
  reactive:Mna.reactive ->
  x0:float array ->
  unit ->
  float array

(** {2 Iteration building blocks}

    Exposed for {!Ensemble}, which interleaves the iterations of many
    lanes and therefore cannot call {!solve} — but must remain
    step-for-step identical to it per lane. Not a stable API for other
    callers. *)

(** [apply_update ~opts ~n_node_unknowns x x_new] applies the clamped
    Newton update from [x_new] onto [x] and returns the worst
    node-voltage move (before clamping). *)
val apply_update :
  opts:Options.t -> n_node_unknowns:int -> float array -> float array -> float

(** [tolerance ~opts x] is the convergence bound
    [abstol + reltol * max_i |x_i|]. *)
val tolerance : opts:Options.t -> float array -> float

(** [record_solve iterations] feeds the solve/iteration telemetry for
    one converged solve. *)
val record_solve : int -> unit

(** [fail ~t_now ~iter ~worst] counts and raises {!No_convergence}. *)
val fail : t_now:float -> iter:int -> worst:float -> 'a

(** [sick ~t_now ~iter what] counts and raises {!Numerical_health}. *)
val sick : t_now:float -> iter:int -> string -> 'a

(** [sick_singular ~t_now ~iter ~row ~pivot] counts a singular LU on
    [engine.health.singular_lu] and raises {!Numerical_health}. *)
val sick_singular : t_now:float -> iter:int -> row:int -> pivot:float -> 'a

(** [check_finite ~t_now ~iter x] raises {!Numerical_health} (counting
    [engine.health.nan_detected]) if [x] holds a NaN or infinity. *)
val check_finite : t_now:float -> iter:int -> float array -> unit

(** [chaos_diverge ()] queries the [Force_newton_diverge] chaos site —
    [true] forces this solve to run to its iteration cap. *)
val chaos_diverge : unit -> bool

(** [chaos_nan x] queries the [Inject_nan_state] chaos site and, when it
    fires, poisons [x.(0)] with a NaN. *)
val chaos_nan : float array -> unit
