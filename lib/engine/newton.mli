(** Damped Newton–Raphson solve of one (possibly nonlinear) MNA system. *)

exception No_convergence of { t : float; iterations : int; worst : float }
(** Raised when the iteration cap is hit; [worst] is the largest remaining
    voltage update. *)

(** [solve sys ?ws ~opts ~t_now ~reactive ~x0 ()] iterates
    assemble/solve from initial guess [x0] until every node-voltage
    update is below [abstol + reltol * |v|]. Node-voltage updates are
    clamped to [opts.max_step_v] per iteration. Returns the converged
    unknown vector (freshly allocated; independent of [x0] and [ws]).

    [ws] supplies reusable assembly/factorization buffers
    ({!Mna.make_workspace}); when omitted a workspace is allocated for
    this call. Callers solving many systems of the same layout (time
    stepping, sweeps, homotopy) should create one workspace and pass it
    to every call — the steady-state iteration then performs no matrix
    allocation at all. With [opts.naive_assembly] set, the reference
    from-scratch assembly and allocating LU are used instead and [ws]
    is ignored. *)
val solve :
  Mna.t ->
  ?ws:Mna.workspace ->
  opts:Options.t ->
  t_now:float ->
  reactive:Mna.reactive ->
  x0:float array ->
  unit ->
  float array
