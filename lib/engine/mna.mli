(** Modified nodal analysis: system layout and stamping.

    Unknown vector layout for a circuit with [n] nodes (ground excluded)
    and [m] voltage sources:
    {v x = [ v_1 .. v_(n-1) ; i_vsrc_0 .. i_vsrc_(m-1) ] v}

    One assembly produces the linearized system [G x_new = b] around a
    Newton iterate, with companion models for capacitors (BE or
    trapezoidal) and linearized MOSFETs. *)

type t

(** [make compiled] precomputes the layout. *)
val make : Dramstress_circuit.Netlist.compiled -> t

(** [size sys] is the number of unknowns. *)
val size : t -> int

(** [n_nodes sys] is the node count including ground. *)
val n_nodes : t -> int

(** [node_voltage sys x node] reads a node voltage from an unknown vector
    (0.0 for ground). *)
val node_voltage : t -> float array -> Dramstress_circuit.Device.node -> float

(** [voltages sys x] expands the unknown vector to a per-node voltage
    array indexed by node id (entry 0 is ground = 0.0). *)
val voltages : t -> float array -> float array

(** [pack sys node_voltages] builds an unknown vector from per-node
    voltages (branch currents zeroed). *)
val pack : t -> float array -> float array

(** [branch_current sys x name] reads a voltage source's branch current
    from an unknown vector (positive out of the + terminal through the
    external circuit). Raises [Not_found] for unknown sources. *)
val branch_current : t -> float array -> string -> float

(** Dynamic (reactive) inputs to one assembly. [prev_v] is the per-node
    voltage array at the previous accepted time point; [prev_cap_current]
    stores per-capacitor branch current for the trapezoidal rule (indexed
    by capacitor order of appearance); [dt <= 0.0] means "no reactive
    stamps" (pure DC). *)
type reactive = {
  dt : float;
  prev_v : float array;
  prev_cap_current : float array;
}

(** [dc_reactive sys] is a [reactive] that disables capacitor stamps. *)
val dc_reactive : t -> reactive

(** [init_reactive sys ~prev_v] builds a reactive record for transient
    stepping starting from the given node voltages. *)
val init_reactive : t -> prev_v:float array -> reactive

(** [n_capacitors sys] — size of [prev_cap_current]. *)
val n_capacitors : t -> int

(** [resistor_index sys name] is the plan index of the named resistor,
    for {!set_resistor_override} — the hook ensemble sweeps use to vary
    one resistance (the defect) across lanes of a shared topology. *)
val resistor_index : t -> string -> int option

(** [resistor_g sys index] is the base conductance of plan [index]. *)
val resistor_g : t -> int -> float

(** [structural_pattern sys] is the [size x size] boolean nonzero
    pattern of every system any assembly of [sys] can produce, derived
    from the stamp plans (never from numeric values — a MOSFET [gm] or
    switch conductance being zero {e now} says nothing about the next
    iterate). Input for {!Dramstress_util.Sparse_lu.make}. *)
val structural_pattern : t -> bool array array

(** [assemble sys ~opts ~t ~x ~reactive] stamps the full linearized
    system at time [t] around iterate [x] and returns freshly allocated
    [(g, b)]. This is the reference from-scratch path; the workspace API
    below produces identical systems without allocating. *)
val assemble :
  t ->
  opts:Options.t ->
  t_now:float ->
  x:float array ->
  reactive:reactive ->
  Dramstress_util.Linalg.matrix * float array

(** Reusable per-solve buffers for the incremental assembly path: the
    work matrix and RHS, the cached static-linear template (gmin,
    resistors, voltage-source topology, capacitor conductances for the
    current [(dt, gmin, integrator)]), and the pivot/substitution
    scratch used by the in-place LU. One workspace serves any number of
    sequential solves on the same system; it must not be shared between
    domains. *)
type workspace

(** [make_workspace sys] allocates buffers sized for [sys]. *)
val make_workspace : t -> workspace

(** [set_resistor_override ws ~index ~g] makes every subsequent assembly
    stamp conductance [g] for resistor plan [index] instead of its
    netlist value: the resistor is dropped from the static template
    (rebuilt on the next assembly) and [g] stamped fresh after each
    template copy, so the lane conductance is exact — no cancellation
    against the base value. This is how ensemble sweeps give each lane
    its own defect resistance over one shared topology. *)
val set_resistor_override : workspace -> index:int -> g:float -> unit

(** [clear_resistor_override ws] restores the netlist resistance. *)
val clear_resistor_override : workspace -> unit

(** [eval_controls_into sys ws ~t_now] evaluates every control waveform
    (switch controls, source values) at [t_now] into workspace buffers
    consumed by {!assemble_into_pre}. Split from assembly so ensemble
    lanes sharing a time grid walk each waveform once per time point,
    not once per lane. *)
val eval_controls_into : t -> workspace -> t_now:float -> unit

(** [assemble_into_pre sys ws ~opts ~x ~reactive] stamps the system from
    the control values left by the last {!eval_controls_into}: template
    copy (rebuilt only when [(dt, gmin, integrator, override)] changed),
    then dynamic stamps — switch states, source values, capacitor
    history, MOSFET linearization around [x]. *)
val assemble_into_pre :
  t ->
  workspace ->
  opts:Options.t ->
  x:float array ->
  reactive:reactive ->
  unit

(** [assemble_into sys ws ~opts ~t_now ~x ~reactive] is
    {!eval_controls_into} followed by {!assemble_into_pre} — the
    single-lane spelling, producing systems identical to {!assemble}
    without heap allocation. *)
val assemble_into :
  t ->
  workspace ->
  opts:Options.t ->
  t_now:float ->
  x:float array ->
  reactive:reactive ->
  unit

(** [solve_in_place sys ws ~opts] factors the assembled matrix and
    overwrites the assembled RHS with the solution ({!solution}). The
    default path is the sparsity-aware factorization
    ({!Dramstress_util.Sparse_lu}) reusing one symbolic analysis per
    topology, held in the workspace; with [opts.dense_lu] the dense
    in-place LU with per-factor partial pivoting runs instead — the
    golden oracle, selected exactly like [naive_assembly]. Raises
    [Dramstress_util.Linalg.Singular] on a rank-deficient (or
    non-finite) system. *)
val solve_in_place : t -> workspace -> opts:Options.t -> unit

(** [solution ws] is the workspace RHS buffer, holding the solution
    after {!solve_in_place}. The array is reused by the next
    {!assemble_into}; copy anything that must survive. *)
val solution : workspace -> float array

(** [cap_currents sys ~opts ~x ~reactive] computes each capacitor's branch
    current at the just-solved point (needed to advance the trapezoidal
    rule). *)
val cap_currents :
  t -> opts:Options.t -> x:float array -> reactive:reactive -> float array

(** Allocation-free variant writing into [out] (length >= n_capacitors).
    [out] may alias [reactive.prev_cap_current]: each capacitor reads only
    its own slot before overwriting it. With [reactive.dt <= 0] the slots
    are zeroed, matching {!cap_currents}. *)
val cap_currents_into :
  t ->
  opts:Options.t ->
  x:float array ->
  reactive:reactive ->
  out:float array ->
  unit

(** [record_factor_solve ()] bumps the [engine.mna.lu_factors] /
    [engine.mna.lu_solves] telemetry counters — called by solver paths
    that factor outside {!solve_in_place} (the naive reference path). *)
val record_factor_solve : unit -> unit
