(** Modified nodal analysis: system layout and stamping.

    Unknown vector layout for a circuit with [n] nodes (ground excluded)
    and [m] voltage sources:
    {v x = [ v_1 .. v_(n-1) ; i_vsrc_0 .. i_vsrc_(m-1) ] v}

    One assembly produces the linearized system [G x_new = b] around a
    Newton iterate, with companion models for capacitors (BE or
    trapezoidal) and linearized MOSFETs. *)

type t

(** [make compiled] precomputes the layout. *)
val make : Dramstress_circuit.Netlist.compiled -> t

(** [size sys] is the number of unknowns. *)
val size : t -> int

(** [n_nodes sys] is the node count including ground. *)
val n_nodes : t -> int

(** [node_voltage sys x node] reads a node voltage from an unknown vector
    (0.0 for ground). *)
val node_voltage : t -> float array -> Dramstress_circuit.Device.node -> float

(** [voltages sys x] expands the unknown vector to a per-node voltage
    array indexed by node id (entry 0 is ground = 0.0). *)
val voltages : t -> float array -> float array

(** [pack sys node_voltages] builds an unknown vector from per-node
    voltages (branch currents zeroed). *)
val pack : t -> float array -> float array

(** [branch_current sys x name] reads a voltage source's branch current
    from an unknown vector (positive out of the + terminal through the
    external circuit). Raises [Not_found] for unknown sources. *)
val branch_current : t -> float array -> string -> float

(** Dynamic (reactive) inputs to one assembly. [prev_v] is the per-node
    voltage array at the previous accepted time point; [prev_cap_current]
    stores per-capacitor branch current for the trapezoidal rule (indexed
    by capacitor order of appearance); [dt <= 0.0] means "no reactive
    stamps" (pure DC). *)
type reactive = {
  dt : float;
  prev_v : float array;
  prev_cap_current : float array;
}

(** [dc_reactive sys] is a [reactive] that disables capacitor stamps. *)
val dc_reactive : t -> reactive

(** [init_reactive sys ~prev_v] builds a reactive record for transient
    stepping starting from the given node voltages. *)
val init_reactive : t -> prev_v:float array -> reactive

(** [n_capacitors sys] — size of [prev_cap_current]. *)
val n_capacitors : t -> int

(** [assemble sys ~opts ~t ~x ~reactive] stamps the full linearized
    system at time [t] around iterate [x] and returns freshly allocated
    [(g, b)]. This is the reference from-scratch path; the workspace API
    below produces identical systems without allocating. *)
val assemble :
  t ->
  opts:Options.t ->
  t_now:float ->
  x:float array ->
  reactive:reactive ->
  Dramstress_util.Linalg.matrix * float array

(** Reusable per-solve buffers for the incremental assembly path: the
    work matrix and RHS, the cached static-linear template (gmin,
    resistors, voltage-source topology, capacitor conductances for the
    current [(dt, gmin, integrator)]), and the pivot/substitution
    scratch used by the in-place LU. One workspace serves any number of
    sequential solves on the same system; it must not be shared between
    domains. *)
type workspace

(** [make_workspace sys] allocates buffers sized for [sys]. *)
val make_workspace : t -> workspace

(** [assemble_into sys ws ~opts ~t_now ~x ~reactive] stamps the system
    into [ws] without heap allocation: the static template is rebuilt
    only when [(dt, gmin, integrator)] changed since the last call, then
    copied row-wise and overlaid with the dynamic stamps (switch states,
    source values at [t_now], capacitor history, MOSFET linearization
    around [x]). *)
val assemble_into :
  t ->
  workspace ->
  opts:Options.t ->
  t_now:float ->
  x:float array ->
  reactive:reactive ->
  unit

(** [solve_in_place ws] factors the assembled matrix in place and
    overwrites the assembled RHS with the solution ({!solution}).
    Raises [Dramstress_util.Linalg.Singular] on a zero pivot. *)
val solve_in_place : workspace -> unit

(** [solution ws] is the workspace RHS buffer, holding the solution
    after {!solve_in_place}. The array is reused by the next
    {!assemble_into}; copy anything that must survive. *)
val solution : workspace -> float array

(** [cap_currents sys ~opts ~x ~reactive] computes each capacitor's branch
    current at the just-solved point (needed to advance the trapezoidal
    rule). *)
val cap_currents :
  t -> opts:Options.t -> x:float array -> reactive:reactive -> float array

(** [record_factor_solve ()] bumps the [engine.mna.lu_factors] /
    [engine.mna.lu_solves] telemetry counters — called by solver paths
    that factor outside {!solve_in_place} (the naive reference path). *)
val record_factor_solve : unit -> unit
