module C = Dramstress_circuit
module L = Dramstress_util.Linalg
module Tel = Dramstress_util.Telemetry

let c_lanes = Tel.Counter.make "engine.ensemble.lanes"
let c_batches = Tel.Counter.make "engine.ensemble.batches"
let c_masked = Tel.Counter.make "engine.ensemble.masked_lane_iters"
let c_lane_failures = Tel.Counter.make "engine.ensemble.lane_failures"

(* always-on mirrors, the [--metrics] reconciliation source (same
   contract as [Ops.cache_stats] and [Sparse_lu.stats]) *)
let g_lanes = Atomic.make 0
let g_batches = Atomic.make 0
let g_masked = Atomic.make 0
let g_lane_failures = Atomic.make 0

type stats = {
  lanes : int;
  batches : int;
  masked_lane_iters : int;
  lane_failures : int;
}

let stats () =
  {
    lanes = Atomic.get g_lanes;
    batches = Atomic.get g_batches;
    masked_lane_iters = Atomic.get g_masked;
    lane_failures = Atomic.get g_lane_failures;
  }

let reset_stats () =
  Atomic.set g_lanes 0;
  Atomic.set g_batches 0;
  Atomic.set g_masked 0;
  Atomic.set g_lane_failures 0

type lane = {
  ics : (string * float) list;
  override : (string * float) option;
}

let run compiled ?(opts = Options.default) ~segments ~lanes ~probes () =
  let n_lanes = Array.length lanes in
  if n_lanes = 0 then invalid_arg "Ensemble.run: no lanes";
  Tel.Counter.incr c_batches;
  Tel.Counter.add c_lanes n_lanes;
  Atomic.incr g_batches;
  ignore (Atomic.fetch_and_add g_lanes n_lanes);
  if not (opts.Options.dt_scale > 0.0) then
    invalid_arg "Ensemble.run: dt_scale must be positive";
  let segments =
    if opts.Options.dt_scale = 1.0 then segments
    else
      List.map (fun (t_end, dt) -> (t_end, dt *. opts.Options.dt_scale))
        segments
  in
  (match segments with
  | [] -> invalid_arg "Ensemble.run: no segments"
  | _ ->
    ignore
      (List.fold_left
         (fun t_prev (t_end, dt) ->
           if dt <= 0.0 then invalid_arg "Ensemble.run: dt <= 0";
           if t_end <= t_prev then
             invalid_arg "Ensemble.run: segment ends must increase";
           t_end)
         0.0 segments));
  let sys = Mna.make compiled in
  let ws = Mna.make_workspace sys in
  let n_nodes = Mna.n_nodes sys in
  let n_node_unknowns = n_nodes - 1 in
  let size = Mna.size sys in
  let n_caps = Mna.n_capacitors sys in
  (* one shared topology: every overriding lane must name the same
     resistor; lanes without an override ride at the netlist value *)
  let override_index = ref (-1) in
  let override_g = Array.make n_lanes 0.0 in
  Array.iteri
    (fun li lane ->
      match lane.override with
      | None -> ()
      | Some (name, r) -> (
        if not (r > 0.0) then
          invalid_arg "Ensemble.run: override resistance must be positive";
        match Mna.resistor_index sys name with
        | None -> invalid_arg ("Ensemble.run: unknown resistor " ^ name)
        | Some idx ->
          if !override_index = -1 then override_index := idx
          else if !override_index <> idx then
            invalid_arg "Ensemble.run: lanes must override the same resistor";
          override_g.(li) <- 1.0 /. r))
    lanes;
  let override_index = !override_index in
  if override_index >= 0 then
    Array.iteri
      (fun li lane ->
        if lane.override = None then
          override_g.(li) <- Mna.resistor_g sys override_index)
      lanes;
  let probe_ids =
    Array.of_list
      (List.map
         (fun name ->
           try C.Netlist.compiled_node compiled name
           with Not_found ->
             invalid_arg ("Ensemble.run: unknown probe node " ^ name))
         probes)
  in
  let n_probes = Array.length probe_ids in
  (* the shared grid, precomputed with the same arithmetic as the
     [Transient.run] segment walk so the accepted times are identical *)
  let steps = ref [] in
  let n_steps = ref 0 in
  let t = ref 0.0 in
  ignore
    (List.fold_left
       (fun seg_start (t_end, dt) ->
         while !t < t_end -. (dt /. 2.0) do
           let t_next = Float.min t_end (!t +. dt) in
           steps := (seg_start, t_end, !t, t_next) :: !steps;
           incr n_steps;
           t := t_next
         done;
         t := Float.max !t t_end;
         t_end)
       0.0 segments);
  let steps = List.rev !steps in
  let n_pts = !n_steps + 1 in
  let times_arr = Array.make n_pts 0.0 in
  List.iteri (fun i (_, _, _, t_next) -> times_arr.(i + 1) <- t_next) steps;
  (* per-lane state rows: committed unknowns, working Newton iterate,
     previous accepted node voltages, capacitor history. Row identity is
     stable for the whole run — the Newton loop and [Mna] read and write
     the rows directly, so a solve allocates nothing per lane per
     iteration (only the per-solve [reactive] records below). *)
  let xs = Array.init n_lanes (fun _ -> Array.make size 0.0) in
  let xw = Array.init n_lanes (fun _ -> Array.make size 0.0) in
  let pvs = Array.init n_lanes (fun _ -> Array.make n_nodes 0.0) in
  let pcs = Array.init n_lanes (fun _ -> Array.make (Int.max 1 n_caps) 0.0) in
  (* per-lane ICs -> committed state *)
  Array.iteri
    (fun li lane ->
      let v = pvs.(li) in
      List.iter
        (fun (name, value) ->
          match
            try Some (C.Netlist.compiled_node compiled name)
            with Not_found -> None
          with
          | Some n ->
            if n = 0 then invalid_arg "Ensemble.run: cannot set ground IC";
            v.(n) <- value
          | None -> invalid_arg ("Ensemble.run: unknown IC node " ^ name))
        lane.ics;
      Array.blit (Mna.pack sys v) 0 xs.(li) 0 size)
    lanes;
  let dead : exn option array = Array.make n_lanes None in
  let samples =
    Array.init n_lanes (fun _ -> Array.make_matrix n_probes n_pts 0.0)
  in
  let record li pt =
    let lane_samples = samples.(li) in
    let pv = pvs.(li) in
    for p = 0 to n_probes - 1 do
      lane_samples.(p).(pt) <- pv.(probe_ids.(p))
    done
  in
  let lane_failed li e =
    dead.(li) <- Some e;
    Tel.Counter.incr c_lane_failures;
    Atomic.incr g_lane_failures
  in
  (* per-solve flags, reused across solves *)
  let active = Array.make n_lanes false in
  let lane_done = Array.make n_lanes false in
  let lane_err : exn option array = Array.make n_lanes None in
  let lane_diverge = Array.make n_lanes false in
  (* per-lane reactive records, rebuilt each solve (dt' changes); the
     prev arrays alias the lane's state rows, so [Mna] reads them with
     no copying *)
  let reacts =
    Array.make n_lanes
      { Mna.dt = 0.0; prev_v = [||]; prev_cap_current = [||] }
  in
  (* Masked batched Newton solve at one time point for the lanes chosen
     by [sel] (dead lanes are always skipped). Each sweep of the loop
     performs one Newton iteration per still-running lane — per lane the
     arithmetic is exactly [Newton.solve_ws]'s, staged through the
     shared workspace. On exit [lane_done]/[lane_err] hold the per-lane
     verdicts; a converged lane's iterate is in its [xw] row. *)
  let solve_batch ~t_now ~dt' ~sel =
    Mna.eval_controls_into sys ws ~t_now;
    let n_active = ref 0 in
    for li = 0 to n_lanes - 1 do
      let a = dead.(li) = None && sel li in
      active.(li) <- a;
      lane_done.(li) <- false;
      lane_err.(li) <- None;
      lane_diverge.(li) <- false;
      if a then begin
        incr n_active;
        Array.blit xs.(li) 0 xw.(li) 0 size;
        reacts.(li) <-
          { Mna.dt = dt'; prev_v = pvs.(li); prev_cap_current = pcs.(li) }
      end
    done;
    let remaining = ref !n_active in
    let iter = ref 0 in
    while !remaining > 0 do
      incr iter;
      let iter = !iter in
      if iter > 1 then begin
        (* lanes that already converged sit this sweep out *)
        let masked = !n_active - !remaining in
        if masked > 0 then begin
          Tel.Counter.add c_masked masked;
          ignore (Atomic.fetch_and_add g_masked masked)
        end
      end;
      for li = 0 to n_lanes - 1 do
        if active.(li) && (not lane_done.(li)) && lane_err.(li) = None then begin
          if iter = 1 then lane_diverge.(li) <- Newton.chaos_diverge ();
          let x = xw.(li) in
          if override_index >= 0 then
            Mna.set_resistor_override ws ~index:override_index
              ~g:override_g.(li);
          match
            Mna.assemble_into_pre sys ws ~opts ~x ~reactive:reacts.(li);
            (match Mna.solve_in_place sys ws ~opts with
            | () -> ()
            | exception L.Singular { row; pivot } ->
              Newton.sick_singular ~t_now ~iter ~row ~pivot);
            let worst =
              Newton.apply_update ~opts ~n_node_unknowns x (Mna.solution ws)
            in
            Newton.chaos_nan x;
            if opts.Options.health_guards then
              Newton.check_finite ~t_now ~iter x;
            worst
          with
          | worst ->
            if (not lane_diverge.(li)) && worst <= Newton.tolerance ~opts x
            then begin
              Newton.record_solve iter;
              lane_done.(li) <- true;
              decr remaining
            end
            else if iter >= opts.Options.max_newton then begin
              (try Newton.fail ~t_now ~iter ~worst
               with e -> lane_err.(li) <- Some e);
              decr remaining
            end
          | exception ((Newton.No_convergence _ | Newton.Numerical_health _) as e)
            ->
            lane_err.(li) <- Some e;
            decr remaining
        end
      done
    done
  in
  (* accept the converged iterate in [xw] as lane [li]'s new state;
     [reacts.(li)] still holds the reactive record of the solve that
     produced the iterate (same dt', prev arrays alias this lane's
     rows), and [cap_currents_into] updates the history in place —
     each slot's previous current is read before it is overwritten *)
  let commit li =
    let x = xw.(li) in
    Array.blit x 0 xs.(li) 0 size;
    Mna.cap_currents_into sys ~opts ~x ~reactive:reacts.(li) ~out:pcs.(li);
    let pv = pvs.(li) in
    for n = 1 to n_nodes - 1 do
      pv.(n) <- x.(n - 1)
    done;
    pv.(0) <- 0.0
  in
  (* initial quasi-static solve: a near-zero BE step pins capacitor
     voltages at their ICs while making resistive nodes consistent —
     the batch analogue of [Transient.run]'s init solve. A lane whose
     init solve fails carries the Newton error itself (no step retries
     exist at t=0), exactly like the scalar path. *)
  let dt0_qs = 1e-18 in
  solve_batch ~t_now:0.0 ~dt':dt0_qs ~sel:(fun _ -> true);
  for li = 0 to n_lanes - 1 do
    match lane_err.(li) with
    | Some e -> lane_failed li e
    | None ->
      commit li;
      record li 0
  done;
  let max_retries = 4 in
  (* per-lane catch-up after a failed batch step, replicating
     [Transient.advance]'s halving recursion: the batch attempt at the
     full grid step was attempt #1 with the full retry budget *)
  let catchup li ~seg_start ~seg_end ~t_next ~t_prev0 ~dt0 ~first_err =
    let sel i = i = li in
    let rec attempt t_prev dt retries =
      let t_now = t_prev +. dt in
      solve_batch ~t_now ~dt':dt ~sel;
      if lane_done.(li) then begin
        commit li;
        if t_now >= t_next -. 1e-21 then ()
        else attempt t_now (t_next -. t_now) retries
      end
      else handle t_prev dt retries (Option.get lane_err.(li))
    and handle t_prev dt retries err =
      match err with
      | Newton.No_convergence { t; iterations; worst } ->
        if retries > 0 then attempt t_prev (dt /. 2.0) (retries - 1)
        else
          raise
            (Transient.Step_failed
               { seg_start; seg_end; t; dt; retries = max_retries; iterations;
                 worst })
      | Newton.Numerical_health _ ->
        if retries > 0 then attempt t_prev (dt /. 2.0) (retries - 1)
        else raise err
      | _ -> raise err
    in
    handle t_prev0 dt0 max_retries first_err
  in
  (* snapshot of the batch attempt's per-lane verdicts, taken before any
     catch-up (whose solves reuse the shared flag arrays) *)
  let step_ok = Array.make n_lanes false in
  let step_err : exn option array = Array.make n_lanes None in
  let pt = ref 0 in
  List.iter
    (fun (seg_start, seg_end, t_prev, t_next) ->
      let dt0 = t_next -. t_prev in
      solve_batch ~t_now:t_next ~dt':dt0 ~sel:(fun _ -> true);
      for li = 0 to n_lanes - 1 do
        step_ok.(li) <- lane_done.(li);
        step_err.(li) <- lane_err.(li)
      done;
      for li = 0 to n_lanes - 1 do
        if dead.(li) = None && step_ok.(li) then commit li
      done;
      for li = 0 to n_lanes - 1 do
        if dead.(li) = None && not step_ok.(li) then begin
          let first_err = Option.get step_err.(li) in
          match
            catchup li ~seg_start ~seg_end ~t_next ~t_prev0:t_prev ~dt0
              ~first_err
          with
          | () -> ()
          | exception e -> lane_failed li e
        end
      done;
      incr pt;
      for li = 0 to n_lanes - 1 do
        if dead.(li) = None then record li !pt
      done)
    steps;
  let probe_names = Array.of_list probes in
  Array.init n_lanes (fun li ->
      match dead.(li) with
      | Some e -> Error e
      | None ->
        let probe_values = samples.(li) in
        let final_v = Array.copy pvs.(li) in
        Ok
          {
            Transient.times = times_arr;
            probe_names;
            probe_values;
            final_v;
            probe_interps =
              Transient.make_interps times_arr probe_names probe_values;
          })
