(** Batched ensemble transient integration.

    One circuit topology, one MNA assembly plan, one shared time grid —
    and N {e lanes}, each a variant of the operating point: its own
    initial conditions and (optionally) its own value for one designated
    resistor (the defect under sweep). The ensemble advances all lanes
    through the grid together:

    - control waveforms are evaluated once per time point and shared by
      every lane ({!Mna.eval_controls_into});
    - the sparse-LU symbolic analysis is shared across lanes (the
      structural pattern is a property of the topology, not the values);
    - Newton iterations run as {e masked sweeps}: each sweep performs
      one iteration for every not-yet-converged lane, and lanes that
      converged early sit out the rest
      ([engine.ensemble.masked_lane_iters] counts those skipped
      iterations).

    Per lane, the iterate sequence is the same as a scalar
    {!Transient.run} of that lane would produce with the same workspace
    machinery: the same assembly, the same update clamping and
    convergence test ({!Newton.apply_update}, {!Newton.tolerance}), the
    same dt-halving retry ladder on step failure (4 halvings), and the
    same health guards. A lane that fails — Newton divergence after
    retries ({!Transient.Step_failed}), a numerical-health trip, a
    poisoned state — is masked out and reported in its own result slot;
    the surviving lanes are unaffected.

    Lane state lives in a structure-of-arrays Bigarray block, so a
    16-lane ensemble costs one workspace plus [16 x size] floats, not 16
    workspaces. *)

(** One ensemble member. [ics] are per-lane initial node voltages (same
    contract as [Transient.run ~ics]). [override], when given as
    [(resistor_name, ohms)], makes this lane see that resistance for the
    named resistor; all overriding lanes must name the {e same} resistor
    (one shared topology), and lanes without an override ride at the
    netlist value. *)
type lane = {
  ics : (string * float) list;
  override : (string * float) option;
}

(** Always-on run totals (independent of telemetry being enabled), the
    reconciliation source for [--metrics] — same contract as
    [Ops.cache_stats] and [Sparse_lu.stats]. *)
type stats = {
  lanes : int;  (** lanes integrated across all batches *)
  batches : int;  (** ensemble runs *)
  masked_lane_iters : int;
      (** lane-iterations skipped because the lane had already converged
          while batch mates were still iterating *)
  lane_failures : int;  (** lanes that exhausted their retry ladder *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** [run compiled ?opts ~segments ~lanes ~probes ()] integrates every
    lane over the shared grid and returns one result slot per lane, in
    lane order: [Ok result] mirrors what [Transient.run] would return
    for that lane, [Error e] carries the lane's failure
    ({!Transient.Step_failed}, {!Newton.No_convergence} from the initial
    quasi-static solve, or {!Newton.Numerical_health}) without
    disturbing the other lanes.

    Segments, ICs and probes follow the {!Transient.run} contract.
    There is no deadline support: ensembles are for bulk throughput
    where per-point wall-clock budgets don't apply (callers with a
    deadline use the scalar path).

    Raises [Invalid_argument] for an empty lane array, invalid segments,
    unknown IC/probe nodes, a non-positive override resistance, an
    unknown override resistor, or lanes overriding different
    resistors. *)
val run :
  Dramstress_circuit.Netlist.compiled ->
  ?opts:Options.t ->
  segments:(float * float) list ->
  lanes:lane array ->
  probes:string list ->
  unit ->
  (Transient.result, exn) result array
