module C = Dramstress_circuit
module L = Dramstress_util.Linalg

type t = {
  compiled : C.Netlist.compiled;
  n_nodes : int;
  n_vsources : int;
  size : int;
  vsrc_branch : (string, int) Hashtbl.t;  (* vsource name -> branch index *)
  cap_index : (string, int) Hashtbl.t;    (* capacitor name -> slot *)
  n_caps : int;
}

let make (compiled : C.Netlist.compiled) =
  let n_nodes = compiled.n_nodes in
  let vsrc_branch = Hashtbl.create 8 in
  let cap_index = Hashtbl.create 8 in
  let nv = ref 0 and nc = ref 0 in
  Array.iter
    (fun d ->
      match d with
      | C.Device.Vsource { name; _ } ->
        Hashtbl.add vsrc_branch name !nv;
        incr nv
      | C.Device.Capacitor { name; _ } ->
        Hashtbl.add cap_index name !nc;
        incr nc
      | C.Device.Resistor _ | C.Device.Isource _ | C.Device.Switch _
      | C.Device.Mosfet _ ->
        ())
    compiled.devices;
  {
    compiled;
    n_nodes;
    n_vsources = !nv;
    size = n_nodes - 1 + !nv;
    vsrc_branch;
    cap_index;
    n_caps = !nc;
  }

let size sys = sys.size
let n_nodes sys = sys.n_nodes
let n_capacitors sys = sys.n_caps

let node_voltage _sys x node = if node = 0 then 0.0 else x.(node - 1)

let voltages sys x =
  Array.init sys.n_nodes (fun n -> if n = 0 then 0.0 else x.(n - 1))

let pack sys node_voltages =
  Array.init sys.size (fun i ->
      if i < sys.n_nodes - 1 then node_voltages.(i + 1) else 0.0)

let branch_current sys x name =
  x.(sys.n_nodes - 1 + Hashtbl.find sys.vsrc_branch name)

type reactive = {
  dt : float;
  prev_v : float array;
  prev_cap_current : float array;
}

let dc_reactive sys =
  { dt = 0.0; prev_v = Array.make sys.n_nodes 0.0;
    prev_cap_current = Array.make sys.n_caps 0.0 }

let init_reactive sys ~prev_v =
  assert (Array.length prev_v = sys.n_nodes);
  { dt = 0.0; prev_v; prev_cap_current = Array.make sys.n_caps 0.0 }

(* Stamping helpers. Node indices map to matrix rows as [node - 1];
   ground (0) contributions are dropped. *)

let stamp_g g mat a b =
  let ia = a - 1 and ib = b - 1 in
  if ia >= 0 then mat.(ia).(ia) <- mat.(ia).(ia) +. g;
  if ib >= 0 then mat.(ib).(ib) <- mat.(ib).(ib) +. g;
  if ia >= 0 && ib >= 0 then begin
    mat.(ia).(ib) <- mat.(ia).(ib) -. g;
    mat.(ib).(ia) <- mat.(ib).(ia) -. g
  end

(* current [i] injected INTO node [n] appears on the RHS *)
let stamp_i i rhs n = if n > 0 then rhs.(n - 1) <- rhs.(n - 1) +. i

(* VCCS: current g * (v_cp - v_cn) flows from node [p] to node [n]
   (leaves p, enters n). *)
let stamp_vccs g mat p n cp cn =
  let set r c v = if r > 0 && c > 0 then mat.(r - 1).(c - 1) <- mat.(r - 1).(c - 1) +. v in
  set p cp g;
  set p cn (-.g);
  set n cp (-.g);
  set n cn g

let mosfet_stamps ~temp mat rhs x sys (m : C.Device.t) =
  match m with
  | C.Device.Mosfet { d; g; s; model; m = mult; _ } ->
    let vd = node_voltage sys x d
    and vg = node_voltage sys x g
    and vs = node_voltage sys x s in
    let vgs = vg -. vs and vds = vd -. vs in
    let e = C.Mosfet.ids model ~temp ~vgs ~vds in
    let id = e.id *. mult and gm = e.gm *. mult and gds = e.gds *. mult in
    (* linearized: Id(v) = Ieq + gm*vgs + gds*vds *)
    let ieq = id -. (gm *. vgs) -. (gds *. vds) in
    (* gds acts like a resistor d-s *)
    stamp_g gds mat d s;
    (* gm: current gm*(vg - vs) flowing d -> s *)
    stamp_vccs gm mat d s g s;
    (* Ieq flows from d to s through the device: leaves d, enters s *)
    stamp_i (-.ieq) rhs d;
    stamp_i ieq rhs s
  | C.Device.Resistor _ | C.Device.Capacitor _ | C.Device.Vsource _
  | C.Device.Isource _ | C.Device.Switch _ ->
    assert false

let assemble sys ~(opts : Options.t) ~t_now ~x ~reactive =
  let n = sys.size in
  let mat = L.create n n in
  let rhs = Array.make n 0.0 in
  (* gmin to ground on every node keeps floating subcircuits solvable *)
  for node = 1 to sys.n_nodes - 1 do
    mat.(node - 1).(node - 1) <- mat.(node - 1).(node - 1) +. opts.gmin
  done;
  let branch_row name = sys.n_nodes - 1 + Hashtbl.find sys.vsrc_branch name in
  Array.iter
    (fun d ->
      match d with
      | C.Device.Resistor { a; b; r; _ } -> stamp_g (1.0 /. r) mat a b
      | C.Device.Switch { a; b; ctrl; g_on; g_off; threshold; _ } ->
        let g = if C.Waveform.eval ctrl t_now > threshold then g_on else g_off in
        stamp_g g mat a b
      | C.Device.Capacitor { name; a; b; c; _ } ->
        if reactive.dt > 0.0 then begin
          let vab_prev = reactive.prev_v.(a) -. reactive.prev_v.(b) in
          let slot = Hashtbl.find sys.cap_index name in
          let g, i_hist =
            match opts.integrator with
            | Options.Backward_euler ->
              let g = c /. reactive.dt in
              (g, g *. vab_prev)
            | Options.Trapezoidal ->
              let g = 2.0 *. c /. reactive.dt in
              (g, (g *. vab_prev) +. reactive.prev_cap_current.(slot))
          in
          stamp_g g mat a b;
          stamp_i i_hist rhs a;
          stamp_i (-.i_hist) rhs b
        end
      | C.Device.Vsource { name; pos; neg; wave } ->
        let row = branch_row name in
        (* branch current leaves pos, enters neg *)
        if pos > 0 then begin
          mat.(pos - 1).(row) <- mat.(pos - 1).(row) +. 1.0;
          mat.(row).(pos - 1) <- mat.(row).(pos - 1) +. 1.0
        end;
        if neg > 0 then begin
          mat.(neg - 1).(row) <- mat.(neg - 1).(row) -. 1.0;
          mat.(row).(neg - 1) <- mat.(row).(neg - 1) -. 1.0
        end;
        rhs.(row) <- C.Waveform.eval wave t_now
      | C.Device.Isource { pos; neg; wave; _ } ->
        let i = C.Waveform.eval wave t_now in
        (* positive current flows pos -> neg through the source: leaves
           the pos node, is injected into the neg node *)
        stamp_i (-.i) rhs pos;
        stamp_i i rhs neg
      | C.Device.Mosfet _ ->
        mosfet_stamps ~temp:opts.temp mat rhs x sys d)
    sys.compiled.devices;
  (mat, rhs)

let cap_currents sys ~(opts : Options.t) ~x ~reactive =
  let out = Array.make sys.n_caps 0.0 in
  if reactive.dt > 0.0 then
    Array.iter
      (fun d ->
        match d with
        | C.Device.Capacitor { name; a; b; c; _ } ->
          let slot = Hashtbl.find sys.cap_index name in
          let vab = node_voltage sys x a -. node_voltage sys x b in
          let vab_prev = reactive.prev_v.(a) -. reactive.prev_v.(b) in
          let i =
            match opts.integrator with
            | Options.Backward_euler -> c /. reactive.dt *. (vab -. vab_prev)
            | Options.Trapezoidal ->
              (2.0 *. c /. reactive.dt *. (vab -. vab_prev))
              -. reactive.prev_cap_current.(slot)
          in
          out.(slot) <- i
        | C.Device.Resistor _ | C.Device.Vsource _ | C.Device.Isource _
        | C.Device.Switch _ | C.Device.Mosfet _ ->
          ())
      sys.compiled.devices;
  out
