module C = Dramstress_circuit
module L = Dramstress_util.Linalg
module Tel = Dramstress_util.Telemetry

let c_template_rebuilds = Tel.Counter.make "engine.mna.template_rebuilds"
let c_lu_factors = Tel.Counter.make "engine.mna.lu_factors"
let c_lu_solves = Tel.Counter.make "engine.mna.lu_solves"

(* one factorization + one substitution happened (the naive Newton path
   calls this; the incremental path counts inside [solve_in_place]) *)
let record_factor_solve () =
  Tel.Counter.incr c_lu_factors;
  Tel.Counter.incr c_lu_solves

(* Pre-resolved stamp plans: every name lookup and node-to-row mapping is
   done once at [make] time, so the per-iteration hot path only walks
   flat arrays of integers and floats. Devices split into a
   *static-linear* part (resistors, voltage-source topology, capacitor
   conductances — fixed for a given time step and integrator) that is
   pre-stamped into a cached template, and a *dynamic* part (switches,
   source values, capacitor history, MOSFET linearizations) restamped on
   top of a row-wise copy of the template. *)

type res_plan = { r_a : int; r_b : int; g_res : float }

type switch_plan = {
  s_a : int;
  s_b : int;
  ctrl : C.Waveform.t;
  g_on : float;
  g_off : float;
  threshold : float;
}

type cap_plan = { c_a : int; c_b : int; slot : int; cap : float }
type vsrc_plan = { v_pos : int; v_neg : int; row : int; v_wave : C.Waveform.t }
type isrc_plan = { i_pos : int; i_neg : int; i_wave : C.Waveform.t }

type mos_plan = {
  m_d : int;
  m_g : int;
  m_s : int;
  model : C.Mosfet.model;
  mult : float;
}

type t = {
  compiled : C.Netlist.compiled;
  n_nodes : int;
  n_vsources : int;
  size : int;
  vsrc_branch : (string, int) Hashtbl.t;  (* vsource name -> branch index *)
  cap_index : (string, int) Hashtbl.t;    (* capacitor name -> slot *)
  res_index : (string, int) Hashtbl.t;    (* resistor name -> plan index *)
  n_caps : int;
  resistors : res_plan array;
  switches : switch_plan array;
  caps : cap_plan array;
  vsrcs : vsrc_plan array;
  isrcs : isrc_plan array;
  mosfets : mos_plan array;
}

let make (compiled : C.Netlist.compiled) =
  let n_nodes = compiled.n_nodes in
  let vsrc_branch = Hashtbl.create 8 in
  let cap_index = Hashtbl.create 8 in
  let nv = ref 0 and nc = ref 0 in
  Array.iter
    (fun d ->
      match d with
      | C.Device.Vsource { name; _ } ->
        Hashtbl.add vsrc_branch name !nv;
        incr nv
      | C.Device.Capacitor { name; _ } ->
        Hashtbl.add cap_index name !nc;
        incr nc
      | C.Device.Resistor _ | C.Device.Isource _ | C.Device.Switch _
      | C.Device.Mosfet _ ->
        ())
    compiled.devices;
  let resistors = ref [] and switches = ref [] and caps = ref [] in
  let vsrcs = ref [] and isrcs = ref [] and mosfets = ref [] in
  let res_index = Hashtbl.create 8 in
  let nr = ref 0 in
  Array.iter
    (fun d ->
      match d with
      | C.Device.Resistor { name; a; b; r; _ } ->
        Hashtbl.add res_index name !nr;
        incr nr;
        resistors := { r_a = a; r_b = b; g_res = 1.0 /. r } :: !resistors
      | C.Device.Switch { a; b; ctrl; g_on; g_off; threshold; _ } ->
        switches := { s_a = a; s_b = b; ctrl; g_on; g_off; threshold } :: !switches
      | C.Device.Capacitor { name; a; b; c; _ } ->
        caps :=
          { c_a = a; c_b = b; slot = Hashtbl.find cap_index name; cap = c }
          :: !caps
      | C.Device.Vsource { name; pos; neg; wave } ->
        vsrcs :=
          { v_pos = pos; v_neg = neg;
            row = n_nodes - 1 + Hashtbl.find vsrc_branch name; v_wave = wave }
          :: !vsrcs
      | C.Device.Isource { pos; neg; wave; _ } ->
        isrcs := { i_pos = pos; i_neg = neg; i_wave = wave } :: !isrcs
      | C.Device.Mosfet { d; g; s; model; m; _ } ->
        mosfets := { m_d = d; m_g = g; m_s = s; model; mult = m } :: !mosfets)
    compiled.devices;
  let arr l = Array.of_list (List.rev !l) in
  {
    compiled;
    n_nodes;
    n_vsources = !nv;
    size = n_nodes - 1 + !nv;
    vsrc_branch;
    cap_index;
    res_index;
    n_caps = !nc;
    resistors = arr resistors;
    switches = arr switches;
    caps = arr caps;
    vsrcs = arr vsrcs;
    isrcs = arr isrcs;
    mosfets = arr mosfets;
  }

let size sys = sys.size
let n_nodes sys = sys.n_nodes
let n_capacitors sys = sys.n_caps
let resistor_index sys name = Hashtbl.find_opt sys.res_index name
let resistor_g sys index = sys.resistors.(index).g_res

(* The structural nonzero pattern of every system any assembly of [sys]
   can produce — derived from the stamp PLANS, never from numeric
   values: a MOSFET's gm is zero below threshold and nonzero above, a
   switch conductance swings between g_on and g_off, but the stamped
   POSITIONS are fixed. This is what {!Dramstress_util.Sparse_lu}
   analyses once per topology. *)
let structural_pattern sys =
  let n = sys.size in
  let pat = Array.make_matrix n n false in
  let mark r c = if r > 0 && c > 0 then pat.(r - 1).(c - 1) <- true in
  let mark_g a b =
    mark a a;
    mark b b;
    mark a b;
    mark b a
  in
  for node = 1 to sys.n_nodes - 1 do
    pat.(node - 1).(node - 1) <- true (* gmin *)
  done;
  Array.iter (fun p -> mark_g p.r_a p.r_b) sys.resistors;
  Array.iter (fun p -> mark_g p.s_a p.s_b) sys.switches;
  Array.iter (fun p -> mark_g p.c_a p.c_b) sys.caps;
  Array.iter
    (fun p ->
      (* branch rows/cols land past the node block; mark them directly *)
      if p.v_pos > 0 then begin
        pat.(p.v_pos - 1).(p.row) <- true;
        pat.(p.row).(p.v_pos - 1) <- true
      end;
      if p.v_neg > 0 then begin
        pat.(p.v_neg - 1).(p.row) <- true;
        pat.(p.row).(p.v_neg - 1) <- true
      end)
    sys.vsrcs;
  Array.iter
    (fun p ->
      (* gds between d and s, plus the gm VCCS controlled by (g, s) *)
      mark_g p.m_d p.m_s;
      mark p.m_d p.m_g;
      mark p.m_s p.m_g)
    sys.mosfets;
  pat

let node_voltage _sys x node = if node = 0 then 0.0 else x.(node - 1)

let voltages sys x =
  Array.init sys.n_nodes (fun n -> if n = 0 then 0.0 else x.(n - 1))

let pack sys node_voltages =
  Array.init sys.size (fun i ->
      if i < sys.n_nodes - 1 then node_voltages.(i + 1) else 0.0)

let branch_current sys x name =
  x.(sys.n_nodes - 1 + Hashtbl.find sys.vsrc_branch name)

type reactive = {
  dt : float;
  prev_v : float array;
  prev_cap_current : float array;
}

let dc_reactive sys =
  { dt = 0.0; prev_v = Array.make sys.n_nodes 0.0;
    prev_cap_current = Array.make sys.n_caps 0.0 }

let init_reactive sys ~prev_v =
  assert (Array.length prev_v = sys.n_nodes);
  { dt = 0.0; prev_v; prev_cap_current = Array.make sys.n_caps 0.0 }

(* Stamping helpers. Node indices map to matrix rows as [node - 1];
   ground (0) contributions are dropped. *)

let stamp_g g mat a b =
  let ia = a - 1 and ib = b - 1 in
  if ia >= 0 then mat.(ia).(ia) <- mat.(ia).(ia) +. g;
  if ib >= 0 then mat.(ib).(ib) <- mat.(ib).(ib) +. g;
  if ia >= 0 && ib >= 0 then begin
    mat.(ia).(ib) <- mat.(ia).(ib) -. g;
    mat.(ib).(ia) <- mat.(ib).(ia) -. g
  end

(* current [i] injected INTO node [n] appears on the RHS *)
let stamp_i i rhs n = if n > 0 then rhs.(n - 1) <- rhs.(n - 1) +. i

(* VCCS: current g * (v_cp - v_cn) flows from node [p] to node [n]
   (leaves p, enters n). First-order function on purpose — an inner
   closure here would allocate once per MOSFET per Newton iteration. *)
let stamp_vccs_set mat r c v =
  if r > 0 && c > 0 then mat.(r - 1).(c - 1) <- mat.(r - 1).(c - 1) +. v

let stamp_vccs g mat p n cp cn =
  stamp_vccs_set mat p cp g;
  stamp_vccs_set mat p cn (-.g);
  stamp_vccs_set mat n cp (-.g);
  stamp_vccs_set mat n cn g

(* capacitor companion conductance for one time step *)
let cap_g ~(opts : Options.t) ~dt c =
  match opts.integrator with
  | Options.Backward_euler -> c /. dt
  | Options.Trapezoidal -> 2.0 *. c /. dt

let mosfet_stamps ~temp mat rhs x sys (m : C.Device.t) =
  match m with
  | C.Device.Mosfet { d; g; s; model; m = mult; _ } ->
    let vd = node_voltage sys x d
    and vg = node_voltage sys x g
    and vs = node_voltage sys x s in
    let vgs = vg -. vs and vds = vd -. vs in
    let e = C.Mosfet.ids model ~temp ~vgs ~vds in
    let id = e.id *. mult and gm = e.gm *. mult and gds = e.gds *. mult in
    (* linearized: Id(v) = Ieq + gm*vgs + gds*vds *)
    let ieq = id -. (gm *. vgs) -. (gds *. vds) in
    (* gds acts like a resistor d-s *)
    stamp_g gds mat d s;
    (* gm: current gm*(vg - vs) flowing d -> s *)
    stamp_vccs gm mat d s g s;
    (* Ieq flows from d to s through the device: leaves d, enters s *)
    stamp_i (-.ieq) rhs d;
    stamp_i ieq rhs s
  | C.Device.Resistor _ | C.Device.Capacitor _ | C.Device.Vsource _
  | C.Device.Isource _ | C.Device.Switch _ ->
    assert false

(* Reference from-scratch assembly (the seed implementation). Kept alive
   as the golden baseline: the incremental workspace path below must
   produce identical systems, which the regression tests assert. *)
let assemble sys ~(opts : Options.t) ~t_now ~x ~reactive =
  let n = sys.size in
  let mat = L.create n n in
  let rhs = Array.make n 0.0 in
  (* gmin to ground on every node keeps floating subcircuits solvable *)
  for node = 1 to sys.n_nodes - 1 do
    mat.(node - 1).(node - 1) <- mat.(node - 1).(node - 1) +. opts.gmin
  done;
  let branch_row name = sys.n_nodes - 1 + Hashtbl.find sys.vsrc_branch name in
  Array.iter
    (fun d ->
      match d with
      | C.Device.Resistor { a; b; r; _ } -> stamp_g (1.0 /. r) mat a b
      | C.Device.Switch { a; b; ctrl; g_on; g_off; threshold; _ } ->
        let g = if C.Waveform.eval ctrl t_now > threshold then g_on else g_off in
        stamp_g g mat a b
      | C.Device.Capacitor { name; a; b; c; _ } ->
        if reactive.dt > 0.0 then begin
          let vab_prev = reactive.prev_v.(a) -. reactive.prev_v.(b) in
          let slot = Hashtbl.find sys.cap_index name in
          let g = cap_g ~opts ~dt:reactive.dt c in
          let i_hist =
            match opts.integrator with
            | Options.Backward_euler -> g *. vab_prev
            | Options.Trapezoidal ->
              (g *. vab_prev) +. reactive.prev_cap_current.(slot)
          in
          stamp_g g mat a b;
          stamp_i i_hist rhs a;
          stamp_i (-.i_hist) rhs b
        end
      | C.Device.Vsource { name; pos; neg; wave } ->
        let row = branch_row name in
        (* branch current leaves pos, enters neg *)
        if pos > 0 then begin
          mat.(pos - 1).(row) <- mat.(pos - 1).(row) +. 1.0;
          mat.(row).(pos - 1) <- mat.(row).(pos - 1) +. 1.0
        end;
        if neg > 0 then begin
          mat.(neg - 1).(row) <- mat.(neg - 1).(row) -. 1.0;
          mat.(row).(neg - 1) <- mat.(row).(neg - 1) -. 1.0
        end;
        rhs.(row) <- C.Waveform.eval wave t_now
      | C.Device.Isource { pos; neg; wave; _ } ->
        let i = C.Waveform.eval wave t_now in
        (* positive current flows pos -> neg through the source: leaves
           the pos node, is injected into the neg node *)
        stamp_i (-.i) rhs pos;
        stamp_i i rhs neg
      | C.Device.Mosfet _ ->
        mosfet_stamps ~temp:opts.temp mat rhs x sys d)
    sys.compiled.devices;
  (mat, rhs)

(* ------------------------------------------------------------------ *)
(* Incremental assembly workspace                                      *)
(* ------------------------------------------------------------------ *)

module Sp = Dramstress_util.Sparse_lu

type workspace = {
  w_size : int;
  mat : L.matrix;          (* stamped system, factored in place *)
  rhs : float array;       (* stamped RHS, overwritten with the solution *)
  tmpl : L.matrix;         (* cached static-linear template *)
  (* scalar fields rather than a key tuple: the validity check runs every
     Newton iteration and must not allocate *)
  mutable tmpl_valid : bool;
  mutable tmpl_dt : float;
  mutable tmpl_gmin : float;
  mutable tmpl_trapezoidal : bool;
  mutable tmpl_excluded : int;
  (* per-lane resistance override (ensemble sweeps): plan index of the
     resistor excluded from the template, and the conductance stamped in
     its place after every template copy. [-1] = no override. Stamping
     the lane conductance directly — rather than adding a delta on top
     of the base stamp — keeps the lane's conductance exact across the
     full 1e3..1e11 Ohm sweep range (a delta cancels catastrophically
     when the lane and base conductances differ by orders of magnitude) *)
  mutable excluded_res : int;
  mutable override_g : float;
  (* cached control evaluations for the current t_now, shared across
     ensemble lanes (one waveform walk per time point, not per lane) *)
  sw_g : float array;
  vs_v : float array;
  is_i : float array;
  perm : int array;
  scratch : float array;
  mutable slu : Sp.t option;  (* lazily built on the first sparse solve *)
}

let make_workspace sys =
  let n = sys.size in
  {
    w_size = n;
    mat = L.create n n;
    rhs = Array.make n 0.0;
    tmpl = L.create n n;
    tmpl_valid = false;
    tmpl_dt = 0.0;
    tmpl_gmin = 0.0;
    tmpl_trapezoidal = false;
    tmpl_excluded = -1;
    excluded_res = -1;
    override_g = 0.0;
    sw_g = Array.make (Array.length sys.switches) 0.0;
    vs_v = Array.make (Array.length sys.vsrcs) 0.0;
    is_i = Array.make (Array.length sys.isrcs) 0.0;
    perm = Array.make n 0;
    scratch = Array.make n 0.0;
    slu = None;
  }

let set_resistor_override ws ~index ~g =
  ws.excluded_res <- index;
  ws.override_g <- g

let clear_resistor_override ws =
  ws.excluded_res <- -1;
  ws.override_g <- 0.0

(* static-linear part: gmin regularization, resistors, voltage-source
   topology and — for a fixed (dt, integrator) — the capacitor companion
   conductances. Everything here is independent of t, x and history. A
   resistor under lane override is left out (its lane conductance is
   stamped fresh after each template copy instead). *)
let rebuild_template sys ws ~(opts : Options.t) ~dt =
  let tmpl = ws.tmpl in
  for i = 0 to ws.w_size - 1 do
    Array.fill tmpl.(i) 0 ws.w_size 0.0
  done;
  for node = 1 to sys.n_nodes - 1 do
    tmpl.(node - 1).(node - 1) <- tmpl.(node - 1).(node - 1) +. opts.gmin
  done;
  Array.iteri
    (fun i p ->
      if i <> ws.excluded_res then stamp_g p.g_res tmpl p.r_a p.r_b)
    sys.resistors;
  Array.iter
    (fun p ->
      if p.v_pos > 0 then begin
        tmpl.(p.v_pos - 1).(p.row) <- tmpl.(p.v_pos - 1).(p.row) +. 1.0;
        tmpl.(p.row).(p.v_pos - 1) <- tmpl.(p.row).(p.v_pos - 1) +. 1.0
      end;
      if p.v_neg > 0 then begin
        tmpl.(p.v_neg - 1).(p.row) <- tmpl.(p.v_neg - 1).(p.row) -. 1.0;
        tmpl.(p.row).(p.v_neg - 1) <- tmpl.(p.row).(p.v_neg - 1) -. 1.0
      end)
    sys.vsrcs;
  if dt > 0.0 then
    Array.iter
      (fun p -> stamp_g (cap_g ~opts ~dt p.cap) tmpl p.c_a p.c_b)
      sys.caps

(* Evaluate every control waveform at [t_now] into the workspace
   buffers. Split out of assembly so the ensemble engine can walk the
   waveforms once per time point and share the values across all lanes
   (they integrate on one shared grid). *)
let eval_controls_into sys ws ~t_now =
  for i = 0 to Array.length sys.switches - 1 do
    let p = sys.switches.(i) in
    ws.sw_g.(i) <-
      (if C.Waveform.eval p.ctrl t_now > p.threshold then p.g_on else p.g_off)
  done;
  for i = 0 to Array.length sys.vsrcs - 1 do
    ws.vs_v.(i) <- C.Waveform.eval sys.vsrcs.(i).v_wave t_now
  done;
  for i = 0 to Array.length sys.isrcs - 1 do
    ws.is_i.(i) <- C.Waveform.eval sys.isrcs.(i).i_wave t_now
  done

(* assembly from pre-evaluated controls ([eval_controls_into]) *)
let assemble_into_pre sys ws ~(opts : Options.t) ~x ~reactive =
  let n = ws.w_size in
  assert (n = sys.size);
  let trapezoidal =
    match opts.integrator with
    | Options.Backward_euler -> false
    | Options.Trapezoidal -> true
  in
  (if
     (not ws.tmpl_valid)
     || ws.tmpl_dt <> reactive.dt
     || ws.tmpl_gmin <> opts.gmin
     || ws.tmpl_trapezoidal <> trapezoidal
     || ws.tmpl_excluded <> ws.excluded_res
   then begin
     Tel.Counter.incr c_template_rebuilds;
     rebuild_template sys ws ~opts ~dt:reactive.dt;
     ws.tmpl_valid <- true;
     ws.tmpl_dt <- reactive.dt;
     ws.tmpl_gmin <- opts.gmin;
     ws.tmpl_trapezoidal <- trapezoidal;
     ws.tmpl_excluded <- ws.excluded_res
   end);
  let mat = ws.mat and rhs = ws.rhs in
  for i = 0 to n - 1 do
    Array.blit ws.tmpl.(i) 0 mat.(i) 0 n
  done;
  Array.fill rhs 0 n 0.0;
  (if ws.excluded_res >= 0 then
     let p = sys.resistors.(ws.excluded_res) in
     stamp_g ws.override_g mat p.r_a p.r_b);
  (* dynamic stamps: switch state and source values at t_now, capacitor
     history currents, MOSFET linearization around x. Indexed loops, not
     [Array.iter]: this body runs every Newton iteration and a closure per
     device class would be allocated on each call. *)
  for i = 0 to Array.length sys.switches - 1 do
    let p = sys.switches.(i) in
    stamp_g ws.sw_g.(i) mat p.s_a p.s_b
  done;
  if reactive.dt > 0.0 then
    for i = 0 to Array.length sys.caps - 1 do
      let p = sys.caps.(i) in
      let vab_prev = reactive.prev_v.(p.c_a) -. reactive.prev_v.(p.c_b) in
      let g = cap_g ~opts ~dt:reactive.dt p.cap in
      let i_hist =
        match opts.integrator with
        | Options.Backward_euler -> g *. vab_prev
        | Options.Trapezoidal ->
          (g *. vab_prev) +. reactive.prev_cap_current.(p.slot)
      in
      stamp_i i_hist rhs p.c_a;
      stamp_i (-.i_hist) rhs p.c_b
    done;
  for i = 0 to Array.length sys.vsrcs - 1 do
    rhs.(sys.vsrcs.(i).row) <- ws.vs_v.(i)
  done;
  for i = 0 to Array.length sys.isrcs - 1 do
    let p = sys.isrcs.(i) in
    let i_src = ws.is_i.(i) in
    stamp_i (-.i_src) rhs p.i_pos;
    stamp_i i_src rhs p.i_neg
  done;
  let temp = opts.temp in
  for i = 0 to Array.length sys.mosfets - 1 do
    let p = sys.mosfets.(i) in
    let vd = node_voltage sys x p.m_d
    and vg = node_voltage sys x p.m_g
    and vs = node_voltage sys x p.m_s in
    let vgs = vg -. vs and vds = vd -. vs in
    let e = C.Mosfet.ids p.model ~temp ~vgs ~vds in
    let id = e.C.Mosfet.id *. p.mult
    and gm = e.C.Mosfet.gm *. p.mult
    and gds = e.C.Mosfet.gds *. p.mult in
    let ieq = id -. (gm *. vgs) -. (gds *. vds) in
    stamp_g gds mat p.m_d p.m_s;
    stamp_vccs gm mat p.m_d p.m_s p.m_g p.m_s;
    stamp_i (-.ieq) rhs p.m_d;
    stamp_i ieq rhs p.m_s
  done

let assemble_into sys ws ~(opts : Options.t) ~t_now ~x ~reactive =
  eval_controls_into sys ws ~t_now;
  assemble_into_pre sys ws ~opts ~x ~reactive

module Chaos = Dramstress_util.Chaos

let solve_in_place sys ws ~(opts : Options.t) =
  record_factor_solve ();
  if Chaos.armed () && Chaos.fire Chaos.Perturb_jacobian then
    (* zero a row: crisply rank-deficient, so the factorization's pivot
       guard must catch it — the detection the chaos harness asserts *)
    Array.fill ws.mat.(0) 0 ws.w_size 0.0;
  if opts.dense_lu then begin
    (* golden oracle: the dense in-place LU with per-factor partial
       pivoting, selected like [naive_assembly] selects the reference
       assembly *)
    let lu = L.lu_factor_in_place ws.mat ~perm:ws.perm in
    L.lu_solve_in_place lu ~scratch:ws.scratch ws.rhs
  end
  else begin
    let slu =
      match ws.slu with
      | Some s -> s
      | None ->
        let s = Sp.make ~n:ws.w_size ~pattern:(structural_pattern sys) in
        ws.slu <- Some s;
        s
    in
    Sp.factor slu ws.mat;
    Sp.solve slu ~scratch:ws.scratch ws.rhs
  end

let solution ws = ws.rhs

(* [out] may alias [reactive.prev_cap_current]: each capacitor reads
   only its own slot's previous current before overwriting that same
   slot, so the in-place update is well-defined. *)
let cap_currents_into sys ~(opts : Options.t) ~x ~reactive ~out =
  if reactive.dt > 0.0 then
    Array.iter
      (fun p ->
        let vab = node_voltage sys x p.c_a -. node_voltage sys x p.c_b in
        let vab_prev = reactive.prev_v.(p.c_a) -. reactive.prev_v.(p.c_b) in
        let i =
          match opts.integrator with
          | Options.Backward_euler -> p.cap /. reactive.dt *. (vab -. vab_prev)
          | Options.Trapezoidal ->
            (2.0 *. p.cap /. reactive.dt *. (vab -. vab_prev))
            -. reactive.prev_cap_current.(p.slot)
        in
        out.(p.slot) <- i)
      sys.caps
  else Array.iter (fun p -> out.(p.slot) <- 0.0) sys.caps

let cap_currents sys ~(opts : Options.t) ~x ~reactive =
  let out = Array.make sys.n_caps 0.0 in
  cap_currents_into sys ~opts ~x ~reactive ~out;
  out
