(** DC operating point: capacitors open, sources at their [t = 0] value. *)

(** [solve compiled ?opts ?guess ()] computes the operating point and
    returns per-node voltages indexed by node id. [guess] provides initial
    node voltages (by node name). Falls back to a short gmin-stepping
    homotopy when plain Newton fails. *)
val solve :
  Dramstress_circuit.Netlist.compiled ->
  ?opts:Options.t ->
  ?guess:(string * float) list ->
  unit ->
  float array
