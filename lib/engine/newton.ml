module L = Dramstress_util.Linalg

exception No_convergence of { t : float; iterations : int; worst : float }

let solve sys ~(opts : Options.t) ~t_now ~reactive ~x0 =
  let n_node_unknowns = Mna.n_nodes sys - 1 in
  let x = Array.copy x0 in
  let rec iterate iter =
    let mat, rhs = Mna.assemble sys ~opts ~t_now ~x ~reactive in
    let x_new = L.lu_solve (L.lu_factor mat) rhs in
    (* clamp node-voltage updates; branch currents move freely *)
    let worst = ref 0.0 in
    for i = 0 to Array.length x - 1 do
      let dx = x_new.(i) -. x.(i) in
      if i < n_node_unknowns then begin
        let dx_clamped =
          Float.max (-.opts.max_step_v) (Float.min opts.max_step_v dx)
        in
        x.(i) <- x.(i) +. dx_clamped;
        worst := Float.max !worst (Float.abs dx)
      end
      else x.(i) <- x_new.(i)
    done;
    let tol =
      opts.abstol
      +. (opts.reltol
         *. Array.fold_left
              (fun acc v -> Float.max acc (Float.abs v))
              0.0 x)
    in
    if !worst <= tol then x
    else if iter >= opts.max_newton then
      raise (No_convergence { t = t_now; iterations = iter; worst = !worst })
    else iterate (iter + 1)
  in
  iterate 1
