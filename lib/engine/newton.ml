module L = Dramstress_util.Linalg
module Chaos = Dramstress_util.Chaos
module Tel = Dramstress_util.Telemetry

exception No_convergence of { t : float; iterations : int; worst : float }

exception
  Numerical_health of { t : float; iterations : int; what : string }

exception Timeout of { t : float; budget_s : float }

let () =
  Printexc.register_printer (function
    | Numerical_health { t; iterations; what } ->
      Some
        (Printf.sprintf
           "Newton.Numerical_health { t=%.4g s; iteration %d; %s }" t
           iterations what)
    | Timeout { t; budget_s } ->
      Some
        (Printf.sprintf
           "Newton.Timeout { t=%.4g s; wall-clock budget %.3g s exceeded }" t
           budget_s)
    | _ -> None)

let c_solves = Tel.Counter.make "engine.newton.solves"
let c_iterations = Tel.Counter.make "engine.newton.iterations"
let c_failures = Tel.Counter.make "engine.newton.failures"
let c_clamps = Tel.Counter.make "engine.newton.step_clamps"
let c_nan = Tel.Counter.make "engine.health.nan_detected"
let c_singular = Tel.Counter.make "engine.health.singular_lu"

let h_iterations =
  Tel.Histogram.make ~unit_:"iters" ~lo:1.0 ~hi:128.0 ~buckets:14
    "engine.newton.iterations_per_solve"

(* shared convergence bookkeeping: apply the clamped update from [x_new]
   onto [x] and return the worst node-voltage move *)
let apply_update ~(opts : Options.t) ~n_node_unknowns x x_new =
  let worst = ref 0.0 in
  let clamped = ref 0 in
  for i = 0 to Array.length x - 1 do
    let dx = x_new.(i) -. x.(i) in
    if i < n_node_unknowns then begin
      let dx_clamped =
        Float.max (-.opts.max_step_v) (Float.min opts.max_step_v dx)
      in
      if dx_clamped <> dx then incr clamped;
      x.(i) <- x.(i) +. dx_clamped;
      worst := Float.max !worst (Float.abs dx)
    end
    else x.(i) <- x_new.(i)
  done;
  Tel.Counter.add c_clamps !clamped;
  !worst

let tolerance ~(opts : Options.t) x =
  opts.abstol
  +. (opts.reltol
     *. Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x)

let record_solve iterations =
  Tel.Counter.incr c_solves;
  Tel.Counter.add c_iterations iterations;
  Tel.Histogram.observe h_iterations (float_of_int iterations)

let fail ~t_now ~iter ~worst =
  Tel.Counter.incr c_failures;
  Tel.Counter.add c_iterations iter;
  raise (No_convergence { t = t_now; iterations = iter; worst })

let sick ~t_now ~iter what =
  Tel.Counter.incr c_failures;
  Tel.Counter.add c_iterations iter;
  raise (Numerical_health { t = t_now; iterations = iter; what })

(* a singular LU surfaced from either factorization path: counted on the
   health counter, then converted to the typed error *)
let sick_singular ~t_now ~iter ~row ~pivot =
  Tel.Counter.incr c_singular;
  sick ~t_now ~iter
    (Printf.sprintf "singular system (row %d, pivot %.3g)" row pivot)

(* runtime health monitor, shared by both solve paths. All three checks
   raise typed errors that the retry ladder above understands — a sick
   state never leaves the solver as a plausible-looking voltage. *)

let check_finite ~t_now ~iter x =
  let n = Array.length x in
  let bad = ref (-1) in
  for i = 0 to n - 1 do
    (* v -. v is 0 for finite v, nan for nan/inf; the local float keeps
       the scan unboxed without flambda, unlike a Float.is_finite call *)
    let v = x.(i) in
    if !bad < 0 && not (v -. v = 0.0) then bad := i
  done;
  if !bad >= 0 then begin
    Tel.Counter.incr c_nan;
    sick ~t_now ~iter
      (Printf.sprintf "non-finite state (%h at unknown %d)" x.(!bad) !bad)
  end

(* The clock is read once per 16 deadline checks, with the phase carried
   across solves: most solves converge in a handful of iterations, so a
   per-solve phase would still pay one gettimeofday per time point,
   while the shared counter amortizes the poll over ~16 Newton
   iterations regardless of solve boundaries. A hung (or already
   expired) run is cut within 16 iterations of the deadline — tens of
   microseconds against seconds-scale budgets. The counter is a plain
   ref: deadline runs are scalar/per-domain, and a racy phase merely
   shifts when the next poll lands. *)
let poll_phase = ref 0

let check_deadline ~deadline_at ~t_now ~iter:_ =
  match deadline_at with
  | None -> ()
  | Some (at, budget_s) ->
    let ph = !poll_phase + 1 in
    poll_phase := ph;
    if ph land 15 = 0 && Unix.gettimeofday () > at then
      raise (Timeout { t = t_now; budget_s })

(* the chaos sites local to the solver; both are no-ops while dormant *)
let chaos_diverge () =
  Chaos.armed () && Chaos.fire Chaos.Force_newton_diverge

let chaos_nan x =
  if Chaos.armed () && Chaos.fire Chaos.Inject_nan_state then
    x.(0) <- Float.nan

(* reference path: allocate and factor a fresh system every iteration *)
let solve_naive sys ~(opts : Options.t) ?deadline_at ~t_now ~reactive ~x0 () =
  let n_node_unknowns = Mna.n_nodes sys - 1 in
  let x = Array.copy x0 in
  let diverge = chaos_diverge () in
  let rec iterate iter =
    check_deadline ~deadline_at ~t_now ~iter;
    let mat, rhs = Mna.assemble sys ~opts ~t_now ~x ~reactive in
    Mna.record_factor_solve ();
    let x_new =
      match L.lu_solve (L.lu_factor mat) rhs with
      | x_new -> x_new
      | exception L.Singular { row; pivot } ->
        sick_singular ~t_now ~iter ~row ~pivot
    in
    let worst = apply_update ~opts ~n_node_unknowns x x_new in
    chaos_nan x;
    if opts.health_guards then check_finite ~t_now ~iter x;
    if (not diverge) && worst <= tolerance ~opts x then begin
      record_solve iter;
      x
    end
    else if iter >= opts.max_newton then fail ~t_now ~iter ~worst
    else iterate (iter + 1)
  in
  iterate 1

(* incremental path: all matrix work happens inside the caller-provided
   (or one-shot) workspace — zero per-iteration matrix allocation *)
let solve_ws sys ws ~(opts : Options.t) ?deadline_at ~t_now ~reactive ~x0 () =
  let n_node_unknowns = Mna.n_nodes sys - 1 in
  let x = Array.copy x0 in
  let diverge = chaos_diverge () in
  let rec iterate iter =
    check_deadline ~deadline_at ~t_now ~iter;
    Mna.assemble_into sys ws ~opts ~t_now ~x ~reactive;
    (match Mna.solve_in_place sys ws ~opts with
    | () -> ()
    | exception L.Singular { row; pivot } ->
      sick_singular ~t_now ~iter ~row ~pivot);
    let worst = apply_update ~opts ~n_node_unknowns x (Mna.solution ws) in
    chaos_nan x;
    if opts.health_guards then check_finite ~t_now ~iter x;
    if (not diverge) && worst <= tolerance ~opts x then begin
      record_solve iter;
      x
    end
    else if iter >= opts.max_newton then fail ~t_now ~iter ~worst
    else iterate (iter + 1)
  in
  iterate 1

let solve sys ?ws ?deadline_at ~(opts : Options.t) ~t_now ~reactive ~x0 () =
  if opts.naive_assembly then
    solve_naive sys ~opts ?deadline_at ~t_now ~reactive ~x0 ()
  else
    let ws = match ws with Some w -> w | None -> Mna.make_workspace sys in
    solve_ws sys ws ~opts ?deadline_at ~t_now ~reactive ~x0 ()
