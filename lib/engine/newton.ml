module L = Dramstress_util.Linalg
module Tel = Dramstress_util.Telemetry

exception No_convergence of { t : float; iterations : int; worst : float }

let c_solves = Tel.Counter.make "engine.newton.solves"
let c_iterations = Tel.Counter.make "engine.newton.iterations"
let c_failures = Tel.Counter.make "engine.newton.failures"
let c_clamps = Tel.Counter.make "engine.newton.step_clamps"

let h_iterations =
  Tel.Histogram.make ~unit_:"iters" ~lo:1.0 ~hi:128.0 ~buckets:14
    "engine.newton.iterations_per_solve"

(* shared convergence bookkeeping: apply the clamped update from [x_new]
   onto [x] and return the worst node-voltage move *)
let apply_update ~(opts : Options.t) ~n_node_unknowns x x_new =
  let worst = ref 0.0 in
  let clamped = ref 0 in
  for i = 0 to Array.length x - 1 do
    let dx = x_new.(i) -. x.(i) in
    if i < n_node_unknowns then begin
      let dx_clamped =
        Float.max (-.opts.max_step_v) (Float.min opts.max_step_v dx)
      in
      if dx_clamped <> dx then incr clamped;
      x.(i) <- x.(i) +. dx_clamped;
      worst := Float.max !worst (Float.abs dx)
    end
    else x.(i) <- x_new.(i)
  done;
  Tel.Counter.add c_clamps !clamped;
  !worst

let tolerance ~(opts : Options.t) x =
  opts.abstol
  +. (opts.reltol
     *. Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x)

let record_solve iterations =
  Tel.Counter.incr c_solves;
  Tel.Counter.add c_iterations iterations;
  Tel.Histogram.observe h_iterations (float_of_int iterations)

let fail ~t_now ~iter ~worst =
  Tel.Counter.incr c_failures;
  Tel.Counter.add c_iterations iter;
  raise (No_convergence { t = t_now; iterations = iter; worst })

(* reference path: allocate and factor a fresh system every iteration *)
let solve_naive sys ~(opts : Options.t) ~t_now ~reactive ~x0 =
  let n_node_unknowns = Mna.n_nodes sys - 1 in
  let x = Array.copy x0 in
  let rec iterate iter =
    let mat, rhs = Mna.assemble sys ~opts ~t_now ~x ~reactive in
    Mna.record_factor_solve ();
    let x_new = L.lu_solve (L.lu_factor mat) rhs in
    let worst = apply_update ~opts ~n_node_unknowns x x_new in
    if worst <= tolerance ~opts x then begin
      record_solve iter;
      x
    end
    else if iter >= opts.max_newton then fail ~t_now ~iter ~worst
    else iterate (iter + 1)
  in
  iterate 1

(* incremental path: all matrix work happens inside the caller-provided
   (or one-shot) workspace — zero per-iteration matrix allocation *)
let solve_ws sys ws ~(opts : Options.t) ~t_now ~reactive ~x0 =
  let n_node_unknowns = Mna.n_nodes sys - 1 in
  let x = Array.copy x0 in
  let rec iterate iter =
    Mna.assemble_into sys ws ~opts ~t_now ~x ~reactive;
    Mna.solve_in_place ws;
    let worst = apply_update ~opts ~n_node_unknowns x (Mna.solution ws) in
    if worst <= tolerance ~opts x then begin
      record_solve iter;
      x
    end
    else if iter >= opts.max_newton then fail ~t_now ~iter ~worst
    else iterate (iter + 1)
  in
  iterate 1

let solve sys ?ws ~(opts : Options.t) ~t_now ~reactive ~x0 () =
  if opts.naive_assembly then solve_naive sys ~opts ~t_now ~reactive ~x0
  else
    let ws = match ws with Some w -> w | None -> Mna.make_workspace sys in
    solve_ws sys ws ~opts ~t_now ~reactive ~x0
