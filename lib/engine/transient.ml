module C = Dramstress_circuit
module I = Dramstress_util.Interp
module Tel = Dramstress_util.Telemetry

let c_runs = Tel.Counter.make "engine.transient.runs"
let c_accepted = Tel.Counter.make "engine.transient.steps_accepted"
let c_rejected = Tel.Counter.make "engine.transient.steps_rejected"

let h_dt =
  Tel.Histogram.make ~unit_:"s" ~lo:1e-15 ~hi:1e-3 ~buckets:48
    "engine.transient.dt_s"

type result = {
  times : float array;
  probe_names : string array;
  probe_values : float array array;
  final_v : float array;
  probe_interps : (string, I.t) Hashtbl.t;
}

exception
  Step_failed of {
    seg_start : float;
    seg_end : float;
    t : float;
    dt : float;
    retries : int;
    iterations : int;
    worst : float;
  }

let () =
  Printexc.register_printer (function
    | Step_failed { seg_start; seg_end; t; dt; retries; iterations; worst } ->
      Some
        (Printf.sprintf
           "Transient.Step_failed { segment %.4g..%.4g s; t=%.4g s; dt=%.4g \
            s; %d halving retries exhausted; %d Newton iterations; worst \
            update %.3g V }"
           seg_start seg_end t dt retries iterations worst)
    | _ -> None)

let probe result name =
  match Hashtbl.find_opt result.probe_interps name with
  | Some interp -> interp
  | None -> raise Not_found

let value_at result name t = I.eval (probe result name) t

(* the sampled times strictly increase, so the interpolant can take the
   arrays directly without the sort/dedup pass of [I.of_points] *)
let make_interps times probe_names probe_values =
  let tbl = Hashtbl.create (Array.length probe_names) in
  Array.iteri
    (fun i name ->
      if not (Hashtbl.mem tbl name) then
        Hashtbl.add tbl name (I.of_sorted_arrays times probe_values.(i)))
    probe_names;
  tbl

let run compiled ?(opts = Options.default) ?deadline_at ~segments ~ics ~probes
    () =
  Tel.Counter.incr c_runs;
  if not (opts.Options.dt_scale > 0.0) then
    invalid_arg "Transient.run: dt_scale must be positive";
  (* the degradation knob: refine every segment's nominal step uniformly
     without touching the segment plan itself *)
  let segments =
    if opts.Options.dt_scale = 1.0 then segments
    else
      List.map (fun (t_end, dt) -> (t_end, dt *. opts.Options.dt_scale))
        segments
  in
  (match segments with
  | [] -> invalid_arg "Transient.run: no segments"
  | _ ->
    ignore
      (List.fold_left
         (fun t_prev (t_end, dt) ->
           if dt <= 0.0 then invalid_arg "Transient.run: dt <= 0";
           if t_end <= t_prev then
             invalid_arg "Transient.run: segment ends must increase";
           t_end)
         0.0 segments));
  let sys = Mna.make compiled in
  let ws = Mna.make_workspace sys in
  let n_nodes = Mna.n_nodes sys in
  let v = Array.make n_nodes 0.0 in
  List.iter
    (fun (name, value) ->
      match
        (try Some (C.Netlist.compiled_node compiled name) with Not_found -> None)
      with
      | Some n ->
        if n = 0 then invalid_arg "Transient.run: cannot set ground IC";
        v.(n) <- value
      | None -> invalid_arg ("Transient.run: unknown IC node " ^ name))
    ics;
  let probe_ids =
    Array.of_list
      (List.map
         (fun name ->
           try C.Netlist.compiled_node compiled name
           with Not_found ->
             invalid_arg ("Transient.run: unknown probe node " ^ name))
         probes)
  in
  (* initial quasi-static solve: a near-zero BE step pins capacitor
     voltages at their ICs while making resistive nodes consistent *)
  let reactive0 =
    { (Mna.init_reactive sys ~prev_v:v) with Mna.dt = 1e-18 }
  in
  let x =
    ref (Newton.solve sys ~ws ?deadline_at ~opts ~t_now:0.0
           ~reactive:reactive0 ~x0:(Mna.pack sys v) ())
  in
  let prev_v = ref (Mna.voltages sys !x) in
  let prev_cap =
    ref (Mna.cap_currents sys ~opts ~x:!x ~reactive:reactive0)
  in
  let times = ref [ 0.0 ] in
  let samples = ref [ Array.map (fun id -> !prev_v.(id)) probe_ids ] in
  let record t =
    times := t :: !times;
    samples := Array.map (fun id -> !prev_v.(id)) probe_ids :: !samples
  in
  let max_retries = 4 in
  (* one accepted step from the current state to t_next, with halving
     retries on Newton failure; an exhausted retry budget surfaces as
     Step_failed so sweep-level callers can report which point died *)
  let advance ~seg_start ~seg_end t_prev t_next =
    let rec attempt t_prev dt retries =
      let t_now = t_prev +. dt in
      let reactive =
        { Mna.dt; prev_v = !prev_v; prev_cap_current = !prev_cap }
      in
      match Newton.solve sys ~ws ?deadline_at ~opts ~t_now ~reactive ~x0:!x ()
      with
      | x_new ->
        Tel.Counter.incr c_accepted;
        Tel.Histogram.observe h_dt dt;
        x := x_new;
        prev_cap := Mna.cap_currents sys ~opts ~x:x_new ~reactive;
        prev_v := Mna.voltages sys x_new;
        if t_now >= t_next -. 1e-21 then ()
        else attempt t_now (t_next -. t_now) retries
      | exception Newton.No_convergence { t; iterations; worst } ->
        Tel.Counter.incr c_rejected;
        if retries > 0 then attempt t_prev (dt /. 2.0) (retries - 1)
        else
          raise
            (Step_failed
               { seg_start; seg_end; t; dt; retries = max_retries; iterations;
                 worst })
      (* a numerically sick step gets the same halving retries — a
         smaller step often routes around the sick region — but an
         exhausted budget re-raises the typed health error itself so
         the retry ladder and sweep reports keep the diagnosis.
         Newton.Timeout is deliberately not caught: a point past its
         wall-clock budget must fail now, not retry. *)
      | exception (Newton.Numerical_health _ as e) ->
        Tel.Counter.incr c_rejected;
        if retries > 0 then attempt t_prev (dt /. 2.0) (retries - 1)
        else raise e
    in
    attempt t_prev (t_next -. t_prev) max_retries
  in
  let t = ref 0.0 in
  ignore
    (List.fold_left
       (fun seg_start (t_end, dt) ->
         Tel.with_span "transient.segment"
           ~attrs:(fun () ->
             [ ("t_start", Tel.Float seg_start);
               ("t_end", Tel.Float t_end);
               ("dt", Tel.Float dt) ])
           (fun () ->
             while !t < t_end -. (dt /. 2.0) do
               let t_next = Float.min t_end (!t +. dt) in
               advance ~seg_start ~seg_end:t_end !t t_next;
               t := t_next;
               record !t
             done;
             t := Float.max !t t_end);
         t_end)
       0.0 segments);
  let times_arr = Array.of_list (List.rev !times) in
  let n_pts = Array.length times_arr in
  let samples_arr = Array.of_list (List.rev !samples) in
  let probe_values =
    Array.init (Array.length probe_ids) (fun i ->
        Array.init n_pts (fun k -> samples_arr.(k).(i)))
  in
  let probe_names = Array.of_list probes in
  {
    times = times_arr;
    probe_names;
    probe_values;
    final_v = !prev_v;
    probe_interps = make_interps times_arr probe_names probe_values;
  }
