module C = Dramstress_circuit

type point = { value : float; voltages : float array; unknowns : float array }

type t = {
  source : string;
  points : point list;
  compiled : C.Netlist.compiled;
}

let run compiled ?(opts = Options.default) ~source ~values () =
  let sys = Mna.make compiled in
  let reactive = Mna.dc_reactive sys in
  let x = ref (Mna.pack sys (Array.make (Mna.n_nodes sys) 0.0)) in
  (* all stepped systems share the layout, so one workspace serves the
     whole sweep *)
  let ws = Mna.make_workspace sys in
  let points =
    List.map
      (fun value ->
        let stepped = C.Netlist.with_dc_source compiled source value in
        let sys_v = Mna.make stepped in
        let x_new =
          try Newton.solve sys_v ~ws ~opts ~t_now:0.0 ~reactive ~x0:!x ()
          with Newton.No_convergence _ ->
            (* continuation failed: homotopy from strong regularization *)
            let rec homotopy gmin x0 =
              let opts' = { opts with Options.gmin } in
              let x' =
                Newton.solve sys_v ~ws ~opts:opts' ~t_now:0.0 ~reactive ~x0 ()
              in
              if gmin <= opts.Options.gmin *. 1.001 then x'
              else homotopy (Float.max opts.Options.gmin (gmin /. 100.0)) x'
            in
            homotopy 1e-3 !x
        in
        x := x_new;
        { value; voltages = Mna.voltages sys x_new; unknowns = x_new })
      values
  in
  { source; points; compiled }

let node_curve sweep name =
  let id = C.Netlist.compiled_node sweep.compiled name in
  List.map (fun p -> (p.value, p.voltages.(id))) sweep.points

let source_current_curve sweep name =
  let sys = Mna.make sweep.compiled in
  List.map
    (fun p -> (p.value, Mna.branch_current sys p.unknowns name))
    sweep.points
