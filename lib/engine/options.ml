type integrator = Backward_euler | Trapezoidal

type t = {
  abstol : float;
  reltol : float;
  max_newton : int;
  gmin : float;
  max_step_v : float;
  temp : float;
  integrator : integrator;
  naive_assembly : bool;
  dense_lu : bool;
  dt_scale : float;
  health_guards : bool;
}

let default =
  {
    abstol = 1e-6;
    reltol = 1e-4;
    max_newton = 80;
    gmin = 1e-12;
    max_step_v = 1.0;
    temp = 300.15;
    integrator = Backward_euler;
    naive_assembly = false;
    dense_lu = false;
    dt_scale = 1.0;
    health_guards = true;
  }
