(** Transient analysis over a piecewise-uniform time grid.

    The grid is given as segments [(t_end, dt)]: the solver steps with
    time step [dt] until [t_end], then switches to the next segment. This
    supports microsecond retention pauses next to sub-nanosecond switching
    activity without an adaptive controller. *)

type result = {
  times : float array;
  (** accepted time points, starting at 0.0 *)
  probe_names : string array;
  probe_values : float array array;
  (** [probe_values.(i).(k)] is probe [i] at [times.(k)] *)
  final_v : float array;
  (** node voltages at the last time point, indexed by node id *)
  probe_interps : (string, Dramstress_util.Interp.t) Hashtbl.t;
  (** name -> interpolant table built at result construction; {!probe}
      and {!value_at} are O(1) lookups instead of rebuilding the
      interpolant per query. Treat as read-only. *)
}

exception
  Step_failed of {
    seg_start : float;  (** start of the segment being integrated, s *)
    seg_end : float;    (** end of that segment, s *)
    t : float;          (** time point that failed to converge, s *)
    dt : float;         (** step size of the final (smallest) attempt, s *)
    retries : int;      (** halving retries that were exhausted *)
    iterations : int;   (** Newton iterations spent on the last attempt *)
    worst : float;      (** largest remaining voltage update, V *)
  }
(** Raised when a time point still fails to converge after the built-in
    step-halving retries. Wraps {!Newton.No_convergence} with enough
    context (segment bounds, final step size, retry budget) for
    sweep-level callers to report which operating point diverged. *)

(** [make_interps times probe_names probe_values] builds the interpolant
    table of a {!result} from strictly increasing sample times. Exposed
    for {!Ensemble}, which assembles per-lane results itself. *)
val make_interps :
  float array ->
  string array ->
  float array array ->
  (string, Dramstress_util.Interp.t) Hashtbl.t

(** [probe result name] is the sampled waveform of a probe as an
    interpolating curve. Raises [Not_found] for unknown probes. *)
val probe : result -> string -> Dramstress_util.Interp.t

(** [value_at result name t] is the probe value at time [t]. *)
val value_at : result -> string -> float -> float

(** [run compiled ?opts ?deadline_at ~segments ~ics ~probes ()]
    integrates the circuit.

    - [segments]: ordered [(t_end, dt)] list; [t_end] strictly increases
      and [dt > 0].
    - [ics]: initial node voltages by node name; unnamed nodes start at
      0 V and are made consistent by an initial quasi-static solve (a
      backward-Euler step of essentially zero length, which pins
      capacitor voltages at their ICs while solving resistive nodes).
    - [probes]: node names to record at every accepted point.
    - [deadline_at]: absolute wall-clock cutoff [(at, budget_s)] threaded
      into every {!Newton.solve}; past it the run raises
      {!Newton.Timeout} immediately (no halving retries).

    Raises {!Step_failed} if a time point fails to converge after the
    built-in step-halving retries (4 halvings). A step that trips the
    runtime health monitor gets the same halving retries but re-raises
    {!Newton.Numerical_health} (with its original context) when they
    are exhausted. *)
val run :
  Dramstress_circuit.Netlist.compiled ->
  ?opts:Options.t ->
  ?deadline_at:float * float ->
  segments:(float * float) list ->
  ics:(string * float) list ->
  probes:string list ->
  unit ->
  result
