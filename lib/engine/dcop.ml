module C = Dramstress_circuit

let solve compiled ?(opts = Options.default) ?(guess = []) () =
  let sys = Mna.make compiled in
  let v0 = Array.make (Mna.n_nodes sys) 0.0 in
  List.iter
    (fun (name, v) ->
      match
        (try Some (C.Netlist.compiled_node compiled name) with Not_found -> None)
      with
      | Some n -> v0.(n) <- v
      | None -> invalid_arg ("Dcop.solve: unknown node " ^ name))
    guess;
  let x0 = Mna.pack sys v0 in
  let reactive = Mna.dc_reactive sys in
  let ws = Mna.make_workspace sys in
  let attempt opts = Newton.solve sys ~ws ~opts ~t_now:0.0 ~reactive ~x0 () in
  let x =
    try attempt opts
    with Newton.No_convergence _ ->
      (* gmin stepping: solve with a strong shunt, reuse as the guess for
         progressively weaker regularization *)
      let rec step gmin x_prev =
        let opts' = { opts with gmin } in
        let x =
          Newton.solve sys ~ws ~opts:opts' ~t_now:0.0 ~reactive ~x0:x_prev ()
        in
        if gmin <= opts.gmin *. 1.001 then x
        else step (Float.max opts.gmin (gmin /. 100.0)) x
      in
      step 1e-3 x0
  in
  Mna.voltages sys x
