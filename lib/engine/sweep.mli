(** DC parameter sweeps: repeated operating-point solves while stepping
    one source — transfer curves, I–V characteristics.

    The stepped source must be a DC voltage source; its value is
    replaced at every point and the previous solution seeds the next
    Newton solve (continuation), which keeps strongly nonlinear curves
    converging. *)

type point = {
  value : float;               (** swept source value *)
  voltages : float array;      (** node voltages by node id *)
  unknowns : float array;      (** raw MNA vector (incl. branch currents) *)
}

type t = {
  source : string;
  points : point list;
  compiled : Dramstress_circuit.Netlist.compiled;
}

(** [run compiled ?opts ~source ~values ()] solves the DC operating
    point for each value of the named V-source. Raises
    [Invalid_argument] if the source is missing or not a DC source. *)
val run :
  Dramstress_circuit.Netlist.compiled ->
  ?opts:Options.t ->
  source:string ->
  values:float list ->
  unit ->
  t

(** [node_curve sweep name] extracts (swept value, node voltage) pairs.
    Raises [Not_found] for unknown nodes. *)
val node_curve : t -> string -> (float * float) list

(** [source_current_curve sweep name] extracts the branch current of a
    voltage source across the sweep — e.g. the drain current of a
    device tied to a zero-volt ammeter source. *)
val source_current_curve : t -> string -> (float * float) list
