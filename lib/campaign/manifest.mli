(** Declarative campaign manifests.

    A campaign is the paper's actual deliverable: not one sweep but a
    {e comparison across stress settings} — border-resistance shifts
    between supply, timing and temperature corners for every injected
    defect (Figures 3–5, Table 1). A manifest declares that study once,
    in a file, and the campaign runner turns it into concrete simulation
    points, reusing whatever an earlier run already computed.

    The file format is a single s-expression (comments start with [;]
    and run to the end of the line):

    {v
    (campaign
      (name vdd-study)
      ;; bare id = both bit-line placements; (id true|comp) = one
      (defects O1 (Sg true) (B1 comp))
      ;; named stress settings; unset axes inherit the paper's nominal.
      ;; Any axis in the {!Dramstress_stressaxis.Stressaxis} registry
      ;; works: the paper's four plus wait, pattern, hammer, leak,
      ;; couple, twr-trim, tras-trim. The pattern axis also takes its
      ;; symbolic names (all0 | checkerboard | all1).
      (stress nominal)
      (stress low-vdd (vdd 2.1))
      (stress retention (wait 1.0) (pattern checkerboard) (leak 1e-13))
      ;; optional cross-product sweep, auto-labeled "vdd=2.1,temp=-33";
      ;; (range lo hi n [log|lin]) expands to n values spaced per the
      ;; axis's natural scale (wait/leak/hammer sweep logarithmically)
      (sweep (vdd 2.1 2.7) (temp -33 87))
      (sweep (wait (range 0.01 100 4)) (hammer 0 (range 10 1000 3)))
      ;; operation sequences evaluated per (defect, stress) pair
      (detections best (seq "w1 w1 w0 r0") (march "{up(w0);up(r0,w1)}"))
      ;; simulation-config overrides (Sim_config.v fields)
      (sim (steps-per-cycle 400) (deadline 30) (jobs 4))
      ;; border-search window, tolerance and scan strategy
      (border (r-min 1e3) (r-max 1e11) (grid-points 13) (rel-tol 0.01)
              (strategy grid)))
    v}

    [strategy] is [grid] (the exhaustive oracle, the default) or
    [adaptive] (sparse probing of the same grid — see
    {!Dramstress_core.Border.Window.strategy}); under [adaptive] the
    runner also warm-starts each point's bracket from the previous
    stress setting of the same (defect, detection) chain.

    Validation is collected, not fail-fast: {!of_string} gathers {e
    every} problem into one {!Invalid} report, in the style of
    {!Dramstress_circuit.Netlist.Invalid}. *)

(** How a (defect, stress) pair is to be tested. *)
type detection_spec =
  | Best
      (** synthesize the best detection condition at that stress
          ({!Dramstress_core.Sc_eval.best_detection}), retention pauses
          allowed *)
  | Best_no_pause  (** as [Best] but pause-free (nominal-test style) *)
  | Seq of Dramstress_core.Detection.t
      (** an explicit operation sequence, e.g. ["w1 w1 w0 r0"] *)
  | March of Dramstress_march.March.t
      (** a march test, lowered to its per-cell operation stream
          ({!Dramstress_march.March.to_detection}) *)

type t = {
  name : string;
  defects :
    (Dramstress_defect.Defect.entry * Dramstress_defect.Defect.placement)
    list;
  stresses : (string * Dramstress_dram.Stress.t) list;
      (** labeled stress settings, in declaration order (sweep entries
          expanded behind the explicit ones) *)
  detections : detection_spec list;  (** defaults to [[Best]] *)
  config : Dramstress_dram.Sim_config.t;
      (** resolved simulation configuration ([sim] section over
          {!Dramstress_dram.Sim_config.default}) *)
  window : Dramstress_core.Border.Window.t;
      (** border-search window, tolerance and strategy ([border]
          section over {!Dramstress_core.Border.Window.default}; the
          former flat [r_min]/[r_max]/[grid_points]/[rel_tol] fields
          live inside it now) *)
}

(** One problem found while reading a manifest. *)
type diagnostic =
  | Parse_error of { line : int; msg : string }
      (** the s-expression itself is malformed *)
  | Unknown_section of { section : string }
  | Missing_field of { section : string; field : string }
  | Empty_section of { section : string }
  | Unknown_defect of { id : string }
  | Duplicate_label of { label : string }
  | Bad_value of {
      section : string;
      field : string;
      value : string;
      msg : string;
    }
  | Bad_range of {
      axis : string;
      lo : float;
      hi : float;
      reason : string;
    }
      (** a [(range lo hi n [log|lin])] sweep whose bounds are empty
          (min >= max, or n < 1) or whose log spacing crosses zero *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit

(** Raised with {e every} diagnostic found — the whole sick set in one
    report. A printer is registered, so uncaught escapes render
    readably. *)
exception Invalid of diagnostic list

(** [of_string ?source s] parses and validates a manifest. [source]
    names the input in error messages (defaults to ["<string>"]).
    Raises {!Invalid}. *)
val of_string : ?source:string -> string -> t

(** [load path] reads and parses the file. Raises {!Invalid} on
    manifest problems, [Sys_error] if unreadable. *)
val load : string -> t

(** [detection_label spec] — short display/canonical form: ["best"],
    ["best-nopause"], ["seq:w1,w0,r0"], ["march:<name>"]. *)
val detection_label : detection_spec -> string

val pp : Format.formatter -> t -> unit
