(* Wire protocol of the campaign service: small s-expressions in
   length-prefixed frames over a local Unix-domain socket.

   A frame is an 8-hex-digit payload length followed by exactly that
   many bytes of rendered s-expression. Hex keeps the header fixed
   width and human-greppable in captures; the length prefix means
   neither side ever scans for a terminator inside manifest text. *)

type sexp = Atom of string | List of sexp list

(* ---- rendering ---- *)

let needs_quoting s =
  s = ""
  || String.exists
       (function
         | ' ' | '(' | ')' | '"' | '\n' | '\t' | '\r' | '\\' -> true
         | _ -> false)
       s

let rec print buf = function
  | Atom s ->
    if needs_quoting s then begin
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\t' -> Buffer.add_string buf "\\t"
          | '\r' -> Buffer.add_string buf "\\r"
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
    end
    else Buffer.add_string buf s
  | List xs ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        print buf x)
      xs;
    Buffer.add_char buf ')'

let to_string x =
  let b = Buffer.create 256 in
  print b x;
  Buffer.contents b

(* ---- parsing ---- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> incr pos
        | None -> raise (Parse_error "unclosed list")
        | Some _ ->
          items := parse () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected )")
    | Some '"' ->
      incr pos;
      let b = Buffer.create 32 in
      let rec qloop () =
        if !pos >= n then raise (Parse_error "unclosed string");
        let c = s.[!pos] in
        incr pos;
        match c with
        | '"' -> ()
        | '\\' ->
          if !pos >= n then raise (Parse_error "dangling escape");
          let e = s.[!pos] in
          incr pos;
          Buffer.add_char b
            (match e with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c);
          qloop ()
        | c ->
          Buffer.add_char b c;
          qloop ()
      in
      qloop ();
      Atom (Buffer.contents b)
    | Some _ ->
      let start = !pos in
      let rec aloop () =
        match peek () with
        | Some (' ' | '\n' | '\t' | '\r' | '(' | ')' | '"') | None -> ()
        | Some _ ->
          incr pos;
          aloop ()
      in
      aloop ();
      Atom (String.sub s start (!pos - start))
  in
  match parse () with
  | x ->
    skip_ws ();
    if !pos <> n then Error "trailing bytes after s-expression" else Ok x
  | exception Parse_error m -> Error m

(* ---- framing ---- *)

(* well above any manifest or rendered diff, well below a typo'd header *)
let max_frame = 16 * 1024 * 1024

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd x =
  let payload = Bytes.of_string (to_string x) in
  let header = Bytes.of_string (Printf.sprintf "%08x" (Bytes.length payload)) in
  write_all fd header 0 8;
  write_all fd payload 0 (Bytes.length payload)

(* [deadline] is an absolute instant: once a frame has started
   arriving, every further byte must land before it, enforced with
   [Unix.select] ahead of each read — the defence against slowloris
   peers that trickle half a frame and hold the connection hostage. *)
let read_exact ?deadline fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then `Ok buf
    else begin
      let ready =
        match deadline with
        | None -> `Ready
        | Some d ->
          let rec wait () =
            let remaining = d -. Unix.gettimeofday () in
            if remaining <= 0.0 then `Timeout
            else begin
              match Unix.select [ fd ] [] [] remaining with
              | [], _, _ -> `Timeout
              | _ -> `Ready
              | exception Unix.Unix_error (EINTR, _, _) -> wait ()
            end
          in
          wait ()
      in
      match ready with
      | `Timeout -> `Timeout
      | `Ready -> begin
        match Unix.read fd buf off (len - off) with
        | 0 -> `Eof
        | n -> go (off + n)
        | exception Unix.Unix_error (EINTR, _, _) -> go off
      end
    end
  in
  go 0

let read_frame ?frame_timeout fd =
  (* Block indefinitely for the first byte: an idle keep-alive client
     is welcome to sit silent between requests. The deadline starts
     the moment a frame begins. *)
  let first = Bytes.create 1 in
  let rec first_read () =
    match Unix.read fd first 0 1 with
    | 0 -> Error `Eof
    | _ -> Ok ()
    | exception Unix.Unix_error (EINTR, _, _) -> first_read ()
  in
  match first_read () with
  | Error e -> Error e
  | Ok () -> (
    let deadline =
      Option.map (fun t -> Unix.gettimeofday () +. t) frame_timeout
    in
    match read_exact ?deadline fd 7 with
    | `Eof -> Error `Eof
    | `Timeout -> Error `Timeout
    | `Ok rest -> (
      let h = Bytes.to_string first ^ Bytes.to_string rest in
      match int_of_string_opt ("0x" ^ h) with
      | None -> Error (`Protocol "bad frame header")
      | Some len when len < 0 || len > max_frame ->
        Error (`Protocol "oversized frame")
      | Some len -> (
        match read_exact ?deadline fd len with
        | `Eof -> Error `Eof
        | `Timeout -> Error `Timeout
        | `Ok payload -> (
          match of_string (Bytes.to_string payload) with
          | Ok x -> Ok x
          | Error m -> Error (`Protocol m)))))

(* ---- typed requests and responses ---- *)

type request =
  | Submit of { manifest : string; jobs : int option }
  | Status
  | Query of string
  | Diff of { a : string; b : string }
  | Merge of string
  | Counters
  | Shutdown

type point_status = Reused | Simulated | Deduped | Failed

type response =
  | Point of { descr : string; status : point_status; payload : string }
  | Done of {
      planned : int;
      reused : int;
      simulated : int;
      deduped : int;
      failed : int;
    }
  | Status_report of {
      name : string;
      engine : string;
      records : int;
      shards : int;
      inflight : int;
    }
  | Found of string
  | Not_found
  | Diff_report of string
  | Merged of { added : int; replaced : int; kept : int }
  | Counter_values of (string * int) list
  | Busy of { retry_after : float }
  | Draining
  | Bye
  | Error_msg of string

let kv name v = List [ Atom name; Atom v ]
let kvi name v = kv name (string_of_int v)

let field name items =
  List.find_map
    (function
      | List [ Atom n; Atom v ] when n = name -> Some v
      | _ -> None)
    items

let int_field name items = Option.bind (field name items) int_of_string_opt

let string_of_point_status = function
  | Reused -> "reused"
  | Simulated -> "simulated"
  | Deduped -> "deduped"
  | Failed -> "failed"

let point_status_of_string = function
  | "reused" -> Some Reused
  | "simulated" -> Some Simulated
  | "deduped" -> Some Deduped
  | "failed" -> Some Failed
  | _ -> None

let encode_request = function
  | Submit { manifest; jobs } ->
    List
      (Atom "submit" :: kv "manifest" manifest
      :: (match jobs with Some j -> [ kvi "jobs" j ] | None -> []))
  | Status -> List [ Atom "status" ]
  | Query key -> List [ Atom "query"; Atom key ]
  | Diff { a; b } -> List [ Atom "diff"; kv "a" a; kv "b" b ]
  | Merge dir -> List [ Atom "merge"; Atom dir ]
  | Counters -> List [ Atom "counters" ]
  | Shutdown -> List [ Atom "shutdown" ]

let decode_request = function
  | List (Atom "submit" :: items) -> (
    match field "manifest" items with
    | Some manifest -> Ok (Submit { manifest; jobs = int_field "jobs" items })
    | None -> Error "submit: missing manifest")
  | List [ Atom "status" ] -> Ok Status
  | List [ Atom "query"; Atom key ] -> Ok (Query key)
  | List (Atom "diff" :: items) -> (
    match (field "a" items, field "b" items) with
    | Some a, Some b -> Ok (Diff { a; b })
    | _ -> Error "diff: missing side")
  | List [ Atom "merge"; Atom dir ] -> Ok (Merge dir)
  | List [ Atom "counters" ] -> Ok Counters
  | List [ Atom "shutdown" ] -> Ok Shutdown
  | x -> Error ("unknown request: " ^ to_string x)

let encode_response = function
  | Point { descr; status; payload } ->
    List
      [
        Atom "point";
        kv "descr" descr;
        kv "status" (string_of_point_status status);
        kv "payload" payload;
      ]
  | Done { planned; reused; simulated; deduped; failed } ->
    List
      [
        Atom "done";
        kvi "planned" planned;
        kvi "reused" reused;
        kvi "simulated" simulated;
        kvi "deduped" deduped;
        kvi "failed" failed;
      ]
  | Status_report { name; engine; records; shards; inflight } ->
    List
      [
        Atom "status";
        kv "name" name;
        kv "engine" engine;
        kvi "records" records;
        kvi "shards" shards;
        kvi "inflight" inflight;
      ]
  | Found v -> List [ Atom "found"; Atom v ]
  | Not_found -> List [ Atom "not-found" ]
  | Diff_report text -> List [ Atom "diff-report"; Atom text ]
  | Merged { added; replaced; kept } ->
    List
      [ Atom "merged"; kvi "added" added; kvi "replaced" replaced;
        kvi "kept" kept ]
  | Counter_values cs ->
    List (Atom "counters" :: List.map (fun (n, v) -> kvi n v) cs)
  | Busy { retry_after } ->
    (* %h so the hint round-trips exactly *)
    List [ Atom "busy"; kv "retry-after" (Printf.sprintf "%h" retry_after) ]
  | Draining -> List [ Atom "draining" ]
  | Bye -> List [ Atom "bye" ]
  | Error_msg m -> List [ Atom "error"; Atom m ]

let decode_response = function
  | List (Atom "point" :: items) -> (
    match
      ( field "descr" items,
        Option.bind (field "status" items) point_status_of_string,
        field "payload" items )
    with
    | Some descr, Some status, Some payload ->
      Ok (Point { descr; status; payload })
    | _ -> Error "point: missing field")
  | List (Atom "done" :: items) -> (
    match
      ( int_field "planned" items,
        int_field "reused" items,
        int_field "simulated" items,
        int_field "deduped" items,
        int_field "failed" items )
    with
    | Some planned, Some reused, Some simulated, Some deduped, Some failed ->
      Ok (Done { planned; reused; simulated; deduped; failed })
    | _ -> Error "done: missing field")
  | List (Atom "status" :: items) -> (
    match
      ( field "name" items,
        field "engine" items,
        int_field "records" items,
        int_field "shards" items,
        int_field "inflight" items )
    with
    | Some name, Some engine, Some records, Some shards, Some inflight ->
      Ok (Status_report { name; engine; records; shards; inflight })
    | _ -> Error "status: missing field")
  | List [ Atom "found"; Atom v ] -> Ok (Found v)
  | List [ Atom "not-found" ] -> Ok Not_found
  | List [ Atom "diff-report"; Atom text ] -> Ok (Diff_report text)
  | List (Atom "merged" :: items) -> (
    match
      ( int_field "added" items,
        int_field "replaced" items,
        int_field "kept" items )
    with
    | Some added, Some replaced, Some kept -> Ok (Merged { added; replaced; kept })
    | _ -> Error "merged: missing field")
  | List (Atom "counters" :: items) ->
    Ok
      (Counter_values
         (List.filter_map
            (function
              | List [ Atom n; Atom v ] ->
                Option.map (fun v -> (n, v)) (int_of_string_opt v)
              | _ -> None)
            items))
  | List (Atom "busy" :: items) -> (
    match Option.bind (field "retry-after" items) float_of_string_opt with
    | Some retry_after -> Ok (Busy { retry_after })
    | None -> Error "busy: missing retry-after")
  | List [ Atom "draining" ] -> Ok Draining
  | List [ Atom "bye" ] -> Ok Bye
  | List [ Atom "error"; Atom m ] -> Ok (Error_msg m)
  | x -> Error ("unknown response: " ^ to_string x)
