module D = Dramstress_defect.Defect
module Sc = Dramstress_dram.Sim_config
module O = Dramstress_dram.Ops
module Border = Dramstress_core.Border
module Sc_eval = Dramstress_core.Sc_eval
module M = Dramstress_march.March
module Store = Dramstress_util.Store
module Outcome = Dramstress_util.Outcome
module Par = Dramstress_util.Par
module Tel = Dramstress_util.Telemetry

let c_planned = Tel.Counter.make "campaign.points_planned"
let c_reused = Tel.Counter.make "campaign.points_reused"
let c_simulated = Tel.Counter.make "campaign.points_simulated"
let c_failed = Tel.Counter.make "campaign.points_failed"

type state = [ `Done of Plan.result | `Failed of string | `Missing ]

let state ~store (m : Manifest.t) p =
  match Store.find store ~key:(Plan.descriptor m p) with
  | Some payload -> begin
    match Plan.decode_result payload with
    | Some r -> `Done r
    | None -> `Missing (* foreign payload: treat as absent, recompute *)
  end
  | None -> begin
    match Store.find store ~key:(Plan.fail_key m p) with
    | Some msg -> `Failed msg
    | None -> `Missing
  end

let states ~store m =
  List.map (fun p -> (p, state ~store m p)) (Plan.points m)

type summary = {
  planned : int;
  reused : int;
  simulated : int;
  results : (Plan.point * Plan.result) list;
  failures : Plan.point Outcome.failure list;
}

let run ?jobs ~store (m : Manifest.t) =
  let points = Plan.points m in
  let planned = List.length points in
  Tel.Counter.add c_planned planned;
  (* split against the store: successes are never recomputed *)
  let classified =
    List.map
      (fun p ->
        match state ~store m p with
        | `Done r -> (p, Some r)
        | `Failed _ | `Missing -> (p, None))
      points
  in
  let reused = List.filter_map (fun (p, r) -> Option.map (fun r -> (p, r)) r) classified in
  let todo = List.filter_map (fun (p, r) -> if r = None then Some p else None) classified in
  Tel.Counter.add c_reused (List.length reused);
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Sc.resolve_jobs m.Manifest.config
  in
  (* the store's checkpoint handle memoizes the border searches INSIDE
     each point, so killing a run mid-point loses nothing but the
     classification step; the point record itself is written from the
     worker the moment its result exists *)
  let checkpoint = Store.checkpoint store in
  let outcomes =
    Par.parallel_map_outcomes ~jobs ~retries_of:O.retries_of
      (fun (p : Plan.point) ->
        let r =
          match p.Plan.detection with
          | Manifest.Best | Manifest.Best_no_pause ->
            let allow_pause = p.Plan.detection = Manifest.Best in
            let detection, br =
              Sc_eval.best_detection ~config:m.Manifest.config ~checkpoint
                ~r_min:m.Manifest.r_min ~r_max:m.Manifest.r_max
                ~grid_points:m.Manifest.grid_points ~rel_tol:m.Manifest.rel_tol
                ~allow_pause ~stress:p.Plan.stress ~kind:p.Plan.defect.D.kind
                ~placement:p.Plan.placement ()
            in
            { Plan.detection; br }
          | Manifest.Seq _ | Manifest.March _ ->
            let d =
              match p.Plan.detection with
              | Manifest.Seq d -> d
              | Manifest.March t -> M.to_detection t
              | _ -> assert false
            in
            let br =
              Border.search ~config:m.Manifest.config ~checkpoint
                ~r_min:m.Manifest.r_min ~r_max:m.Manifest.r_max
                ~grid_points:m.Manifest.grid_points ~rel_tol:m.Manifest.rel_tol
                ~stress:p.Plan.stress ~kind:p.Plan.defect.D.kind
                ~placement:p.Plan.placement d
            in
            { Plan.detection = d; br }
        in
        let descr = Format.asprintf "%a" Plan.pp_point p in
        Store.put store ~key:(Plan.descriptor m p) ~descr
          (Plan.encode_result r);
        (p, r))
      todo
  in
  let fresh, failures = Outcome.partition outcomes in
  Tel.Counter.add c_simulated (List.length fresh);
  Tel.Counter.add c_failed (List.length failures);
  (* failure records: separate namespace, last attempt wins, so status
     reports the current story and the next run retries them *)
  List.iter
    (fun (f : Plan.point Outcome.failure) ->
      let descr = Format.asprintf "FAILED %a" Plan.pp_point f.Outcome.point in
      Store.put store ~key:(Plan.fail_key m f.Outcome.point) ~descr
        ~overwrite:true
        (Printexc.to_string f.Outcome.error))
    failures;
  (* reassemble in plan order *)
  let by_point = Hashtbl.create 64 in
  List.iter
    (fun (p, r) -> Hashtbl.replace by_point (Plan.descriptor m p) r)
    (reused @ fresh);
  let results =
    List.filter_map
      (fun p ->
        Option.map (fun r -> (p, r)) (Hashtbl.find_opt by_point (Plan.descriptor m p)))
      points
  in
  {
    planned;
    reused = List.length reused;
    simulated = List.length fresh;
    results;
    failures;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v2>campaign: %d point(s) planned, %d reused, %d simulated, %d \
     failed@ %a@]"
    s.planned s.reused s.simulated
    (List.length s.failures)
    (Format.pp_print_list (Outcome.pp_failure Plan.pp_point))
    s.failures
