module D = Dramstress_defect.Defect
module Sc = Dramstress_dram.Sim_config
module O = Dramstress_dram.Ops
module Border = Dramstress_core.Border
module Sc_eval = Dramstress_core.Sc_eval
module M = Dramstress_march.March
module Store = Dramstress_util.Store
module Outcome = Dramstress_util.Outcome
module Par = Dramstress_util.Par
module Chaos = Dramstress_util.Chaos
module Tel = Dramstress_util.Telemetry

let c_planned = Tel.Counter.make "campaign.points_planned"
let c_reused = Tel.Counter.make "campaign.points_reused"
let c_simulated = Tel.Counter.make "campaign.points_simulated"
let c_failed = Tel.Counter.make "campaign.points_failed"
let c_deduped = Tel.Counter.make "campaign.points_deduped"

type state = [ `Done of Plan.result | `Failed of string | `Missing ]

let state ~store (m : Manifest.t) p =
  match Store.find store ~key:(Plan.descriptor m p) with
  | Some payload -> begin
    match Plan.decode_result payload with
    | Some r -> `Done r
    | None -> `Missing (* foreign payload: treat as absent, recompute *)
  end
  | None -> begin
    match Store.find store ~key:(Plan.fail_key m p) with
    | Some msg -> `Failed msg
    | None -> `Missing
  end

let states ~store m =
  List.map (fun p -> (p, state ~store m p)) (Plan.points m)

type summary = {
  planned : int;
  reused : int;
  simulated : int;
  deduped : int;
  results : (Plan.point * Plan.result) list;
  failures : Plan.point Outcome.failure list;
}

(* in-flight deduplication hook for multi-client execution: before
   simulating a missing point the runner [claim]s its descriptor; the
   gate answers [`Run] (we own it — [publish] the outcome when done,
   success or failure, or every waiter hangs) or [`Wait] (someone else
   owns it — the thunk blocks until their published outcome) *)
type gate = {
  claim : string -> [ `Run | `Wait of unit -> (Plan.result, string) result ];
  publish : string -> (Plan.result, string) result -> unit;
}

type event =
  [ `Reused of Plan.result
  | `Simulated of Plan.result
  | `Deduped of Plan.result
  | `Failed of string ]

(* warm-start seeds for the next point of a chain: the border estimates
   of a finished result. They only ADD probes to an adaptive scan, so a
   wrong hint costs a couple of extra samples, never correctness. *)
let hints_of (r : Plan.result) =
  match r.Plan.br with
  | Border.Br v -> [ v ]
  | Border.Faulty_band { lo; hi } -> [ lo; hi ]
  | Border.Bands bands ->
    List.concat_map
      (fun b -> [ Border.edge_mid b.Border.b_lo; Border.edge_mid b.Border.b_hi ])
      bands
  | Border.Always_faulty | Border.Never_faulty | Border.Unsampled -> []

(* adjacent stress settings of the same (defect, placement, detection)
   cell form one warm-start chain: the plan orders detections innermost
   and stresses next, so grouping by everything BUT the stress keeps
   each chain in manifest stress order *)
let chain_key (p : Plan.point) =
  Format.asprintf "%s|%a|%s" p.Plan.defect.D.id D.pp_placement
    p.Plan.placement
    (Manifest.detection_label p.Plan.detection)

let chains_of classified =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((p, _) as item) ->
      let k = chain_key p in
      match Hashtbl.find_opt tbl k with
      | Some items -> items := item :: !items
      | None ->
        order := k :: !order;
        Hashtbl.add tbl k (ref [ item ]))
    classified;
  List.rev_map (fun k -> List.rev !(Hashtbl.find tbl k)) !order

(* The pure simulation of one point — no store access beyond the
   optional checkpoint handle, so it can run behind a process boundary
   (the sandbox worker) exactly as it runs in a worker domain. *)
let simulate_point ?checkpoint ?(hint = []) (m : Manifest.t) (p : Plan.point) =
  match p.Plan.detection with
  | Manifest.Best | Manifest.Best_no_pause ->
    let allow_pause = p.Plan.detection = Manifest.Best in
    let detection, br =
      Sc_eval.best_detection ~config:m.Manifest.config ?checkpoint
        ~window:m.Manifest.window ~hint ~allow_pause ~stress:p.Plan.stress
        ~kind:p.Plan.defect.D.kind ~placement:p.Plan.placement ()
    in
    { Plan.detection; br }
  | Manifest.Seq _ | Manifest.March _ ->
    let d =
      match p.Plan.detection with
      | Manifest.Seq d -> d
      | Manifest.March t -> M.to_detection t
      | _ -> assert false
    in
    let br =
      Border.search ~config:m.Manifest.config ?checkpoint
        ~window:m.Manifest.window ~hint ~stress:p.Plan.stress
        ~kind:p.Plan.defect.D.kind ~placement:p.Plan.placement d
    in
    { Plan.detection = d; br }

let run ?jobs ?gate ?on_point ?executor ?(fanout = `Domains) ~store
    (m : Manifest.t) =
  let points = Plan.points m in
  let planned = List.length points in
  Tel.Counter.add c_planned planned;
  (* split against the store: successes are never recomputed — the
     passive half of the active planner (a point whose BR the store
     already bounds is skipped before any scheduling happens) *)
  let classified =
    List.map
      (fun p ->
        match state ~store m p with
        | `Done r -> (p, Some r)
        | `Failed _ | `Missing -> (p, None))
      points
  in
  let reused = List.filter_map (fun (p, r) -> Option.map (fun r -> (p, r)) r) classified in
  Tel.Counter.add c_reused (List.length reused);
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Sc.resolve_jobs m.Manifest.config
  in
  (* the store's checkpoint handle memoizes the border searches INSIDE
     each point, so killing a run mid-point loses nothing but the
     classification step; the point record itself is written from the
     worker the moment its result exists. Routing by the point's own
     descriptor keeps a point's probe memos in the same shard as its
     result on a sharded store. *)
  let notify p ev = match on_point with Some f -> f p ev | None -> () in
  let simulate ~hint (p : Plan.point) =
    match executor with
    | Some ex -> ex ~hint p
    | None ->
      let checkpoint = Store.checkpoint_for store ~key:(Plan.descriptor m p) in
      simulate_point ~checkpoint ~hint m p
  in
  (* the active half of the planner: each chain walks its stress
     settings in manifest order, seeding every search with the previous
     result's border estimates; chains are independent and fan out over
     domains. Per-point fault isolation matches
     [Par.parallel_map_outcomes]: one failed point becomes a [Failed]
     outcome (chaos faults included), resets the hint — a failed point
     has no border to seed from — and the chain carries on. *)
  let chain_outcomes items =
    let _, outcomes =
      List.fold_left
        (fun (hint, acc) ((p : Plan.point), stored) ->
          match stored with
          | Some r ->
            notify p (`Reused r);
            (hints_of r, acc)
          | None -> begin
            let key = Plan.descriptor m p in
            match
              match gate with None -> `Run | Some g -> g.claim key
            with
            | `Wait wait -> begin
              (* another submission owns this point: block for its
                 outcome instead of simulating it a second time *)
              match wait () with
              | Ok r ->
                notify p (`Deduped r);
                (hints_of r, Outcome.Ok (p, r, `Dedup) :: acc)
              | Error msg ->
                notify p (`Failed msg);
                ( [],
                  Outcome.Failed
                    { Outcome.point = p; error = Failure msg; retries = 0 }
                  :: acc )
            end
            | `Run -> begin
              let publish res =
                match gate with Some g -> g.publish key res | None -> ()
              in
              (* gated runs re-check the store before simulating: a
                 concurrent submission may have landed the point after
                 our classification pass *)
              let late =
                match gate with
                | None -> None
                | Some _ -> Option.bind (Store.find store ~key) Plan.decode_result
              in
              match late with
              | Some r ->
                publish (Ok r);
                notify p (`Deduped r);
                (hints_of r, Outcome.Ok (p, r, `Dedup) :: acc)
              | None -> begin
                match
                  if Chaos.armed () && Chaos.fire Chaos.Fail_worker_task then
                    raise
                      (Chaos.Injected_fault { fault = Chaos.Fail_worker_task });
                  simulate ~hint p
                with
                | r ->
                  let descr = Format.asprintf "%a" Plan.pp_point p in
                  Store.put store ~key ~descr (Plan.encode_result r);
                  (* publish only after the record is durable: a waiter
                     released here must find the point on its next
                     classification pass too *)
                  publish (Ok r);
                  notify p (`Simulated r);
                  (hints_of r, Outcome.Ok (p, r, `Fresh) :: acc)
                | exception e ->
                  publish (Error (Printexc.to_string e));
                  notify p (`Failed (Printexc.to_string e));
                  ( [],
                    Outcome.Failed
                      { Outcome.point = p; error = e; retries = O.retries_of e }
                    :: acc )
              end
            end
          end)
        ([], []) items
    in
    List.rev outcomes
  in
  (* Domains for a local run; systhreads when the process must stay
     fork-capable (the sandboxed service daemon) — exec'ing a point on a
     pool worker blocks outside the runtime anyway, so threads lose
     nothing there. *)
  let fan =
    match fanout with
    | `Domains -> Par.parallel_map
    | `Threads -> Par.concurrent_map
  in
  let outcomes =
    List.concat (fan ~jobs chain_outcomes (chains_of classified))
  in
  let succeeded, failures = Outcome.partition outcomes in
  let fresh =
    List.filter_map
      (fun (p, r, o) -> if o = `Fresh then Some (p, r) else None)
      succeeded
  in
  let deduped =
    List.filter_map
      (fun (p, r, o) -> if o = `Dedup then Some (p, r) else None)
      succeeded
  in
  Tel.Counter.add c_simulated (List.length fresh);
  Tel.Counter.add c_deduped (List.length deduped);
  Tel.Counter.add c_failed (List.length failures);
  (* failure records: separate namespace, last attempt wins, so status
     reports the current story and the next run retries them *)
  List.iter
    (fun (f : Plan.point Outcome.failure) ->
      let descr = Format.asprintf "FAILED %a" Plan.pp_point f.Outcome.point in
      Store.put store ~key:(Plan.fail_key m f.Outcome.point) ~descr
        ~overwrite:true
        (Printexc.to_string f.Outcome.error))
    failures;
  (* reassemble in plan order *)
  let by_point = Hashtbl.create 64 in
  List.iter
    (fun (p, r) -> Hashtbl.replace by_point (Plan.descriptor m p) r)
    (reused @ fresh @ deduped);
  let results =
    List.filter_map
      (fun p ->
        Option.map (fun r -> (p, r)) (Hashtbl.find_opt by_point (Plan.descriptor m p)))
      points
  in
  {
    planned;
    reused = List.length reused;
    simulated = List.length fresh;
    deduped = List.length deduped;
    results;
    failures;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v2>campaign: %d point(s) planned, %d reused, %d simulated, %d \
     deduped, %d failed@ %a@]"
    s.planned s.reused s.simulated s.deduped
    (List.length s.failures)
    (Format.pp_print_list (Outcome.pp_failure Plan.pp_point))
    s.failures
