(** Process-isolated point execution: the glue between {!Runner} and
    {!Dramstress_util.Procpool}.

    The sandboxed service daemon never simulates a point in its own
    process. Each point travels to a pool worker as an opaque task
    string — the manifest text, the point's index in the deterministic
    {!Plan.points} order, and the chain's warm-start hints — and comes
    back as the encoded {!Plan.result}. The worker runs
    {!Runner.simulate_point}, the same function the in-process path
    uses, so sandboxed and local results cannot diverge.

    Trade-off (documented, deliberate): workers get no store checkpoint
    handle, so the intra-point probe memos that soften a mid-point kill
    in local runs are lost in sandbox mode. Results are unaffected —
    the memos only skip re-simulation — and the whole-point record is
    still written by the parent the moment the result lands.

    Deterministic fault injection: when [DRAMSTRESS_WORKER_KILL] is set
    to ["substr:count"], a worker handed a point whose rendered
    description contains [substr] SIGKILLs itself — but only while the
    task's [attempt] number is below [count], so ["low-vdd:2"] kills
    the first two workers that pick the point up and lets the third
    succeed, while a huge count makes the point poison. *)

(** [encode_task ~manifest_text ~index ~hint] renders one task frame. *)
val encode_task : manifest_text:string -> index:int -> hint:float list -> string

(** [decode_task s] is [(manifest_text, index, hint)] — inverse of
    {!encode_task}. *)
val decode_task : string -> (string * int * float list, string) result

(** The {!Dramstress_util.Procpool} worker function: decodes the task,
    simulates the point (with the kill hook above) and returns the
    encoded result. Runs in the forked child; the parsed manifest is
    cached across tasks keyed on its text. *)
val worker : attempt:int -> string -> string

(** [executor ?on_poison pool ~manifest_text m] adapts the pool into
    {!Runner.run}'s [?executor] hook for one submission. A
    [`Worker_error] (the point raised inside the worker) re-raises as
    [Failure msg]; a [`Worker_lost] quarantine calls [on_poison] and
    raises {!Dramstress_util.Procpool.Worker_lost} — both become the
    point's [Failed] outcome in the runner. *)
val executor :
  ?on_poison:(Plan.point -> unit) ->
  Dramstress_util.Procpool.t ->
  manifest_text:string ->
  Manifest.t ->
  hint:float list ->
  Plan.point ->
  Plan.result
