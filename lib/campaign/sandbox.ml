module P = Protocol
module Procpool = Dramstress_util.Procpool

(* ---- task codec: one s-expression, floats in %h so hints round-trip
   exactly ---- *)

let encode_task ~manifest_text ~index ~hint =
  P.to_string
    (P.List
       [
         P.Atom "task";
         P.List [ P.Atom "m"; P.Atom manifest_text ];
         P.List [ P.Atom "i"; P.Atom (string_of_int index) ];
         P.List
           (P.Atom "hints"
           :: List.map (fun h -> P.Atom (Printf.sprintf "%h" h)) hint);
       ])

let decode_task s =
  match P.of_string s with
  | Error msg -> Error msg
  | Ok (P.List (P.Atom "task" :: fields)) -> begin
    let text = ref None and index = ref None and hints = ref [] in
    let bad = ref None in
    List.iter
      (fun f ->
        match f with
        | P.List [ P.Atom "m"; P.Atom t ] -> text := Some t
        | P.List [ P.Atom "i"; P.Atom i ] -> begin
          match int_of_string_opt i with
          | Some i -> index := Some i
          | None -> bad := Some ("task: bad index " ^ i)
        end
        | P.List (P.Atom "hints" :: hs) ->
          List.iter
            (fun h ->
              match h with
              | P.Atom a -> begin
                match float_of_string_opt a with
                | Some v -> hints := v :: !hints
                | None -> bad := Some ("task: bad hint " ^ a)
              end
              | P.List _ -> bad := Some "task: bad hint")
            hs
        | _ -> bad := Some "task: unknown field")
      fields;
    match (!bad, !text, !index) with
    | Some msg, _, _ -> Error msg
    | None, Some t, Some i -> Ok (t, i, List.rev !hints)
    | None, None, _ -> Error "task: missing manifest"
    | None, _, None -> Error "task: missing index"
  end
  | Ok _ -> Error "task: not a (task ...) form"

(* ---- worker side (runs in the forked child) ---- *)

(* One manifest parse per submission, not per point: tasks of the same
   submission carry identical manifest text, so a single-slot cache
   keyed on that text absorbs all but the first parse. *)
let cache : (string * Manifest.t * Plan.point array) option ref = ref None

let manifest_of text =
  match !cache with
  | Some (t, m, pts) when String.equal t text -> (m, pts)
  | _ ->
    let m = Manifest.of_string ~source:"<sandbox-task>" text in
    let pts = Array.of_list (Plan.points m) in
    cache := Some (text, m, pts);
    (m, pts)

let contains s sub =
  let n = String.length s and k = String.length sub in
  k = 0
  ||
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(* DRAMSTRESS_WORKER_KILL="substr:count" — chaos hook for supervision
   tests and the CI soak: suicide while attempt < count on any point
   whose description contains substr. Parsed per task so a test can
   set it on the daemon only. *)
let kill_spec () =
  match Sys.getenv_opt "DRAMSTRESS_WORKER_KILL" with
  | None | Some "" -> None
  | Some spec -> begin
    match String.rindex_opt spec ':' with
    | None -> Some (spec, max_int)
    | Some i ->
      let substr = String.sub spec 0 i in
      let count =
        match
          int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
        with
        | Some c -> c
        | None -> max_int
      in
      Some (substr, count)
  end

let worker ~attempt payload =
  match decode_task payload with
  | Error msg -> failwith ("sandbox: " ^ msg)
  | Ok (text, i, hint) ->
    let m, pts = manifest_of text in
    if i < 0 || i >= Array.length pts then
      failwith
        (Printf.sprintf "sandbox: point index %d out of range (plan has %d)" i
           (Array.length pts));
    let p = pts.(i) in
    (match kill_spec () with
    | Some (substr, count)
      when attempt < count && contains (Format.asprintf "%a" Plan.pp_point p) substr
      -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    Plan.encode_result (Runner.simulate_point ~hint m p)

(* ---- parent side ---- *)

let executor ?(on_poison = fun _ -> ()) pool ~manifest_text m =
  (* the runner hands us points, the wire wants indices: key the plan's
     deterministic order by descriptor once per submission *)
  let index_of = Hashtbl.create 64 in
  List.iteri
    (fun i p -> Hashtbl.replace index_of (Plan.descriptor m p) i)
    (Plan.points m);
  fun ~hint (p : Plan.point) ->
    let index =
      match Hashtbl.find_opt index_of (Plan.descriptor m p) with
      | Some i -> i
      | None -> failwith "sandbox: point not in plan"
    in
    match Procpool.exec pool (encode_task ~manifest_text ~index ~hint) with
    | Ok payload -> begin
      match Plan.decode_result payload with
      | Some r -> r
      | None -> failwith "sandbox: worker returned an undecodable result"
    end
    | Error (`Worker_error msg) -> failwith msg
    | Error (`Worker_lost n) ->
      on_poison p;
      raise (Procpool.Worker_lost n)
