module D = Dramstress_defect.Defect
module S = Dramstress_dram.Stress
module Ax = Dramstress_stressaxis.Stressaxis
module Sc = Dramstress_dram.Sim_config
module Det = Dramstress_core.Detection
module W = Dramstress_core.Border.Window
module M = Dramstress_march.March

type detection_spec =
  | Best
  | Best_no_pause
  | Seq of Det.t
  | March of M.t

type t = {
  name : string;
  defects : (D.entry * D.placement) list;
  stresses : (string * S.t) list;
  detections : detection_spec list;
  config : Sc.t;
  window : W.t;
}

type diagnostic =
  | Parse_error of { line : int; msg : string }
  | Unknown_section of { section : string }
  | Missing_field of { section : string; field : string }
  | Empty_section of { section : string }
  | Unknown_defect of { id : string }
  | Duplicate_label of { label : string }
  | Bad_value of {
      section : string;
      field : string;
      value : string;
      msg : string;
    }
  | Bad_range of {
      axis : string;
      lo : float;
      hi : float;
      reason : string;
    }

let pp_diagnostic ppf = function
  | Parse_error { line; msg } ->
    Format.fprintf ppf "parse error at line %d: %s" line msg
  | Unknown_section { section } ->
    Format.fprintf ppf "unknown section (%s ...)" section
  | Missing_field { section; field } ->
    Format.fprintf ppf "section (%s): missing %s" section field
  | Empty_section { section } ->
    Format.fprintf ppf "section (%s) declares nothing" section
  | Unknown_defect { id } ->
    Format.fprintf ppf
      "unknown defect id %s (the catalog has O1..O3, Sg, Sv, B1, B2)" id
  | Duplicate_label { label } ->
    Format.fprintf ppf "stress label %S declared twice" label
  | Bad_value { section; field; value; msg } ->
    Format.fprintf ppf "section (%s), field %s: bad value %S (%s)" section
      field value msg
  | Bad_range { axis; lo; hi; reason } ->
    Format.fprintf ppf "sweep axis %s: bad range %g..%g (%s)" axis lo hi
      reason

exception Invalid of diagnostic list

let () =
  Printexc.register_printer (function
    | Invalid ds ->
      Some
        (Format.asprintf "@[<v2>invalid campaign manifest:@ %a@]"
           (Format.pp_print_list pp_diagnostic)
           ds)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* s-expression reader                                                 *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

exception Parse_failed of int * string

let parse_sexps src =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () =
    (if !pos < n && src.[!pos] = '\n' then incr line);
    incr pos
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while peek () <> None && peek () <> Some '\n' do advance () done;
      skip_ws ()
    | _ -> ()
  in
  let read_string () =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_failed (!line, "unterminated string"))
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
          Buffer.add_char buf (match c with 'n' -> '\n' | 't' -> '\t' | c -> c);
          advance ()
        | None -> raise (Parse_failed (!line, "unterminated escape")));
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_atom () =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' | '"') | None -> ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec read_sexp () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_failed (!line, "unexpected end of input"))
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | None -> raise (Parse_failed (!line, "unclosed '('"))
        | Some ')' -> advance ()
        | _ ->
          items := read_sexp () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_failed (!line, "unexpected ')'"))
    | Some '"' -> Atom (read_string ())
    | _ -> Atom (read_atom ())
  in
  let rec read_all acc =
    skip_ws ();
    if !pos >= n then List.rev acc else read_all (read_sexp () :: acc)
  in
  read_all []

(* ------------------------------------------------------------------ *)
(* validation                                                          *)
(* ------------------------------------------------------------------ *)

let detection_label = function
  | Best -> "best"
  | Best_no_pause -> "best-nopause"
  | Seq d ->
    "seq:"
    ^ String.concat ","
        (List.map
           (function
             | Det.Write b -> Printf.sprintf "w%d" b
             | Det.Read b -> Printf.sprintf "r%d" b
             | Det.Wait t -> Printf.sprintf "p%g" t
             | Det.Hammer n -> Printf.sprintf "h%d" n)
           d.Det.steps)
  | March m -> "march:" ^ m.M.name

(* a section body is a list of (field value...) sub-lists; anything else
   in it is reported against the section *)
let of_string ?(source = "<string>") src =
  ignore source;
  let diags = ref [] in
  let diag d = diags := d :: !diags in
  let sexps =
    try parse_sexps src
    with Parse_failed (line, msg) -> raise (Invalid [ Parse_error { line; msg } ])
  in
  let body =
    match sexps with
    | [ List (Atom "campaign" :: body) ] -> body
    | [ List (Atom other :: _) ] ->
      raise
        (Invalid
           [ Parse_error
               { line = 1; msg = "expected (campaign ...), got (" ^ other ^ " ...)" } ])
    | _ ->
      raise
        (Invalid
           [ Parse_error
               { line = 1; msg = "expected exactly one (campaign ...) form" } ])
  in
  let name = ref None in
  let defects = ref [] in
  let stresses = ref [] in
  let sweeps = ref [] in
  let detections = ref [] in
  let sim_fields = ref [] in
  let border_fields = ref [] in
  let float_of section field v =
    match float_of_string_opt v with
    | Some f -> Some f
    | None ->
      diag (Bad_value { section; field; value = v; msg = "not a number" });
      None
  in
  let int_of section field v =
    match int_of_string_opt v with
    | Some i -> Some i
    | None ->
      diag (Bad_value { section; field; value = v; msg = "not an integer" });
      None
  in
  (* all axes come from the stress-axis registry: the manifest learns
     about new axes (wait, hammer, leak, ...) without edits here *)
  let axis_of_name name = Option.map (fun e -> e.Ax.axis) (Ax.find name) in
  let unknown_axis_msg =
    "unknown stress axis (" ^ String.concat "|" (Ax.names ()) ^ ")"
  in
  (* axis values are numeric, except the pattern axis also accepts its
     symbolic names (all0 | all1 | checkerboard) *)
  let axis_value_of section axis_name ax v =
    match float_of_string_opt v with
    | Some f -> Some f
    | None -> begin
      match (ax, S.pattern_of_name v) with
      | S.Pattern, Some p -> Some (S.float_of_pattern p)
      | _, _ ->
        diag
          (Bad_value
             { section; field = axis_name; value = v; msg = "not a number" });
        None
    end
  in
  let parse_stress_fields ~section base fields =
    List.fold_left
      (fun stress field ->
        match field with
        | List [ Atom axis; Atom v ] -> begin
          match axis_of_name axis with
          | None ->
            diag
              (Bad_value
                 { section; field = axis; value = v; msg = unknown_axis_msg });
            stress
          | Some ax -> begin
            match axis_value_of section axis ax v with
            | Some f -> S.set stress ax f
            | None -> stress
          end
        end
        | _ ->
          diag
            (Bad_value
               {
                 section;
                 field = "-";
                 value = "";
                 msg = "expected (axis value) pairs";
               });
          stress)
      base fields
  in
  let parse_defect_item item =
    let placement_of = function
      | "true" | "t" -> Some D.True_bl
      | "comp" | "c" -> Some D.Comp_bl
      | _ -> None
    in
    let entry id =
      match D.find_entry id with
      | Some e -> Some e
      | None ->
        diag (Unknown_defect { id });
        None
    in
    match item with
    | Atom id ->
      (* bare id: both placements, the Table-1 convention *)
      Option.iter
        (fun e ->
          defects := (e, D.Comp_bl) :: (e, D.True_bl) :: !defects)
        (entry id)
    | List [ Atom id; Atom pl ] -> begin
      match placement_of pl with
      | None ->
        diag
          (Bad_value
             {
               section = "defects";
               field = id;
               value = pl;
               msg = "placement must be true|comp";
             })
      | Some placement ->
        Option.iter (fun e -> defects := (e, placement) :: !defects) (entry id)
    end
    | _ ->
      diag
        (Bad_value
           {
             section = "defects";
             field = "-";
             value = "";
             msg = "expected a defect id or (id true|comp)";
           })
  in
  let parse_detection_item item =
    match item with
    | Atom "best" -> detections := Best :: !detections
    | Atom ("best-no-pause" | "best-nopause") ->
      detections := Best_no_pause :: !detections
    | List [ Atom "seq"; Atom s ] -> begin
      match Dramstress_dram.Ops.parse_seq s with
      | exception Invalid_argument msg ->
        diag (Bad_value { section = "detections"; field = "seq"; value = s; msg })
      | _ ->
        (* parse_seq validated the tokens; rebuild as a detection with
           expected read values (rN tokens carry them; bare r reads the
           last written bit) *)
        let steps, _ =
          List.fold_left
            (fun (acc, last) tok ->
              match String.lowercase_ascii tok with
              | "" -> (acc, last)
              | "w0" -> (Det.Write 0 :: acc, 0)
              | "w1" -> (Det.Write 1 :: acc, 1)
              | "r0" -> (Det.Read 0 :: acc, last)
              | "r1" -> (Det.Read 1 :: acc, last)
              | "r" -> (Det.Read last :: acc, last)
              | "ham" -> (Det.Hammer 1 :: acc, last)
              | t when String.length t > 3 && String.sub t 0 3 = "ham" -> begin
                match
                  int_of_string_opt (String.sub t 3 (String.length t - 3))
                with
                | Some n when n > 0 -> (Det.Hammer n :: acc, last)
                | Some _ | None ->
                  diag
                    (Bad_value
                       {
                         section = "detections";
                         field = "seq";
                         value = t;
                         msg = "bad hammer count";
                       });
                  (acc, last)
              end
              | t when String.length t > 1 && t.[0] = 'p' -> begin
                match float_of_string_opt (String.sub t 1 (String.length t - 1)) with
                | Some p -> (Det.Wait p :: acc, last)
                | None -> (acc, last)
              end
              | t ->
                diag
                  (Bad_value
                     {
                       section = "detections";
                       field = "seq";
                       value = t;
                       msg = "expected w0|w1|r|r0|r1|p<seconds>|ham<n>";
                     });
                (acc, last))
            ([], 0)
            (String.split_on_char ' '
               (String.map (function ',' -> ' ' | c -> c) s))
        in
        (match Det.v (List.rev steps) with
        | d -> detections := Seq d :: !detections
        | exception Invalid_argument msg ->
          diag
            (Bad_value { section = "detections"; field = "seq"; value = s; msg }))
    end
    | List [ Atom "march"; Atom s ] -> begin
      match M.parse ~name:s s with
      | m -> detections := March m :: !detections
      | exception Invalid_argument msg ->
        diag
          (Bad_value { section = "detections"; field = "march"; value = s; msg })
    end
    | _ ->
      diag
        (Bad_value
           {
             section = "detections";
             field = "-";
             value = "";
             msg = "expected best | best-no-pause | (seq \"...\") | (march \"...\")";
           })
  in
  List.iter
    (fun section ->
      match section with
      | List [ Atom "name"; Atom n ] -> name := Some n
      | List (Atom "name" :: _) ->
        diag
          (Bad_value
             {
               section = "name";
               field = "name";
               value = "";
               msg = "expected (name <atom>)";
             })
      | List (Atom "defects" :: items) -> List.iter parse_defect_item items
      | List (Atom "stress" :: Atom label :: fields) ->
        stresses :=
          (label, parse_stress_fields ~section:"stress" S.nominal fields)
          :: !stresses
      | List (Atom "stress" :: _) ->
        diag (Missing_field { section = "stress"; field = "label" })
      | List (Atom "sweep" :: axes) -> sweeps := axes :: !sweeps
      | List (Atom "detections" :: items) ->
        List.iter parse_detection_item items
      | List (Atom "sim" :: fields) -> sim_fields := fields :: !sim_fields
      | List (Atom "border" :: fields) ->
        border_fields := fields :: !border_fields
      | List (Atom s :: _) -> diag (Unknown_section { section = s })
      | List [] | List (List _ :: _) | Atom _ ->
        diag (Unknown_section { section = "<non-list>" }))
    body;
  (* sweeps expand to a cross product over the listed axes, labeled by
     their values, based on the nominal SC *)
  let expand_sweep axes =
    let parsed =
      List.filter_map
        (fun axis_form ->
          match axis_form with
          | List (Atom axis :: (_ :: _ as values)) -> begin
            match axis_of_name axis with
            | None ->
              diag
                (Bad_value
                   {
                     section = "sweep";
                     field = axis;
                     value = "";
                     msg = unknown_axis_msg;
                   });
              None
            | Some ax ->
              let entry = Ax.of_axis ax in
              let expand_range args =
                let scale_of = function
                  | "log" -> Some Ax.Log
                  | "lin" | "linear" -> Some Ax.Linear
                  | _ -> None
                in
                let parsed =
                  match args with
                  | [ Atom lo; Atom hi; Atom n ] ->
                    Some (lo, hi, n, entry.Ax.scale)
                  | [ Atom lo; Atom hi; Atom n; Atom sc ] -> begin
                    match scale_of sc with
                    | Some scale -> Some (lo, hi, n, scale)
                    | None ->
                      diag
                        (Bad_value
                           {
                             section = "sweep";
                             field = axis;
                             value = sc;
                             msg = "range scale must be log|lin";
                           });
                      None
                  end
                  | _ ->
                    diag
                      (Bad_value
                         {
                           section = "sweep";
                           field = axis;
                           value = "";
                           msg = "expected (range lo hi n [log|lin])";
                         });
                    None
                in
                match parsed with
                | None -> []
                | Some (lo_s, hi_s, n_s, scale) -> begin
                  match
                    ( float_of "sweep" axis lo_s,
                      float_of "sweep" axis hi_s,
                      int_of "sweep" axis n_s )
                  with
                  | Some lo, Some hi, Some n -> begin
                    match Ax.range ~scale ~lo ~hi n with
                    | Ok vs -> vs
                    | Error e ->
                      diag
                        (Bad_range
                           {
                             axis;
                             lo;
                             hi;
                             reason =
                               Format.asprintf "%a" Ax.pp_range_error e;
                           });
                      []
                  end
                  | _, _, _ -> []
                end
              in
              let expand_value = function
                | Atom v -> begin
                  match axis_value_of "sweep" axis ax v with
                  | Some f -> [ f ]
                  | None -> []
                end
                | List (Atom "range" :: args) -> expand_range args
                | List _ ->
                  diag
                    (Bad_value
                       {
                         section = "sweep";
                         field = axis;
                         value = "";
                         msg =
                           "expected numeric values or (range lo hi n \
                            [log|lin])";
                       });
                  []
              in
              let vs = List.concat_map expand_value values in
              if vs = [] then None else Some (axis, entry, ax, vs)
          end
          | _ ->
            diag
              (Bad_value
                 {
                   section = "sweep";
                   field = "-";
                   value = "";
                   msg = "expected (axis v1 v2 ...)";
                 });
            None)
        axes
    in
    List.fold_left
      (fun combos (axis_name, entry, ax, vs) ->
        List.concat_map
          (fun (label, stress) ->
            List.map
              (fun v ->
                let part =
                  Printf.sprintf "%s=%s" axis_name (Ax.value_string entry v)
                in
                let label = if label = "" then part else label ^ "," ^ part in
                (label, S.set stress ax v))
              vs)
          combos)
      [ ("", S.nominal) ]
      parsed
    |> List.filter (fun (label, _) -> label <> "")
  in
  let swept = List.concat_map expand_sweep (List.rev !sweeps) in
  let stresses = List.rev !stresses @ swept in
  (* stress physicality *)
  List.iter
    (fun (label, s) ->
      match S.validate s with
      | () -> ()
      | exception Invalid_argument msg ->
        diag
          (Bad_value
             { section = "stress"; field = label; value = ""; msg }))
    stresses;
  (* duplicate labels *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (label, _) ->
      if Hashtbl.mem seen label then diag (Duplicate_label { label })
      else Hashtbl.add seen label ())
    stresses;
  (* sim section *)
  let steps_per_cycle = ref None
  and deadline = ref None
  and jobs = ref None in
  List.iter
    (List.iter (fun field ->
         match field with
         | List [ Atom ("steps-per-cycle" | "steps_per_cycle"); Atom v ] ->
           steps_per_cycle := int_of "sim" "steps-per-cycle" v
         | List [ Atom "deadline"; Atom v ] ->
           deadline := float_of "sim" "deadline" v
         | List [ Atom "jobs"; Atom v ] -> jobs := int_of "sim" "jobs" v
         | List (Atom f :: _) ->
           diag
             (Bad_value
                {
                  section = "sim";
                  field = f;
                  value = "";
                  msg = "expected steps-per-cycle | deadline | jobs";
                })
         | _ ->
           diag
             (Bad_value
                {
                  section = "sim";
                  field = "-";
                  value = "";
                  msg = "expected (field value) pairs";
                })))
    (List.rev !sim_fields);
  (* border section *)
  let r_min = ref W.default.W.r_min
  and r_max = ref W.default.W.r_max
  and grid_points = ref W.default.W.grid_points
  and rel_tol = ref W.default.W.rel_tol
  and strategy = ref W.default.W.strategy in
  List.iter
    (List.iter (fun field ->
         match field with
         | List [ Atom ("r-min" | "r_min"); Atom v ] ->
           Option.iter (fun f -> r_min := f) (float_of "border" "r-min" v)
         | List [ Atom ("r-max" | "r_max"); Atom v ] ->
           Option.iter (fun f -> r_max := f) (float_of "border" "r-max" v)
         | List [ Atom ("grid-points" | "grid_points"); Atom v ] ->
           Option.iter (fun i -> grid_points := i) (int_of "border" "grid-points" v)
         | List [ Atom ("rel-tol" | "rel_tol"); Atom v ] ->
           Option.iter (fun f -> rel_tol := f) (float_of "border" "rel-tol" v)
         | List [ Atom "strategy"; Atom v ] -> begin
           match W.strategy_of_name v with
           | Some s -> strategy := s
           | None ->
             diag
               (Bad_value
                  {
                    section = "border";
                    field = "strategy";
                    value = v;
                    msg = "expected grid | adaptive";
                  })
         end
         | List (Atom f :: _) ->
           diag
             (Bad_value
                {
                  section = "border";
                  field = f;
                  value = "";
                  msg =
                    "expected r-min | r-max | grid-points | rel-tol | strategy";
                })
         | _ ->
           diag
             (Bad_value
                {
                  section = "border";
                  field = "-";
                  value = "";
                  msg = "expected (field value) pairs";
                })))
    (List.rev !border_fields);
  if !r_min <= 0.0 || !r_max <= !r_min then
    diag
      (Bad_value
         {
           section = "border";
           field = "r-min/r-max";
           value = Printf.sprintf "%g..%g" !r_min !r_max;
           msg = "need 0 < r-min < r-max";
         });
  if !grid_points < 2 then
    diag
      (Bad_value
         {
           section = "border";
           field = "grid-points";
           value = string_of_int !grid_points;
           msg = "need at least 2";
         });
  if !rel_tol <= 0.0 then
    diag
      (Bad_value
         {
           section = "border";
           field = "rel-tol";
           value = Printf.sprintf "%g" !rel_tol;
           msg = "need a positive tolerance";
         });
  let window =
    match
      W.v ~r_min:!r_min ~r_max:!r_max ~grid_points:!grid_points
        ~rel_tol:!rel_tol ~strategy:!strategy ()
    with
    | w -> w
    | exception Invalid_argument _ ->
      (* only reachable when the explicit range checks above already
         diagnosed the culprit field, so [Invalid] is raised below and
         this placeholder is never observed *)
      W.default
  in
  if !name = None then diag (Missing_field { section = "campaign"; field = "name" });
  if !defects = [] then diag (Empty_section { section = "defects" });
  if stresses = [] then diag (Empty_section { section = "stress" });
  let config =
    match
      Sc.v ?steps_per_cycle:!steps_per_cycle ?deadline:!deadline ?jobs:!jobs
        ()
    with
    | c -> c
    | exception Invalid_argument msg ->
      diag (Bad_value { section = "sim"; field = "-"; value = ""; msg });
      Sc.default
  in
  (match List.rev !diags with [] -> () | ds -> raise (Invalid ds));
  {
    name = Option.get !name;
    defects = List.rev !defects;
    stresses;
    detections =
      (match List.rev !detections with [] -> [ Best ] | ds -> ds);
    config;
    window;
  }

let load path =
  of_string ~source:path (In_channel.with_open_text path In_channel.input_all)

let pp ppf m =
  Format.fprintf ppf
    "@[<v2>campaign %s:@ %d defect placement(s), %d stress setting(s), %d \
     detection(s)@ border: %a@ %a@]"
    m.name (List.length m.defects)
    (List.length m.stresses)
    (List.length m.detections)
    W.pp m.window
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (l, s) ->
         Format.fprintf ppf "%s: %a" l S.pp s))
    m.stresses
