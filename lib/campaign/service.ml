(* The campaign service: a long-running process owning one (sharded)
   store, executing campaign submissions from concurrent clients over a
   Unix-domain socket.

   Threading model: the main thread accepts; each connection gets one
   systhread. A [submit] runs the ordinary Runner on the shared store
   with two hooks installed — the in-flight gate (below), so two
   clients asking for the same point descriptor produce one simulation
   and two waiters, and a per-point streaming callback that frames
   results back as they land. Worker domains inside Runner.run call
   both hooks, so everything here is mutex-guarded.

   A client that disappears mid-campaign must not take its submission
   down with it: other clients may be waiting on points this submission
   owns. Writes to a dead socket flip a per-connection [alive] flag and
   are silently dropped from then on; the campaign itself runs to
   completion and the store keeps every result. *)

module Store = Dramstress_util.Store
module Tel = Dramstress_util.Telemetry
module P = Protocol

let c_connections = Tel.Counter.make "campaign.service.connections"
let c_submissions = Tel.Counter.make "campaign.service.submissions"
let c_requests = Tel.Counter.make "campaign.service.requests"

(* a claim answered [`Wait]: a second client asked for a point already
   being simulated — the whole reason the service exists *)
let c_dedup = Tel.Counter.make "campaign.service.inflight_dedup"
let c_streamed = Tel.Counter.make "campaign.service.points_streamed"

type pending = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable outcome : (Plan.result, string) result option;
}

type t = {
  store : Store.t;
  socket_path : string;
  jobs : int option;
  listen_fd : Unix.file_descr;
  inflight : (string, pending) Hashtbl.t;
  inflight_lock : Mutex.t;
  mutable stopping : bool;
}

(* the dedup gate shared by every submission: first claimant of a
   descriptor runs it, later claimants block on the pending cell.
   Claims resolve under [inflight_lock]; waiting happens outside it, on
   the cell's own mutex, so a wait never blocks other claims. *)
let gate srv =
  {
    Runner.claim =
      (fun key ->
        Mutex.protect srv.inflight_lock (fun () ->
            match Hashtbl.find_opt srv.inflight key with
            | Some p ->
              Tel.Counter.incr c_dedup;
              `Wait
                (fun () ->
                  Mutex.protect p.pm (fun () ->
                      while p.outcome = None do
                        Condition.wait p.pc p.pm
                      done;
                      Option.get p.outcome))
            | None ->
              Hashtbl.replace srv.inflight key
                {
                  pm = Mutex.create ();
                  pc = Condition.create ();
                  outcome = None;
                };
              `Run));
    Runner.publish =
      (fun key res ->
        Mutex.protect srv.inflight_lock (fun () ->
            match Hashtbl.find_opt srv.inflight key with
            | None -> ()
            | Some p ->
              Hashtbl.remove srv.inflight key;
              Mutex.protect p.pm (fun () ->
                  p.outcome <- Some res;
                  Condition.broadcast p.pc)));
  }

let create ?jobs ~store ~socket_path () =
  (* the counters verb is part of the protocol, so the server always
     collects — there is no human attaching --metrics to a daemon *)
  Tel.set_enabled true;
  (* a client vanishing mid-stream must be an error code, not a fatal
     signal delivered to whichever domain happened to be writing *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket_path);
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    store;
    socket_path;
    jobs;
    listen_fd = fd;
    inflight = Hashtbl.create 64;
    inflight_lock = Mutex.create ();
    stopping = false;
  }

(* per-connection response writer: serializes frames from concurrent
   worker domains and downgrades a dead peer to a no-op *)
let sender fd =
  let lock = Mutex.create () in
  let alive = ref true in
  fun resp ->
    Mutex.protect lock (fun () ->
        if !alive then
          try P.write_frame fd (P.encode_response resp) with
          | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
          | Sys_error _ ->
            alive := false)

let manifest_of_text ~source text =
  match Manifest.of_string ~source text with
  | m -> Ok m
  | exception Manifest.Invalid diags ->
    Error
      (Format.asprintf "@[<v>invalid manifest:@ %a@]"
         (Format.pp_print_list Manifest.pp_diagnostic)
         diags)

let handle_submit srv ~send ~manifest ~jobs =
  Tel.Counter.incr c_submissions;
  match manifest_of_text ~source:"<submit>" manifest with
  | Error msg -> send (P.Error_msg msg)
  | Ok m ->
    let on_point p ev =
      let descr = Format.asprintf "%a" Plan.pp_point p in
      let status, payload =
        match ev with
        | `Reused r -> (P.Reused, Plan.encode_result r)
        | `Simulated r -> (P.Simulated, Plan.encode_result r)
        | `Deduped r -> (P.Deduped, Plan.encode_result r)
        | `Failed msg -> (P.Failed, msg)
      in
      Tel.Counter.incr c_streamed;
      send (P.Point { descr; status; payload })
    in
    let jobs = match jobs with Some _ -> jobs | None -> srv.jobs in
    let s =
      Runner.run ?jobs ~gate:(gate srv) ~on_point ~store:srv.store m
    in
    send
      (P.Done
         {
           planned = s.Runner.planned;
           reused = s.Runner.reused;
           simulated = s.Runner.simulated;
           deduped = s.Runner.deduped;
           failed = List.length s.Runner.failures;
         })

let handle_diff srv ~send ~a ~b =
  match
    (manifest_of_text ~source:"<diff:a>" a, manifest_of_text ~source:"<diff:b>" b)
  with
  | Error msg, _ | _, Error msg -> send (P.Error_msg msg)
  | Ok ma, Ok mb ->
    let side label m = { Diff.store = srv.store; manifest = m; label } in
    let d = Diff.v ~a:(side "a" ma) ~b:(side "b" mb) () in
    send (P.Diff_report (Diff.render d))

let handle_merge srv ~send dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    send (P.Error_msg (Printf.sprintf "merge: %s is not a store directory" dir))
  else begin
    let src = Store.open_ ~name:"merge-src" dir in
    Fun.protect
      ~finally:(fun () -> Store.close src)
      (fun () ->
        let st = Store.merge ~src ~dst:srv.store in
        send
          (P.Merged
             { added = st.Store.added;
               replaced = st.Store.replaced;
               kept = st.Store.kept }))
  end

let stop srv =
  srv.stopping <- true;
  (* shutdown, not close: closing an fd another thread is blocked in
     [accept] on does NOT wake it — shutting the socket down makes the
     pending accept return immediately. In-flight submissions run to
     completion; the accept loop closes the fd on its way out. *)
  try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
  with Unix.Unix_error _ -> ()

let handle_request srv ~send = function
  | P.Submit { manifest; jobs } -> handle_submit srv ~send ~manifest ~jobs
  | P.Status ->
    let inflight =
      Mutex.protect srv.inflight_lock (fun () -> Hashtbl.length srv.inflight)
    in
    send
      (P.Status_report
         {
           name = Store.name srv.store;
           engine = Store.engine srv.store;
           records = Store.entries srv.store;
           shards = Store.shards srv.store;
           inflight;
         })
  | P.Query key -> (
    match Store.find srv.store ~key with
    | Some v -> send (P.Found v)
    | None -> send P.Not_found)
  | P.Diff { a; b } -> handle_diff srv ~send ~a ~b
  | P.Merge dir -> handle_merge srv ~send dir
  | P.Counters -> send (P.Counter_values (Tel.snapshot ()).Tel.counters)
  | P.Shutdown ->
    send P.Bye;
    stop srv

let handle_connection srv fd =
  Tel.Counter.incr c_connections;
  let send = sender fd in
  let rec loop () =
    match P.read_frame fd with
    | Error `Eof -> ()
    | Error (`Protocol m) -> send (P.Error_msg ("protocol: " ^ m))
    | Ok x -> (
      Tel.Counter.incr c_requests;
      match P.decode_request x with
      | Error m ->
        send (P.Error_msg m);
        loop ()
      | Ok req ->
        (match handle_request srv ~send req with
        | () -> ()
        | exception e -> send (P.Error_msg (Printexc.to_string e)));
        if req <> P.Shutdown then loop ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* accept loop; returns once [stop] (or the shutdown verb) closes the
   listening socket and every connection thread has drained *)
let serve srv =
  let rec accept_loop threads =
    if srv.stopping then threads
    else
      match Unix.accept srv.listen_fd with
      | fd, _ ->
        if srv.stopping then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          threads
        end
        else begin
          let th = Thread.create (fun () -> handle_connection srv fd) () in
          accept_loop (th :: threads)
        end
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop threads
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
        threads
  in
  let threads = accept_loop [] in
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  List.iter Thread.join threads;
  (try Unix.unlink srv.socket_path with Unix.Unix_error _ -> ());
  Store.close srv.store

(* ---- client side ---- *)

module Client = struct
  exception Transport of string

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

  let with_connection path f =
    let fd = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> f fd)

  let read_response fd =
    match P.read_frame fd with
    | Error `Eof -> raise (Transport "connection closed")
    | Error (`Protocol m) -> raise (Transport ("protocol: " ^ m))
    | Ok x -> (
      match P.decode_response x with
      | Ok r -> r
      | Error m -> raise (Transport ("protocol: " ^ m)))

  (* one-shot request/response *)
  let request ~socket req =
    with_connection socket (fun fd ->
        P.write_frame fd (P.encode_request req);
        read_response fd)

  type outcome = {
    planned : int;
    reused : int;
    simulated : int;
    deduped : int;
    failed : int;
  }

  (* one submission over one connection: streams [on_event] per point,
     returns the final tally. [Error] carries a server-side message (a
     bad manifest, a failed handler); transport trouble raises
     {!Transport} so retry logic can tell the two apart. *)
  let submit ?jobs ?(on_event = fun _ -> ()) ~socket manifest =
    with_connection socket (fun fd ->
        P.write_frame fd (P.encode_request (P.Submit { manifest; jobs }));
        let rec loop () =
          match read_response fd with
          | P.Point _ as p ->
            on_event p;
            loop ()
          | P.Done { planned; reused; simulated; deduped; failed } ->
            Ok { planned; reused; simulated; deduped; failed }
          | P.Error_msg m -> Error m
          | _ -> raise (Transport "unexpected response to submit")
        in
        loop ())

  (* resilient submission: reconnect-and-resubmit on transport failure
     (server killed mid-stream, not yet listening, ...). Completed
     points persist in the server's store, so a resubmission reuses
     them — the retry converges instead of redoing work. Server-side
     errors (bad manifest) are not retried. *)
  let submit_retrying ?jobs ?on_event ?(attempts = 10) ?(delay = 0.5) ~socket
      manifest =
    let rec go n =
      match submit ?jobs ?on_event ~socket manifest with
      | (Ok _ | Error _) as r -> r
      | exception
          ( Transport _
          | Unix.Unix_error
              ((ECONNREFUSED | ECONNRESET | ENOENT | EPIPE), _, _) )
        when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
    in
    go attempts
end
