(* The campaign service: a long-running process owning one (sharded)
   store, executing campaign submissions from concurrent clients over a
   Unix-domain socket.

   Threading model: the main thread accepts; each connection gets one
   systhread. A [submit] runs the ordinary Runner on the shared store
   with two hooks installed — the in-flight gate (below), so two
   clients asking for the same point descriptor produce one simulation
   and two waiters, and a per-point streaming callback that frames
   results back as they land.

   Fault isolation: by default ([sandbox = true]) points execute in a
   supervised pool of forked worker processes (Util.Procpool via
   Sandbox) — a solver segfault or OOM kill costs one worker, never the
   daemon — and chain fan-out uses systhreads so the daemon stays
   fork-capable (OCaml refuses fork once any domain has been spawned).
   [sandbox = false] restores the in-process Domains path.

   Overload discipline: at most [max_active] submissions run at once;
   up to [queue] more wait server-side; beyond that the server answers
   a typed [Busy {retry_after}] instead of hanging the connection.
   Half-frame (slowloris) peers are dropped by a per-connection read
   deadline that starts at each frame's first byte.

   Lifecycle: SIGTERM / the shutdown verb / [stop] flip the server into
   Draining — new submissions get a typed [Draining] rejection,
   in-flight ones finish, then the store is flushed and [serve]
   returns. Drain is initiated through a self-pipe so a signal handler
   never touches a mutex.

   A client that disappears mid-campaign must not take its submission
   down with it: other clients may be waiting on points this submission
   owns. Writes to a dead socket flip a per-connection [alive] flag and
   are silently dropped from then on; the campaign itself runs to
   completion and the store keeps every result. *)

module Store = Dramstress_util.Store
module Tel = Dramstress_util.Telemetry
module Par = Dramstress_util.Par
module Procpool = Dramstress_util.Procpool
module P = Protocol

let c_connections = Tel.Counter.make "campaign.service.connections"
let c_submissions = Tel.Counter.make "campaign.service.submissions"
let c_requests = Tel.Counter.make "campaign.service.requests"

(* a claim answered [`Wait]: a second client asked for a point already
   being simulated — the whole reason the service exists *)
let c_dedup = Tel.Counter.make "campaign.service.inflight_dedup"
let c_streamed = Tel.Counter.make "campaign.service.points_streamed"

(* supervision + overload accounting, reconciled by [--counters] *)
let c_worker_restarts = Tel.Counter.make "campaign.service.worker_restarts"
let c_poison = Tel.Counter.make "campaign.service.poison_points"
let c_busy = Tel.Counter.make "campaign.service.busy_rejections"
let c_draining = Tel.Counter.make "campaign.service.draining_rejections"
let c_read_timeouts = Tel.Counter.make "campaign.service.read_timeouts"

exception Already_running of string

let () =
  Printexc.register_printer (function
    | Already_running path ->
      Some
        (Printf.sprintf
           "another campaign service is already listening on %s" path)
    | _ -> None)

type pending = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable outcome : (Plan.result, string) result option;
}

type lifecycle = Running | Draining | Stopped

type t = {
  store : Store.t;
  socket_path : string;
  jobs : int option;
  pool : Procpool.t option;  (* Some = sandboxed execution *)
  listen_fd : Unix.file_descr;
  inflight : (string, pending) Hashtbl.t;
  inflight_lock : Mutex.t;
  (* admission control + lifecycle, all under [adm] *)
  adm : Mutex.t;
  adm_cond : Condition.t;
  max_active : int;
  queue_limit : int;
  mutable active : int;
  mutable waiting : int;
  mutable state : lifecycle;
  (* live connections, so drain can wake their read loops *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
  (* self-pipe: [stop] (possibly a signal handler) writes one byte; the
     drainer thread does the real, lock-taking work *)
  drain_r : Unix.file_descr;
  drain_w : Unix.file_descr;
  read_timeout : float option;
}

(* the dedup gate shared by every submission: first claimant of a
   descriptor runs it, later claimants block on the pending cell.
   Claims resolve under [inflight_lock]; waiting happens outside it, on
   the cell's own mutex, so a wait never blocks other claims. *)
let gate srv =
  {
    Runner.claim =
      (fun key ->
        Mutex.protect srv.inflight_lock (fun () ->
            match Hashtbl.find_opt srv.inflight key with
            | Some p ->
              Tel.Counter.incr c_dedup;
              `Wait
                (fun () ->
                  Mutex.protect p.pm (fun () ->
                      while p.outcome = None do
                        Condition.wait p.pc p.pm
                      done;
                      Option.get p.outcome))
            | None ->
              Hashtbl.replace srv.inflight key
                {
                  pm = Mutex.create ();
                  pc = Condition.create ();
                  outcome = None;
                };
              `Run));
    Runner.publish =
      (fun key res ->
        Mutex.protect srv.inflight_lock (fun () ->
            match Hashtbl.find_opt srv.inflight key with
            | None -> ()
            | Some p ->
              Hashtbl.remove srv.inflight key;
              Mutex.protect p.pm (fun () ->
                  p.outcome <- Some res;
                  Condition.broadcast p.pc)));
  }

(* Probe for a live daemon before touching the socket file: connecting
   to a bound-and-listening Unix socket succeeds; connecting to a stale
   file left by a dead daemon fails with ECONNREFUSED. Only a stale
   file is unlinked — a second daemon must never silently destroy the
   first one's socket. *)
let claim_socket_path socket_path =
  if Sys.file_exists socket_path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () -> `Live
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) -> `Stale
      | exception e -> `Error e
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match verdict with
    | `Live -> raise (Already_running socket_path)
    | `Stale -> ( try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    | `Error e -> raise e
  end

let create ?jobs ?(sandbox = true) ?(max_task_deaths = 3) ?task_timeout
    ?(max_active = 4) ?(queue = 8) ?(read_timeout = 10.0) ~store ~socket_path
    () =
  (* the counters verb is part of the protocol, so the server always
     collects — there is no human attaching --metrics to a daemon *)
  Tel.set_enabled true;
  (* a client vanishing mid-stream must be an error code, not a fatal
     signal delivered to whichever thread happened to be writing *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  claim_socket_path socket_path;
  (* the worker pool must fork before anything else starts threads that
     might hold locks, and absolutely before any domain could exist *)
  let pool =
    if not sandbox then None
    else
      Some
        (Procpool.create ~max_task_deaths ?task_timeout
           ~on_worker_restart:(fun () -> Tel.Counter.incr c_worker_restarts)
           ~workers:(Par.resolve_jobs ?jobs ())
           ~worker:Sandbox.worker ())
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket_path);
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Option.iter Procpool.shutdown pool;
     raise e);
  let drain_r, drain_w = Unix.pipe ~cloexec:false () in
  {
    store;
    socket_path;
    jobs;
    pool;
    listen_fd = fd;
    inflight = Hashtbl.create 64;
    inflight_lock = Mutex.create ();
    adm = Mutex.create ();
    adm_cond = Condition.create ();
    max_active = Int.max 1 max_active;
    queue_limit = Int.max 0 queue;
    active = 0;
    waiting = 0;
    state = Running;
    conns = Hashtbl.create 16;
    conns_lock = Mutex.create ();
    drain_r;
    drain_w;
    read_timeout = (if read_timeout <= 0.0 then None else Some read_timeout);
  }

let sandboxed srv = srv.pool <> None

(* ---- admission control ---- *)

(* [`Go] holds one of the [max_active] submission slots (pair with
   [release]); a full house queues up to [queue_limit] submitters
   server-side; beyond that the caller gets [`Busy hint] — the hint
   scales with the queue depth so pileups spread out instead of
   thundering back. *)
let admit srv =
  Mutex.protect srv.adm (fun () ->
      if srv.state <> Running then `Draining
      else if srv.active < srv.max_active then begin
        srv.active <- srv.active + 1;
        `Go
      end
      else if srv.waiting >= srv.queue_limit then
        `Busy (Float.min 5.0 (0.5 *. float_of_int (1 + srv.waiting)))
      else begin
        srv.waiting <- srv.waiting + 1;
        let rec wait () =
          if srv.state <> Running then begin
            srv.waiting <- srv.waiting - 1;
            `Draining
          end
          else if srv.active < srv.max_active then begin
            srv.waiting <- srv.waiting - 1;
            srv.active <- srv.active + 1;
            `Go
          end
          else begin
            Condition.wait srv.adm_cond srv.adm;
            wait ()
          end
        in
        wait ()
      end)

(* drain completes exactly when nothing is active and nobody queued;
   whoever observes that transition wakes every blocked read so the
   connection threads (and then [serve]) can finish *)
let try_finish_drain srv =
  let finish =
    Mutex.protect srv.adm (fun () ->
        if srv.state = Draining && srv.active = 0 && srv.waiting = 0 then begin
          srv.state <- Stopped;
          true
        end
        else false)
  in
  if finish then begin
    (try Unix.shutdown srv.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Mutex.protect srv.conns_lock (fun () ->
        Hashtbl.iter
          (fun fd () ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          srv.conns)
  end

let release srv =
  Mutex.protect srv.adm (fun () ->
      srv.active <- srv.active - 1;
      Condition.broadcast srv.adm_cond);
  try_finish_drain srv

(* ---- request handlers ---- *)

(* per-connection response writer: serializes frames from concurrent
   workers and downgrades a dead peer to a no-op *)
let sender fd =
  let lock = Mutex.create () in
  let alive = ref true in
  fun resp ->
    Mutex.protect lock (fun () ->
        if !alive then
          try P.write_frame fd (P.encode_response resp) with
          | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
          | Sys_error _ ->
            alive := false)

let manifest_of_text ~source text =
  match Manifest.of_string ~source text with
  | m -> Ok m
  | exception Manifest.Invalid diags ->
    Error
      (Format.asprintf "@[<v>invalid manifest:@ %a@]"
         (Format.pp_print_list Manifest.pp_diagnostic)
         diags)

let handle_submit srv ~send ~manifest ~jobs =
  Tel.Counter.incr c_submissions;
  (match admit srv with
  | `Busy retry_after ->
    Tel.Counter.incr c_busy;
    send (P.Busy { retry_after })
  | `Draining ->
    Tel.Counter.incr c_draining;
    send P.Draining
  | `Go ->
    Fun.protect
      ~finally:(fun () -> release srv)
      (fun () ->
        match manifest_of_text ~source:"<submit>" manifest with
        | Error msg -> send (P.Error_msg msg)
        | Ok m ->
          let on_point p ev =
            let descr = Format.asprintf "%a" Plan.pp_point p in
            let status, payload =
              match ev with
              | `Reused r -> (P.Reused, Plan.encode_result r)
              | `Simulated r -> (P.Simulated, Plan.encode_result r)
              | `Deduped r -> (P.Deduped, Plan.encode_result r)
              | `Failed msg -> (P.Failed, msg)
            in
            Tel.Counter.incr c_streamed;
            send (P.Point { descr; status; payload })
          in
          let s =
            match srv.pool with
            | Some pool ->
              (* sandboxed: points execute on pool workers, chains fan
                 out over threads (the daemon must stay fork-capable),
                 and width comes from the pool — per-submission [jobs]
                 cannot exceed the workers that exist *)
              let executor =
                Sandbox.executor
                  ~on_poison:(fun _ -> Tel.Counter.incr c_poison)
                  pool ~manifest_text:manifest m
              in
              Runner.run ~jobs:(Procpool.size pool) ~gate:(gate srv)
                ~on_point ~executor ~fanout:`Threads ~store:srv.store m
            | None ->
              let jobs = match jobs with Some _ -> jobs | None -> srv.jobs in
              Runner.run ?jobs ~gate:(gate srv) ~on_point ~store:srv.store m
          in
          send
            (P.Done
               {
                 planned = s.Runner.planned;
                 reused = s.Runner.reused;
                 simulated = s.Runner.simulated;
                 deduped = s.Runner.deduped;
                 failed = List.length s.Runner.failures;
               })));
  (* a queued submitter that was rejected by a starting drain may have
     been the last thing the drain waited on *)
  try_finish_drain srv

let handle_diff srv ~send ~a ~b =
  match
    (manifest_of_text ~source:"<diff:a>" a, manifest_of_text ~source:"<diff:b>" b)
  with
  | Error msg, _ | _, Error msg -> send (P.Error_msg msg)
  | Ok ma, Ok mb ->
    let side label m = { Diff.store = srv.store; manifest = m; label } in
    let d = Diff.v ~a:(side "a" ma) ~b:(side "b" mb) () in
    send (P.Diff_report (Diff.render d))

let handle_merge srv ~send dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    send (P.Error_msg (Printf.sprintf "merge: %s is not a store directory" dir))
  else begin
    let src = Store.open_ ~name:"merge-src" dir in
    Fun.protect
      ~finally:(fun () -> Store.close src)
      (fun () ->
        let st = Store.merge ~src ~dst:srv.store in
        send
          (P.Merged
             { added = st.Store.added;
               replaced = st.Store.replaced;
               kept = st.Store.kept }))
  end

(* [stop] is the drain trigger and must be callable from a signal
   handler: one write to the self-pipe, no locks. The drainer thread in
   [serve] does the rest. Idempotent — extra bytes are harmless. *)
let stop srv =
  try ignore (Unix.write srv.drain_w (Bytes.make 1 'D') 0 1)
  with Unix.Unix_error _ -> ()

(* The listener stays open while Draining: new submissions must get
   the {e typed} [Draining] rejection (and status/counters must keep
   answering), not a refused connection. [try_finish_drain] closes it
   when the last in-flight submission releases. *)
let begin_drain srv =
  Mutex.protect srv.adm (fun () ->
      if srv.state = Running then srv.state <- Draining;
      (* queued submitters wake and answer [Draining] *)
      Condition.broadcast srv.adm_cond);
  try_finish_drain srv

let handle_request srv ~send = function
  | P.Submit { manifest; jobs } -> handle_submit srv ~send ~manifest ~jobs
  | P.Status ->
    let inflight =
      Mutex.protect srv.inflight_lock (fun () -> Hashtbl.length srv.inflight)
    in
    send
      (P.Status_report
         {
           name = Store.name srv.store;
           engine = Store.engine srv.store;
           records = Store.entries srv.store;
           shards = Store.shards srv.store;
           inflight;
         })
  | P.Query key -> (
    match Store.find srv.store ~key with
    | Some v -> send (P.Found v)
    | None -> send P.Not_found)
  | P.Diff { a; b } -> handle_diff srv ~send ~a ~b
  | P.Merge dir -> handle_merge srv ~send dir
  | P.Counters -> send (P.Counter_values (Tel.snapshot ()).Tel.counters)
  | P.Shutdown ->
    send P.Bye;
    stop srv

let register_conn srv fd =
  Mutex.protect srv.conns_lock (fun () -> Hashtbl.replace srv.conns fd ())

let unregister_conn srv fd =
  Mutex.protect srv.conns_lock (fun () -> Hashtbl.remove srv.conns fd)

let handle_connection srv fd =
  Tel.Counter.incr c_connections;
  register_conn srv fd;
  let send = sender fd in
  let rec loop () =
    match P.read_frame ?frame_timeout:srv.read_timeout fd with
    | Error `Eof -> ()
    | Error `Timeout ->
      (* slowloris: a frame started and stalled — drop the peer; other
         connections are on their own threads and unaffected *)
      Tel.Counter.incr c_read_timeouts
    | Error (`Protocol m) -> send (P.Error_msg ("protocol: " ^ m))
    | Ok x -> (
      Tel.Counter.incr c_requests;
      match P.decode_request x with
      | Error m ->
        send (P.Error_msg m);
        loop ()
      | Ok req ->
        (match handle_request srv ~send req with
        | () -> ()
        | exception e -> send (P.Error_msg (Printexc.to_string e)));
        if req <> P.Shutdown then loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      unregister_conn srv fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* a connection accepted in the instant the drain completed may
         have registered after the finisher swept the registry — it
         must not sit blocked in [read_frame] forever *)
      if Mutex.protect srv.adm (fun () -> srv.state = Stopped) then ()
      else loop ())

(* accept loop; returns once a drain (stop / shutdown verb / SIGTERM)
   has completed and every connection thread has drained *)
let serve srv =
  let drainer =
    Thread.create
      (fun () ->
        let b = Bytes.create 1 in
        (try ignore (Unix.read srv.drain_r b 0 1)
         with Unix.Unix_error _ -> ());
        begin_drain srv)
      ()
  in
  let stopped () = Mutex.protect srv.adm (fun () -> srv.state = Stopped) in
  let rec accept_loop threads =
    if stopped () then threads
    else
      match Unix.accept srv.listen_fd with
      | fd, _ ->
        if stopped () then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          threads
        end
        else begin
          let th = Thread.create (fun () -> handle_connection srv fd) () in
          accept_loop (th :: threads)
        end
      | exception Unix.Unix_error (EINTR, _, _) -> accept_loop threads
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
        threads
  in
  let threads = accept_loop [] in
  List.iter Thread.join threads;
  Thread.join drainer;
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close srv.drain_r with Unix.Unix_error _ -> ());
  (try Unix.close srv.drain_w with Unix.Unix_error _ -> ());
  Option.iter Procpool.shutdown srv.pool;
  (try Unix.unlink srv.socket_path with Unix.Unix_error _ -> ());
  Store.close srv.store

(* ---- client side ---- *)

module Client = struct
  exception Transport of string
  exception Busy of { retry_after : float }
  exception Draining

  let () =
    Printexc.register_printer (function
      | Busy { retry_after } ->
        Some (Printf.sprintf "server busy (retry after %.1fs)" retry_after)
      | Draining -> Some "server is draining (shutting down)"
      | _ -> None)

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

  let with_connection path f =
    let fd = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> f fd)

  let read_response fd =
    match P.read_frame fd with
    | Error `Eof -> raise (Transport "connection closed")
    | Error `Timeout -> raise (Transport "read timeout")
    | Error (`Protocol m) -> raise (Transport ("protocol: " ^ m))
    | Ok x -> (
      match P.decode_response x with
      | Ok r -> r
      | Error m -> raise (Transport ("protocol: " ^ m)))

  (* one-shot request/response *)
  let request ~socket req =
    with_connection socket (fun fd ->
        P.write_frame fd (P.encode_request req);
        read_response fd)

  type outcome = {
    planned : int;
    reused : int;
    simulated : int;
    deduped : int;
    failed : int;
  }

  (* one submission over one connection: streams [on_event] per point,
     returns the final tally. [Error] carries a server-side message (a
     bad manifest, a failed handler); transport trouble raises
     {!Transport}, capacity rejections raise {!Busy} / {!Draining} so
     retry logic can tell the three apart. *)
  let submit ?jobs ?(on_event = fun _ -> ()) ~socket manifest =
    with_connection socket (fun fd ->
        P.write_frame fd (P.encode_request (P.Submit { manifest; jobs }));
        let rec loop () =
          match read_response fd with
          | P.Point _ as p ->
            on_event p;
            loop ()
          | P.Done { planned; reused; simulated; deduped; failed } ->
            Ok { planned; reused; simulated; deduped; failed }
          | P.Busy { retry_after } -> raise (Busy { retry_after })
          | P.Draining -> raise Draining
          | P.Error_msg m -> Error m
          | _ -> raise (Transport "unexpected response to submit")
        in
        loop ())

  (* resilient submission: reconnect-and-resubmit on transport failure
     (server killed mid-stream, not yet listening, ...) or a capacity
     rejection. Backoff is capped jittered exponential from [delay];
     an explicit [Busy {retry_after}] hint from the server takes
     precedence (also jittered, so a crowd rejected together does not
     return together). Completed points persist in the server's store,
     so a resubmission reuses them — the retry converges instead of
     redoing work. Server-side errors (bad manifest) are not retried. *)
  let submit_retrying ?jobs ?on_event ?(attempts = 10) ?(delay = 0.5) ~socket
      manifest =
    let rng =
      Random.State.make
        [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |]
    in
    let backoff tried =
      Float.min 5.0 (delay *. (2.0 ** float_of_int tried))
      *. (0.5 +. Random.State.float rng 0.5)
    in
    let rec go n tried =
      match submit ?jobs ?on_event ~socket manifest with
      | (Ok _ | Error _) as r -> r
      | exception Busy { retry_after } when n > 1 ->
        Unix.sleepf (retry_after *. (0.75 +. Random.State.float rng 0.5));
        go (n - 1) (tried + 1)
      | exception
          ( Transport _ | Draining
          | Unix.Unix_error
              ((ECONNREFUSED | ECONNRESET | ENOENT | EPIPE), _, _) )
        when n > 1 ->
        Unix.sleepf (backoff tried);
        go (n - 1) (tried + 1)
    in
    go attempts 0
end
