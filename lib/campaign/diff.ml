module D = Dramstress_defect.Defect
module Border = Dramstress_core.Border
module Table1 = Dramstress_core.Table1
module Store = Dramstress_util.Store

type side = { store : Store.t; manifest : Manifest.t; label : string }

type pairing =
  | Matched_stresses
  | Stress_pair of { a : string; b : string }

type row = {
  defect : D.entry;
  placement : D.placement;
  detection : Manifest.detection_spec;
  stress_a : string;
  stress_b : string;
  a : Plan.result option;
  b : Plan.result option;
  improvement : float option;
  shifted : bool;
}

type t = {
  a_label : string;
  b_label : string;
  rows : row list;
  shifted : int;
  missing : int;
  unpaired : string list;
}

let lookup side ~stress_label ~defect ~placement ~detection =
  match List.assoc_opt stress_label side.manifest.Manifest.stresses with
  | None -> None
  | Some stress ->
    let point =
      { Plan.defect; placement; stress_label; stress; detection }
    in
    (match Runner.state ~store:side.store side.manifest point with
    | `Done r -> Some r
    | `Failed _ | `Missing -> None)

let v ?(pairing = Matched_stresses) ~a ~b () =
  let a_labels = List.map fst a.manifest.Manifest.stresses in
  let b_labels = List.map fst b.manifest.Manifest.stresses in
  let pairs, unpaired =
    match pairing with
    | Matched_stresses ->
      ( List.filter_map
          (fun l -> if List.mem l b_labels then Some (l, l) else None)
          a_labels,
        List.filter (fun l -> not (List.mem l b_labels)) a_labels
        @ List.filter (fun l -> not (List.mem l a_labels)) b_labels )
    | Stress_pair { a = la; b = lb } ->
      if not (List.mem la a_labels) then
        invalid_arg
          (Printf.sprintf "Diff.v: stress %S not declared in %s" la a.label);
      if not (List.mem lb b_labels) then
        invalid_arg
          (Printf.sprintf "Diff.v: stress %S not declared in %s" lb b.label);
      ([ (la, lb) ], [])
  in
  let rows =
    List.concat_map
      (fun (defect, placement) ->
        List.concat_map
          (fun (stress_a, stress_b) ->
            List.map
              (fun detection ->
                let ra = lookup a ~stress_label:stress_a ~defect ~placement ~detection in
                let rb = lookup b ~stress_label:stress_b ~defect ~placement ~detection in
                let improvement =
                  match (ra, rb) with
                  | Some ra, Some rb ->
                    Border.improvement (D.polarity defect.D.kind)
                      ~nominal:ra.Plan.br ~stressed:rb.Plan.br
                  | _, _ -> None
                in
                let shifted =
                  match (ra, rb) with
                  | Some ra, Some rb ->
                    not (Border.equal_result ra.Plan.br rb.Plan.br)
                  | _, _ -> false
                in
                {
                  defect;
                  placement;
                  detection;
                  stress_a;
                  stress_b;
                  a = ra;
                  b = rb;
                  improvement;
                  shifted;
                })
              a.manifest.Manifest.detections)
          pairs)
      a.manifest.Manifest.defects
  in
  {
    a_label = a.label;
    b_label = b.label;
    rows;
    shifted = List.length (List.filter (fun (r : row) -> r.shifted) rows);
    missing =
      List.length
        (List.filter (fun (r : row) -> r.a = None || r.b = None) rows);
    unpaired;
  }

let br_cell = function
  | None -> "--"
  | Some r -> Table1.br_string r.Plan.br

let stress_cell ra rb =
  if ra = rb then ra else Printf.sprintf "%s->%s" ra rb

let render d =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Campaign diff: A = %s, B = %s\n" d.a_label d.b_label);
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-6s %-14s %-18s %-12s %-12s %-8s %s\n" "Defect"
       "Place" "Detection" "Stress" "Border A" "Border B" "Shift" "Same");
  Buffer.add_string buf (String.make 92 '-' ^ "\n");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-6s %-14s %-18s %-12s %-12s %-8s %s\n"
           r.defect.D.id
           (Format.asprintf "%a" D.pp_placement r.placement)
           (Manifest.detection_label r.detection)
           (stress_cell r.stress_a r.stress_b)
           (br_cell r.a) (br_cell r.b)
           (match r.improvement with
           | Some f -> Printf.sprintf "%.2fx" f
           | None -> "n/a")
           (if r.a = None || r.b = None then "missing"
            else if r.shifted then "SHIFTED"
            else "=")))
    d.rows;
  Buffer.add_string buf
    (Printf.sprintf "\n%d row(s), %d shifted, %d with a missing side.\n"
       (List.length d.rows) d.shifted d.missing);
  if d.unpaired <> [] then
    Buffer.add_string buf
      (Printf.sprintf "Unpaired stress label(s) skipped: %s\n"
         (String.concat ", " d.unpaired));
  Buffer.contents buf

let to_csv d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "defect,placement,detection,stress_a,stress_b,border_a,border_b,shift,\
     shifted\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%s,%b\n" r.defect.D.id
           (Format.asprintf "%a" D.pp_placement r.placement)
           (Manifest.detection_label r.detection)
           r.stress_a r.stress_b (br_cell r.a) (br_cell r.b)
           (match r.improvement with
           | Some f -> Printf.sprintf "%.6g" f
           | None -> "")
           r.shifted))
    d.rows;
  Buffer.contents buf
