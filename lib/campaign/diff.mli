(** Campaign comparison — the Table-1 story as a first-class report.

    A diff reads two campaign {e stores} (no simulation happens here)
    and reports, defect by defect, how the border resistance moved
    between two sides. The two standard uses:

    - {e two stress settings} of one campaign ([Stress_pair]): the
      paper's Table 1 — nominal vs stressed BR and the improvement
      factor per defect;
    - {e two campaigns} ([Matched_stresses]): same study re-run (new
      engine, new store, a colleague's machine) — every stress label
      the sides share is compared point-for-point. A completed campaign
      diffed against itself is empty: [shifted = 0], [missing = 0]. *)

type side = {
  store : Dramstress_util.Store.t;
  manifest : Manifest.t;
  label : string;  (** display name, e.g. the campaign or file name *)
}

type pairing =
  | Matched_stresses
      (** compare equal stress labels; labels missing on either side are
          skipped (and listed in {!t.unpaired}) *)
  | Stress_pair of { a : string; b : string }
      (** compare side A at label [a] against side B at label [b] —
          nominal-vs-stressed Table-1 mode *)

type row = {
  defect : Dramstress_defect.Defect.entry;
  placement : Dramstress_defect.Defect.placement;
  detection : Manifest.detection_spec;
  stress_a : string;
  stress_b : string;
  a : Plan.result option;  (** [None]: missing or failed on side A *)
  b : Plan.result option;
  improvement : float option;
      (** covered-range growth A→B per the defect's polarity
          ({!Dramstress_core.Border.improvement}); [None] unless both
          sides are present and comparable *)
  shifted : bool;
      (** both sides present and the border results differ *)
}

type t = {
  a_label : string;
  b_label : string;
  rows : row list;
  shifted : int;
  missing : int;  (** rows with at least one absent side *)
  unpaired : string list;
      (** stress labels skipped by [Matched_stresses] *)
}

(** [v ?pairing ~a ~b ()] builds the report. Rows follow side A's
    manifest order (defects outermost). The plan/addressing comes from
    each side's own manifest, so the sides may disagree on scheduling
    (jobs, deadline) and still compare — but not on physics, which is
    part of the address. Raises [Invalid_argument] if a [Stress_pair]
    label is not declared in the corresponding manifest. *)
val v : ?pairing:pairing -> a:side -> b:side -> unit -> t

(** [render d] is the Table-1-style text report; border cells use
    {!Dramstress_core.Table1.br_string}, so a campaign diff and the
    canonical table render the same values identically. *)
val render : t -> string

val to_csv : t -> string
