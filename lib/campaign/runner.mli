(** Campaign execution: plan against the store, simulate only what is
    missing, record everything.

    The contract that makes campaigns resumable:

    - a point whose success record exists is {e never} recomputed — it
      is counted as reused and its stored payload is returned;
    - a point that previously {e failed} is retried: failures live in a
      separate key namespace ([campaign.fail|...]) that success lookups
      never consult, and are overwritten in place on each new attempt;
    - success records are written from inside the worker domains as
      points finish, so a killed run keeps everything completed so far —
      and the store's checkpoint handle is threaded into every border
      search, so even a half-finished point resumes from its finished
      searches.

    Counters: [campaign.points_planned], [campaign.points_reused],
    [campaign.points_simulated], [campaign.points_failed]. A warm rerun
    of an unchanged campaign reports [points_simulated = 0]. *)

type state =
  [ `Done of Plan.result  (** success record present *)
  | `Failed of string  (** only a failure record present *)
  | `Missing  (** never attempted (or store was discarded) *) ]

(** [state ~store m p] classifies one point against the store without
    simulating anything. *)
val state : store:Dramstress_util.Store.t -> Manifest.t -> Plan.point -> state

(** [states ~store m] is {!state} over the whole plan, in plan order. *)
val states :
  store:Dramstress_util.Store.t ->
  Manifest.t ->
  (Plan.point * state) list

type summary = {
  planned : int;
  reused : int;  (** points answered from the store *)
  simulated : int;  (** points computed this run (successfully) *)
  results : (Plan.point * Plan.result) list;
      (** every finished point — reused and fresh — in plan order *)
  failures : Plan.point Dramstress_util.Outcome.failure list;
      (** points that failed even after the retry policy; recorded in
          the store's failure namespace and retried on the next run *)
}

(** [run ?jobs ~store m] executes the campaign: expands the plan, reuses
    stored successes, simulates the rest in parallel
    ({!Dramstress_util.Par.parallel_map_outcomes} over the config's
    domain count; [?jobs] overrides). Solver failures become [failures],
    not exceptions. *)
val run :
  ?jobs:int -> store:Dramstress_util.Store.t -> Manifest.t -> summary

val pp_summary : Format.formatter -> summary -> unit
