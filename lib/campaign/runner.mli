(** Campaign execution: plan against the store, simulate only what is
    missing, record everything.

    The contract that makes campaigns resumable:

    - a point whose success record exists is {e never} recomputed — it
      is counted as reused and its stored payload is returned;
    - a point that previously {e failed} is retried: failures live in a
      separate key namespace ([campaign.fail|...]) that success lookups
      never consult, and are overwritten in place on each new attempt;
    - success records are written from inside the worker domains as
      points finish, so a killed run keeps everything completed so far —
      and the store's checkpoint handle is threaded into every border
      search, so even a half-finished point resumes from its finished
      searches (under an adaptive window that includes per-probe and
      per-edge records, so a kill mid-refinement re-simulates only the
      unfinished brackets).

    {2 Active planning}

    The runner is an {e active} planner over the manifest cross
    product. Points sharing a (defect, placement, detection) cell form
    one {e chain} through the manifest's stress settings, walked in
    declaration order; each completed point's border estimates seed the
    next point's search ([?hint] on {!Dramstress_core.Border.search}),
    which under [(strategy adaptive)] warm-starts the bracket around
    the adjacent stress setting's border. Hints only {e add} probes —
    they never narrow the scan — so a wrong hint costs a few extra
    samples, never correctness; a failed point resets its chain's hint.
    Chains are independent and fan out over worker domains; under
    [(strategy grid)] the chain walk degenerates to the old
    point-parallel behaviour (hints are ignored), only the scheduling
    order differs. Points whose BR is already bounded by a stored
    record are skipped before any scheduling happens and still feed
    their stored estimates into the chain.

    Counters: [campaign.points_planned], [campaign.points_reused],
    [campaign.points_simulated], [campaign.points_failed]. A warm rerun
    of an unchanged campaign reports [points_simulated = 0]. *)

type state =
  [ `Done of Plan.result  (** success record present *)
  | `Failed of string  (** only a failure record present *)
  | `Missing  (** never attempted (or store was discarded) *) ]

(** [state ~store m p] classifies one point against the store without
    simulating anything. *)
val state : store:Dramstress_util.Store.t -> Manifest.t -> Plan.point -> state

(** [states ~store m] is {!state} over the whole plan, in plan order. *)
val states :
  store:Dramstress_util.Store.t ->
  Manifest.t ->
  (Plan.point * state) list

type summary = {
  planned : int;
  reused : int;  (** points answered from the store *)
  simulated : int;  (** points computed this run (successfully) *)
  deduped : int;
      (** points answered by a concurrent submission through the
          in-flight {!gate} (or found in the store after
          classification) — nobody simulated them twice *)
  results : (Plan.point * Plan.result) list;
      (** every finished point — reused and fresh — in plan order *)
  failures : Plan.point Dramstress_util.Outcome.failure list;
      (** points that failed even after the retry policy; recorded in
          the store's failure namespace and retried on the next run *)
}

(** In-flight deduplication hook for multi-client execution (the
    campaign service). Before simulating a missing point the runner
    [claim]s the point's descriptor:

    - [`Run] — this runner owns the point; it {e must} [publish] the
      outcome under the same descriptor when done (success {e or}
      failure — an unpublished claim hangs every waiter forever);
    - [`Wait w] — another submission owns it; [w ()] blocks until that
      owner publishes and returns its outcome.

    Both closures are called from worker domains, so a gate
    implementation must be domain-safe. With a gate installed the
    runner also re-checks the store immediately before simulating a
    claimed point, catching results that landed after its
    classification pass; both paths count as [deduped]. *)
type gate = {
  claim : string -> [ `Run | `Wait of unit -> (Plan.result, string) result ];
  publish : string -> (Plan.result, string) result -> unit;
}

(** What happened to one point, streamed to [?on_point] the moment it
    is known (from whichever worker domain resolved the point — the
    callback must be domain-safe and should be quick). *)
type event =
  [ `Reused of Plan.result
  | `Simulated of Plan.result
  | `Deduped of Plan.result
  | `Failed of string ]

(** [simulate_point ?checkpoint ?hint m p] is the pure simulation of one
    plan point — the border search (or best-detection scan) with no
    store access beyond the optional [checkpoint] memo handle. This is
    the unit of work the sandboxed service ships to a
    {!Dramstress_util.Procpool} worker; in-process execution goes
    through exactly the same function, so the two paths cannot diverge.
    [hint] seeds the adaptive search as in {!run}'s warm-start chains
    (default none). *)
val simulate_point :
  ?checkpoint:Dramstress_util.Checkpoint.t ->
  ?hint:float list ->
  Manifest.t ->
  Plan.point ->
  Plan.result

(** [run ?jobs ?gate ?on_point ?executor ?fanout ~store m] executes the
    campaign: expands the plan, reuses stored successes, simulates the
    rest as warm-start chains fanned out over the config's domain count
    ([?jobs] overrides). Solver failures become [failures], not
    exceptions — per-point fault isolation matches
    {!Dramstress_util.Par.parallel_map_outcomes}, chaos injection
    included. [?gate] deduplicates in-flight points across concurrent
    submissions; [?on_point] streams per-point events as they land.

    [?executor] replaces the in-process {!simulate_point} call with an
    external execution hook (the sandboxed worker-pool path): it
    receives the chain's current warm-start hints and the point, and
    must return the point's result or raise — a raise (including
    {!Dramstress_util.Procpool.Worker_lost} for a quarantined poison
    point) becomes that point's [Failed] outcome like any solver error.
    Classification, gating, store writes and failure records stay in
    this process either way.

    [?fanout] selects the fan-out mechanism for the chains:
    [`Domains] (default) for local runs, [`Threads] for a process that
    must remain fork-capable — the sandboxed daemon, whose chains spend
    their time blocked on pool pipes, not in OCaml code. *)
val run :
  ?jobs:int ->
  ?gate:gate ->
  ?on_point:(Plan.point -> event -> unit) ->
  ?executor:(hint:float list -> Plan.point -> Plan.result) ->
  ?fanout:[ `Domains | `Threads ] ->
  store:Dramstress_util.Store.t ->
  Manifest.t ->
  summary

val pp_summary : Format.formatter -> summary -> unit
