(** Wire protocol of the campaign service.

    Frames are an 8-hex-digit payload length followed by that many
    bytes of rendered s-expression, exchanged over a local Unix-domain
    socket. One request frame yields one response frame — except
    [submit], which streams any number of [point] frames before its
    final [done] (or [error]) frame. *)

(** The s-expression carrier. Atoms containing whitespace, parens,
    quotes or backslashes render quoted with C-style escapes, so
    manifest text and rendered reports pass through verbatim. *)
type sexp = Atom of string | List of sexp list

val to_string : sexp -> string

(** [of_string s] parses exactly one s-expression (plus surrounding
    whitespace). *)
val of_string : string -> (sexp, string) result

(** Frames larger than this (16 MiB) are refused — a corrupt header
    must not trigger a giant allocation. *)
val max_frame : int

val write_frame : Unix.file_descr -> sexp -> unit

(** [read_frame ?frame_timeout fd] reads one frame. [`Eof] is a clean
    (or mid-frame) connection close; [`Protocol] is a malformed header,
    oversized frame or unparseable payload.

    [frame_timeout] (seconds) is the slowloris defence: it bounds the
    time from a frame's {e first byte} to its last — a peer that opens
    a frame and trickles gets [`Timeout]; a connection sitting silent
    {e between} frames is never timed out, so idle keep-alive clients
    are unaffected. *)
val read_frame :
  ?frame_timeout:float ->
  Unix.file_descr ->
  (sexp, [ `Eof | `Protocol of string | `Timeout ]) result

type request =
  | Submit of { manifest : string; jobs : int option }
      (** run a campaign (manifest text, not a path) on the server's
          store; the reply streams [Point]s then one [Done] *)
  | Status  (** server + store summary *)
  | Query of string  (** raw point-descriptor lookup *)
  | Diff of { a : string; b : string }
      (** two manifest texts, both evaluated against the server store;
          replies with the rendered comparison *)
  | Merge of string
      (** absorb the store directory at this path into the server's *)
  | Counters  (** server-process telemetry counters *)
  | Shutdown

type point_status = Reused | Simulated | Deduped | Failed

val string_of_point_status : point_status -> string
val point_status_of_string : string -> point_status option

type response =
  | Point of { descr : string; status : point_status; payload : string }
      (** one campaign point as it lands; [payload] is the encoded
          result, or the error message when [status = Failed] *)
  | Done of {
      planned : int;
      reused : int;
      simulated : int;
      deduped : int;
      failed : int;
    }
  | Status_report of {
      name : string;
      engine : string;
      records : int;
      shards : int;
      inflight : int;
    }
  | Found of string
  | Not_found
  | Diff_report of string
  | Merged of { added : int; replaced : int; kept : int }
  | Counter_values of (string * int) list
  | Busy of { retry_after : float }
      (** admission control: over capacity — retry the submission after
          (roughly) [retry_after] seconds *)
  | Draining
      (** the server is shutting down gracefully and accepts no new
          submissions; in-flight work is being finished *)
  | Bye
  | Error_msg of string

val encode_request : request -> sexp
val decode_request : sexp -> (request, string) result
val encode_response : response -> sexp
val decode_response : sexp -> (response, string) result
