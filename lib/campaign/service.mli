(** The campaign service: a long-running daemon owning one (typically
    sharded) {!Dramstress_util.Store}, executing campaign submissions
    from concurrent clients over a Unix-domain socket speaking
    {!Protocol}.

    Two clients submitting overlapping manifests cost one simulation
    per point: a submission {e claims} each missing point descriptor
    through an in-flight gate ({!Runner.gate}) before simulating;
    later claimants of the same descriptor block until the owner
    publishes its outcome (counted on
    [campaign.service.inflight_dedup]). Completed points stream back to
    each client as [point] frames the moment they land.

    {2 Fault isolation (sandbox)}

    By default points execute in a supervised pool of forked worker
    processes ({!Dramstress_util.Procpool} through {!Sandbox}): a
    solver segfault, OOM kill or wedge costs one worker — restarted
    with jittered exponential backoff — never the daemon. A point that
    kills workers repeatedly is quarantined as a [Failed] outcome
    (error [Worker_lost]) after K deaths instead of retrying forever.
    [sandbox:false] restores in-process Domains execution.

    {2 Overload and lifecycle}

    At most [max_active] submissions run concurrently; [queue] more
    wait server-side; beyond that the server answers a typed
    [Busy {retry_after}]. Half-frame (slowloris) connections are
    dropped by a per-frame read deadline. [SIGTERM] / the shutdown
    verb / {!stop} drain gracefully: new submissions get a typed
    [Draining] rejection, in-flight ones finish, the store is flushed,
    {!serve} returns.

    A client that disconnects mid-campaign does not abort its
    submission — other clients may be waiting on points it owns; frames
    to the dead peer are dropped and the campaign runs to completion,
    every result persisted in the store.

    Counters: [campaign.service.connections] / [requests] /
    [submissions] / [inflight_dedup] / [points_streamed] /
    [worker_restarts] / [poison_points] / [busy_rejections] /
    [draining_rejections] / [read_timeouts]. *)

type t

(** Raised by {!create} when the socket path is owned by a daemon that
    still answers — starting would have destroyed its socket. Only a
    {e stale} socket file (its owner dead, connect refused) is
    reclaimed. *)
exception Already_running of string

(** [create ?jobs ?sandbox ?max_task_deaths ?task_timeout ?max_active
    ?queue ?read_timeout ~store ~socket_path ()] probes [socket_path]
    (raising {!Already_running} if a live daemon answers; a stale
    socket file is replaced), forks the worker pool when [sandbox] (the
    default), binds, listens, and installs a [SIGPIPE] ignore.

    - [jobs] sizes the worker pool (sandbox) or caps worker domains per
      submission (no sandbox) when the submission itself does not say.
    - [max_task_deaths] is the quarantine threshold K (default 3);
      [task_timeout] SIGKILLs a worker stuck on one point longer than
      this many seconds (default: no limit).
    - [max_active] / [queue] bound concurrent and queued submissions
      (defaults 4 / 8); over both, submissions answer [Busy].
    - [read_timeout] (seconds, default 10; [<= 0] disables) drops a
      connection whose frame stalls mid-transmission.

    The server owns [store] from here on; {!serve} closes it. *)
val create :
  ?jobs:int ->
  ?sandbox:bool ->
  ?max_task_deaths:int ->
  ?task_timeout:float ->
  ?max_active:int ->
  ?queue:int ->
  ?read_timeout:float ->
  store:Dramstress_util.Store.t ->
  socket_path:string ->
  unit ->
  t

(** [sandboxed t] is whether points execute in the worker pool. *)
val sandboxed : t -> bool

(** [serve t] accepts and handles connections (one thread each) until
    {!stop} is called or a client sends the [shutdown] verb; drains
    in-flight submissions, shuts down the worker pool, removes the
    socket file and closes the store before returning. *)
val serve : t -> unit

(** [stop t] initiates a graceful drain from another thread {e or a
    signal handler} (it only writes one byte to a self-pipe): the
    server flips to Draining, rejects new submissions with the typed
    [Draining] response, finishes in-flight ones and exits. *)
val stop : t -> unit

module Client : sig
  (** Connection-level trouble — refused, closed mid-stream, protocol
      garbage. Distinct from a server-side [Error] reply so retry
      logic never retries a genuinely bad request. *)
  exception Transport of string

  (** The server is over capacity; retry the submission after (roughly)
      [retry_after] seconds. {!submit_retrying} honors it. *)
  exception Busy of { retry_after : float }

  (** The server is draining and accepts no new submissions. *)
  exception Draining

  (** [request ~socket req] is a one-shot request/response exchange.
      Raises {!Transport}. Not for [Submit] — use {!submit}. *)
  val request : socket:string -> Protocol.request -> Protocol.response

  type outcome = {
    planned : int;
    reused : int;
    simulated : int;
    deduped : int;
    failed : int;
  }

  (** [submit ?jobs ?on_event ~socket manifest] submits manifest text
      and streams [on_event] per [point] frame until the final tally.
      [Error] carries a server-side message; {!Transport} is raised on
      connection trouble, {!Busy} / {!Draining} on capacity
      rejections. *)
  val submit :
    ?jobs:int ->
    ?on_event:(Protocol.response -> unit) ->
    socket:string ->
    string ->
    (outcome, string) result

  (** [submit_retrying] is {!submit} plus reconnect-and-resubmit on
      transport failure or capacity rejection, [attempts] times, with
      capped jittered exponential backoff starting at [delay] seconds;
      a server [Busy {retry_after}] hint overrides the computed backoff
      (jittered too). Completed points persist server-side, so a
      resubmission reuses them and the retry converges. Server-side
      errors do not retry. *)
  val submit_retrying :
    ?jobs:int ->
    ?on_event:(Protocol.response -> unit) ->
    ?attempts:int ->
    ?delay:float ->
    socket:string ->
    string ->
    (outcome, string) result
end
