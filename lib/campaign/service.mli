(** The campaign service: a long-running daemon owning one (typically
    sharded) {!Dramstress_util.Store}, executing campaign submissions
    from concurrent clients over a Unix-domain socket speaking
    {!Protocol}.

    Two clients submitting overlapping manifests cost one simulation
    per point: a submission {e claims} each missing point descriptor
    through an in-flight gate ({!Runner.gate}) before simulating;
    later claimants of the same descriptor block until the owner
    publishes its outcome (counted on
    [campaign.service.inflight_dedup]). Completed points stream back to
    each client as [point] frames the moment they land.

    A client that disconnects mid-campaign does not abort its
    submission — other clients may be waiting on points it owns; frames
    to the dead peer are dropped and the campaign runs to completion,
    every result persisted in the store.

    Counters: [campaign.service.connections] / [requests] /
    [submissions] / [inflight_dedup] / [points_streamed]. *)

type t

(** [create ?jobs ~store ~socket_path ()] binds and listens on
    [socket_path] (an existing socket file is replaced) and installs a
    [SIGPIPE] ignore. [jobs] caps worker domains per submission when
    the submission itself does not say. The server owns [store] from
    here on; {!serve} closes it. *)
val create :
  ?jobs:int -> store:Dramstress_util.Store.t -> socket_path:string -> unit -> t

(** [serve t] accepts and handles connections (one thread each) until
    {!stop} is called or a client sends the [shutdown] verb; drains
    in-flight submissions, removes the socket file and closes the
    store before returning. *)
val serve : t -> unit

(** [stop t] initiates shutdown from another thread (or a signal
    handler): the accept loop exits, in-flight submissions complete. *)
val stop : t -> unit

module Client : sig
  (** Connection-level trouble — refused, closed mid-stream, protocol
      garbage. Distinct from a server-side [Error] reply so retry
      logic never retries a genuinely bad request. *)
  exception Transport of string

  (** [request ~socket req] is a one-shot request/response exchange.
      Raises {!Transport}. Not for [Submit] — use {!submit}. *)
  val request : socket:string -> Protocol.request -> Protocol.response

  type outcome = {
    planned : int;
    reused : int;
    simulated : int;
    deduped : int;
    failed : int;
  }

  (** [submit ?jobs ?on_event ~socket manifest] submits manifest text
      and streams [on_event] per [point] frame until the final tally.
      [Error] carries a server-side message; {!Transport} is raised on
      connection trouble. *)
  val submit :
    ?jobs:int ->
    ?on_event:(Protocol.response -> unit) ->
    socket:string ->
    string ->
    (outcome, string) result

  (** [submit_retrying] is {!submit} plus reconnect-and-resubmit on
      transport failure, [attempts] times [delay] seconds apart.
      Completed points persist server-side, so a resubmission reuses
      them and the retry converges. Server-side errors do not retry. *)
  val submit_retrying :
    ?jobs:int ->
    ?on_event:(Protocol.response -> unit) ->
    ?attempts:int ->
    ?delay:float ->
    socket:string ->
    string ->
    (outcome, string) result
end
