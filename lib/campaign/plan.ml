module D = Dramstress_defect.Defect
module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module Det = Dramstress_core.Detection
module Border = Dramstress_core.Border
module M = Dramstress_march.March
module Ck = Dramstress_util.Checkpoint

type point = {
  defect : D.entry;
  placement : D.placement;
  stress_label : string;
  stress : S.t;
  detection : Manifest.detection_spec;
}

type result = { detection : Det.t; br : Border.result }

let points (m : Manifest.t) =
  List.concat_map
    (fun (defect, placement) ->
      List.concat_map
        (fun (stress_label, stress) ->
          List.map
            (fun detection ->
              { defect; placement; stress_label; stress; detection })
            m.Manifest.detections)
        m.Manifest.stresses)
    m.Manifest.defects

(* ------------------------------------------------------------------ *)
(* codecs                                                              *)
(* ------------------------------------------------------------------ *)

let encode_detection (d : Det.t) =
  String.concat ","
    (List.map
       (function
         | Det.Write b -> Printf.sprintf "w%d" b
         | Det.Read b -> Printf.sprintf "r%d" b
         | Det.Wait t -> Printf.sprintf "p%h" t
         | Det.Hammer n -> Printf.sprintf "h%d" n)
       d.Det.steps)

let decode_detection s =
  let step tok =
    if tok = "" then None
    else
      let rest () = String.sub tok 1 (String.length tok - 1) in
      match tok.[0] with
      | 'w' -> Option.map (fun b -> Det.Write b) (int_of_string_opt (rest ()))
      | 'r' -> Option.map (fun b -> Det.Read b) (int_of_string_opt (rest ()))
      | 'p' -> Option.map (fun t -> Det.Wait t) (float_of_string_opt (rest ()))
      | 'h' -> Option.map (fun n -> Det.Hammer n) (int_of_string_opt (rest ()))
      | _ -> None
  in
  let toks = String.split_on_char ',' s in
  let steps = List.map step toks in
  if List.for_all Option.is_some steps then
    match Det.v (List.filter_map Fun.id steps) with
    | d -> Some d
    | exception Invalid_argument _ -> None
  else None

let encode_result { detection; br } =
  encode_detection detection ^ "|" ^ Border.encode_result br

let decode_result s =
  match String.index_opt s '|' with
  | None -> None
  | Some i ->
    let det = String.sub s 0 i in
    let br = String.sub s (i + 1) (String.length s - i - 1) in
    (match (decode_detection det, Border.decode_result br) with
    | Some detection, Some br -> Some { detection; br }
    | _, _ -> None)

(* ------------------------------------------------------------------ *)
(* content addresses                                                   *)
(* ------------------------------------------------------------------ *)

(* the detection part of the address: explicit sequences (and marches,
   via their per-cell lowering) address by their canonical op text, so
   equivalent specs share records; synthesized specs address by the
   request, since the winning sequence is an OUTPUT of the point *)
let detection_canon = function
  | Manifest.Best -> "best"
  | Manifest.Best_no_pause -> "best-nopause"
  | Manifest.Seq d -> "seq:" ^ encode_detection d
  | Manifest.March t -> "seq:" ^ encode_detection (M.to_detection t)

let placement_tag = function D.True_bl -> "true" | D.Comp_bl -> "comp"

let descriptor (m : Manifest.t) p =
  let c = m.Manifest.config in
  (* only value-changing physics: scheduling knobs (jobs, deadline,
     retry) are deliberately left out of the fingerprint. The window
     part is [Window.fingerprint]: a [provably_grid] window prints
     byte-identically to the historical v1 "rmin,rmax,n,tol" tail, so
     pre-existing grid-mode stores stay valid, while a genuinely
     adaptive window gets its own address — Grid and Adaptive share a
     record only when their results are provably identical *)
  let physics = Ck.fingerprint (c.Sc.tech, c.Sc.sim, c.Sc.steps_per_cycle) in
  (* extension axes (wait, pattern, hammer, ...) contribute a suffix
     only when off-neutral ([Stressaxis.fingerprint_ext] is "" for a
     plain four-axis stress), so every pre-extension record keeps its
     byte-identical v1 address and stays reusable *)
  Printf.sprintf "campaign.point|v1|%s|%h,%h,%h,%h|%s|%s|%s|%s%s"
    physics p.stress.S.tcyc p.stress.S.duty p.stress.S.vdd p.stress.S.temp_c
    p.defect.D.id (placement_tag p.placement)
    (detection_canon p.detection)
    (Border.Window.fingerprint m.Manifest.window)
    (Dramstress_stressaxis.Stressaxis.fingerprint_ext p.stress)

let fail_key m p = "campaign.fail|" ^ descriptor m p

let pp_point ppf p =
  Format.fprintf ppf "%s/%a @@ %s [%s]" p.defect.D.id D.pp_placement
    p.placement p.stress_label
    (Manifest.detection_label p.detection)
