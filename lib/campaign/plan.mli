(** Campaign planning: manifest → concrete simulation points, each with
    a stable content address into a {!Dramstress_util.Store}.

    The address deliberately covers {e only} inputs that change the
    simulated values: the physics fingerprint (technology, engine
    options, transient resolution), the stress values, the defect and
    its placement, the canonical detection text, and the border-search
    window. It excludes the stress {e label} (a renamed setting reuses
    its records), the campaign name, and scheduling knobs (jobs,
    deadline, retry policy) — two campaigns that agree on the physics
    share results byte for byte.

    The window part of the address is
    {!Dramstress_core.Border.Window.fingerprint}: a window whose scan is
    provably identical to the grid oracle
    ({!Dramstress_core.Border.Window.provably_grid}) addresses exactly
    like the plain grid window on the same bounds — so Grid and
    Adaptive strategies share store records only when identical results
    are guaranteed, and stores written before the strategy field
    existed remain valid for grid-mode campaigns. *)

type point = {
  defect : Dramstress_defect.Defect.entry;
  placement : Dramstress_defect.Defect.placement;
  stress_label : string;
  stress : Dramstress_dram.Stress.t;
  detection : Manifest.detection_spec;
}
(** One (defect placement x stress x detection) cell of the campaign. *)

type result = {
  detection : Dramstress_core.Detection.t;
      (** the concrete operation sequence that was scored — for [Best]
          points, the synthesized winner *)
  br : Dramstress_core.Border.result;
}
(** What a finished point stores: the border result together with the
    operation sequence that produced it. *)

(** [points m] expands the manifest into its full cross product, in
    manifest declaration order (defects outermost, detections
    innermost). *)
val points : Manifest.t -> point list

(** [descriptor m p] is the content address of [p] under manifest [m]'s
    physics — the success-record key. Stable across processes and
    domains; hex floats throughout, no locale or precision loss. *)
val descriptor : Manifest.t -> point -> string

(** [fail_key m p] is the failure-record key for [p] — a separate
    namespace so a recorded failure never shadows a later success and is
    retried on the next run. *)
val fail_key : Manifest.t -> point -> string

(** [encode_result] / [decode_result] — store payload codec for finished
    points ([%h] floats; round-trips exactly). [decode_result] is total. *)
val encode_result : result -> string

val decode_result : string -> result option

(** [encode_detection] / [decode_detection] — canonical text form of a
    concrete operation sequence (["w1,w0,r0"]; pauses as [p%h]). The
    march and seq specs that lower to the same per-cell stream share it,
    and therefore share store records. *)
val encode_detection : Dramstress_core.Detection.t -> string

val decode_detection : string -> Dramstress_core.Detection.t option

val pp_point : Format.formatter -> point -> unit
