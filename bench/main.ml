(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation on the OCaml reproduction, plus engine micro-benchmarks
   (Bechamel) and ablations of the model's design choices.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- fig3 table1 ...
   Available targets: fig2 fig3 fig4 fig5 fig6 fig7 table1 shmoo perf
                      ablation resilience health *)

module S = Dramstress_dram.Stress
module T = Dramstress_dram.Tech
module O = Dramstress_dram.Ops
module D = Dramstress_defect.Defect
module C = Dramstress_core
module M = Dramstress_march
module U = Dramstress_util.Units
module Tel = Dramstress_util.Telemetry
module Sc = Dramstress_dram.Sim_config
module Chaos = Dramstress_util.Chaos

let nominal = S.nominal
let open_kind = D.Open_cell D.At_bitline_contact

let heading id title =
  Printf.printf "\n%s\n== %s: %s\n%s\n" (String.make 74 '=') id title
    (String.make 74 '=')

let paper_vs id paper measured =
  Printf.printf "  [%s] paper: %-38s measured: %s\n" id paper measured

let br_str = function
  | C.Border.Br r -> U.si_string r ^ "Ohm"
  | C.Border.Faulty_band { lo; hi } ->
    Printf.sprintf "band %sOhm..%sOhm" (U.si_string lo) (U.si_string hi)
  | C.Border.Bands _ as b -> Format.asprintf "%a" C.Border.pp_result b
  | C.Border.Always_faulty -> "always faulty"
  | C.Border.Never_faulty -> "not detected"
  | C.Border.Unsampled -> "unsampled"

let best_br ?allow_pause stress =
  snd
    (C.Sc_eval.best_detection ?allow_pause ~stress ~kind:open_kind
       ~placement:D.True_bl ())

(* ------------------------------------------------------------------ *)
(* Figure 2: result planes at the nominal SC                           *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  heading "fig2" "result planes for w0, w1, r at the nominal SC";
  print_string
    (C.Report.figure2 ~stress:nominal ~kind:open_kind ~placement:D.True_bl ());
  let plane =
    C.Plane.write_plane ~n_ops:2 ~stress:nominal ~kind:open_kind
      ~placement:D.True_bl ~op:O.W0 ()
  in
  let geo =
    match C.Plane.br_geometric plane with
    | Some br -> U.si_string br ^ "Ohm"
    | None -> "no crossing"
  in
  paper_vs "fig2 BR" "~180-200 kOhm ((2)w0 x Vsa)" geo;
  paper_vs "fig2 Vsa shape" "declines from ~Vmp to GND as R grows"
    "see Vsa series above (collapses to 'all reads 1')"

(* ------------------------------------------------------------------ *)
(* Figures 3-5: per-stress panels                                      *)
(* ------------------------------------------------------------------ *)

let residual_after_w0 stress =
  let defect = D.v open_kind D.True_bl 200e3 in
  let oc = O.run ~stress ~defect ~vc_init:stress.S.vdd [ O.W0 ] in
  (List.hd oc.O.results).O.vc_end

let fig3 () =
  heading "fig3" "reducing t_cyc from 60 ns to 55 ns (R = 200 kOhm)";
  print_string
    (C.Report.figure_st_panels ~stress:nominal ~axis:S.Cycle_time
       ~values:[ 55e-9; 60e-9 ] ~kind:open_kind ~placement:D.True_bl ());
  let r60 = residual_after_w0 nominal in
  let r55 = residual_after_w0 (S.with_tcyc nominal 55e-9) in
  paper_vs "fig3 w0 residual" "1.0 V at 60 ns -> 1.9 V at 55 ns"
    (Printf.sprintf "%.2f V -> %.2f V" r60 r55);
  let vsa stress =
    match
      C.Plane.vsa ~stress ~defect:(D.v open_kind D.True_bl 200e3) ()
    with
    | C.Plane.Vsa v -> Printf.sprintf "%.2f V" v
    | C.Plane.Reads_all_1 -> "all-1"
    | C.Plane.Reads_all_0 -> "all-0"
  in
  paper_vs "fig3 Vsa" "unchanged by timing"
    (Printf.sprintf "%s at 60 ns, %s at 55 ns" (vsa nominal)
       (vsa (S.with_tcyc nominal 55e-9)))

let fig4 () =
  heading "fig4" "temperature -33 / +27 / +87 C (R = 200 kOhm)";
  print_string
    (C.Report.figure_st_panels ~stress:nominal ~axis:S.Temperature
       ~values:[ -33.0; 27.0; 87.0 ] ~kind:open_kind ~placement:D.True_bl ());
  List.iter
    (fun tc ->
      Printf.printf "  BR at T=%+4.0f C: %s\n" tc
        (br_str (best_br ~allow_pause:false (S.with_temp_c nominal tc))))
    [ -33.0; 27.0; 87.0 ];
  paper_vs "fig4 verdict" "high T reduces BR by ~5 kOhm (2.5%)"
    "see BR trend above (hot is most stressful)"

let fig5 () =
  heading "fig5" "supply voltage 2.1 / 2.4 / 2.7 V (R = 200 kOhm)";
  print_string
    (C.Report.figure_st_panels ~stress:nominal ~axis:S.Supply_voltage
       ~values:[ 2.1; 2.4; 2.7 ] ~kind:open_kind ~placement:D.True_bl ());
  List.iter
    (fun v ->
      Printf.printf "  BR at Vdd=%.1f V: %s\n" v
        (br_str (best_br ~allow_pause:false (S.with_vdd nominal v))))
    [ 2.1; 2.4; 2.7 ];
  let r21 = residual_after_w0 (S.with_vdd nominal 2.1) in
  let r24 = residual_after_w0 nominal in
  let r27 = residual_after_w0 (S.with_vdd nominal 2.7) in
  paper_vs "fig5 w0 residual" "0.9 / 1.0 / 1.2 V at 2.1/2.4/2.7 V"
    (Printf.sprintf "%.2f / %.2f / %.2f V" r21 r24 r27);
  paper_vs "fig5 verdict" "BR 150k / 180k / 220k -> 2.1 V most stressful"
    "see BR trend above (weaker in our calibration)"

(* ------------------------------------------------------------------ *)
(* Figure 6: planes at the stressed SC                                 *)
(* ------------------------------------------------------------------ *)

let stressed_sc =
  S.with_vdd (S.with_temp_c (S.with_tcyc nominal 55e-9) 87.0) 2.1

let fig6 () =
  heading "fig6"
    "result planes at the stressed SC (t_cyc=55 ns, T=+87 C, Vdd=2.1 V)";
  print_string
    (C.Report.figure2 ~stress:stressed_sc ~kind:open_kind
       ~placement:D.True_bl ());
  let nom_det, nom_br =
    C.Sc_eval.best_detection ~allow_pause:false ~stress:nominal
      ~kind:open_kind ~placement:D.True_bl ()
  in
  let str_det, str_br =
    C.Sc_eval.best_detection ~allow_pause:false ~stress:stressed_sc
      ~kind:open_kind ~placement:D.True_bl ()
  in
  paper_vs "fig6 BR" "reduced 200 kOhm -> ~50 kOhm"
    (Printf.sprintf "%s -> %s" (br_str nom_br) (br_str str_br));
  paper_vs "fig6 detection" "needs more w1 primes under the SC"
    (Printf.sprintf "%s -> %s"
       (C.Detection.to_string nom_det)
       (C.Detection.to_string str_det))

(* ------------------------------------------------------------------ *)
(* Figure 7 + Table 1                                                  *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  heading "fig7" "defect catalog";
  print_string (D.describe_figure7 ())

let table1 () =
  heading "table1" "ST optimization over the defect catalog";
  (* O1-O3 are electrically equivalent (verified by the test suite); run
     one open representative to keep the harness under a few minutes *)
  let entries =
    List.filter
      (fun (e : D.entry) -> e.D.id <> "O2" && e.D.id <> "O3")
      D.catalog
  in
  let table = C.Table1.generate ~entries () in
  print_string (C.Table1.render table);
  paper_vs "table1 opens" "200 kOhm -> 50 kOhm, directions tcyc- T+ Vdd-"
    "see O1 rows";
  paper_vs "table1 Sg" "~1 MOhm -> ~10 GOhm" "see Sg rows";
  paper_vs "table1 true/comp" "same BR, detection with 0/1 interchanged"
    "compare row pairs"

(* ------------------------------------------------------------------ *)
(* Shmoo (Section 2 context)                                           *)
(* ------------------------------------------------------------------ *)

let shmoo () =
  heading "shmoo" "traditional Shmoo plot for the 200 kOhm open";
  let defect = D.v open_kind D.True_bl 200e3 in
  let detection =
    C.Detection.v
      [ C.Detection.Write 1; C.Detection.Read 1; C.Detection.Write 0;
        C.Detection.Read 0 ]
  in
  let plot =
    M.Shmoo.generate ~stress:nominal ~defect ~detection
      ~x:(S.Cycle_time, Dramstress_util.Grid.linspace 48e-9 76e-9 8)
      ~y:(S.Supply_voltage, Dramstress_util.Grid.linspace 1.8 3.0 7)
      ()
  in
  print_string (M.Shmoo.render plot);
  Printf.printf "  fail fraction: %.2f\n" (M.Shmoo.fail_fraction plot)

(* ------------------------------------------------------------------ *)
(* Method comparison: exhaustive baseline vs the paper's probes        *)
(* ------------------------------------------------------------------ *)

let methods () =
  heading "methods"
    "exhaustive per-SC fault analysis vs the paper's probe method";
  let c =
    C.Exhaustive.compare_methods ~nominal ~kind:open_kind
      ~placement:D.True_bl ()
  in
  Format.printf "%a@." C.Exhaustive.pp_comparison c;
  paper_vs "methods" "full fault analysis per ST value is 'labour intensive'"
    (Printf.sprintf "%d vs %d electrical simulations"
       c.C.Exhaustive.exhaustive.C.Exhaustive.simulations
       c.C.Exhaustive.probe_simulations)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  heading "ablation" "model design choices";
  let defect = D.v open_kind D.True_bl 200e3 in
  (* integrator choice: backward Euler vs trapezoidal on a full op *)
  let residual integrator =
    let sim = { Dramstress_engine.Options.default with integrator } in
    let oc = O.run ~sim ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ] in
    (List.hd oc.O.results).O.vc_end
  in
  let r_be = residual Dramstress_engine.Options.Backward_euler in
  let r_tr = residual Dramstress_engine.Options.Trapezoidal in
  Printf.printf
    "  integrator: w0 residual BE %.4f V vs trapezoidal %.4f V (delta %.1f mV)\n"
    r_be r_tr
    (1e3 *. Float.abs (r_be -. r_tr));
  (* reference-cell sizing moves the defect-free threshold *)
  List.iter
    (fun c_ref ->
      let tech = { T.default with T.c_ref } in
      Printf.printf "  c_ref = %sF: Vmp = %.2f V\n" (U.si_string c_ref)
        (C.Plane.vmp ~tech ~stress:nominal ()))
    [ 20e-15; 34e-15; 50e-15 ];
  (* the fixed write-command latency is the timing-stress mechanism:
     making it scale with tcyc kills the Figure-3 effect *)
  let residual_with tech stress =
    let oc = O.run ~tech ~stress ~defect ~vc_init:stress.S.vdd [ O.W0 ] in
    (List.hd oc.O.results).O.vc_end
  in
  let scaled_tech tcyc =
    { T.default with T.t_wr_cmd = 44e-9 *. (tcyc /. 60e-9) }
  in
  Printf.printf
    "  write latency fixed:  w0 residual 60ns %.2f V -> 55ns %.2f V\n"
    (residual_with T.default nominal)
    (residual_with T.default (S.with_tcyc nominal 55e-9));
  Printf.printf
    "  write latency scaled: w0 residual 60ns %.2f V -> 55ns %.2f V \
     (stress effect gone)\n"
    (residual_with (scaled_tech 60e-9) nominal)
    (residual_with (scaled_tech 55e-9) (S.with_tcyc nominal 55e-9));
  (* duty cycle: the paper lists it as a timing ST but never evaluates
     it; a lower duty closes the word line earlier and stresses writes *)
  List.iter
    (fun duty ->
      Printf.printf "  duty = %.2f: BR = %s\n" duty
        (br_str (best_br ~allow_pause:false (S.with_duty nominal duty))))
    [ 0.35; 0.5; 0.65 ];
  (* steps-per-cycle convergence *)
  List.iter
    (fun spc ->
      let oc =
        O.run ~steps_per_cycle:spc ~stress:nominal ~defect ~vc_init:2.4
          [ O.W0 ]
      in
      Printf.printf "  steps/cycle %4d: w0 residual %.4f V\n" spc
        (List.hd oc.O.results).O.vc_end)
    [ 100; 200; 400; 800 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* A/B comparison of the engine hot path: the kept-alive naive assembly
   (allocate + hash-resolve every Newton iteration, memo cache off)
   against the incremental workspace path with the cache on, both pinned
   to one domain so the speedup isolates the alloc/caching wins. Results
   land in BENCH_engine.json for machine consumption. *)
let perf_engine_ab () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let ratio a b = if b > 0.0 then a /. b else Float.nan in
  let sim_naive =
    { Dramstress_engine.Options.default with naive_assembly = true }
  in
  let sim_fast = Dramstress_engine.Options.default in
  let defect = D.v open_kind D.True_bl 200e3 in
  (* --- transient step cost, ns per accepted time point ------------- *)
  O.set_caching false;
  let trace_points sim =
    let oc = O.run ~sim ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ] in
    Array.length oc.O.trace.Dramstress_engine.Transient.times
  in
  let n_pts = trace_points sim_fast in
  let reps = 5 in
  let step_ns sim =
    let dt =
      wall (fun () ->
          for _ = 1 to reps do
            ignore (O.run ~sim ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ])
          done)
    in
    1e9 *. dt /. float_of_int (reps * n_pts)
  in
  let step_naive = step_ns sim_naive in
  let step_fast = step_ns sim_fast in
  (* --- allocation budget of the incremental path ------------------- *)
  (* Acceptance check: the incremental engine must not heap-allocate
     matrices per Newton iteration. Each accepted point runs at least two
     iterations, and one fresh n x n system (n ~ 21 for the column, i.e.
     n*(n+1) > 460 words) would add >= ~900 minor words per point on top
     of the bookkeeping measured here (per-point sample arrays, MOSFET
     evaluation records). The naive path measures >= 10x this bound. *)
  let alloc_limit = 1500.0 in
  let words_per_point sim =
    let w0 = Gc.minor_words () in
    ignore (O.run ~sim ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ]);
    (Gc.minor_words () -. w0) /. float_of_int n_pts
  in
  let words_fast = words_per_point sim_fast in
  let words_naive = words_per_point sim_naive in
  let alloc_ok = words_fast <= alloc_limit in
  (* --- fig2-style plane sweep -------------------------------------- *)
  let rops = Dramstress_util.Grid.logspace 1e3 1e6 4 in
  (* the naive/incremental A/B is pinned to one lane so its meaning is
     unchanged by the ensemble engine: both sides sweep the plane one
     scalar transient at a time, and the speedup isolates the
     assembly/caching wins exactly as before. The batched measurement
     below lifts the lane pin. *)
  let scalar_cfg = Sc.v ~lanes:1 () in
  let batched_cfg = Sc.v ~lanes:16 () in
  let plane_sweep ~config sim () =
    (* the full Figure 2 plane set: w0 and w1 write planes plus the read
       plane for one defect kind. The three planes share the defect-free
       V_mp bisection and the per-resistance V_sa bisections, which is
       exactly where the memo cache pays off *)
    List.iter
      (fun op ->
        ignore
          (C.Plane.write_plane ~sim ~config ~jobs:1 ~n_ops:2 ~rops
             ~stress:nominal ~kind:open_kind ~placement:D.True_bl ~op ()))
      [ O.W0; O.W1 ];
    ignore
      (C.Plane.read_plane ~sim ~config ~jobs:1 ~n_ops:2 ~rops ~stress:nominal
         ~kind:open_kind ~placement:D.True_bl ())
  in
  O.set_caching false;
  let plane_naive = wall (plane_sweep ~config:scalar_cfg sim_naive) in
  O.set_caching true;
  O.set_cache_capacity 512 (* fresh cache: zero stats, cold start *);
  let plane_fast = wall (plane_sweep ~config:scalar_cfg sim_fast) in
  let cache = O.cache_stats () in
  let hit_rate =
    let total = cache.O.hits + cache.O.misses in
    if total = 0 then 0.0 else float_of_int cache.O.hits /. float_of_int total
  in
  (* --- batched ensemble sweep vs both scalar paths ------------------ *)
  (* same plane set, same single domain, fresh cache: resistances travel
     as ensemble lanes through the shared sparse LU instead of one
     transient per point. The tripwire is the tentpole acceptance: the
     batched sweep must beat the naive baseline by >= 5x. *)
  O.set_cache_capacity 512;
  let plane_batched = wall (plane_sweep ~config:batched_cfg sim_fast) in
  let batch_speedup = ratio plane_naive plane_batched in
  let batch_speedup_limit = 5.0 in
  let batch_speedup_ok = batch_speedup >= batch_speedup_limit in
  (* --- per-lane allocation of the batched path ---------------------- *)
  (* Acceptance check for the ensemble engine: amortised over the batch,
     a lane must allocate no more than the scalar incremental path does
     per accepted time point (the SoA state rows are shared, bisection
     bookkeeping is amortised). Measured on a fresh 16-lane w0 batch with
     the memo cache off and one domain (Gc.minor_words is per-domain);
     the limit is the measured figure plus 10% headroom. *)
  let lane_words_limit = 1175.0 in
  let lanes_n = 16 in
  let batch_lanes =
    List.init lanes_n (fun i ->
        {
          O.defect =
            Some
              (D.v open_kind D.True_bl
                 (1e3 *. Float.pow 10.0 (float_of_int i /. 5.0)));
          vc_init = 2.4;
        })
  in
  let batch_cache = O.Cache.create ~enabled:false () in
  let batch_run () =
    O.run_batch ~cache:batch_cache ~stress:nominal ~lanes:batch_lanes [ O.W0 ]
  in
  let clean_batch = batch_run () in
  let batch_pts =
    match List.hd clean_batch with
    | Ok oc -> Array.length oc.O.trace.Dramstress_engine.Transient.times
    | Error _ -> n_pts
  in
  let words_lane =
    let w0 = Gc.minor_words () in
    ignore (batch_run ());
    (Gc.minor_words () -. w0) /. float_of_int (lanes_n * batch_pts)
  in
  let lane_alloc_ok = words_lane <= lane_words_limit in
  (* --- chaos smoke: per-lane failure isolation in a batch ----------- *)
  (* One NaN, one lane: [inject_nan_state@+1] fires on the very first
     Newton chaos query of the run, which is lane 0's initial
     quasi-static solve. The lane dies inside the ensemble, falls back
     to the full scalar ladder (the one-shot fault is already spent, so
     the fallback converges), and every other lane must finish
     untouched — bitwise equal to the clean batch. *)
  let vc_ends = function
    | Ok oc -> List.map (fun (r : O.op_result) -> r.O.vc_end) oc.O.results
    | Error _ -> []
  in
  let bitwise_eq a b =
    List.length a = List.length b
    && List.for_all2
         (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
         a b
  in
  let fallbacks0 = O.lane_fallbacks () in
  Chaos.configure ~seed:7 "inject_nan_state@+1";
  let poisoned_batch = batch_run () in
  Chaos.disarm ();
  let chaos_injected = Chaos.injected Chaos.Inject_nan_state in
  let chaos_fallbacks = O.lane_fallbacks () - fallbacks0 in
  let chaos_all_ok =
    List.for_all (function Ok _ -> true | Error _ -> false) poisoned_batch
  in
  let chaos_others_bitwise =
    List.for_all2
      (fun c p -> bitwise_eq (vc_ends c) (vc_ends p))
      (List.tl clean_batch) (List.tl poisoned_batch)
  in
  (* and a lane that exhausts retries for real: an infinite initial
     voltage fails the ensemble and the whole scalar ladder, so its slot
     must surface [Exhausted_retries] while its batch mates still match
     the clean run bitwise *)
  let fallbacks1 = O.lane_fallbacks () in
  let doomed_batch =
    O.run_batch ~cache:batch_cache ~stress:nominal
      ~lanes:
        (List.mapi
           (fun i l ->
             if i = 3 then { l with O.vc_init = Float.infinity } else l)
           batch_lanes)
      [ O.W0 ]
  in
  let doomed_fallbacks = O.lane_fallbacks () - fallbacks1 in
  let doomed_isolated =
    List.for_all2
      (fun i c ->
        match (i, List.nth doomed_batch i) with
        | 3, Error (O.Exhausted_retries _) -> true
        | 3, _ -> false
        | _, Ok _ -> bitwise_eq (vc_ends c) (vc_ends (List.nth doomed_batch i))
        | _, Error _ -> false)
      (List.init lanes_n Fun.id) clean_batch
  in
  let chaos_ok =
    chaos_injected = 1 && chaos_fallbacks = 1 && chaos_all_ok
    && chaos_others_bitwise && doomed_fallbacks = 1 && doomed_isolated
  in
  (* --- one shmoo row ------------------------------------------------ *)
  let detection =
    C.Detection.v
      [ C.Detection.Write 1; C.Detection.Read 1; C.Detection.Write 0;
        C.Detection.Read 0 ]
  in
  let shmoo_row sim () =
    (* plot + re-plot: a shmoo row is generated, inspected, and generated
       again — the standard edit-and-replot loop of stress exploration.
       The second plot is where the memo cache earns its keep (every grid
       point is distinct within one plot, so a single cold row measures
       assembly wins only). *)
    for _ = 1 to 2 do
      ignore
        (M.Shmoo.generate ~sim ~jobs:1 ~stress:nominal ~defect ~detection
           ~x:(S.Cycle_time, Dramstress_util.Grid.linspace 50e-9 75e-9 6)
           ~y:(S.Supply_voltage, [ 2.4 ])
           ())
    done
  in
  O.set_caching false;
  let shmoo_naive = wall (shmoo_row sim_naive) in
  O.set_cache_capacity 512;
  O.set_caching true;
  let shmoo_fast = wall (shmoo_row sim_fast) in
  O.set_cache_capacity 512;
  (* --- adaptive planner tripwire ------------------------------------ *)
  (* The PR-7 acceptance: on a dense border window the adaptive campaign
     planner must reach the exact grid-strategy borders from >= 5x fewer
     simulated points. Two campaigns identical but for the strategy
     field, each against a fresh store and a cleared solver cache;
     [O.simulations] counts solver cache misses — the honest cost metric
     (store reuse and LRU hits are free). *)
  let module Cm = Dramstress_campaign.Manifest in
  let module Cr = Dramstress_campaign.Runner in
  let module St = Dramstress_util.Store in
  let planner_manifest strategy =
    Printf.sprintf
      "(campaign (name adapt-bench) (defects (O1 true)) (stress nominal) \
       (sweep (vdd 2.1 2.4 2.7)) (detections (seq \"w1 w1 w0 r0\")) \
       (border (r-min 1e4) (r-max 1e8) (grid-points 65) (rel-tol 0.05) \
       (strategy %s)))"
      strategy
  in
  let with_temp_store name f =
    let dir = Filename.temp_file "dramstress_bench" "" in
    Sys.remove dir;
    let rec rm p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
    in
    Fun.protect
      ~finally:(fun () -> try rm dir with Sys_error _ -> ())
      (fun () ->
        let store = St.open_ ~engine:"bench" ~name dir in
        Fun.protect ~finally:(fun () -> St.close store) (fun () -> f store))
  in
  let run_planner strategy =
    let m = Cm.of_string (planner_manifest strategy) in
    with_temp_store m.Cm.name @@ fun store ->
    O.clear_cache ();
    let before = O.simulations () in
    let r = Cr.run ~jobs:1 ~store m in
    (r, O.simulations () - before)
  in
  let planner_grid, planner_grid_sims = run_planner "grid" in
  let planner_adaptive, planner_adaptive_sims = run_planner "adaptive" in
  let planner_ratio =
    ratio (float_of_int planner_grid_sims) (float_of_int planner_adaptive_sims)
  in
  let planner_limit = 5.0 in
  let planner_parity =
    List.length planner_grid.Cr.results = 4
    && List.length planner_adaptive.Cr.results = 4
    && List.for_all2
         (fun (_, (g : Dramstress_campaign.Plan.result))
              (_, (a : Dramstress_campaign.Plan.result)) ->
           C.Border.equal_result g.Dramstress_campaign.Plan.br
             a.Dramstress_campaign.Plan.br)
         planner_grid.Cr.results planner_adaptive.Cr.results
  in
  let planner_ok = planner_ratio >= planner_limit && planner_parity in
  O.set_cache_capacity 512;
  (* --- disabled-telemetry overhead guard ---------------------------- *)
  (* The probes are compiled into the hot path, so there is no probe-free
     build to A/B against. Bound the overhead arithmetically instead:
     measure the unit cost of a disabled probe (one atomic load plus a
     branch), count the probes one workload fires (from an enabled-run
     snapshot), and compare the product against the workload's wall time
     measured above with telemetry off. *)
  Tel.set_enabled false;
  let probe_c = Tel.Counter.make "bench.telemetry.probe" in
  let probe_h =
    Tel.Histogram.make ~lo:1.0 ~hi:10.0 ~buckets:4 "bench.telemetry.probe_ms"
  in
  let probe_reps = 5_000_000 in
  let probe_ns =
    let dt =
      wall (fun () ->
          for _ = 1 to probe_reps do
            Tel.Counter.incr probe_c;
            Tel.Histogram.observe probe_h 1.0
          done)
    in
    1e9 *. dt /. float_of_int (2 * probe_reps)
  in
  O.set_caching false;
  Tel.set_enabled true;
  Tel.reset ();
  ignore (O.run ~sim:sim_fast ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ]);
  Tel.set_enabled false;
  let snap = Tel.snapshot () in
  let cval name =
    match List.assoc_opt name snap.Tel.counters with Some n -> n | None -> 0
  in
  (* probe call sites per op: 3 per Newton iteration (factor + solve
     counters, clamp add), 3 per converged solve (solve counter,
     iteration add, histogram), 2 per accepted step (counter + dt
     histogram), 1 per rejection, ~2 per transient run (run counter +
     segment span checks), 3 per Ops request (request + hit-or-miss
     counters + span check) *)
  let probe_calls =
    (3 * cval "engine.newton.iterations")
    + (3 * cval "engine.newton.solves")
    + (2 * cval "engine.transient.steps_accepted")
    + cval "engine.transient.steps_rejected"
    + (2 * cval "engine.transient.runs")
    + (3 * cval "dram.ops.requests")
  in
  Tel.reset ();
  O.set_caching true;
  (* wall time of the same op with telemetry off: step_fast ns/point *)
  let op_wall_s = step_fast *. float_of_int n_pts /. 1e9 in
  let overhead_pct =
    100.0 *. (float_of_int probe_calls *. probe_ns /. 1e9) /. op_wall_s
  in
  let overhead_limit_pct = 2.0 in
  let overhead_ok = overhead_pct <= overhead_limit_pct in
  Printf.printf "  %-34s naive %10.1f   incremental %10.1f   speedup %5.2fx\n"
    "transient step (ns/point)" step_naive step_fast
    (ratio step_naive step_fast);
  Printf.printf "  %-34s naive %10.3f   incremental %10.3f   speedup %5.2fx\n"
    "fig2 plane sweep (s)" plane_naive plane_fast (ratio plane_naive plane_fast);
  Printf.printf
    "  %-34s naive %10.3f   batched     %10.3f   speedup %5.2fx (limit %.0fx: \
     %s)\n"
    "fig2 plane sweep, 16 lanes (s)" plane_naive plane_batched batch_speedup
    batch_speedup_limit
    (if batch_speedup_ok then "ok" else "BELOW");
  Printf.printf "  %-34s %10.0f words (limit %.0f: %s)\n"
    "batched alloc / lane / point" words_lane lane_words_limit
    (if lane_alloc_ok then "ok" else "EXCEEDED");
  Printf.printf
    "  batch chaos smoke: %d injected, %d+%d fallbacks, isolation %s\n"
    chaos_injected chaos_fallbacks doomed_fallbacks
    (if chaos_ok then "ok" else "VIOLATED");
  Printf.printf "  %-34s naive %10.3f   incremental %10.3f   speedup %5.2fx\n"
    "shmoo row, plot + re-plot (s)" shmoo_naive shmoo_fast
    (ratio shmoo_naive shmoo_fast);
  Printf.printf
    "  %-34s grid  %10d   adaptive    %10d   ratio %6.2fx (limit %.0fx, \
     parity %s: %s)\n"
    "planner simulated points" planner_grid_sims planner_adaptive_sims
    planner_ratio planner_limit
    (if planner_parity then "ok" else "VIOLATED")
    (if planner_ok then "ok" else "BELOW");
  Printf.printf "  %-34s naive %10.0f   incremental %10.0f   (limit %.0f: %s)\n"
    "minor words / point" words_naive words_fast alloc_limit
    (if alloc_ok then "ok" else "EXCEEDED");
  Printf.printf "  cache hit rate over the plane sweep: %.0f%% (%d hits, %d \
                 misses)\n"
    (100.0 *. hit_rate) cache.O.hits cache.O.misses;
  Printf.printf
    "  disabled telemetry: %.2f ns/probe x %d probes/op = %.4f%% of the op \
     (limit %.1f%%: %s)\n"
    probe_ns probe_calls overhead_pct overhead_limit_pct
    (if overhead_ok then "ok" else "EXCEEDED");
  let json =
    Printf.sprintf
      "{\n\
      \  \"jobs\": 1,\n\
      \  \"transient_step_ns_per_point\": { \"naive\": %.1f, \"incremental\": \
       %.1f, \"speedup\": %.2f },\n\
      \  \"fig2_plane_sweep_s\": { \"naive\": %.4f, \"incremental\": %.4f, \
       \"speedup\": %.2f },\n\
      \  \"fig2_plane_batched_s\": { \"naive\": %.4f, \"batched\": %.4f, \
       \"lanes\": %d, \"speedup\": %.2f, \"limit\": %.1f, \"within_limit\": \
       %b },\n\
      \  \"minor_words_per_lane\": { \"batched\": %.0f, \"limit\": %.0f, \
       \"within_limit\": %b },\n\
      \  \"batch_chaos_smoke\": { \"injected\": %d, \"nan_lane_fallbacks\": \
       %d, \"exhausted_lane_fallbacks\": %d, \"all_lanes_recovered\": %b, \
       \"unpoisoned_lanes_bitwise_equal\": %b, \"exhausted_lane_isolated\": \
       %b, \"ok\": %b },\n\
      \  \"shmoo_plot_replot_s\": { \"naive\": %.4f, \"incremental\": %.4f, \
       \"speedup\": %.2f },\n\
      \  \"adaptive_planner\": { \"grid_simulations\": %d, \
       \"adaptive_simulations\": %d, \"ratio\": %.2f, \"limit\": %.1f, \
       \"parity\": %b, \"within_limit\": %b },\n\
      \  \"plane_cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f \
       },\n\
      \  \"minor_words_per_point\": { \"naive\": %.0f, \"incremental\": %.0f, \
       \"limit\": %.0f, \"within_limit\": %b },\n\
      \  \"telemetry_disabled_overhead\": { \"probe_ns\": %.3f, \
       \"probe_calls_per_op\": %d, \"overhead_pct\": %.5f, \"limit_pct\": \
       %.1f, \"overhead_within_limit\": %b }\n\
       }\n"
      step_naive step_fast (ratio step_naive step_fast) plane_naive plane_fast
      (ratio plane_naive plane_fast) plane_naive plane_batched 16 batch_speedup
      batch_speedup_limit batch_speedup_ok words_lane lane_words_limit
      lane_alloc_ok chaos_injected chaos_fallbacks doomed_fallbacks
      chaos_all_ok chaos_others_bitwise doomed_isolated chaos_ok shmoo_naive
      shmoo_fast
      (ratio shmoo_naive shmoo_fast)
      planner_grid_sims planner_adaptive_sims planner_ratio planner_limit
      planner_parity planner_ok cache.O.hits cache.O.misses hit_rate
      words_naive words_fast alloc_limit alloc_ok probe_ns probe_calls
      overhead_pct overhead_limit_pct overhead_ok
  in
  Out_channel.with_open_text "BENCH_engine.json" (fun oc ->
      output_string oc json);
  Printf.printf "  wrote BENCH_engine.json\n"

(* ------------------------------------------------------------------ *)

(* Cost of the resilience layer: checkpoint write overhead on a cold
   plane sweep, replay speedup on resume, and the price of rescuing a
   non-converging run through the retry ladder. Results land in
   BENCH_resilience.json. *)
let resilience () =
  heading "resilience" "checkpoint/resume and retry-policy cost";
  let module Ck = Dramstress_util.Checkpoint in
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let rops = Dramstress_util.Grid.logspace 1e3 1e6 6 in
  let sweep ?checkpoint () =
    ignore
      (C.Plane.write_plane ?checkpoint ~jobs:1 ~n_ops:2 ~rops ~stress:nominal
         ~kind:open_kind ~placement:D.True_bl ~op:O.W0 ())
  in
  (* memo cache off so the replay speedup measures the checkpoint store,
     not the in-process LRU *)
  O.set_caching false;
  let plain = wall (sweep ?checkpoint:None) in
  let path = Filename.temp_file "dramstress_bench" ".ckpt" in
  let ck = Ck.open_ path in
  let cold = wall (sweep ~checkpoint:ck) in
  Ck.close ck;
  let ck = Ck.open_ ~resume:true path in
  let resumed = wall (sweep ~checkpoint:ck) in
  Ck.close ck;
  Sys.remove path;
  O.set_caching true;
  (* retry ladder: a solver starved to one Newton iteration per solve
     fails immediately; a damped-Newton stage rescues it *)
  let sim_tight = { Dramstress_engine.Options.default with max_newton = 1 } in
  let rescue_cfg =
    Sc.v ~sim:sim_tight
      ~retry:
        {
          Sc.stages =
            [ Sc.Damped_newton { max_step_v = 1.0; max_newton_scale = 100 } ];
        }
      ()
  in
  let defect = D.v open_kind D.True_bl 200e3 in
  O.set_caching false;
  let direct =
    wall (fun () ->
        ignore (O.run ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ]))
  in
  let rescued =
    wall (fun () ->
        ignore
          (O.run ~config:rescue_cfg ~stress:nominal ~defect ~vc_init:2.4
             [ O.W0 ]))
  in
  O.set_caching true;
  let ratio a b = if b > 0.0 then a /. b else Float.nan in
  Printf.printf "  %-40s %10.4f s\n" "plane sweep, no checkpoint" plain;
  Printf.printf "  %-40s %10.4f s   (overhead %+.1f%%)\n"
    "plane sweep, cold checkpoint" cold
    (100.0 *. (ratio cold plain -. 1.0));
  Printf.printf "  %-40s %10.4f s   (replay speedup %.0fx)\n"
    "plane sweep, resumed checkpoint" resumed (ratio plain resumed);
  Printf.printf "  %-40s %10.4f s\n" "healthy run, direct" direct;
  Printf.printf "  %-40s %10.4f s   (ladder cost %.2fx)\n"
    "starved run, rescued by retry ladder" rescued (ratio rescued direct);
  let json =
    Printf.sprintf
      "{\n\
      \  \"jobs\": 1,\n\
      \  \"plane_sweep_s\": { \"plain\": %.5f, \"cold_checkpoint\": %.5f, \
       \"resumed\": %.5f, \"replay_speedup\": %.1f },\n\
      \  \"retry_ladder_s\": { \"direct\": %.5f, \"rescued\": %.5f, \
       \"cost_ratio\": %.2f }\n\
       }\n"
      plain cold resumed (ratio plain resumed) direct rescued
      (ratio rescued direct)
  in
  Out_channel.with_open_text "BENCH_resilience.json" (fun oc ->
      output_string oc json);
  Printf.printf "  wrote BENCH_resilience.json\n"

(* ------------------------------------------------------------------ *)

(* Cost of the numerical health layer: the per-iteration finiteness scan
   of the Newton state and the per-iteration deadline poll must stay
   within 2% of the unguarded hot path. Chaos is dormant unless armed
   through the environment, so this measures the pure guard cost.
   Results land in BENCH_health.json. *)
let health () =
  heading "health" "numerical health guard and deadline overhead";
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let sim_off =
    { Dramstress_engine.Options.default with health_guards = false }
  in
  (* one lane everywhere: a deadline forces the scalar path, so the
     guarded/unguarded/deadline triple must all run scalar for a
     like-for-like comparison *)
  let cfg_off = Sc.v ~sim:sim_off ~retry:Sc.no_retry ~lanes:1 () in
  let cfg_on = Sc.v ~retry:Sc.no_retry ~lanes:1 () in
  (* a generous budget: the poll fires every Newton iteration but the
     deadline never trips, so only the clock reads are priced in *)
  let cfg_deadline = Sc.v ~retry:Sc.no_retry ~deadline:3600.0 ~lanes:1 () in
  let defect = D.v open_kind D.True_bl 200e3 in
  O.set_caching false;
  (* --- single-op cost, best of several trials to shed scheduler noise *)
  let reps = 20 and trials = 5 in
  let op_s config =
    let best = ref infinity in
    for _ = 1 to trials do
      let dt =
        wall (fun () ->
            for _ = 1 to reps do
              ignore
                (O.run ~config ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ])
            done)
      in
      if dt < !best then best := dt
    done;
    !best /. float_of_int reps
  in
  let op_off = op_s cfg_off in
  let op_on = op_s cfg_on in
  let op_deadline = op_s cfg_deadline in
  (* --- fig2-style plane sweep: w0 + w1 + read planes, one domain ---- *)
  let rops = Dramstress_util.Grid.logspace 1e3 1e6 4 in
  let plane_sweep config () =
    List.iter
      (fun op ->
        ignore
          (C.Plane.write_plane ~config ~jobs:1 ~n_ops:2 ~rops ~stress:nominal
             ~kind:open_kind ~placement:D.True_bl ~op ()))
      [ O.W0; O.W1 ];
    ignore
      (C.Plane.read_plane ~config ~jobs:1 ~n_ops:2 ~rops ~stress:nominal
         ~kind:open_kind ~placement:D.True_bl ())
  in
  let plane_s config =
    let best = ref infinity in
    for _ = 1 to 3 do
      let dt = wall (plane_sweep config) in
      if dt < !best then best := dt
    done;
    !best
  in
  let plane_off = plane_s cfg_off in
  let plane_on = plane_s cfg_on in
  let plane_deadline = plane_s cfg_deadline in
  (* --- arithmetic overhead bound ----------------------------------- *)
  (* The wall-clock A/B above is informative, but scheduler noise on a
     shared host swamps a 2% signal. Bound the guard cost the way the
     telemetry bench does: measure the unit cost of one guard — a
     finiteness scan of a system-sized state vector, and one clock read
     for the deadline poll — count how often an op fires each (once per
     Newton iteration), and compare the product against the op's wall
     time. *)
  let state = Array.make 24 1.0 in
  let unit_ns reps f =
    let dt = wall (fun () -> for _ = 1 to reps do f () done) in
    1e9 *. dt /. float_of_int reps
  in
  let sink = ref 0 in
  let scan_ns =
    unit_ns 2_000_000 (fun () ->
        let bad = ref (-1) in
        for i = 0 to Array.length state - 1 do
          let v = state.(i) in
          if !bad < 0 && not (v -. v = 0.0) then bad := i
        done;
        if !bad >= 0 then incr sink)
  in
  ignore (Sys.opaque_identity !sink);
  let clock_ns =
    unit_ns 2_000_000 (fun () ->
        ignore (Sys.opaque_identity (Unix.gettimeofday ())))
  in
  Tel.set_enabled true;
  Tel.reset ();
  ignore (O.run ~config:cfg_on ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ]);
  Tel.set_enabled false;
  let snap = Tel.snapshot () in
  let cval name =
    match List.assoc_opt name snap.Tel.counters with Some n -> n | None -> 0
  in
  let iters = cval "engine.newton.iterations" in
  Tel.reset ();
  O.set_caching true;
  (* the deadline clock is read once per 16 checks, with the poll phase
     carried across solves, so an op of k total Newton iterations reads
     the clock ~k/16 times *)
  let polls = iters / 16 in
  let guard_pct = 100.0 *. (float_of_int iters *. scan_ns /. 1e9) /. op_off in
  let deadline_pct =
    guard_pct +. (100.0 *. (float_of_int polls *. clock_ns /. 1e9) /. op_off)
  in
  let limit_pct = 2.0 in
  let guard_ok = guard_pct <= limit_pct in
  let deadline_ok = deadline_pct <= limit_pct in
  Printf.printf
    "  %-34s unguarded %9.2f   guarded %9.2f   +deadline %9.2f\n"
    "single w0 op (ms, wall)" (1e3 *. op_off) (1e3 *. op_on)
    (1e3 *. op_deadline);
  Printf.printf
    "  %-34s unguarded %9.3f   guarded %9.3f   +deadline %9.3f\n"
    "fig2 plane sweep (s, wall)" plane_off plane_on plane_deadline;
  Printf.printf
    "  guard unit cost: %.1f ns/scan x %d iterations + %.1f ns/clock x %d \
     polls per op\n"
    scan_ns iters clock_ns polls;
  Printf.printf "  health guard overhead: %.3f%% (limit %.1f%%: %s)\n"
    guard_pct limit_pct
    (if guard_ok then "ok" else "EXCEEDED");
  Printf.printf "  guard + deadline poll overhead: %.3f%% (limit %.1f%%: %s)\n"
    deadline_pct limit_pct
    (if deadline_ok then "ok" else "EXCEEDED");
  let json =
    Printf.sprintf
      "{\n\
      \  \"jobs\": 1,\n\
      \  \"single_op_s\": { \"unguarded\": %.6f, \"guarded\": %.6f, \
       \"guarded_deadline\": %.6f },\n\
      \  \"plane_sweep_s\": { \"unguarded\": %.5f, \"guarded\": %.5f, \
       \"guarded_deadline\": %.5f },\n\
      \  \"guard_unit\": { \"scan_ns\": %.2f, \"clock_ns\": %.2f, \
       \"newton_iterations_per_op\": %d, \"deadline_polls_per_op\": %d },\n\
      \  \"guard_overhead_pct\": %.4f,\n\
      \  \"deadline_overhead_pct\": %.4f,\n\
      \  \"limit_pct\": %.1f,\n\
      \  \"within_limit\": %b\n\
       }\n"
      op_off op_on op_deadline plane_off plane_on plane_deadline scan_ns
      clock_ns iters polls guard_pct deadline_pct limit_pct
      (guard_ok && deadline_ok)
  in
  Out_channel.with_open_text "BENCH_health.json" (fun oc ->
      output_string oc json);
  Printf.printf "  wrote BENCH_health.json\n"

(* Cost of the campaign layer: store write overhead on a cold run
   against the same physics computed with no store at all, and the
   warm-rerun win. The warm rerun must simulate nothing — that is the
   subsystem's core promise — so the bench doubles as a tripwire.
   Results land in BENCH_campaign.json. *)
let campaign () =
  heading "campaign" "campaign store: cold vs warm, read/write overhead";
  let module Cp = Dramstress_campaign in
  let module St = Dramstress_util.Store in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (Unix.gettimeofday () -. t0, v)
  in
  let mtext =
    {|
(campaign
  (name bench)
  (defects (O1 true))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  (detections (seq "w1 w1 w0 r0") (seq "w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}
  in
  let m = Cp.Manifest.of_string mtext in
  let points = Cp.Plan.points m in
  let n = List.length points in
  (* the in-process LRU would serve repeat runs from memory and hide the
     store entirely; disable it so every number prices the store *)
  O.set_caching false;
  (* fork the sandbox worker now, while this process is still
     fork-capable and with caching disabled so the worker prices the
     same physics; a process that already spawned domains (earlier
     bench sections with jobs > 1) cannot fork, so the measurement
     degrades to skipped rather than failing the bench *)
  let module Pp = Dramstress_util.Procpool in
  let pool =
    match Pp.create ~workers:1 ~worker:Cp.Sandbox.worker () with
    | pool -> Ok pool
    | exception e -> Error (Printexc.to_string e)
  in
  (* baseline: the same physics with no persistence anywhere *)
  let direct, () =
    wall (fun () ->
        List.iter
          (fun (p : Cp.Plan.point) ->
            let d =
              match p.Cp.Plan.detection with
              | Cp.Manifest.Seq d -> d
              | _ -> assert false
            in
            ignore
              (C.Border.search ~config:m.Cp.Manifest.config ~r_min:1e4
                 ~r_max:1e8 ~grid_points:5 ~rel_tol:0.05
                 ~stress:p.Cp.Plan.stress ~kind:p.Cp.Plan.defect.D.kind
                 ~placement:p.Cp.Plan.placement d))
          points)
  in
  let dir = Filename.temp_file "dramstress_bench_campaign" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ())
  @@ fun () ->
  let run () =
    let s = St.open_ ~name:"bench" dir in
    Fun.protect
      ~finally:(fun () -> St.close s)
      (fun () -> Cp.Runner.run ~jobs:1 ~store:s m)
  in
  let cold, cold_sum = wall run in
  let warm, warm_sum = wall run in
  (* the same campaign against a fingerprint-sharded store — the layout
     the campaign service uses — prices the per-shard open/index cost *)
  let sh_dir = dir ^ ".sharded" in
  Fun.protect ~finally:(fun () -> try rm sh_dir with Sys_error _ -> ())
  @@ fun () ->
  let run_sharded () =
    let s = St.open_ ~shards:16 ~name:"bench" sh_dir in
    Fun.protect
      ~finally:(fun () -> St.close s)
      (fun () -> Cp.Runner.run ~jobs:1 ~store:s m)
  in
  let sh_cold, _ = wall run_sharded in
  let sh_warm, sh_warm_sum = wall run_sharded in
  (* the same cold campaign through the service's sandboxed worker
     pool: every point crosses a pipe to a forked worker and the result
     crosses back, which prices process isolation against the
     in-process cold run above *)
  let sb_dir = dir ^ ".sandbox" in
  let sandbox =
    match pool with
    | Error reason -> Error reason
    | Ok pool ->
      Fun.protect
        ~finally:(fun () ->
          Pp.shutdown pool;
          try rm sb_dir with Sys_error _ -> ())
        (fun () ->
          let run_sandboxed () =
            let s = St.open_ ~name:"bench" sb_dir in
            Fun.protect
              ~finally:(fun () -> St.close s)
              (fun () ->
                let executor =
                  Cp.Sandbox.executor pool ~manifest_text:mtext m
                in
                Cp.Runner.run ~jobs:1 ~executor ~fanout:`Threads ~store:s m)
          in
          match wall run_sandboxed with
          | t, sum -> Ok (t, sum)
          | exception e -> Error (Printexc.to_string e))
  in
  (* a batched wait-axis (retention) sweep through the same store
     machinery: prices the decay transient the new stress axis adds per
     point, and tripwires warm reuse on extended-fingerprint records *)
  let wmtext =
    {|
(campaign
  (name bench-wait)
  (defects (O1 true))
  (sweep (wait (range 0.01 1.0 3)))
  (detections (seq "w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}
  in
  let wm = Cp.Manifest.of_string wmtext in
  let wn = List.length (Cp.Plan.points wm) in
  let w_dir = dir ^ ".wait" in
  Fun.protect ~finally:(fun () -> try rm w_dir with Sys_error _ -> ())
  @@ fun () ->
  let run_wait () =
    let s = St.open_ ~name:"bench" w_dir in
    Fun.protect
      ~finally:(fun () -> St.close s)
      (fun () -> Cp.Runner.run ~jobs:1 ~store:s wm)
  in
  let w_cold, _ = wall run_wait in
  let w_warm, w_warm_sum = wall run_wait in
  O.set_caching true;
  let ratio a b = if b > 0.0 then a /. b else Float.nan in
  let write_overhead_pct = 100.0 *. (ratio cold direct -. 1.0) in
  let warm_speedup = ratio cold warm in
  (* tripwires: full reuse, and the warm run must actually be cheap *)
  let reuse_ok =
    warm_sum.Cp.Runner.simulated = 0 && warm_sum.Cp.Runner.reused = n
  in
  let speedup_limit = 5.0 in
  let speedup_ok = warm_speedup >= speedup_limit in
  Printf.printf "  %-40s %10.4f s\n" "direct (no store)" direct;
  Printf.printf "  %-40s %10.4f s   (write overhead %+.1f%%)\n"
    "cold run (store populated)" cold write_overhead_pct;
  Printf.printf "  %-40s %10.4f s   (speedup %.0fx, limit %.0fx: %s)\n"
    "warm rerun (store only)" warm warm_speedup speedup_limit
    (if speedup_ok then "ok" else "EXCEEDED");
  Printf.printf "  %-40s %d/%d reused, %d simulated (%s)\n"
    "warm reuse" warm_sum.Cp.Runner.reused n warm_sum.Cp.Runner.simulated
    (if reuse_ok then "ok" else "VIOLATION: warm run recomputed");
  Printf.printf "  %-40s %10.1f us/point\n" "store read cost, warm"
    (1e6 *. warm /. float_of_int n);
  let sh_reuse_ok =
    sh_warm_sum.Cp.Runner.simulated = 0 && sh_warm_sum.Cp.Runner.reused = n
  in
  Printf.printf "  %-40s %10.4f s   (vs single-file %+.1f%%)\n"
    "cold run, 16-way sharded store" sh_cold
    (100.0 *. (ratio sh_cold cold -. 1.0));
  Printf.printf "  %-40s %10.4f s   (%d/%d reused: %s)\n"
    "warm rerun, 16-way sharded store" sh_warm sh_warm_sum.Cp.Runner.reused n
    (if sh_reuse_ok then "ok" else "VIOLATION: warm run recomputed");
  let w_reuse_ok =
    w_warm_sum.Cp.Runner.simulated = 0 && w_warm_sum.Cp.Runner.reused = wn
  in
  Printf.printf "  %-40s %10.4f s   (%d points, %.1f ms/point)\n"
    "cold wait sweep (0.01..1 s, log)" w_cold wn
    (1e3 *. w_cold /. float_of_int (Int.max 1 wn));
  Printf.printf "  %-40s %10.4f s   (%d/%d reused: %s)\n"
    "warm wait sweep" w_warm w_warm_sum.Cp.Runner.reused wn
    (if w_reuse_ok then "ok" else "VIOLATION: warm run recomputed");
  let sandbox_limit_pct = 15.0 in
  let sandbox_json =
    match sandbox with
    | Error reason ->
      Printf.printf "  %-40s skipped (%s)\n" "cold run, sandboxed worker pool"
        reason;
      Printf.sprintf "{ \"skipped\": true, \"reason\": %S }" reason
    | Ok (sb_cold, sb_sum) ->
      let overhead_pct = 100.0 *. (ratio sb_cold cold -. 1.0) in
      let within = overhead_pct <= sandbox_limit_pct in
      let clean =
        sb_sum.Cp.Runner.simulated = n
        && List.length sb_sum.Cp.Runner.failures = 0
      in
      Printf.printf
        "  %-40s %10.4f s   (vs in-process %+.1f%%, limit %.0f%%: %s)\n"
        "cold run, sandboxed worker pool" sb_cold overhead_pct
        sandbox_limit_pct
        (if within then "ok" else "EXCEEDED");
      if not clean then
        Printf.printf "  %-40s VIOLATION: %d simulated, %d failures\n"
          "sandboxed run" sb_sum.Cp.Runner.simulated
          (List.length sb_sum.Cp.Runner.failures);
      Printf.sprintf
        "{ \"skipped\": false, \"workers\": 1, \"cold_s\": %.5f, \
         \"inprocess_cold_s\": %.5f, \"overhead_pct\": %.2f, \"limit_pct\": \
         %.1f, \"within_limit\": %b, \"clean\": %b }"
        sb_cold cold overhead_pct sandbox_limit_pct within clean
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"jobs\": 1,\n\
      \  \"points\": %d,\n\
      \  \"wall_s\": { \"direct\": %.5f, \"cold\": %.5f, \"warm\": %.5f },\n\
      \  \"store_write_overhead_pct\": %.2f,\n\
      \  \"warm_speedup\": { \"value\": %.1f, \"limit\": %.1f, \
       \"within_limit\": %b },\n\
      \  \"warm_reuse\": { \"reused\": %d, \"simulated\": %d, \"full_reuse\": \
       %b },\n\
      \  \"sharded\": { \"shards\": 16, \"cold_s\": %.5f, \"warm_s\": %.5f, \
       \"full_reuse\": %b },\n\
      \  \"wait_sweep\": { \"points\": %d, \"cold_s\": %.5f, \"warm_s\": \
       %.5f, \"full_reuse\": %b },\n\
      \  \"sandbox\": %s\n\
       }\n"
      n direct cold warm write_overhead_pct warm_speedup speedup_limit
      speedup_ok warm_sum.Cp.Runner.reused warm_sum.Cp.Runner.simulated
      reuse_ok sh_cold sh_warm sh_reuse_ok wn w_cold w_warm w_reuse_ok
      sandbox_json
  in
  Out_channel.with_open_text "BENCH_campaign.json" (fun oc ->
      output_string oc json);
  Printf.printf "  wrote BENCH_campaign.json\n";
  ignore cold_sum

let perf () =
  heading "perf" "engine micro-benchmarks (Bechamel)";
  let open Bechamel in
  let lu_input =
    let n = 24 in
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 10.0 else 1.0 /. float_of_int (1 + i + j)))
  in
  let rhs = Array.init 24 (fun i -> float_of_int i) in
  let defect = D.v open_kind D.True_bl 200e3 in
  let tests =
    Test.make_grouped ~name:"dramstress"
      [
        Test.make ~name:"lu_factor_solve_24"
          (Staged.stage (fun () ->
               ignore
                 (Dramstress_util.Linalg.lu_solve
                    (Dramstress_util.Linalg.lu_factor lu_input)
                    rhs)));
        Test.make ~name:"single_w0_op"
          (Staged.stage (fun () ->
               ignore (O.run ~stress:nominal ~defect ~vc_init:2.4 [ O.W0 ])));
        Test.make ~name:"read_threshold_vsa"
          (Staged.stage (fun () ->
               ignore (C.Plane.vsa ~stress:nominal ~defect ())));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  (* memoization off: the micro-benchmarks time the simulation itself,
     not cache lookups *)
  O.set_caching false;
  let raw = Benchmark.all cfg instances tests in
  O.set_caching true;
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-44s %14.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-44s (no estimate)\n" name)
    results;
  Printf.printf "\n  -- naive vs incremental engine (1 domain) --\n";
  perf_engine_ab ()

(* ------------------------------------------------------------------ *)

let all_targets =
  [
    ("fig2", fig2); ("fig3", fig3); ("fig4", fig4); ("fig5", fig5);
    ("fig6", fig6); ("fig7", fig7); ("table1", table1); ("shmoo", shmoo);
    ("methods", methods); ("ablation", ablation); ("perf", perf);
    ("resilience", resilience); ("health", health); ("campaign", campaign);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ :: [] | [] -> List.map fst all_targets
  in
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.assoc_opt name all_targets with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown target %s (have: %s)\n" name
          (String.concat ", " (List.map fst all_targets));
        exit 2)
    requested;
  Printf.printf "\n(total bench cpu time: %.1f s)\n" (Sys.time () -. t0)
