(* Command-line front end: fault analysis, BR search, stress
   optimization, Table-1 generation, Shmoo plots and march-coverage
   comparisons on the electrical DRAM column model. *)

module S = Dramstress_dram.Stress
module D = Dramstress_defect.Defect
module O = Dramstress_dram.Ops
module C = Dramstress_core
module M = Dramstress_march
open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let defect_kind_conv =
  let parse s =
    match D.find_entry s with
    | Some e -> Ok e.D.kind
    | None -> Error (`Msg ("unknown defect id: " ^ s ^ " (use O1..O3, Sg, Sv, B1, B2)"))
  in
  let print ppf k = D.pp_kind ppf k in
  Arg.conv (parse, print)

let placement_conv =
  let parse = function
    | "true" | "t" -> Ok D.True_bl
    | "comp" | "c" -> Ok D.Comp_bl
    | s -> Error (`Msg ("placement must be true|comp, got " ^ s))
  in
  Arg.conv (parse, D.pp_placement)

let kind_arg =
  Arg.(value & opt defect_kind_conv (D.Open_cell D.At_bitline_contact)
       & info [ "d"; "defect" ] ~docv:"ID" ~doc:"Defect to analyse (O1..O3, Sg, Sv, B1, B2).")

let placement_arg =
  Arg.(value & opt placement_conv D.True_bl
       & info [ "p"; "placement" ] ~docv:"SIDE" ~doc:"Bit-line placement: true or comp.")

let r_arg =
  Arg.(value & opt float 200e3
       & info [ "r"; "resistance" ] ~docv:"OHM" ~doc:"Defect resistance in ohm.")

let tcyc_arg =
  Arg.(value & opt float 60e-9 & info [ "tcyc" ] ~docv:"S" ~doc:"Cycle time, seconds.")

let vdd_arg =
  Arg.(value & opt float 2.4 & info [ "vdd" ] ~docv:"V" ~doc:"Supply voltage.")

let temp_arg =
  Arg.(value & opt float 27.0 & info [ "temp" ] ~docv:"C" ~doc:"Temperature, Celsius.")

let duty_arg =
  Arg.(value & opt float 0.5 & info [ "duty" ] ~docv:"F" ~doc:"Clock duty cycle.")

(* extension axes, all neutral by default (see Stressaxis) *)
let wait_arg =
  Arg.(value & opt float 0.0
       & info [ "wait" ] ~docv:"S"
           ~doc:"Retention wait inserted before the first read, seconds.")

let pattern_conv =
  let parse s =
    match S.pattern_of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg ("pattern must be all0|all1|checkerboard, got " ^ s))
  in
  Arg.conv (parse, S.pp_pattern)

let pattern_arg =
  Arg.(value & opt pattern_conv S.All_1
       & info [ "pattern" ] ~docv:"PAT"
           ~doc:"Data background on the neighbour cell: all0, all1 or \
                 checkerboard.")

let hammer_arg =
  Arg.(value & opt int 0
       & info [ "hammer" ] ~docv:"N"
           ~doc:"Aggressor word-line pulses inserted before the first read.")

let leak_arg =
  Arg.(value & opt float 0.0
       & info [ "leak" ] ~docv:"S(IEMENS)"
           ~doc:"Storage-node leakage conductance, siemens.")

let couple_arg =
  Arg.(value & opt float 0.0
       & info [ "couple" ] ~docv:"F"
           ~doc:"Cell-to-cell coupling capacitance as a fraction of C_cell.")

let twr_trim_arg =
  Arg.(value & opt float 0.0
       & info [ "twr-trim" ] ~docv:"S"
           ~doc:"Additive trim on the write-enable instant (tWR-style).")

let tras_trim_arg =
  Arg.(value & opt float 0.0
       & info [ "tras-trim" ] ~docv:"S"
           ~doc:"Additive trim on the word-line deactivation (tRAS-style).")

(* one Term bundling every stress flag, so each command crosses the
   extension axes with the paper's four without its own plumbing *)
let stress_term =
  let v tcyc vdd temp duty wait pattern hammer leak couple twr_trim tras_trim
      =
    {
      S.tcyc;
      vdd;
      temp_c = temp;
      duty;
      wait;
      pattern;
      hammer;
      leak;
      couple;
      twr_trim;
      tras_trim;
    }
  in
  Term.(const v $ tcyc_arg $ vdd_arg $ temp_arg $ duty_arg $ wait_arg
        $ pattern_arg $ hammer_arg $ leak_arg $ couple_arg $ twr_trim_arg
        $ tras_trim_arg)

(* repeatable --axis flag: which axes a direction analysis probes *)
let axes_term =
  let axis_conv =
    let parse s =
      match Dramstress_stressaxis.Stressaxis.find s with
      | Some e -> Ok e.Dramstress_stressaxis.Stressaxis.axis
      | None ->
        Error
          (`Msg
             ("unknown stress axis " ^ s ^ " (use "
             ^ String.concat "|" (Dramstress_stressaxis.Stressaxis.names ())
             ^ ")"))
    in
    Arg.conv (parse, S.pp_axis)
  in
  let v = function [] -> None | axes -> Some axes in
  Term.(
    const v
    $ Arg.(value & opt_all axis_conv []
           & info [ "axis" ] ~docv:"AXIS"
               ~doc:"Stress axis to probe (repeatable); default: the \
                     paper's tcyc, temp, vdd."))

(* border-search window flags, shared by the commands that search *)
let r_min_arg =
  Arg.(value & opt (some float) None
       & info [ "r-min" ] ~docv:"OHM" ~doc:"Border-search window low end.")

let r_max_arg =
  Arg.(value & opt (some float) None
       & info [ "r-max" ] ~docv:"OHM" ~doc:"Border-search window high end.")

let grid_points_arg =
  Arg.(value & opt (some int) None
       & info [ "grid-points" ] ~docv:"N"
           ~doc:"Border-search log-grid resolution.")

let rel_tol_arg =
  Arg.(value & opt (some float) None
       & info [ "rel-tol" ] ~docv:"TOL"
           ~doc:"Relative tolerance of edge bisection.")

let adaptive_arg =
  Arg.(value & flag
       & info [ "adaptive" ]
           ~doc:"Scan the border window adaptively (sparse probing of the \
                 same grid) instead of exhaustively.")

let window_term =
  let v r_min r_max grid_points rel_tol adaptive =
    C.Border.Window.over ?r_min ?r_max ?grid_points ?rel_tol
      ~strategy:
        (if adaptive then C.Border.Window.Adaptive else C.Border.Window.Grid)
      ()
  in
  Term.(const v $ r_min_arg $ r_max_arg $ grid_points_arg $ rel_tol_arg
        $ adaptive_arg)

(* ------------------------------------------------------------------ *)
(* telemetry: --metrics / --trace on every subcommand                  *)
(* ------------------------------------------------------------------ *)

module Tel = Dramstress_util.Telemetry

let metrics_arg =
  let fmt = Arg.enum [ ("human", `Human); ("json", `Json) ] in
  Arg.(value & opt (some fmt) None
       & info [ "metrics" ] ~docv:"FMT"
           ~doc:"Enable telemetry and report collected metrics when the \
                 command finishes: $(b,human) prints an aligned table on \
                 stderr, $(b,json) prints one JSON object on stdout (or \
                 to $(b,--metrics-out)).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the $(b,--metrics) report to FILE instead of the \
                 standard streams.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Enable telemetry and stream span events: $(b,stderr) (or \
                 $(b,pretty)) for human-readable lines, anything else as \
                 a JSON-lines file path. Overrides DRAMSTRESS_TRACE.")

let cache_stats_json (c : O.cache_stats) =
  Printf.sprintf
    "{ \"requests\": %d, \"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"entries\": %d, \"capacity\": %d }"
    c.O.requests c.O.hits c.O.misses c.O.evictions c.O.entries c.O.capacity

(* always-on mirrors of the batched-solver counters, reported next to
   [cache_stats] so the engine ledgers reconcile with telemetry off:
   misses = transient runs + ensemble lanes (modulo retries/fallbacks) *)
let ensemble_stats_json (e : Dramstress_engine.Ensemble.stats) =
  Printf.sprintf
    "{ \"lanes\": %d, \"batches\": %d, \"masked_lane_iters\": %d, \
     \"lane_failures\": %d, \"lane_fallbacks\": %d }"
    e.Dramstress_engine.Ensemble.lanes e.Dramstress_engine.Ensemble.batches
    e.Dramstress_engine.Ensemble.masked_lane_iters
    e.Dramstress_engine.Ensemble.lane_failures (O.lane_fallbacks ())

let sparse_lu_stats_json (s : Dramstress_util.Sparse_lu.stats) =
  Printf.sprintf
    "{ \"analyses\": %d, \"reanalyses\": %d, \"numeric_refactor\": %d, \
     \"symbolic_reuse\": %d }"
    s.Dramstress_util.Sparse_lu.analyses s.Dramstress_util.Sparse_lu.reanalyses
    s.Dramstress_util.Sparse_lu.numeric_refactor
    s.Dramstress_util.Sparse_lu.symbolic_reuse

(* returns the finish hook that renders the metrics report; the command
   body runs inside [with_telemetry] so the report happens on both
   success and failure *)
let telemetry_setup metrics metrics_out trace =
  Tel.configure_from_env ();
  (match trace with
  | Some ("stderr" | "pretty") ->
    Tel.set_enabled true;
    Tel.set_sink Tel.Sink.stderr_pretty
  | Some path ->
    Tel.set_enabled true;
    Tel.set_sink (Tel.Sink.jsonl_file path)
  | None -> ());
  if metrics <> None then Tel.set_enabled true;
  fun () ->
    Tel.close_sink ();
    match metrics with
    | None -> ()
    | Some fmt ->
      let snap = Tel.snapshot () in
      let cache = O.cache_stats () in
      let ens = Dramstress_engine.Ensemble.stats () in
      let slu = Dramstress_util.Sparse_lu.stats () in
      let write_to default_channel out =
        match metrics_out with
        | Some file ->
          let oc = open_out file in
          output_string oc out;
          close_out oc
        | None ->
          output_string default_channel out;
          flush default_channel
      in
      (match fmt with
      | `Human ->
        write_to stderr
          (Tel.render_table snap
          ^ Printf.sprintf
              "cache: %d requests, %d hits, %d misses, %d evictions \
               (%d/%d entries)\n"
              cache.O.requests cache.O.hits cache.O.misses cache.O.evictions
              cache.O.entries cache.O.capacity
          ^ Printf.sprintf
              "ensemble: %d lanes in %d batches, %d masked lane-iters, \
               %d lane failures, %d scalar fallbacks\n"
              ens.Dramstress_engine.Ensemble.lanes
              ens.Dramstress_engine.Ensemble.batches
              ens.Dramstress_engine.Ensemble.masked_lane_iters
              ens.Dramstress_engine.Ensemble.lane_failures
              (O.lane_fallbacks ())
          ^ Printf.sprintf
              "sparse LU: %d analyses (+%d stale reruns), %d numeric \
               refactors, %d symbolic reuses\n"
              slu.Dramstress_util.Sparse_lu.analyses
              slu.Dramstress_util.Sparse_lu.reanalyses
              slu.Dramstress_util.Sparse_lu.numeric_refactor
              slu.Dramstress_util.Sparse_lu.symbolic_reuse)
      | `Json ->
        write_to stdout
          (Tel.to_json
             ~extra:
               [
                 ("cache_stats", cache_stats_json cache);
                 ("ensemble_stats", ensemble_stats_json ens);
                 ("sparse_lu_stats", sparse_lu_stats_json slu);
               ]
             snap))

let telemetry_term =
  Term.(const telemetry_setup $ metrics_arg $ metrics_out_arg $ trace_arg)

let with_telemetry finish f =
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

(* ------------------------------------------------------------------ *)
(* checkpointing: --checkpoint / --resume on every subcommand          *)
(* ------------------------------------------------------------------ *)

module Ck = Dramstress_util.Checkpoint

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Record per-point sweep results to FILE (JSON lines) as \
                 the command progresses, so an interrupted run can be \
                 resumed with $(b,--resume).")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Resume from the $(b,--checkpoint) file: replay its \
                 finished points and append new ones. Without \
                 $(b,--resume) an existing checkpoint file is \
                 truncated.")

let checkpoint_setup path resume =
  match (path, resume) with
  | None, true -> failwith "--resume requires --checkpoint FILE"
  | None, false -> None
  | Some path, resume -> Some (Ck.open_ ~resume path)

let checkpoint_term =
  Term.(const checkpoint_setup $ checkpoint_arg $ resume_arg)

(* the store must be closed (flushed) whether the command succeeds or
   dies mid-sweep: the next --resume picks up whatever was recorded *)
let with_checkpoint ck f =
  Fun.protect ~finally:(fun () -> Option.iter Ck.close ck) (fun () -> f ck)

(* ------------------------------------------------------------------ *)
(* failed-point exit policy: --fail-on-error on sweep subcommands      *)
(* ------------------------------------------------------------------ *)

let fail_on_error_arg =
  Arg.(value & flag
       & info [ "fail-on-error" ]
           ~doc:"Exit non-zero when any sweep point failed: status 4 if \
                 every failure exhausted its retry ladder \
                 (infrastructure gave up), status 3 if any point failed \
                 for another reason (numerical health, timeout, \
                 injected fault). Failed points are always reported in \
                 the output; this flag additionally surfaces them to \
                 scripts and CI.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Wall-clock budget per sweep point, covering the point's \
                 whole retry ladder. A point that exceeds it is cut off \
                 cooperatively and reported as a timed-out failure while \
                 the rest of the campaign proceeds.")

let config_of_deadline =
  Option.map (fun d -> Dramstress_dram.Sim_config.v ~deadline:d ())

(* called AFTER the telemetry/checkpoint wrappers have unwound, so
   [exit] cannot skip their finalizers *)
let failures_exit ~fail_on_error errors =
  if fail_on_error && errors <> [] then begin
    let exhausted_only =
      List.for_all
        (function O.Exhausted_retries _ -> true | _ -> false)
        errors
    in
    exit (if exhausted_only then 4 else 3)
  end

(* ------------------------------------------------------------------ *)
(* run: execute an operation sequence                                  *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let seq_arg =
    Arg.(value & pos 0 string "w1 w1 w0 r"
         & info [] ~docv:"SEQ" ~doc:"Operation sequence, e.g. 'w1 w1 w0 r' or 'w0 p1e-3 r'.")
  in
  let vc_arg =
    Arg.(value & opt float 0.0 & info [ "vc" ] ~docv:"V" ~doc:"Initial cell voltage.")
  in
  let run tel ck seq kind placement r vc stress =
    with_telemetry tel @@ fun () ->
    with_checkpoint ck @@ fun _ck ->
    let defect = D.v kind placement r in
    let ops = O.parse_seq seq in
    let outcome = O.run ~stress ~defect ~vc_init:vc ops in
    Format.printf "defect: %a@.stress: %a@." D.pp defect S.pp stress;
    List.iter
      (fun res ->
        Format.printf "  %-6s vc_end=%6.3f V%s@."
          (Format.asprintf "%a" O.pp_op res.O.op)
          res.O.vc_end
          (match res.O.sensed with
          | Some b -> Printf.sprintf "  sensed=%d" b
          | None -> ""))
      outcome.O.results
  in
  Cmd.v (Cmd.info "run" ~doc:"Run an operation sequence on a defective column")
    Term.(const run $ telemetry_term $ checkpoint_term $ seq_arg $ kind_arg
          $ placement_arg $ r_arg $ vc_arg $ stress_term)

(* ------------------------------------------------------------------ *)
(* plane: figure 2 / figure 6                                          *)
(* ------------------------------------------------------------------ *)

let plane_cmd =
  let points_arg =
    Arg.(value & opt (some int) None
         & info [ "points" ] ~docv:"N"
             ~doc:"Number of resistance points per plane (default 12); \
                   small values make quick smoke runs.")
  in
  let run tel ck fail_on_error deadline kind placement points stress =
    let failures =
      with_telemetry tel @@ fun () ->
      with_checkpoint ck @@ fun checkpoint ->
      let rops =
        Option.map
          (fun n ->
            if n < 2 then failwith "plane: --points must be >= 2"
            else Dramstress_util.Grid.logspace 1e3 1e6 n)
          points
      in
      let rendered, failures =
        C.Report.figure2_with_failures
          ?config:(config_of_deadline deadline)
          ?checkpoint ?rops ~stress ~kind ~placement ()
      in
      print_string rendered;
      List.map (fun f -> f.Dramstress_util.Outcome.error) failures
    in
    failures_exit ~fail_on_error failures
  in
  Cmd.v (Cmd.info "plane" ~doc:"Generate the w0/w1/r result planes (Figures 2 and 6)")
    Term.(const run $ telemetry_term $ checkpoint_term $ fail_on_error_arg
          $ deadline_arg $ kind_arg $ placement_arg $ points_arg
          $ stress_term)

(* ------------------------------------------------------------------ *)
(* br: border resistance                                               *)
(* ------------------------------------------------------------------ *)

let br_cmd =
  let cond_arg =
    Arg.(value & opt (some string) None
         & info [ "condition" ] ~docv:"SEQ"
             ~doc:"Detection condition, e.g. 'w1 w1 w0 r0'; reads carry \
                   their expected bit. Default: synthesized best.")
  in
  let run tel ck window kind placement cond stress =
    with_telemetry tel @@ fun () ->
    with_checkpoint ck @@ fun checkpoint ->
    match cond with
    | Some s ->
      let steps =
        List.map
          (fun tok ->
            match String.lowercase_ascii tok with
            | "w0" -> C.Detection.Write 0
            | "w1" -> C.Detection.Write 1
            | "r0" -> C.Detection.Read 0
            | "r1" -> C.Detection.Read 1
            | "ham" -> C.Detection.Hammer 1
            | t when String.length t > 3 && String.sub t 0 3 = "ham" ->
              C.Detection.Hammer
                (int_of_string (String.sub t 3 (String.length t - 3)))
            | t when String.length t > 1 && t.[0] = 'p' ->
              C.Detection.Wait (float_of_string (String.sub t 1 (String.length t - 1)))
            | t -> failwith ("bad detection token: " ^ t))
          (String.split_on_char ' ' s |> List.filter (( <> ) ""))
      in
      let detection = C.Detection.v steps in
      let br =
        C.Border.search ?checkpoint ~window ~stress ~kind ~placement
          detection
      in
      Format.printf "%a under %a: %a@." C.Detection.pp detection S.pp stress
        C.Border.pp_result br
    | None ->
      let detection, br =
        C.Sc_eval.best_detection ?checkpoint ~window ~stress ~kind ~placement
          ()
      in
      Format.printf "best detection %a under %a: %a@." C.Detection.pp
        detection S.pp stress C.Border.pp_result br
  in
  Cmd.v (Cmd.info "br" ~doc:"Search the border resistance of a defect")
    Term.(const run $ telemetry_term $ checkpoint_term $ window_term
          $ kind_arg $ placement_arg $ cond_arg $ stress_term)

(* ------------------------------------------------------------------ *)
(* stress: full optimization for one defect                            *)
(* ------------------------------------------------------------------ *)

let stress_cmd =
  let run tel ck window kind placement nominal axes =
    with_telemetry tel @@ fun () ->
    with_checkpoint ck @@ fun checkpoint ->
    let e =
      C.Sc_eval.evaluate ?checkpoint ~window ?axes ~nominal ~kind ~placement
        ()
    in
    Format.printf "%a@." C.Sc_eval.pp e
  in
  Cmd.v (Cmd.info "stress" ~doc:"Optimize the stress combination for one defect (Section 4)")
    Term.(const run $ telemetry_term $ checkpoint_term $ window_term
          $ kind_arg $ placement_arg $ stress_term $ axes_term)

(* ------------------------------------------------------------------ *)
(* table1                                                              *)
(* ------------------------------------------------------------------ *)

let table1_cmd =
  let quick_arg =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"One open representative instead of O1..O3.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write CSV to FILE.")
  in
  let run tel ck fail_on_error deadline quick csv axes =
    let failures =
      with_telemetry tel @@ fun () ->
      with_checkpoint ck @@ fun checkpoint ->
      let entries =
        if quick then
          List.filter (fun (e : D.entry) -> e.D.id <> "O2" && e.D.id <> "O3")
            D.catalog
        else D.catalog
      in
      let table =
        C.Table1.generate
          ?config:(config_of_deadline deadline)
          ?checkpoint ?axes ~entries ()
      in
      print_string (C.Table1.render table);
      Option.iter
        (fun file ->
          Dramstress_util.Csvout.write_file file (C.Table1.to_csv table))
        csv;
      List.map
        (fun f -> f.Dramstress_util.Outcome.error)
        table.C.Table1.failures
    in
    failures_exit ~fail_on_error failures
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce the paper's Table 1 over the defect catalog")
    Term.(const run $ telemetry_term $ checkpoint_term $ fail_on_error_arg
          $ deadline_arg $ quick_arg $ csv_arg $ axes_term)

(* ------------------------------------------------------------------ *)
(* shmoo                                                               *)
(* ------------------------------------------------------------------ *)

let shmoo_cmd =
  let run tel ck kind placement r =
    with_telemetry tel @@ fun () ->
    with_checkpoint ck @@ fun checkpoint ->
    let stress = S.nominal in
    let defect = D.v kind placement r in
    let detection =
      C.Detection.standard ~victim:(D.logical_victim kind placement) ~primes:2
    in
    let shmoo =
      M.Shmoo.generate ?checkpoint ~stress ~defect ~detection
        ~x:(S.Cycle_time, Dramstress_util.Grid.linspace 45e-9 75e-9 13)
        ~y:(S.Supply_voltage, Dramstress_util.Grid.linspace 1.8 3.0 9)
        ()
    in
    print_string (M.Shmoo.render shmoo);
    Printf.printf "fail fraction: %.2f\n" (M.Shmoo.fail_fraction shmoo)
  in
  Cmd.v (Cmd.info "shmoo" ~doc:"Traditional Shmoo plot (Section 2) for a defect")
    Term.(const run $ telemetry_term $ checkpoint_term $ kind_arg
          $ placement_arg $ r_arg)

(* ------------------------------------------------------------------ *)
(* march                                                               *)
(* ------------------------------------------------------------------ *)

let march_cmd =
  let run tel ck kind placement =
    with_telemetry tel @@ fun () ->
    with_checkpoint ck @@ fun checkpoint ->
    let stress = S.nominal in
    let cases =
      M.Coverage.standard_faults
      @ M.Coverage.electrical_faults ~stress ~kind ~placement ()
    in
    let detection, _ =
      C.Sc_eval.best_detection ?checkpoint ~stress ~kind ~placement ()
    in
    let tests =
      [ M.March.mats_plus; M.March.march_x; M.March.march_y;
        M.March.march_c_minus;
        M.March.of_detection ~name:"synthesized" detection ]
    in
    print_string (M.Coverage.render (M.Coverage.compare_tests tests cases))
  in
  Cmd.v (Cmd.info "march" ~doc:"Fault coverage of standard march tests vs the synthesized condition")
    Term.(const run $ telemetry_term $ checkpoint_term $ kind_arg
          $ placement_arg)

(* ------------------------------------------------------------------ *)
(* sim: transient on a SPICE deck                                      *)
(* ------------------------------------------------------------------ *)

let sim_cmd =
  let deck_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"DECK" ~doc:"SPICE deck file.")
  in
  let tstop_arg =
    Arg.(value & opt float 100e-9 & info [ "tstop" ] ~docv:"S" ~doc:"Stop time.")
  in
  let dt_arg =
    Arg.(value & opt float 0.1e-9 & info [ "dt" ] ~docv:"S" ~doc:"Time step.")
  in
  let probes_arg =
    Arg.(non_empty & opt (list string) []
         & info [ "probe" ] ~docv:"NODES" ~doc:"Comma-separated node names to record.")
  in
  let ic_arg =
    Arg.(value & opt_all (pair ~sep:'=' string float) []
         & info [ "ic" ] ~docv:"NODE=V" ~doc:"Initial condition (repeatable).")
  in
  let run tel ck deck tstop dt probes ics =
    with_telemetry tel @@ fun () ->
    with_checkpoint ck @@ fun _ck ->
    let nl = Dramstress_circuit.Spice.parse_file deck in
    let compiled = Dramstress_circuit.Netlist.compile nl in
    let result =
      Dramstress_engine.Transient.run compiled
        ~segments:[ (tstop, dt) ]
        ~ics ~probes ()
    in
    let rows =
      Array.to_list
        (Array.mapi
           (fun k t ->
             t
             :: Array.to_list
                  (Array.map
                     (fun vs -> vs.(k))
                     result.Dramstress_engine.Transient.probe_values))
           result.Dramstress_engine.Transient.times)
    in
    print_string
      (Dramstress_util.Csvout.of_floats ~header:("time_s" :: probes) rows)
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Transient-simulate a SPICE deck, CSV to stdout")
    Term.(const run $ telemetry_term $ checkpoint_term $ deck_arg $ tstop_arg
          $ dt_arg $ probes_arg $ ic_arg)

(* ------------------------------------------------------------------ *)
(* chaos: deterministic fault-injection self-test                      *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let module Chaos = Dramstress_util.Chaos in
  let module Par = Dramstress_util.Par in
  let module Out = Dramstress_util.Outcome in
  let module Sc = Dramstress_dram.Sim_config in
  let module E = Dramstress_engine in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Chaos seed; different seeds strike different points \
                   of the campaigns but every seed must satisfy the \
                   same invariants.")
  in
  let run tel ck seed =
    let violations =
      with_telemetry tel @@ fun () ->
      with_checkpoint ck @@ fun _ck ->
      Fun.protect ~finally:(fun () -> Chaos.disarm ()) @@ fun () ->
      (* reconciliation reads the telemetry counters, so the harness
         runs with telemetry on regardless of --metrics *)
      Tel.set_enabled true;
      let violations = ref 0 in
      let check name ok =
        Printf.printf "  %-52s %s\n%!" name
          (if ok then "ok" else "VIOLATION");
        if not ok then incr violations
      in
      let counter name =
        let snap = Tel.snapshot () in
        Option.value ~default:0 (List.assoc_opt name snap.Tel.counters)
      in
      let points = [ 100e3; 200e3; 400e3; 800e3; 1600e3 ] in
      let open_defect r = D.v (D.Open_cell D.At_bitline_contact) D.True_bl r in
      (* jobs = 1 keeps the per-fault query order deterministic, which
         is what makes exact failure accounting assertable *)
      let sweep ?(config = Sc.v ()) () =
        let cache = O.Cache.create () in
        Par.parallel_map_outcomes ~jobs:1 ~retries_of:O.retries_of
          (fun r ->
            let oc =
              O.run ~config ~cache ~stress:S.nominal ~defect:(open_defect r)
                ~vc_init:2.4 [ O.W0; O.R ]
            in
            (List.hd oc.O.results).O.vc_end)
          points
      in
      let structured = function
        | E.Newton.Numerical_health _ | E.Newton.No_convergence _
        | E.Newton.Timeout _ | E.Transient.Step_failed _
        | O.Exhausted_retries _ | Chaos.Injected_fault _ ->
          true
        | _ -> false
      in
      let accounted outs =
        List.length outs = List.length points
        && List.for_all
             (function
               | Out.Ok v -> Float.is_finite v
               | Out.Failed f -> structured f.Out.error)
             outs
      in
      let expected_total = ref 0 in
      let t0_injected = counter "util.chaos.injected" in
      let t0_class =
        List.map
          (fun f -> (f, counter ("util.chaos.injected." ^ Chaos.fault_name f)))
          Chaos.all_faults
      in
      let finish_class f =
        expected_total := !expected_total + Chaos.injected f
      in

      Printf.printf "chaos self-test, seed %d\n" seed;

      Printf.printf "fault class: perturb_jacobian\n";
      let before = counter "engine.health.singular_lu" in
      Chaos.configure ~seed "perturb_jacobian@97";
      let outs = sweep ~config:(Sc.v ~retry:Sc.no_retry ()) () in
      let inj = Chaos.injected Chaos.Perturb_jacobian in
      check "campaign completes with structured outcomes" (accounted outs);
      check "chaos struck" (inj > 0);
      check "every zeroed row detected as singular LU"
        (counter "engine.health.singular_lu" - before = inj);
      finish_class Chaos.Perturb_jacobian;

      Printf.printf "fault class: inject_nan_state\n";
      let before = counter "engine.health.nan_detected" in
      Chaos.configure ~seed "inject_nan_state@53";
      let outs = sweep () in
      let inj = Chaos.injected Chaos.Inject_nan_state in
      check "campaign completes with structured outcomes" (accounted outs);
      check "chaos struck" (inj > 0);
      check "every poisoned state detected as NaN"
        (counter "engine.health.nan_detected" - before = inj);
      finish_class Chaos.Inject_nan_state;

      Printf.printf "fault class: force_newton_diverge (deadline)\n";
      let before = counter "dram.ops.deadline_exceeded" in
      Chaos.configure ~seed:0 "force_newton_diverge@+1";
      let config =
        Sc.v
          ~sim:{ E.Options.default with E.Options.max_newton = 1_000_000_000 }
          ~retry:Sc.no_retry ~deadline:0.05 ()
      in
      let outs = sweep ~config () in
      (match outs with
      | Out.Failed { error = E.Newton.Timeout _; _ } :: rest ->
        check "hung point cut off as Failed{Timeout}" true;
        check "rest of the sweep finished"
          (List.for_all (function Out.Ok _ -> true | _ -> false) rest)
      | _ -> check "hung point cut off as Failed{Timeout}" false);
      check "deadline counted once"
        (counter "dram.ops.deadline_exceeded" - before = 1);
      check "exactly one injection" (Chaos.injected Chaos.Force_newton_diverge = 1);
      finish_class Chaos.Force_newton_diverge;

      Printf.printf "fault class: fail_worker_task\n";
      Chaos.configure ~seed "fail_worker_task@3";
      let outs = sweep () in
      let inj = Chaos.injected Chaos.Fail_worker_task in
      let injected_failures =
        List.length
          (List.filter
             (function
               | Out.Failed { error = Chaos.Injected_fault _; _ } -> true
               | Out.Failed _ | Out.Ok _ -> false)
             outs)
      in
      check "campaign completes with structured outcomes" (accounted outs);
      check "chaos struck" (inj > 0);
      check "every worker fault is a Failed slot" (injected_failures = inj);
      finish_class Chaos.Fail_worker_task;

      Printf.printf "fault class: truncate_checkpoint\n";
      let stress = S.nominal in
      let kind = D.Open_cell D.At_bitline_contact and placement = D.True_bl in
      let rops = Dramstress_util.Grid.logspace 1e3 1e6 4 in
      O.clear_cache ();
      Chaos.disarm ();
      let clean = C.Report.figure2 ~rops ~stress ~kind ~placement () in
      let path = Filename.temp_file "dramstress_chaos_ck" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Chaos.configure ~seed "truncate_checkpoint@2";
          O.clear_cache ();
          let store = Ck.open_ path in
          let chaotic =
            C.Report.figure2 ~checkpoint:store ~rops ~stress ~kind ~placement
              ()
          in
          Ck.close store;
          let inj = Chaos.injected Chaos.Truncate_checkpoint in
          check "chaos struck" (inj > 0);
          check "running campaign unaffected by truncation"
            (String.equal chaotic clean);
          finish_class Chaos.Truncate_checkpoint;
          Chaos.disarm ();
          O.clear_cache ();
          let store = Ck.open_ ~resume:true path in
          let resumed =
            C.Report.figure2 ~checkpoint:store ~rops ~stress ~kind ~placement
              ()
          in
          Ck.close store;
          check "resume after truncation is byte-identical"
            (String.equal resumed clean));

      Printf.printf "reconciliation\n";
      check "util.chaos.injected = sum of class injections"
        (counter "util.chaos.injected" - t0_injected = !expected_total);
      check "per-class telemetry counters sum to the total"
        (List.fold_left
           (fun acc (f, t0) ->
             acc
             + counter ("util.chaos.injected." ^ Chaos.fault_name f)
             - t0)
           0 t0_class
        = !expected_total);
      !violations
    in
    if violations > 0 then begin
      Printf.printf "chaos: %d violation(s)\n" violations;
      exit 1
    end
    else Printf.printf "chaos: all invariants hold\n"
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Self-test the failure paths with deterministic fault injection")
    Term.(const run $ telemetry_term $ checkpoint_term $ seed_arg)

(* ------------------------------------------------------------------ *)
(* campaign: manifest-driven studies over a persistent result store    *)
(* ------------------------------------------------------------------ *)

module Cp = Dramstress_campaign
module Store = Dramstress_util.Store
module B = Dramstress_util.Build_info

let manifest_pos idx docv =
  Arg.(required & pos idx (some file) None
       & info [] ~docv ~doc:"Campaign manifest file (s-expression).")

let store_opt_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Campaign store directory. Default: the manifest path \
                 with its extension replaced by $(b,.campaign).")

let store_dir_of manifest = function
  | Some dir -> dir
  | None -> Filename.remove_extension manifest ^ ".campaign"

let with_store ~name dir f =
  let store = Store.open_ ~name dir in
  Fun.protect ~finally:(fun () -> Store.close store) (fun () -> f store)

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains (default: the manifest's sim section, \
                 else the machine).")

let server_arg =
  Arg.(value & opt (some string) None
       & info [ "server" ] ~docv:"SOCK"
           ~doc:"Submit the manifest to a running $(b,dramstress serve) \
                 daemon at this Unix-domain socket instead of simulating \
                 locally; per-point results stream back as they land.")

let reconnect_arg =
  Arg.(value & opt int 10
       & info [ "reconnect" ] ~docv:"N"
           ~doc:"With $(b,--server): reconnect and resubmit up to N times \
                 when the connection drops mid-campaign. Completed points \
                 persist server-side, so a resubmission reuses them.")

let campaign_run_cmd =
  let run tel fail_on_error jobs manifest store_dir server reconnect =
    match server with
    | Some socket ->
      let failed =
        with_telemetry tel @@ fun () ->
        let text = In_channel.with_open_text manifest In_channel.input_all in
        let on_event = function
          | Cp.Protocol.Point { descr; status; payload } ->
            Printf.printf "%-44s %-9s %s\n%!" descr
              (Cp.Protocol.string_of_point_status status)
              payload
          | _ -> ()
        in
        (match
           Cp.Service.Client.submit_retrying ?jobs ~attempts:reconnect
             ~on_event ~socket text
         with
        | Ok o ->
          Printf.printf
            "campaign: %d point(s) planned, %d reused, %d simulated, %d \
             deduped, %d failed\n"
            o.Cp.Service.Client.planned o.Cp.Service.Client.reused
            o.Cp.Service.Client.simulated o.Cp.Service.Client.deduped
            o.Cp.Service.Client.failed;
          o.Cp.Service.Client.failed
        | Error msg ->
          prerr_endline ("dramstress: server error: " ^ msg);
          exit 1)
      in
      if fail_on_error && failed > 0 then exit 3
    | None ->
      let failures =
        with_telemetry tel @@ fun () ->
        let m = Cp.Manifest.load manifest in
        let dir = store_dir_of manifest store_dir in
        with_store ~name:m.Cp.Manifest.name dir @@ fun store ->
        let s = Cp.Runner.run ?jobs ~store m in
        Format.printf "%a@." Cp.Runner.pp_summary s;
        List.map
          (fun f -> f.Dramstress_util.Outcome.error)
          s.Cp.Runner.failures
      in
      failures_exit ~fail_on_error failures
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a campaign: simulate only the points its store does \
             not already hold (locally, or via a campaign server)")
    Term.(const run $ telemetry_term $ fail_on_error_arg $ jobs_arg
          $ manifest_pos 0 "MANIFEST" $ store_opt_arg $ server_arg
          $ reconnect_arg)

let campaign_status_cmd =
  let run tel manifest store_dir =
    with_telemetry tel @@ fun () ->
    let m = Cp.Manifest.load manifest in
    let dir = store_dir_of manifest store_dir in
    with_store ~name:m.Cp.Manifest.name dir @@ fun store ->
    let states = Cp.Runner.states ~store m in
    let count f = List.length (List.filter f states) in
    let done_ = count (fun (_, s) -> match s with `Done _ -> true | _ -> false) in
    let failed = count (fun (_, s) -> match s with `Failed _ -> true | _ -> false) in
    let missing = count (fun (_, s) -> match s with `Missing -> true | _ -> false) in
    List.iter
      (fun (p, st) ->
        Printf.printf "%-44s %s\n"
          (Format.asprintf "%a" Cp.Plan.pp_point p)
          (match st with
          | `Done r -> "done: " ^ C.Table1.br_string r.Cp.Plan.br
          | `Failed msg -> "FAILED: " ^ msg
          | `Missing -> "missing"))
      states;
    Printf.printf "\n%d point(s): %d done, %d failed, %d missing\n"
      (List.length states) done_ failed missing;
    (match Store.engines store with
    | [] | [ _ ] -> ()
    | engines ->
      Printf.printf "store written by %d engine build(s):\n"
        (List.length engines);
      List.iter (fun (e, n) -> Printf.printf "  %6d  %s\n" n e) engines)
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Classify every planned point against the store without \
             simulating")
    Term.(const run $ telemetry_term $ manifest_pos 0 "MANIFEST"
          $ store_opt_arg)

let campaign_query_cmd =
  let defect_filter_arg =
    Arg.(value & opt (some string) None
         & info [ "d"; "defect" ] ~docv:"ID" ~doc:"Only this defect id.")
  in
  let stress_filter_arg =
    Arg.(value & opt (some string) None
         & info [ "stress" ] ~docv:"LABEL" ~doc:"Only this stress label.")
  in
  let run tel manifest store_dir defect stress =
    with_telemetry tel @@ fun () ->
    let m = Cp.Manifest.load manifest in
    let dir = store_dir_of manifest store_dir in
    with_store ~name:m.Cp.Manifest.name dir @@ fun store ->
    Cp.Runner.states ~store m
    |> List.filter (fun ((p : Cp.Plan.point), _) ->
           (match defect with
           | Some id -> p.Cp.Plan.defect.D.id = id
           | None -> true)
           && match stress with
              | Some l -> p.Cp.Plan.stress_label = l
              | None -> true)
    |> List.iter (fun (p, st) ->
           match st with
           | `Done (r : Cp.Plan.result) ->
             Printf.printf "%-44s %-12s %s\n"
               (Format.asprintf "%a" Cp.Plan.pp_point p)
               (C.Table1.br_string r.Cp.Plan.br)
               (C.Detection.to_string r.Cp.Plan.detection)
           | `Failed msg ->
             Printf.printf "%-44s FAILED: %s\n"
               (Format.asprintf "%a" Cp.Plan.pp_point p)
               msg
           | `Missing ->
             Printf.printf "%-44s missing\n"
               (Format.asprintf "%a" Cp.Plan.pp_point p))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Print stored border results for (a filtered subset of) the \
             campaign's points")
    Term.(const run $ telemetry_term $ manifest_pos 0 "MANIFEST"
          $ store_opt_arg $ defect_filter_arg $ stress_filter_arg)

let campaign_diff_cmd =
  let dir_pos idx docv =
    Arg.(required & pos idx (some string) None
         & info [] ~docv ~doc:"Campaign store directory.")
  in
  let stress_a_arg =
    Arg.(value & opt (some string) None
         & info [ "stress-a" ] ~docv:"LABEL"
             ~doc:"Compare side A at this stress label (with \
                   $(b,--stress-b): Table-1 nominal-vs-stressed mode). \
                   Default: match equal labels across the sides.")
  in
  let stress_b_arg =
    Arg.(value & opt (some string) None
         & info [ "stress-b" ] ~docv:"LABEL"
             ~doc:"Compare side B at this stress label.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write CSV to FILE.")
  in
  let fail_on_diff_arg =
    Arg.(value & flag
         & info [ "fail-on-diff" ]
             ~doc:"Exit with status 5 when any row shifted or is missing \
                   a side — the self-diff-must-be-empty check in CI.")
  in
  let run tel ma da mb db sa sb csv fail_on_diff =
    let shifted_or_missing =
      with_telemetry tel @@ fun () ->
      let side mpath dpath =
        let m = Cp.Manifest.load mpath in
        let store = Store.open_ ~name:m.Cp.Manifest.name dpath in
        {
          Cp.Diff.store;
          manifest = m;
          label = Printf.sprintf "%s (%s)" m.Cp.Manifest.name dpath;
        }
      in
      let a = side ma da in
      let b = side mb db in
      Fun.protect
        ~finally:(fun () ->
          Store.close a.Cp.Diff.store;
          Store.close b.Cp.Diff.store)
        (fun () ->
          let pairing =
            match (sa, sb) with
            | None, None -> Cp.Diff.Matched_stresses
            | Some a, Some b -> Cp.Diff.Stress_pair { a; b }
            | _ ->
              failwith "--stress-a and --stress-b must be given together"
          in
          let d = Cp.Diff.v ~pairing ~a ~b () in
          print_string (Cp.Diff.render d);
          Option.iter
            (fun file ->
              Dramstress_util.Csvout.write_file file (Cp.Diff.to_csv d))
            csv;
          d.Cp.Diff.shifted + d.Cp.Diff.missing)
    in
    if fail_on_diff && shifted_or_missing > 0 then exit 5
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two campaign stores (or two stress settings) and \
             report border-resistance shifts per defect")
    Term.(const run $ telemetry_term $ manifest_pos 0 "MANIFEST_A"
          $ dir_pos 1 "DIR_A" $ manifest_pos 2 "MANIFEST_B"
          $ dir_pos 3 "DIR_B" $ stress_a_arg $ stress_b_arg $ csv_arg
          $ fail_on_diff_arg)

let campaign_cmd =
  Cmd.group
    (Cmd.info "campaign"
       ~doc:"Declarative studies: run a manifest against a persistent \
             result store; query and diff stores")
    [ campaign_run_cmd; campaign_status_cmd; campaign_query_cmd;
      campaign_diff_cmd ]

(* ------------------------------------------------------------------ *)
(* serve: the campaign service daemon (and its control client)         *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"SOCK"
             ~doc:"Unix-domain socket path (default: \
                   $(b,DIR/dramstress.sock) under $(b,--store)).")
  in
  let serve_store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Store directory the server owns (created if needed).")
  in
  let shards_serve_arg =
    Arg.(value & opt int 16
         & info [ "shards" ] ~docv:"N"
             ~doc:"Shard a freshly created store N ways by fingerprint \
                   prefix. An existing store keeps its own layout.")
  in
  let name_arg =
    Arg.(value & opt string "service"
         & info [ "name" ] ~docv:"NAME" ~doc:"Store name for a fresh store.")
  in
  let stop_arg =
    Arg.(value & flag
         & info [ "stop" ]
             ~doc:"Client mode: ask the daemon at the socket to shut down \
                   (in-flight submissions complete first).")
  in
  let status_flag_arg =
    Arg.(value & flag
         & info [ "status" ]
             ~doc:"Client mode: print the daemon's store summary and \
                   in-flight count.")
  in
  let counters_arg =
    Arg.(value & flag
         & info [ "counters" ]
             ~doc:"Client mode: print the daemon's telemetry counters, \
                   one $(b,name value) line each.")
  in
  let no_sandbox_arg =
    Arg.(value & flag
         & info [ "no-sandbox" ]
             ~doc:"Execute points in-process over domains instead of the \
                   supervised worker-process pool. Faster to start, but a \
                   solver crash then takes the daemon with it.")
  in
  let max_active_arg =
    Arg.(value & opt int 4
         & info [ "max-active" ] ~docv:"N"
             ~doc:"Admission control: at most N submissions execute \
                   concurrently.")
  in
  let queue_arg =
    Arg.(value & opt int 8
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission control: up to N further submissions wait \
                   server-side; beyond that clients get a typed \
                   $(b,busy) response with a retry hint.")
  in
  let read_timeout_arg =
    Arg.(value & opt float 10.0
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Drop a connection whose frame stalls mid-transmission \
                   for this long (slowloris defence). 0 disables. Idle \
                   connections between frames are never dropped.")
  in
  let worker_deaths_arg =
    Arg.(value & opt int 3
         & info [ "worker-deaths" ] ~docv:"K"
             ~doc:"Quarantine a point as failed after it kills K \
                   consecutive sandbox workers.")
  in
  let worker_timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "worker-timeout" ] ~docv:"SECONDS"
             ~doc:"SIGKILL a sandbox worker stuck on one point longer than \
                   this (counts as a worker death).")
  in
  let run tel socket store_dir shards name jobs stop status counters
      no_sandbox max_active queue read_timeout worker_deaths worker_timeout =
    with_telemetry tel @@ fun () ->
    let socket_of () =
      match (socket, store_dir) with
      | Some s, _ -> s
      | None, Some d -> Filename.concat d "dramstress.sock"
      | None, None -> failwith "serve: need --socket or --store"
    in
    if stop then begin
      match
        Cp.Service.Client.request ~socket:(socket_of ()) Cp.Protocol.Shutdown
      with
      | Cp.Protocol.Bye -> print_endline "server stopping"
      | _ -> failwith "unexpected reply to shutdown"
    end
    else if counters then begin
      match
        Cp.Service.Client.request ~socket:(socket_of ()) Cp.Protocol.Counters
      with
      | Cp.Protocol.Counter_values cs ->
        List.iter (fun (n, v) -> Printf.printf "%s %d\n" n v) cs
      | _ -> failwith "unexpected reply to counters"
    end
    else if status then begin
      match
        Cp.Service.Client.request ~socket:(socket_of ()) Cp.Protocol.Status
      with
      | Cp.Protocol.Status_report { name; engine; records; shards; inflight }
        ->
        Printf.printf
          "store:    %s\nengine:   %s\nrecords:  %d\nshards:   %d\n\
           inflight: %d\n"
          name engine records shards inflight
      | _ -> failwith "unexpected reply to status"
    end
    else begin
      let dir =
        match store_dir with
        | Some d -> d
        | None -> failwith "serve: --store DIR required to run the daemon"
      in
      let store = Store.open_ ~name ~shards dir in
      let socket_path = socket_of () in
      let srv =
        match
          Cp.Service.create ?jobs ~sandbox:(not no_sandbox)
            ~max_task_deaths:worker_deaths ?task_timeout:worker_timeout
            ~max_active ~queue ~read_timeout ~store ~socket_path ()
        with
        | srv -> srv
        | exception Cp.Service.Already_running path ->
          Store.close store;
          Printf.eprintf
            "dramstress serve: another daemon is already listening on %s\n%!"
            path;
          exit 2
      in
      let graceful = Sys.Signal_handle (fun _ -> Cp.Service.stop srv) in
      Sys.set_signal Sys.sigterm graceful;
      Sys.set_signal Sys.sigint graceful;
      Printf.printf
        "dramstress serve: listening on %s (store %s, %d shard(s), %s)\n%!"
        socket_path dir (Store.shards store)
        (if Cp.Service.sandboxed srv then "sandboxed workers"
         else "in-process execution");
      Cp.Service.serve srv
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the campaign service: a daemon owning a sharded store, \
             executing concurrent campaign submissions over a local \
             socket with supervised worker processes, admission control \
             and in-flight deduplication")
    Term.(const run $ telemetry_term $ socket_arg $ serve_store_arg
          $ shards_serve_arg $ name_arg $ jobs_arg $ stop_arg
          $ status_flag_arg $ counters_arg $ no_sandbox_arg $ max_active_arg
          $ queue_arg $ read_timeout_arg $ worker_deaths_arg
          $ worker_timeout_arg)

(* ------------------------------------------------------------------ *)
(* store: offline store maintenance                                    *)
(* ------------------------------------------------------------------ *)

let store_merge_cmd =
  let dir_pos idx docv doc =
    Arg.(required & pos idx (some string) None & info [] ~docv ~doc)
  in
  let run tel src dst =
    with_telemetry tel @@ fun () ->
    if not (Sys.file_exists src && Sys.is_directory src) then
      failwith (src ^ " is not a store directory");
    let dst_name =
      match Store.index dst with
      | Some ix -> ix.Store.ix_name
      | None -> "store"
    in
    let dst_store = Store.open_ ~name:dst_name dst in
    let src_store = Store.open_ ~name:"merge-src" src in
    Fun.protect
      ~finally:(fun () ->
        Store.close src_store;
        Store.close dst_store)
      (fun () ->
        let st = Store.merge ~src:src_store ~dst:dst_store in
        Printf.printf "merged %s into %s: %d added, %d replaced, %d kept\n"
          src dst st.Store.added st.Store.replaced st.Store.kept)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Union SRC's records into DST by content address; on \
             conflicting payloads the current-engine record wins, \
             otherwise DST keeps its copy")
    Term.(const run $ telemetry_term
          $ dir_pos 0 "SRC" "Source store directory (read only)."
          $ dir_pos 1 "DST" "Destination store directory (created if needed).")

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:"Offline maintenance of campaign result stores")
    [ store_merge_cmd ]

(* ------------------------------------------------------------------ *)
(* version: build metadata                                             *)
(* ------------------------------------------------------------------ *)

let version_cmd =
  let run () =
    print_endline B.identity;
    Printf.printf "version: %s\ngit:     %s\nocaml:   %s\ndune:    %s\n"
      B.version B.git B.ocaml B.dune
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:"Print build metadata — the engine identity stamped into \
             every campaign-store record")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let catalog_cmd =
  let run tel ck () =
    with_telemetry tel @@ fun () ->
    with_checkpoint ck @@ fun _ck -> print_string (D.describe_figure7 ())
  in
  Cmd.v (Cmd.info "catalog" ~doc:"Show the defect catalog (Figure 7)")
    Term.(const run $ telemetry_term $ checkpoint_term $ const ())

let () =
  (* opt into fault injection when DRAMSTRESS_CHAOS is set; dormant
     otherwise (one atomic load per site) *)
  Dramstress_util.Chaos.configure_from_env ();
  let doc = "stress optimization for DRAM cell defect tests (DATE 2003 reproduction)" in
  let info = Cmd.info "dramstress" ~version:B.identity ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; plane_cmd; br_cmd; stress_cmd; table1_cmd; shmoo_cmd;
            march_cmd; catalog_cmd; sim_cmd; chaos_cmd; campaign_cmd;
            serve_cmd; store_cmd; version_cmd ]))
