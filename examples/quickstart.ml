(* Quickstart: build the DRAM column, inject a resistive open into a
   cell, run the paper's detection sequence and watch the fault appear.

   Run with: dune exec examples/quickstart.exe *)

module Stress = Dramstress_dram.Stress
module Ops = Dramstress_dram.Ops
module Defect = Dramstress_defect.Defect

let run_and_print ~label ?defect ops =
  let outcome =
    Ops.run ~stress:Stress.nominal ?defect
      ~vc_init:Stress.nominal.Stress.vdd ops
  in
  Printf.printf "%s\n" label;
  List.iter
    (fun r ->
      Printf.printf "  %-4s  V_cell = %5.2f V%s\n"
        (Format.asprintf "%a" Ops.pp_op r.Ops.op)
        r.Ops.vc_end
        (match r.Ops.sensed with
        | Some b -> Printf.sprintf "   read -> %d" b
        | None -> ""))
    outcome.Ops.results;
  Printf.printf "\n"

let () =
  let seq = [ Ops.W1; Ops.W1; Ops.W0; Ops.R ] in
  (* a healthy cell: the w0 succeeds and the read returns 0 *)
  run_and_print ~label:"healthy cell, sequence w1 w1 w0 r:" seq;
  (* the same sequence with a 400 kOhm open at the bit-line contact:
     the w0 can no longer discharge the cell within the cycle, and the
     read returns 1 -- the defect is detected *)
  let defect = Defect.v (Defect.Open_cell Defect.At_bitline_contact)
      Defect.True_bl 400e3
  in
  run_and_print
    ~label:"cell with a 400 kOhm open (O1), same sequence:" ~defect seq;
  (* at 50 kOhm the open is too small to matter: the test passes, so the
     defect escapes -- this is why stress optimization matters *)
  let mild = Defect.with_r defect 50e3 in
  run_and_print
    ~label:"cell with a 50 kOhm open (O1), same sequence (escapes):"
    ~defect:mild seq
