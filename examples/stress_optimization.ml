(* The paper's Section 4 flow, end to end, for one defect: probe each
   stress axis, compose the stress combination, re-derive the detection
   condition and compare border resistances.

   Run with: dune exec examples/stress_optimization.exe *)

module Stress = Dramstress_dram.Stress
module Defect = Dramstress_defect.Defect
module Core = Dramstress_core

let () =
  let kind = Defect.Open_cell Defect.At_bitline_contact in
  let placement = Defect.True_bl in
  Format.printf "Optimizing stresses for defect %a (%a)...@.@." Defect.pp_kind
    kind Defect.pp_placement placement;
  let e = Core.Sc_eval.evaluate ~nominal:Stress.nominal ~kind ~placement () in
  Format.printf "%a@.@." Core.Sc_eval.pp e;
  (* the per-axis evidence behind the verdicts, Figures 3-5 style *)
  List.iter
    (fun probe ->
      Format.printf "--- %a samples ---@." Stress.pp_axis probe.Core.Stressor.axis;
      List.iter
        (fun s ->
          Format.printf
            "  value %8.3g: write residual %5.3f V, read-threshold metric \
             %+6.3f V@."
            s.Core.Stressor.value s.Core.Stressor.write_residual
            s.Core.Stressor.vsa_shift)
        probe.Core.Stressor.samples)
    e.Core.Sc_eval.probes;
  (* and the raw waveform panels for the timing axis (Figure 3) *)
  Format.printf "@.%s@."
    (Core.Report.figure_st_panels ~stress:Stress.nominal
       ~axis:Stress.Cycle_time
       ~values:[ 55e-9; 60e-9 ]
       ~kind ~placement ())
