; Supply-voltage campaign: three defect classes at the paper's nominal
; V_dd = 2.4 V and at a lowered 2.1 V corner. Run it with
;
;   dune exec examples/campaign_study.exe
;
; or through the CLI:
;
;   dune exec bin/dramstress.exe -- campaign run examples/campaign_study.sexp
(campaign
  (name vdd-study)
  ; one defect of each class on the true bit-line: an open at the
  ; bit-line contact, a short to ground, a bridge to the neighbour cell
  (defects (O1 true) (Sg true) (B1 true))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  ; score every (defect, stress) pair with the same two sequences so the
  ; border shifts are attributable to the stress alone; the second is a
  ; retention test — Sg only drains the cell given time, so the plain
  ; write/read sequence never sees it
  (detections (seq "w1 w1 w0 r0") (seq "w1 p1e-3 r1"))
  ; short-to-gnd borders reach the giga-ohm range, so keep r-max high;
  ; a coarse grid and loose tolerance keep the example quick
  (border (r-min 1e4) (r-max 1e11) (grid-points 8) (rel-tol 0.05)))
