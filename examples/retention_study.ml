(* Retention pauses against high-resistance shorts: the mechanism
   behind the giga-ohm stressed border resistances in Table 1. A short
   that is orders of magnitude too weak to disturb a 60 ns cycle drains
   the cell during a millisecond pause.

   Run with: dune exec examples/retention_study.exe *)

module Stress = Dramstress_dram.Stress
module Ops = Dramstress_dram.Ops
module Defect = Dramstress_defect.Defect
module Core = Dramstress_core

let () =
  let stress = Stress.nominal in
  let kind = Defect.Short_to_gnd in
  let placement = Defect.True_bl in
  Format.printf
    "Sg short: stored-1 decay through the defect during a pause@.@.";
  Format.printf "%-12s %-32s %s@." "R (short)" "Vc after w1, 1 ms pause"
    "read result";
  List.iter
    (fun r ->
      let defect = Defect.v kind placement r in
      let outcome =
        Ops.run ~stress ~defect ~vc_init:0.0
          [ Ops.W1; Ops.Pause 1e-3; Ops.R ]
      in
      let pause_vc = (List.nth outcome.Ops.results 1).Ops.vc_end in
      let sensed = List.hd (Ops.sensed_bits outcome) in
      Format.printf "%-12s %-32s r -> %d (%s)@."
        (Dramstress_util.Units.si_string r)
        (Printf.sprintf "%.2f V" pause_vc)
        sensed
        (if sensed = 0 then "FAIL: detected" else "pass: escapes"))
    [ 1e6; 100e6; 1e9; 10e9; 100e9 ];
  (* sweep the pause length: the detectable resistance range grows with
     the pause roughly linearly (tau = R * C_cell) *)
  Format.printf "@.%-12s %s@." "pause" "border resistance of {w1, del, r1}";
  List.iter
    (fun pause ->
      let detection = Core.Detection.retention ~victim:1 ~pause in
      let br = Core.Border.search ~stress ~kind ~placement detection in
      Format.printf "%-12s %a@."
        (Dramstress_util.Units.si_string pause)
        Core.Border.pp_result br)
    [ 1e-6; 10e-6; 100e-6; 1e-3; 10e-3 ]
