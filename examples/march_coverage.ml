(* Fault coverage of standard march tests against both classic digital
   faults and electrically-fitted weak cells, compared with the
   detection condition the paper's method synthesizes.

   Run with: dune exec examples/march_coverage.exe *)

module Stress = Dramstress_dram.Stress
module Defect = Dramstress_defect.Defect
module Core = Dramstress_core
module M = Dramstress_march

let () =
  let stress = Stress.nominal in
  let kind = Defect.Open_cell Defect.At_bitline_contact in
  let placement = Defect.True_bl in
  Format.printf
    "Fitting behavioural weak cells from the electrical model (%a)...@.@."
    Defect.pp_kind kind;
  let cases =
    M.Coverage.standard_faults
    @ M.Coverage.electrical_faults ~stress ~kind ~placement ()
  in
  let detection, br =
    Core.Sc_eval.best_detection ~allow_pause:false ~stress ~kind ~placement ()
  in
  Format.printf "Synthesized detection %a (%a)@.@." Core.Detection.pp detection
    Core.Border.pp_result br;
  let tests =
    [
      M.March.mats_plus;
      M.March.march_x;
      M.March.march_y;
      M.March.march_c_minus;
      M.March.of_detection ~name:"synthesized condition" detection;
    ]
  in
  List.iter (fun t -> Format.printf "%a@." M.March.pp t) tests;
  Format.printf "@.%s@."
    (M.Coverage.render (M.Coverage.compare_tests tests cases))
