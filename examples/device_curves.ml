(* Device characterization with the DC sweep engine: the access
   transistor's transfer and output characteristics across temperature,
   the raw material of the paper's stress mechanisms.

   Run with: dune exec examples/device_curves.exe *)

module N = Dramstress_circuit.Netlist
module W = Dramstress_circuit.Waveform
module E = Dramstress_engine
module T = Dramstress_dram.Tech
module A = Dramstress_util.Ascii_plot

let transfer_curve ~temp_c =
  (* Id(Vgs) at Vds = 2.4 V through a zero-volt ammeter source *)
  let nl = N.create () in
  N.vsource nl ~name:"vdd" "vdd" "0" (W.dc 2.4);
  N.vsource nl ~name:"vg" "g" "0" (W.dc 0.0);
  N.vsource nl ~name:"amm" "vdd" "d" (W.dc 0.0);
  N.mosfet nl ~name:"m" ~d:"d" ~g:"g" ~s:"0" ~model:T.default.T.access ();
  let compiled = N.compile nl in
  let opts =
    { E.Options.default with
      E.Options.temp = Dramstress_util.Units.celsius_to_kelvin temp_c }
  in
  let sweep =
    E.Sweep.run compiled ~opts ~source:"vg"
      ~values:(Dramstress_util.Grid.linspace 0.0 3.2 33)
      ()
  in
  E.Sweep.source_current_curve sweep "amm"

let () =
  print_endline
    "Access-transistor transfer characteristic Id(Vgs) at Vds = 2.4 V";
  let series =
    List.map
      (fun (glyph, temp_c) ->
        A.series ~glyph
          (Printf.sprintf "T=%+.0fC" temp_c)
          (List.map (fun (v, i) -> (v, i *. 1e6)) (transfer_curve ~temp_c)))
      [ ('1', -33.0); ('2', 27.0); ('3', 87.0) ]
  in
  print_string
    (A.render ~x_label:"Vgs (V)" ~y_label:"Id (uA)"
       ~title:"linear scale: mobility -- cold is stronger when on" series);
  (* the same data on a log axis shows the sub-threshold leakage
     reversing the ordering: hot leaks orders of magnitude more *)
  let log_series =
    List.map
      (fun s ->
        {
          s with
          A.pts =
            List.filter_map
              (fun (v, i) -> if i > 1e-8 then Some (v, log10 i) else None)
              s.A.pts;
        })
      series
  in
  print_string
    (A.render ~x_label:"Vgs (V)" ~y_label:"log10 Id (uA)"
       ~title:"log scale: sub-threshold -- hot leaks more when off"
       log_series);
  print_endline
    "Both orderings at once are the paper's competing temperature\n\
     mechanisms (Section 4.2): strong-inversion current falls with T\n\
     while leakage rises with T."
