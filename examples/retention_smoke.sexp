; Retention smoke campaign: a tiny wait-axis sweep crossing decay time
; with the data background on the neighbour cell. The wait stress
; inserts a retention pause before the first read of every detection,
; so even the plain write/read sequence below becomes a retention test
; at wait > 0. Run it with
;
;   dune exec bin/dramstress.exe -- campaign run examples/retention_smoke.sexp
;
; A warm rerun against the same store must simulate zero points — CI
; checks exactly that.
(campaign
  (name retention-smoke)
  (defects (O1 true))
  ; 3 log-spaced decay delays x 2 data backgrounds
  (sweep (wait (range 0.01 1.0 3)) (pattern all1 checkerboard))
  (detections (seq "w1 w0 r0"))
  ; a coarse window keeps the smoke run quick
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
