(* A full campaign round trip on the checked-in manifest
   examples/campaign_study.sexp: run it cold, run it again to show that
   the store answers everything the second time, then diff the two V_dd
   settings into the Table-1-style report.

   Run with: dune exec examples/campaign_study.exe
   The store persists in the system temp directory, so re-running the
   example is itself a warm rerun (delete the directory to start cold). *)

module Cp = Dramstress_campaign
module Store = Dramstress_util.Store
module Ops = Dramstress_dram.Ops

let manifest_path =
  if Array.length Sys.argv > 1 then Sys.argv.(1)
  else Filename.concat (Filename.dirname Sys.argv.(0)) "campaign_study.sexp"

(* fall back to the source location when running the installed binary
   from the repo root *)
let manifest_path =
  if Sys.file_exists manifest_path then manifest_path
  else "examples/campaign_study.sexp"

let store_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "dramstress_vdd_study"

let with_store f =
  let s = Store.open_ ~name:"vdd-study" store_dir in
  Fun.protect ~finally:(fun () -> Store.close s) (fun () -> f s)

let () =
  let m = Cp.Manifest.load manifest_path in
  Format.printf "manifest: %a@." Cp.Manifest.pp m;
  Format.printf "store:    %s@.@." store_dir;

  (* first run: simulates whatever the store does not hold yet *)
  let first = with_store (fun s -> Cp.Runner.run ~store:s m) in
  Format.printf "first run:  %a@." Cp.Runner.pp_summary first;

  (* second run, fresh handle: everything must come back from disk *)
  Ops.clear_cache ();
  let second = with_store (fun s -> Cp.Runner.run ~store:s m) in
  Format.printf "second run: %a@.@." Cp.Runner.pp_summary second;
  assert (second.Cp.Runner.simulated = 0);

  (* Table-1 mode: nominal vs low-vdd from the same store *)
  with_store (fun s ->
      let side label = { Cp.Diff.store = s; manifest = m; label } in
      let d =
        Cp.Diff.v
          ~pairing:(Cp.Diff.Stress_pair { a = "nominal"; b = "low-vdd" })
          ~a:(side "nominal") ~b:(side "low-vdd") ()
      in
      print_string (Cp.Diff.render d))
