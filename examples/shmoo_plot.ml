(* The traditional black-box method (Section 2): a Shmoo plot of the
   pass/fail outcome over two stress axes, next to what the simulation-
   based method tells us directly.

   Run with: dune exec examples/shmoo_plot.exe *)

module Stress = Dramstress_dram.Stress
module Defect = Dramstress_defect.Defect
module Core = Dramstress_core
module March = Dramstress_march

let () =
  let kind = Defect.Open_cell Defect.At_bitline_contact in
  let placement = Defect.True_bl in
  let defect = Defect.v kind placement 200e3 in
  let detection =
    Core.Detection.standard
      ~victim:(Defect.logical_victim kind placement)
      ~primes:2
  in
  Format.printf "Defect under test: %a@.Detection condition: %a@.@."
    Defect.pp defect Core.Detection.pp detection;
  (* classic tester view: tcyc on x, Vdd on y *)
  let shmoo =
    March.Shmoo.generate ~stress:Stress.nominal ~defect ~detection
      ~x:(Stress.Cycle_time, Dramstress_util.Grid.linspace 45e-9 75e-9 13)
      ~y:(Stress.Supply_voltage, Dramstress_util.Grid.linspace 1.8 3.0 9)
      ()
  in
  print_string (March.Shmoo.render shmoo);
  Format.printf "fail fraction over the plane: %.2f@.@."
    (March.Shmoo.fail_fraction shmoo);
  (* temperature vs cycle time *)
  let shmoo_t =
    March.Shmoo.generate ~stress:Stress.nominal ~defect ~detection
      ~x:(Stress.Cycle_time, Dramstress_util.Grid.linspace 45e-9 75e-9 13)
      ~y:(Stress.Temperature, Dramstress_util.Grid.linspace (-40.0) 90.0 7)
      ()
  in
  print_string (March.Shmoo.render shmoo_t);
  (* what the simulation-based method reports without plotting anything:
     the direction each stress should move *)
  let e =
    Core.Sc_eval.evaluate ~nominal:Stress.nominal ~kind ~placement ()
  in
  Format.printf "@.The paper's method concludes directly:@.";
  List.iter
    (fun p -> Format.printf "  %a@." Core.Stressor.pp_probe p)
    e.Core.Sc_eval.probes
