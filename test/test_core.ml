(* Tests for the fault-analysis core: detection conditions, border
   resistance, result planes, stress probes and SC evaluation. *)

module S = Dramstress_dram.Stress
module O = Dramstress_dram.Ops
module D = Dramstress_defect.Defect
module C = Dramstress_core

let nominal = S.nominal
let open_kind = D.Open_cell D.At_bitline_contact

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let test_detection_standard_shape () =
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  Alcotest.(check bool) "steps" true
    (cond.C.Detection.steps
    = [ C.Detection.Write 1; C.Detection.Write 1; C.Detection.Write 0;
        C.Detection.Read 0 ]);
  Alcotest.(check string) "notation" "{... w1, w1, w0, r0 ...}"
    (C.Detection.to_string cond)

let test_detection_validation () =
  Alcotest.check_raises "bad bit" (Invalid_argument "Detection.v: bit not 0/1")
    (fun () -> ignore (C.Detection.v [ C.Detection.Write 2 ]));
  Alcotest.check_raises "empty" (Invalid_argument "Detection.v: empty")
    (fun () -> ignore (C.Detection.v []));
  Alcotest.check_raises "primes" (Invalid_argument "Detection.standard: primes < 1")
    (fun () -> ignore (C.Detection.standard ~victim:0 ~primes:0))

let test_detection_lowering () =
  let cond = C.Detection.retention ~victim:1 ~pause:1e-3 in
  (match C.Detection.ops cond with
  | [ O.W1; O.Pause p; O.R ] -> Alcotest.(check (float 0.0)) "pause" 1e-3 p
  | _ -> Alcotest.fail "lowering");
  Alcotest.(check (list int)) "expected reads" [ 1 ]
    (C.Detection.expected_reads cond)

let test_detection_initial_vc () =
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  (* first write is w1: start from its complement, physical 0 *)
  let d_true = D.v open_kind D.True_bl 1e5 in
  Alcotest.(check (float 0.0)) "true placement" 0.0
    (C.Detection.initial_vc cond ~stress:nominal ~defect:d_true);
  let d_comp = D.v open_kind D.Comp_bl 1e5 in
  Alcotest.(check (float 0.0)) "comp placement" nominal.S.vdd
    (C.Detection.initial_vc cond ~stress:nominal ~defect:d_comp)

let test_detects_open () =
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  let big = D.v open_kind D.True_bl 500e3 in
  let small = D.v open_kind D.True_bl 10e3 in
  Alcotest.(check bool) "500k detected" true
    (C.Detection.detects ~stress:nominal ~defect:big cond);
  Alcotest.(check bool) "10k escapes" false
    (C.Detection.detects ~stress:nominal ~defect:small cond)

(* ------------------------------------------------------------------ *)
(* Border                                                              *)
(* ------------------------------------------------------------------ *)

let test_border_open () =
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  match
    C.Border.search ~r_max:1e8 ~stress:nominal ~kind:open_kind
      ~placement:D.True_bl cond
  with
  | C.Border.Br r ->
    Alcotest.(check bool)
      (Printf.sprintf "BR %.0f kOhm in the paper's regime" (r /. 1e3))
      true
      (r > 80e3 && r < 400e3)
  | other ->
    Alcotest.failf "expected Br, got %s"
      (Format.asprintf "%a" C.Border.pp_result other)

let test_border_true_comp_symmetry () =
  let br placement victim =
    let cond = C.Detection.standard ~victim ~primes:2 in
    C.Border.search ~r_max:1e8 ~stress:nominal ~kind:open_kind ~placement cond
  in
  match (br D.True_bl 0, br D.Comp_bl 1) with
  | C.Border.Br a, C.Border.Br b ->
    Alcotest.(check bool)
      (Printf.sprintf "true %.0fk ~ comp %.0fk" (a /. 1e3) (b /. 1e3))
      true
      (Float.abs (a -. b) /. a < 0.05)
  | _ -> Alcotest.fail "expected boundaries on both placements"

let test_border_band_for_neighbour_bridge () =
  (* only an interior resistance band is detectable: a hard bridge zeroes
     the aggressor during the victim write, a weak one cannot couple in
     time. Needs the hot SC -- at room temperature B2 escapes entirely. *)
  let cond = C.Detection.retention ~victim:0 ~pause:1e-3 in
  match
    C.Border.search ~stress:(S.with_temp_c nominal 87.0)
      ~kind:D.Bridge_to_neighbour ~placement:D.True_bl cond
  with
  | C.Border.Faulty_band { lo; hi } ->
    Alcotest.(check bool) "interior band" true (lo > 1e3 && hi < 1e11 && lo < hi)
  | other ->
    Alcotest.failf "expected a band, got %s"
      (Format.asprintf "%a" C.Border.pp_result other)

let test_border_helpers () =
  let pol = D.High_r_fails in
  Alcotest.(check bool) "lower BR better for opens" true
    (C.Border.better pol (C.Border.Br 1e5) (C.Border.Br 2e5));
  Alcotest.(check bool) "always beats Br" true
    (C.Border.better pol C.Border.Always_faulty (C.Border.Br 1e5));
  Alcotest.(check bool) "never loses" true
    (C.Border.better pol (C.Border.Br 1e5) C.Border.Never_faulty);
  (match
     C.Border.improvement pol ~nominal:(C.Border.Br 2e5)
       ~stressed:(C.Border.Br 5e4)
   with
  | Some f -> Alcotest.(check (float 1e-9)) "4x" 4.0 f
  | None -> Alcotest.fail "expected improvement");
  (match
     C.Border.improvement D.Low_r_fails ~nominal:(C.Border.Br 1e6)
       ~stressed:(C.Border.Br 1e9)
   with
  | Some f -> Alcotest.(check (float 1e-6)) "1000x" 1000.0 f
  | None -> Alcotest.fail "expected improvement");
  Alcotest.(check bool) "never -> none" true
    (C.Border.improvement pol ~nominal:C.Border.Never_faulty
       ~stressed:(C.Border.Br 1e5)
    = None);
  (match
     C.Border.covered_range D.Low_r_fails (C.Border.Br 1e6) ~r_min:1e3
       ~r_max:1e9
   with
  | Some (lo, hi) ->
    Alcotest.(check (float 0.0)) "lo" 1e3 lo;
    Alcotest.(check (float 0.0)) "hi" 1e6 hi
  | None -> Alcotest.fail "expected range")

(* classification core: a synthetic [refine] that bisects geometrically,
   so expected edge positions are computable in the test *)
let geo_refine r0 r1 = C.Border.Exact (sqrt (r0 *. r1))

let of_samples = C.Border.of_samples ~refine:geo_refine ~r_min:1e3 ~r_max:1e9

let test_of_samples_single_edges () =
  (* detected from r_min up to one edge: the band touches the range
     start, so the honest summary is a single boundary *)
  (match
     of_samples
       [ (1e3, Some true); (1e4, Some true); (1e5, Some false);
         (1e6, Some false) ]
   with
  | C.Border.Br e ->
    Alcotest.(check (float 0.0)) "edge between the flip" (sqrt (1e4 *. 1e5)) e
  | other ->
    Alcotest.failf "expected Br, got %a" C.Border.pp_result other);
  (* detected from one edge up to r_max *)
  (match
     of_samples [ (1e3, Some false); (1e4, Some false); (1e5, Some true) ]
   with
  | C.Border.Br e ->
    Alcotest.(check (float 0.0)) "edge" (sqrt (1e4 *. 1e5)) e
  | other -> Alcotest.failf "expected Br, got %a" C.Border.pp_result other);
  (* degenerate grids *)
  Alcotest.(check bool) "all detected" true
    (of_samples [ (1e3, Some true); (1e6, Some true) ] = C.Border.Always_faulty);
  Alcotest.(check bool) "none detected" true
    (of_samples [ (1e3, Some false); (1e6, Some false) ]
    = C.Border.Never_faulty);
  Alcotest.(check bool) "no known sample" true
    (of_samples [ (1e3, None); (1e6, None) ] = C.Border.Unsampled)

let test_of_samples_interior_band () =
  match
    of_samples
      [ (1e3, Some false); (1e4, Some true); (1e5, Some true);
        (1e6, Some false) ]
  with
  | C.Border.Faulty_band { lo; hi } ->
    Alcotest.(check (float 0.0)) "lower edge" (sqrt (1e3 *. 1e4)) lo;
    Alcotest.(check (float 0.0)) "upper edge" (sqrt (1e5 *. 1e6)) hi
  | other ->
    Alcotest.failf "expected Faulty_band, got %a" C.Border.pp_result other

let test_of_samples_two_bands () =
  (* detected / undetected / detected: the multi-edge shape older
     revisions collapsed into a single bogus [Br last] *)
  match
    of_samples
      [ (1e3, Some true); (1e4, Some false); (1e5, Some false);
        (1e6, Some true); (1e7, Some true) ]
  with
  | C.Border.Bands [ b1; b2 ] ->
    Alcotest.(check bool) "first band opens at r_min" true
      (b1.C.Border.b_lo = C.Border.Exact 1e3);
    Alcotest.(check bool) "first band closes at the first flip" true
      (b1.C.Border.b_hi = C.Border.Exact (sqrt (1e3 *. 1e4)));
    Alcotest.(check bool) "second band opens at the second flip" true
      (b2.C.Border.b_lo = C.Border.Exact (sqrt (1e5 *. 1e6)));
    Alcotest.(check bool) "second band runs to r_max" true
      (b2.C.Border.b_hi = C.Border.Exact 1e9)
  | other -> Alcotest.failf "expected two bands, got %a" C.Border.pp_result other

let test_of_samples_skips_failed () =
  (* a failed sample between two known ones: the transition is taken
     between the KNOWN neighbours, not dropped and not fatal *)
  match
    of_samples [ (1e3, Some true); (1e4, None); (1e5, Some false) ]
  with
  | C.Border.Br e ->
    Alcotest.(check (float 0.0)) "edge brackets skip the failed point"
      (sqrt (1e3 *. 1e5)) e
  | other -> Alcotest.failf "expected Br, got %a" C.Border.pp_result other

let test_of_samples_unknown_edge () =
  (* refinement failure: the edge degrades to its bracketing samples and
     the band surfaces as Bands so the uncertainty is visible *)
  let unknown_refine r0 r1 = C.Border.Unknown { lo = r0; hi = r1 } in
  (match
     C.Border.of_samples ~refine:unknown_refine ~r_min:1e3 ~r_max:1e9
       [ (1e3, Some false); (1e4, Some true); (1e5, Some false) ]
   with
  | C.Border.Bands
      [
        {
          b_lo = C.Border.Unknown { lo = l1; hi = h1 };
          b_hi = C.Border.Unknown { lo = l2; hi = h2 };
        };
      ] ->
    Alcotest.(check (float 0.0)) "lo bracket lo" 1e3 l1;
    Alcotest.(check (float 0.0)) "lo bracket hi" 1e4 h1;
    Alcotest.(check (float 0.0)) "hi bracket lo" 1e4 l2;
    Alcotest.(check (float 0.0)) "hi bracket hi" 1e5 h2
  | other ->
    Alcotest.failf "expected one unknown-edged band, got %a" C.Border.pp_result
      other);
  Alcotest.(check (float 0.0)) "edge_mid is geometric" (sqrt (1e3 *. 1e5))
    (C.Border.edge_mid (C.Border.Unknown { lo = 1e3; hi = 1e5 }))

let test_border_codec_roundtrip () =
  let results =
    [
      C.Border.Br 1.234e5;
      C.Border.Faulty_band { lo = 3.7e3; hi = 9.81e7 };
      C.Border.Bands
        [
          { b_lo = C.Border.Exact 1e3;
            b_hi = C.Border.Unknown { lo = 2e3; hi = 5e3 } };
          { b_lo = C.Border.Exact 4.44e6; b_hi = C.Border.Exact 1e9 };
        ];
      C.Border.Always_faulty;
      C.Border.Never_faulty;
      C.Border.Unsampled;
    ]
  in
  List.iter
    (fun r ->
      let s = C.Border.encode_result r in
      match C.Border.decode_result s with
      | Some r' ->
        Alcotest.(check bool) (Printf.sprintf "roundtrip %s" s) true (r = r')
      | None -> Alcotest.failf "decode failed on %s" s)
    results;
  Alcotest.(check bool) "foreign string rejected" true
    (C.Border.decode_result "garbage 1 2 3" = None);
  Alcotest.(check bool) "empty rejected" true (C.Border.decode_result "" = None)

let test_improvement_log_decades () =
  (* regression for the linear-width fallback: band growth must be
     measured in log decades, like the BR-ratio case. 1e4..1e5 ->
     1e4..1e7 is 3x in decades; the old linear (hi - lo) ratio said
     ~111x *)
  let pol = D.High_r_fails in
  (match
     C.Border.improvement pol
       ~nominal:(C.Border.Faulty_band { lo = 1e4; hi = 1e5 })
       ~stressed:(C.Border.Faulty_band { lo = 1e4; hi = 1e7 })
   with
  | Some f -> Alcotest.(check (float 1e-9)) "3 decades / 1 decade" 3.0 f
  | None -> Alcotest.fail "expected improvement");
  (* mixed Br / band shapes are commensurable on the same axis: Br 1e5
     covers 1e5..1e11 = 6 decades, the band 1e3..1e9 also 6 decades *)
  (match
     C.Border.improvement pol ~nominal:(C.Border.Br 1e5)
       ~stressed:(C.Border.Faulty_band { lo = 1e3; hi = 1e9 })
   with
  | Some f -> Alcotest.(check (float 1e-9)) "equal coverage" 1.0 f
  | None -> Alcotest.fail "expected improvement");
  (* Unsampled behaves like Never_faulty: no comparison is honest *)
  Alcotest.(check bool) "unsampled -> none" true
    (C.Border.improvement pol ~nominal:C.Border.Unsampled
       ~stressed:(C.Border.Br 1e5)
    = None);
  (* multi-band coverage sums the decades of every band *)
  let two_bands =
    C.Border.Bands
      [
        { b_lo = C.Border.Exact 1e3; b_hi = C.Border.Exact 1e4 };
        { b_lo = C.Border.Exact 1e6; b_hi = C.Border.Exact 1e8 };
      ]
  in
  Alcotest.(check (float 1e-9)) "1 + 2 decades" 3.0
    (C.Border.coverage_width pol two_bands)

(* ------------------------------------------------------------------ *)
(* Planes                                                              *)
(* ------------------------------------------------------------------ *)

let small_rops = Dramstress_util.Grid.logspace 1e3 1e6 6

let test_vmp_reasonable () =
  let v = C.Plane.vmp ~stress:nominal () in
  Alcotest.(check bool) (Printf.sprintf "vmp %.2f" v) true (v > 0.5 && v < 1.9)

let test_vsa_declines_with_r () =
  let vsa r =
    C.Plane.vsa ~stress:nominal ~defect:(D.v open_kind D.True_bl r) ()
  in
  match (vsa 1e3, vsa 300e3) with
  | C.Plane.Vsa low_r, C.Plane.Vsa high_r ->
    Alcotest.(check bool)
      (Printf.sprintf "%.2f -> %.2f" low_r high_r)
      true (high_r < low_r)
  | C.Plane.Vsa _, C.Plane.Reads_all_1 -> ()  (* collapsed: also declining *)
  | _ -> Alcotest.fail "unexpected saturation at low R"

let test_vsa_collapses_to_all_1 () =
  (* the paper's footnote: at large opens a stored 0 cannot pull the
     precharged bit line down, everything reads 1 *)
  match
    C.Plane.vsa ~stress:nominal ~defect:(D.v open_kind D.True_bl 1e8) ()
  with
  | C.Plane.Reads_all_1 -> ()
  | other ->
    Alcotest.failf "expected Reads_all_1, got %s"
      (match other with
      | C.Plane.Vsa v -> Printf.sprintf "Vsa %.2f" v
      | C.Plane.Reads_all_0 -> "Reads_all_0"
      | C.Plane.Reads_all_1 -> assert false)

let test_write_plane_structure () =
  let plane =
    C.Plane.write_plane ~n_ops:3 ~rops:small_rops ~stress:nominal
      ~kind:open_kind ~placement:D.True_bl ~op:O.W0 ()
  in
  Alcotest.(check int) "three curves" 3 (List.length plane.C.Plane.curves);
  List.iter
    (fun (c : C.Plane.curve) ->
      Alcotest.(check int) "one point per R" (List.length small_rops)
        (List.length c.C.Plane.points))
    plane.C.Plane.curves;
  (* successive w0 curves must be monotone: each op discharges further *)
  match plane.C.Plane.curves with
  | first :: second :: _ ->
    List.iter2
      (fun (p1 : C.Plane.point) (p2 : C.Plane.point) ->
        Alcotest.(check bool) "second w0 lower" true
          (p2.C.Plane.vc <= p1.C.Plane.vc +. 1e-3))
      first.C.Plane.points second.C.Plane.points
  | _ -> Alcotest.fail "missing curves"

let test_write_plane_rejects_read () =
  Alcotest.check_raises "read op"
    (Invalid_argument "Plane.write_plane: op must be a write") (fun () ->
      ignore
        (C.Plane.write_plane ~stress:nominal ~kind:open_kind
           ~placement:D.True_bl ~op:O.R ()))

let test_br_geometric_matches_search () =
  let plane =
    C.Plane.write_plane ~n_ops:2
      ~rops:(Dramstress_util.Grid.logspace 3e4 2e6 10)
      ~stress:nominal ~kind:open_kind ~placement:D.True_bl ~op:O.W0 ()
  in
  match C.Plane.br_geometric plane with
  | Some br_geo ->
    let cond = C.Detection.standard ~victim:0 ~primes:2 in
    (match
       C.Border.search ~r_max:1e8 ~stress:nominal ~kind:open_kind
         ~placement:D.True_bl cond
     with
    | C.Border.Br br_search ->
      Alcotest.(check bool)
        (Printf.sprintf "geometric %.0fk vs search %.0fk" (br_geo /. 1e3)
           (br_search /. 1e3))
        true
        (br_geo /. br_search < 3.0 && br_search /. br_geo < 3.0)
    | _ -> Alcotest.fail "search found no boundary")
  | None -> Alcotest.fail "no geometric intersection"

let test_read_plane_structure () =
  let plane =
    C.Plane.read_plane ~n_ops:2 ~rops:small_rops ~stress:nominal
      ~kind:open_kind ~placement:D.True_bl ()
  in
  (* two seeds x two ops *)
  Alcotest.(check int) "four curves" 4 (List.length plane.C.Plane.curves)

let test_plane_survives_injected_failure () =
  (* the acceptance shape of the resilience tentpole: one point that can
     never be simulated (negative resistance -> Defect.v raises) must
     leave exactly one [Failed] slot and a plane built from the rest *)
  let bad_r = -1.0 in
  let rops = [ 1e3; bad_r; 1e5; 1e6 ] in
  let plane =
    C.Plane.write_plane ~jobs:1 ~n_ops:2 ~rops ~stress:nominal
      ~kind:open_kind ~placement:D.True_bl ~op:Dramstress_dram.Ops.W0 ()
  in
  let module Out = Dramstress_util.Outcome in
  (match plane.C.Plane.failures with
  | [ f ] ->
    Alcotest.(check (float 0.0)) "failed point recorded" bad_r f.Out.point;
    Alcotest.(check int) "no retries for a non-solver error" 0 f.Out.retries;
    (match f.Out.error with
    | Invalid_argument _ -> ()
    | e -> Alcotest.failf "unexpected error %s" (Printexc.to_string e))
  | fs -> Alcotest.failf "expected exactly one failure, got %d" (List.length fs));
  Alcotest.(check (list (float 0.0))) "survivors in order" [ 1e3; 1e5; 1e6 ]
    plane.C.Plane.rops;
  List.iter
    (fun (c : C.Plane.curve) ->
      Alcotest.(check int) "curves skip the failed point" 3
        (List.length c.C.Plane.points))
    plane.C.Plane.curves;
  Alcotest.(check int) "vsa curve too" 3 (List.length plane.C.Plane.vsa_curve)

let test_plane_all_points_failed_renders () =
  (* regression: a campaign whose every point times out must still
     render and report. The shared defect-free V_mp probe is exempt
     from the per-point deadline, and the geometric BR degrades to "no
     crossing" instead of crashing on empty curves. *)
  let module Sc = Dramstress_dram.Sim_config in
  let config = Sc.v ~jobs:1 ~retry:Sc.no_retry ~deadline:1e-9 () in
  let rops = [ 1e3; 1e5; 1e6 ] in
  let rendered, failures =
    C.Report.figure2_with_failures ~config ~rops ~stress:nominal
      ~kind:open_kind ~placement:D.True_bl ()
  in
  Alcotest.(check int) "every point of all three planes failed"
    (3 * List.length rops)
    (List.length failures);
  List.iter
    (fun f ->
      match f.Dramstress_util.Outcome.error with
      | Dramstress_engine.Newton.Timeout _ -> ()
      | e ->
        Alcotest.failf "expected a timeout failure, got %s"
          (Printexc.to_string e))
    failures;
  let contains sub =
    let n = String.length rendered and m = String.length sub in
    let rec go i = i + m <= n && (String.sub rendered i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "failed points are listed, not hidden" true
    (contains "point(s) failed");
  Alcotest.(check bool) "BR degrades to no-crossing" true
    (contains "no crossing")

let test_plane_checkpoint_resume_identical () =
  let path = Filename.temp_file "dramstress_plane" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let module Ck = Dramstress_util.Checkpoint in
      let sweep ?checkpoint () =
        C.Plane.write_plane ~jobs:1 ~n_ops:2 ~rops:small_rops ?checkpoint
          ~stress:nominal ~kind:open_kind ~placement:D.True_bl
          ~op:Dramstress_dram.Ops.W0 ()
      in
      let reference = sweep () in
      let ck = Ck.open_ path in
      let full = sweep ~checkpoint:ck () in
      Ck.close ck;
      Alcotest.(check bool) "checkpointed run matches plain run" true
        (full = reference);
      (* simulate a mid-sweep kill: keep only half the records *)
      let lines =
        let ic = open_in path in
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file ->
            close_in ic;
            List.rev acc
        in
        go []
      in
      Alcotest.(check int) "one record per point" (List.length small_rops)
        (List.length lines);
      let keep = List.filteri (fun i _ -> i < 3) lines in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      close_out oc;
      (* resume: recomputes the dropped tail, serves the kept head *)
      let ck = Ck.open_ ~resume:true path in
      Alcotest.(check int) "partial store" 3 (Ck.entries ck);
      let resumed = sweep ~checkpoint:ck () in
      Ck.close ck;
      Alcotest.(check bool) "resumed plane identical to uninterrupted" true
        (resumed = reference);
      let ck = Ck.open_ ~resume:true path in
      Alcotest.(check int) "store complete again" (List.length small_rops)
        (Ck.entries ck);
      Ck.close ck)

(* ------------------------------------------------------------------ *)
(* Stressor                                                            *)
(* ------------------------------------------------------------------ *)

let detection_for kind placement =
  C.Detection.standard ~victim:(D.logical_victim kind placement) ~primes:2

let test_probe_cycle_time () =
  let p =
    C.Stressor.probe_axis ~stress:nominal ~kind:open_kind
      ~placement:D.True_bl
      ~detection:(detection_for open_kind D.True_bl)
      S.Cycle_time [ 55e-9; 60e-9 ]
  in
  (* shorter cycle leaves a larger residual: the metric falls with the
     axis, so the stressful direction is "decrease" *)
  Alcotest.(check bool) "verdict decrease" true
    (p.C.Stressor.verdict = C.Stressor.Decrease);
  Alcotest.(check bool) "write direction decrease" true
    (p.C.Stressor.write_direction = C.Stressor.Decrease)

let test_probe_vdd_resolves_by_br () =
  let p =
    C.Stressor.probe_axis ~stress:nominal ~kind:open_kind
      ~placement:D.True_bl
      ~detection:(detection_for open_kind D.True_bl)
      S.Supply_voltage [ 2.1; 2.4; 2.7 ]
  in
  (* the paper's conflict: the write wants Vdd up, the read wants it
     down; the verdict must come from a BR comparison *)
  Alcotest.(check bool) "conflicting probes" true
    (p.C.Stressor.write_direction = C.Stressor.Increase);
  Alcotest.(check bool) "resolved via BR" true
    (p.C.Stressor.br_at_extremes <> [])

let test_probe_validation () =
  Alcotest.check_raises "one value"
    (Invalid_argument "Stressor.probe_axis: need at least two values")
    (fun () ->
      ignore
        (C.Stressor.probe_axis ~stress:nominal ~kind:open_kind
           ~placement:D.True_bl
           ~detection:(detection_for open_kind D.True_bl)
           S.Cycle_time [ 60e-9 ]))

let test_apply_verdict () =
  let p =
    C.Stressor.probe_axis ~stress:nominal ~kind:open_kind
      ~placement:D.True_bl
      ~detection:(detection_for open_kind D.True_bl)
      S.Cycle_time [ 55e-9; 60e-9 ]
  in
  let sc = C.Stressor.apply_verdict p ~stress:nominal in
  Alcotest.(check (float 1e-12)) "tcyc nudged down" 55e-9 sc.S.tcyc

let test_default_values () =
  (match C.Stressor.default_values S.Temperature ~stress:nominal with
  | [ a; b; c ] ->
    Alcotest.(check (float 1e-9)) "-33" (-33.0) a;
    Alcotest.(check (float 1e-9)) "27" 27.0 b;
    Alcotest.(check (float 1e-9)) "87" 87.0 c
  | _ -> Alcotest.fail "temperature candidates");
  match C.Stressor.default_values S.Cycle_time ~stress:nominal with
  | [ a; b ] ->
    Alcotest.(check (float 1e-12)) "55 ns" 55e-9 a;
    Alcotest.(check (float 1e-12)) "60 ns" 60e-9 b
  | _ -> Alcotest.fail "tcyc candidates"

(* ------------------------------------------------------------------ *)
(* SC evaluation + Table 1                                             *)
(* ------------------------------------------------------------------ *)

let test_sc_eval_open () =
  let e =
    C.Sc_eval.evaluate ~nominal ~kind:open_kind ~placement:D.True_bl ()
  in
  (match (e.C.Sc_eval.nominal_br, e.C.Sc_eval.stressed_br) with
  | C.Border.Br nom, C.Border.Br str ->
    Alcotest.(check bool)
      (Printf.sprintf "stressed %.0fk < nominal %.0fk" (str /. 1e3)
         (nom /. 1e3))
      true (str < nom)
  | _ -> Alcotest.fail "expected boundaries");
  (match e.C.Sc_eval.improvement with
  | Some f -> Alcotest.(check bool) "coverage grew" true (f > 1.2)
  | None -> Alcotest.fail "expected improvement");
  (* the stressed SC must include the shorter cycle *)
  Alcotest.(check bool) "tcyc reduced" true
    (e.C.Sc_eval.stressed.S.tcyc < nominal.S.tcyc)

let test_sc_eval_short_uses_retention () =
  let e =
    C.Sc_eval.evaluate ~nominal ~kind:D.Short_to_gnd ~placement:D.True_bl ()
  in
  let has_pause cond =
    List.exists
      (function C.Detection.Wait _ -> true | _ -> false)
      cond.C.Detection.steps
  in
  Alcotest.(check bool) "nominal pause-free" false
    (has_pause e.C.Sc_eval.nominal_detection);
  Alcotest.(check bool) "stressed uses retention" true
    (has_pause e.C.Sc_eval.stressed_detection);
  match e.C.Sc_eval.improvement with
  | Some f ->
    Alcotest.(check bool)
      (Printf.sprintf "orders of magnitude (%.0fx)" f)
      true (f > 100.0)
  | None -> Alcotest.fail "expected improvement"

let test_candidate_detections_placement () =
  let conds =
    C.Sc_eval.candidate_detections ~allow_pause:false ~placement:D.Comp_bl
      open_kind
  in
  (* comp placement: victims invert, so the victim write is w1 *)
  List.iter
    (fun (c : C.Detection.t) ->
      let has_r1 =
        List.exists (function C.Detection.Read 1 -> true | _ -> false)
          c.C.Detection.steps
      in
      Alcotest.(check bool) "reads expect 1" true has_r1)
    conds

let test_exhaustive_small_grid () =
  let detection = C.Detection.standard ~victim:0 ~primes:2 in
  let before = Dramstress_dram.Ops.run_count () in
  let result =
    C.Exhaustive.optimize ~tcyc_values:[ 55e-9; 60e-9 ] ~temp_values:[ 27.0 ]
      ~vdd_values:[ 2.4 ] ~nominal ~kind:open_kind ~placement:D.True_bl
      detection
  in
  Alcotest.(check int) "grid size" 2 result.C.Exhaustive.grid_size;
  Alcotest.(check int) "ranking size" 2
    (List.length result.C.Exhaustive.ranking);
  Alcotest.(check bool) "simulations counted" true
    (result.C.Exhaustive.simulations > 0
    && Dramstress_dram.Ops.run_count () - before
       >= result.C.Exhaustive.simulations);
  (* the shorter cycle must win for an open *)
  Alcotest.(check (float 1e-12)) "best tcyc" 55e-9
    result.C.Exhaustive.best.S.tcyc;
  match result.C.Exhaustive.best_br with
  | C.Border.Br r -> Alcotest.(check bool) "finite BR" true (r > 1e4)
  | _ -> Alcotest.fail "expected a boundary"

let test_run_counter () =
  Dramstress_dram.Ops.reset_run_count ();
  ignore (Dramstress_dram.Ops.run ~stress:nominal [ Dramstress_dram.Ops.W0 ]);
  ignore (Dramstress_dram.Ops.run ~stress:nominal [ Dramstress_dram.Ops.R ]);
  Alcotest.(check int) "two runs" 2 (Dramstress_dram.Ops.run_count ())

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_report_figure2 () =
  let out =
    C.Report.figure2
      ~rops:(Dramstress_util.Grid.logspace 1e4 1e6 5)
      ~stress:nominal ~kind:open_kind ~placement:D.True_bl ()
  in
  Alcotest.(check bool) "w0 panel" true (contains out "(a) Plane of w0");
  Alcotest.(check bool) "w1 panel" true (contains out "(b) Plane of w1");
  Alcotest.(check bool) "r panel" true (contains out "(c) Plane of r");
  Alcotest.(check bool) "vsa legend" true (contains out "[S] Vsa");
  Alcotest.(check bool) "geometric BR line" true (contains out "geometric BR")

let test_report_panels () =
  let out =
    C.Report.figure_st_panels ~stress:nominal ~axis:S.Cycle_time
      ~values:[ 55e-9; 60e-9 ] ~kind:open_kind ~placement:D.True_bl ()
  in
  Alcotest.(check bool) "write panel" true (contains out "Vc during a w0");
  Alcotest.(check bool) "read panel" true (contains out "marginal cell");
  Alcotest.(check bool) "legend per value" true (contains out "t_cyc=5.5e-08")

let test_plane_csv () =
  let plane =
    C.Plane.write_plane ~n_ops:2 ~rops:small_rops ~stress:nominal
      ~kind:open_kind ~placement:D.True_bl ~op:O.W0 ()
  in
  let csv = C.Report.plane_csv plane in
  Alcotest.(check bool) "header" true (contains csv "r_ohm");
  Alcotest.(check bool) "vsa column" true (contains csv "vsa");
  (* one data row per resistance plus the header *)
  let lines =
    String.split_on_char '\n' (String.trim csv) |> List.length
  in
  Alcotest.(check int) "rows" (1 + List.length small_rops) lines

let test_table1_quick () =
  let entries =
    List.filter (fun (e : D.entry) -> e.D.id = "O1") D.catalog
  in
  let table = C.Table1.generate ~entries ~placements:[ D.True_bl ] () in
  Alcotest.(check int) "one row" 1 (List.length table.C.Table1.rows);
  let text = C.Table1.render table in
  let csv = C.Table1.to_csv table in
  Alcotest.(check bool) "render has header" true
    (String.length text > 100);
  Alcotest.(check bool) "csv header" true
    (String.length csv > 50 && String.sub csv 0 6 = "defect")

(* ------------------------------------------------------------------ *)
(* Batched sweeps: golden parity with the scalar path                  *)
(* ------------------------------------------------------------------ *)

let test_batched_sweeps_match_scalar () =
  (* with memoization off so both configurations really simulate, a
     border search and a write plane must come out identical whether
     the points run through the scalar path (lanes = 1) or the batched
     ensemble (lanes = 8) *)
  let module Sc = Dramstress_dram.Sim_config in
  let scalar = Sc.v ~lanes:1 () in
  let batched = Sc.v ~lanes:8 () in
  O.set_caching false;
  Fun.protect ~finally:(fun () -> O.set_caching true) @@ fun () ->
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  let br config =
    C.Border.search ~config ~r_max:1e8 ~stress:nominal ~kind:open_kind
      ~placement:D.True_bl cond
  in
  Alcotest.(check bool) "border search identical" true
    (C.Border.equal_result (br scalar) (br batched));
  let plane config =
    C.Plane.write_plane ~config ~jobs:1 ~n_ops:2
      ~rops:[ 1e4; 1e5; 1e6; 1e7 ] ~stress:nominal ~kind:D.Short_to_gnd
      ~placement:D.True_bl ~op:O.W0 ()
  in
  let ps = plane scalar and pb = plane batched in
  (* the shared-ensemble LU uses one pivot order for the whole batch
     while each scalar point factors with its own, so voltages agree to
     rounding (1e-9), not bit-exactly; the grid itself is exact *)
  Alcotest.(check (float 1e-9)) "vmp matches" ps.C.Plane.vmp pb.C.Plane.vmp;
  Alcotest.(check (list (float 0.0)))
    "surviving resistances identical" ps.C.Plane.rops pb.C.Plane.rops;
  List.iter2
    (fun (cs : C.Plane.curve) (cb : C.Plane.curve) ->
      Alcotest.(check string) "curve label" cs.C.Plane.label cb.C.Plane.label;
      List.iter2
        (fun (p : C.Plane.point) (q : C.Plane.point) ->
          Alcotest.(check (float 0.0)) "point r" p.C.Plane.r q.C.Plane.r;
          Alcotest.(check (float 1e-9)) "point vc" p.C.Plane.vc q.C.Plane.vc)
        cs.C.Plane.points cb.C.Plane.points)
    ps.C.Plane.curves pb.C.Plane.curves

(* ------------------------------------------------------------------ *)
(* Adaptive border search                                               *)
(* ------------------------------------------------------------------ *)

let coarse = C.Border.Window.coarse_points

(* drive [adaptive_scan] over a synthetic boolean curve; indices listed
   in [fail] probe as unsimulatable *)
let scan_curve ?(fail = []) ?(seeds = []) curve =
  let n = Array.length curve in
  C.Border.adaptive_scan ~n ~coarse ~seeds (fun idxs ->
      List.map
        (fun i -> (i, if List.mem i fail then None else Some curve.(i)))
        idxs)

(* classify sampled indices through [of_samples] on a synthetic grid;
   the pure refine means equal bracket pairs give equal results — the
   same argument that makes the electrical strategies bit-identical *)
let classify n samples =
  let r_of i = float_of_int (i + 1) in
  C.Border.of_samples
    ~refine:(fun r0 r1 -> C.Border.Exact (sqrt (r0 *. r1)))
    ~r_min:(r_of 0) ~r_max:(r_of (n - 1))
    (List.map (fun (i, v) -> (r_of i, v)) samples)

let grid_samples curve =
  List.init (Array.length curve) (fun i -> (i, Some curve.(i)))

(* the provable curve class: at most one detection transition per
   skeleton interval — every maximal run of equal values touches a
   skeleton index. Includes non-monotone multi-band curves (up to one
   flip per gap = up to two interior bands). On this class adaptive
   equals grid EXACTLY, whatever extra seeds are mixed in. *)
let provable_curve_gen =
  let open QCheck.Gen in
  let seq gens =
    List.fold_right
      (fun g acc -> g >>= fun x -> acc >>= fun xs -> return (x :: xs))
      gens (return [])
  in
  int_range coarse 64 >>= fun n ->
  bool >>= fun init ->
  let skeleton = List.init coarse (fun k -> k * (n - 1) / (coarse - 1)) in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  let gap_gen (a, b) =
    if b <= a + 1 then return None
    else
      frequency
        [ (1, return None); (2, map Option.some (int_range (a + 1) b)) ]
  in
  seq (List.map gap_gen (pairs skeleton)) >>= fun flips ->
  let flips = List.filter_map Fun.id flips in
  return
    (Array.init n (fun i ->
         let crossed = List.length (List.filter (fun t -> t <= i) flips) in
         if crossed mod 2 = 0 then init else not init))

let test_adaptive_scan_parity_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500
       ~name:"adaptive == grid on the provable class, under any seeds"
       (QCheck.make
          QCheck.Gen.(
            pair provable_curve_gen (small_list (int_range (-3) 80))))
       (fun (curve, seeds) ->
         let n = Array.length curve in
         let adaptive = classify n (scan_curve ~seeds curve) in
         let grid = classify n (grid_samples curve) in
         C.Border.equal_result adaptive grid))

let test_adaptive_scan_probes_sparse_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"adaptive probes strictly fewer points on featureless curves"
       (QCheck.make (QCheck.Gen.int_range 16 64))
       (fun n ->
         (* a flat curve needs the skeleton only *)
         let curve = Array.make n false in
         List.length (scan_curve curve) = coarse))

let test_adaptive_scan_escalates_on_failure () =
  (* one lost probe makes the sparse skip pattern untrustworthy: the
     scan must fall back to the full grid so failure-path semantics
     (skipped samples, Unknown edges) match the oracle exactly *)
  let curve = Array.init 33 (fun i -> i >= 20) in
  let sampled = scan_curve ~fail:[ 8 ] curve in
  Alcotest.(check int) "all indices probed" 33 (List.length sampled);
  Alcotest.(check bool) "failed index is None" true
    (List.assoc 8 sampled = None);
  Alcotest.(check bool) "classification matches oracle with same failure"
    true
    (C.Border.equal_result
       (classify 33 sampled)
       (classify 33
          (List.init 33 (fun i ->
               (i, if i = 8 then None else Some curve.(i))))))

let test_adaptive_scan_seeds_reveal_narrow_band () =
  (* the documented caveat, pinned: a band narrower than the skeleton
     spacing hides from a cold adaptive scan (grid stays the oracle),
     but a warm-start seed inside it restores full grid parity *)
  let n = 17 in
  let curve = Array.init n (fun i -> i = 6) in
  let cold = classify n (scan_curve curve) in
  let seeded = classify n (scan_curve ~seeds:[ 6 ] curve) in
  let grid = classify n (grid_samples curve) in
  Alcotest.(check bool) "cold adaptive misses the hidden band" true
    (C.Border.equal_result cold C.Border.Never_faulty);
  Alcotest.(check bool) "seeded adaptive equals grid" true
    (C.Border.equal_result seeded grid)

(* capped at 1e8: beyond ~4e8 the solver legitimately fails on opens,
   and a failed skeleton probe escalates the adaptive scan to the full
   grid (parity still holds, but the sparseness assertions would be
   vacuous) *)
let parity_window strategy =
  C.Border.Window.v ~r_min:1e3 ~r_max:1e8 ~grid_points:9 ~rel_tol:0.05
    ~strategy ()

let test_border_adaptive_matches_grid_catalog () =
  (* every defect class and placement in the catalog must report the
     same border under both strategies — the electrical face of the
     parity property *)
  List.iter
    (fun (entry : D.entry) ->
      List.iter
        (fun placement ->
          let cond =
            C.Detection.standard
              ~victim:(D.logical_victim entry.D.kind placement) ~primes:2
          in
          let br strategy =
            C.Border.search
              ~window:(parity_window strategy)
              ~stress:nominal ~kind:entry.D.kind ~placement cond
          in
          let g = br C.Border.Window.Grid in
          let a = br C.Border.Window.Adaptive in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: %s == %s" entry.D.id
               (Format.asprintf "%a" D.pp_placement placement)
               (Format.asprintf "%a" C.Border.pp_result g)
               (Format.asprintf "%a" C.Border.pp_result a))
            true (C.Border.equal_result g a))
        [ D.True_bl; D.Comp_bl ])
    D.catalog;
  (* the banded case too: B2 retention at the hot corner yields an
     interior band under grid mode; adaptive must agree exactly *)
  let cond = C.Detection.retention ~victim:0 ~pause:1e-3 in
  let br strategy =
    C.Border.search
      ~window:
        (C.Border.Window.v ~r_min:1e3 ~r_max:1e11 ~grid_points:13
           ~rel_tol:0.05 ~strategy ())
      ~stress:(S.with_temp_c nominal 87.0)
      ~kind:D.Bridge_to_neighbour ~placement:D.True_bl cond
  in
  let g = br C.Border.Window.Grid in
  Alcotest.(check bool) "banded result and parity" true
    ((match g with C.Border.Faulty_band _ -> true | _ -> false)
    && C.Border.equal_result g (br C.Border.Window.Adaptive))

let test_border_hint_invariance () =
  (* warm-start hints add probes, never change the answer: a good hint,
     a wrong hint and an out-of-window hint all report the cold result *)
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  let br hint =
    C.Border.search
      ~window:(parity_window C.Border.Window.Adaptive)
      ~hint ~stress:nominal ~kind:open_kind ~placement:D.True_bl cond
  in
  let cold = br [] in
  List.iter
    (fun hint ->
      Alcotest.(check bool) "hinted equals cold" true
        (C.Border.equal_result cold (br hint)))
    [ [ 2e5 ]; [ 1e8 ]; [ 1e-2 ]; [ 2e5; 1e7 ] ]

let test_border_adaptive_simulates_fewer () =
  (* the point of the strategy: on a dense window the adaptive scan
     must take well under half the grid's probes (the bench tripwire
     enforces the full >=5x claim on the campaign scale) *)
  let module Tel = Dramstress_util.Telemetry in
  let c_probes = Tel.Counter.make "core.border.probes" in
  Tel.set_enabled true;
  Fun.protect ~finally:(fun () -> Tel.set_enabled false) @@ fun () ->
  O.set_caching false;
  Fun.protect ~finally:(fun () -> O.set_caching true) @@ fun () ->
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  let probes strategy =
    let before = Tel.Counter.value c_probes in
    ignore
      (C.Border.search
         ~window:
           (C.Border.Window.v ~r_min:1e3 ~r_max:1e8 ~grid_points:33
              ~rel_tol:0.05 ~strategy ())
         ~stress:nominal ~kind:open_kind ~placement:D.True_bl cond);
    Tel.Counter.value c_probes - before
  in
  let g = probes C.Border.Window.Grid in
  let a = probes C.Border.Window.Adaptive in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %d probes < half of grid %d" a g)
    true
    (a > 0 && 2 * a < g)

let test_border_adaptive_checkpoint_resume () =
  (* kill mid-refinement: drop the whole-result record and the last
     edge record, resume, and assert the result is identical while only
     the unfinished bracket re-simulates *)
  let module Tel = Dramstress_util.Telemetry in
  let module Ck = Dramstress_util.Checkpoint in
  let c_probes = Tel.Counter.make "core.border.probes" in
  let path = Filename.temp_file "dramstress_adaptive" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Tel.set_enabled true;
      Fun.protect ~finally:(fun () -> Tel.set_enabled false) @@ fun () ->
      let cond = C.Detection.standard ~victim:0 ~primes:2 in
      let search checkpoint =
        let before = Tel.Counter.value c_probes in
        let r =
          C.Border.search ?checkpoint
            ~window:
              (C.Border.Window.v ~r_min:1e3 ~r_max:1e8 ~grid_points:17
                 ~rel_tol:0.05 ~strategy:C.Border.Window.Adaptive ())
            ~stress:nominal ~kind:open_kind ~placement:D.True_bl cond
        in
        (r, Tel.Counter.value c_probes - before)
      in
      let ck = Ck.open_ path in
      let cold, cold_probes = search (Some ck) in
      Ck.close ck;
      let lines =
        let ic = open_in path in
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file ->
            close_in ic;
            List.rev acc
        in
        go []
      in
      Alcotest.(check bool) "cold run wrote probe + edge + result records"
        true
        (List.length lines > 3);
      let keep = List.filteri (fun i _ -> i < List.length lines - 2) lines in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) keep;
      close_out oc;
      let ck = Ck.open_ ~resume:true path in
      let resumed, resumed_probes = search (Some ck) in
      Ck.close ck;
      Alcotest.(check bool) "resumed result identical" true
        (C.Border.equal_result cold resumed);
      Alcotest.(check bool)
        (Printf.sprintf "resume re-simulated only the lost bracket: %d < %d"
           resumed_probes cold_probes)
        true
        (resumed_probes > 0 && resumed_probes < cold_probes);
      (* a third run replays the completed whole-result record: free *)
      let ck = Ck.open_ ~resume:true path in
      let replayed, replay_probes = search (Some ck) in
      Ck.close ck;
      Alcotest.(check bool) "warm replay is free and identical" true
        (C.Border.equal_result cold replayed && replay_probes = 0))

let test_window_smart_constructors () =
  let module W = C.Border.Window in
  Alcotest.check_raises "r_min >= r_max rejected"
    (Invalid_argument "Border.Window.v: need 0 < r_min < r_max") (fun () ->
      ignore (W.v ~r_min:1e6 ~r_max:1e3 ()));
  Alcotest.check_raises "grid_points < 2 rejected"
    (Invalid_argument "Border.Window.v: grid_points < 2") (fun () ->
      ignore (W.v ~grid_points:1 ()));
  Alcotest.check_raises "rel_tol <= 0 rejected"
    (Invalid_argument "Border.Window.v: rel_tol <= 0") (fun () ->
      ignore (W.v ~rel_tol:0.0 ()));
  (* deprecated optionals override the matching window fields *)
  let w = W.over ~base:(W.v ~r_min:1e4 ~grid_points:25 ()) ~r_min:1e5 () in
  Alcotest.(check (float 0.0)) "override wins" 1e5 w.W.r_min;
  Alcotest.(check int) "untouched field kept" 25 w.W.grid_points;
  (* fingerprint: provably-grid adaptive windows share the grid address *)
  let g = W.v ~grid_points:5 () in
  let a5 = W.v ~grid_points:5 ~strategy:W.Adaptive () in
  let a13 = W.v ~strategy:W.Adaptive () in
  Alcotest.(check string) "coarse adaptive == grid fingerprint"
    (W.fingerprint g) (W.fingerprint a5);
  Alcotest.(check bool) "fine adaptive addresses separately" true
    (W.fingerprint a13 <> W.fingerprint (W.v ()));
  Alcotest.(check bool) "strategy names round-trip" true
    (W.strategy_of_name (W.strategy_name W.Adaptive) = Some W.Adaptive
    && W.strategy_of_name (W.strategy_name W.Grid) = Some W.Grid
    && W.strategy_of_name "bogus" = None)

let test_improvement_uses_window_tolerance () =
  (* mixed shapes whose nominal coverage is narrower than the window
     tolerance are refinement noise under the default 1%% but real
     signal under a tight window *)
  let nominal_br = C.Border.Faulty_band { lo = 1e6; hi = 1.005e6 } in
  let stressed = C.Border.Always_faulty in
  let pol = D.High_r_fails in
  Alcotest.(check bool) "noise under the default tolerance" true
    (C.Border.improvement pol ~nominal:nominal_br ~stressed = None);
  let tight = C.Border.Window.v ~rel_tol:1e-4 () in
  Alcotest.(check bool) "signal under a tight window" true
    (match C.Border.improvement ~window:tight pol ~nominal:nominal_br ~stressed with
    | Some f -> f > 1.0
    | None -> false)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "dramstress_core"
    [
      ( "detection",
        [
          tc "standard shape" test_detection_standard_shape;
          tc "validation" test_detection_validation;
          tc "lowering to ops" test_detection_lowering;
          tc "initial voltage per placement" test_detection_initial_vc;
          tc "detects an open" test_detects_open;
        ] );
      ( "border",
        [
          tc "open BR in paper regime" test_border_open;
          tc "true/comp symmetry" test_border_true_comp_symmetry;
          slow "neighbour bridge band" test_border_band_for_neighbour_bridge;
          tc "result helpers" test_border_helpers;
          tc "of_samples single edges" test_of_samples_single_edges;
          tc "of_samples interior band" test_of_samples_interior_band;
          tc "of_samples two bands" test_of_samples_two_bands;
          tc "of_samples skips failed samples" test_of_samples_skips_failed;
          tc "of_samples unknown edges" test_of_samples_unknown_edge;
          tc "result codec roundtrip" test_border_codec_roundtrip;
          tc "improvement in log decades" test_improvement_log_decades;
        ] );
      ( "adaptive",
        [
          test_adaptive_scan_parity_prop;
          test_adaptive_scan_probes_sparse_prop;
          tc "escalates to full grid on probe failure"
            test_adaptive_scan_escalates_on_failure;
          tc "seeds reveal a sub-skeleton band"
            test_adaptive_scan_seeds_reveal_narrow_band;
          slow "grid parity across the defect catalog"
            test_border_adaptive_matches_grid_catalog;
          slow "hints never change the result" test_border_hint_invariance;
          slow "adaptive simulates fewer points"
            test_border_adaptive_simulates_fewer;
          slow "checkpoint resume mid-refinement"
            test_border_adaptive_checkpoint_resume;
          tc "window constructors and fingerprints"
            test_window_smart_constructors;
          tc "improvement floor follows the window"
            test_improvement_uses_window_tolerance;
        ] );
      ( "planes",
        [
          tc "vmp" test_vmp_reasonable;
          tc "Vsa declines with R" test_vsa_declines_with_r;
          tc "Vsa collapse at large R" test_vsa_collapses_to_all_1;
          tc "write plane structure" test_write_plane_structure;
          tc "write plane rejects reads" test_write_plane_rejects_read;
          slow "geometric BR vs search BR" test_br_geometric_matches_search;
          tc "read plane structure" test_read_plane_structure;
          tc "injected failure leaves one Failed slot"
            test_plane_survives_injected_failure;
          tc "all points failed still renders"
            test_plane_all_points_failed_renders;
          slow "checkpoint resume is byte-identical"
            test_plane_checkpoint_resume_identical;
          slow "batched sweeps match scalar" test_batched_sweeps_match_scalar;
        ] );
      ( "stressor",
        [
          tc "cycle-time verdict" test_probe_cycle_time;
          slow "Vdd resolved by BR" test_probe_vdd_resolves_by_br;
          tc "validation" test_probe_validation;
          tc "apply verdict" test_apply_verdict;
          tc "default candidates" test_default_values;
        ] );
      ( "sc_eval",
        [
          slow "open end-to-end" test_sc_eval_open;
          slow "short uses retention" test_sc_eval_short_uses_retention;
          tc "comp candidates invert" test_candidate_detections_placement;
          slow "figure 2 rendering" test_report_figure2;
          slow "stress panels rendering" test_report_panels;
          tc "plane CSV export" test_plane_csv;
          slow "exhaustive baseline" test_exhaustive_small_grid;
          tc "simulation counter" test_run_counter;
          slow "table 1 generation" test_table1_quick;
        ] );
    ]
