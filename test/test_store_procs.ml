(* Multi-process store tests. These live in their own binary because
   OCaml refuses [Unix.fork] once any domain has ever been spawned in
   the process, and the main suites exercise domain parallelism.
   Nothing here may call [Par.parallel_map] (or anything else that
   spawns a domain) before the forks. *)

module St = Dramstress_util.Store

let with_store_dir f =
  let dir = Filename.temp_file "dramstress_store_mp" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

let wait_ok what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "%s process failed" what

(* Two writer processes hammer one store concurrently. The advisory
   lock on [store.lock] keeps their appends and index rewrites from
   interleaving: every record from both must survive, and the final
   index must agree with the records. *)
let two_process_appends ~shards () =
  with_store_dir @@ fun dir ->
  (* pre-create the layout so the children race only on appends and
     index rewrites, the paths the lock guards *)
  let s = St.open_ ~engine:"e" ?shards ~name:"mp" dir in
  St.close s;
  let writers = 2 and per_writer = 40 in
  let child i =
    match Unix.fork () with
    | 0 ->
      let code =
        try
          let s = St.open_ ~engine:"e" ~name:"mp" dir in
          for j = 0 to per_writer - 1 do
            St.put s ~key:(Printf.sprintf "c%d-%d" i j) ~descr:"mp" "v"
          done;
          St.close s;
          0
        with _ -> 1
      in
      Unix._exit code
    | pid -> pid
  in
  let pids = List.init writers child in
  List.iter (wait_ok "writer") pids;
  let s = St.open_ ~engine:"e" ~name:"mp" dir in
  Alcotest.(check int) "layout preserved"
    (Option.value shards ~default:0)
    (St.shards s);
  Alcotest.(check int) "every append from both processes survives"
    (writers * per_writer) (St.entries s);
  for i = 0 to writers - 1 do
    for j = 0 to per_writer - 1 do
      Alcotest.(check (option string)) "record intact" (Some "v")
        (St.find s ~key:(Printf.sprintf "c%d-%d" i j))
    done
  done;
  St.close s;
  match St.index dir with
  | None -> Alcotest.fail "index missing"
  | Some ix ->
    Alcotest.(check int) "index agrees" (writers * per_writer)
      ix.St.ix_records

let test_two_process_single () = two_process_appends ~shards:None ()
let test_two_process_sharded () = two_process_appends ~shards:(Some 4) ()

(* A writer SIGKILLed mid-stream must cost at most its own unflushed
   tail: the surviving process and a later reopen see every record the
   victim flushed, and the stale index left behind is rebuilt. *)
let test_kill_one_writer () =
  with_store_dir @@ fun dir ->
  let s = St.open_ ~engine:"e" ~shards:4 ~name:"mp" dir in
  St.close s;
  let victim =
    match Unix.fork () with
    | 0 ->
      (try
         let s = St.open_ ~engine:"e" ~name:"mp" dir in
         for j = 0 to 10_000 do
           St.put s ~key:(Printf.sprintf "v-%d" j) "x"
         done;
         St.close s
       with _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  (* wait until the victim demonstrably made progress, then kill it *)
  let progressed () =
    try
      let s = St.open_ ~engine:"e" ~name:"mp" dir in
      let n = St.entries s in
      St.close s;
      n > 0
    with _ -> false
  in
  let rec spin n =
    if n = 0 then Alcotest.fail "victim made no progress"
    else if not (progressed ()) then begin
      Unix.sleepf 0.01;
      spin (n - 1)
    end
  in
  spin 1000;
  Unix.kill victim Sys.sigkill;
  ignore (Unix.waitpid [] victim);
  (* a fresh writer appends on top of the wreckage, then everything
     the victim flushed plus the new record must be readable *)
  let s = St.open_ ~engine:"e" ~name:"mp" dir in
  let survivors = St.entries s in
  Alcotest.(check bool) "flushed records survive the kill" true
    (survivors > 0);
  St.put s ~key:"after-kill" "y";
  St.close s;
  let s = St.open_ ~engine:"e" ~name:"mp" dir in
  Alcotest.(check int) "reopen sees the same records" (survivors + 1)
    (St.entries s);
  Alcotest.(check (option string)) "post-kill append intact" (Some "y")
    (St.find s ~key:"after-kill");
  St.close s

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_store_procs"
    [
      ( "store-multiprocess",
        [
          tc "two writers, single-file" test_two_process_single;
          tc "two writers, sharded" test_two_process_sharded;
          tc "SIGKILLed writer loses only its tail" test_kill_one_writer;
        ] );
    ]
