(campaign
  (name golden-pre-extension)
  (defects (O1 true))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  (detections (seq "w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
