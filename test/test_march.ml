(* Tests for the march-test DSL, the behavioural memory simulator and
   the coverage/Shmoo tooling. *)

module M = Dramstress_march.March
module Mem = Dramstress_march.Memsim
module Cov = Dramstress_march.Coverage
module Sh = Dramstress_march.Shmoo
module S = Dramstress_dram.Stress
module D = Dramstress_defect.Defect
module C = Dramstress_core

(* ------------------------------------------------------------------ *)
(* March DSL                                                           *)
(* ------------------------------------------------------------------ *)

let test_march_validation () =
  Alcotest.check_raises "empty test" (Invalid_argument "March.v: no elements")
    (fun () -> ignore (M.v "x" []));
  Alcotest.check_raises "empty element"
    (Invalid_argument "March.v: empty element") (fun () ->
      ignore (M.v "x" [ M.up [] ]));
  Alcotest.check_raises "bad bit" (Invalid_argument "March.v: bit not 0/1")
    (fun () -> ignore (M.v "x" [ M.up [ M.Mw 3 ] ]))

let test_march_op_counts () =
  Alcotest.(check int) "MATS+ is 5n" 5 (M.op_count M.mats_plus);
  Alcotest.(check int) "March X is 6n" 6 (M.op_count M.march_x);
  Alcotest.(check int) "March Y is 8n" 8 (M.op_count M.march_y);
  Alcotest.(check int) "March C- is 10n" 10 (M.op_count M.march_c_minus)

let test_march_notation () =
  Alcotest.(check string) "MATS+"
    "MATS+: {any(w0); up(r0,w1); down(r1,w0)}"
    (M.to_string M.mats_plus)

let test_of_detection () =
  let cond = C.Detection.standard ~victim:0 ~primes:2 in
  let t = M.of_detection ~name:"synth" cond in
  Alcotest.(check int) "ops" 4 (M.op_count t)

let test_to_detection () =
  (* lowering concatenates the per-cell op streams in element order *)
  let t =
    M.parse ~name:"mixed" "{up(w0); up(r0,w1); down(del(2e-3),r1)}"
  in
  (match (M.to_detection t).C.Detection.steps with
  | [ C.Detection.Write 0; C.Detection.Read 0; C.Detection.Write 1;
      C.Detection.Wait d; C.Detection.Read 1 ] ->
    Alcotest.(check (float 1e-12)) "pause carried over" 2e-3 d
  | _ -> Alcotest.fail "unexpected lowering");
  (* inverse of of_detection *)
  let cond = C.Detection.standard ~victim:1 ~primes:3 in
  Alcotest.(check bool) "of_detection round-trips" true
    (M.to_detection (M.of_detection ~name:"rt" cond) = cond)

let test_march_parse () =
  let t = M.parse ~name:"mats+" "{any(w0); up(r0,w1); down(r1,w0)}" in
  Alcotest.(check int) "ops" 5 (M.op_count t);
  Alcotest.(check bool) "equals builtin" true
    (t.M.elements = M.mats_plus.M.elements);
  let t2 = M.parse ~name:"ret" "any(w1,del(1e-3),r1)" in
  (match t2.M.elements with
  | [ { M.ops = [ M.Mw 1; M.Mdel d; M.Mr 1 ]; _ } ] ->
    Alcotest.(check (float 1e-12)) "delay" 1e-3 d
  | _ -> Alcotest.fail "retention element");
  Alcotest.(check bool) "bad order rejected" true
    (match M.parse ~name:"x" "{sideways(w0)}" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad op rejected" true
    (match M.parse ~name:"x" "{up(q7)}" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_march_hammer () =
  let t = M.parse ~name:"ham" "any(w1,ham(5),r1)" in
  (match t.M.elements with
  | [ { M.ops = [ M.Mw 1; M.Mham 5; M.Mr 1 ]; _ } ] -> ()
  | _ -> Alcotest.fail "hammer element not parsed");
  (* printer and parser agree *)
  let t' = M.parse ~name:"ham" (M.to_string t) in
  Alcotest.(check bool) "pp/parse round-trip" true
    (t'.M.elements = t.M.elements);
  (* aggressor activations are free in march complexity accounting *)
  Alcotest.(check int) "op count excludes ham" 2 (M.op_count t);
  (* lowering to the electrical detection layer and back *)
  (match (M.to_detection t).C.Detection.steps with
  | [ C.Detection.Write 1; C.Detection.Hammer 5; C.Detection.Read 1 ] -> ()
  | _ -> Alcotest.fail "unexpected lowering");
  let cond = C.Detection.hammer ~victim:1 ~count:7 in
  Alcotest.(check bool) "of_detection round-trips" true
    (M.to_detection (M.of_detection ~name:"rt" cond) = cond);
  Alcotest.(check bool) "ham(0) rejected" true
    (match M.parse ~name:"x" "{up(ham(0))}" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_parse_roundtrip =
  (* generate a random well-formed test, print it, reparse, compare *)
  let gen_op =
    QCheck.Gen.oneof
      [ QCheck.Gen.return (M.Mw 0); QCheck.Gen.return (M.Mw 1);
        QCheck.Gen.return (M.Mr 0); QCheck.Gen.return (M.Mr 1) ]
  in
  let gen_elem =
    QCheck.Gen.map2
      (fun order ops ->
        { M.order; ops })
      (QCheck.Gen.oneofl [ M.Up; M.Down; M.Either ])
      (QCheck.Gen.list_size (QCheck.Gen.int_range 1 4) gen_op)
  in
  let gen_test =
    QCheck.Gen.map
      (fun elems -> M.v "rand" elems)
      (QCheck.Gen.list_size (QCheck.Gen.int_range 1 5) gen_elem)
  in
  QCheck.Test.make ~count:100 ~name:"march notation round-trips"
    (QCheck.make gen_test)
    (fun t ->
      let t' = M.parse ~name:"rand" (M.to_string t) in
      t'.M.elements = t.M.elements)

let prop_clean_memory_never_fails =
  (* any well-formed march test whose elements are self-consistent
     (every read expects the value most recently written in the same
     element, starting from a w) passes a fault-free memory *)
  let gen_elem =
    let open QCheck.Gen in
    int_range 0 1 >>= fun first ->
    list_size (int_range 0 3) (int_range 0 1) >>= fun writes ->
    let rec build current = function
      | [] -> []
      | b :: rest -> M.Mr current :: M.Mw b :: build b rest
    in
    oneofl [ M.Up; M.Down; M.Either ] >>= fun order ->
    return { M.order; ops = M.Mw first :: build first writes }
  in
  let gen_test =
    QCheck.Gen.map
      (fun elems -> M.v "consistent" elems)
      (QCheck.Gen.list_size (QCheck.Gen.int_range 1 4) gen_elem)
  in
  QCheck.Test.make ~count:100
    ~name:"self-consistent tests pass clean memories"
    (QCheck.make gen_test)
    (fun t ->
      let mem = Mem.create ~size:6 () in
      Mem.run_march mem t = [])

(* ------------------------------------------------------------------ *)
(* Memsim: digital faults                                              *)
(* ------------------------------------------------------------------ *)

let test_memsim_good_memory_passes () =
  List.iter
    (fun test ->
      let mem = Mem.create ~size:8 () in
      Alcotest.(check int)
        (M.to_string test ^ " passes clean memory")
        0
        (List.length (Mem.run_march mem test)))
    [ M.mats_plus; M.march_x; M.march_y; M.march_c_minus ]

let test_memsim_rw () =
  let mem = Mem.create ~size:4 () in
  Mem.write mem 2 1;
  Alcotest.(check int) "read back" 1 (Mem.read mem 2);
  Alcotest.(check int) "others untouched" 0 (Mem.read mem 0);
  Alcotest.check_raises "oob" (Invalid_argument "Memsim: address out of range")
    (fun () -> ignore (Mem.read mem 9))

let test_stuck_at_detected () =
  Alcotest.(check bool) "SA0 by MATS+" true
    (Mem.detects ~size:8 ~fault:(Mem.Stuck_at 0) M.mats_plus);
  Alcotest.(check bool) "SA1 by MATS+" true
    (Mem.detects ~size:8 ~fault:(Mem.Stuck_at 1) M.mats_plus)

let test_transition_faults () =
  (* MATS+ ends its down element with w0 and never reads it: TF0 escapes *)
  Alcotest.(check bool) "TF0 escapes MATS+" false
    (Mem.detects ~size:8 ~fault:(Mem.Transition 0) M.mats_plus);
  Alcotest.(check bool) "TF0 caught by March X" true
    (Mem.detects ~size:8 ~fault:(Mem.Transition 0) M.march_x);
  Alcotest.(check bool) "TF1 caught by MATS+" true
    (Mem.detects ~size:8 ~fault:(Mem.Transition 1) M.mats_plus)

let test_coupling_faults () =
  Alcotest.(check bool) "CFin caught by March C-" true
    (Mem.detects ~size:8 ~fault:(Mem.Coupling_inv 0) M.march_c_minus);
  Alcotest.(check bool) "CFid caught by March C-" true
    (Mem.detects ~size:8 ~fault:(Mem.Coupling_idem (0, 1)) M.march_c_minus)

let test_failure_location () =
  let mem = Mem.create ~size:8 ~faults:[ (3, Mem.Stuck_at 1) ] () in
  match Mem.run_march mem M.mats_plus with
  | f :: _ ->
    Alcotest.(check int) "victim address" 3 f.Mem.addr;
    Alcotest.(check int) "expected 0" 0 f.Mem.expected;
    Alcotest.(check int) "got 1" 1 f.Mem.got
  | [] -> Alcotest.fail "stuck-at not found"

let test_create_validation () =
  Alcotest.check_raises "bad size" (Invalid_argument "Memsim.create: size <= 0")
    (fun () -> ignore (Mem.create ~size:0 ()));
  Alcotest.check_raises "bad fault addr"
    (Invalid_argument "Memsim.create: fault address out of range") (fun () ->
      ignore (Mem.create ~size:4 ~faults:[ (9, Mem.Stuck_at 0) ] ()))

(* ------------------------------------------------------------------ *)
(* Memsim: weak cells                                                  *)
(* ------------------------------------------------------------------ *)

let test_weak_ideal_behaves_like_good () =
  let w = Mem.Weak.ideal ~vdd:2.4 in
  let mem = Mem.create ~size:4 ~faults:[ (1, Mem.Weak_cell w) ] () in
  Alcotest.(check int) "march failures" 0
    (List.length (Mem.run_march mem M.march_c_minus))

let test_weak_slow_w0_fails () =
  (* a cell whose w0 barely moves the voltage behaves like the paper's
     open: w1 w1 w0 r0 fails *)
  let w = { (Mem.Weak.ideal ~vdd:2.4) with Mem.Weak.alpha_w0 = 0.3 } in
  let mem = Mem.create ~size:4 ~faults:[ (1, Mem.Weak_cell w) ] () in
  let t =
    M.of_detection ~name:"paper"
      (C.Detection.standard ~victim:0 ~primes:2)
  in
  Alcotest.(check bool) "detected" true (Mem.run_march mem t <> [])

let test_weak_leak_detected_by_pause () =
  let w =
    { (Mem.Weak.ideal ~vdd:2.4) with
      Mem.Weak.leak_target = 0.0;
      leak_tau = 1e-4 }
  in
  let t_no_pause = M.v "w1r1" [ M.either [ M.Mw 1; M.Mr 1 ] ] in
  let t_pause = M.v "w1,del,r1" [ M.either [ M.Mw 1; M.Mdel 1e-3; M.Mr 1 ] ] in
  Alcotest.(check bool) "escapes without pause" false
    (Mem.detects ~size:4 ~fault:(Mem.Weak_cell w) t_no_pause);
  Alcotest.(check bool) "caught with pause" true
    (Mem.detects ~size:4 ~fault:(Mem.Weak_cell w) t_pause)

let test_weak_of_electrical () =
  let defect = D.v (D.Open_cell D.At_bitline_contact) D.True_bl 400e3 in
  let w = Mem.Weak.of_electrical ~stress:S.nominal ~defect () in
  (* a 400 kOhm open: writing is badly degraded in one cycle *)
  Alcotest.(check bool)
    (Printf.sprintf "alpha_w0 %.2f small" w.Mem.Weak.alpha_w0)
    true
    (w.Mem.Weak.alpha_w0 < 1.5);
  Alcotest.(check bool) "vsa within rails" true
    (w.Mem.Weak.vsa >= 0.0 && w.Mem.Weak.vsa <= 2.4)

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)
(* ------------------------------------------------------------------ *)

let test_coverage_ordering () =
  let cases = Cov.standard_faults in
  let results =
    Cov.compare_tests [ M.mats_plus; M.march_c_minus ] cases
  in
  match results with
  | [ mats; mc ] ->
    Alcotest.(check bool) "March C- >= MATS+" true
      (mc.Cov.coverage >= mats.Cov.coverage);
    Alcotest.(check (float 1e-9)) "March C- catches all standard faults"
      1.0 mc.Cov.coverage
  | _ -> Alcotest.fail "two results expected"

let test_coverage_render () =
  let r = Cov.evaluate M.mats_plus Cov.standard_faults in
  let text = Cov.render [ r ] in
  Alcotest.(check bool) "mentions the test" true
    (String.length text > 0
    && List.exists
         (fun line -> String.length line >= 5 && String.sub line 0 5 = "MATS+")
         (String.split_on_char '\n' text))

(* ------------------------------------------------------------------ *)
(* Shmoo                                                               *)
(* ------------------------------------------------------------------ *)

let test_shmoo_timing_axis () =
  (* sweeping tcyc across the failure edge of a 200 kOhm open: short
     cycles must fail, long cycles must pass *)
  let kind = D.Open_cell D.At_bitline_contact in
  let defect = D.v kind D.True_bl 200e3 in
  (* two-sided condition: a one-sided w0/r0 test cannot fail at broken
     SCs where the cell accidentally floats at the expected value *)
  let detection =
    C.Detection.v
      [ C.Detection.Write 1; C.Detection.Read 1; C.Detection.Write 0;
        C.Detection.Read 0 ]
  in
  let shmoo =
    Sh.generate ~stress:S.nominal ~defect ~detection
      ~x:(S.Cycle_time, [ 50e-9; 55e-9; 70e-9; 80e-9 ])
      ~y:(S.Supply_voltage, [ 2.4 ])
      ()
  in
  (match shmoo.Sh.grid.(0).(0) with
  | Sh.Fail -> ()
  | Sh.Pass | Sh.Invalid | Sh.Errored -> Alcotest.fail "50 ns should fail");
  (match shmoo.Sh.grid.(0).(3) with
  | Sh.Pass -> ()
  | Sh.Fail | Sh.Invalid | Sh.Errored -> Alcotest.fail "80 ns should pass");
  let f = Sh.fail_fraction shmoo in
  Alcotest.(check bool) "fraction interior" true (f > 0.0 && f < 1.0);
  Alcotest.(check bool) "renders" true (String.length (Sh.render shmoo) > 0)

let test_shmoo_invalid_points () =
  let kind = D.Open_cell D.At_bitline_contact in
  let defect = D.v kind D.True_bl 200e3 in
  let detection = C.Detection.standard ~victim:0 ~primes:1 in
  let shmoo =
    Sh.generate ~stress:S.nominal ~defect ~detection
      ~x:(S.Cycle_time, [ 5e-9; 60e-9 ])  (* 5 ns cannot open the word line *)
      ~y:(S.Supply_voltage, [ 2.4 ])
      ()
  in
  match shmoo.Sh.grid.(0).(0) with
  | Sh.Invalid -> ()
  | Sh.Pass | Sh.Fail | Sh.Errored -> Alcotest.fail "expected invalid SC"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "dramstress_march"
    [
      ( "dsl",
        [
          tc "validation" test_march_validation;
          tc "op counts" test_march_op_counts;
          tc "notation" test_march_notation;
          tc "of_detection" test_of_detection;
          tc "to_detection lowering" test_to_detection;
          tc "parsing" test_march_parse;
          tc "hammer ops" test_march_hammer;
          QCheck_alcotest.to_alcotest prop_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_clean_memory_never_fails;
        ] );
      ( "memsim digital",
        [
          tc "clean memory passes" test_memsim_good_memory_passes;
          tc "read/write" test_memsim_rw;
          tc "stuck-at" test_stuck_at_detected;
          tc "transition faults" test_transition_faults;
          tc "coupling faults" test_coupling_faults;
          tc "failure location" test_failure_location;
          tc "construction validation" test_create_validation;
        ] );
      ( "memsim weak cells",
        [
          tc "ideal weak cell is clean" test_weak_ideal_behaves_like_good;
          tc "slow w0 caught by paper sequence" test_weak_slow_w0_fails;
          tc "leak caught by retention element" test_weak_leak_detected_by_pause;
          tc "electrical fitting" test_weak_of_electrical;
        ] );
      ( "coverage",
        [
          tc "March C- dominates MATS+" test_coverage_ordering;
          tc "rendering" test_coverage_render;
        ] );
      ( "shmoo",
        [
          slow "timing edge" test_shmoo_timing_axis;
          tc "invalid SCs marked" test_shmoo_invalid_points;
        ] );
    ]
