(* Campaign subsystem: manifest parsing and diagnostics, plan content
   addressing, store-backed runs (reuse, failure retry), and diff
   reports. Electrical points use a narrow border window so the whole
   suite stays cheap. *)

module Cp = Dramstress_campaign
module Manifest = Cp.Manifest
module Plan = Cp.Plan
module Runner = Cp.Runner
module Diff = Cp.Diff
module D = Dramstress_defect.Defect
module S = Dramstress_dram.Stress
module Sc = Dramstress_dram.Sim_config
module O = Dramstress_dram.Ops
module C = Dramstress_core
module M = Dramstress_march.March
module St = Dramstress_util.Store
module Outcome = Dramstress_util.Outcome
module W = C.Border.Window

let with_store_dir f =
  let dir = Filename.temp_file "dramstress_campaign" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ -> ())
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* manifest                                                            *)
(* ------------------------------------------------------------------ *)

let full_manifest =
  {|
(campaign
  (name vdd-study) ; comments survive anywhere
  (defects O1 (Sg true) (B1 comp))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  (sweep (vdd 2.1 2.7) (temp -33 87))
  (detections best best-no-pause (seq "w1 w1 w0 r0")
              (march "{up(w0);up(r0,w1)}"))
  (sim (steps-per-cycle 200) (deadline 30) (jobs 2))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}

let test_manifest_full () =
  let m = Manifest.of_string full_manifest in
  Alcotest.(check string) "name" "vdd-study" m.Manifest.name;
  (* bare O1 expands to both placements *)
  Alcotest.(check int) "defect placements" 4 (List.length m.Manifest.defects);
  (* 2 explicit + 2x2 sweep *)
  Alcotest.(check (list string))
    "stress labels, declaration order then sweep"
    [ "nominal"; "low-vdd"; "vdd=2.1,temp=-33"; "vdd=2.1,temp=87";
      "vdd=2.7,temp=-33"; "vdd=2.7,temp=87" ]
    (List.map fst m.Manifest.stresses);
  Alcotest.(check int) "detections" 4 (List.length m.Manifest.detections);
  Alcotest.(check int) "steps-per-cycle" 200 m.Manifest.config.Sc.steps_per_cycle;
  Alcotest.(check (option int)) "jobs" (Some 2) m.Manifest.config.Sc.jobs;
  Alcotest.(check (float 0.0)) "r-min" 1e4 m.Manifest.window.W.r_min;
  Alcotest.(check int) "grid" 5 m.Manifest.window.W.grid_points;
  (* the sweep entries really moved the axes *)
  let swept = List.assoc "vdd=2.1,temp=87" m.Manifest.stresses in
  Alcotest.(check (float 0.0)) "swept vdd" 2.1 swept.S.vdd;
  Alcotest.(check (float 0.0)) "swept temp" 87.0 swept.S.temp_c

let test_manifest_defaults () =
  let m =
    Manifest.of_string "(campaign (name d) (defects O1) (stress nominal))"
  in
  Alcotest.(check int) "detections default to best" 1
    (List.length m.Manifest.detections);
  Alcotest.(check bool) "the default is Best" true
    (m.Manifest.detections = [ Manifest.Best ]);
  Alcotest.(check (float 0.0)) "default r-min" 1e3 m.Manifest.window.W.r_min;
  Alcotest.(check (float 0.0)) "default r-max" 1e11 m.Manifest.window.W.r_max;
  Alcotest.(check int) "default grid" 13 m.Manifest.window.W.grid_points;
  Alcotest.(check bool) "default strategy is grid" true
    (m.Manifest.window.W.strategy = W.Grid)

let test_manifest_collects_diagnostics () =
  (* one parse, every problem reported: unknown defect, bad axis,
     duplicate label, missing name *)
  let src =
    {|
(campaign
  (defects O9 O1)
  (stress a (frequency 2))
  (stress a)
  (border (grid-points 1)))
|}
  in
  match Manifest.of_string src with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Manifest.Invalid ds ->
    let has pred = List.exists pred ds in
    Alcotest.(check bool) "unknown defect" true
      (has (function Manifest.Unknown_defect { id = "O9" } -> true | _ -> false));
    Alcotest.(check bool) "bad stress axis" true
      (has (function
        | Manifest.Bad_value { section = "stress"; field = "frequency"; _ } ->
          true
        | _ -> false));
    Alcotest.(check bool) "duplicate label" true
      (has (function
        | Manifest.Duplicate_label { label = "a" } -> true
        | _ -> false));
    Alcotest.(check bool) "bad grid" true
      (has (function
        | Manifest.Bad_value { section = "border"; field = "grid-points"; _ }
          ->
          true
        | _ -> false));
    Alcotest.(check bool) "missing name" true
      (has (function
        | Manifest.Missing_field { section = "campaign"; field = "name" } ->
          true
        | _ -> false))

let test_manifest_parse_error_line () =
  match Manifest.of_string "(campaign\n  (name x)\n  (defects O1" with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Manifest.Invalid [ Manifest.Parse_error { line; _ } ] ->
    Alcotest.(check int) "line of the unclosed paren" 3 line
  | exception Manifest.Invalid _ -> Alcotest.fail "expected one parse error"

let bad_range_diag src pred =
  match Manifest.of_string src with
  | _ -> Alcotest.fail "expected Invalid"
  | exception Manifest.Invalid ds ->
    Alcotest.(check bool) "Bad_range reported" true (List.exists pred ds)

let test_manifest_range_min_ge_max () =
  bad_range_diag
    {|(campaign (name r) (defects O1) (stress nominal)
       (sweep (vdd (range 2.7 2.1 3))))|}
    (function
      | Manifest.Bad_range { axis = "vdd"; lo; hi; reason } ->
        lo = 2.7 && hi = 2.1 && reason = "range min >= max"
      | _ -> false)

let test_manifest_range_log_crosses_zero () =
  (* wait sweeps default to the registry's log scale, where a zero
     endpoint is meaningless *)
  bad_range_diag
    {|(campaign (name r) (defects O1) (stress nominal)
       (sweep (wait (range 0 1 3))))|}
    (function
      | Manifest.Bad_range { axis = "wait"; reason; _ } ->
        reason = "log sweep crosses (or touches) zero"
      | _ -> false)

let test_manifest_extended_sweep () =
  (* range expansion and discrete patterns cross like any other axis,
     with labels rendered by the registry *)
  let m =
    Manifest.of_string
      {|(campaign (name e) (defects O1)
         (sweep (wait (range 0.01 1.0 3)) (pattern all1 checkerboard)))|}
  in
  Alcotest.(check (list string)) "labels: log mid-point, pattern names"
    [ "wait=0.01,pattern=all1"; "wait=0.01,pattern=checkerboard";
      "wait=0.1,pattern=all1"; "wait=0.1,pattern=checkerboard";
      "wait=1,pattern=all1"; "wait=1,pattern=checkerboard" ]
    (List.map fst m.Manifest.stresses);
  let sc = List.assoc "wait=1,pattern=checkerboard" m.Manifest.stresses in
  Alcotest.(check (float 1e-9)) "wait moved" 1.0 sc.S.wait;
  Alcotest.(check bool) "pattern moved" true (sc.S.pattern = S.Checkerboard);
  (* an explicit lin override on a log-default axis admits zero *)
  let m =
    Manifest.of_string
      {|(campaign (name e) (defects O1)
         (sweep (wait (range 0 1 3 lin))))|}
  in
  Alcotest.(check (list string)) "linear override"
    [ "wait=0"; "wait=0.5"; "wait=1" ]
    (List.map fst m.Manifest.stresses)

(* ------------------------------------------------------------------ *)
(* plan: content addressing                                            *)
(* ------------------------------------------------------------------ *)

let mini ?(detections = {|(detections (seq "w1 w1 w0 r0"))|}) ?(sim = "")
    ?(border = "(border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05))")
    ?(stress = "(stress nominal)") () =
  Manifest.of_string
    (Printf.sprintf "(campaign (name mini) (defects (O1 true)) %s %s %s %s)"
       stress detections sim border)

let test_plan_cross_product () =
  let m = Manifest.of_string full_manifest in
  let pts = Plan.points m in
  (* 4 placements x 6 stresses x 4 detections *)
  Alcotest.(check int) "cross product" (4 * 6 * 4) (List.length pts);
  (* detections innermost: first four points share defect and stress *)
  match pts with
  | a :: b :: _ ->
    Alcotest.(check string) "same stress first"
      a.Plan.stress_label b.Plan.stress_label;
    Alcotest.(check bool) "different detection" true
      (a.Plan.detection <> b.Plan.detection)
  | _ -> Alcotest.fail "empty plan"

let test_descriptor_sensitivity () =
  let base = mini () in
  let d m = Plan.descriptor m (List.hd (Plan.points m)) in
  (* value-changing inputs move the address *)
  Alcotest.(check bool) "stress changes it" true
    (d base <> d (mini ~stress:"(stress hot (temp 87))" ()));
  Alcotest.(check bool) "sim physics changes it" true
    (d base <> d (mini ~sim:"(sim (steps-per-cycle 123))" ()));
  Alcotest.(check bool) "border window changes it" true
    (d base
    <> d
         (mini
            ~border:
              "(border (r-min 1e4) (r-max 1e9) (grid-points 5) (rel-tol 0.05))"
            ()));
  Alcotest.(check bool) "detection changes it" true
    (d base <> d (mini ~detections:{|(detections (seq "w0 r0"))|} ()));
  (* scheduling and naming do NOT *)
  Alcotest.(check string) "jobs/deadline do not"
    (d base)
    (d (mini ~sim:"(sim (jobs 7) (deadline 5))" ()));
  Alcotest.(check string) "stress label does not"
    (d base)
    (d (mini ~stress:"(stress renamed)" ()))

let test_descriptor_defect_injective () =
  (* distinct (defect, placement) pairs never share an address *)
  let m = Manifest.of_string full_manifest in
  let pts = Plan.points m in
  let keys = List.map (Plan.descriptor m) pts in
  let tbl = Hashtbl.create 97 in
  List.iter
    (fun k ->
      if Hashtbl.mem tbl k then Alcotest.failf "collision on %s" k
      else Hashtbl.add tbl k ())
    keys;
  Alcotest.(check int) "all distinct" (List.length pts) (Hashtbl.length tbl)

let test_descriptor_domain_stable () =
  let m = mini () in
  let p = List.hd (Plan.points m) in
  let expected = Plan.descriptor m p in
  List.init 4 (fun _ -> Domain.spawn (fun () -> Plan.descriptor m p))
  |> List.map Domain.join
  |> List.iter
       (Alcotest.(check string) "same address in every domain" expected)

let test_march_seq_share_address () =
  (* a march and the seq it lowers to are the same physics -> same
     address -> shared store records *)
  let seq = mini ~detections:{|(detections (seq "w0 r0 w1"))|} () in
  let march = mini ~detections:{|(detections (march "{up(w0);up(r0,w1)}"))|} () in
  Alcotest.(check string) "shared content address"
    (Plan.descriptor seq (List.hd (Plan.points seq)))
    (Plan.descriptor march (List.hd (Plan.points march)))

let test_descriptor_strategy_sharing () =
  (* Grid and Adaptive records may share a store address only when the
     strategies are provably identical: at [grid-points <= coarse] the
     adaptive skeleton IS the grid, so the fingerprints collapse;
     beyond that the adaptive scan may legitimately skip points and the
     records must live apart *)
  let d m = Plan.descriptor m (List.hd (Plan.points m)) in
  let border ?(points = 5) strategy =
    Printf.sprintf
      "(border (r-min 1e4) (r-max 1e8) (grid-points %d) (rel-tol 0.05) \
       (strategy %s))"
      points strategy
  in
  Alcotest.(check string) "coarse adaptive shares the grid address"
    (d (mini ~border:(border "grid") ()))
    (d (mini ~border:(border "adaptive") ()));
  Alcotest.(check bool) "fine adaptive addresses separately" true
    (d (mini ~border:(border ~points:13 "grid") ())
    <> d (mini ~border:(border ~points:13 "adaptive") ()))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_descriptor_extension_suffix () =
  let d m = Plan.descriptor m (List.hd (Plan.points m)) in
  let base = mini () in
  (* neutral points keep the pre-extension address shape... *)
  Alcotest.(check bool) "neutral: no extension suffix" false
    (contains_sub (d base) "|ext:");
  (* ...spelling the neutral defaults out changes nothing... *)
  Alcotest.(check string) "explicit neutral collapses to the same address"
    (d base)
    (d (mini ~stress:"(stress n (wait 0) (hammer 0) (leak 0))" ()));
  (* ...and any moved extension axis stamps the suffix in *)
  let waited = mini ~stress:"(stress w (wait 1))" () in
  Alcotest.(check bool) "moved axis grows the suffix" true
    (contains_sub (d waited) "|ext:");
  Alcotest.(check bool) "and relocates the record" true (d base <> d waited);
  Alcotest.(check bool) "different extension values differ" true
    (d waited <> d (mini ~stress:"(stress w (wait 2))" ()))

let test_result_codec_roundtrip () =
  let det =
    C.Detection.v
      [ C.Detection.Write 1; C.Detection.Wait 1.5e-3; C.Detection.Read 0 ]
  in
  let borders =
    [ C.Border.Br 2.0e5;
      C.Border.Faulty_band { lo = 1.25e4; hi = 3.5e7 };
      C.Border.Bands
        [ { C.Border.b_lo = C.Border.Exact 1e4;
            b_hi = C.Border.Unknown { lo = 2e4; hi = 4e4 } } ];
      C.Border.Always_faulty; C.Border.Never_faulty; C.Border.Unsampled ]
  in
  List.iter
    (fun br ->
      let r = { Plan.detection = det; br } in
      match Plan.decode_result (Plan.encode_result r) with
      | None -> Alcotest.fail "decode refused its own encoding"
      | Some r' ->
        Alcotest.(check bool) "border round-trips" true
          (C.Border.equal_result br r'.Plan.br);
        Alcotest.(check string) "detection round-trips"
          (Plan.encode_detection det)
          (Plan.encode_detection r'.Plan.detection))
    borders;
  Alcotest.(check (option string)) "foreign payload refused" None
    (Option.map Plan.encode_result (Plan.decode_result "gibberish"))

(* ------------------------------------------------------------------ *)
(* runner: reuse and failure retry                                     *)
(* ------------------------------------------------------------------ *)

let run_manifest =
  {|
(campaign
  (name run-t)
  (defects (O1 true))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}

let test_runner_cold_then_warm () =
  with_store_dir @@ fun dir ->
  let m = Manifest.of_string run_manifest in
  (* cold *)
  let s1 = St.open_ ~engine:"e" ~name:"run-t" dir in
  let r1 = Runner.run ~jobs:1 ~store:s1 m in
  St.close s1;
  Alcotest.(check int) "planned" 2 r1.Runner.planned;
  Alcotest.(check int) "cold: nothing reused" 0 r1.Runner.reused;
  Alcotest.(check int) "cold: everything simulated" 2 r1.Runner.simulated;
  Alcotest.(check int) "no failures" 0 (List.length r1.Runner.failures);
  Alcotest.(check int) "all results" 2 (List.length r1.Runner.results);
  (* warm, across a fresh handle AND a cleared LRU: the reuse must come
     from the persistent store, not the in-memory cache *)
  O.clear_cache ();
  let s2 = St.open_ ~engine:"e" ~name:"run-t" dir in
  let r2 = Runner.run ~jobs:1 ~store:s2 m in
  St.close s2;
  Alcotest.(check int) "warm: everything reused" 2 r2.Runner.reused;
  Alcotest.(check int) "warm: nothing simulated" 0 r2.Runner.simulated;
  (* and byte-identical results *)
  List.iter2
    (fun (_, a) (_, b) ->
      Alcotest.(check bool) "same border" true
        (C.Border.equal_result a.Plan.br b.Plan.br))
    r1.Runner.results r2.Runner.results

let test_runner_failure_retry () =
  let module Chaos = Dramstress_util.Chaos in
  Fun.protect ~finally:(fun () -> Chaos.disarm ()) @@ fun () ->
  with_store_dir @@ fun dir ->
  let m = Manifest.of_string run_manifest in
  (* chaos fails one of the two worker tasks: the campaign must record
     the failure and keep the surviving point *)
  Chaos.configure ~seed:0 "fail_worker_task@2";
  O.clear_cache ();
  let s = St.open_ ~engine:"e" ~name:"run-t" dir in
  let r = Runner.run ~jobs:1 ~store:s m in
  St.close s;
  Alcotest.(check int) "one failure" 1 (List.length r.Runner.failures);
  Alcotest.(check int) "one success" 1 r.Runner.simulated;
  (* the failure is visible as a state, with its message *)
  let s = St.open_ ~engine:"e" ~name:"run-t" dir in
  let states = Runner.states ~store:s m in
  St.close s;
  let count pred = List.length (List.filter (fun (_, st) -> pred st) states) in
  Alcotest.(check int) "one Done" 1
    (count (function `Done _ -> true | _ -> false));
  Alcotest.(check int) "one Failed" 1
    (count (function `Failed _ -> true | _ -> false));
  (* disarmed rerun: the success is reused, the failure is RETRIED *)
  Chaos.disarm ();
  O.clear_cache ();
  let s = St.open_ ~engine:"e" ~name:"run-t" dir in
  let r = Runner.run ~jobs:1 ~store:s m in
  Alcotest.(check int) "success reused" 1 r.Runner.reused;
  Alcotest.(check int) "failure retried" 1 r.Runner.simulated;
  Alcotest.(check int) "no failures left" 0 (List.length r.Runner.failures);
  (* the stale failure marker no longer shadows the fresh success *)
  let states = Runner.states ~store:s m in
  St.close s;
  Alcotest.(check int) "all Done" 2
    (List.length
       (List.filter
          (fun (_, st) -> match st with `Done _ -> true | _ -> false)
          states))

let planner_manifest strategy =
  (* a dense window over one warm-start chain: three sweep settings of
     the same (defect, placement, detection) cell, walked in order so
     each border seeds the next bracket *)
  Printf.sprintf
    {|
(campaign
  (name plan-t)
  (defects (O1 true))
  (stress nominal)
  (sweep (vdd 2.1 2.7))
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 33) (rel-tol 0.05)
          (strategy %s)))
|}
    strategy

(* ------------------------------------------------------------------ *)
(* diff                                                                *)
(* ------------------------------------------------------------------ *)

let run_campaign dir src =
  let m = Manifest.of_string src in
  let s = St.open_ ~engine:"e" ~name:m.Manifest.name dir in
  let r = Runner.run ~jobs:1 ~store:s m in
  St.close s;
  (m, r)

let test_runner_adaptive_planner_parity () =
  (* the tentpole end to end: the adaptive planner must report exactly
     the borders the grid oracle reports, from strictly fewer
     simulations. [O.simulations] counts solver cache misses, the real
     cost metric — reused store records and LRU hits are free. *)
  let run strategy =
    with_store_dir @@ fun dir ->
    O.clear_cache ();
    let before = O.simulations () in
    let _, r = run_campaign dir (planner_manifest strategy) in
    (r, O.simulations () - before)
  in
  let grid, grid_sims = run "grid" in
  let adaptive, adaptive_sims = run "adaptive" in
  Alcotest.(check int) "all points simulated both ways" 3
    grid.Runner.simulated;
  Alcotest.(check int) "adaptive planned the same points" 3
    adaptive.Runner.simulated;
  List.iter2
    (fun (_, (g : Plan.result)) (_, (a : Plan.result)) ->
      Alcotest.(check bool) "borders identical" true
        (C.Border.equal_result g.Plan.br a.Plan.br))
    grid.Runner.results adaptive.Runner.results;
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %d sims < grid %d sims" adaptive_sims
       grid_sims)
    true
    (adaptive_sims > 0 && adaptive_sims < grid_sims)

let side dir (m : Manifest.t) label =
  { Diff.store = St.open_ ~engine:"e" ~name:m.Manifest.name dir;
    manifest = m; label }

let test_diff_self_empty () =
  with_store_dir @@ fun dir ->
  let m, _ = run_campaign dir run_manifest in
  let a = side dir m "a" and b = side dir m "b" in
  let d = Diff.v ~a ~b () in
  St.close a.Diff.store;
  St.close b.Diff.store;
  Alcotest.(check int) "rows" 2 (List.length d.Diff.rows);
  Alcotest.(check int) "self-diff: no shifts" 0 d.Diff.shifted;
  Alcotest.(check int) "self-diff: no missing sides" 0 d.Diff.missing;
  Alcotest.(check (list string)) "no unpaired labels" [] d.Diff.unpaired

let test_diff_stress_pair_parity () =
  with_store_dir @@ fun dir ->
  let m, _ = run_campaign dir run_manifest in
  let a = side dir m "a" and b = side dir m "b" in
  let d =
    Diff.v ~pairing:(Diff.Stress_pair { a = "nominal"; b = "low-vdd" }) ~a ~b
      ()
  in
  St.close a.Diff.store;
  St.close b.Diff.store;
  match d.Diff.rows with
  | [ row ] ->
    let ra = Option.get row.Diff.a and rb = Option.get row.Diff.b in
    (* acceptance: the stored campaign values equal a direct search on
       the same grid, bit for bit *)
    let entry = Option.get (D.find_entry "O1") in
    let direct stress =
      C.Border.search ~config:m.Manifest.config ~r_min:1e4 ~r_max:1e8
        ~grid_points:5 ~rel_tol:0.05 ~stress ~kind:entry.D.kind
        ~placement:D.True_bl
        (C.Detection.v
           [ C.Detection.Write 1; C.Detection.Write 1; C.Detection.Write 0;
             C.Detection.Read 0 ])
    in
    Alcotest.(check bool) "nominal side = direct search" true
      (C.Border.equal_result ra.Plan.br (direct S.nominal));
    Alcotest.(check bool) "stressed side = direct search" true
      (C.Border.equal_result rb.Plan.br
         (direct (S.set S.nominal S.Supply_voltage 2.1)))
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let test_diff_missing_side () =
  with_store_dir @@ fun dir ->
  with_store_dir @@ fun empty_dir ->
  let m, _ = run_campaign dir run_manifest in
  let a = side dir m "full" in
  let b = side empty_dir m "empty" in
  let d = Diff.v ~a ~b () in
  St.close a.Diff.store;
  St.close b.Diff.store;
  Alcotest.(check int) "every row lacks side B" (List.length d.Diff.rows)
    d.Diff.missing;
  Alcotest.(check int) "missing is not a shift" 0 d.Diff.shifted;
  List.iter
    (fun (r : Diff.row) ->
      Alcotest.(check bool) "A populated" true (r.Diff.a <> None);
      Alcotest.(check bool) "B absent" true (r.Diff.b = None))
    d.Diff.rows

let test_best_point_parity () =
  (* a synthesized-best campaign point stores exactly what
     Sc_eval.best_detection computes on the same window *)
  with_store_dir @@ fun dir ->
  let m, r =
    run_campaign dir
      {|
(campaign
  (name best-t)
  (defects (O1 true))
  (stress nominal)
  (detections best-no-pause)
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}
  in
  match r.Runner.results with
  | [ (_, stored) ] ->
    let entry = Option.get (D.find_entry "O1") in
    let detection, br =
      C.Sc_eval.best_detection ~config:m.Manifest.config ~r_min:1e4
        ~r_max:1e8 ~grid_points:5 ~rel_tol:0.05 ~allow_pause:false
        ~stress:S.nominal ~kind:entry.D.kind ~placement:D.True_bl ()
    in
    Alcotest.(check bool) "same border" true
      (C.Border.equal_result stored.Plan.br br);
    Alcotest.(check string) "same winning detection"
      (Plan.encode_detection detection)
      (Plan.encode_detection stored.Plan.detection)
  | rs -> Alcotest.failf "expected one result, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* extension axes end to end: golden reuse, cross-axis diff, parity    *)
(* ------------------------------------------------------------------ *)

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let test_golden_store_reuse () =
  (* the checked-in store was produced by the pre-extension binary
     (engine stamp "git e8ceb9b"): the extended planner must address
     every one of its records byte-for-byte, simulating nothing *)
  with_store_dir @@ fun dir ->
  Sys.mkdir dir 0o755;
  List.iter
    (fun f ->
      copy_file
        (Filename.concat "golden/pre_extension_store" f)
        (Filename.concat dir f))
    [ "records.jsonl"; "index.json" ];
  let m = Manifest.load "golden/pre_extension.sexp" in
  O.clear_cache ();
  let s = St.open_ ~engine:"post-extension" ~name:"golden-pre-extension" dir in
  let r = Runner.run ~jobs:1 ~store:s m in
  St.close s;
  Alcotest.(check int) "planned" 2 r.Runner.planned;
  Alcotest.(check int) "all reused from the golden store" 2 r.Runner.reused;
  Alcotest.(check int) "nothing simulated" 0 r.Runner.simulated;
  Alcotest.(check int) "no failures" 0 (List.length r.Runner.failures)

let cross_axis_manifest =
  {|
(campaign
  (name cross-axes)
  (defects (O1 true))
  (stress nominal)
  (stress stressed (vdd 2.1) (wait 1.0) (hammer 100))
  (detections (seq "w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}

let test_cross_axis_campaign_diff () =
  (* the paper's V_dd axis crossed with the retention wait and the
     disturb hammer, through the whole plan/runner/diff stack: the
     stressed border must match a direct search and report as shifted *)
  with_store_dir @@ fun dir ->
  let m, r = run_campaign dir cross_axis_manifest in
  Alcotest.(check int) "both points simulated" 2 r.Runner.simulated;
  let a = side dir m "a" and b = side dir m "b" in
  let d =
    Diff.v ~pairing:(Diff.Stress_pair { a = "nominal"; b = "stressed" }) ~a ~b
      ()
  in
  St.close a.Diff.store;
  St.close b.Diff.store;
  match d.Diff.rows with
  | [ row ] ->
    Alcotest.(check int) "no missing sides" 0 d.Diff.missing;
    Alcotest.(check int) "the extended SC moves the border" 1 d.Diff.shifted;
    let rb = Option.get row.Diff.b in
    let entry = Option.get (D.find_entry "O1") in
    let stressed =
      { S.nominal with S.vdd = 2.1; wait = 1.0; hammer = 100 }
    in
    let direct =
      C.Border.search ~config:m.Manifest.config ~r_min:1e4 ~r_max:1e8
        ~grid_points:5 ~rel_tol:0.05 ~stress:stressed ~kind:entry.D.kind
        ~placement:D.True_bl
        (C.Detection.v
           [ C.Detection.Write 1; C.Detection.Write 0; C.Detection.Read 0 ])
    in
    Alcotest.(check bool) "stressed side = direct search" true
      (C.Border.equal_result rb.Plan.br direct)
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let planner_wait_manifest strategy =
  Printf.sprintf
    {|
(campaign
  (name plan-w)
  (defects (O1 true))
  (stress nominal)
  (sweep (wait (range 0.01 1.0 3)))
  (detections (seq "w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 33) (rel-tol 0.05)
          (strategy %s)))
|}
    strategy

let test_adaptive_parity_wait_axis () =
  (* the adaptive planner's grid parity holds on an extension axis
     exactly as it does on the paper's four *)
  let run strategy =
    with_store_dir @@ fun dir ->
    O.clear_cache ();
    let before = O.simulations () in
    let _, r = run_campaign dir (planner_wait_manifest strategy) in
    (r, O.simulations () - before)
  in
  let grid, grid_sims = run "grid" in
  let adaptive, adaptive_sims = run "adaptive" in
  Alcotest.(check int) "four wait points" 4 grid.Runner.simulated;
  List.iter2
    (fun (_, (g : Plan.result)) (_, (a : Plan.result)) ->
      Alcotest.(check bool) "borders identical" true
        (C.Border.equal_result g.Plan.br a.Plan.br))
    grid.Runner.results adaptive.Runner.results;
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %d sims < grid %d sims" adaptive_sims grid_sims)
    true
    (adaptive_sims > 0 && adaptive_sims < grid_sims)

(* ------------------------------------------------------------------ *)
(* protocol                                                            *)
(* ------------------------------------------------------------------ *)

module Pr = Cp.Protocol
module Svc = Cp.Service
module Tel = Dramstress_util.Telemetry

let test_protocol_sexp_roundtrip () =
  let nasty = "a \"quoted\" (atom)\nwith\\slashes\tand spaces" in
  let x =
    Pr.List
      [ Pr.Atom "submit";
        Pr.List [ Pr.Atom "manifest"; Pr.Atom nasty ];
        Pr.Atom "";
        Pr.Atom "plain" ]
  in
  (match Pr.of_string (Pr.to_string x) with
  | Ok y -> Alcotest.(check bool) "nasty atoms round-trip" true (x = y)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (match Pr.of_string bad with Error _ -> true | Ok _ -> false))
    [ "("; "a b"; "\"unclosed"; ")"; "" ]

let test_protocol_request_roundtrip () =
  List.iter
    (fun r ->
      match Pr.decode_request (Pr.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error m -> Alcotest.failf "decode refused its own encoding: %s" m)
    [ Pr.Submit { manifest = full_manifest; jobs = Some 3 };
      Pr.Submit { manifest = "(campaign (name x))"; jobs = None };
      Pr.Status; Pr.Query "campaign.point|v1|abc|0x1p1";
      Pr.Diff { a = "(a)"; b = "(b)" }; Pr.Merge "/tmp/other-store";
      Pr.Counters; Pr.Shutdown ]

let test_protocol_response_roundtrip () =
  List.iter
    (fun r ->
      match Pr.decode_response (Pr.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error m -> Alcotest.failf "decode refused its own encoding: %s" m)
    [ Pr.Point { descr = "O1/true seq"; status = Pr.Reused; payload = "p" };
      Pr.Point { descr = "d"; status = Pr.Simulated; payload = "" };
      Pr.Point { descr = "d"; status = Pr.Deduped; payload = "p" };
      Pr.Point { descr = "d"; status = Pr.Failed; payload = "boom (line 3)" };
      Pr.Done { planned = 9; reused = 3; simulated = 4; deduped = 1;
                failed = 1 };
      Pr.Status_report
        { name = "svc"; engine = "dramstress 1.0"; records = 12; shards = 16;
          inflight = 2 };
      Pr.Found "0x1.9p+3"; Pr.Not_found;
      Pr.Diff_report "multi\nline\treport";
      Pr.Merged { added = 4; replaced = 1; kept = 2 };
      Pr.Counter_values
        [ ("campaign.points_planned", 4); ("campaign.service.requests", 9) ];
      Pr.Busy { retry_after = 1.5 }; Pr.Busy { retry_after = 0.125 };
      Pr.Draining;
      Pr.Bye; Pr.Error_msg "manifest: line 2: unknown section" ]

let test_protocol_frames () =
  let a, b = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a frame big enough to span several reads *)
  let big = String.concat " " (List.init 5000 (Printf.sprintf "atom-%d")) in
  let x = Pr.List [ Pr.Atom "blob"; Pr.Atom big ] in
  Pr.write_frame a x;
  (match Pr.read_frame b with
  | Ok y -> Alcotest.(check bool) "large frame round-trips" true (x = y)
  | Error _ -> Alcotest.fail "read_frame failed");
  (* garbage header is a protocol error, not an allocation *)
  ignore (Unix.write_substring a "zzzzzzzz" 0 8);
  (match Pr.read_frame b with
  | Error (`Protocol _) -> ()
  | _ -> Alcotest.fail "bad header must be a protocol error");
  (* an oversized declared length (> max_frame) is refused before any
     allocation, not trusted *)
  ignore (Unix.write_substring a "01000001" 0 8);
  (match Pr.read_frame b with
  | Error (`Protocol m) ->
    Alcotest.(check string) "oversized refused" "oversized frame" m
  | _ -> Alcotest.fail "oversized header must be a protocol error");
  (* a frame truncated by a dying peer reads as EOF *)
  ignore (Unix.write_substring a "00000010hello" 0 13);
  Unix.close a;
  match Pr.read_frame b with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "truncated frame must read as EOF"

let test_protocol_frame_timeout () =
  let a, b = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a whole frame arriving promptly is untouched by the deadline *)
  Pr.write_frame a (Pr.Atom "quick");
  (match Pr.read_frame ~frame_timeout:0.5 b with
  | Ok (Pr.Atom "quick") -> ()
  | _ -> Alcotest.fail "prompt frame must pass under a deadline");
  (* half a header then silence: the deadline fires once the frame has
     started, bounded by roughly the timeout *)
  ignore (Unix.write_substring a "0000" 0 4);
  let t0 = Unix.gettimeofday () in
  (match Pr.read_frame ~frame_timeout:0.2 b with
  | Error `Timeout -> ()
  | _ -> Alcotest.fail "stalled frame must time out");
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "timed out promptly" true (dt >= 0.15 && dt < 5.0)

(* ------------------------------------------------------------------ *)
(* service (in-process: server thread + socket clients)                *)
(* ------------------------------------------------------------------ *)

(* [~sandbox:false] everywhere here: this binary runs domain-based
   tests, and a process that has ever spawned a domain cannot fork a
   worker pool. The sandboxed path gets its own fork-based binary
   (test_service_chaos). *)
let with_service ?(shards = 4) ?max_active ?queue ?read_timeout f =
  with_store_dir @@ fun dir ->
  let socket = Filename.temp_file "dramstress_svc" ".sock" in
  Sys.remove socket;
  let store = St.open_ ~shards ~name:"svc-t" dir in
  let srv =
    Svc.create ~jobs:1 ~sandbox:false ?max_active ?queue ?read_timeout ~store
      ~socket_path:socket ()
  in
  let th = Thread.create Svc.serve srv in
  Fun.protect
    ~finally:(fun () ->
      (try
         match Svc.Client.request ~socket Pr.Shutdown with _ -> ()
       with _ -> ());
      Thread.join th;
      try Sys.remove socket with Sys_error _ -> ())
  @@ fun () -> f ~socket

let ok_outcome = function
  | Ok (o : Svc.Client.outcome) -> o
  | Error m -> Alcotest.failf "server rejected submission: %s" m

let test_service_submit_cold_warm () =
  with_service @@ fun ~socket ->
  let streamed = ref [] in
  let on_event = function
    | Pr.Point { status; _ } -> streamed := status :: !streamed
    | _ -> ()
  in
  let o = ok_outcome (Svc.Client.submit ~on_event ~socket run_manifest) in
  Alcotest.(check int) "planned" 2 o.Svc.Client.planned;
  Alcotest.(check int) "cold: everything simulated" 2 o.Svc.Client.simulated;
  Alcotest.(check int) "cold: nothing reused" 0 o.Svc.Client.reused;
  Alcotest.(check int) "no failures" 0 o.Svc.Client.failed;
  Alcotest.(check int) "one frame streamed per point" 2
    (List.length !streamed);
  Alcotest.(check bool) "all frames say simulated" true
    (List.for_all (fun s -> s = Pr.Simulated) !streamed);
  (* warm resubmission over the same socket path: pure reuse *)
  let o = ok_outcome (Svc.Client.submit ~socket run_manifest) in
  Alcotest.(check int) "warm: everything reused" 2 o.Svc.Client.reused;
  Alcotest.(check int) "warm: nothing simulated" 0 o.Svc.Client.simulated;
  (* status verb *)
  (match Svc.Client.request ~socket Pr.Status with
  | Pr.Status_report { shards; records; inflight; _ } ->
    Alcotest.(check int) "status: shard count" 4 shards;
    Alcotest.(check bool) "status: records hold the plan" true (records >= 2);
    Alcotest.(check int) "status: idle" 0 inflight
  | _ -> Alcotest.fail "expected a status report");
  (* query verb: raw descriptor lookup against the live store *)
  let m = Manifest.of_string run_manifest in
  let p = List.hd (Plan.points m) in
  (match Svc.Client.request ~socket (Pr.Query (Plan.descriptor m p)) with
  | Pr.Found payload ->
    Alcotest.(check bool) "query payload decodes" true
      (Plan.decode_result payload <> None)
  | _ -> Alcotest.fail "expected found");
  (match Svc.Client.request ~socket (Pr.Query "no such point") with
  | Pr.Not_found -> ()
  | _ -> Alcotest.fail "expected not-found");
  (* counters verb *)
  match Svc.Client.request ~socket Pr.Counters with
  | Pr.Counter_values cs ->
    Alcotest.(check bool) "submissions counted" true
      (match List.assoc_opt "campaign.service.submissions" cs with
      | Some n -> n >= 2
      | None -> false)
  | _ -> Alcotest.fail "expected counters"

let test_service_bad_manifest_is_error () =
  with_service @@ fun ~socket ->
  match Svc.Client.submit ~socket "(campaign (name))" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "broken manifest must be a server-side error"

(* raw socket helpers for the robustness tests below *)
let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let counter_value name =
  Tel.Counter.value (Tel.Counter.make name)

let test_service_garbage_frames () =
  with_service @@ fun ~socket ->
  (* garbage header: typed protocol error back, connection closed,
     server unharmed *)
  let fd = raw_connect socket in
  ignore (Unix.write_substring fd "zzzzzzzz" 0 8);
  (match Pr.read_frame fd with
  | Ok x -> (
    match Pr.decode_response x with
    | Ok (Pr.Error_msg _) -> ()
    | _ -> Alcotest.fail "garbage must answer a typed protocol error")
  | Error _ -> Alcotest.fail "expected an error frame, not a drop");
  (match Pr.read_frame fd with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "server must close after protocol garbage");
  Unix.close fd;
  (* a valid frame carrying a non-request s-expression: typed error,
     connection stays usable *)
  let fd = raw_connect socket in
  Pr.write_frame fd (Pr.List [ Pr.Atom "no-such-verb" ]);
  (match Pr.read_frame fd with
  | Ok x -> (
    match Pr.decode_response x with
    | Ok (Pr.Error_msg _) -> ()
    | _ -> Alcotest.fail "unknown verb must answer a typed error")
  | Error _ -> Alcotest.fail "expected an error frame");
  Pr.write_frame fd (Pr.encode_request Pr.Status);
  (match Pr.read_frame fd with
  | Ok x -> (
    match Pr.decode_response x with
    | Ok (Pr.Status_report _) -> ()
    | _ -> Alcotest.fail "connection must survive an unknown verb")
  | Error _ -> Alcotest.fail "expected a status report");
  Unix.close fd;
  (* and the server still serves fresh clients *)
  match Svc.Client.request ~socket Pr.Status with
  | Pr.Status_report _ -> ()
  | _ -> Alcotest.fail "server must survive garbage clients"

let test_service_slowloris_dropped () =
  with_service ~read_timeout:0.3 @@ fun ~socket ->
  let timeouts_before = counter_value "campaign.service.read_timeouts" in
  (* half a frame header, then silence *)
  let loris = raw_connect socket in
  ignore (Unix.write_substring loris "0000" 0 4);
  (* an honest client is served while the slowloris timer runs *)
  (match Svc.Client.request ~socket Pr.Status with
  | Pr.Status_report _ -> ()
  | _ -> Alcotest.fail "honest client starved by a slowloris peer");
  (* the stalled connection is dropped by the read deadline *)
  (match Unix.select [ loris ] [] [] 10.0 with
  | [], _, _ -> Alcotest.fail "slowloris connection was never dropped"
  | _ -> (
    match Unix.read loris (Bytes.create 1) 0 1 with
    | 0 -> ()
    | _ -> Alcotest.fail "expected EOF on the dropped connection"));
  Unix.close loris;
  Alcotest.(check bool) "read_timeouts counted" true
    (counter_value "campaign.service.read_timeouts" > timeouts_before);
  (* idle keep-alive connections are NOT slowloris: silence between
     frames never trips the deadline *)
  let idle = raw_connect socket in
  Unix.sleepf 0.7;
  Pr.write_frame idle (Pr.encode_request Pr.Status);
  (match Pr.read_frame idle with
  | Ok x -> (
    match Pr.decode_response x with
    | Ok (Pr.Status_report _) -> ()
    | _ -> Alcotest.fail "idle connection must still be served")
  | Error _ -> Alcotest.fail "idle connection must not be dropped");
  Unix.close idle

(* enough electrical work (4 points, fine grid, tight tolerance) that a
   submission reliably holds its admission slot while the test pokes
   the server from other connections *)
let slow_manifest =
  {|
(campaign
  (name slow-t)
  (defects (O1 true) (Sg true))
  (stress nominal)
  (stress low-vdd (vdd 2.1))
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 9) (rel-tol 0.01)))
|}

(* wait until the server has admitted a submission AND is simulating:
   a nonzero status [inflight] can only come from an admitted
   submission holding its slot *)
let await_submission_started ~socket =
  let rec go n =
    let busy =
      match Svc.Client.request ~socket Pr.Status with
      | Pr.Status_report { inflight; _ } -> inflight >= 1
      | _ -> false
    in
    if busy then ()
    else if n = 0 then Alcotest.fail "submission never reached the server"
    else begin
      Unix.sleepf 0.01;
      go (n - 1)
    end
  in
  go 1000

let test_service_admission_busy () =
  with_service ~max_active:1 ~queue:0 @@ fun ~socket ->
  O.clear_cache ();
  let busy_before = counter_value "campaign.service.busy_rejections" in
  let slow_result = ref None in
  let slow =
    Thread.create
      (fun () -> slow_result := Some (Svc.Client.submit ~socket slow_manifest))
      ()
  in
  await_submission_started ~socket;
  (* the slot is held and the queue is zero: a second submission gets
     the typed Busy response with a usable hint, not a hung connection *)
  (match Svc.Client.submit ~socket run_manifest with
  | exception Svc.Client.Busy { retry_after } ->
    Alcotest.(check bool) "retry hint is sane" true
      (retry_after > 0.0 && retry_after <= 60.0)
  | Ok _ -> Alcotest.fail "over-capacity submission must be rejected Busy"
  | Error m -> Alcotest.failf "expected Busy, got server error %s" m);
  Alcotest.(check bool) "busy_rejections counted" true
    (counter_value "campaign.service.busy_rejections" > busy_before);
  (* status and counters verbs are not subject to submission admission *)
  (match Svc.Client.request ~socket Pr.Status with
  | Pr.Status_report _ -> ()
  | _ -> Alcotest.fail "status must answer while the slot is held");
  (* a backoff-retrying client converges once the slot frees up *)
  (match
     Svc.Client.submit_retrying ~attempts:60 ~delay:0.05 ~socket run_manifest
   with
  | Ok o ->
    Alcotest.(check int) "retrying client ran the full plan" 2
      o.Svc.Client.planned
  | Error m -> Alcotest.failf "retrying client rejected: %s" m);
  Thread.join slow;
  match !slow_result with
  | Some (Ok o) ->
    Alcotest.(check int) "slow submission unharmed" 4 o.Svc.Client.planned;
    Alcotest.(check int) "slow submission clean" 0 o.Svc.Client.failed
  | Some (Error m) -> Alcotest.failf "slow submission rejected: %s" m
  | None -> Alcotest.fail "slow client never reported"

let test_service_graceful_drain () =
  with_service @@ fun ~socket ->
  O.clear_cache ();
  let draining_before = counter_value "campaign.service.draining_rejections" in
  let slow_result = ref None in
  let slow =
    Thread.create
      (fun () -> slow_result := Some (Svc.Client.submit ~socket slow_manifest))
      ()
  in
  await_submission_started ~socket;
  (* shutdown verb: the server flips to Draining while the submission
     is in flight *)
  (match Svc.Client.request ~socket Pr.Shutdown with
  | Pr.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  (* the drainer thread flips the state asynchronously after Bye *)
  Unix.sleepf 0.3;
  (* new submissions are rejected with the typed Draining response *)
  (match Svc.Client.submit ~socket run_manifest with
  | exception Svc.Client.Draining -> ()
  | Ok _ -> Alcotest.fail "draining server must reject new submissions"
  | Error m -> Alcotest.failf "expected Draining, got server error %s" m);
  Alcotest.(check bool) "draining_rejections counted" true
    (counter_value "campaign.service.draining_rejections" > draining_before);
  (* the in-flight submission finishes cleanly — drain, not abort *)
  Thread.join slow;
  (match !slow_result with
  | Some (Ok o) ->
    Alcotest.(check int) "in-flight submission drained to completion" 4
      o.Svc.Client.planned;
    Alcotest.(check int) "no failures" 0 o.Svc.Client.failed
  | Some (Error m) -> Alcotest.failf "in-flight submission rejected: %s" m
  | None -> Alcotest.fail "slow client never reported");
  (* once drained, the server is gone: connections are refused *)
  let rec await_exit n =
    if n = 0 then Alcotest.fail "server did not exit after draining"
    else
      match raw_connect socket with
      | fd ->
        Unix.close fd;
        Unix.sleepf 0.05;
        await_exit (n - 1)
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) -> ()
  in
  await_exit 100

let test_service_already_running () =
  with_service @@ fun ~socket ->
  (* a second daemon on a live socket must refuse, typed — and must NOT
     destroy the first daemon's socket *)
  with_store_dir @@ fun dir2 ->
  let store2 = St.open_ ~name:"svc-2" dir2 in
  (match
     Svc.create ~jobs:1 ~sandbox:false ~store:store2 ~socket_path:socket ()
   with
  | _ -> Alcotest.fail "second daemon must refuse a live socket"
  | exception Svc.Already_running p ->
    Alcotest.(check string) "names the socket" socket p);
  St.close store2;
  (* the first daemon is unharmed *)
  (match Svc.Client.request ~socket Pr.Status with
  | Pr.Status_report _ -> ()
  | _ -> Alcotest.fail "first daemon must survive the refused start");
  (* a stale socket file (owner dead) is reclaimed silently *)
  with_store_dir @@ fun dir3 ->
  let stale = Filename.temp_file "dramstress_stale" ".sock" in
  Sys.remove stale;
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX stale);
  Unix.close dead;
  (* bound then closed without listening: the file exists, nobody answers *)
  let store3 = St.open_ ~name:"svc-3" dir3 in
  let srv = Svc.create ~jobs:1 ~sandbox:false ~store:store3 ~socket_path:stale () in
  let th = Thread.create Svc.serve srv in
  (match Svc.Client.request ~socket:stale Pr.Status with
  | Pr.Status_report _ -> ()
  | _ -> Alcotest.fail "daemon on a reclaimed stale socket must serve");
  (match Svc.Client.request ~socket:stale Pr.Shutdown with
  | Pr.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  Thread.join th;
  try Sys.remove stale with Sys_error _ -> ()

let test_service_concurrent_dedup () =
  with_service @@ fun ~socket ->
  let c_sim = Tel.Counter.make "campaign.points_simulated" in
  let sim_before = Tel.Counter.value c_sim in
  O.clear_cache ();
  let results = Array.make 2 None in
  let client i = results.(i) <- Some (Svc.Client.submit ~socket run_manifest) in
  let ths = List.init 2 (fun i -> Thread.create client i) in
  List.iter Thread.join ths;
  let outs =
    Array.to_list results
    |> List.map (function
         | Some r -> ok_outcome r
         | None -> Alcotest.fail "client thread did not report")
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outs in
  (* the acceptance criterion, counter-verified: two concurrent clients
     on the same manifest, every point simulated exactly once *)
  Alcotest.(check int) "each point simulated exactly once" 2
    (Tel.Counter.value c_sim - sim_before);
  Alcotest.(check int) "simulations split across the clients" 2
    (sum (fun o -> o.Svc.Client.simulated));
  Alcotest.(check int) "the other client's points came for free" 2
    (sum (fun o -> o.Svc.Client.deduped + o.Svc.Client.reused));
  List.iter
    (fun (o : Svc.Client.outcome) ->
      Alcotest.(check int) "full plan per client" 2 o.Svc.Client.planned;
      Alcotest.(check int) "no failures" 0 o.Svc.Client.failed;
      Alcotest.(check int) "per-client accounting closes" 2
        (o.Svc.Client.reused + o.Svc.Client.simulated
        + o.Svc.Client.deduped))
    outs

let test_service_merge_verb_and_diff () =
  (* build a second store with the low-vdd half of the plan, absorb it
     through the merge verb, and check the server now reuses it *)
  let half =
    {|
(campaign
  (name half-b)
  (defects (O1 true))
  (stress low-vdd (vdd 2.1))
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}
  in
  let other =
    {|
(campaign
  (name half-a)
  (defects (O1 true))
  (stress nominal)
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}
  in
  with_store_dir @@ fun src_dir ->
  let m_half = Manifest.of_string half in
  let src = St.open_ ~name:"half-b" src_dir in
  let r = Runner.run ~jobs:1 ~store:src m_half in
  St.close src;
  Alcotest.(check int) "source half computed" 1 r.Runner.simulated;
  with_service @@ fun ~socket ->
  (* cover the nominal half server-side first *)
  let o = ok_outcome (Svc.Client.submit ~socket other) in
  Alcotest.(check int) "nominal half simulated" 1 o.Svc.Client.simulated;
  (match Svc.Client.request ~socket (Pr.Merge src_dir) with
  | Pr.Merged { added; replaced; _ } ->
    Alcotest.(check bool) "merge brought records" true (added > 0);
    Alcotest.(check int) "no replacements across halves" 0 replaced
  | Pr.Error_msg m -> Alcotest.failf "merge refused: %s" m
  | _ -> Alcotest.fail "expected merge stats");
  (* the merged half is now served without simulation *)
  let o = ok_outcome (Svc.Client.submit ~socket run_manifest) in
  Alcotest.(check int) "both halves reused after merge" 2
    o.Svc.Client.reused;
  Alcotest.(check int) "nothing simulated after merge" 0
    o.Svc.Client.simulated;
  (* diff verb: both manifests against the server store, rendered *)
  match Svc.Client.request ~socket (Pr.Diff { a = other; b = half }) with
  | Pr.Diff_report text ->
    Alcotest.(check bool) "report rendered" true (String.length text > 0)
  | Pr.Error_msg m -> Alcotest.failf "diff refused: %s" m
  | _ -> Alcotest.fail "expected a diff report"

let test_store_merge_campaign_parity () =
  (* two sharded stores built by disjoint half-campaigns, merged, must
     be record-identical to one single-process run of the full plan *)
  let half name stress =
    Printf.sprintf
      {|
(campaign
  (name %s)
  (defects (O1 true))
  (stress %s)
  (detections (seq "w1 w1 w0 r0"))
  (border (r-min 1e4) (r-max 1e8) (grid-points 5) (rel-tol 0.05)))
|}
      name stress
  in
  with_store_dir @@ fun a_dir ->
  with_store_dir @@ fun b_dir ->
  with_store_dir @@ fun ref_dir ->
  let run ?shards dir src =
    let m = Manifest.of_string src in
    let s = St.open_ ?shards ~name:m.Manifest.name dir in
    let r = Runner.run ~jobs:1 ~store:s m in
    St.close s;
    Alcotest.(check int) "half-run clean" 0 (List.length r.Runner.failures)
  in
  run ~shards:4 a_dir (half "half-a" "nominal");
  run ~shards:4 b_dir (half "half-b" "low-vdd (vdd 2.1)");
  run ref_dir run_manifest;
  let dst = St.open_ ~name:"half-a" a_dir in
  let src = St.open_ ~name:"half-b" b_dir in
  let src_entries = St.entries src in
  let stats = St.merge ~src ~dst in
  St.close src;
  Alcotest.(check int) "disjoint halves: everything added" src_entries
    stats.St.added;
  Alcotest.(check int) "nothing replaced" 0 stats.St.replaced;
  let rs = St.open_ ~name:"ref" ref_dir in
  let m = Manifest.of_string run_manifest in
  List.iter
    (fun p ->
      let key = Plan.descriptor m p in
      let merged = St.find dst ~key and reference = St.find rs ~key in
      Alcotest.(check bool) "point present on both sides" true
        (merged <> None && reference <> None);
      Alcotest.(check (option string))
        "merged sharded store record-identical to single-process run"
        reference merged)
    (Plan.points m);
  St.close rs;
  St.close dst

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_campaign"
    [
      ( "manifest",
        [
          tc "full example parses" test_manifest_full;
          tc "defaults" test_manifest_defaults;
          tc "diagnostics collected, not fail-fast"
            test_manifest_collects_diagnostics;
          tc "parse errors carry line numbers" test_manifest_parse_error_line;
          tc "range with min >= max diagnosed" test_manifest_range_min_ge_max;
          tc "log range touching zero diagnosed"
            test_manifest_range_log_crosses_zero;
          tc "extension axes sweep and label" test_manifest_extended_sweep;
        ] );
      ( "plan",
        [
          tc "cross product and order" test_plan_cross_product;
          tc "address sensitivity" test_descriptor_sensitivity;
          tc "no collisions across the plan" test_descriptor_defect_injective;
          tc "address stable across domains" test_descriptor_domain_stable;
          tc "march and equivalent seq share records"
            test_march_seq_share_address;
          tc "strategy-aware record sharing" test_descriptor_strategy_sharing;
          tc "extension axes stamp addresses compatibly"
            test_descriptor_extension_suffix;
          tc "result codec round-trips" test_result_codec_roundtrip;
        ] );
      ( "runner",
        [
          tc "cold run then warm 100% reuse" test_runner_cold_then_warm;
          tc "failures recorded and retried, successes kept"
            test_runner_failure_retry;
          tc "adaptive planner: grid parity from fewer simulations"
            test_runner_adaptive_planner_parity;
          tc "pre-extension golden store fully reused"
            test_golden_store_reuse;
          tc "adaptive parity holds on the wait axis"
            test_adaptive_parity_wait_axis;
        ] );
      ( "diff",
        [
          tc "completed self-diff is empty" test_diff_self_empty;
          tc "stress pair matches direct search" test_diff_stress_pair_parity;
          tc "missing side reported, not shifted" test_diff_missing_side;
          tc "best point matches Sc_eval directly" test_best_point_parity;
          tc "cross-axis stress pair shifts the border"
            test_cross_axis_campaign_diff;
        ] );
      ( "protocol",
        [
          tc "sexp printer/parser round-trip" test_protocol_sexp_roundtrip;
          tc "request codec round-trips" test_protocol_request_roundtrip;
          tc "response codec round-trips" test_protocol_response_roundtrip;
          tc "framing: large, garbage, EOF" test_protocol_frames;
          tc "read deadline: stalled frame times out, prompt frame passes"
            test_protocol_frame_timeout;
        ] );
      ( "service",
        [
          tc "submit cold/warm + status/query/counters"
            test_service_submit_cold_warm;
          tc "broken manifest is a server-side error"
            test_service_bad_manifest_is_error;
          tc "garbage frames answered, server unharmed"
            test_service_garbage_frames;
          tc "slowloris half-frame dropped, honest clients served"
            test_service_slowloris_dropped;
          tc "over capacity: typed Busy, retrying client converges"
            test_service_admission_busy;
          tc "graceful drain: in-flight finishes, new work refused"
            test_service_graceful_drain;
          tc "second daemon refused on a live socket, stale reclaimed"
            test_service_already_running;
          tc "concurrent clients: one simulation per point"
            test_service_concurrent_dedup;
          tc "merge verb absorbs a store, diff verb renders"
            test_service_merge_verb_and_diff;
          tc "merged sharded halves equal one full run"
            test_store_merge_campaign_parity;
        ] );
    ]
