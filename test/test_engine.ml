(* Engine validation against analytic circuit solutions. *)

module W = Dramstress_circuit.Waveform
module N = Dramstress_circuit.Netlist
module M = Dramstress_circuit.Mosfet
module E = Dramstress_engine
module U = Dramstress_util.Units

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_float ?(eps = 1e-6) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* ------------------------------------------------------------------ *)
(* DC operating point                                                  *)
(* ------------------------------------------------------------------ *)

let test_dcop_divider () =
  let nl = N.create () in
  N.vsource nl ~name:"v" "in" "0" (W.dc 10.0);
  N.resistor nl ~name:"r1" "in" "mid" 1000.0;
  N.resistor nl ~name:"r2" "mid" "0" 3000.0;
  let c = N.compile nl in
  let v = E.Dcop.solve c () in
  check_float "divider" 7.5 v.(N.compiled_node c "mid")

let test_dcop_current_source () =
  let nl = N.create () in
  N.isource nl ~name:"i" "0" "out" (W.dc 1e-3);
  N.resistor nl ~name:"r" "out" "0" 2000.0;
  let c = N.compile nl in
  let v = E.Dcop.solve c () in
  (* 1 mA into "out" through 2 kOhm -> 2 V *)
  check_float "i*r" 2.0 v.(N.compiled_node c "out")

let test_dcop_diode_connected_nmos () =
  (* Vdd -- R -- drain=gate (diode-connected) -- source=gnd.
     The solution must satisfy (Vdd - V) / R = Id(V). *)
  let model = M.nmos ~name:"n" ~vt0:0.5 ~kp:2e-4 () in
  let nl = N.create () in
  N.vsource nl ~name:"vdd" "vdd" "0" (W.dc 2.4);
  N.resistor nl ~name:"r" "vdd" "d" 10000.0;
  N.mosfet nl ~name:"m" ~d:"d" ~g:"d" ~s:"0" ~model ();
  let c = N.compile nl in
  let v = E.Dcop.solve c () in
  let vd = v.(N.compiled_node c "d") in
  Alcotest.(check bool) "above threshold" true (vd > 0.5 && vd < 2.4);
  let e = M.ids model ~temp:E.Options.default.E.Options.temp ~vgs:vd ~vds:vd in
  check_float ~eps:1e-3 "KCL at drain" ((2.4 -. vd) /. 10000.0) e.M.id

let test_dcop_bad_guess_node () =
  let nl = N.create () in
  N.resistor nl ~name:"r" "a" "0" 1.0;
  let c = N.compile nl in
  Alcotest.check_raises "unknown guess"
    (Invalid_argument "Dcop.solve: unknown node zz") (fun () ->
      ignore (E.Dcop.solve c ~guess:[ ("zz", 1.0) ] ()))

(* ------------------------------------------------------------------ *)
(* Transient                                                           *)
(* ------------------------------------------------------------------ *)

let rc_circuit ~r ~c_farad =
  let nl = N.create () in
  N.vsource nl ~name:"v" "in" "0" (W.dc 1.0);
  N.resistor nl ~name:"r" "in" "out" r;
  N.capacitor nl ~name:"c" "out" "0" c_farad;
  N.compile nl

let test_rc_charge () =
  (* tau = 1 us; after 1 tau the capacitor reaches 1 - e^-1 *)
  let c = rc_circuit ~r:1000.0 ~c_farad:1e-9 in
  let res =
    E.Transient.run c
      ~segments:[ (1e-6, 1e-9) ]
      ~ics:[ ("out", 0.0) ]
      ~probes:[ "out" ] ()
  in
  let v_end = E.Transient.value_at res "out" 1e-6 in
  check_float ~eps:2e-3 "1 - 1/e" (1.0 -. exp (-1.0)) v_end

let test_rc_discharge_ic () =
  let nl = N.create () in
  N.resistor nl ~name:"r" "out" "0" 1000.0;
  N.capacitor nl ~name:"c" "out" "0" 1e-9;
  let c = N.compile nl in
  let res =
    E.Transient.run c
      ~segments:[ (2e-6, 1e-9) ]
      ~ics:[ ("out", 2.0) ]
      ~probes:[ "out" ] ()
  in
  check_float ~eps:3e-3 "after 2 tau" (2.0 *. exp (-2.0))
    (E.Transient.value_at res "out" 2e-6)

let test_rc_trapezoidal_more_accurate () =
  let c = rc_circuit ~r:1000.0 ~c_farad:1e-9 in
  let run integrator =
    let opts = { E.Options.default with E.Options.integrator } in
    let res =
      E.Transient.run c ~opts
        ~segments:[ (1e-6, 2e-8) ]  (* coarse on purpose *)
        ~ics:[ ("out", 0.0) ]
        ~probes:[ "out" ] ()
    in
    E.Transient.value_at res "out" 1e-6
  in
  let exact = 1.0 -. exp (-1.0) in
  let err_be = Float.abs (run E.Options.Backward_euler -. exact) in
  let err_tr = Float.abs (run E.Options.Trapezoidal -. exact) in
  Alcotest.(check bool) "trapezoidal beats BE on coarse grid" true
    (err_tr < err_be)

let test_initial_consistency () =
  (* a resistive node with no IC must be solved consistently at t = 0 *)
  let nl = N.create () in
  N.vsource nl ~name:"v" "in" "0" (W.dc 4.0);
  N.resistor nl ~name:"r1" "in" "mid" 1000.0;
  N.resistor nl ~name:"r2" "mid" "0" 1000.0;
  N.capacitor nl ~name:"c" "mid" "0" 1e-15;
  let c = N.compile nl in
  let res =
    E.Transient.run c
      ~segments:[ (1e-9, 1e-10) ]
      ~ics:[]
      ~probes:[ "mid" ] ()
  in
  (* the tiny capacitor was pinned at 0 initially; after a few tau
     (tau = 0.5 ps << 1 ns) the node must sit at the divider value *)
  check_float ~eps:1e-3 "settles to divider" 2.0
    (E.Transient.value_at res "mid" 1e-9)

let test_pulse_through_switch () =
  (* switch closes at t = 5 ns and connects a source to a capacitor *)
  let nl = N.create () in
  N.vsource nl ~name:"v" "in" "0" (W.dc 1.5);
  N.switch nl ~name:"s" "in" "out"
    ~ctrl:(W.pwl_steps ~t_edge:1e-10 0.0 [ (5e-9, 1.0) ])
    ~g_on:1e-2 ~g_off:1e-15 ();
  N.capacitor nl ~name:"c" "out" "0" 1e-13;
  let c = N.compile nl in
  let res =
    E.Transient.run c
      ~segments:[ (2e-8, 1e-11) ]
      ~ics:[ ("out", 0.0) ]
      ~probes:[ "out" ] ()
  in
  check_float ~eps:1e-3 "held before close" 0.0
    (E.Transient.value_at res "out" 4.9e-9);
  (* tau after close = 100 fF / 10 mS = 10 ps; fully charged by 20 ns *)
  check_float ~eps:1e-3 "charged after close" 1.5
    (E.Transient.value_at res "out" 2e-8)

let test_nmos_pass_gate_writes_degraded_one () =
  (* NMOS pass gate: gate at 2.4 V, input at 2.4 V, output capacitor.
     The output must charge to roughly Vg - Vth, the classic degraded 1. *)
  let model = M.nmos ~name:"n" ~vt0:0.5 ~kp:2e-4 () in
  let nl = N.create () in
  N.vsource nl ~name:"vbl" "bl" "0" (W.dc 2.4);
  N.vsource nl ~name:"vwl" "wl" "0" (W.dc 2.4);
  N.mosfet nl ~name:"acc" ~d:"bl" ~g:"wl" ~s:"cell" ~model ();
  N.capacitor nl ~name:"cs" "cell" "0" 1e-13;
  let c = N.compile nl in
  let res =
    E.Transient.run c
      ~segments:[ (2e-7, 1e-10) ]
      ~ics:[ ("cell", 0.0) ]
      ~probes:[ "cell" ] ()
  in
  let v_end = E.Transient.value_at res "cell" 2e-7 in
  Alcotest.(check bool)
    (Printf.sprintf "degraded 1 (got %.3f)" v_end)
    true
    (v_end > 1.5 && v_end < 2.2)

let test_nmos_pass_gate_writes_full_zero () =
  let model = M.nmos ~name:"n" ~vt0:0.5 ~kp:2e-4 () in
  let nl = N.create () in
  N.vsource nl ~name:"vbl" "bl" "0" (W.dc 0.0);
  N.vsource nl ~name:"vwl" "wl" "0" (W.dc 2.4);
  N.mosfet nl ~name:"acc" ~d:"bl" ~g:"wl" ~s:"cell" ~model ();
  N.capacitor nl ~name:"cs" "cell" "0" 1e-13;
  let c = N.compile nl in
  let res =
    E.Transient.run c
      ~segments:[ (2e-7, 1e-10) ]
      ~ics:[ ("cell", 2.4) ]
      ~probes:[ "cell" ] ()
  in
  let v_end = E.Transient.value_at res "cell" 2e-7 in
  Alcotest.(check bool)
    (Printf.sprintf "full 0 (got %.3f)" v_end)
    true
    (Float.abs v_end < 0.05)

let test_segmented_timestep () =
  (* long retention pause with coarse steps must agree with the analytic
     decay: 1 ms through 1 Gohm on 100 fF -> tau = 100 us *)
  let nl = N.create () in
  N.resistor nl ~name:"leak" "cell" "0" 1e9;
  N.capacitor nl ~name:"cs" "cell" "0" 1e-13;
  let c = N.compile nl in
  let res =
    E.Transient.run c
      ~segments:[ (1e-9, 1e-10); (1e-4, 1e-7) ]
      ~ics:[ ("cell", 2.0) ]
      ~probes:[ "cell" ] ()
  in
  check_float ~eps:2e-3 "one tau decay" (2.0 *. exp (-1.0))
    (E.Transient.value_at res "cell" 1e-4)

let test_probe_errors () =
  let c = rc_circuit ~r:1.0 ~c_farad:1e-12 in
  Alcotest.check_raises "bad probe"
    (Invalid_argument "Transient.run: unknown probe node nope") (fun () ->
      ignore
        (E.Transient.run c ~segments:[ (1e-9, 1e-10) ] ~ics:[]
           ~probes:[ "nope" ] ()));
  Alcotest.check_raises "bad segments"
    (Invalid_argument "Transient.run: no segments") (fun () ->
      ignore (E.Transient.run c ~segments:[] ~ics:[] ~probes:[] ()))

let prop_rc_matches_analytic =
  QCheck.Test.make ~count:25 ~name:"RC decay matches exp() for random tau"
    QCheck.(pair (float_range 100.0 10000.0) (float_range 0.5 3.0))
    (fun (r, v0) ->
      let nl = N.create () in
      N.resistor nl ~name:"r" "out" "0" r;
      N.capacitor nl ~name:"c" "out" "0" 1e-9;
      let c = N.compile nl in
      let tau = r *. 1e-9 in
      let t_end = tau in
      let res =
        E.Transient.run c
          ~segments:[ (t_end, tau /. 400.0) ]
          ~ics:[ ("out", v0) ]
          ~probes:[ "out" ] ()
      in
      let v = E.Transient.value_at res "out" t_end in
      Float.abs (v -. (v0 *. exp (-1.0))) < 0.01 *. v0)

let test_step_failed_context () =
  (* with a single Newton iteration the solver cannot track the pulse
     edge: each halved retry still moves the source by more than the
     tolerance in one step, so the retry budget runs out and the failure
     must surface as Step_failed with the segment context attached *)
  let nl = N.create () in
  N.vsource nl ~name:"vp" "in" "0"
    (W.pulse ~v0:0.0 ~v1:1.0 ~delay:5e-10 ~rise:1e-10 ~width:1e-9 ~fall:1e-10
       ());
  N.resistor nl ~name:"r" "in" "out" 1000.0;
  N.capacitor nl ~name:"c" "out" "0" 1e-12;
  let c = N.compile nl in
  let opts = { E.Options.default with E.Options.max_newton = 1 } in
  match
    E.Transient.run c ~opts
      ~segments:[ (2e-9, 1e-10) ]
      ~ics:[] ~probes:[ "out" ] ()
  with
  | _ -> Alcotest.fail "expected Step_failed"
  | exception E.Transient.Step_failed
      { seg_start; seg_end; t; dt; retries; iterations; worst } ->
    check_float "seg_start" 0.0 seg_start;
    check_float "seg_end" 2e-9 seg_end;
    Alcotest.(check bool) "t inside segment" true (t > 0.0 && t <= 2e-9);
    Alcotest.(check bool) "dt was halved" true (dt < 1e-10 && dt > 0.0);
    Alcotest.(check int) "retry budget reported" 4 retries;
    Alcotest.(check int) "iterations spent" 1 iterations;
    Alcotest.(check bool) "worst update reported" true (worst > 0.0)

let test_naive_assembly_matches_incremental () =
  (* golden cross-check at the engine level: the kept-alive allocating
     assembly and the incremental workspace path must agree bit-for-bit
     within solver tolerance on a nonlinear switching circuit *)
  let model = M.nmos ~name:"n" ~vt0:0.5 ~kp:2e-4 () in
  let nl = N.create () in
  N.vsource nl ~name:"vbl" "bl" "0" (W.dc 2.4);
  N.vsource nl ~name:"vwl" "wl" "0"
    (W.pulse ~v0:0.0 ~v1:2.4 ~delay:1e-9 ~rise:1e-9 ~width:20e-9 ~fall:1e-9 ());
  N.mosfet nl ~name:"acc" ~d:"bl" ~g:"wl" ~s:"cell" ~model ();
  N.capacitor nl ~name:"cs" "cell" "0" 1e-13;
  let c = N.compile nl in
  let run naive integrator =
    let opts =
      { E.Options.default with E.Options.naive_assembly = naive; integrator }
    in
    E.Transient.run c ~opts
      ~segments:[ (3e-8, 5e-11) ]
      ~ics:[ ("cell", 0.0) ]
      ~probes:[ "cell"; "bl" ] ()
  in
  List.iter
    (fun integrator ->
      let a = run true integrator and b = run false integrator in
      Alcotest.(check int)
        "same point count"
        (Array.length a.E.Transient.times)
        (Array.length b.E.Transient.times);
      Array.iteri
        (fun i va ->
          Array.iteri
            (fun k v ->
              check_float ~eps:1e-9 "trace match" v
                b.E.Transient.probe_values.(i).(k))
            va)
        a.E.Transient.probe_values;
      Array.iteri
        (fun i v -> check_float ~eps:1e-9 "final_v match" v
            b.E.Transient.final_v.(i))
        a.E.Transient.final_v)
    [ E.Options.Backward_euler; E.Options.Trapezoidal ]

(* ------------------------------------------------------------------ *)
(* Numerical health guards                                             *)
(* ------------------------------------------------------------------ *)

module Chaos = Dramstress_util.Chaos

let rc_fixture () =
  let nl = N.create () in
  N.vsource nl ~name:"v" "in" "0" (W.dc 1.0);
  N.resistor nl ~name:"r" "in" "out" 1000.0;
  N.capacitor nl ~name:"c" "out" "0" 1e-12;
  N.compile nl

let run_rc ?deadline_at c =
  E.Transient.run c ?deadline_at
    ~segments:[ (5e-9, 1e-10) ]
    ~ics:[] ~probes:[ "out" ] ()

let with_chaos f = Fun.protect ~finally:(fun () -> Chaos.disarm ()) f

let test_health_nan_state_detected () =
  with_chaos @@ fun () ->
  Chaos.configure ~seed:0 "inject_nan_state";
  let c = rc_fixture () in
  (match run_rc c with
  | _ -> Alcotest.fail "expected Numerical_health"
  | exception E.Newton.Numerical_health { t; iterations; what } ->
    Alcotest.(check bool) "time context" true (t >= 0.0);
    Alcotest.(check bool) "iteration context" true (iterations >= 1);
    Alcotest.(check bool) "names the symptom" true
      (String.length what > 0));
  Alcotest.(check bool) "injections recorded" true
    (Chaos.injected Chaos.Inject_nan_state > 0)

let test_health_guards_can_be_disabled () =
  (* with health_guards off the chaos NaN sails through unchecked: the
     run must NOT raise Numerical_health (this is the A/B the bench
     overhead target relies on). The result is garbage, which is the
     point: the guard is what stands between NaN and the caller. *)
  with_chaos @@ fun () ->
  Chaos.configure ~seed:0 "inject_nan_state";
  let c = rc_fixture () in
  let opts = { E.Options.default with E.Options.health_guards = false } in
  match
    E.Transient.run c ~opts ~segments:[ (5e-10, 1e-10) ] ~ics:[]
      ~probes:[ "out" ] ()
  with
  | r ->
    Alcotest.(check bool) "NaN reached the trace" true
      (Array.exists
         (fun row -> Array.exists (fun v -> Float.is_nan v) row)
         r.E.Transient.probe_values)
  | exception E.Newton.Numerical_health _ ->
    Alcotest.fail "guards fired while disabled"
  | exception E.Transient.Step_failed _ -> ()
  | exception E.Newton.No_convergence _ -> ()

let test_health_singular_lu_detected () =
  with_chaos @@ fun () ->
  Chaos.configure ~seed:0 "perturb_jacobian";
  let c = rc_fixture () in
  (match run_rc c with
  | _ -> Alcotest.fail "expected Numerical_health"
  | exception E.Newton.Numerical_health { what; _ } ->
    Alcotest.(check bool) "names the singular system" true
      (String.length what >= 8 && String.sub what 0 8 = "singular"));
  Alcotest.(check bool) "injections recorded" true
    (Chaos.injected Chaos.Perturb_jacobian > 0)

let test_health_forced_divergence_is_structured () =
  (* a solve that refuses to converge must surface as the existing
     Step_failed (after halving retries), never as garbage voltages *)
  with_chaos @@ fun () ->
  Chaos.configure ~seed:0 "force_newton_diverge";
  let c = rc_fixture () in
  match run_rc c with
  | _ -> Alcotest.fail "expected a structured convergence failure"
  | exception E.Transient.Step_failed { retries; _ } ->
    Alcotest.(check int) "halving retries were spent" 4 retries
  | exception E.Newton.No_convergence _ ->
    (* the initial consistency solve diverges first; it has no halving
       retries but still fails with the typed exception *)
    ()

let test_deadline_cuts_solve () =
  let c = rc_fixture () in
  (* a deadline already in the past: the very first Newton iteration
     must give up with the budget in the payload *)
  let deadline_at = (Unix.gettimeofday () -. 1.0, 0.25) in
  match run_rc ~deadline_at c with
  | _ -> Alcotest.fail "expected Timeout"
  | exception E.Newton.Timeout { t; budget_s } ->
    Alcotest.(check bool) "time context" true (t >= 0.0);
    Alcotest.(check (float 0.0)) "budget echoed" 0.25 budget_s

let test_deadline_generous_budget_unobtrusive () =
  let c = rc_fixture () in
  let deadline_at = (Unix.gettimeofday () +. 3600.0, 3600.0) in
  let a = run_rc ~deadline_at c and b = run_rc c in
  Array.iteri
    (fun i v -> check_float ~eps:0.0 "identical trace" v b.E.Transient.final_v.(i))
    a.E.Transient.final_v

(* ------------------------------------------------------------------ *)
(* DC sweep                                                            *)
(* ------------------------------------------------------------------ *)

let test_sweep_divider () =
  let nl = N.create () in
  N.vsource nl ~name:"vin" "in" "0" (W.dc 0.0);
  N.resistor nl ~name:"r1" "in" "mid" 1000.0;
  N.resistor nl ~name:"r2" "mid" "0" 1000.0;
  let c = N.compile nl in
  let sweep =
    E.Sweep.run c ~source:"vin" ~values:[ 0.0; 1.0; 2.0; 3.0 ] ()
  in
  List.iter
    (fun (v, mid) -> check_float ~eps:1e-6 "half" (v /. 2.0) mid)
    (E.Sweep.node_curve sweep "mid")

let test_sweep_nmos_transfer () =
  (* Id(Vgs) through a zero-volt ammeter source in the drain leg *)
  let model = M.nmos ~name:"n" ~vt0:0.5 ~kp:1e-4 () in
  let nl = N.create () in
  N.vsource nl ~name:"vdd" "vdd" "0" (W.dc 2.4);
  N.vsource nl ~name:"vg" "g" "0" (W.dc 0.0);
  N.vsource nl ~name:"amm" "vdd" "d" (W.dc 0.0);
  N.mosfet nl ~name:"m" ~d:"d" ~g:"g" ~s:"0" ~model ();
  let c = N.compile nl in
  let sweep =
    E.Sweep.run c ~source:"vg"
      ~values:(Dramstress_util.Grid.linspace 0.0 2.4 9)
      ()
  in
  let curve = E.Sweep.source_current_curve sweep "amm" in
  (* the ammeter current flows vdd -> d: positive into the drain *)
  let currents = List.map snd curve in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone in Vgs" true (monotone currents);
  Alcotest.(check bool) "off leakage small" true (List.hd currents < 1e-9);
  Alcotest.(check bool) "on current substantial" true
    (List.nth currents 8 > 1e-5)

let test_sweep_validation () =
  let nl = N.create () in
  N.vsource nl ~name:"vp" "a" "0"
    (W.pulse ~v0:0.0 ~v1:1.0 ~delay:0.0 ~rise:1e-9 ~width:1e-9 ~fall:1e-9 ());
  N.resistor nl ~name:"r" "a" "0" 1.0;
  let c = N.compile nl in
  Alcotest.check_raises "missing"
    (Invalid_argument "Netlist.with_dc_source: no DC source named nope")
    (fun () -> ignore (E.Sweep.run c ~source:"nope" ~values:[ 0.0 ] ()));
  Alcotest.check_raises "not dc"
    (Invalid_argument "Netlist.with_dc_source: vp is not DC") (fun () ->
      ignore (E.Sweep.run c ~source:"vp" ~values:[ 0.0 ] ()))

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dramstress_engine"
    [
      ( "dcop",
        [
          tc "resistive divider" test_dcop_divider;
          tc "current source" test_dcop_current_source;
          tc "diode-connected nmos" test_dcop_diode_connected_nmos;
          tc "unknown guess node" test_dcop_bad_guess_node;
        ] );
      ( "transient",
        [
          tc "rc charge" test_rc_charge;
          tc "rc discharge from IC" test_rc_discharge_ic;
          tc "trapezoidal accuracy" test_rc_trapezoidal_more_accurate;
          tc "initial consistency solve" test_initial_consistency;
          tc "switch-gated charge" test_pulse_through_switch;
          tc "pass gate degraded 1" test_nmos_pass_gate_writes_degraded_one;
          tc "pass gate full 0" test_nmos_pass_gate_writes_full_zero;
          tc "segmented retention pause" test_segmented_timestep;
          tc "probe and segment validation" test_probe_errors;
          tc "step failure carries context" test_step_failed_context;
          tc "naive assembly matches incremental"
            test_naive_assembly_matches_incremental;
          QCheck_alcotest.to_alcotest prop_rc_matches_analytic;
        ] );
      ( "health",
        [
          tc "NaN state detected" test_health_nan_state_detected;
          tc "guards can be disabled" test_health_guards_can_be_disabled;
          tc "singular LU detected" test_health_singular_lu_detected;
          tc "forced divergence is structured"
            test_health_forced_divergence_is_structured;
          tc "deadline cuts the solve" test_deadline_cuts_solve;
          tc "generous deadline unobtrusive"
            test_deadline_generous_budget_unobtrusive;
        ] );
      ( "sweep",
        [
          tc "divider tracks the source" test_sweep_divider;
          tc "nmos transfer characteristic" test_sweep_nmos_transfer;
          tc "validation" test_sweep_validation;
        ] );
    ]
